# Empty dependencies file for domain_decomposition.
# This may be replaced when dependencies are built.
