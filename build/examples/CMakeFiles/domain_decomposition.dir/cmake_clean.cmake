file(REMOVE_RECURSE
  "CMakeFiles/domain_decomposition.dir/domain_decomposition.cpp.o"
  "CMakeFiles/domain_decomposition.dir/domain_decomposition.cpp.o.d"
  "domain_decomposition"
  "domain_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
