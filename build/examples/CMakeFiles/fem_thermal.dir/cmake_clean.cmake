file(REMOVE_RECURSE
  "CMakeFiles/fem_thermal.dir/fem_thermal.cpp.o"
  "CMakeFiles/fem_thermal.dir/fem_thermal.cpp.o.d"
  "fem_thermal"
  "fem_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
