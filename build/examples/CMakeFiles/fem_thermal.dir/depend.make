# Empty dependencies file for fem_thermal.
# This may be replaced when dependencies are built.
