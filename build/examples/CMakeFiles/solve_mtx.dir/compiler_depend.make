# Empty compiler generated dependencies file for solve_mtx.
# This may be replaced when dependencies are built.
