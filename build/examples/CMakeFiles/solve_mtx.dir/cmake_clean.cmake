file(REMOVE_RECURSE
  "CMakeFiles/solve_mtx.dir/solve_mtx.cpp.o"
  "CMakeFiles/solve_mtx.dir/solve_mtx.cpp.o.d"
  "solve_mtx"
  "solve_mtx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_mtx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
