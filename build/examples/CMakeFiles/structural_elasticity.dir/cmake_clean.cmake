file(REMOVE_RECURSE
  "CMakeFiles/structural_elasticity.dir/structural_elasticity.cpp.o"
  "CMakeFiles/structural_elasticity.dir/structural_elasticity.cpp.o.d"
  "structural_elasticity"
  "structural_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structural_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
