# Empty compiler generated dependencies file for structural_elasticity.
# This may be replaced when dependencies are built.
