file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_speedup.dir/bench_f1_speedup.cc.o"
  "CMakeFiles/bench_f1_speedup.dir/bench_f1_speedup.cc.o.d"
  "bench_f1_speedup"
  "bench_f1_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
