file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_amalgamation.dir/bench_f6_amalgamation.cc.o"
  "CMakeFiles/bench_f6_amalgamation.dir/bench_f6_amalgamation.cc.o.d"
  "bench_f6_amalgamation"
  "bench_f6_amalgamation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_amalgamation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
