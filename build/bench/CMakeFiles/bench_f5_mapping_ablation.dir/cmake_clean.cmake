file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_mapping_ablation.dir/bench_f5_mapping_ablation.cc.o"
  "CMakeFiles/bench_f5_mapping_ablation.dir/bench_f5_mapping_ablation.cc.o.d"
  "bench_f5_mapping_ablation"
  "bench_f5_mapping_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_mapping_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
