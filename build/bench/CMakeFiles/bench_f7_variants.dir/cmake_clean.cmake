file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_variants.dir/bench_f7_variants.cc.o"
  "CMakeFiles/bench_f7_variants.dir/bench_f7_variants.cc.o.d"
  "bench_f7_variants"
  "bench_f7_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
