# Empty dependencies file for bench_f7_variants.
# This may be replaced when dependencies are built.
