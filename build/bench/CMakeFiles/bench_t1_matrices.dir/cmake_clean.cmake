file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_matrices.dir/bench_t1_matrices.cc.o"
  "CMakeFiles/bench_t1_matrices.dir/bench_t1_matrices.cc.o.d"
  "bench_t1_matrices"
  "bench_t1_matrices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_matrices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
