# Empty dependencies file for bench_t1_matrices.
# This may be replaced when dependencies are built.
