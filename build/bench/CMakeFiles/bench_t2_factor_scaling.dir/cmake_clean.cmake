file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_factor_scaling.dir/bench_t2_factor_scaling.cc.o"
  "CMakeFiles/bench_t2_factor_scaling.dir/bench_t2_factor_scaling.cc.o.d"
  "bench_t2_factor_scaling"
  "bench_t2_factor_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_factor_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
