# Empty dependencies file for bench_t2_factor_scaling.
# This may be replaced when dependencies are built.
