file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_solve_scaling.dir/bench_f2_solve_scaling.cc.o"
  "CMakeFiles/bench_f2_solve_scaling.dir/bench_f2_solve_scaling.cc.o.d"
  "bench_f2_solve_scaling"
  "bench_f2_solve_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_solve_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
