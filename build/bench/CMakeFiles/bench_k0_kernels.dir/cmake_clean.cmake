file(REMOVE_RECURSE
  "CMakeFiles/bench_k0_kernels.dir/bench_k0_kernels.cc.o"
  "CMakeFiles/bench_k0_kernels.dir/bench_k0_kernels.cc.o.d"
  "bench_k0_kernels"
  "bench_k0_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_k0_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
