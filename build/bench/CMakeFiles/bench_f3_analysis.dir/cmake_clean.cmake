file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_analysis.dir/bench_f3_analysis.cc.o"
  "CMakeFiles/bench_f3_analysis.dir/bench_f3_analysis.cc.o.d"
  "bench_f3_analysis"
  "bench_f3_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
