file(REMOVE_RECURSE
  "CMakeFiles/dist_solve_test.dir/dist_solve_test.cc.o"
  "CMakeFiles/dist_solve_test.dir/dist_solve_test.cc.o.d"
  "dist_solve_test"
  "dist_solve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_solve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
