# Empty compiler generated dependencies file for dist_solve_test.
# This may be replaced when dependencies are built.
