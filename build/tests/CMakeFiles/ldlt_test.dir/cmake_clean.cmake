file(REMOVE_RECURSE
  "CMakeFiles/ldlt_test.dir/ldlt_test.cc.o"
  "CMakeFiles/ldlt_test.dir/ldlt_test.cc.o.d"
  "ldlt_test"
  "ldlt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldlt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
