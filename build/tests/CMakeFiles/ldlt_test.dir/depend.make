# Empty dependencies file for ldlt_test.
# This may be replaced when dependencies are built.
