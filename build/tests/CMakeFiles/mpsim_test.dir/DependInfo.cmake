
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mpsim_test.cc" "tests/CMakeFiles/mpsim_test.dir/mpsim_test.cc.o" "gcc" "tests/CMakeFiles/mpsim_test.dir/mpsim_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/parfact_api.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/parfact_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/parfact_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/parfact_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/solve/CMakeFiles/parfact_solve.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/parfact_mpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/mf/CMakeFiles/parfact_mf.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/parfact_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/parfact_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/parfact_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/parfact_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parfact_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
