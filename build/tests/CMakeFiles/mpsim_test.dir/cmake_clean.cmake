file(REMOVE_RECURSE
  "CMakeFiles/mpsim_test.dir/mpsim_test.cc.o"
  "CMakeFiles/mpsim_test.dir/mpsim_test.cc.o.d"
  "mpsim_test"
  "mpsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
