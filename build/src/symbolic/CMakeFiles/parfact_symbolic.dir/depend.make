# Empty dependencies file for parfact_symbolic.
# This may be replaced when dependencies are built.
