file(REMOVE_RECURSE
  "CMakeFiles/parfact_symbolic.dir/etree.cc.o"
  "CMakeFiles/parfact_symbolic.dir/etree.cc.o.d"
  "CMakeFiles/parfact_symbolic.dir/symbolic_factor.cc.o"
  "CMakeFiles/parfact_symbolic.dir/symbolic_factor.cc.o.d"
  "libparfact_symbolic.a"
  "libparfact_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfact_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
