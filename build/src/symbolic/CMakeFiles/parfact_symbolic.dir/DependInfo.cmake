
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symbolic/etree.cc" "src/symbolic/CMakeFiles/parfact_symbolic.dir/etree.cc.o" "gcc" "src/symbolic/CMakeFiles/parfact_symbolic.dir/etree.cc.o.d"
  "/root/repo/src/symbolic/symbolic_factor.cc" "src/symbolic/CMakeFiles/parfact_symbolic.dir/symbolic_factor.cc.o" "gcc" "src/symbolic/CMakeFiles/parfact_symbolic.dir/symbolic_factor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/parfact_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parfact_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
