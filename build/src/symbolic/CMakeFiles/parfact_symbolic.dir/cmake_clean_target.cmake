file(REMOVE_RECURSE
  "libparfact_symbolic.a"
)
