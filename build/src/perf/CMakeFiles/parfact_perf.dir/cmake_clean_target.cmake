file(REMOVE_RECURSE
  "libparfact_perf.a"
)
