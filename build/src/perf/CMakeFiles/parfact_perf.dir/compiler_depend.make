# Empty compiler generated dependencies file for parfact_perf.
# This may be replaced when dependencies are built.
