file(REMOVE_RECURSE
  "CMakeFiles/parfact_perf.dir/dag_sim.cc.o"
  "CMakeFiles/parfact_perf.dir/dag_sim.cc.o.d"
  "libparfact_perf.a"
  "libparfact_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfact_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
