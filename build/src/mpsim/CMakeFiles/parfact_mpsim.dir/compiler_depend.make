# Empty compiler generated dependencies file for parfact_mpsim.
# This may be replaced when dependencies are built.
