file(REMOVE_RECURSE
  "CMakeFiles/parfact_mpsim.dir/machine.cc.o"
  "CMakeFiles/parfact_mpsim.dir/machine.cc.o.d"
  "libparfact_mpsim.a"
  "libparfact_mpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfact_mpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
