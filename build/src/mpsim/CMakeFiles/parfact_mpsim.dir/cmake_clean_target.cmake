file(REMOVE_RECURSE
  "libparfact_mpsim.a"
)
