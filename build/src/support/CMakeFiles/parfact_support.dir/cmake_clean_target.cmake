file(REMOVE_RECURSE
  "libparfact_support.a"
)
