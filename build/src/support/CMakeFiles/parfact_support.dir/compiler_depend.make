# Empty compiler generated dependencies file for parfact_support.
# This may be replaced when dependencies are built.
