file(REMOVE_RECURSE
  "CMakeFiles/parfact_support.dir/thread_pool.cc.o"
  "CMakeFiles/parfact_support.dir/thread_pool.cc.o.d"
  "libparfact_support.a"
  "libparfact_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfact_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
