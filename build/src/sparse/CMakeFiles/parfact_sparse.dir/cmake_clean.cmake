file(REMOVE_RECURSE
  "CMakeFiles/parfact_sparse.dir/gen.cc.o"
  "CMakeFiles/parfact_sparse.dir/gen.cc.o.d"
  "CMakeFiles/parfact_sparse.dir/io.cc.o"
  "CMakeFiles/parfact_sparse.dir/io.cc.o.d"
  "CMakeFiles/parfact_sparse.dir/ops.cc.o"
  "CMakeFiles/parfact_sparse.dir/ops.cc.o.d"
  "CMakeFiles/parfact_sparse.dir/sparse_matrix.cc.o"
  "CMakeFiles/parfact_sparse.dir/sparse_matrix.cc.o.d"
  "libparfact_sparse.a"
  "libparfact_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfact_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
