file(REMOVE_RECURSE
  "libparfact_sparse.a"
)
