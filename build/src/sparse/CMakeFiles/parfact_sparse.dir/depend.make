# Empty dependencies file for parfact_sparse.
# This may be replaced when dependencies are built.
