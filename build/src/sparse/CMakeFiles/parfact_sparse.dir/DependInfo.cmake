
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/gen.cc" "src/sparse/CMakeFiles/parfact_sparse.dir/gen.cc.o" "gcc" "src/sparse/CMakeFiles/parfact_sparse.dir/gen.cc.o.d"
  "/root/repo/src/sparse/io.cc" "src/sparse/CMakeFiles/parfact_sparse.dir/io.cc.o" "gcc" "src/sparse/CMakeFiles/parfact_sparse.dir/io.cc.o.d"
  "/root/repo/src/sparse/ops.cc" "src/sparse/CMakeFiles/parfact_sparse.dir/ops.cc.o" "gcc" "src/sparse/CMakeFiles/parfact_sparse.dir/ops.cc.o.d"
  "/root/repo/src/sparse/sparse_matrix.cc" "src/sparse/CMakeFiles/parfact_sparse.dir/sparse_matrix.cc.o" "gcc" "src/sparse/CMakeFiles/parfact_sparse.dir/sparse_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/parfact_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
