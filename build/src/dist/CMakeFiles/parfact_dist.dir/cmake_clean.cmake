file(REMOVE_RECURSE
  "CMakeFiles/parfact_dist.dir/dist_factor.cc.o"
  "CMakeFiles/parfact_dist.dir/dist_factor.cc.o.d"
  "CMakeFiles/parfact_dist.dir/dist_solve.cc.o"
  "CMakeFiles/parfact_dist.dir/dist_solve.cc.o.d"
  "CMakeFiles/parfact_dist.dir/mapping.cc.o"
  "CMakeFiles/parfact_dist.dir/mapping.cc.o.d"
  "libparfact_dist.a"
  "libparfact_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfact_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
