file(REMOVE_RECURSE
  "libparfact_dist.a"
)
