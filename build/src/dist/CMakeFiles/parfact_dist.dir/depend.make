# Empty dependencies file for parfact_dist.
# This may be replaced when dependencies are built.
