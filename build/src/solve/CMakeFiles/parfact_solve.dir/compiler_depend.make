# Empty compiler generated dependencies file for parfact_solve.
# This may be replaced when dependencies are built.
