file(REMOVE_RECURSE
  "libparfact_solve.a"
)
