file(REMOVE_RECURSE
  "CMakeFiles/parfact_solve.dir/condest.cc.o"
  "CMakeFiles/parfact_solve.dir/condest.cc.o.d"
  "CMakeFiles/parfact_solve.dir/solve.cc.o"
  "CMakeFiles/parfact_solve.dir/solve.cc.o.d"
  "libparfact_solve.a"
  "libparfact_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfact_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
