
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solve/condest.cc" "src/solve/CMakeFiles/parfact_solve.dir/condest.cc.o" "gcc" "src/solve/CMakeFiles/parfact_solve.dir/condest.cc.o.d"
  "/root/repo/src/solve/solve.cc" "src/solve/CMakeFiles/parfact_solve.dir/solve.cc.o" "gcc" "src/solve/CMakeFiles/parfact_solve.dir/solve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mf/CMakeFiles/parfact_mf.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/parfact_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/parfact_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/parfact_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parfact_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
