file(REMOVE_RECURSE
  "CMakeFiles/parfact_baseline.dir/iccg.cc.o"
  "CMakeFiles/parfact_baseline.dir/iccg.cc.o.d"
  "CMakeFiles/parfact_baseline.dir/left_looking.cc.o"
  "CMakeFiles/parfact_baseline.dir/left_looking.cc.o.d"
  "CMakeFiles/parfact_baseline.dir/simplicial.cc.o"
  "CMakeFiles/parfact_baseline.dir/simplicial.cc.o.d"
  "libparfact_baseline.a"
  "libparfact_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfact_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
