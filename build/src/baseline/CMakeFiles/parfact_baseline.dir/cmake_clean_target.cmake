file(REMOVE_RECURSE
  "libparfact_baseline.a"
)
