# Empty dependencies file for parfact_baseline.
# This may be replaced when dependencies are built.
