file(REMOVE_RECURSE
  "CMakeFiles/parfact_graph.dir/graph.cc.o"
  "CMakeFiles/parfact_graph.dir/graph.cc.o.d"
  "CMakeFiles/parfact_graph.dir/minimum_degree.cc.o"
  "CMakeFiles/parfact_graph.dir/minimum_degree.cc.o.d"
  "CMakeFiles/parfact_graph.dir/nested_dissection.cc.o"
  "CMakeFiles/parfact_graph.dir/nested_dissection.cc.o.d"
  "CMakeFiles/parfact_graph.dir/nested_dissection_parallel.cc.o"
  "CMakeFiles/parfact_graph.dir/nested_dissection_parallel.cc.o.d"
  "CMakeFiles/parfact_graph.dir/partition.cc.o"
  "CMakeFiles/parfact_graph.dir/partition.cc.o.d"
  "CMakeFiles/parfact_graph.dir/rcm.cc.o"
  "CMakeFiles/parfact_graph.dir/rcm.cc.o.d"
  "CMakeFiles/parfact_graph.dir/traversal.cc.o"
  "CMakeFiles/parfact_graph.dir/traversal.cc.o.d"
  "libparfact_graph.a"
  "libparfact_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfact_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
