file(REMOVE_RECURSE
  "libparfact_graph.a"
)
