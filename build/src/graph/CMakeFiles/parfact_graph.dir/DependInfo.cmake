
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/parfact_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/parfact_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/minimum_degree.cc" "src/graph/CMakeFiles/parfact_graph.dir/minimum_degree.cc.o" "gcc" "src/graph/CMakeFiles/parfact_graph.dir/minimum_degree.cc.o.d"
  "/root/repo/src/graph/nested_dissection.cc" "src/graph/CMakeFiles/parfact_graph.dir/nested_dissection.cc.o" "gcc" "src/graph/CMakeFiles/parfact_graph.dir/nested_dissection.cc.o.d"
  "/root/repo/src/graph/nested_dissection_parallel.cc" "src/graph/CMakeFiles/parfact_graph.dir/nested_dissection_parallel.cc.o" "gcc" "src/graph/CMakeFiles/parfact_graph.dir/nested_dissection_parallel.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/graph/CMakeFiles/parfact_graph.dir/partition.cc.o" "gcc" "src/graph/CMakeFiles/parfact_graph.dir/partition.cc.o.d"
  "/root/repo/src/graph/rcm.cc" "src/graph/CMakeFiles/parfact_graph.dir/rcm.cc.o" "gcc" "src/graph/CMakeFiles/parfact_graph.dir/rcm.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/graph/CMakeFiles/parfact_graph.dir/traversal.cc.o" "gcc" "src/graph/CMakeFiles/parfact_graph.dir/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/parfact_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parfact_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
