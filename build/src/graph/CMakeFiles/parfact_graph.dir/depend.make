# Empty dependencies file for parfact_graph.
# This may be replaced when dependencies are built.
