# Empty dependencies file for parfact_dense.
# This may be replaced when dependencies are built.
