file(REMOVE_RECURSE
  "CMakeFiles/parfact_dense.dir/kernels.cc.o"
  "CMakeFiles/parfact_dense.dir/kernels.cc.o.d"
  "libparfact_dense.a"
  "libparfact_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfact_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
