file(REMOVE_RECURSE
  "libparfact_dense.a"
)
