# Empty dependencies file for parfact_api.
# This may be replaced when dependencies are built.
