file(REMOVE_RECURSE
  "CMakeFiles/parfact_api.dir/schur.cc.o"
  "CMakeFiles/parfact_api.dir/schur.cc.o.d"
  "CMakeFiles/parfact_api.dir/solver.cc.o"
  "CMakeFiles/parfact_api.dir/solver.cc.o.d"
  "libparfact_api.a"
  "libparfact_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfact_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
