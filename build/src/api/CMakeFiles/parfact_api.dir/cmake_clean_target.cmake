file(REMOVE_RECURSE
  "libparfact_api.a"
)
