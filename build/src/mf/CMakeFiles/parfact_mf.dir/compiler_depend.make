# Empty compiler generated dependencies file for parfact_mf.
# This may be replaced when dependencies are built.
