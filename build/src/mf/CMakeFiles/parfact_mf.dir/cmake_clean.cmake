file(REMOVE_RECURSE
  "CMakeFiles/parfact_mf.dir/factor.cc.o"
  "CMakeFiles/parfact_mf.dir/factor.cc.o.d"
  "CMakeFiles/parfact_mf.dir/front_kernel.cc.o"
  "CMakeFiles/parfact_mf.dir/front_kernel.cc.o.d"
  "CMakeFiles/parfact_mf.dir/multifrontal.cc.o"
  "CMakeFiles/parfact_mf.dir/multifrontal.cc.o.d"
  "CMakeFiles/parfact_mf.dir/ooc.cc.o"
  "CMakeFiles/parfact_mf.dir/ooc.cc.o.d"
  "libparfact_mf.a"
  "libparfact_mf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfact_mf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
