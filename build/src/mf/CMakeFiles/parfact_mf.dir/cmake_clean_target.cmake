file(REMOVE_RECURSE
  "libparfact_mf.a"
)
