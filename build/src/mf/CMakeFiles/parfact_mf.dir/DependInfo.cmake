
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mf/factor.cc" "src/mf/CMakeFiles/parfact_mf.dir/factor.cc.o" "gcc" "src/mf/CMakeFiles/parfact_mf.dir/factor.cc.o.d"
  "/root/repo/src/mf/front_kernel.cc" "src/mf/CMakeFiles/parfact_mf.dir/front_kernel.cc.o" "gcc" "src/mf/CMakeFiles/parfact_mf.dir/front_kernel.cc.o.d"
  "/root/repo/src/mf/multifrontal.cc" "src/mf/CMakeFiles/parfact_mf.dir/multifrontal.cc.o" "gcc" "src/mf/CMakeFiles/parfact_mf.dir/multifrontal.cc.o.d"
  "/root/repo/src/mf/ooc.cc" "src/mf/CMakeFiles/parfact_mf.dir/ooc.cc.o" "gcc" "src/mf/CMakeFiles/parfact_mf.dir/ooc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/symbolic/CMakeFiles/parfact_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/parfact_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parfact_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/parfact_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
