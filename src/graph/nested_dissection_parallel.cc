// Task-parallel nested dissection: after a bisection, the two parts are
// completely independent subproblems, so each recursion level doubles the
// available parallelism — the same structure the numeric phase exploits.
//
// Determinism: every task derives its PRNG seed from its position in the
// dissection tree (not from the executing thread), so the ordering is
// identical for any pool size, including 1, and matches itself run to run.
// It is *not* bit-identical to the sequential nested_dissection(), whose
// single PRNG stream interleaves differently.
#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <numeric>

#include "graph/ordering.h"
#include "graph/partition.h"
#include "support/error.h"
#include "support/prng.h"

namespace parfact {
namespace {

/// Mixes a child index into a parent seed (splitmix64 finalizer).
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t salt) {
  std::uint64_t z = parent + 0x9e3779b97f4a7c15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class ParallelDissector {
 public:
  ParallelDissector(const Graph& g, const OrderingOptions& opts,
                    ThreadPool& pool)
      : g_(g),
        opts_(opts),
        pool_(pool),
        perm_(static_cast<std::size_t>(g.n), kNone) {}

  std::vector<index_t> run() {
    std::vector<index_t> all(static_cast<std::size_t>(g_.n));
    std::iota(all.begin(), all.end(), 0);
    submit_task(std::move(all), 0, opts_.seed);
    pool_.wait();
    return std::move(perm_);
  }

 private:
  /// Scratch arrays (size n) are pooled: live count is bounded by the
  /// number of concurrently running tasks, not by the recursion tree size.
  std::unique_ptr<std::vector<index_t>> acquire_scratch() {
    {
      std::lock_guard<std::mutex> lock(scratch_mu_);
      if (!scratch_pool_.empty()) {
        auto s = std::move(scratch_pool_.back());
        scratch_pool_.pop_back();
        return s;
      }
    }
    return std::make_unique<std::vector<index_t>>(
        static_cast<std::size_t>(g_.n), kNone);
  }
  void release_scratch(std::unique_ptr<std::vector<index_t>> s) {
    std::lock_guard<std::mutex> lock(scratch_mu_);
    scratch_pool_.push_back(std::move(s));
  }

  void submit_task(std::vector<index_t> vertices, index_t out_begin,
                   std::uint64_t seed) {
    // Small subproblems run inline in the parent task: task-spawn overhead
    // would otherwise dominate near the leaves.
    auto work = [this, vertices = std::move(vertices), out_begin, seed]() {
      dissect(vertices, out_begin, seed);
    };
    if (static_cast<index_t>(vertices.size()) <= 4 * opts_.nd_leaf_size) {
      work();
    } else {
      pool_.submit(std::move(work));
    }
  }

  void order_leaf(const std::vector<index_t>& vertices, index_t out_begin) {
    if (opts_.leaf_minimum_degree &&
        static_cast<index_t>(vertices.size()) > 2) {
      auto scratch = acquire_scratch();
      const Graph sub = induced_subgraph(g_, vertices, *scratch);
      release_scratch(std::move(scratch));
      const std::vector<index_t> sub_perm = minimum_degree(sub);
      for (std::size_t k = 0; k < vertices.size(); ++k) {
        perm_[out_begin + static_cast<index_t>(k)] = vertices[sub_perm[k]];
      }
    } else {
      for (std::size_t k = 0; k < vertices.size(); ++k) {
        perm_[out_begin + static_cast<index_t>(k)] = vertices[k];
      }
    }
  }

  void dissect(const std::vector<index_t>& vertices, index_t out_begin,
               std::uint64_t seed) {
    const auto n_sub = static_cast<index_t>(vertices.size());
    if (n_sub <= opts_.nd_leaf_size) {
      order_leaf(vertices, out_begin);
      return;
    }
    Prng rng(seed);
    auto scratch = acquire_scratch();
    const Graph sub = induced_subgraph(g_, vertices, *scratch);
    release_scratch(std::move(scratch));
    Bisection b = multilevel_bisection(sub, opts_.partition, rng);
    const std::vector<index_t> sep = vertex_separator(sub, &b);

    std::vector<index_t> part[2];
    for (index_t v = 0; v < sub.n; ++v) {
      if (b.side[v] != 2) part[b.side[v]].push_back(vertices[v]);
    }
    if (part[0].empty() || part[1].empty()) {
      order_leaf(vertices, out_begin);
      return;
    }
    const auto n0 = static_cast<index_t>(part[0].size());
    const auto n1 = static_cast<index_t>(part[1].size());
    index_t sep_begin = out_begin + n0 + n1;
    for (index_t s : sep) perm_[sep_begin++] = vertices[s];

    submit_task(std::move(part[0]), out_begin, derive_seed(seed, 0));
    submit_task(std::move(part[1]), out_begin + n0, derive_seed(seed, 1));
  }

  const Graph& g_;
  const OrderingOptions& opts_;
  ThreadPool& pool_;
  std::vector<index_t> perm_;  // disjoint slices written by distinct tasks
  std::mutex scratch_mu_;
  std::vector<std::unique_ptr<std::vector<index_t>>> scratch_pool_;
};

}  // namespace

std::vector<index_t> nested_dissection_parallel(const Graph& g,
                                                const OrderingOptions& opts,
                                                ThreadPool& pool) {
  if (g.n == 0) return {};
  ParallelDissector nd(g, opts, pool);
  std::vector<index_t> perm = nd.run();
  PARFACT_CHECK(std::count(perm.begin(), perm.end(), kNone) == 0);
  return perm;
}

}  // namespace parfact
