// Reverse Cuthill–McKee ordering (bandwidth reduction baseline).
#include <algorithm>

#include "graph/ordering.h"
#include "graph/traversal.h"
#include "support/error.h"

namespace parfact {

std::vector<index_t> rcm(const Graph& g) {
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(g.n));
  std::vector<char> visited(static_cast<std::size_t>(g.n), 0);
  std::vector<index_t> frontier;

  for (index_t start = 0; start < g.n; ++start) {
    if (visited[start]) continue;
    const index_t root = pseudo_peripheral_vertex(g, start);
    // Cuthill–McKee BFS: within each level, visit neighbors in increasing
    // degree order.
    visited[root] = 1;
    order.push_back(root);
    std::size_t level_begin = order.size() - 1;
    while (level_begin < order.size()) {
      const std::size_t level_end = order.size();
      for (std::size_t k = level_begin; k < level_end; ++k) {
        frontier.clear();
        for (index_t u : g.neighbors(order[k])) {
          if (!visited[u]) {
            visited[u] = 1;
            frontier.push_back(u);
          }
        }
        std::sort(frontier.begin(), frontier.end(),
                  [&g](index_t a, index_t b) {
                    return std::pair(g.degree(a), a) <
                           std::pair(g.degree(b), b);
                  });
        order.insert(order.end(), frontier.begin(), frontier.end());
      }
      level_begin = level_end;
    }
  }
  PARFACT_CHECK(order.size() == static_cast<std::size_t>(g.n));
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace parfact
