// Fill-reducing orderings.
//
// All functions return a permutation `perm` with perm[new_index] = old_index;
// apply with permute_symmetric(A, perm). Nested dissection is the ordering
// the parallel solver uses (its separator tree becomes the top of the
// parallel task tree); minimum degree is the classic sequential alternative
// (and orders the small leaf subgraphs inside ND); RCM is the
// bandwidth-reducing baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "support/thread_pool.h"
#include "support/types.h"

namespace parfact {

struct OrderingOptions {
  /// Subgraphs at or below this size stop the ND recursion.
  index_t nd_leaf_size = 64;
  /// Order ND leaves with minimum degree (true) or leave them in place.
  bool leaf_minimum_degree = true;
  /// Multilevel partitioner knobs.
  PartitionOptions partition;
  /// PRNG seed (ND is randomized via the partitioner).
  std::uint64_t seed = 1;
};

/// Multilevel nested dissection.
[[nodiscard]] std::vector<index_t> nested_dissection(
    const Graph& g, const OrderingOptions& opts = {});

/// Task-parallel nested dissection: the two halves of every bisection are
/// ordered concurrently on `pool`. Deterministic for a fixed seed regardless
/// of pool size (per-task PRNG streams), but a different — equal-quality —
/// ordering than the sequential variant.
[[nodiscard]] std::vector<index_t> nested_dissection_parallel(
    const Graph& g, const OrderingOptions& opts, ThreadPool& pool);

/// Exact-external-degree minimum degree on a quotient graph with element
/// absorption. Suitable for graphs up to a few hundred thousand vertices.
[[nodiscard]] std::vector<index_t> minimum_degree(const Graph& g);

/// Reverse Cuthill–McKee.
[[nodiscard]] std::vector<index_t> rcm(const Graph& g);

}  // namespace parfact
