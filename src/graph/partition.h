// Graph bisection: greedy growing, Fiduccia–Mattheyses refinement, multilevel
// scheme (heavy-edge-matching coarsening), and vertex-separator extraction.
//
// This is the engine behind nested dissection. It mirrors the standard
// multilevel partitioner design (METIS-class): coarsen with heavy-edge
// matching until the graph is small, bisect the coarsest graph greedily,
// then uncoarsen while refining the cut with FM passes at every level.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "support/prng.h"
#include "support/types.h"

namespace parfact {

/// An edge bisection: side[v] in {0, 1}. After separator extraction, side[v]
/// may also be 2 (vertex belongs to the separator).
struct Bisection {
  std::vector<signed char> side;
  count_t cut = 0;               ///< total weight of edges between sides
  count_t side_weight[2] = {0, 0};

  [[nodiscard]] double balance() const {
    const count_t total = side_weight[0] + side_weight[1];
    if (total == 0) return 1.0;
    return 2.0 * static_cast<double>(
                     std::max(side_weight[0], side_weight[1])) /
           static_cast<double>(total);
  }
};

struct PartitionOptions {
  /// Allowed imbalance: max side weight <= (1+tol)/2 * total.
  double balance_tol = 0.2;
  /// Stop coarsening when at most this many vertices remain.
  index_t coarse_target = 96;
  /// FM passes per level.
  int fm_passes = 6;
  /// Independent multilevel attempts; the best cut wins.
  int attempts = 2;
};

/// Recomputes `cut` and `side_weight` from `side` (checks consistency).
void recompute_bisection_stats(const Graph& g, Bisection* b);

/// Grows side 0 from a pseudo-peripheral vertex until it holds half the
/// vertex weight; remaining vertices form side 1.
[[nodiscard]] Bisection greedy_grow_bisection(const Graph& g, Prng& rng);

/// Boundary FM refinement: hill-climbing passes that move boundary vertices
/// between sides, keeping balance within `opts.balance_tol`, keeping the best
/// prefix of each pass. Updates b in place.
void fm_refine(const Graph& g, const PartitionOptions& opts, Bisection* b);

/// Heavy-edge matching coarsening step. Returns the coarse graph and fills
/// `cmap` (fine vertex -> coarse vertex). Returns a graph with n == g.n when
/// no coarsening was possible (caller should stop).
[[nodiscard]] Graph coarsen(const Graph& g, Prng& rng,
                            std::vector<index_t>* cmap);

/// Full multilevel bisection of a connected or disconnected graph.
[[nodiscard]] Bisection multilevel_bisection(const Graph& g,
                                             const PartitionOptions& opts,
                                             Prng& rng);

/// Converts an edge bisection into a vertex separator using a greedy vertex
/// cover of the cut edges. Marks separator vertices with side 2 and returns
/// their list. After the call no 0-1 edge remains.
[[nodiscard]] std::vector<index_t> vertex_separator(const Graph& g,
                                                    Bisection* b);

}  // namespace parfact
