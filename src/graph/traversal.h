// Breadth-first traversals: components, BFS levels, pseudo-peripheral seeds.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "support/types.h"

namespace parfact {

/// Connected components. Returns component id per vertex (0-based, dense) and
/// the number of components via `n_components`.
[[nodiscard]] std::vector<index_t> connected_components(const Graph& g,
                                                        index_t* n_components);

/// BFS from `source`; returns the level of every vertex (kNone = unreachable).
[[nodiscard]] std::vector<index_t> bfs_levels(const Graph& g, index_t source);

/// A vertex of (approximately) maximal eccentricity in the component of
/// `seed`, found by the George–Liu repeated-BFS heuristic. Used to seed both
/// the graph-growing bisection and RCM.
[[nodiscard]] index_t pseudo_peripheral_vertex(const Graph& g, index_t seed);

}  // namespace parfact
