#include <algorithm>
#include <numeric>

#include "graph/ordering.h"
#include "graph/partition.h"
#include "support/error.h"
#include "support/prng.h"

namespace parfact {
namespace {

/// Recursive worker. `vertices` holds the global ids of the subgraph to
/// order; the ordering of that subgraph is written to positions
/// [out_begin, out_begin + vertices.size()) of `perm`.
class NestedDissector {
 public:
  NestedDissector(const Graph& g, const OrderingOptions& opts)
      : g_(g),
        opts_(opts),
        rng_(opts.seed),
        local_of_(static_cast<std::size_t>(g.n), kNone),
        perm_(static_cast<std::size_t>(g.n), kNone) {}

  std::vector<index_t> run() {
    std::vector<index_t> all(static_cast<std::size_t>(g_.n));
    std::iota(all.begin(), all.end(), 0);
    dissect(std::move(all), 0);
    return std::move(perm_);
  }

 private:
  void order_leaf(const std::vector<index_t>& vertices, index_t out_begin) {
    if (opts_.leaf_minimum_degree &&
        static_cast<index_t>(vertices.size()) > 2) {
      const Graph sub = induced_subgraph(g_, vertices, local_of_);
      const std::vector<index_t> sub_perm = minimum_degree(sub);
      for (std::size_t k = 0; k < vertices.size(); ++k) {
        perm_[out_begin + static_cast<index_t>(k)] = vertices[sub_perm[k]];
      }
    } else {
      for (std::size_t k = 0; k < vertices.size(); ++k) {
        perm_[out_begin + static_cast<index_t>(k)] = vertices[k];
      }
    }
  }

  void dissect(std::vector<index_t> vertices, index_t out_begin) {
    const auto n_sub = static_cast<index_t>(vertices.size());
    if (n_sub <= opts_.nd_leaf_size) {
      order_leaf(vertices, out_begin);
      return;
    }

    const Graph sub = induced_subgraph(g_, vertices, local_of_);
    Bisection b = multilevel_bisection(sub, opts_.partition, rng_);
    const std::vector<index_t> sep = vertex_separator(sub, &b);

    // A degenerate split (everything in the separator or one side empty and
    // no separator) cannot make progress; fall back to a leaf ordering.
    std::vector<index_t> part[2];
    for (index_t v = 0; v < sub.n; ++v) {
      if (b.side[v] != 2) part[b.side[v]].push_back(vertices[v]);
    }
    if (part[0].empty() || part[1].empty()) {
      order_leaf(vertices, out_begin);
      return;
    }

    // Order: part 0, part 1, then separator last (it is the elimination-tree
    // root of this subproblem).
    const auto n0 = static_cast<index_t>(part[0].size());
    const auto n1 = static_cast<index_t>(part[1].size());
    index_t sep_begin = out_begin + n0 + n1;
    for (index_t s : sep) {
      perm_[sep_begin++] = vertices[s];
    }
    // Recurse. Free the parent's vertex list before descending to bound
    // peak memory to O(n log n) -> O(n) per level.
    std::vector<index_t> p0 = std::move(part[0]);
    std::vector<index_t> p1 = std::move(part[1]);
    vertices.clear();
    vertices.shrink_to_fit();
    dissect(std::move(p0), out_begin);
    dissect(std::move(p1), out_begin + n0);
  }

  const Graph& g_;
  const OrderingOptions& opts_;
  Prng rng_;
  std::vector<index_t> local_of_;
  std::vector<index_t> perm_;
};

}  // namespace

std::vector<index_t> nested_dissection(const Graph& g,
                                       const OrderingOptions& opts) {
  if (g.n == 0) return {};
  NestedDissector nd(g, opts);
  std::vector<index_t> perm = nd.run();
  PARFACT_CHECK(std::count(perm.begin(), perm.end(), kNone) == 0);
  return perm;
}

}  // namespace parfact
