// Undirected adjacency graph in CSR form.
//
// This is the structure the ordering code (nested dissection, minimum degree,
// RCM) operates on. Invariants: symmetric (every edge stored in both
// endpoints' lists), no self-loops, neighbor lists sorted. Vertex and edge
// weights carry coarsening multiplicities in the multilevel partitioner.
#pragma once

#include <span>
#include <vector>

#include "sparse/sparse_matrix.h"
#include "support/types.h"

namespace parfact {

struct Graph {
  index_t n = 0;
  std::vector<index_t> adj_ptr;  ///< size n+1
  std::vector<index_t> adj;      ///< concatenated sorted neighbor lists
  std::vector<index_t> vwgt;     ///< vertex weights, size n
  std::vector<index_t> ewgt;     ///< edge weights, parallel to adj

  [[nodiscard]] index_t degree(index_t v) const {
    return adj_ptr[v + 1] - adj_ptr[v];
  }
  [[nodiscard]] std::span<const index_t> neighbors(index_t v) const {
    return {adj.data() + adj_ptr[v],
            static_cast<std::size_t>(degree(v))};
  }
  [[nodiscard]] count_t total_vertex_weight() const;
  [[nodiscard]] index_t edge_count() const {  // undirected edges
    return static_cast<index_t>(adj.size() / 2);
  }

  /// Throws on any violated invariant.
  void validate() const;
};

/// Builds the adjacency graph of a symmetric sparse matrix pattern. Accepts
/// lower-triangle-stored or full-stored input; the diagonal is ignored.
/// All vertex and edge weights are 1.
[[nodiscard]] Graph graph_from_pattern(const SparseMatrix& a);

/// Extracts the vertex-induced subgraph on `vertices` (which must be
/// duplicate-free). `local_of` scratch must be of size g.n, filled with kNone,
/// and is restored to kNone on return. The i-th subgraph vertex corresponds
/// to vertices[i].
[[nodiscard]] Graph induced_subgraph(const Graph& g,
                                     std::span<const index_t> vertices,
                                     std::vector<index_t>& local_of);

}  // namespace parfact
