#include "graph/traversal.h"

#include <algorithm>

#include "support/error.h"

namespace parfact {

std::vector<index_t> connected_components(const Graph& g,
                                          index_t* n_components) {
  std::vector<index_t> comp(static_cast<std::size_t>(g.n), kNone);
  std::vector<index_t> stack;
  index_t next_id = 0;
  for (index_t start = 0; start < g.n; ++start) {
    if (comp[start] != kNone) continue;
    comp[start] = next_id;
    stack.push_back(start);
    while (!stack.empty()) {
      const index_t v = stack.back();
      stack.pop_back();
      for (index_t u : g.neighbors(v)) {
        if (comp[u] == kNone) {
          comp[u] = next_id;
          stack.push_back(u);
        }
      }
    }
    ++next_id;
  }
  if (n_components != nullptr) *n_components = next_id;
  return comp;
}

std::vector<index_t> bfs_levels(const Graph& g, index_t source) {
  PARFACT_CHECK(source >= 0 && source < g.n);
  std::vector<index_t> level(static_cast<std::size_t>(g.n), kNone);
  std::vector<index_t> frontier{source};
  level[source] = 0;
  index_t depth = 0;
  std::vector<index_t> next;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (index_t v : frontier) {
      for (index_t u : g.neighbors(v)) {
        if (level[u] == kNone) {
          level[u] = depth;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
  }
  return level;
}

index_t pseudo_peripheral_vertex(const Graph& g, index_t seed) {
  PARFACT_CHECK(seed >= 0 && seed < g.n);
  index_t v = seed;
  index_t best_ecc = -1;
  // George–Liu: repeatedly jump to a smallest-degree vertex in the deepest
  // BFS level until the eccentricity stops increasing.
  for (int iter = 0; iter < 8; ++iter) {
    const std::vector<index_t> level = bfs_levels(g, v);
    index_t ecc = 0;
    for (index_t l : level) ecc = std::max(ecc, l == kNone ? index_t{0} : l);
    if (ecc <= best_ecc) break;
    best_ecc = ecc;
    index_t candidate = v;
    index_t candidate_deg = kIndexMax;
    for (index_t u = 0; u < g.n; ++u) {
      if (level[u] == ecc && g.degree(u) < candidate_deg) {
        candidate = u;
        candidate_deg = g.degree(u);
      }
    }
    v = candidate;
  }
  return v;
}

}  // namespace parfact
