#include "graph/partition.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <tuple>
#include <utility>

#include "graph/traversal.h"
#include "support/error.h"

namespace parfact {

void recompute_bisection_stats(const Graph& g, Bisection* b) {
  PARFACT_CHECK(b->side.size() == static_cast<std::size_t>(g.n));
  b->cut = 0;
  b->side_weight[0] = b->side_weight[1] = 0;
  for (index_t v = 0; v < g.n; ++v) {
    PARFACT_CHECK(b->side[v] == 0 || b->side[v] == 1);
    b->side_weight[b->side[v]] += g.vwgt[v];
    for (index_t p = g.adj_ptr[v]; p < g.adj_ptr[v + 1]; ++p) {
      if (g.adj[p] > v && b->side[g.adj[p]] != b->side[v]) {
        b->cut += g.ewgt[p];
      }
    }
  }
}

Bisection greedy_grow_bisection(const Graph& g, Prng& rng) {
  Bisection b;
  b.side.assign(static_cast<std::size_t>(g.n), 1);
  const count_t total = g.total_vertex_weight();
  const count_t target = total / 2;

  // Grow side 0 as a BFS region from a pseudo-peripheral vertex, preferring
  // frontier vertices with many neighbors already inside (reduces the cut).
  const index_t seed =
      g.n > 0 ? pseudo_peripheral_vertex(g, rng.next_index(g.n)) : 0;
  count_t grown = 0;
  std::vector<index_t> inside_links(static_cast<std::size_t>(g.n), 0);
  // Priority queue keyed by inside-link weight; lazily invalidated.
  std::priority_queue<std::pair<index_t, index_t>> frontier;
  std::vector<char> queued(static_cast<std::size_t>(g.n), 0);
  index_t component_seed = seed;
  while (grown < target) {
    if (frontier.empty()) {
      // Start (or continue into a new component) from an unassigned vertex.
      index_t s = kNone;
      for (index_t v = component_seed; v < g.n; ++v) {
        if (b.side[v] == 1 && !queued[v]) {
          s = v;
          break;
        }
      }
      if (s == kNone) break;
      component_seed = s;
      frontier.emplace(0, s);
      queued[s] = 1;
      continue;
    }
    const auto [links, v] = frontier.top();
    frontier.pop();
    if (b.side[v] == 0) continue;              // already taken
    if (links != inside_links[v]) continue;    // stale entry
    b.side[v] = 0;
    grown += g.vwgt[v];
    for (index_t p = g.adj_ptr[v]; p < g.adj_ptr[v + 1]; ++p) {
      const index_t u = g.adj[p];
      if (b.side[u] == 1) {
        inside_links[u] += g.ewgt[p];
        frontier.emplace(inside_links[u], u);
        queued[u] = 1;
      }
    }
  }
  recompute_bisection_stats(g, &b);
  return b;
}

namespace {

/// Gain of moving v to the other side: (cut removed) - (cut added).
count_t move_gain(const Graph& g, const Bisection& b, index_t v) {
  count_t gain = 0;
  for (index_t p = g.adj_ptr[v]; p < g.adj_ptr[v + 1]; ++p) {
    gain += (b.side[g.adj[p]] != b.side[v]) ? g.ewgt[p] : -g.ewgt[p];
  }
  return gain;
}

}  // namespace

void fm_refine(const Graph& g, const PartitionOptions& opts, Bisection* b) {
  const count_t total = b->side_weight[0] + b->side_weight[1];
  const auto max_side = static_cast<count_t>(
      (1.0 + opts.balance_tol) / 2.0 * static_cast<double>(total));

  std::vector<char> locked(static_cast<std::size_t>(g.n));
  std::vector<count_t> gain(static_cast<std::size_t>(g.n));

  for (int pass = 0; pass < opts.fm_passes; ++pass) {
    std::fill(locked.begin(), locked.end(), 0);
    // Lazy max-heap of (gain, vertex); stale entries skipped on pop.
    std::priority_queue<std::pair<count_t, index_t>> heap;
    for (index_t v = 0; v < g.n; ++v) {
      gain[v] = move_gain(g, *b, v);
      // Seed with boundary vertices only; interior vertices enter the heap
      // when a neighbor moves.
      bool boundary = false;
      for (index_t p = g.adj_ptr[v]; p < g.adj_ptr[v + 1] && !boundary; ++p) {
        boundary = b->side[g.adj[p]] != b->side[v];
      }
      if (boundary) heap.emplace(gain[v], v);
    }

    count_t best_improvement = 0;
    count_t improvement = 0;
    std::vector<index_t> moved;  // in order, to allow rollback past the best
    std::size_t best_prefix = 0;

    while (!heap.empty()) {
      const auto [gv, v] = heap.top();
      heap.pop();
      if (locked[v] || gv != gain[v]) continue;
      const int from = b->side[v];
      const int to = 1 - from;
      if (b->side_weight[to] + g.vwgt[v] > max_side) continue;
      // Tentatively move v.
      locked[v] = 1;
      b->side[v] = static_cast<signed char>(to);
      b->side_weight[from] -= g.vwgt[v];
      b->side_weight[to] += g.vwgt[v];
      improvement += gv;
      moved.push_back(v);
      if (improvement > best_improvement) {
        best_improvement = improvement;
        best_prefix = moved.size();
      }
      for (index_t p = g.adj_ptr[v]; p < g.adj_ptr[v + 1]; ++p) {
        const index_t u = g.adj[p];
        if (locked[u]) continue;
        gain[u] = move_gain(g, *b, u);
        heap.emplace(gain[u], u);
      }
      // Bail out of clearly unprofitable passes.
      if (moved.size() > best_prefix + 200 && improvement < best_improvement) {
        break;
      }
    }

    // Roll back moves past the best prefix.
    for (std::size_t k = moved.size(); k > best_prefix; --k) {
      const index_t v = moved[k - 1];
      const int cur = b->side[v];
      b->side[v] = static_cast<signed char>(1 - cur);
      b->side_weight[cur] -= g.vwgt[v];
      b->side_weight[1 - cur] += g.vwgt[v];
    }
    b->cut -= best_improvement;
    if (best_improvement == 0) break;
  }
  PARFACT_DCHECK([&] {
    Bisection check = *b;
    recompute_bisection_stats(g, &check);
    return check.cut == b->cut;
  }());
}

Graph coarsen(const Graph& g, Prng& rng, std::vector<index_t>* cmap) {
  cmap->assign(static_cast<std::size_t>(g.n), kNone);
  std::vector<index_t> order(static_cast<std::size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  // Random visit order decorrelates matchings across attempts.
  for (index_t i = g.n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.next_index(i + 1)]);
  }

  index_t n_coarse = 0;
  for (index_t v : order) {
    if ((*cmap)[v] != kNone) continue;
    // Heavy-edge: match with the unmatched neighbor of max edge weight.
    index_t best = kNone;
    index_t best_w = -1;
    for (index_t p = g.adj_ptr[v]; p < g.adj_ptr[v + 1]; ++p) {
      const index_t u = g.adj[p];
      if ((*cmap)[u] == kNone && g.ewgt[p] > best_w) {
        best = u;
        best_w = g.ewgt[p];
      }
    }
    (*cmap)[v] = n_coarse;
    if (best != kNone) (*cmap)[best] = n_coarse;
    ++n_coarse;
  }

  Graph c;
  c.n = n_coarse;
  c.vwgt.assign(static_cast<std::size_t>(n_coarse), 0);
  for (index_t v = 0; v < g.n; ++v) c.vwgt[(*cmap)[v]] += g.vwgt[v];

  // Build coarse adjacency: union of mapped edges with summed weights.
  std::vector<std::pair<index_t, std::pair<index_t, index_t>>> edges;
  for (index_t v = 0; v < g.n; ++v) {
    const index_t cv = (*cmap)[v];
    for (index_t p = g.adj_ptr[v]; p < g.adj_ptr[v + 1]; ++p) {
      const index_t cu = (*cmap)[g.adj[p]];
      if (cu != cv) edges.push_back({cv, {cu, g.ewgt[p]}});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) {
              return std::tie(a.first, a.second.first) <
                     std::tie(b.first, b.second.first);
            });
  c.adj_ptr.assign(static_cast<std::size_t>(n_coarse) + 1, 0);
  for (std::size_t k = 0; k < edges.size();) {
    const index_t cv = edges[k].first;
    const index_t cu = edges[k].second.first;
    index_t w = 0;
    while (k < edges.size() && edges[k].first == cv &&
           edges[k].second.first == cu) {
      w += edges[k].second.second;
      ++k;
    }
    c.adj.push_back(cu);
    c.ewgt.push_back(w);
    ++c.adj_ptr[cv + 1];
  }
  for (index_t v = 0; v < n_coarse; ++v) c.adj_ptr[v + 1] += c.adj_ptr[v];
  return c;
}

Bisection multilevel_bisection(const Graph& g, const PartitionOptions& opts,
                               Prng& rng) {
  PARFACT_CHECK(g.n >= 2);
  Bisection best;
  for (int attempt = 0; attempt < std::max(1, opts.attempts); ++attempt) {
    // Coarsening phase.
    std::vector<Graph> levels;
    std::vector<std::vector<index_t>> maps;
    levels.push_back(g);
    while (levels.back().n > opts.coarse_target) {
      std::vector<index_t> cmap;
      Graph c = coarsen(levels.back(), rng, &cmap);
      if (c.n >= levels.back().n * 95 / 100) break;  // matching stalled
      maps.push_back(std::move(cmap));
      levels.push_back(std::move(c));
    }

    // Initial bisection at the coarsest level.
    Bisection b = greedy_grow_bisection(levels.back(), rng);
    fm_refine(levels.back(), opts, &b);

    // Uncoarsening with refinement.
    for (std::size_t l = maps.size(); l > 0; --l) {
      const Graph& fine = levels[l - 1];
      Bisection fb;
      fb.side.resize(static_cast<std::size_t>(fine.n));
      for (index_t v = 0; v < fine.n; ++v) fb.side[v] = b.side[maps[l - 1][v]];
      recompute_bisection_stats(fine, &fb);
      fm_refine(fine, opts, &fb);
      b = std::move(fb);
    }

    if (attempt == 0 || b.cut < best.cut) best = std::move(b);
  }
  return best;
}

std::vector<index_t> vertex_separator(const Graph& g, Bisection* b) {
  // Greedy vertex cover of the cut edges: repeatedly take the endpoint
  // covering the most uncovered cut edges. Ties prefer the heavier side to
  // keep parts balanced.
  std::vector<index_t> cover_degree(static_cast<std::size_t>(g.n), 0);
  count_t cut_edges = 0;
  for (index_t v = 0; v < g.n; ++v) {
    for (index_t p = g.adj_ptr[v]; p < g.adj_ptr[v + 1]; ++p) {
      const index_t u = g.adj[p];
      if (u > v && b->side[u] != b->side[v]) {
        ++cover_degree[v];
        ++cover_degree[u];
        ++cut_edges;
      }
    }
  }
  std::priority_queue<std::pair<index_t, index_t>> heap;
  for (index_t v = 0; v < g.n; ++v) {
    if (cover_degree[v] > 0) heap.emplace(cover_degree[v], v);
  }
  std::vector<index_t> separator;
  while (cut_edges > 0) {
    PARFACT_CHECK(!heap.empty());
    const auto [deg, v] = heap.top();
    heap.pop();
    if (b->side[v] == 2 || deg != cover_degree[v]) continue;
    separator.push_back(v);
    // Removing v covers all its remaining cut edges.
    for (index_t p = g.adj_ptr[v]; p < g.adj_ptr[v + 1]; ++p) {
      const index_t u = g.adj[p];
      if (b->side[u] != 2 && b->side[u] != b->side[v]) {
        --cut_edges;
        --cover_degree[u];
        if (cover_degree[u] > 0) heap.emplace(cover_degree[u], u);
      }
    }
    cover_degree[v] = 0;
    b->side[v] = 2;
  }
  return separator;
}

}  // namespace parfact
