// Exact-external-degree minimum degree ordering on a quotient graph.
//
// Classic George–Liu quotient-graph formulation: eliminating variable v
// turns it into an *element* whose boundary list L_v is the union of v's
// remaining variable neighbors and the boundaries of the elements already
// adjacent to v (which the new element absorbs). Degrees of the variables in
// L_v are then recomputed exactly with a marker array. No supervariable
// compression — exactness over speed; the parallel solver only runs this on
// ND leaf subgraphs and on moderate whole matrices for the F3 experiment.
#include <algorithm>
#include <queue>

#include "graph/ordering.h"
#include "support/error.h"

namespace parfact {

std::vector<index_t> minimum_degree(const Graph& g) {
  const index_t n = g.n;
  std::vector<index_t> perm;
  perm.reserve(static_cast<std::size_t>(n));

  // Quotient-graph state. A vertex id is a *variable* until eliminated and
  // an *element* afterwards. elem_list[v] is only meaningful once v is an
  // element; defunct elements have been absorbed into a newer one.
  std::vector<std::vector<index_t>> adj_vars(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> adj_elems(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> elem_list(static_cast<std::size_t>(n));
  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  std::vector<char> defunct(static_cast<std::size_t>(n), 0);
  std::vector<index_t> degree(static_cast<std::size_t>(n));
  std::vector<count_t> marker(static_cast<std::size_t>(n), -1);
  count_t next_mark = 0;  // strictly increasing, so marks never need resetting

  for (index_t v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    adj_vars[v].assign(nb.begin(), nb.end());
    degree[v] = g.degree(v);
  }

  // Lazy min-heap keyed by (degree, vertex); stale entries skipped.
  using Entry = std::pair<index_t, index_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (index_t v = 0; v < n; ++v) heap.emplace(degree[v], v);

  // Scratch for the union computation of each elimination.
  std::vector<index_t> boundary;

  for (index_t step = 0; step < n; ++step) {
    index_t v = kNone;
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (!eliminated[u] && d == degree[u]) {
        v = u;
        break;
      }
    }
    PARFACT_CHECK_MSG(v != kNone, "minimum-degree heap exhausted early");
    eliminated[v] = 1;
    perm.push_back(v);

    // Boundary of the new element: live variable neighbors of v plus the
    // boundaries of v's elements (all of which the new element absorbs).
    boundary.clear();
    const count_t mark = next_mark++;
    marker[v] = mark;
    for (index_t u : adj_vars[v]) {
      if (!eliminated[u] && marker[u] != mark) {
        marker[u] = mark;
        boundary.push_back(u);
      }
    }
    for (index_t e : adj_elems[v]) {
      if (defunct[e]) continue;
      for (index_t u : elem_list[e]) {
        if (!eliminated[u] && marker[u] != mark) {
          marker[u] = mark;
          boundary.push_back(u);
        }
      }
      defunct[e] = 1;
      elem_list[e].clear();
      elem_list[e].shrink_to_fit();
    }
    adj_vars[v].clear();
    adj_vars[v].shrink_to_fit();
    adj_elems[v].clear();
    adj_elems[v].shrink_to_fit();
    elem_list[v] = boundary;  // v is now element v

    // Update each boundary variable: prune edges covered by the new element,
    // drop defunct elements, attach element v, and recompute the exact
    // external degree with a second marker sweep.
    // First prune every boundary vertex while marker[] still holds `mark`
    // for boundary ∪ {v} (the degree sweeps below overwrite markers).
    for (index_t u : boundary) {
      // A_u := A_u \ (boundary ∪ {v}) — those connections are now through
      // element v.
      std::erase_if(adj_vars[u], [&](index_t w) {
        return eliminated[w] || marker[w] == mark;
      });
      std::erase_if(adj_elems[u], [&](index_t e) { return defunct[e]; });
      adj_elems[u].push_back(v);
    }
    for (index_t u : boundary) {
      // Exact degree: |A_u ∪ (∪_e L_e)| \ {u}.
      const count_t umark = next_mark++;
      marker[u] = umark;
      index_t deg = 0;
      for (index_t w : adj_vars[u]) {
        if (marker[w] != umark) {
          marker[w] = umark;
          ++deg;
        }
      }
      for (index_t e : adj_elems[u]) {
        for (index_t w : elem_list[e]) {
          if (!eliminated[w] && marker[w] != umark) {
            marker[w] = umark;
            ++deg;
          }
        }
      }
      degree[u] = deg;
      heap.emplace(deg, u);
    }
  }
  return perm;
}

}  // namespace parfact
