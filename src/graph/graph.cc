#include "graph/graph.h"

#include <algorithm>

#include "support/error.h"

namespace parfact {

count_t Graph::total_vertex_weight() const {
  count_t w = 0;
  for (index_t v : vwgt) w += v;
  return w;
}

void Graph::validate() const {
  PARFACT_CHECK(n >= 0);
  PARFACT_CHECK(adj_ptr.size() == static_cast<std::size_t>(n) + 1);
  PARFACT_CHECK(adj_ptr.front() == 0);
  PARFACT_CHECK(adj.size() == static_cast<std::size_t>(adj_ptr.back()));
  PARFACT_CHECK(ewgt.size() == adj.size());
  PARFACT_CHECK(vwgt.size() == static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    PARFACT_CHECK(adj_ptr[v] <= adj_ptr[v + 1]);
    for (index_t p = adj_ptr[v]; p < adj_ptr[v + 1]; ++p) {
      const index_t u = adj[p];
      PARFACT_CHECK_MSG(u >= 0 && u < n && u != v,
                        "bad neighbor " << u << " of vertex " << v);
      if (p > adj_ptr[v]) PARFACT_CHECK(adj[p - 1] < u);
      // Symmetry: u's list must contain v with the same edge weight.
      const auto nb = neighbors(u);
      const auto it = std::lower_bound(nb.begin(), nb.end(), v);
      PARFACT_CHECK_MSG(it != nb.end() && *it == v,
                        "edge " << v << "-" << u << " not symmetric");
      const index_t q = adj_ptr[u] + static_cast<index_t>(it - nb.begin());
      PARFACT_CHECK(ewgt[p] == ewgt[q]);
    }
  }
}

Graph graph_from_pattern(const SparseMatrix& a) {
  PARFACT_CHECK(a.rows == a.cols);
  Graph g;
  g.n = a.rows;
  // Count both directions of each off-diagonal entry. For full-stored
  // symmetric input each edge is seen twice, so dedup via sort+unique below.
  std::vector<std::pair<index_t, index_t>> edges;
  edges.reserve(static_cast<std::size_t>(a.nnz()) * 2);
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t p = a.col_ptr[j]; p < a.col_ptr[j + 1]; ++p) {
      const index_t i = a.row_ind[p];
      if (i == j) continue;
      edges.emplace_back(i, j);
      edges.emplace_back(j, i);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  g.adj_ptr.assign(static_cast<std::size_t>(g.n) + 1, 0);
  for (const auto& [v, u] : edges) ++g.adj_ptr[v + 1];
  for (index_t v = 0; v < g.n; ++v) g.adj_ptr[v + 1] += g.adj_ptr[v];
  g.adj.resize(edges.size());
  for (std::size_t k = 0; k < edges.size(); ++k) g.adj[k] = edges[k].second;
  g.vwgt.assign(static_cast<std::size_t>(g.n), 1);
  g.ewgt.assign(edges.size(), 1);
  return g;
}

Graph induced_subgraph(const Graph& g, std::span<const index_t> vertices,
                       std::vector<index_t>& local_of) {
  PARFACT_CHECK(local_of.size() == static_cast<std::size_t>(g.n));
  Graph s;
  s.n = static_cast<index_t>(vertices.size());
  for (index_t i = 0; i < s.n; ++i) {
    PARFACT_DCHECK(local_of[vertices[i]] == kNone);
    local_of[vertices[i]] = i;
  }
  s.adj_ptr.assign(static_cast<std::size_t>(s.n) + 1, 0);
  s.vwgt.resize(static_cast<std::size_t>(s.n));
  for (index_t i = 0; i < s.n; ++i) {
    const index_t v = vertices[i];
    s.vwgt[i] = g.vwgt[v];
    for (index_t u : g.neighbors(v)) {
      if (local_of[u] != kNone) ++s.adj_ptr[i + 1];
    }
  }
  for (index_t i = 0; i < s.n; ++i) s.adj_ptr[i + 1] += s.adj_ptr[i];
  s.adj.resize(static_cast<std::size_t>(s.adj_ptr.back()));
  s.ewgt.resize(s.adj.size());
  for (index_t i = 0; i < s.n; ++i) {
    const index_t v = vertices[i];
    index_t q = s.adj_ptr[i];
    for (index_t p = g.adj_ptr[v]; p < g.adj_ptr[v + 1]; ++p) {
      const index_t lu = local_of[g.adj[p]];
      if (lu == kNone) continue;
      s.adj[q] = lu;
      s.ewgt[q] = g.ewgt[p];
      ++q;
    }
    // Local ids are not monotone in global ids, so restore sortedness.
    // Sort the (neighbor, weight) pairs of this vertex together.
    std::vector<std::pair<index_t, index_t>> tmp;
    tmp.reserve(static_cast<std::size_t>(q - s.adj_ptr[i]));
    for (index_t t = s.adj_ptr[i]; t < q; ++t) {
      tmp.emplace_back(s.adj[t], s.ewgt[t]);
    }
    std::sort(tmp.begin(), tmp.end());
    for (index_t t = s.adj_ptr[i]; t < q; ++t) {
      s.adj[t] = tmp[t - s.adj_ptr[i]].first;
      s.ewgt[t] = tmp[t - s.adj_ptr[i]].second;
    }
  }
  for (index_t v : vertices) local_of[v] = kNone;
  return s;
}

}  // namespace parfact
