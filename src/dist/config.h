// Tuning knobs of the distributed factorization. Both knobs are pure
// schedule/wire-format choices: every combination produces the bitwise
// identical factor (tests/dist_test.cc asserts it), they differ only in
// virtual time and message volume.
#pragma once

namespace parfact {

struct DistConfig {
  /// Block-column schedule of the 2-D block-cyclic front factorization.
  enum class Schedule {
    kBlocking,   ///< fully synchronous right-looking loop (PR 1 behavior)
    kLookahead,  ///< depth-1 panel lookahead with preposted receives
    kTaskDag,    ///< fan-both: children stream one extend-add message per
                 ///< destination panel, the parent consumes them as they
                 ///< arrive (Comm::wait_any over a preposted pool) and merges
                 ///< each panel in fixed (child, source-rank) order just
                 ///< before its first touch — no collective assembly barrier.
                 ///< Executed by dist_factor since PR 9; perf/dag_sim replays
                 ///< the same per-panel floor discipline for large-P studies.
  };
  /// Wire format of the child → parent extend-add contributions.
  enum class ExtendAddFormat {
    kTriples,  ///< per-entry {row, col, value} triples (16 B/entry)
    kPacked,   ///< packed dense values in canonical order (8 B/entry); the
               ///< index "header" is implicit — both endpoints derive the
               ///< same enumeration from the symbolic structure
  };

  Schedule schedule = Schedule::kLookahead;
  ExtendAddFormat extend_add = ExtendAddFormat::kPacked;
};

}  // namespace parfact
