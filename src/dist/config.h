// Tuning knobs of the distributed factorization. Both knobs are pure
// schedule/wire-format choices: every combination produces the bitwise
// identical factor (tests/dist_test.cc asserts it), they differ only in
// virtual time and message volume.
#pragma once

namespace parfact {

struct DistConfig {
  /// Block-column schedule of the 2-D block-cyclic front factorization.
  enum class Schedule {
    kBlocking,   ///< fully synchronous right-looking loop (PR 1 behavior)
    kLookahead,  ///< depth-1 panel lookahead with preposted receives
    kTaskDag,    ///< asynchronous task-DAG replay: extend-add arrivals become
                 ///< per-panel pipelined floors (no collective assembly
                 ///< barrier). Replay-only — dist_factor rejects it; it models
                 ///< the shared-memory runtime's schedule (src/runtime) at
                 ///< distributed scale for the perf module.
  };
  /// Wire format of the child → parent extend-add contributions.
  enum class ExtendAddFormat {
    kTriples,  ///< per-entry {row, col, value} triples (16 B/entry)
    kPacked,   ///< packed dense values in canonical order (8 B/entry); the
               ///< index "header" is implicit — both endpoints derive the
               ///< same enumeration from the symbolic structure
  };

  Schedule schedule = Schedule::kLookahead;
  ExtendAddFormat extend_add = ExtendAddFormat::kPacked;
};

}  // namespace parfact
