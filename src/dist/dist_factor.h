// Distributed-memory multifrontal Cholesky on the mpsim machine.
//
// SPMD structure (every rank runs the same program):
//   for each supernode s in postorder that this rank participates in:
//     1. allocate the locally owned blocks of the front (block-cyclic over
//        the front's process grid),
//     2. scatter this rank's share of the original matrix entries,
//     3. receive extend-add contributions from every rank of every child,
//     4. run the block-cyclic right-looking partial Cholesky:
//        per panel block-column kb — diagonal POTRF at its owner, L_kk sent
//        down the grid column, local TRSMs, panel blocks sent along their
//        grid row (A-side) and grid column (B-side), local GEMM/SYRK trailing
//        updates,
//     5. store the owned panel blocks into the (shared, disjointly written)
//        factor, pack the update region by destination parent rank and send.
//
// Communication cost is dominated by step 4: each panel block travels to
// O(pr + pc) ranks, which for the 2-D grids is O(√np) — the paper's key
// scaling property; with the 1-D layout (pc == 1, pr == np) the same code
// degenerates to full-panel broadcasts with O(np) volume, giving the
// MUMPS-class baseline for experiment T3/F5.
#pragma once

#include "dist/checkpoint.h"
#include "dist/config.h"
#include "dist/mapping.h"
#include "mf/factor.h"
#include "mf/multifrontal.h"
#include "mpsim/machine.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

struct DistFactorResult {
  /// Gathered factor (every rank deposits its panel blocks; the result is
  /// identical in layout to the serial multifrontal factor). Meaningful
  /// only when `status.ok()`.
  CholeskyFactor factor;
  /// Virtual-time and traffic statistics of the run.
  mpsim::RunStats run;
  /// Outcome: kOk/kPerturbed (with the total pivot-perturbation count
  /// across all ranks), or the failure that stopped the run.
  Status status;
  /// Extend-add traffic: wire bytes and entries shipped child → parent,
  /// summed over all ranks (the ≥ 2x packed-vs-triples reduction of the
  /// F8 ablation is measured on extend_add_bytes).
  count_t extend_add_bytes = 0;
  count_t extend_add_entries = 0;

  DistFactorResult(const SymbolicFactor& sym) : factor(sym) {}
};

/// Runs the distributed factorization on map.n_ranks simulated ranks.
/// Supports both Cholesky (SPD) and no-pivot LDLᵀ (symmetric
/// quasi-definite); throws parfact::Error (StatusError) on a bad pivot
/// unless `pivot` enables boosting. With an active `faults` plan the
/// mpsim retry protocol heals injected message faults — the factor is
/// bitwise-identical to the fault-free run — or the run fails with a clean
/// diagnosed StatusError, never a hang or a wrong answer.
///
/// Crash tolerance: with `faults.crashes` entries and `faults.spare_ranks`
/// configured, a spare adopts each crashed rank (deterministic assignment),
/// restores from the dead rank's buddy checkpoint per `resilience`, and
/// re-executes only the unfinished fronts; the gathered factor and the
/// pivot-perturbation count are again bitwise-identical to the fault-free
/// run, with `result.run.ranks_recovered` and
/// `result.run.recovery_overhead_seconds` quantifying the recovery. A crash
/// with no spare left ends in a diagnosed kRankFailure.
///
/// `config` selects the block-column schedule (blocking vs. depth-1 panel
/// lookahead) and the extend-add wire format (triples vs. packed). All
/// combinations produce the bitwise identical factor and perturbation
/// count, under faults and crash recovery included; they differ only in
/// virtual time and wire volume.
[[nodiscard]] DistFactorResult distributed_factor(
    const SymbolicFactor& sym, const FrontMap& map,
    const mpsim::MachineModel& model = {},
    FactorKind kind = FactorKind::kCholesky, PivotPolicy pivot = {},
    const mpsim::FaultPlan& faults = {},
    const ResiliencePolicy& resilience = {}, const DistConfig& config = {});

/// Non-throwing variant: failures land in `result.status` instead of
/// propagating as exceptions.
[[nodiscard]] DistFactorResult distributed_factor_checked(
    const SymbolicFactor& sym, const FrontMap& map,
    const mpsim::MachineModel& model = {},
    FactorKind kind = FactorKind::kCholesky, PivotPolicy pivot = {},
    const mpsim::FaultPlan& faults = {},
    const ResiliencePolicy& resilience = {}, const DistConfig& config = {});

}  // namespace parfact
