// Subtree-to-subcube (proportional) mapping of the assembly tree onto ranks,
// and the per-front process-grid layout.
//
// This encodes the paper's central parallelization idea: disjoint subtrees of
// the assembly tree execute on disjoint rank subsets with *zero*
// communication between them; toward the root, each front is distributed
// over its (growing) rank subset — 1-D row-block-cyclic for the MUMPS-class
// baseline, 2-D block-cyclic for the scalable scheme. The 2-D layout is what
// keeps per-rank communication volume O(front²/√p) instead of O(front²),
// which is the crossover every scaling experiment probes.
#pragma once

#include <vector>

#include "support/types.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

enum class MappingStrategy {
  kSubtree2d,  ///< subtree-to-subcube + 2-D block-cyclic fronts (the paper)
  kSubtree1d,  ///< subtree-to-subcube + 1-D row-block fronts (MUMPS-class)
  kFlat,       ///< every front over all ranks (ablation: no tree locality)
};

/// Where and how each front lives.
struct FrontMap {
  int n_ranks = 1;
  index_t block_size = 48;         ///< block-cyclic tile edge
  MappingStrategy strategy = MappingStrategy::kSubtree2d;
  std::vector<int> rank_begin;     ///< first rank of each supernode's range
  std::vector<int> rank_count;     ///< range size
  std::vector<int> grid_rows;      ///< pr of the front's process grid
  std::vector<int> grid_cols;      ///< pc (pr * pc <= rank_count)

  [[nodiscard]] bool participates(index_t s, int rank) const {
    return rank >= rank_begin[s] && rank < rank_begin[s] + rank_count[s];
  }
  /// Ranks actually holding blocks of front s: the first grid_size ranks of
  /// the participant prefix. Participants beyond it are *spectators* — they
  /// stay in the set so that child participant prefixes keep nesting (a
  /// child may use more ranks than an awkwardly-sized parent grid), but own
  /// no blocks of this front.
  [[nodiscard]] int grid_size(index_t s) const {
    return grid_rows[s] * grid_cols[s];
  }
  /// Grid coordinates of `rank` within front s's grid (row-major over the
  /// contiguous rank range), or {-1, -1} for spectators. Requires
  /// participates(s, rank).
  [[nodiscard]] std::pair<int, int> grid_coords(index_t s, int rank) const {
    const int local = rank - rank_begin[s];
    if (local >= grid_size(s)) return {-1, -1};
    return {local % grid_rows[s], local / grid_rows[s]};
  }
  /// Rank owning grid cell (gr, gc) of front s.
  [[nodiscard]] int grid_rank(index_t s, int gr, int gc) const {
    return rank_begin[s] + gc * grid_rows[s] + gr;
  }

  /// Validates range nesting (children inside parents) and grid shapes.
  void validate(const SymbolicFactor& sym) const;
};

/// Builds the mapping. Work estimates come from sym.sn_flops; subtree ranges
/// are split among children proportionally to subtree work.
///
/// `grain_flops` caps the ranks a front may use: a front of W flops gets at
/// most ceil(W / grain_flops) ranks (never fewer than any child uses, so
/// participant sets still nest). Without the cap, the long chains of small
/// separator supernodes near the root would each pay O(P) per-front
/// communication latency for negligible work — the classic reason parallel
/// multifrontal codes bound processes-per-front by front size.
[[nodiscard]] FrontMap build_front_map(const SymbolicFactor& sym, int n_ranks,
                                       MappingStrategy strategy,
                                       index_t block_size = 48,
                                       double grain_flops = 2.0e5);

/// Per-rank total assigned front work (flops of fronts it participates in,
/// divided by the range size) — the load-balance metric of experiment F5.
[[nodiscard]] std::vector<double> mapped_work_per_rank(
    const SymbolicFactor& sym, const FrontMap& map);

}  // namespace parfact
