// Distributed supernodal triangular solves on the mpsim machine.
//
// Forward sweep (postorder): for each front, the diagonal-block owners solve
// their panel rows (after reducing partial sums along their grid row),
// broadcast the solved segment down the grid column, owners of the L21
// blocks accumulate update partials, and the below-row contributions are
// reduced to one collector per block row and routed up to the parent's
// owners — the solve-phase analogue of extend-add.
//
// Backward sweep (reverse postorder): maintains the invariant that every
// participant of a front knows the solution at the front's below rows when
// the front is processed (parents broadcast panel solutions to all their
// participants, and child rank sets nest inside parent rank sets, so the
// values are already local — zero extra messages to enter a child).
//
// Both sweeps compute on a fixed partition of the right-hand sides into
// blocks of config.rhs_block columns; the two schedules share that
// partition and therefore every floating-point operation sequence:
//
//   kBlocking  — the seed protocol: one full-width message per exchange
//                (all RHS blocks travel together), blocking recvs.
//   kPipelined — built on the mpsim isend/irecv request layer: every
//                exchange ships per-RHS-block messages the moment that
//                block's values exist, receives are preposted and waited
//                per block, and the below-row reduction aggregates all of
//                a rank's block rows into one message per destination.
//                Reductions and child contributions for block k+1 are in
//                flight while block k computes — within a front and,
//                through the per-block extend-add routing, up the tree.
//
// The solutions are bitwise identical across the two schedules (and under
// an active FaultPlan); they differ only in virtual time, idle wait, and
// message counts, surfaced through DistSolveResult::run.
#pragma once

#include <vector>

#include "dist/mapping.h"
#include "mf/factor.h"
#include "mpsim/machine.h"
#include "support/status.h"

namespace parfact {

/// Scheduling knobs of the distributed solve.
struct DistSolveConfig {
  enum class Schedule {
    kBlocking,   ///< full-width messages, blocking receives (baseline)
    kPipelined,  ///< per-RHS-block messages on the request layer
    kTaskDag,    ///< reserved: the factorization's fan-both schedule has no
                 ///< solve counterpart yet — distributed_solve rejects it
                 ///< with a diagnosed kInvalidInput Status (never a hang or
                 ///< a silent fallback to another schedule)
  };
  Schedule schedule = Schedule::kPipelined;
  /// Right-hand-side columns per pipeline stage. Both schedules compute on
  /// this block partition — identical arithmetic, different messaging.
  index_t rhs_block = 8;
};

struct DistSolveResult {
  /// Solution, n x nrhs column-major (postordered index space). Meaningful
  /// only when `status.ok()`.
  std::vector<real_t> x;
  mpsim::RunStats run;
  Status status;
};

/// Solves A x = b with the distributed factor layout described by `map`.
/// `factor` is the gathered factor from distributed_factor (each rank reads
/// only the blocks it owns under `map`); `b` is n x nrhs, replicated. With
/// an active `faults` plan, point-to-point messages ride the mpsim retry
/// protocol: the solution is bitwise-identical to the fault-free run, or
/// the run throws a diagnosed StatusError — never a hang.
[[nodiscard]] DistSolveResult distributed_solve(
    const SymbolicFactor& sym, const FrontMap& map,
    const CholeskyFactor& factor, const std::vector<real_t>& b, index_t nrhs,
    const mpsim::MachineModel& model = {},
    const mpsim::FaultPlan& faults = {}, const DistSolveConfig& config = {});

/// Non-throwing variant: failures land in `result.status`.
[[nodiscard]] DistSolveResult distributed_solve_checked(
    const SymbolicFactor& sym, const FrontMap& map,
    const CholeskyFactor& factor, const std::vector<real_t>& b, index_t nrhs,
    const mpsim::MachineModel& model = {},
    const mpsim::FaultPlan& faults = {}, const DistSolveConfig& config = {});

}  // namespace parfact
