// Distributed supernodal triangular solves on the mpsim machine.
//
// Forward sweep (postorder): for each front, the diagonal-block owners solve
// their panel rows (after reducing partial sums along their grid row),
// broadcast the solved segment down the grid column, owners of the L21
// blocks accumulate update partials, and the below-row contributions are
// reduced to one collector per block row and routed up to the parent's
// owners — the solve-phase analogue of extend-add.
//
// Backward sweep (reverse postorder): maintains the invariant that every
// participant of a front knows the solution at the front's below rows when
// the front is processed (parents broadcast panel solutions to all their
// participants, and child rank sets nest inside parent rank sets, so the
// values are already local — zero extra messages to enter a child).
#pragma once

#include <vector>

#include "dist/mapping.h"
#include "mf/factor.h"
#include "mpsim/machine.h"
#include "support/status.h"

namespace parfact {

struct DistSolveResult {
  /// Solution, n x nrhs column-major (postordered index space). Meaningful
  /// only when `status.ok()`.
  std::vector<real_t> x;
  mpsim::RunStats run;
  Status status;
};

/// Solves A x = b with the distributed factor layout described by `map`.
/// `factor` is the gathered factor from distributed_factor (each rank reads
/// only the blocks it owns under `map`); `b` is n x nrhs, replicated. With
/// an active `faults` plan, point-to-point messages ride the mpsim retry
/// protocol: the solution is bitwise-identical to the fault-free run, or
/// the run throws a diagnosed StatusError — never a hang.
[[nodiscard]] DistSolveResult distributed_solve(
    const SymbolicFactor& sym, const FrontMap& map,
    const CholeskyFactor& factor, const std::vector<real_t>& b, index_t nrhs,
    const mpsim::MachineModel& model = {},
    const mpsim::FaultPlan& faults = {});

/// Non-throwing variant: failures land in `result.status`.
[[nodiscard]] DistSolveResult distributed_solve_checked(
    const SymbolicFactor& sym, const FrontMap& map,
    const CholeskyFactor& factor, const std::vector<real_t>& b, index_t nrhs,
    const mpsim::MachineModel& model = {},
    const mpsim::FaultPlan& faults = {});

}  // namespace parfact
