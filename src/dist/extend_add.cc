#include "dist/extend_add.h"

#include <algorithm>

#include "support/error.h"

namespace parfact {

ExtendAddPlan make_extend_add_plan(const SymbolicFactor& sym,
                                   const FrontMap& map, index_t child) {
  ExtendAddPlan plan;
  plan.child = child;
  plan.parent = sym.sn_parent[child];
  PARFACT_CHECK(plan.parent != kNone);
  plan.cfb = FrontBlocking::make(sym.sn_cols(child), sym.sn_below(child),
                                 map.block_size);
  plan.pfb = FrontBlocking::make(sym.sn_cols(plan.parent),
                                 sym.sn_below(plan.parent), map.block_size);
  plan.pr = map.grid_rows[child];
  plan.pc = map.grid_cols[child];

  const index_t pfirst = sym.sn_start[plan.parent];
  const index_t pblock_end = sym.sn_start[plan.parent + 1];
  const index_t pp = sym.sn_cols(plan.parent);
  const auto prows = sym.below_rows(plan.parent);
  const auto my_rows = sym.below_rows(child);
  plan.parent_index.resize(my_rows.size());
  for (std::size_t r = 0; r < my_rows.size(); ++r) {
    const index_t global_row = my_rows[r];
    if (global_row < pblock_end) {
      plan.parent_index[r] = global_row - pfirst;
    } else {
      const auto it =
          std::lower_bound(prows.begin(), prows.end(), global_row);
      PARFACT_DCHECK(it != prows.end() && *it == global_row);
      plan.parent_index[r] = pp + static_cast<index_t>(it - prows.begin());
    }
  }
  return plan;
}

}  // namespace parfact
