#include "dist/mapping.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace parfact {
namespace {

/// Largest divisor of k that is <= sqrt(k): the squarest pr x pc grid.
int square_grid_rows(int k) {
  int best = 1;
  for (int d = 1; d * d <= k; ++d) {
    if (k % d == 0) best = d;
  }
  return best;
}

/// Largest np <= k whose squarest factorization has aspect ratio <= 3. A
/// 1 x k grid (prime k) serializes the whole panel TRSM of every block
/// column on one rank, so it pays to idle a few ranks (spectators) in
/// exchange for a 2-D shape.
int shapely_grid_size(int k) {
  for (int np = k; np >= 1; --np) {
    const int pr = square_grid_rows(np);
    if (np <= 3 * pr * pr) return np;
  }
  return 1;
}

}  // namespace

void FrontMap::validate(const SymbolicFactor& sym) const {
  PARFACT_CHECK(static_cast<index_t>(rank_begin.size()) == sym.n_supernodes);
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    PARFACT_CHECK(rank_count[s] >= 1);
    PARFACT_CHECK(rank_begin[s] >= 0 &&
                  rank_begin[s] + rank_count[s] <= n_ranks);
    PARFACT_CHECK(grid_rows[s] >= 1 && grid_cols[s] >= 1);
    PARFACT_CHECK(grid_rows[s] * grid_cols[s] <= rank_count[s]);
    const index_t parent = sym.sn_parent[s];
    if (parent != kNone) {
      // Child ranges nest inside parent ranges — the property every
      // communication schedule in dist/ relies on.
      PARFACT_CHECK(rank_begin[s] >= rank_begin[parent]);
      PARFACT_CHECK(rank_begin[s] + rank_count[s] <=
                    rank_begin[parent] + rank_count[parent]);
    }
  }
}

FrontMap build_front_map(const SymbolicFactor& sym, int n_ranks,
                         MappingStrategy strategy, index_t block_size,
                         double grain_flops) {
  PARFACT_CHECK(n_ranks >= 1 && block_size >= 1 && grain_flops > 0.0);
  const index_t ns = sym.n_supernodes;
  FrontMap map;
  map.n_ranks = n_ranks;
  map.block_size = block_size;
  map.strategy = strategy;
  map.rank_begin.assign(static_cast<std::size_t>(ns), 0);
  map.rank_count.assign(static_cast<std::size_t>(ns), n_ranks);

  if (strategy != MappingStrategy::kFlat) {
    // Subtree work: postorder guarantees children come first.
    std::vector<double> work(static_cast<std::size_t>(ns), 0.0);
    for (index_t s = 0; s < ns; ++s) {
      work[s] += static_cast<double>(sym.sn_flops[s]);
      if (sym.sn_parent[s] != kNone) work[sym.sn_parent[s]] += work[s];
    }
    std::vector<std::vector<index_t>> children(static_cast<std::size_t>(ns));
    std::vector<index_t> roots;
    for (index_t s = 0; s < ns; ++s) {
      if (sym.sn_parent[s] != kNone) {
        children[sym.sn_parent[s]].push_back(s);
      } else {
        roots.push_back(s);
      }
    }

    // Proportional splitting of a rank range [a, a+k) among `nodes`
    // (children of one node, or the forest roots). Boundaries are rounded
    // monotonically so that substantial children receive *disjoint* ranges —
    // overlap would serialize sibling subtrees on the shared ranks and
    // destroy the tree-level speedup. Children too small to earn a whole
    // rank share the last boundary rank.
    const auto split = [&](const std::vector<index_t>& nodes, int a, int k) {
      double total = 0.0;
      for (index_t c : nodes) total += work[c];
      if (total <= 0.0) total = 1.0;
      double cum = 0.0;
      int prev = a;
      for (index_t c : nodes) {
        cum += work[c];
        int end = a + static_cast<int>(
                          std::llround(cum / total * static_cast<double>(k)));
        end = std::min(end, a + k);
        if (end > prev) {
          map.rank_begin[c] = prev;
          map.rank_count[c] = end - prev;
          prev = end;
        } else {
          // Tiny subtree: park it on the rank just before the boundary.
          map.rank_begin[c] = std::min(std::max(prev - 1, a), a + k - 1);
          map.rank_count[c] = 1;
        }
      }
    };

    split(roots, 0, n_ranks);
    // Top-down: each node's range was set by its parent's split (roots
    // above); now split it among its own children. Iterate in reverse
    // postorder so parents are handled before children.
    for (index_t s = ns - 1; s >= 0; --s) {
      if (!children[s].empty()) {
        split(children[s], map.rank_begin[s], map.rank_count[s]);
      }
    }
  }

  // Work-based cap: shrink each front's participant set to what its flop
  // count can amortize, keeping the prefix property children rely on
  // (participants of s must contain participants of every child; ranges
  // nest and children of chains share the parent's begin, so enforcing
  // count monotonicity bottom-up suffices). The flat ablation strategy is
  // deliberately left uncapped — paying for every front on every rank is
  // the effect it exists to demonstrate.
  if (strategy != MappingStrategy::kFlat) {
    // Bottom-up (children precede parents in supernode numbering): cap by
    // work, round 2-D grids to a shapely participant count (never past the
    // node's own split range, so sibling subtrees stay disjoint), and raise
    // parents to cover their children's participant prefixes.
    const std::vector<int> split_range(map.rank_count.begin(),
                                       map.rank_count.end());
    for (index_t s = 0; s < ns; ++s) {
      const int desired = std::max(
          1,
          static_cast<int>(std::ceil(static_cast<double>(sym.sn_flops[s]) /
                                     grain_flops)));
      map.rank_count[s] = std::min(split_range[s], desired);
    }
    for (index_t s = 0; s < ns; ++s) {
      const index_t parent = sym.sn_parent[s];
      if (parent != kNone) {
        const int needed = map.rank_begin[s] + map.rank_count[s] -
                           map.rank_begin[parent];
        map.rank_count[parent] = std::max(map.rank_count[parent], needed);
      }
    }
  }

  map.grid_rows.resize(static_cast<std::size_t>(ns));
  map.grid_cols.resize(static_cast<std::size_t>(ns));
  for (index_t s = 0; s < ns; ++s) {
    const int k = map.rank_count[s];
    if (strategy == MappingStrategy::kSubtree1d) {
      map.grid_rows[s] = k;  // row-block-cyclic: all columns on each owner
      map.grid_cols[s] = 1;
    } else {
      const int used = shapely_grid_size(k);
      map.grid_rows[s] = square_grid_rows(used);
      map.grid_cols[s] = used / map.grid_rows[s];
    }
  }
  map.validate(sym);
  return map;
}

std::vector<double> mapped_work_per_rank(const SymbolicFactor& sym,
                                         const FrontMap& map) {
  std::vector<double> load(static_cast<std::size_t>(map.n_ranks), 0.0);
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const int used = map.grid_size(s);
    const double share =
        static_cast<double>(sym.sn_flops[s]) / static_cast<double>(used);
    for (int r = map.rank_begin[s]; r < map.rank_begin[s] + used; ++r) {
      load[r] += share;
    }
  }
  return load;
}

}  // namespace parfact
