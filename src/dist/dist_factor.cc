#include "dist/dist_factor.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <span>
#include <sstream>
#include <vector>

#include "dense/kernels.h"
#include "dist/checkpoint.h"
#include "dist/front_blocks.h"
#include "support/error.h"
#include "support/status.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {
namespace {

// Message purposes multiplexed into tags: tag = kTagStride * s + purpose.
// FIFO per (source, tag) plus globally consistent iteration order make every
// channel deterministic (see matching send/recv loops below).
constexpr int kTagExtendAdd = 0;
constexpr int kTagDiag = 1;
constexpr int kTagPanel = 2;
constexpr int kTagStride = 8;

struct EntryTriple {
  index_t row;  // front-local row of the *parent* front
  index_t col;  // front-local col of the parent front
  real_t value;
};

/// The locally owned pieces of one front on one rank.
class LocalFront {
 public:
  LocalFront(const FrontBlocking& fb, int pr, int pc, int my_gr, int my_gc)
      : fb_(fb), pr_(pr), pc_(pc), my_gr_(my_gr), my_gc_(my_gc) {
    if (my_gr_ < 0) return;  // spectator: owns nothing
    // Enumerate owned lower blocks (ib >= jb) and lay them out contiguously.
    std::size_t total = 0;
    for (index_t jb = my_gc_; jb < fb.nB; jb += pc_) {
      for (index_t ib = jb; ib < fb.nB; ++ib) {
        if (ib % pr_ != my_gr_) continue;
        offset_[{ib, jb}] = total;
        total += static_cast<std::size_t>(fb.size(ib)) * fb.size(jb);
      }
    }
    data_.assign(total, 0.0);
  }

  [[nodiscard]] bool owns(index_t ib, index_t jb) const {
    return my_gr_ >= 0 && ib % pr_ == my_gr_ && jb % pc_ == my_gc_ &&
           ib >= jb;
  }
  [[nodiscard]] MatrixView block(index_t ib, index_t jb) {
    const auto it = offset_.find({ib, jb});
    PARFACT_DCHECK(it != offset_.end());
    return {data_.data() + it->second, fb_.size(ib), fb_.size(jb),
            fb_.size(ib)};
  }
  [[nodiscard]] count_t bytes() const {
    return static_cast<count_t>(data_.size() * sizeof(real_t));
  }
  /// Adds v at front coordinates (i, j), i >= j; the entry must be owned.
  void add_entry(index_t i, index_t j, real_t v) {
    const index_t ib = fb_.block_of(i);
    const index_t jb = fb_.block_of(j);
    block(ib, jb).at(i - fb_.start(ib), j - fb_.start(jb)) += v;
  }

  const FrontBlocking& blocking() const { return fb_; }

 private:
  FrontBlocking fb_;
  int pr_, pc_, my_gr_, my_gc_;
  std::map<std::pair<index_t, index_t>, std::size_t> offset_;
  std::vector<real_t> data_;
};

/// Owner rank of block (ib, jb) of front s.
int block_owner(const FrontMap& map, index_t s, index_t ib, index_t jb) {
  return map.grid_rank(s, static_cast<int>(ib) % map.grid_rows[s],
                       static_cast<int>(jb) % map.grid_cols[s]);
}

/// One rank's whole factorization program. A fresh rank starts at supernode
/// 0 with a zero perturbation count; a spare resuming a crashed rank starts
/// at the checkpoint header's `next_supernode` with its recorded count —
/// the fronts before that are complete, their panels already deposited in
/// the shared factor, their contribution messages already in the retained
/// logs (mpsim's sequence-number dedup makes any re-sent prefix harmless).
class RankProgram {
 public:
  RankProgram(const SymbolicFactor& sym, const FrontMap& map,
              CholeskyFactor& factor, mpsim::Comm& comm, FactorKind kind,
              std::span<real_t> d, const PivotPolicy& pivot,
              const ResiliencePolicy& resilience,
              index_t start_supernode = 0, count_t base_perturbations = 0)
      : sym_(sym), map_(map), factor_(factor), comm_(comm), kind_(kind),
        d_(d), pivot_(pivot),
        boost_{pivot.threshold, pivot.value, base_perturbations},
        ckpt_(comm, resilience), start_supernode_(start_supernode) {
    children_.resize(static_cast<std::size_t>(sym.n_supernodes));
    for (index_t s = 0; s < sym.n_supernodes; ++s) {
      if (sym.sn_parent[s] != kNone) {
        children_[sym.sn_parent[s]].push_back(s);
      }
    }
  }

  void run() {
    for (index_t s = start_supernode_; s < sym_.n_supernodes; ++s) {
      if (!map_.participates(s, comm_.rank())) continue;
      process_front(s);
      ckpt_.front_complete(s + 1, boost_.count);
    }
  }

  /// Pivots this rank boosted (each diagonal block is factorized on exactly
  /// one rank, so the per-rank counts sum to the global count).
  [[nodiscard]] count_t perturbations() const { return boost_.count; }

 private:
  void process_front(index_t s) {
    const FrontBlocking fb =
        FrontBlocking::make(sym_.sn_cols(s), sym_.sn_below(s),
                            map_.block_size);
    const int pr = map_.grid_rows[s];
    const int pc = map_.grid_cols[s];
    // Spectator participants (grid_coords == {-1,-1}) own no blocks: the
    // (gr, gc) guards below then never fire, and LocalFront stays empty.
    const auto [gr, gc] = map_.grid_coords(s, comm_.rank());
    LocalFront front(fb, pr, pc, gr, gc);
    comm_.memory_add(front.bytes());

    assemble_matrix_entries(s, front);
    receive_extend_adds(s, front);
    factorize(s, front, pr, pc, gr, gc);
    store_panel(s, front);
    send_update(s, front);
    comm_.memory_sub(front.bytes());
  }

  /// Scatter the owned share of A's columns into the front.
  void assemble_matrix_entries(index_t s, LocalFront& front) {
    const index_t first = sym_.sn_start[s];
    const index_t block_end = sym_.sn_start[s + 1];
    const index_t p = sym_.sn_cols(s);
    const auto rows = sym_.below_rows(s);
    const SparseMatrix& a = sym_.a;
    count_t touched = 0;
    for (index_t j = first; j < block_end; ++j) {
      const index_t lj = j - first;
      for (index_t q = a.col_ptr[j]; q < a.col_ptr[j + 1]; ++q) {
        const index_t gi = a.row_ind[q];
        index_t li;
        if (gi < block_end) {
          li = gi - first;
        } else {
          const auto it = std::lower_bound(rows.begin(), rows.end(), gi);
          PARFACT_DCHECK(it != rows.end() && *it == gi);
          li = p + static_cast<index_t>(it - rows.begin());
        }
        const index_t ib = front.blocking().block_of(li);
        const index_t jb = front.blocking().block_of(lj);
        if (block_owner(map_, s, ib, jb) != comm_.rank()) continue;
        front.add_entry(li, lj, a.values[q]);
        ++touched;
      }
    }
    comm_.advance_bytes(touched * static_cast<count_t>(sizeof(real_t)));
  }

  /// Receive the (possibly empty) extend-add message from every rank of
  /// every child, in (child, source-rank) ascending order.
  void receive_extend_adds(index_t s, LocalFront& front) {
    for (index_t c : children_[s]) {
      const int begin = map_.rank_begin[c];
      const int end = begin + map_.rank_count[c];
      for (int src = begin; src < end; ++src) {
        const auto triples = comm_.recv_vec<EntryTriple>(
            src, kTagStride * static_cast<int>(s) + kTagExtendAdd);
        for (const EntryTriple& t : triples) {
          front.add_entry(t.row, t.col, t.value);
        }
        comm_.advance_bytes(static_cast<count_t>(triples.size()) *
                            static_cast<count_t>(sizeof(EntryTriple)));
      }
    }
  }

  /// Block-cyclic right-looking partial Cholesky of the front.
  void factorize(index_t s, LocalFront& front, int pr, int pc, int gr,
                 int gc) {
    const FrontBlocking& fb = front.blocking();
    const int tag_diag = kTagStride * static_cast<int>(s) + kTagDiag;
    const int tag_panel = kTagStride * static_cast<int>(s) + kTagPanel;

    // Cache of remote panel blocks received this block-column.
    std::map<index_t, std::vector<real_t>> remote;

    for (index_t kb = 0; kb < fb.kp; ++kb) {
      remote.clear();
      const int kbc = static_cast<int>(kb) % pc;  // grid column of block kb
      const int kbr = static_cast<int>(kb) % pr;
      const index_t bk = fb.size(kb);
      const bool ldlt = kind_ == FactorKind::kLdlt;
      std::vector<real_t> diag_buf;
      std::vector<real_t> dk;  // diag(D) of this block column (LDLᵀ only)
      ConstMatrixView l_kk{};

      if (gr == kbr && gc == kbc) {
        // I own the diagonal block: factorize and send down the grid column.
        // In LDLᵀ mode the broadcast payload carries diag(D) appended.
        MatrixView dblk = front.block(kb, kb);
        const index_t col0 = sym_.sn_start[s] + fb.start(kb);
        PivotBoost* boost = pivot_.boost ? &boost_ : nullptr;
        index_t info;
        if (ldlt) {
          info = ldlt_lower(dblk,
                            d_.subspan(static_cast<std::size_t>(col0),
                                       static_cast<std::size_t>(bk)),
                            boost);
          dk.assign(d_.begin() + col0, d_.begin() + col0 + bk);
        } else {
          info = potrf_lower(dblk, boost);
        }
        if (info != kNone) {
          std::ostringstream os;
          os << "bad pivot at column " << col0 + info
             << " (postordered), supernode " << s << " (front order "
             << sym_.front_order(s) << ", " << sym_.sn_cols(s)
             << " columns), panel block " << kb << " on rank "
             << comm_.rank();
          throw StatusError(
              Status::failure(StatusCode::kBreakdown, os.str(), s));
        }
        comm_.advance_compute(partial_cholesky_flops(bk, bk));
        diag_buf.assign(dblk.data,
                        dblk.data + static_cast<std::size_t>(bk) * bk);
        if (ldlt) diag_buf.insert(diag_buf.end(), dk.begin(), dk.end());
        for (int ri = 0; ri < pr; ++ri) {
          if (ri == gr) continue;
          if (!column_has_blocks_below(fb, kb, ri, pr)) continue;
          comm_.send_vec(map_.grid_rank(s, ri, kbc), tag_diag, diag_buf);
        }
        l_kk = ConstMatrixView{diag_buf.data(), bk, bk, bk};
      } else if (gc == kbc && column_has_blocks_below(fb, kb, gr, pr)) {
        diag_buf = comm_.recv_vec<real_t>(map_.grid_rank(s, kbr, kbc),
                                          tag_diag);
        l_kk = ConstMatrixView{diag_buf.data(), bk, bk, bk};
        if (ldlt) {
          dk.assign(diag_buf.begin() + static_cast<std::size_t>(bk) * bk,
                    diag_buf.end());
        }
      }

      // TRSM my panel blocks below kb, then broadcast them along their grid
      // row (A-side consumers) and grid column (B-side consumers).
      if (gc == kbc) {
        for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
          if (static_cast<int>(ib) % pr != gr) continue;
          MatrixView blk = front.block(ib, kb);
          trsm_right_lower_trans(l_kk, blk);
          if (ldlt) {
            // blk now holds M = A L⁻ᵀ = L·D; rescale to the stored L.
            for (index_t k = 0; k < bk; ++k) {
              const real_t inv = 1.0 / dk[k];
              real_t* col = &blk.at(0, k);
              for (index_t i = 0; i < blk.rows; ++i) col[i] *= inv;
            }
          }
          comm_.advance_compute(static_cast<count_t>(blk.rows) * bk *
                                (bk + 1));
          std::vector<int> dests;
          // A-side: ranks in grid row (ib % pr) owning (ib, jb), kb<jb<=ib.
          for (int c = 0; c < pc; ++c) {
            if (row_needs_block(kb, ib, c, pc)) {
              dests.push_back(
                  map_.grid_rank(s, static_cast<int>(ib) % pr, c));
            }
          }
          // B-side: ranks in grid column (ib % pc) owning (ib2, ib),
          // ib <= ib2 < nB.
          for (int rrow = 0; rrow < pr; ++rrow) {
            if (col_needs_block(fb, ib, rrow, pr)) {
              dests.push_back(
                  map_.grid_rank(s, rrow, static_cast<int>(ib) % pc));
            }
          }
          std::sort(dests.begin(), dests.end());
          dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
          std::vector<real_t> payload(
              blk.data, blk.data + static_cast<std::size_t>(blk.rows) * bk);
          if (ldlt) payload.insert(payload.end(), dk.begin(), dk.end());
          for (int dst : dests) {
            if (dst == comm_.rank()) continue;
            comm_.send_vec(dst, tag_panel, payload);
          }
        }
      }

      // Determine which panel blocks I need for my trailing updates, fetch
      // the remote ones (ascending block index per source keeps FIFO happy).
      std::vector<index_t> needed;
      for (index_t jb = kb + 1; jb < fb.nB; ++jb) {
        if (static_cast<int>(jb) % pc != gc) continue;
        for (index_t ib = jb; ib < fb.nB; ++ib) {
          if (static_cast<int>(ib) % pr != gr) continue;
          needed.push_back(ib);
          needed.push_back(jb);
        }
      }
      std::sort(needed.begin(), needed.end());
      needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
      for (index_t x : needed) {
        const int owner = block_owner(map_, s, x, kb);
        if (owner == comm_.rank()) continue;
        std::vector<real_t> payload = comm_.recv_vec<real_t>(owner, tag_panel);
        if (ldlt) {
          if (dk.empty()) {
            dk.assign(payload.end() - bk, payload.end());
          }
          payload.resize(payload.size() - bk);
        }
        remote[x] = std::move(payload);
      }
      auto panel_block = [&](index_t x) -> ConstMatrixView {
        if (block_owner(map_, s, x, kb) == comm_.rank()) {
          return front.block(x, kb);
        }
        const auto it = remote.find(x);
        PARFACT_DCHECK(it != remote.end());
        return {it->second.data(), fb.size(x), bk, fb.size(x)};
      };

      // Trailing update: C(ib, jb) -= L(ib, kb) D L(jb, kb)ᵀ (D = I for
      // Cholesky). In LDLᵀ mode the B-side operand is rescaled by D.
      std::vector<real_t> scaled;
      auto b_side = [&](index_t x) -> ConstMatrixView {
        const ConstMatrixView l = panel_block(x);
        if (!ldlt) return l;
        scaled.resize(static_cast<std::size_t>(l.rows) * bk);
        for (index_t k = 0; k < bk; ++k) {
          const real_t dv = dk[k];
          for (index_t i = 0; i < l.rows; ++i) {
            scaled[static_cast<std::size_t>(k) * l.rows + i] =
                l.at(i, k) * dv;
          }
        }
        return {scaled.data(), l.rows, bk, l.rows};
      };
      for (index_t jb = kb + 1; jb < fb.nB; ++jb) {
        if (static_cast<int>(jb) % pc != gc) continue;
        // First ib ≥ jb in this rank's grid row; if none, block (jb, kb)
        // was never requested and must not be touched.
        const index_t ib0 =
            jb + (gr - static_cast<int>(jb) % pr + pr) % pr;
        if (ib0 >= fb.nB) continue;
        // Hoisted out of the ib loop: in LDLᵀ mode b_side rescales the
        // whole block by D, which must not be redone per row block.
        const ConstMatrixView bj = b_side(jb);
        for (index_t ib = ib0; ib < fb.nB; ++ib) {
          if (static_cast<int>(ib) % pr != gr) continue;
          MatrixView c = front.block(ib, jb);
          if (ib == jb && !ldlt) {
            syrk_lower_update(c, panel_block(ib));
          } else {
            gemm_nt_update(c, panel_block(ib), bj);
          }
          comm_.advance_compute(2 * static_cast<count_t>(c.rows) * c.cols *
                                bk);
        }
      }
    }
  }

  /// True iff grid row `ri` owns any block (ib, kb) with ib > kb.
  static bool column_has_blocks_below(const FrontBlocking& fb, index_t kb,
                                      int ri, int pr) {
    for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
      if (static_cast<int>(ib) % pr == ri) return true;
    }
    return false;
  }
  /// True iff rank at grid column c owns a block (ib, jb), kb < jb <= ib.
  static bool row_needs_block(index_t kb, index_t ib, int c, int pc) {
    for (index_t jb = kb + 1; jb <= ib; ++jb) {
      if (static_cast<int>(jb) % pc == c) return true;
    }
    return false;
  }
  /// True iff grid row `rrow` owns a block (ib2, ib) with ib <= ib2 < nB.
  static bool col_needs_block(const FrontBlocking& fb, index_t ib, int rrow,
                              int pr) {
    for (index_t ib2 = ib; ib2 < fb.nB; ++ib2) {
      if (static_cast<int>(ib2) % pr == rrow) return true;
    }
    return false;
  }

  /// Copy owned panel blocks into the shared factor (disjoint writes).
  void store_panel(index_t s, LocalFront& front) {
    const FrontBlocking& fb = front.blocking();
    MatrixView panel = factor_.panel(s);
    count_t bytes = 0;
    for (index_t jb = 0; jb < fb.kp; ++jb) {
      for (index_t ib = jb; ib < fb.nB; ++ib) {
        if (!front.owns(ib, jb)) continue;
        const MatrixView blk = front.block(ib, jb);
        const index_t r0 = fb.start(ib);
        const index_t c0 = fb.start(jb);
        for (index_t j = 0; j < blk.cols; ++j) {
          const index_t i_begin = (ib == jb) ? j : 0;
          for (index_t i = i_begin; i < blk.rows; ++i) {
            panel.at(r0 + i, c0 + j) = blk.at(i, j);
          }
        }
        const count_t blk_bytes = static_cast<count_t>(blk.rows) * blk.cols *
                                  static_cast<count_t>(sizeof(real_t));
        ckpt_.note_panel(blk.data, static_cast<std::size_t>(blk_bytes));
        bytes += blk_bytes;
      }
    }
    // Owned factor panels persist for the solve phase.
    comm_.memory_add(bytes);
    comm_.advance_bytes(bytes);
  }

  /// Pack the owned update-region entries by destination parent rank and
  /// send one (possibly empty) message to every parent rank.
  void send_update(index_t s, LocalFront& front) {
    const index_t parent = sym_.sn_parent[s];
    if (parent == kNone) return;
    const FrontBlocking& fb = front.blocking();
    const index_t p = sym_.sn_cols(s);
    const auto my_rows = sym_.below_rows(s);

    // Parent-front local index of one of our below rows.
    const index_t pfirst = sym_.sn_start[parent];
    const index_t pblock_end = sym_.sn_start[parent + 1];
    const index_t pp = sym_.sn_cols(parent);
    const auto prows = sym_.below_rows(parent);
    const FrontBlocking pfb =
        FrontBlocking::make(pp, sym_.sn_below(parent), map_.block_size);
    auto parent_local = [&](index_t global_row) -> index_t {
      if (global_row < pblock_end) return global_row - pfirst;
      const auto it =
          std::lower_bound(prows.begin(), prows.end(), global_row);
      PARFACT_DCHECK(it != prows.end() && *it == global_row);
      return pp + static_cast<index_t>(it - prows.begin());
    };

    const int pbegin = map_.rank_begin[parent];
    const int pcount = map_.rank_count[parent];
    std::vector<std::vector<EntryTriple>> outbox(
        static_cast<std::size_t>(pcount));
    for (index_t jb = fb.kp; jb < fb.nB; ++jb) {
      for (index_t ib = jb; ib < fb.nB; ++ib) {
        if (!front.owns(ib, jb)) continue;
        const MatrixView blk = front.block(ib, jb);
        const index_t r0 = fb.start(ib) - p;  // below-row index
        const index_t c0 = fb.start(jb) - p;
        for (index_t j = 0; j < blk.cols; ++j) {
          const index_t pj = parent_local(my_rows[c0 + j]);
          for (index_t i = (ib == jb) ? j : 0; i < blk.rows; ++i) {
            const index_t pi = parent_local(my_rows[r0 + i]);
            // The parent front stores lower storage in its own ordering;
            // our (i, j) pair may map to either triangle there.
            const index_t row = std::max(pi, pj);
            const index_t col = std::min(pi, pj);
            const int owner = block_owner(map_, parent, pfb.block_of(row),
                                          pfb.block_of(col));
            outbox[owner - pbegin].push_back(
                EntryTriple{row, col, blk.at(i, j)});
          }
        }
      }
    }
    const int tag = kTagStride * static_cast<int>(parent) + kTagExtendAdd;
    for (int d = 0; d < pcount; ++d) {
      ckpt_.note_contribution(outbox[d].data(),
                              outbox[d].size() * sizeof(EntryTriple));
      comm_.send_vec(pbegin + d, tag, outbox[d]);
    }
  }

  const SymbolicFactor& sym_;
  const FrontMap& map_;
  CholeskyFactor& factor_;
  mpsim::Comm& comm_;
  FactorKind kind_;
  std::span<real_t> d_;  ///< shared diag(D) output in LDLᵀ mode
  PivotPolicy pivot_;
  PivotBoost boost_;  ///< per-rank static-pivoting counter
  BuddyCheckpointer ckpt_;
  index_t start_supernode_;  ///< first front to execute (resume point)
  std::vector<std::vector<index_t>> children_;
};

}  // namespace

DistFactorResult distributed_factor(const SymbolicFactor& sym,
                                    const FrontMap& map,
                                    const mpsim::MachineModel& model,
                                    FactorKind kind, PivotPolicy pivot,
                                    const mpsim::FaultPlan& faults,
                                    const ResiliencePolicy& resilience) {
  validate_resilience_policy(resilience);
  pivot = resolve_pivot_policy(pivot, sym.a);
  DistFactorResult result(sym);
  std::span<real_t> d;
  if (kind == FactorKind::kLdlt) d = result.factor.allocate_diag();
  std::atomic<count_t> perturbations{0};
  result.run =
      mpsim::run_spmd(map.n_ranks, model, faults, [&](mpsim::Comm& comm) {
        index_t start_supernode = 0;
        count_t base_perturbations = 0;
        if (comm.is_spare()) {
          // Stand by until our designated crash fires (or the run ends).
          // Adoption rebinds this Comm to the dead rank and restores the
          // communication-protocol snapshot; the checkpoint header tells
          // us where to resume. A crashed incarnation never reaches the
          // perturbation accumulation below, so this replacement reports
          // the rank's full count (checkpoint base + replayed fronts).
          const mpsim::Takeover takeover = comm.await_failure();
          if (takeover.rank < 0) return;  // clean run; spare unused
          const CheckpointImage image = decode_checkpoint(takeover.checkpoint);
          start_supernode = image.next_supernode;
          base_perturbations = image.perturbations;
        }
        RankProgram program(sym, map, result.factor, comm, kind, d, pivot,
                            resilience, start_supernode, base_perturbations);
        program.run();
        perturbations.fetch_add(program.perturbations(),
                                std::memory_order_relaxed);
      });
  result.status =
      Status::success(perturbations.load(std::memory_order_relaxed));
  return result;
}

DistFactorResult distributed_factor_checked(const SymbolicFactor& sym,
                                            const FrontMap& map,
                                            const mpsim::MachineModel& model,
                                            FactorKind kind,
                                            PivotPolicy pivot,
                                            const mpsim::FaultPlan& faults,
                                            const ResiliencePolicy& resilience) {
  try {
    return distributed_factor(sym, map, model, kind, pivot, faults,
                              resilience);
  } catch (const StatusError& e) {
    DistFactorResult result(sym);
    result.status = e.status();
    return result;
  } catch (const Error& e) {
    DistFactorResult result(sym);
    result.status = Status::failure(StatusCode::kInternal, e.what());
    return result;
  }
}

}  // namespace parfact
