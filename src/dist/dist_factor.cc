#include "dist/dist_factor.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <span>
#include <sstream>
#include <vector>

#include "dense/kernels.h"
#include "dist/checkpoint.h"
#include "dist/extend_add.h"
#include "dist/front_blocks.h"
#include "support/error.h"
#include "support/status.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {
namespace {

// Message purposes multiplexed into tags: tag = kTagStride * s + purpose.
// FIFO per (source, tag) plus globally consistent iteration order make every
// channel deterministic (see matching send/recv loops below).
constexpr int kTagExtendAdd = 0;
constexpr int kTagDiag = 1;
constexpr int kTagPanel = 2;
/// Fan-both per-panel extend-add streams (kTaskDag). The tag is keyed by
/// (parent, child index) — see RankProgram::ea_stream_tag — so a source
/// rank participating in two children of one parent gets two distinct
/// FIFO channels.
constexpr int kTagEaStream = 3;
constexpr int kTagStride = 8;

struct EntryTriple {
  index_t row;  // front-local row of the *parent* front
  index_t col;  // front-local col of the parent front
  real_t value;
};

/// The locally owned pieces of one front on one rank.
class LocalFront {
 public:
  LocalFront(const FrontBlocking& fb, int pr, int pc, int my_gr, int my_gc)
      : fb_(fb), pr_(pr), pc_(pc), my_gr_(my_gr), my_gc_(my_gc) {
    if (my_gr_ < 0) return;  // spectator: owns nothing
    // Enumerate owned lower blocks (ib >= jb) and lay them out contiguously.
    std::size_t total = 0;
    for (index_t jb = my_gc_; jb < fb.nB; jb += pc_) {
      for (index_t ib = jb; ib < fb.nB; ++ib) {
        if (ib % pr_ != my_gr_) continue;
        offset_[{ib, jb}] = total;
        total += static_cast<std::size_t>(fb.size(ib)) * fb.size(jb);
      }
    }
    data_.assign(total, 0.0);
  }

  [[nodiscard]] bool owns(index_t ib, index_t jb) const {
    return my_gr_ >= 0 && ib % pr_ == my_gr_ && jb % pc_ == my_gc_ &&
           ib >= jb;
  }
  [[nodiscard]] MatrixView block(index_t ib, index_t jb) {
    const auto it = offset_.find({ib, jb});
    PARFACT_DCHECK(it != offset_.end());
    return {data_.data() + it->second, fb_.size(ib), fb_.size(jb),
            fb_.size(ib)};
  }
  [[nodiscard]] count_t bytes() const {
    return static_cast<count_t>(data_.size() * sizeof(real_t));
  }
  /// Adds v at front coordinates (i, j), i >= j; the entry must be owned.
  void add_entry(index_t i, index_t j, real_t v) {
    const index_t ib = fb_.block_of(i);
    const index_t jb = fb_.block_of(j);
    block(ib, jb).at(i - fb_.start(ib), j - fb_.start(jb)) += v;
  }

  const FrontBlocking& blocking() const { return fb_; }

 private:
  FrontBlocking fb_;
  int pr_, pc_, my_gr_, my_gc_;
  std::map<std::pair<index_t, index_t>, std::size_t> offset_;
  std::vector<real_t> data_;
};

/// Owner rank of block (ib, jb) of front s.
int block_owner(const FrontMap& map, index_t s, index_t ib, index_t jb) {
  return map.grid_rank(s, static_cast<int>(ib) % map.grid_rows[s],
                       static_cast<int>(jb) % map.grid_cols[s]);
}

/// One rank's whole factorization program. A fresh rank starts at supernode
/// 0 with a zero perturbation count; a spare resuming a crashed rank starts
/// at the checkpoint header's `next_supernode` with its recorded count —
/// the fronts before that are complete, their panels already deposited in
/// the shared factor, their contribution messages already in the retained
/// logs (mpsim's sequence-number dedup makes any re-sent prefix harmless).
class RankProgram {
 public:
  RankProgram(const SymbolicFactor& sym, const FrontMap& map,
              CholeskyFactor& factor, mpsim::Comm& comm, FactorKind kind,
              std::span<real_t> d, const PivotPolicy& pivot,
              const ResiliencePolicy& resilience, const DistConfig& config,
              index_t start_supernode = 0, count_t base_perturbations = 0)
      : sym_(sym), map_(map), factor_(factor), comm_(comm), kind_(kind),
        d_(d), pivot_(pivot),
        boost_{pivot.threshold, pivot.value, base_perturbations},
        ckpt_(comm, resilience), config_(config),
        start_supernode_(start_supernode) {
    children_.resize(static_cast<std::size_t>(sym.n_supernodes));
    for (index_t s = 0; s < sym.n_supernodes; ++s) {
      if (sym.sn_parent[s] != kNone) {
        children_[sym.sn_parent[s]].push_back(s);
      }
    }
  }

  void run() {
    for (index_t s = start_supernode_; s < sym_.n_supernodes; ++s) {
      if (!map_.participates(s, comm_.rank())) continue;
      process_front(s);
      ckpt_.front_complete(s + 1, boost_.count);
    }
  }

  /// Pivots this rank boosted (each diagonal block is factorized on exactly
  /// one rank, so the per-rank counts sum to the global count).
  [[nodiscard]] count_t perturbations() const { return boost_.count; }

  /// Extend-add wire traffic this rank produced (sender-side count).
  [[nodiscard]] count_t extend_add_bytes() const { return ea_bytes_; }
  [[nodiscard]] count_t extend_add_entries() const { return ea_entries_; }

 private:
  void process_front(index_t s) {
    const FrontBlocking fb =
        FrontBlocking::make(sym_.sn_cols(s), sym_.sn_below(s),
                            map_.block_size);
    const int pr = map_.grid_rows[s];
    const int pc = map_.grid_cols[s];
    // Spectator participants (grid_coords == {-1,-1}) own no blocks: the
    // (gr, gc) guards below then never fire, and LocalFront stays empty.
    const auto [gr, gc] = map_.grid_coords(s, comm_.rank());
    LocalFront front(fb, pr, pc, gr, gc);
    comm_.memory_add(front.bytes());

    if (config_.schedule == DistConfig::Schedule::kTaskDag) {
      // Fan-both: prepost the per-panel extend-add pool before touching the
      // matrix entries, merge each panel just before its first touch
      // (inside factorize_taskdag), then stream this front's own
      // contributions per destination panel. The pool is fully drained by
      // the end of the factorization, so the checkpoint boundary below sees
      // no outstanding receives.
      EaStreams ea = build_ea_streams(s, fb);
      assemble_matrix_entries(s, front);
      factorize_taskdag(s, front, pr, pc, gr, gc, ea);
      store_panel(s, front);
      send_update_taskdag(s, front, gr, gc);
      comm_.memory_sub(front.bytes());
      return;
    }

    // Lookahead schedule: prepost one receive per (child, source rank)
    // extend-add message before touching the matrix entries, so the
    // children's contribution traffic arrives while this rank assembles.
    std::vector<mpsim::Request> ea_reqs;
    if (config_.schedule == DistConfig::Schedule::kLookahead) {
      for (index_t c : children_[s]) {
        const int begin = map_.rank_begin[c];
        const int end = begin + map_.rank_count[c];
        const int tag = kTagStride * static_cast<int>(s) + kTagExtendAdd;
        for (int src = begin; src < end; ++src) {
          ea_reqs.push_back(comm_.irecv(src, tag));
        }
      }
    }
    assemble_matrix_entries(s, front);
    receive_extend_adds(s, front, ea_reqs);
    factorize(s, front, pr, pc, gr, gc);
    store_panel(s, front);
    send_update(s, front, gr, gc);
    comm_.memory_sub(front.bytes());
  }

  /// Scatter the owned share of A's columns into the front.
  void assemble_matrix_entries(index_t s, LocalFront& front) {
    const index_t first = sym_.sn_start[s];
    const index_t block_end = sym_.sn_start[s + 1];
    const index_t p = sym_.sn_cols(s);
    const auto rows = sym_.below_rows(s);
    const SparseMatrix& a = sym_.a;
    count_t touched = 0;
    for (index_t j = first; j < block_end; ++j) {
      const index_t lj = j - first;
      for (index_t q = a.col_ptr[j]; q < a.col_ptr[j + 1]; ++q) {
        const index_t gi = a.row_ind[q];
        index_t li;
        if (gi < block_end) {
          li = gi - first;
        } else {
          const auto it = std::lower_bound(rows.begin(), rows.end(), gi);
          PARFACT_DCHECK(it != rows.end() && *it == gi);
          li = p + static_cast<index_t>(it - rows.begin());
        }
        const index_t ib = front.blocking().block_of(li);
        const index_t jb = front.blocking().block_of(lj);
        if (block_owner(map_, s, ib, jb) != comm_.rank()) continue;
        front.add_entry(li, lj, a.values[q]);
        ++touched;
      }
    }
    comm_.advance_bytes(touched * static_cast<count_t>(sizeof(real_t)));
  }

  /// Receive the (possibly empty) extend-add message from every rank of
  /// every child, in (child, source-rank) ascending order. With preposted
  /// requests (lookahead) the same messages are waited in the same order,
  /// so the floating-point accumulation order is identical.
  void receive_extend_adds(index_t s, LocalFront& front,
                           std::vector<mpsim::Request>& ea_reqs) {
    const bool posted = !ea_reqs.empty();
    std::size_t next_req = 0;
    for (index_t c : children_[s]) {
      const int begin = map_.rank_begin[c];
      const int end = begin + map_.rank_count[c];
      const int tag = kTagStride * static_cast<int>(s) + kTagExtendAdd;
      // The receiver replays the sender's canonical enumeration to
      // reconstruct the packed payload's indices (see extend_add.h).
      ExtendAddPlan plan;
      if (config_.extend_add == DistConfig::ExtendAddFormat::kPacked) {
        plan = make_extend_add_plan(sym_, map_, c);
      }
      for (int src = begin; src < end; ++src) {
        if (config_.extend_add == DistConfig::ExtendAddFormat::kTriples) {
          const auto triples =
              posted ? comm_.wait_vec<EntryTriple>(ea_reqs[next_req++])
                     : comm_.recv_vec<EntryTriple>(src, tag);
          for (const EntryTriple& t : triples) {
            front.add_entry(t.row, t.col, t.value);
          }
          comm_.advance_bytes(static_cast<count_t>(triples.size()) *
                              static_cast<count_t>(sizeof(EntryTriple)));
        } else {
          const auto values =
              posted ? comm_.wait_vec<real_t>(ea_reqs[next_req++])
                     : comm_.recv_vec<real_t>(src, tag);
          const auto [sgr, sgc] = map_.grid_coords(c, src);
          std::size_t pos = 0;
          for_each_contribution(
              plan, map_, sgr, sgc,
              [&](index_t, index_t, index_t, index_t, index_t row,
                  index_t col, int owner) {
                if (owner != comm_.rank()) return;
                PARFACT_CHECK_MSG(pos < values.size(),
                                  "packed extend-add payload too short");
                front.add_entry(row, col, values[pos++]);
              });
          PARFACT_CHECK_MSG(pos == values.size(),
                            "packed extend-add payload size mismatch");
          comm_.advance_bytes(static_cast<count_t>(values.size()) *
                              static_cast<count_t>(sizeof(real_t)));
        }
      }
    }
  }

  void factorize(index_t s, LocalFront& front, int pr, int pc, int gr,
                 int gc) {
    if (config_.schedule == DistConfig::Schedule::kBlocking) {
      factorize_blocking(s, front, pr, pc, gr, gc);
    } else {
      factorize_lookahead(s, front, pr, pc, gr, gc);
    }
  }

  /// Block-cyclic right-looking partial Cholesky of the front, fully
  /// synchronous (every panel boundary is a rank-wide stall).
  void factorize_blocking(index_t s, LocalFront& front, int pr, int pc,
                          int gr, int gc) {
    const FrontBlocking& fb = front.blocking();
    const int tag_diag = kTagStride * static_cast<int>(s) + kTagDiag;
    const int tag_panel = kTagStride * static_cast<int>(s) + kTagPanel;

    // Cache of remote panel blocks received this block-column.
    std::map<index_t, std::vector<real_t>> remote;

    for (index_t kb = 0; kb < fb.kp; ++kb) {
      remote.clear();
      const int kbc = static_cast<int>(kb) % pc;  // grid column of block kb
      const int kbr = static_cast<int>(kb) % pr;
      const index_t bk = fb.size(kb);
      const bool ldlt = kind_ == FactorKind::kLdlt;
      std::vector<real_t> diag_buf;
      std::vector<real_t> dk;  // diag(D) of this block column (LDLᵀ only)
      ConstMatrixView l_kk{};

      if (gr == kbr && gc == kbc) {
        // I own the diagonal block: factorize and send down the grid column.
        // In LDLᵀ mode the broadcast payload carries diag(D) appended.
        MatrixView dblk = front.block(kb, kb);
        const index_t col0 = sym_.sn_start[s] + fb.start(kb);
        PivotBoost* boost = pivot_.boost ? &boost_ : nullptr;
        index_t info;
        if (ldlt) {
          info = ldlt_lower(dblk,
                            d_.subspan(static_cast<std::size_t>(col0),
                                       static_cast<std::size_t>(bk)),
                            boost);
          dk.assign(d_.begin() + col0, d_.begin() + col0 + bk);
        } else {
          info = potrf_lower(dblk, boost);
        }
        if (info != kNone) {
          std::ostringstream os;
          os << "bad pivot at column " << col0 + info
             << " (postordered), supernode " << s << " (front order "
             << sym_.front_order(s) << ", " << sym_.sn_cols(s)
             << " columns), panel block " << kb << " on rank "
             << comm_.rank();
          throw StatusError(
              Status::failure(StatusCode::kBreakdown, os.str(), s));
        }
        comm_.advance_compute(partial_cholesky_flops(bk, bk));
        diag_buf.assign(dblk.data,
                        dblk.data + static_cast<std::size_t>(bk) * bk);
        if (ldlt) diag_buf.insert(diag_buf.end(), dk.begin(), dk.end());
        for (int ri = 0; ri < pr; ++ri) {
          if (ri == gr) continue;
          if (!column_has_blocks_below(fb, kb, ri, pr)) continue;
          comm_.send_vec(map_.grid_rank(s, ri, kbc), tag_diag, diag_buf);
        }
        l_kk = ConstMatrixView{diag_buf.data(), bk, bk, bk};
      } else if (gc == kbc && column_has_blocks_below(fb, kb, gr, pr)) {
        diag_buf = comm_.recv_vec<real_t>(map_.grid_rank(s, kbr, kbc),
                                          tag_diag);
        l_kk = ConstMatrixView{diag_buf.data(), bk, bk, bk};
        if (ldlt) {
          dk.assign(diag_buf.begin() + static_cast<std::size_t>(bk) * bk,
                    diag_buf.end());
        }
      }

      // TRSM my panel blocks below kb, then broadcast them along their grid
      // row (A-side consumers) and grid column (B-side consumers).
      if (gc == kbc) {
        for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
          if (static_cast<int>(ib) % pr != gr) continue;
          MatrixView blk = front.block(ib, kb);
          trsm_right_lower_trans(l_kk, blk);
          if (ldlt) {
            // blk now holds M = A L⁻ᵀ = L·D; rescale to the stored L.
            for (index_t k = 0; k < bk; ++k) {
              const real_t inv = 1.0 / dk[k];
              real_t* col = &blk.at(0, k);
              for (index_t i = 0; i < blk.rows; ++i) col[i] *= inv;
            }
          }
          comm_.advance_compute(static_cast<count_t>(blk.rows) * bk *
                                (bk + 1));
          std::vector<int> dests;
          // A-side: ranks in grid row (ib % pr) owning (ib, jb), kb<jb<=ib.
          for (int c = 0; c < pc; ++c) {
            if (row_needs_block(kb, ib, c, pc)) {
              dests.push_back(
                  map_.grid_rank(s, static_cast<int>(ib) % pr, c));
            }
          }
          // B-side: ranks in grid column (ib % pc) owning (ib2, ib),
          // ib <= ib2 < nB.
          for (int rrow = 0; rrow < pr; ++rrow) {
            if (col_needs_block(fb, ib, rrow, pr)) {
              dests.push_back(
                  map_.grid_rank(s, rrow, static_cast<int>(ib) % pc));
            }
          }
          std::sort(dests.begin(), dests.end());
          dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
          std::vector<real_t> payload(
              blk.data, blk.data + static_cast<std::size_t>(blk.rows) * bk);
          if (ldlt) payload.insert(payload.end(), dk.begin(), dk.end());
          for (int dst : dests) {
            if (dst == comm_.rank()) continue;
            comm_.send_vec(dst, tag_panel, payload);
          }
        }
      }

      // Determine which panel blocks I need for my trailing updates, fetch
      // the remote ones (ascending block index per source keeps FIFO happy).
      std::vector<index_t> needed;
      for (index_t jb = kb + 1; jb < fb.nB; ++jb) {
        if (static_cast<int>(jb) % pc != gc) continue;
        for (index_t ib = jb; ib < fb.nB; ++ib) {
          if (static_cast<int>(ib) % pr != gr) continue;
          needed.push_back(ib);
          needed.push_back(jb);
        }
      }
      std::sort(needed.begin(), needed.end());
      needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
      for (index_t x : needed) {
        const int owner = block_owner(map_, s, x, kb);
        if (owner == comm_.rank()) continue;
        std::vector<real_t> payload = comm_.recv_vec<real_t>(owner, tag_panel);
        if (ldlt) {
          if (dk.empty()) {
            dk.assign(payload.end() - bk, payload.end());
          }
          payload.resize(payload.size() - bk);
        }
        remote[x] = std::move(payload);
      }
      auto panel_block = [&](index_t x) -> ConstMatrixView {
        if (block_owner(map_, s, x, kb) == comm_.rank()) {
          return front.block(x, kb);
        }
        const auto it = remote.find(x);
        PARFACT_DCHECK(it != remote.end());
        return {it->second.data(), fb.size(x), bk, fb.size(x)};
      };

      // Trailing update: C(ib, jb) -= L(ib, kb) D L(jb, kb)ᵀ (D = I for
      // Cholesky). In LDLᵀ mode the B-side operand is rescaled by D.
      std::vector<real_t> scaled;
      auto b_side = [&](index_t x) -> ConstMatrixView {
        const ConstMatrixView l = panel_block(x);
        if (!ldlt) return l;
        scaled.resize(static_cast<std::size_t>(l.rows) * bk);
        for (index_t k = 0; k < bk; ++k) {
          const real_t dv = dk[k];
          for (index_t i = 0; i < l.rows; ++i) {
            scaled[static_cast<std::size_t>(k) * l.rows + i] =
                l.at(i, k) * dv;
          }
        }
        return {scaled.data(), l.rows, bk, l.rows};
      };
      for (index_t jb = kb + 1; jb < fb.nB; ++jb) {
        if (static_cast<int>(jb) % pc != gc) continue;
        // First ib ≥ jb in this rank's grid row; if none, block (jb, kb)
        // was never requested and must not be touched.
        const index_t ib0 =
            jb + (gr - static_cast<int>(jb) % pr + pr) % pr;
        if (ib0 >= fb.nB) continue;
        // Hoisted out of the ib loop: in LDLᵀ mode b_side rescales the
        // whole block by D, which must not be redone per row block.
        const ConstMatrixView bj = b_side(jb);
        for (index_t ib = ib0; ib < fb.nB; ++ib) {
          if (static_cast<int>(ib) % pr != gr) continue;
          MatrixView c = front.block(ib, jb);
          if (ib == jb && !ldlt) {
            syrk_lower_update(c, panel_block(ib));
          } else {
            gemm_nt_update(c, panel_block(ib), bj);
          }
          comm_.advance_compute(2 * static_cast<count_t>(c.rows) * c.cols *
                                bk);
        }
      }
    }
  }

  /// Per-panel in-flight state of the lookahead pipeline. Movable: the
  /// heap buffers (and the l_kk view into diag_buf) survive the move.
  struct PanelState {
    std::vector<real_t> diag_buf;  ///< L_kk (+ diag(D) tail in LDLᵀ mode)
    std::vector<real_t> dk;        ///< diag(D) of this block column (LDLᵀ)
    ConstMatrixView l_kk{};
    mpsim::Request diag_req;
    bool expect_diag = false;
    std::map<index_t, std::vector<real_t>> remote;  ///< fetched panel blocks
    std::vector<std::pair<index_t, mpsim::Request>> panel_reqs;
  };

  /// Posts the receives block column kb will need: the diagonal broadcast
  /// (if this rank sits in kb's grid column below the diagonal owner) and
  /// every remote panel block its trailing updates consume, in ascending
  /// block index — the order the owners send them, so the preposted FIFO
  /// tickets match the blocking schedule's recv order exactly.
  void post_panel_receives(index_t s, const FrontBlocking& fb, int pr,
                           int pc, int gr, int gc, index_t kb,
                           PanelState& st) {
    const int tag_diag = kTagStride * static_cast<int>(s) + kTagDiag;
    const int tag_panel = kTagStride * static_cast<int>(s) + kTagPanel;
    const int kbc = static_cast<int>(kb) % pc;
    const int kbr = static_cast<int>(kb) % pr;
    if (gc == kbc && gr != kbr && column_has_blocks_below(fb, kb, gr, pr)) {
      st.diag_req = comm_.irecv(map_.grid_rank(s, kbr, kbc), tag_diag);
      st.expect_diag = true;
    }
    std::vector<index_t> needed;
    for (index_t jb = kb + 1; jb < fb.nB; ++jb) {
      if (static_cast<int>(jb) % pc != gc) continue;
      for (index_t ib = jb; ib < fb.nB; ++ib) {
        if (static_cast<int>(ib) % pr != gr) continue;
        needed.push_back(ib);
        needed.push_back(jb);
      }
    }
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
    for (index_t x : needed) {
      const int owner = block_owner(map_, s, x, kb);
      if (owner == comm_.rank()) continue;
      st.panel_reqs.emplace_back(x, comm_.irecv(owner, tag_panel));
    }
  }

  /// Factors block column kb's diagonal at its owner, distributes it, and
  /// TRSMs + broadcasts this rank's panel blocks — identical arithmetic and
  /// per-link send order to the first half of factorize_blocking, with the
  /// diagonal arriving through the preposted request.
  void factor_column(index_t s, LocalFront& front, int pr, int pc, int gr,
                     int gc, index_t kb, PanelState& st) {
    const FrontBlocking& fb = front.blocking();
    const int tag_diag = kTagStride * static_cast<int>(s) + kTagDiag;
    const int tag_panel = kTagStride * static_cast<int>(s) + kTagPanel;
    const int kbc = static_cast<int>(kb) % pc;
    const int kbr = static_cast<int>(kb) % pr;
    const index_t bk = fb.size(kb);
    const bool ldlt = kind_ == FactorKind::kLdlt;

    if (gr == kbr && gc == kbc) {
      MatrixView dblk = front.block(kb, kb);
      const index_t col0 = sym_.sn_start[s] + fb.start(kb);
      PivotBoost* boost = pivot_.boost ? &boost_ : nullptr;
      index_t info;
      if (ldlt) {
        info = ldlt_lower(dblk,
                          d_.subspan(static_cast<std::size_t>(col0),
                                     static_cast<std::size_t>(bk)),
                          boost);
        st.dk.assign(d_.begin() + col0, d_.begin() + col0 + bk);
      } else {
        info = potrf_lower(dblk, boost);
      }
      if (info != kNone) {
        std::ostringstream os;
        os << "bad pivot at column " << col0 + info
           << " (postordered), supernode " << s << " (front order "
           << sym_.front_order(s) << ", " << sym_.sn_cols(s)
           << " columns), panel block " << kb << " on rank "
           << comm_.rank();
        throw StatusError(
            Status::failure(StatusCode::kBreakdown, os.str(), s));
      }
      comm_.advance_compute(partial_cholesky_flops(bk, bk));
      st.diag_buf.assign(dblk.data,
                         dblk.data + static_cast<std::size_t>(bk) * bk);
      if (ldlt) {
        st.diag_buf.insert(st.diag_buf.end(), st.dk.begin(), st.dk.end());
      }
      for (int ri = 0; ri < pr; ++ri) {
        if (ri == gr) continue;
        if (!column_has_blocks_below(fb, kb, ri, pr)) continue;
        comm_.send_vec(map_.grid_rank(s, ri, kbc), tag_diag, st.diag_buf);
      }
      st.l_kk = ConstMatrixView{st.diag_buf.data(), bk, bk, bk};
    } else if (st.expect_diag) {
      st.diag_buf = comm_.wait_vec<real_t>(st.diag_req);
      st.l_kk = ConstMatrixView{st.diag_buf.data(), bk, bk, bk};
      if (ldlt) {
        st.dk.assign(st.diag_buf.begin() + static_cast<std::size_t>(bk) * bk,
                     st.diag_buf.end());
      }
    }

    if (gc == kbc) {
      for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
        if (static_cast<int>(ib) % pr != gr) continue;
        MatrixView blk = front.block(ib, kb);
        trsm_right_lower_trans(st.l_kk, blk);
        if (ldlt) {
          // blk now holds M = A L⁻ᵀ = L·D; rescale to the stored L.
          for (index_t k = 0; k < bk; ++k) {
            const real_t inv = 1.0 / st.dk[k];
            real_t* col = &blk.at(0, k);
            for (index_t i = 0; i < blk.rows; ++i) col[i] *= inv;
          }
        }
        comm_.advance_compute(static_cast<count_t>(blk.rows) * bk *
                              (bk + 1));
        std::vector<int> dests;
        // A-side: ranks in grid row (ib % pr) owning (ib, jb), kb<jb<=ib.
        for (int c = 0; c < pc; ++c) {
          if (row_needs_block(kb, ib, c, pc)) {
            dests.push_back(
                map_.grid_rank(s, static_cast<int>(ib) % pr, c));
          }
        }
        // B-side: ranks in grid column (ib % pc) owning (ib2, ib),
        // ib <= ib2 < nB.
        for (int rrow = 0; rrow < pr; ++rrow) {
          if (col_needs_block(fb, ib, rrow, pr)) {
            dests.push_back(
                map_.grid_rank(s, rrow, static_cast<int>(ib) % pc));
          }
        }
        std::sort(dests.begin(), dests.end());
        dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
        std::vector<real_t> payload(
            blk.data, blk.data + static_cast<std::size_t>(blk.rows) * bk);
        if (ldlt) payload.insert(payload.end(), st.dk.begin(), st.dk.end());
        for (int dst : dests) {
          if (dst == comm_.rank()) continue;
          comm_.send_vec(dst, tag_panel, payload);
        }
      }
    }
  }

  /// Waits the preposted remote panel receives of block column kb (in
  /// posting order — the sender's order) into st.remote.
  void collect_panels(const FrontBlocking& fb, index_t kb, PanelState& st) {
    const index_t bk = fb.size(kb);
    const bool ldlt = kind_ == FactorKind::kLdlt;
    for (auto& [x, req] : st.panel_reqs) {
      std::vector<real_t> payload = comm_.wait_vec<real_t>(req);
      if (ldlt) {
        if (st.dk.empty()) {
          st.dk.assign(payload.end() - bk, payload.end());
        }
        payload.resize(payload.size() - bk);
      }
      st.remote[x] = std::move(payload);
    }
    st.panel_reqs.clear();
  }

  /// Applies panel kb's trailing update to this rank's blocks in block
  /// columns [jb_begin, jb_end) — the same per-block GEMM/SYRK calls, with
  /// the same operands, as factorize_blocking's trailing loop.
  void update_block_columns(index_t s, LocalFront& front, int pr, int pc,
                            int gr, int gc, index_t kb, PanelState& st,
                            index_t jb_begin, index_t jb_end) {
    const FrontBlocking& fb = front.blocking();
    const index_t bk = fb.size(kb);
    const bool ldlt = kind_ == FactorKind::kLdlt;
    auto panel_block = [&](index_t x) -> ConstMatrixView {
      if (block_owner(map_, s, x, kb) == comm_.rank()) {
        return front.block(x, kb);
      }
      const auto it = st.remote.find(x);
      PARFACT_DCHECK(it != st.remote.end());
      return {it->second.data(), fb.size(x), bk, fb.size(x)};
    };
    std::vector<real_t> scaled;
    auto b_side = [&](index_t x) -> ConstMatrixView {
      const ConstMatrixView l = panel_block(x);
      if (!ldlt) return l;
      scaled.resize(static_cast<std::size_t>(l.rows) * bk);
      for (index_t k = 0; k < bk; ++k) {
        const real_t dv = st.dk[k];
        for (index_t i = 0; i < l.rows; ++i) {
          scaled[static_cast<std::size_t>(k) * l.rows + i] =
              l.at(i, k) * dv;
        }
      }
      return {scaled.data(), l.rows, bk, l.rows};
    };
    for (index_t jb = jb_begin; jb < jb_end; ++jb) {
      if (static_cast<int>(jb) % pc != gc) continue;
      const index_t ib0 =
          jb + (gr - static_cast<int>(jb) % pr + pr) % pr;
      if (ib0 >= fb.nB) continue;
      const ConstMatrixView bj = b_side(jb);
      for (index_t ib = ib0; ib < fb.nB; ++ib) {
        if (static_cast<int>(ib) % pr != gr) continue;
        MatrixView c = front.block(ib, jb);
        if (ib == jb && !ldlt) {
          syrk_lower_update(c, panel_block(ib));
        } else {
          gemm_nt_update(c, panel_block(ib), bj);
        }
        comm_.advance_compute(2 * static_cast<count_t>(c.rows) * c.cols *
                              bk);
      }
    }
  }

  /// Depth-1 panel-lookahead schedule. While every rank applies panel kb's
  /// trailing updates, panel kb+1 is already factored and its blocks are in
  /// flight. The trailing update is split into the *urgent* part (block
  /// column kb+1 — the one factor_column(kb+1) is about to read) and the
  /// *lazy* rest; per block, updates still apply in strictly ascending kb
  /// with identical operands, so the factor is bitwise identical to the
  /// blocking schedule's.
  void factorize_lookahead(index_t s, LocalFront& front, int pr, int pc,
                           int gr, int gc) {
    const FrontBlocking& fb = front.blocking();
    if (fb.kp == 0) return;
    PanelState cur;
    post_panel_receives(s, fb, pr, pc, gr, gc, 0, cur);
    factor_column(s, front, pr, pc, gr, gc, 0, cur);
    for (index_t kb = 0; kb < fb.kp; ++kb) {
      collect_panels(fb, kb, cur);
      update_block_columns(s, front, pr, pc, gr, gc, kb, cur, kb + 1,
                           std::min<index_t>(kb + 2, fb.nB));
      if (kb + 1 < fb.kp) {
        PanelState next;
        post_panel_receives(s, fb, pr, pc, gr, gc, kb + 1, next);
        factor_column(s, front, pr, pc, gr, gc, kb + 1, next);
        update_block_columns(s, front, pr, pc, gr, gc, kb, cur, kb + 2,
                             fb.nB);
        cur = std::move(next);
      } else {
        update_block_columns(s, front, pr, pc, gr, gc, kb, cur, kb + 2,
                             fb.nB);
      }
    }
  }

  /// Per-front fan-both extend-add pool: one preposted irecv per non-empty
  /// (destination panel, child, source rank) stream message. Slots (and
  /// requests) are ordered (panel, child, source) ascending — need order,
  /// so wait_any's blocking case always targets the next message a merge
  /// requires — and per (source, tag) channel that order is panel-ascending,
  /// matching the sender's panel-ascending send loop, so FIFO tickets line
  /// up with message identity.
  struct EaStreams {
    struct Slot {
      index_t panel = 0;          ///< destination parent block column
      std::size_t child_pos = 0;  ///< index into children_[s] (tag key)
      int src = -1;               ///< sending child rank
      /// This rank's (row, col) targets in canonical order restricted to
      /// this slot — the packed payload's implicit index header. Triples
      /// carry indices on the wire; the list then only pins the expected
      /// entry count.
      std::vector<std::pair<index_t, index_t>> targets;
      std::vector<real_t> values;        ///< packed payload, once arrived
      std::vector<EntryTriple> triples;  ///< triples payload, once arrived
    };
    std::vector<Slot> slots;
    std::vector<mpsim::Request> reqs;  ///< parallel to slots (posting order)
    /// Slots of panel p occupy [panel_begin[p], panel_begin[p + 1]).
    std::vector<std::size_t> panel_begin;
    index_t next_panel = 0;    ///< first panel not yet merged
    std::size_t drained = 0;   ///< every request below this index is done
  };

  /// Tag of the fan-both extend-add stream from child #child_pos of parent
  /// front `parent`. All panels of one (child, source) stream share the
  /// channel; the child *index* — not the child supernode — keys it so a
  /// source rank serving two children of one parent gets two distinct FIFO
  /// channels, and the n_supernodes multiplier keeps the space disjoint
  /// from every kTagStride * s tag of the other purposes.
  [[nodiscard]] int ea_stream_tag(index_t parent,
                                  std::size_t child_pos) const {
    return kTagStride *
               static_cast<int>(parent +
                                sym_.n_supernodes *
                                    static_cast<index_t>(child_pos)) +
           kTagEaStream;
  }

  /// Enumerates every child cell once, bucketing this rank's owned targets
  /// by destination panel, then posts the pool in (panel, child, source)
  /// order. Both endpoints derive each stream message's content — and which
  /// are empty and never sent — from the symbolic structure alone.
  [[nodiscard]] EaStreams build_ea_streams(index_t s,
                                           const FrontBlocking& fb) {
    EaStreams ea;
    ea.panel_begin.assign(static_cast<std::size_t>(fb.nB) + 1,
                          0);
    if (children_[s].empty()) return ea;
    // per_cell[child_pos][src - begin][panel] -> target list for this rank.
    std::vector<std::vector<std::vector<
        std::vector<std::pair<index_t, index_t>>>>> per_cell(
        children_[s].size());
    for (std::size_t cp = 0; cp < children_[s].size(); ++cp) {
      const index_t c = children_[s][cp];
      const ExtendAddPlan plan = make_extend_add_plan(sym_, map_, c);
      const int begin = map_.rank_begin[c];
      const int count = map_.rank_count[c];
      per_cell[cp].resize(static_cast<std::size_t>(count));
      for (int src = begin; src < begin + count; ++src) {
        auto& buckets = per_cell[cp][static_cast<std::size_t>(src - begin)];
        buckets.resize(static_cast<std::size_t>(fb.nB));
        const auto [sgr, sgc] = map_.grid_coords(c, src);
        for_each_panel_contribution(
            plan, map_, sgr, sgc,
            [&](index_t, index_t, index_t, index_t, index_t row,
                index_t col, int owner, index_t panel) {
              if (owner != comm_.rank()) return;
              buckets[static_cast<std::size_t>(panel)].emplace_back(row,
                                                                    col);
            });
      }
    }
    for (index_t p = 0; p < fb.nB; ++p) {
      ea.panel_begin[static_cast<std::size_t>(p)] = ea.slots.size();
      for (std::size_t cp = 0; cp < children_[s].size(); ++cp) {
        const index_t c = children_[s][cp];
        const int begin = map_.rank_begin[c];
        const int end = begin + map_.rank_count[c];
        for (int src = begin; src < end; ++src) {
          auto& targets = per_cell[cp][static_cast<std::size_t>(
              src - begin)][static_cast<std::size_t>(p)];
          if (targets.empty()) continue;
          EaStreams::Slot slot;
          slot.panel = p;
          slot.child_pos = cp;
          slot.src = src;
          slot.targets = std::move(targets);
          ea.slots.push_back(std::move(slot));
        }
      }
    }
    ea.panel_begin[static_cast<std::size_t>(fb.nB)] = ea.slots.size();
    ea.reqs.reserve(ea.slots.size());
    for (const EaStreams::Slot& slot : ea.slots) {
      ea.reqs.push_back(
          comm_.irecv(slot.src, ea_stream_tag(s, slot.child_pos)));
    }
    return ea;
  }

  /// Moves a completed request's payload into its slot (wait on a done
  /// request returns immediately with the buffered bytes).
  void extract_slot(EaStreams& ea, std::size_t idx) {
    EaStreams::Slot& slot = ea.slots[idx];
    if (config_.extend_add == DistConfig::ExtendAddFormat::kTriples) {
      slot.triples = comm_.wait_vec<EntryTriple>(ea.reqs[idx]);
    } else {
      slot.values = comm_.wait_vec<real_t>(ea.reqs[idx]);
    }
  }

  /// Drains the pool through panel jb — buffering whatever else wait_any's
  /// fast path happens to harvest — then merges every not-yet-merged panel
  /// ≤ jb into the front, each in fixed (child, source-rank) slot order
  /// regardless of arrival order. Per scalar the addition order is exactly
  /// the blocking schedule's: at most one entry per (child, source) message
  /// (extend_add.h), applied children-ascending then source-ascending.
  void ensure_assembled(index_t jb, LocalFront& front, EaStreams& ea) {
    if (ea.next_panel > jb) return;
    const std::size_t end =
        ea.panel_begin[static_cast<std::size_t>(jb) + 1];
    for (;;) {
      while (ea.drained < end && ea.reqs[ea.drained].done()) ++ea.drained;
      if (ea.drained >= end) break;
      extract_slot(ea, comm_.wait_any(ea.reqs));
    }
    for (; ea.next_panel <= jb; ++ea.next_panel) {
      const std::size_t p0 =
          ea.panel_begin[static_cast<std::size_t>(ea.next_panel)];
      const std::size_t p1 =
          ea.panel_begin[static_cast<std::size_t>(ea.next_panel) + 1];
      for (std::size_t i = p0; i < p1; ++i) {
        EaStreams::Slot& slot = ea.slots[i];
        if (config_.extend_add == DistConfig::ExtendAddFormat::kTriples) {
          PARFACT_CHECK_MSG(slot.triples.size() == slot.targets.size(),
                            "fan-both triples stream size mismatch");
          for (const EntryTriple& t : slot.triples) {
            front.add_entry(t.row, t.col, t.value);
          }
          comm_.advance_bytes(static_cast<count_t>(slot.triples.size()) *
                              static_cast<count_t>(sizeof(EntryTriple)));
          slot.triples = {};
        } else {
          PARFACT_CHECK_MSG(slot.values.size() == slot.targets.size(),
                            "fan-both packed stream size mismatch");
          for (std::size_t k = 0; k < slot.targets.size(); ++k) {
            front.add_entry(slot.targets[k].first, slot.targets[k].second,
                            slot.values[k]);
          }
          comm_.advance_bytes(static_cast<count_t>(slot.values.size()) *
                              static_cast<count_t>(sizeof(real_t)));
          slot.values = {};
        }
      }
    }
  }

  /// Fan-both schedule: the depth-1 lookahead pipeline (same panel
  /// broadcasts, same urgent/lazy trailing-update split, same per-channel
  /// send orders) with the collective extend-add barrier dissolved into
  /// per-panel arrival floors. Where blocking/lookahead wait for every
  /// child contribution before the first panel factors, this schedule
  /// merges each destination panel just before its first touch: panel 0
  /// before factor_column(0), panel kb+1 before its urgent update, and
  /// each lazily-updated column inside the lazy sweep — so factoring
  /// starts while children are still streaming their later panels. Per
  /// scalar the addition order is exactly factorize_blocking's (A-scatter,
  /// then child contributions in fixed (child, source-rank) order, then
  /// panel updates ascending kb with identical operands), so the factor is
  /// bitwise identical.
  void factorize_taskdag(index_t s, LocalFront& front, int pr, int pc,
                         int gr, int gc, EaStreams& ea) {
    const FrontBlocking& fb = front.blocking();
    if (fb.kp > 0) {
      ensure_assembled(0, front, ea);
      PanelState cur;
      post_panel_receives(s, fb, pr, pc, gr, gc, 0, cur);
      factor_column(s, front, pr, pc, gr, gc, 0, cur);
      for (index_t kb = 0; kb < fb.kp; ++kb) {
        collect_panels(fb, kb, cur);
        if (kb + 1 < fb.nB) ensure_assembled(kb + 1, front, ea);
        update_block_columns(s, front, pr, pc, gr, gc, kb, cur, kb + 1,
                             std::min<index_t>(kb + 2, fb.nB));
        if (kb + 1 < fb.kp) {
          PanelState next;
          post_panel_receives(s, fb, pr, pc, gr, gc, kb + 1, next);
          factor_column(s, front, pr, pc, gr, gc, kb + 1, next);
          for (index_t jb = kb + 2; jb < fb.nB; ++jb) {
            ensure_assembled(jb, front, ea);
            update_block_columns(s, front, pr, pc, gr, gc, kb, cur, jb,
                                 jb + 1);
          }
          cur = std::move(next);
        } else {
          for (index_t jb = kb + 2; jb < fb.nB; ++jb) {
            ensure_assembled(jb, front, ea);
            update_block_columns(s, front, pr, pc, gr, gc, kb, cur, jb,
                                 jb + 1);
          }
        }
      }
    }
    // Full drain (mostly a no-op — the sweeps above ensured every panel a
    // trailing update touches): the checkpoint boundary after this front
    // requires every posted receive to be complete, including streams into
    // panels no update ever touched.
    if (!ea.slots.empty()) ensure_assembled(fb.nB - 1, front, ea);
  }

  /// True iff grid row `ri` owns any block (ib, kb) with ib > kb.
  static bool column_has_blocks_below(const FrontBlocking& fb, index_t kb,
                                      int ri, int pr) {
    for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
      if (static_cast<int>(ib) % pr == ri) return true;
    }
    return false;
  }
  /// True iff rank at grid column c owns a block (ib, jb), kb < jb <= ib.
  static bool row_needs_block(index_t kb, index_t ib, int c, int pc) {
    for (index_t jb = kb + 1; jb <= ib; ++jb) {
      if (static_cast<int>(jb) % pc == c) return true;
    }
    return false;
  }
  /// True iff grid row `rrow` owns a block (ib2, ib) with ib <= ib2 < nB.
  static bool col_needs_block(const FrontBlocking& fb, index_t ib, int rrow,
                              int pr) {
    for (index_t ib2 = ib; ib2 < fb.nB; ++ib2) {
      if (static_cast<int>(ib2) % pr == rrow) return true;
    }
    return false;
  }

  /// Copy owned panel blocks into the shared factor (disjoint writes).
  void store_panel(index_t s, LocalFront& front) {
    const FrontBlocking& fb = front.blocking();
    MatrixView panel = factor_.panel(s);
    count_t bytes = 0;
    for (index_t jb = 0; jb < fb.kp; ++jb) {
      for (index_t ib = jb; ib < fb.nB; ++ib) {
        if (!front.owns(ib, jb)) continue;
        const MatrixView blk = front.block(ib, jb);
        const index_t r0 = fb.start(ib);
        const index_t c0 = fb.start(jb);
        for (index_t j = 0; j < blk.cols; ++j) {
          const index_t i_begin = (ib == jb) ? j : 0;
          for (index_t i = i_begin; i < blk.rows; ++i) {
            panel.at(r0 + i, c0 + j) = blk.at(i, j);
          }
        }
        const count_t blk_bytes = static_cast<count_t>(blk.rows) * blk.cols *
                                  static_cast<count_t>(sizeof(real_t));
        ckpt_.note_panel(blk.data, static_cast<std::size_t>(blk_bytes));
        bytes += blk_bytes;
      }
    }
    // Owned factor panels persist for the solve phase.
    comm_.memory_add(bytes);
    comm_.advance_bytes(bytes);
  }

  /// Pack the owned update-region entries by destination parent rank and
  /// send one (possibly empty) message to every parent rank. Both formats
  /// walk the canonical enumeration of extend_add.h; the packed one ships
  /// the values alone and the receiver replays the enumeration.
  void send_update(index_t s, LocalFront& front, int gr, int gc) {
    const index_t parent = sym_.sn_parent[s];
    if (parent == kNone) return;
    const ExtendAddPlan plan = make_extend_add_plan(sym_, map_, s);
    const int pbegin = map_.rank_begin[parent];
    const int pcount = map_.rank_count[parent];
    const int tag = kTagStride * static_cast<int>(parent) + kTagExtendAdd;

    // Cache the current block view: the enumeration is contiguous per
    // (ib, jb), so one lookup per block suffices.
    index_t cur_ib = kNone, cur_jb = kNone;
    MatrixView blk{};
    const auto block_at = [&](index_t ib, index_t jb) -> const MatrixView& {
      if (ib != cur_ib || jb != cur_jb) {
        blk = front.block(ib, jb);
        cur_ib = ib;
        cur_jb = jb;
      }
      return blk;
    };

    if (config_.extend_add == DistConfig::ExtendAddFormat::kTriples) {
      std::vector<std::vector<EntryTriple>> outbox(
          static_cast<std::size_t>(pcount));
      for_each_contribution(
          plan, map_, gr, gc,
          [&](index_t ib, index_t jb, index_t i, index_t j, index_t row,
              index_t col, int owner) {
            outbox[static_cast<std::size_t>(owner - pbegin)].push_back(
                EntryTriple{row, col, block_at(ib, jb).at(i, j)});
          });
      for (int d = 0; d < pcount; ++d) {
        const count_t bytes = static_cast<count_t>(outbox[d].size()) *
                              static_cast<count_t>(sizeof(EntryTriple));
        ckpt_.note_contribution(outbox[d].data(),
                                static_cast<std::size_t>(bytes));
        comm_.send_vec(pbegin + d, tag, outbox[d]);
        ea_bytes_ += bytes;
        ea_entries_ += static_cast<count_t>(outbox[d].size());
      }
    } else {
      std::vector<std::vector<real_t>> outbox(
          static_cast<std::size_t>(pcount));
      for_each_contribution(
          plan, map_, gr, gc,
          [&](index_t ib, index_t jb, index_t i, index_t j, index_t,
              index_t, int owner) {
            outbox[static_cast<std::size_t>(owner - pbegin)].push_back(
                block_at(ib, jb).at(i, j));
          });
      for (int d = 0; d < pcount; ++d) {
        const count_t bytes = static_cast<count_t>(outbox[d].size()) *
                              static_cast<count_t>(sizeof(real_t));
        ckpt_.note_contribution(outbox[d].data(),
                                static_cast<std::size_t>(bytes));
        comm_.send_vec(pbegin + d, tag, outbox[d]);
        ea_bytes_ += bytes;
        ea_entries_ += static_cast<count_t>(outbox[d].size());
      }
    }
  }

  /// Fan-both counterpart of send_update: the same canonical enumeration,
  /// bucketed by (destination parent rank, destination panel), one message
  /// per non-empty bucket. The outer loop walks panels ascending so each
  /// (source → destination, tag) channel carries its stream messages in
  /// panel order — the order the parent posts that channel's receives.
  /// Empty buckets are skipped on both endpoints (extend_add.h), so no
  /// message ever exists for them.
  void send_update_taskdag(index_t s, LocalFront& front, int gr, int gc) {
    const index_t parent = sym_.sn_parent[s];
    if (parent == kNone) return;
    const ExtendAddPlan plan = make_extend_add_plan(sym_, map_, s);
    const int pbegin = map_.rank_begin[parent];
    const int pcount = map_.rank_count[parent];
    const auto& siblings = children_[parent];
    const std::size_t child_pos = static_cast<std::size_t>(
        std::find(siblings.begin(), siblings.end(), s) - siblings.begin());
    PARFACT_CHECK(child_pos < siblings.size());
    const int tag = ea_stream_tag(parent, child_pos);
    const index_t pnB = plan.pfb.nB;

    index_t cur_ib = kNone, cur_jb = kNone;
    MatrixView blk{};
    const auto block_at = [&](index_t ib, index_t jb) -> const MatrixView& {
      if (ib != cur_ib || jb != cur_jb) {
        blk = front.block(ib, jb);
        cur_ib = ib;
        cur_jb = jb;
      }
      return blk;
    };
    const auto bucket_of = [&](int owner, index_t panel) -> std::size_t {
      return static_cast<std::size_t>(owner - pbegin) *
                 static_cast<std::size_t>(pnB) +
             static_cast<std::size_t>(panel);
    };

    if (config_.extend_add == DistConfig::ExtendAddFormat::kTriples) {
      std::vector<std::vector<EntryTriple>> outbox(
          static_cast<std::size_t>(pcount) * static_cast<std::size_t>(pnB));
      for_each_panel_contribution(
          plan, map_, gr, gc,
          [&](index_t ib, index_t jb, index_t i, index_t j, index_t row,
              index_t col, int owner, index_t panel) {
            outbox[bucket_of(owner, panel)].push_back(
                EntryTriple{row, col, block_at(ib, jb).at(i, j)});
          });
      for (index_t p = 0; p < pnB; ++p) {
        for (int d = 0; d < pcount; ++d) {
          const auto& msg = outbox[bucket_of(pbegin + d, p)];
          if (msg.empty()) continue;
          const count_t bytes = static_cast<count_t>(msg.size()) *
                                static_cast<count_t>(sizeof(EntryTriple));
          ckpt_.note_contribution(msg.data(),
                                  static_cast<std::size_t>(bytes));
          comm_.send_vec(pbegin + d, tag, msg);
          ea_bytes_ += bytes;
          ea_entries_ += static_cast<count_t>(msg.size());
        }
      }
    } else {
      std::vector<std::vector<real_t>> outbox(
          static_cast<std::size_t>(pcount) * static_cast<std::size_t>(pnB));
      for_each_panel_contribution(
          plan, map_, gr, gc,
          [&](index_t ib, index_t jb, index_t i, index_t j, index_t,
              index_t, int owner, index_t panel) {
            outbox[bucket_of(owner, panel)].push_back(
                block_at(ib, jb).at(i, j));
          });
      for (index_t p = 0; p < pnB; ++p) {
        for (int d = 0; d < pcount; ++d) {
          const auto& msg = outbox[bucket_of(pbegin + d, p)];
          if (msg.empty()) continue;
          const count_t bytes = static_cast<count_t>(msg.size()) *
                                static_cast<count_t>(sizeof(real_t));
          ckpt_.note_contribution(msg.data(),
                                  static_cast<std::size_t>(bytes));
          comm_.send_vec(pbegin + d, tag, msg);
          ea_bytes_ += bytes;
          ea_entries_ += static_cast<count_t>(msg.size());
        }
      }
    }
  }

  const SymbolicFactor& sym_;
  const FrontMap& map_;
  CholeskyFactor& factor_;
  mpsim::Comm& comm_;
  FactorKind kind_;
  std::span<real_t> d_;  ///< shared diag(D) output in LDLᵀ mode
  PivotPolicy pivot_;
  PivotBoost boost_;  ///< per-rank static-pivoting counter
  BuddyCheckpointer ckpt_;
  DistConfig config_;
  index_t start_supernode_;  ///< first front to execute (resume point)
  std::vector<std::vector<index_t>> children_;
  count_t ea_bytes_ = 0;    ///< extend-add wire bytes sent by this rank
  count_t ea_entries_ = 0;  ///< extend-add entries sent by this rank
};

}  // namespace

DistFactorResult distributed_factor(const SymbolicFactor& sym,
                                    const FrontMap& map,
                                    const mpsim::MachineModel& model,
                                    FactorKind kind, PivotPolicy pivot,
                                    const mpsim::FaultPlan& faults,
                                    const ResiliencePolicy& resilience,
                                    const DistConfig& config) {
  validate_resilience_policy(resilience);
  pivot = resolve_pivot_policy(pivot, sym.a);
  DistFactorResult result(sym);
  std::span<real_t> d;
  if (kind == FactorKind::kLdlt) d = result.factor.allocate_diag();
  std::atomic<count_t> perturbations{0};
  std::atomic<count_t> ea_bytes{0};
  std::atomic<count_t> ea_entries{0};
  result.run =
      mpsim::run_spmd(map.n_ranks, model, faults, [&](mpsim::Comm& comm) {
        index_t start_supernode = 0;
        count_t base_perturbations = 0;
        if (comm.is_spare()) {
          // Stand by until our designated crash fires (or the run ends).
          // Adoption rebinds this Comm to the dead rank and restores the
          // communication-protocol snapshot; the checkpoint header tells
          // us where to resume. A crashed incarnation never reaches the
          // perturbation accumulation below, so this replacement reports
          // the rank's full count (checkpoint base + replayed fronts).
          const mpsim::Takeover takeover = comm.await_failure();
          if (takeover.rank < 0) return;  // clean run; spare unused
          const CheckpointImage image = decode_checkpoint(takeover.checkpoint);
          start_supernode = image.next_supernode;
          base_perturbations = image.perturbations;
        }
        RankProgram program(sym, map, result.factor, comm, kind, d, pivot,
                            resilience, config, start_supernode,
                            base_perturbations);
        program.run();
        perturbations.fetch_add(program.perturbations(),
                                std::memory_order_relaxed);
        ea_bytes.fetch_add(program.extend_add_bytes(),
                           std::memory_order_relaxed);
        ea_entries.fetch_add(program.extend_add_entries(),
                             std::memory_order_relaxed);
      });
  result.status =
      Status::success(perturbations.load(std::memory_order_relaxed));
  result.extend_add_bytes = ea_bytes.load(std::memory_order_relaxed);
  result.extend_add_entries = ea_entries.load(std::memory_order_relaxed);
  return result;
}

DistFactorResult distributed_factor_checked(const SymbolicFactor& sym,
                                            const FrontMap& map,
                                            const mpsim::MachineModel& model,
                                            FactorKind kind,
                                            PivotPolicy pivot,
                                            const mpsim::FaultPlan& faults,
                                            const ResiliencePolicy& resilience,
                                            const DistConfig& config) {
  try {
    return distributed_factor(sym, map, model, kind, pivot, faults,
                              resilience, config);
  } catch (const StatusError& e) {
    DistFactorResult result(sym);
    result.status = e.status();
    return result;
  } catch (const Error& e) {
    DistFactorResult result(sym);
    result.status = Status::failure(StatusCode::kInternal, e.what());
    return result;
  }
}

}  // namespace parfact
