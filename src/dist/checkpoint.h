// Buddy checkpointing for the distributed factorization (DESIGN.md §5a).
//
// Each rank periodically ships a checkpoint blob to a partner ("buddy")
// rank's memory through Comm::checkpoint_save: a small header (the next
// supernode to execute and the rank's pivot-perturbation count so far) plus
// the panel values and outbound contribution entries produced since the
// previous checkpoint. A spare adopting a crashed rank decodes the header
// and re-executes only the fronts from `next_supernode` on — at most one
// checkpoint interval of lost work — while the mpsim protocol snapshot taken
// at the same instant makes the replayed communication idempotent.
//
// The payload bytes model the state-transfer volume: in this simulation the
// shared CholeskyFactor survives a rank crash (host memory is not actually
// lost), so restore needs only the header, but the blob still pays the full
// wire and (optionally) scratch-spill cost a real machine would.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mpsim/machine.h"
#include "support/status.h"
#include "support/types.h"

namespace parfact {

/// Crash-recovery configuration for distributed_factor / Solver.
struct ResiliencePolicy {
  /// Enable buddy checkpointing. Off by default: fault-free runs pay zero
  /// overhead, and a crash without checkpoints is still recovered by full
  /// replay (a spare re-executes the dead rank's life from supernode 0).
  bool buddy_checkpoint = false;
  /// Completed participating fronts between checkpoints. Smaller = less
  /// lost work per crash, more checkpoint traffic (bench_r2_recovery sweeps
  /// this trade-off).
  index_t checkpoint_interval = 8;
  /// Round-trip every checkpoint blob through a checksummed scratch file
  /// (the OOC writer's FNV-1a discipline): models spilling buddy state to
  /// node-local storage and catches torn writes as kDataCorruption.
  bool spill_to_scratch = false;
  /// Directory for scratch spills (empty = the system temp directory).
  std::string scratch_dir;
};

/// Header contents recovered from a checkpoint blob.
struct CheckpointImage {
  index_t next_supernode = 0;  ///< first front the replacement must execute
  count_t perturbations = 0;   ///< dead rank's pivot boosts before that front
};

/// Serializes a checkpoint blob. `payload` is the incremental panel +
/// contribution bytes since the previous checkpoint (content is opaque;
/// only its volume matters for the cost model).
[[nodiscard]] std::vector<std::byte> encode_checkpoint(
    const CheckpointImage& image, const std::vector<std::byte>& payload);

/// Decodes a blob produced by encode_checkpoint. An empty blob decodes to
/// the default image (replay from supernode 0). A malformed or truncated
/// blob raises StatusError(kDataCorruption).
[[nodiscard]] CheckpointImage decode_checkpoint(
    const std::vector<std::byte>& blob);

/// Per-rank checkpoint driver owned by the factorization rank program.
/// Accumulates the rank's incremental state and ships a blob to the buddy
/// every `checkpoint_interval` completed participating fronts.
class BuddyCheckpointer {
 public:
  /// An inactive checkpointer (policy.buddy_checkpoint == false) is a
  /// no-op sink; the rank program tees into it unconditionally.
  BuddyCheckpointer(mpsim::Comm& comm, const ResiliencePolicy& policy);

  [[nodiscard]] bool enabled() const { return policy_.buddy_checkpoint; }

  /// Tee-ins: factor-panel bytes stored and contribution-block bytes sent
  /// by the owning rank since the last checkpoint.
  void note_panel(const void* data, std::size_t bytes);
  void note_contribution(const void* data, std::size_t bytes);

  /// Called after each completed participating front; ships a checkpoint
  /// when the interval is up. `next_supernode` is the front the rank would
  /// resume at, `perturbations` its pivot-boost count so far.
  void front_complete(index_t next_supernode, count_t perturbations);

 private:
  void append(const void* data, std::size_t bytes);

  mpsim::Comm& comm_;
  ResiliencePolicy policy_;
  int buddy_ = 0;
  index_t fronts_since_save_ = 0;
  std::vector<std::byte> pending_;
};

/// Validates a ResiliencePolicy (checkpoint_interval >= 1), raising
/// StatusError(kInvalidInput) otherwise.
void validate_resilience_policy(const ResiliencePolicy& policy);

}  // namespace parfact
