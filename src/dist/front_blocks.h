// Block partitioning of a dense front for block-cyclic distribution.
//
// The front of order f = p + b (p panel columns to eliminate, b below rows)
// is tiled with edge `nb`, with a forced tile boundary at p so that the
// eliminated panel region is exactly the first `kp` block rows/columns.
// Symmetric tiling (identical row and column boundaries) keeps the diagonal
// blocks square, which POTRF and SYRK need.
#pragma once

#include "support/error.h"
#include "support/types.h"

namespace parfact {

struct FrontBlocking {
  index_t p = 0;   ///< panel (eliminated) columns
  index_t b = 0;   ///< below rows (update region edge)
  index_t nb = 1;  ///< nominal tile edge
  index_t kp = 0;  ///< number of panel block rows/cols
  index_t nB = 0;  ///< total block rows/cols

  static FrontBlocking make(index_t p, index_t b, index_t nb) {
    PARFACT_CHECK(p >= 0 && b >= 0 && nb >= 1);
    FrontBlocking fb;
    fb.p = p;
    fb.b = b;
    fb.nb = nb;
    fb.kp = (p + nb - 1) / nb;
    fb.nB = fb.kp + (b + nb - 1) / nb;
    return fb;
  }

  /// First front row/col covered by block i.
  [[nodiscard]] index_t start(index_t i) const {
    PARFACT_DCHECK(i >= 0 && i <= nB);
    if (i <= kp) return std::min(i * nb, p);
    return p + (i - kp) * nb;
  }
  /// Edge length of block i.
  [[nodiscard]] index_t size(index_t i) const {
    PARFACT_DCHECK(i >= 0 && i < nB);
    if (i < kp) return std::min(p - i * nb, nb);
    return std::min(p + b - start(i), nb);
  }
  /// Block index containing front row/col `r`.
  [[nodiscard]] index_t block_of(index_t r) const {
    PARFACT_DCHECK(r >= 0 && r < p + b);
    if (r < p) return r / nb;
    return kp + (r - p) / nb;
  }
};

}  // namespace parfact
