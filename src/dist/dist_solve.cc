#include "dist/dist_solve.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "dense/kernels.h"
#include "dist/front_blocks.h"
#include "support/error.h"

namespace parfact {
namespace {

constexpr int kTagBelowPartial = 1;  // aggregated below-row reductions (fwd)
constexpr int kTagContrib = 3;     // child below-row contributions (forward)
constexpr int kTagFwdPartial = 4;  // grid-row partial reductions (forward)
constexpr int kTagFwdX = 5;        // solved panel segment broadcast (forward)
constexpr int kTagBwdPartial = 6;
constexpr int kTagBwdX = 7;
constexpr int kTagStride = 8;      // must match dist_factor.cc

struct SolveTriple {
  index_t row;  // parent-front-local row
  index_t rhs;  // right-hand-side column (global column index)
  real_t value;
};

/// True iff grid row `ri` owns any block (ib, kb) with ib > kb.
bool grid_row_owns_below(const FrontBlocking& fb, index_t kb, int ri,
                         int pr) {
  for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
    if (static_cast<int>(ib) % pr == ri) return true;
  }
  return false;
}

class SolveProgram {
 public:
  SolveProgram(const SymbolicFactor& sym, const FrontMap& map,
               const CholeskyFactor& factor, const std::vector<real_t>& b,
               index_t nrhs, const DistSolveConfig& config,
               std::vector<real_t>& x_out, mpsim::Comm& comm)
      : sym_(sym),
        map_(map),
        factor_(factor),
        b_(b),
        nrhs_(nrhs),
        wb_(std::min(config.rhs_block, nrhs)),
        nb_((nrhs + config.rhs_block - 1) / config.rhs_block),
        pipelined_(config.schedule == DistSolveConfig::Schedule::kPipelined),
        x_out_(x_out),
        comm_(comm) {
    children_.resize(static_cast<std::size_t>(sym.n_supernodes));
    for (index_t s = 0; s < sym.n_supernodes; ++s) {
      if (sym.sn_parent[s] != kNone) {
        children_[sym.sn_parent[s]].push_back(s);
      }
    }
    x_known_.assign(static_cast<std::size_t>(sym.n) * nrhs, 0.0);
  }

  void run() {
    for (index_t s = 0; s < sym_.n_supernodes; ++s) {
      if (map_.participates(s, comm_.rank())) forward_front(s);
    }
    for (index_t s = sym_.n_supernodes - 1; s >= 0; --s) {
      if (map_.participates(s, comm_.rank())) backward_front(s);
    }
  }

 private:
  // --- RHS block partition (shared by both schedules). ---
  [[nodiscard]] index_t col0(index_t blk) const { return blk * wb_; }
  [[nodiscard]] index_t bw(index_t blk) const {
    return std::min(wb_, nrhs_ - col0(blk));
  }
  /// Channel tag of (front, RHS block, message kind). nb_ is global, so
  /// tags are unique across fronts.
  [[nodiscard]] int tag(index_t s, index_t blk, int base) const {
    return kTagStride * (static_cast<int>(s) * static_cast<int>(nb_) +
                         static_cast<int>(blk)) +
           base;
  }
  /// Columns [col0(blk), col0+bw) of a rows x nrhs_ column-major buffer.
  [[nodiscard]] std::vector<real_t> slice(const std::vector<real_t>& v,
                                          index_t rows, index_t blk) const {
    std::vector<real_t> out(static_cast<std::size_t>(rows) * bw(blk));
    std::copy_n(v.data() + static_cast<std::size_t>(col0(blk)) * rows,
                out.size(), out.data());
    return out;
  }
  void add_into_block(std::vector<real_t>& dst, index_t rows, index_t blk,
                      const real_t* src) const {
    real_t* d = dst.data() + static_cast<std::size_t>(col0(blk)) * rows;
    const std::size_t count = static_cast<std::size_t>(rows) * bw(blk);
    for (std::size_t i = 0; i < count; ++i) d[i] += src[i];
  }
  /// View of columns [col0(blk), +bw) of a rows x nrhs_ buffer.
  [[nodiscard]] MatrixView block_view(std::vector<real_t>& v, index_t rows,
                                      index_t blk) const {
    return {v.data() + static_cast<std::size_t>(col0(blk)) * rows, rows,
            bw(blk), rows};
  }

  /// Factor block (ib, jb), jb < kp, of front s.
  [[nodiscard]] ConstMatrixView l_block(index_t s, const FrontBlocking& fb,
                                        index_t ib, index_t jb) const {
    return ConstMatrixView{factor_.panel(s)}.block(
        fb.start(ib), fb.start(jb), fb.size(ib), fb.size(jb));
  }

  /// Ranks of front `c` that carry extend-add contributions to its parent:
  /// the grid-column-0 collectors owning at least one update block row.
  /// Deterministic from the map alone, so senders and receivers agree on
  /// exactly which messages exist — no empty-message traffic.
  [[nodiscard]] std::vector<int> contrib_ranks(index_t c) const {
    const FrontBlocking cfb = FrontBlocking::make(
        sym_.sn_cols(c), sym_.sn_below(c), map_.block_size);
    const int cpr = map_.grid_rows[c];
    std::vector<int> out;
    for (int ri = 0; ri < cpr; ++ri) {
      for (index_t ib = cfb.kp; ib < cfb.nB; ++ib) {
        if (static_cast<int>(ib) % cpr == ri) {
          out.push_back(map_.grid_rank(c, ri, 0));  // ascending: gc == 0
          break;
        }
      }
    }
    return out;
  }

  void forward_front(index_t s) {
    const FrontBlocking fb = FrontBlocking::make(
        sym_.sn_cols(s), sym_.sn_below(s), map_.block_size);
    const int pr = map_.grid_rows[s];
    const int pc = map_.grid_cols[s];
    // Spectators (gr == gc == -1) hold no partials; all guards below skip.
    const auto [gr, gc] = map_.grid_coords(s, comm_.rank());
    const index_t first = sym_.sn_start[s];
    const auto rows = sym_.below_rows(s);

    // Per-block-row accumulators, full RHS width: additions from children
    // (diag owners and collectors) plus -L(ib,kb)·x_kb partials.
    std::map<index_t, std::vector<real_t>> part;
    auto part_of = [&](index_t ib) -> std::vector<real_t>& {
      auto& v = part[ib];
      if (v.empty()) {
        v.assign(static_cast<std::size_t>(fb.size(ib)) * nrhs_, 0.0);
      }
      return v;
    };

    // 1. Child contributions: one message per (child, collector rank) — and,
    // pipelined, per RHS block, merged lazily so block 0 can start while
    // the children are still reducing the later blocks.
    std::vector<int> contrib_src;
    for (index_t c : children_[s]) {
      for (int src : contrib_ranks(c)) contrib_src.push_back(src);
    }
    auto scatter = [&](const std::vector<SolveTriple>& triples) {
      for (const SolveTriple& t : triples) {
        const index_t ib = fb.block_of(t.row);
        part_of(ib)[static_cast<std::size_t>(t.rhs) * fb.size(ib) +
                    (t.row - fb.start(ib))] += t.value;
      }
      comm_.advance_bytes(static_cast<count_t>(triples.size()) *
                          static_cast<count_t>(sizeof(SolveTriple)));
    };
    std::vector<std::vector<mpsim::Request>> creq;
    std::vector<char> merged;
    if (pipelined_) {
      creq.resize(static_cast<std::size_t>(nb_));
      merged.assign(static_cast<std::size_t>(nb_), 0);
      for (index_t blk = 0; blk < nb_; ++blk) {
        for (int src : contrib_src) {
          creq[blk].push_back(comm_.irecv(src, tag(s, blk, kTagContrib)));
        }
      }
    } else {
      for (int src : contrib_src) {
        scatter(comm_.recv_vec<SolveTriple>(src, tag(s, 0, kTagContrib)));
      }
    }
    auto need_block = [&](index_t blk) {
      if (!pipelined_ || merged[blk]) return;
      merged[blk] = 1;
      for (mpsim::Request& r : creq[blk]) {
        scatter(comm_.wait_vec<SolveTriple>(r));
      }
    };

    // 2. Panel sweep: kb outer, RHS block inner. Both schedules run the
    // same per-block arithmetic; they differ in message granularity.
    for (index_t kb = 0; kb < fb.kp; ++kb) {
      const int kbr = static_cast<int>(kb) % pr;
      const int kbc = static_cast<int>(kb) % pc;
      const index_t bk = fb.size(kb);
      const int diag_rank = map_.grid_rank(s, kbr, kbc);
      const int max_sender_col =
          std::min<int>(pc, static_cast<int>(std::min(kb, fb.kp)));
      const bool is_diag = comm_.rank() == diag_rank;
      const bool is_sender = gr == kbr && gc != kbc && gc < max_sender_col;
      const bool is_col_owner =
          gc == kbc && grid_row_owns_below(fb, kb, gr, pr);

      // Adds the replicated right-hand side rows of block kb, RHS block blk,
      // into a full-width (bk x nrhs_) buffer.
      auto add_b_rows = [&](std::vector<real_t>& xkb, index_t blk) {
        const index_t w = bw(blk);
        for (index_t cc = 0; cc < w; ++cc) {
          const std::size_t r = static_cast<std::size_t>(col0(blk) + cc);
          for (index_t i = 0; i < bk; ++i) {
            xkb[r * bk + i] += b_[r * sym_.n + first + fb.start(kb) + i];
          }
        }
      };

      if (!pipelined_) {
        // --- Blocking: full-width messages, per-block compute. ---
        if (is_sender) {
          comm_.send_vec(diag_rank, tag(s, 0, kTagFwdPartial), part_of(kb));
        }
        std::vector<real_t> xfull;
        if (is_diag) {
          xfull = part_of(kb);
          for (index_t blk = 0; blk < nb_; ++blk) add_b_rows(xfull, blk);
          for (int c = 0; c < max_sender_col; ++c) {
            if (c == kbc) continue;
            const auto partial = comm_.recv_vec<real_t>(
                map_.grid_rank(s, kbr, c), tag(s, 0, kTagFwdPartial));
            for (std::size_t i = 0; i < xfull.size(); ++i) {
              xfull[i] += partial[i];
            }
          }
          for (index_t blk = 0; blk < nb_; ++blk) {
            trsm_left_lower(l_block(s, fb, kb, kb),
                            block_view(xfull, bk, blk));
            comm_.advance_compute(static_cast<count_t>(bk) * bk * bw(blk));
          }
          y_fwd_[{s, kb}] = xfull;
          for (int ri = 0; ri < pr; ++ri) {
            if (ri == kbr || !grid_row_owns_below(fb, kb, ri, pr)) continue;
            comm_.send_vec(map_.grid_rank(s, ri, kbc), tag(s, 0, kTagFwdX),
                           xfull);
          }
        } else if (is_col_owner) {
          xfull = comm_.recv_vec<real_t>(diag_rank, tag(s, 0, kTagFwdX));
        }
        if (gc == kbc && !xfull.empty()) {
          for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
            if (static_cast<int>(ib) % pr != gr) continue;
            auto& acc = part_of(ib);
            for (index_t blk = 0; blk < nb_; ++blk) {
              gemm_nn_update(
                  block_view(acc, fb.size(ib), blk), l_block(s, fb, ib, kb),
                  ConstMatrixView{
                      xfull.data() +
                          static_cast<std::size_t>(col0(blk)) * bk,
                      bk, bw(blk), bk});
              comm_.advance_compute(2 * static_cast<count_t>(fb.size(ib)) *
                                    bk * bw(blk));
            }
          }
        }
        continue;
      }

      // --- Pipelined: preposted per-block receives, per-block sends. ---
      std::vector<std::vector<mpsim::Request>> preq;  // [blk][sender col]
      std::vector<mpsim::Request> xreq;               // [blk]
      if (is_diag) {
        preq.resize(static_cast<std::size_t>(nb_));
        for (index_t blk = 0; blk < nb_; ++blk) {
          for (int c = 0; c < max_sender_col; ++c) {
            if (c == kbc) continue;
            preq[blk].push_back(comm_.irecv(map_.grid_rank(s, kbr, c),
                                            tag(s, blk, kTagFwdPartial)));
          }
        }
      } else if (is_col_owner) {
        for (index_t blk = 0; blk < nb_; ++blk) {
          xreq.push_back(comm_.irecv(diag_rank, tag(s, blk, kTagFwdX)));
        }
      }
      for (index_t blk = 0; blk < nb_; ++blk) {
        need_block(blk);
        const index_t w = bw(blk);
        if (is_sender) {
          comm_.send_vec(diag_rank, tag(s, blk, kTagFwdPartial),
                         slice(part_of(kb), bk, blk));
        }
        std::vector<real_t> xblk;
        if (is_diag) {
          xblk = slice(part_of(kb), bk, blk);
          {
            const index_t c0 = col0(blk);
            for (index_t cc = 0; cc < w; ++cc) {
              for (index_t i = 0; i < bk; ++i) {
                xblk[static_cast<std::size_t>(cc) * bk + i] +=
                    b_[static_cast<std::size_t>(c0 + cc) * sym_.n + first +
                       fb.start(kb) + i];
              }
            }
          }
          for (mpsim::Request& r : preq[blk]) {
            const auto partial = comm_.wait_vec<real_t>(r);
            for (std::size_t i = 0; i < xblk.size(); ++i) {
              xblk[i] += partial[i];
            }
          }
          trsm_left_lower(l_block(s, fb, kb, kb),
                          MatrixView{xblk.data(), bk, w, bk});
          comm_.advance_compute(static_cast<count_t>(bk) * bk * w);
          auto& y = y_fwd_[{s, kb}];
          if (y.empty()) {
            y.assign(static_cast<std::size_t>(bk) * nrhs_, 0.0);
          }
          std::copy_n(xblk.data(), xblk.size(),
                      y.data() + static_cast<std::size_t>(col0(blk)) * bk);
          for (int ri = 0; ri < pr; ++ri) {
            if (ri == kbr || !grid_row_owns_below(fb, kb, ri, pr)) continue;
            comm_.send_vec(map_.grid_rank(s, ri, kbc), tag(s, blk, kTagFwdX),
                           xblk);
          }
        } else if (is_col_owner) {
          xblk = comm_.wait_vec<real_t>(xreq[blk]);
        }
        if (gc == kbc && !xblk.empty()) {
          for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
            if (static_cast<int>(ib) % pr != gr) continue;
            gemm_nn_update(block_view(part_of(ib), fb.size(ib), blk),
                           l_block(s, fb, ib, kb),
                           ConstMatrixView{xblk.data(), bk, w, bk});
            comm_.advance_compute(2 * static_cast<count_t>(fb.size(ib)) * bk *
                                  w);
          }
        }
      }
    }

    // 3. Reduce below-row partials to the per-grid-row collectors (column
    // 0) and route them to the parent as (parent-local row, rhs, value)
    // triples. Pipelined: per RHS block, with every owned block row
    // aggregated into one message per destination, and the parent-bound
    // triples for block k leaving before block k+1 is reduced.
    const index_t parent = sym_.sn_parent[s];
    int pbegin = 0, pcount = 0;
    FrontBlocking pfb = fb;  // placeholder; rebuilt when parent exists
    index_t pfirst = 0, pblock_end = 0;
    std::span<const index_t> prows;
    if (parent != kNone) {
      pbegin = map_.rank_begin[parent];
      pcount = map_.rank_count[parent];
      pfb = FrontBlocking::make(sym_.sn_cols(parent), sym_.sn_below(parent),
                                map_.block_size);
      pfirst = sym_.sn_start[parent];
      pblock_end = sym_.sn_start[parent + 1];
      prows = sym_.below_rows(parent);
    }
    const int max_collector_col = std::min<int>(pc, static_cast<int>(fb.kp));
    // Parent rank consuming front-local row `lr` of the parent.
    auto parent_dest = [&](index_t grow) -> std::pair<index_t, int> {
      index_t lr;
      if (grow < pblock_end) {
        lr = grow - pfirst;
      } else {
        const auto it = std::lower_bound(prows.begin(), prows.end(), grow);
        PARFACT_DCHECK(it != prows.end() && *it == grow);
        lr = pfb.p + static_cast<index_t>(it - prows.begin());
      }
      const index_t pib = pfb.block_of(lr);
      const int dest =
          lr < pfb.p
              ? map_.grid_rank(
                    parent,
                    static_cast<int>(pib) % map_.grid_rows[parent],
                    static_cast<int>(pib) % map_.grid_cols[parent])
              : map_.grid_rank(
                    parent,
                    static_cast<int>(pib) % map_.grid_rows[parent], 0);
      return {lr, dest};
    };
    // Block rows of the update region this grid row owns.
    std::vector<index_t> mine;
    if (gr >= 0) {
      for (index_t ib = fb.kp; ib < fb.nB; ++ib) {
        if (static_cast<int>(ib) % pr == gr) mine.push_back(ib);
      }
    }

    if (!pipelined_) {
      // Blocking: per-block-row full-width messages, one outbox send.
      std::vector<std::vector<SolveTriple>> outbox(
          static_cast<std::size_t>(pcount));
      for (index_t ib : mine) {
        const int collector = map_.grid_rank(s, gr, 0);
        if (gc != 0 && gc < max_collector_col) {
          comm_.send_vec(collector, tag(s, 0, kTagBelowPartial), part_of(ib));
        }
        if (comm_.rank() != collector) continue;
        auto& total = part_of(ib);
        for (int c = 1; c < max_collector_col; ++c) {
          const auto partial = comm_.recv_vec<real_t>(
              map_.grid_rank(s, gr, c), tag(s, 0, kTagBelowPartial));
          for (std::size_t i = 0; i < total.size(); ++i) {
            total[i] += partial[i];
          }
        }
        if (parent == kNone) continue;
        for (index_t i = 0; i < fb.size(ib); ++i) {
          const auto [lr, dest] =
              parent_dest(rows[fb.start(ib) - fb.p + i]);
          for (index_t r = 0; r < nrhs_; ++r) {
            const real_t v =
                total[static_cast<std::size_t>(r) * fb.size(ib) + i];
            if (v != 0.0) {
              outbox[dest - pbegin].push_back(SolveTriple{lr, r, v});
            }
          }
        }
      }
      if (parent != kNone && gc == 0 && !mine.empty()) {
        for (int d = 0; d < pcount; ++d) {
          comm_.send_vec(pbegin + d, tag(parent, 0, kTagContrib), outbox[d]);
        }
      }
      return;
    }

    // Pipelined: per-destination aggregation. Senders concatenate all of
    // their block rows (ascending) into one message per RHS block; the
    // collector splits in the same order, so the per-element addition
    // sequence (ascending sender column) matches the blocking path.
    const bool is_below_sender =
        gr >= 0 && gc != 0 && gc < max_collector_col && !mine.empty();
    const bool is_collector = gr >= 0 && gc == 0 && !mine.empty();
    std::vector<std::vector<mpsim::Request>> breq;  // [blk][sender col - 1]
    if (is_collector) {
      breq.resize(static_cast<std::size_t>(nb_));
      for (index_t blk = 0; blk < nb_; ++blk) {
        for (int c = 1; c < max_collector_col; ++c) {
          breq[blk].push_back(comm_.irecv(map_.grid_rank(s, gr, c),
                                          tag(s, blk, kTagBelowPartial)));
        }
      }
    }
    for (index_t blk = 0; blk < nb_; ++blk) {
      need_block(blk);
      if (is_below_sender) {
        std::vector<real_t> agg;
        for (index_t ib : mine) {
          const auto piece = slice(part_of(ib), fb.size(ib), blk);
          agg.insert(agg.end(), piece.begin(), piece.end());
        }
        comm_.send_vec(map_.grid_rank(s, gr, 0),
                       tag(s, blk, kTagBelowPartial), agg);
      }
      if (!is_collector) continue;
      for (mpsim::Request& r : breq[blk]) {
        const auto agg = comm_.wait_vec<real_t>(r);
        std::size_t off = 0;
        for (index_t ib : mine) {
          add_into_block(part_of(ib), fb.size(ib), blk, agg.data() + off);
          off += static_cast<std::size_t>(fb.size(ib)) * bw(blk);
        }
      }
      if (parent == kNone) continue;
      std::vector<std::vector<SolveTriple>> outbox(
          static_cast<std::size_t>(pcount));
      for (index_t ib : mine) {
        const auto& total = part_of(ib);
        for (index_t i = 0; i < fb.size(ib); ++i) {
          const auto [lr, dest] = parent_dest(rows[fb.start(ib) - fb.p + i]);
          for (index_t cc = 0; cc < bw(blk); ++cc) {
            const index_t r = col0(blk) + cc;
            const real_t v =
                total[static_cast<std::size_t>(r) * fb.size(ib) + i];
            if (v != 0.0) {
              outbox[dest - pbegin].push_back(SolveTriple{lr, r, v});
            }
          }
        }
      }
      for (int d = 0; d < pcount; ++d) {
        comm_.send_vec(pbegin + d, tag(parent, blk, kTagContrib), outbox[d]);
      }
    }
  }

  void backward_front(index_t s) {
    const FrontBlocking fb = FrontBlocking::make(
        sym_.sn_cols(s), sym_.sn_below(s), map_.block_size);
    const int pr = map_.grid_rows[s];
    const int pc = map_.grid_cols[s];
    const auto [gr, gc] = map_.grid_coords(s, comm_.rank());
    const index_t first = sym_.sn_start[s];
    const auto rows = sym_.below_rows(s);
    const int np = map_.rank_count[s];

    // x at front row `fr` (panel rows from this front's sweep so far, below
    // rows from ancestors — all already in x_known_ by the invariant).
    auto x_at = [&](index_t fr, index_t r) -> real_t {
      const index_t grow = fr < fb.p ? first + fr : rows[fr - fb.p];
      return x_known_[static_cast<std::size_t>(r) * sym_.n + grow];
    };

    for (index_t kb = fb.kp - 1; kb >= 0; --kb) {
      const int kbr = static_cast<int>(kb) % pr;
      const int kbc = static_cast<int>(kb) % pc;
      const index_t bk = fb.size(kb);
      const int diag_rank = map_.grid_rank(s, kbr, kbc);
      const bool is_diag = comm_.rank() == diag_rank;
      const bool is_owner = gc == kbc && grid_row_owns_below(fb, kb, gr, pr);

      // Rows (other than kbr) holding below blocks: their column-kbc ranks
      // send partials to the diagonal owner.
      std::vector<int> partial_rows;
      for (int ri = 0; ri < pr; ++ri) {
        if (ri != kbr && grid_row_owns_below(fb, kb, ri, pr)) {
          partial_rows.push_back(ri);
        }
      }

      std::vector<std::vector<mpsim::Request>> rreq;  // [blk][partial row]
      std::vector<mpsim::Request> xreq;               // [blk]
      if (pipelined_) {
        if (is_diag) {
          rreq.resize(static_cast<std::size_t>(nb_));
          for (index_t blk = 0; blk < nb_; ++blk) {
            for (int ri : partial_rows) {
              rreq[blk].push_back(comm_.irecv(map_.grid_rank(s, ri, kbc),
                                              tag(s, blk, kTagBwdPartial)));
            }
          }
        } else {
          for (index_t blk = 0; blk < nb_; ++blk) {
            xreq.push_back(comm_.irecv(diag_rank, tag(s, blk, kTagBwdX)));
          }
        }
      }

      // In-panel partials: -Σ L(ib,kb)ᵀ x(ib), per RHS block, block rows
      // ascending. Pipelined ships each block the moment it is complete.
      std::vector<real_t> partial;  // bk x nrhs_, own contribution
      if (is_owner) {
        partial.assign(static_cast<std::size_t>(bk) * nrhs_, 0.0);
        std::vector<real_t> xi;
        for (index_t blk = 0; blk < nb_; ++blk) {
          const index_t w = bw(blk);
          for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
            if (static_cast<int>(ib) % pr != gr) continue;
            const index_t bi = fb.size(ib);
            xi.resize(static_cast<std::size_t>(bi) * w);
            for (index_t cc = 0; cc < w; ++cc) {
              for (index_t i = 0; i < bi; ++i) {
                xi[static_cast<std::size_t>(cc) * bi + i] =
                    x_at(fb.start(ib) + i, col0(blk) + cc);
              }
            }
            gemm_tn_update(block_view(partial, bk, blk),
                           l_block(s, fb, ib, kb),
                           ConstMatrixView{xi.data(), bi, w, bi});
            comm_.advance_compute(2 * static_cast<count_t>(bi) * bk * w);
          }
          if (pipelined_ && !is_diag) {
            comm_.send_vec(diag_rank, tag(s, blk, kTagBwdPartial),
                           slice(partial, bk, blk));
          }
        }
        if (!pipelined_ && !is_diag) {
          comm_.send_vec(diag_rank, tag(s, 0, kTagBwdPartial), partial);
        }
      }

      if (is_diag) {
        const auto it = y_fwd_.find({s, kb});
        PARFACT_DCHECK(it != y_fwd_.end());
        std::vector<real_t> xkb = std::move(it->second);
        y_fwd_.erase(it);
        // Blocking: all remote partials arrive as full-width messages
        // before any block computes (ascending sender row, like the
        // per-block waits of the pipelined path).
        std::vector<std::vector<real_t>> rfull;
        if (!pipelined_) {
          for (int ri : partial_rows) {
            rfull.push_back(comm_.recv_vec<real_t>(
                map_.grid_rank(s, ri, kbc), tag(s, 0, kTagBwdPartial)));
          }
        }
        for (index_t blk = 0; blk < nb_; ++blk) {
          const index_t w = bw(blk);
          real_t* xb = xkb.data() + static_cast<std::size_t>(col0(blk)) * bk;
          if (factor_.is_ldlt()) {
            // x = L⁻ᵀ D⁻¹ (L⁻¹ b): apply the diagonal solve as the
            // backward sweep picks each forward segment up.
            const auto dd = factor_.diag();
            for (index_t cc = 0; cc < w; ++cc) {
              for (index_t i = 0; i < bk; ++i) {
                xb[static_cast<std::size_t>(cc) * bk + i] /=
                    dd[first + fb.start(kb) + i];
              }
            }
          }
          if (is_owner) {
            add_into_block(xkb, bk, blk,
                           partial.data() +
                               static_cast<std::size_t>(col0(blk)) * bk);
          }
          for (std::size_t j = 0; j < partial_rows.size(); ++j) {
            const std::vector<real_t> rp =
                pipelined_ ? comm_.wait_vec<real_t>(rreq[blk][j])
                           : slice(rfull[j], bk, blk);
            add_into_block(xkb, bk, blk, rp.data());
          }
          trsm_left_lower_trans(l_block(s, fb, kb, kb),
                                block_view(xkb, bk, blk));
          comm_.advance_compute(static_cast<count_t>(bk) * bk * w);
          if (pipelined_) {
            // Broadcast this block to every other participant right away:
            // they start their own partials for kb-1 while the remaining
            // blocks of kb are still being solved.
            const std::vector<real_t> xblk = slice(xkb, bk, blk);
            for (int other = map_.rank_begin[s];
                 other < map_.rank_begin[s] + np; ++other) {
              if (other == comm_.rank()) continue;
              comm_.send_vec(other, tag(s, blk, kTagBwdX), xblk);
            }
          }
        }
        if (!pipelined_) {
          for (int other = map_.rank_begin[s];
               other < map_.rank_begin[s] + np; ++other) {
            if (other == comm_.rank()) continue;
            comm_.send_vec(other, tag(s, 0, kTagBwdX), xkb);
          }
        }
        // Final answer rows: the diagonal owner writes them (disjointly).
        for (index_t r = 0; r < nrhs_; ++r) {
          for (index_t i = 0; i < bk; ++i) {
            x_out_[static_cast<std::size_t>(r) * sym_.n + first +
                   fb.start(kb) + i] =
                xkb[static_cast<std::size_t>(r) * bk + i];
            x_known_[static_cast<std::size_t>(r) * sym_.n + first +
                     fb.start(kb) + i] =
                xkb[static_cast<std::size_t>(r) * bk + i];
          }
        }
      } else {
        // Everyone records the solved segment for later fronts/children.
        if (pipelined_) {
          for (index_t blk = 0; blk < nb_; ++blk) {
            const auto xblk = comm_.wait_vec<real_t>(xreq[blk]);
            const index_t w = bw(blk);
            for (index_t cc = 0; cc < w; ++cc) {
              for (index_t i = 0; i < bk; ++i) {
                x_known_[static_cast<std::size_t>(col0(blk) + cc) * sym_.n +
                         first + fb.start(kb) + i] =
                    xblk[static_cast<std::size_t>(cc) * bk + i];
              }
            }
          }
        } else {
          const auto xkb =
              comm_.recv_vec<real_t>(diag_rank, tag(s, 0, kTagBwdX));
          for (index_t r = 0; r < nrhs_; ++r) {
            for (index_t i = 0; i < bk; ++i) {
              x_known_[static_cast<std::size_t>(r) * sym_.n + first +
                       fb.start(kb) + i] =
                  xkb[static_cast<std::size_t>(r) * bk + i];
            }
          }
        }
      }
    }
  }

  const SymbolicFactor& sym_;
  const FrontMap& map_;
  const CholeskyFactor& factor_;
  const std::vector<real_t>& b_;
  const index_t nrhs_;
  const index_t wb_;       ///< RHS block width
  const index_t nb_;       ///< number of RHS blocks (global, for tags)
  const bool pipelined_;
  std::vector<real_t>& x_out_;
  mpsim::Comm& comm_;
  std::vector<std::vector<index_t>> children_;
  std::vector<real_t> x_known_;
  std::map<std::pair<index_t, index_t>, std::vector<real_t>> y_fwd_;
};

}  // namespace

DistSolveResult distributed_solve(const SymbolicFactor& sym,
                                  const FrontMap& map,
                                  const CholeskyFactor& factor,
                                  const std::vector<real_t>& b, index_t nrhs,
                                  const mpsim::MachineModel& model,
                                  const mpsim::FaultPlan& faults,
                                  const DistSolveConfig& config) {
  PARFACT_CHECK(static_cast<count_t>(b.size()) ==
                static_cast<count_t>(sym.n) * nrhs);
  PARFACT_CHECK(config.rhs_block >= 1);
  if (config.schedule == DistSolveConfig::Schedule::kTaskDag) {
    // The fan-both task-DAG schedule is a factorization-phase protocol
    // (per-panel extend-add streams between fronts); the triangular sweeps
    // have no analogous DAG yet. Rejecting beats silently running
    // kPipelined and misreporting what was measured.
    throw StatusError(Status::failure(
        StatusCode::kInvalidInput,
        "distributed_solve does not support "
        "DistSolveConfig::Schedule::kTaskDag; the fan-both schedule "
        "covers the factorization phase (use kBlocking or kPipelined)"));
  }
  if (!faults.crashes.empty() || faults.spare_ranks > 0) {
    // Crash recovery is a factorization-phase protocol (buddy checkpoints
    // are taken at front boundaries); the solve sweeps have no resume
    // points, so a crash plan here would be a silent hang waiting to occur.
    throw StatusError(Status::failure(
        StatusCode::kInvalidInput,
        "distributed_solve does not support crash injection or spare "
        "ranks; crash tolerance covers the factorization phase"));
  }
  DistSolveResult result;
  result.x.assign(b.size(), 0.0);
  result.run =
      mpsim::run_spmd(map.n_ranks, model, faults, [&](mpsim::Comm& comm) {
        SolveProgram program(sym, map, factor, b, nrhs, config, result.x,
                             comm);
        program.run();
      });
  result.status = Status::success();
  return result;
}

DistSolveResult distributed_solve_checked(const SymbolicFactor& sym,
                                          const FrontMap& map,
                                          const CholeskyFactor& factor,
                                          const std::vector<real_t>& b,
                                          index_t nrhs,
                                          const mpsim::MachineModel& model,
                                          const mpsim::FaultPlan& faults,
                                          const DistSolveConfig& config) {
  try {
    return distributed_solve(sym, map, factor, b, nrhs, model, faults,
                             config);
  } catch (const StatusError& e) {
    DistSolveResult result;
    result.status = e.status();
    return result;
  } catch (const Error& e) {
    DistSolveResult result;
    result.status = Status::failure(StatusCode::kInternal, e.what());
    return result;
  }
}

}  // namespace parfact
