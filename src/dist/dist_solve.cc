#include "dist/dist_solve.h"

#include <algorithm>
#include <map>
#include <vector>

#include "dense/kernels.h"
#include "dist/front_blocks.h"
#include "support/error.h"

namespace parfact {
namespace {

constexpr int kTagContrib = 3;     // child below-row contributions (forward)
constexpr int kTagFwdPartial = 4;  // grid-row partial reductions (forward)
constexpr int kTagFwdX = 5;        // solved panel segment broadcast (forward)
constexpr int kTagBwdPartial = 6;
constexpr int kTagBwdX = 7;
constexpr int kTagStride = 8;      // must match dist_factor.cc

struct SolveTriple {
  index_t row;  // parent-front-local row
  index_t rhs;  // right-hand-side column
  real_t value;
};

/// True iff grid row `ri` owns any block (ib, kb) with ib > kb.
bool grid_row_owns_below(const FrontBlocking& fb, index_t kb, int ri,
                         int pr) {
  for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
    if (static_cast<int>(ib) % pr == ri) return true;
  }
  return false;
}

class SolveProgram {
 public:
  SolveProgram(const SymbolicFactor& sym, const FrontMap& map,
               const CholeskyFactor& factor, const std::vector<real_t>& b,
               index_t nrhs, std::vector<real_t>& x_out, mpsim::Comm& comm)
      : sym_(sym),
        map_(map),
        factor_(factor),
        b_(b),
        nrhs_(nrhs),
        x_out_(x_out),
        comm_(comm) {
    children_.resize(static_cast<std::size_t>(sym.n_supernodes));
    for (index_t s = 0; s < sym.n_supernodes; ++s) {
      if (sym.sn_parent[s] != kNone) {
        children_[sym.sn_parent[s]].push_back(s);
      }
    }
    x_known_.assign(static_cast<std::size_t>(sym.n) * nrhs, 0.0);
  }

  void run() {
    for (index_t s = 0; s < sym_.n_supernodes; ++s) {
      if (map_.participates(s, comm_.rank())) forward_front(s);
    }
    for (index_t s = sym_.n_supernodes - 1; s >= 0; --s) {
      if (map_.participates(s, comm_.rank())) backward_front(s);
    }
  }

 private:
  /// Factor block (ib, jb), jb < kp, of front s.
  [[nodiscard]] ConstMatrixView l_block(index_t s, const FrontBlocking& fb,
                                        index_t ib, index_t jb) const {
    return ConstMatrixView{factor_.panel(s)}.block(
        fb.start(ib), fb.start(jb), fb.size(ib), fb.size(jb));
  }

  [[nodiscard]] MatrixView buf_view(std::vector<real_t>& v, index_t rows) {
    return {v.data(), rows, nrhs_, rows};
  }

  void forward_front(index_t s) {
    const FrontBlocking fb = FrontBlocking::make(
        sym_.sn_cols(s), sym_.sn_below(s), map_.block_size);
    const int pr = map_.grid_rows[s];
    const int pc = map_.grid_cols[s];
    // Spectators (gr == gc == -1) hold no partials; all guards below skip.
    const auto [gr, gc] = map_.grid_coords(s, comm_.rank());
    const index_t first = sym_.sn_start[s];
    const auto rows = sym_.below_rows(s);

    // Per-block-row accumulators: rhs additions from children (diag owners
    // and collectors) plus -L(ib,kb)·x_kb partials.
    std::map<index_t, std::vector<real_t>> part;
    auto part_of = [&](index_t ib) -> std::vector<real_t>& {
      auto& v = part[ib];
      if (v.empty()) v.assign(static_cast<std::size_t>(fb.size(ib)) * nrhs_, 0.0);
      return v;
    };

    // 1. Child contributions (one message from every rank of every child).
    for (index_t c : children_[s]) {
      for (int src = map_.rank_begin[c];
           src < map_.rank_begin[c] + map_.rank_count[c]; ++src) {
        const auto triples = comm_.recv_vec<SolveTriple>(
            src, kTagStride * static_cast<int>(s) + kTagContrib);
        for (const SolveTriple& t : triples) {
          const index_t ib = fb.block_of(t.row);
          part_of(ib)[static_cast<std::size_t>(t.rhs) * fb.size(ib) +
                      (t.row - fb.start(ib))] += t.value;
        }
        comm_.advance_bytes(static_cast<count_t>(triples.size()) *
                            static_cast<count_t>(sizeof(SolveTriple)));
      }
    }

    // 2. Panel sweep.
    for (index_t kb = 0; kb < fb.kp; ++kb) {
      const int kbr = static_cast<int>(kb) % pr;
      const int kbc = static_cast<int>(kb) % pc;
      const index_t bk = fb.size(kb);
      const int diag_rank = map_.grid_rank(s, kbr, kbc);
      const int max_sender_col =
          std::min<int>(pc, static_cast<int>(std::min(kb, fb.kp)));

      if (gr == kbr && gc != kbc && gc < max_sender_col) {
        comm_.send_vec(diag_rank,
                       kTagStride * static_cast<int>(s) + kTagFwdPartial,
                       part_of(kb));
      }
      std::vector<real_t> xkb;
      if (comm_.rank() == diag_rank) {
        xkb = part_of(kb);
        // Add the replicated right-hand side rows.
        for (index_t r = 0; r < nrhs_; ++r) {
          for (index_t i = 0; i < bk; ++i) {
            xkb[static_cast<std::size_t>(r) * bk + i] +=
                b_[static_cast<std::size_t>(r) * sym_.n + first +
                   fb.start(kb) + i];
          }
        }
        for (int c = 0; c < max_sender_col; ++c) {
          if (c == kbc) continue;
          const auto partial = comm_.recv_vec<real_t>(
              map_.grid_rank(s, kbr, c),
              kTagStride * static_cast<int>(s) + kTagFwdPartial);
          for (std::size_t i = 0; i < xkb.size(); ++i) xkb[i] += partial[i];
        }
        trsm_left_lower(l_block(s, fb, kb, kb), buf_view(xkb, bk));
        comm_.advance_compute(static_cast<count_t>(bk) * bk * nrhs_);
        y_fwd_[{s, kb}] = xkb;
        for (int ri = 0; ri < pr; ++ri) {
          if (ri == kbr || !grid_row_owns_below(fb, kb, ri, pr)) continue;
          comm_.send_vec(map_.grid_rank(s, ri, kbc),
                         kTagStride * static_cast<int>(s) + kTagFwdX, xkb);
        }
      } else if (gc == kbc && grid_row_owns_below(fb, kb, gr, pr)) {
        xkb = comm_.recv_vec<real_t>(
            diag_rank, kTagStride * static_cast<int>(s) + kTagFwdX);
      }

      if (gc == kbc && !xkb.empty()) {
        for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
          if (static_cast<int>(ib) % pr != gr) continue;
          auto& acc = part_of(ib);
          gemm_nn_update(buf_view(acc, fb.size(ib)), l_block(s, fb, ib, kb),
                         ConstMatrixView{xkb.data(), bk, nrhs_, bk});
          comm_.advance_compute(2 * static_cast<count_t>(fb.size(ib)) * bk *
                                nrhs_);
        }
      }
    }

    // 3. Reduce below-row partials to per-block-row collectors and route
    // them to the parent as (parent-local row, rhs, value) triples.
    const index_t parent = sym_.sn_parent[s];
    std::vector<std::vector<SolveTriple>> outbox;
    int pbegin = 0, pcount = 0;
    if (parent != kNone) {
      pbegin = map_.rank_begin[parent];
      pcount = map_.rank_count[parent];
      outbox.resize(static_cast<std::size_t>(pcount));
    }
    const int max_collector_col = std::min<int>(pc, static_cast<int>(fb.kp));
    for (index_t ib = fb.kp; ib < fb.nB; ++ib) {
      const int ibr = static_cast<int>(ib) % pr;
      const int collector = map_.grid_rank(s, ibr, 0);
      if (gr == ibr && gc != 0 && gc < max_collector_col) {
        comm_.send_vec(collector,
                       kTagStride * static_cast<int>(s) + kTagFwdPartial,
                       part_of(ib));
      }
      if (comm_.rank() != collector) continue;
      auto total = part_of(ib);
      for (int c = 1; c < max_collector_col; ++c) {
        const auto partial = comm_.recv_vec<real_t>(
            map_.grid_rank(s, ibr, c),
            kTagStride * static_cast<int>(s) + kTagFwdPartial);
        for (std::size_t i = 0; i < total.size(); ++i) total[i] += partial[i];
      }
      if (parent == kNone) continue;
      // Route each row to the parent rank that consumes it.
      const FrontBlocking pfb = FrontBlocking::make(
          sym_.sn_cols(parent), sym_.sn_below(parent), map_.block_size);
      const index_t pfirst = sym_.sn_start[parent];
      const index_t pblock_end = sym_.sn_start[parent + 1];
      const auto prows = sym_.below_rows(parent);
      for (index_t i = 0; i < fb.size(ib); ++i) {
        const index_t grow = rows[fb.start(ib) - fb.p + i];
        index_t lr;
        if (grow < pblock_end) {
          lr = grow - pfirst;
        } else {
          const auto it = std::lower_bound(prows.begin(), prows.end(), grow);
          PARFACT_DCHECK(it != prows.end() && *it == grow);
          lr = pfb.p + static_cast<index_t>(it - prows.begin());
        }
        const index_t pib = pfb.block_of(lr);
        const int dest =
            lr < pfb.p
                ? map_.grid_rank(parent, static_cast<int>(pib) %
                                             map_.grid_rows[parent],
                                 static_cast<int>(pib) %
                                     map_.grid_cols[parent])
                : map_.grid_rank(parent,
                                 static_cast<int>(pib) %
                                     map_.grid_rows[parent],
                                 0);
        for (index_t r = 0; r < nrhs_; ++r) {
          const real_t v = total[static_cast<std::size_t>(r) * fb.size(ib) + i];
          if (v != 0.0) {
            outbox[dest - pbegin].push_back(SolveTriple{lr, r, v});
          }
        }
      }
    }
    if (parent != kNone) {
      const int tag = kTagStride * static_cast<int>(parent) + kTagContrib;
      for (int d = 0; d < pcount; ++d) {
        comm_.send_vec(pbegin + d, tag, outbox[d]);
      }
    }
  }

  void backward_front(index_t s) {
    const FrontBlocking fb = FrontBlocking::make(
        sym_.sn_cols(s), sym_.sn_below(s), map_.block_size);
    const int pr = map_.grid_rows[s];
    const int pc = map_.grid_cols[s];
    const auto [gr, gc] = map_.grid_coords(s, comm_.rank());
    const index_t first = sym_.sn_start[s];
    const auto rows = sym_.below_rows(s);
    const int np = map_.rank_count[s];

    // x at front row `fr` (panel rows from this front's sweep so far, below
    // rows from ancestors — all already in x_known_ by the invariant).
    auto x_at = [&](index_t fr, index_t r) -> real_t {
      const index_t grow = fr < fb.p ? first + fr : rows[fr - fb.p];
      return x_known_[static_cast<std::size_t>(r) * sym_.n + grow];
    };

    for (index_t kb = fb.kp - 1; kb >= 0; --kb) {
      const int kbr = static_cast<int>(kb) % pr;
      const int kbc = static_cast<int>(kb) % pc;
      const index_t bk = fb.size(kb);
      const int diag_rank = map_.grid_rank(s, kbr, kbc);

      std::vector<real_t> partial;
      if (gc == kbc && grid_row_owns_below(fb, kb, gr, pr)) {
        partial.assign(static_cast<std::size_t>(bk) * nrhs_, 0.0);
        std::vector<real_t> xi;
        for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
          if (static_cast<int>(ib) % pr != gr) continue;
          const index_t bi = fb.size(ib);
          xi.resize(static_cast<std::size_t>(bi) * nrhs_);
          for (index_t r = 0; r < nrhs_; ++r) {
            for (index_t i = 0; i < bi; ++i) {
              xi[static_cast<std::size_t>(r) * bi + i] =
                  x_at(fb.start(ib) + i, r);
            }
          }
          gemm_tn_update(buf_view(partial, bk), l_block(s, fb, ib, kb),
                         ConstMatrixView{xi.data(), bi, nrhs_, bi});
          comm_.advance_compute(2 * static_cast<count_t>(bi) * bk * nrhs_);
        }
        if (comm_.rank() != diag_rank) {
          comm_.send_vec(diag_rank,
                         kTagStride * static_cast<int>(s) + kTagBwdPartial,
                         partial);
        }
      }

      std::vector<real_t> xkb;
      if (comm_.rank() == diag_rank) {
        const auto it = y_fwd_.find({s, kb});
        PARFACT_DCHECK(it != y_fwd_.end());
        xkb = it->second;
        if (factor_.is_ldlt()) {
          // x = L⁻ᵀ D⁻¹ (L⁻¹ b): apply the diagonal solve as the backward
          // sweep picks each forward segment up.
          const auto dd = factor_.diag();
          for (index_t r = 0; r < nrhs_; ++r) {
            for (index_t i = 0; i < bk; ++i) {
              xkb[static_cast<std::size_t>(r) * bk + i] /=
                  dd[first + fb.start(kb) + i];
            }
          }
        }
        if (!partial.empty()) {
          for (std::size_t i = 0; i < xkb.size(); ++i) xkb[i] += partial[i];
        }
        for (int ri = 0; ri < pr; ++ri) {
          if (ri == kbr || !grid_row_owns_below(fb, kb, ri, pr)) continue;
          const auto rp = comm_.recv_vec<real_t>(
              map_.grid_rank(s, ri, kbc),
              kTagStride * static_cast<int>(s) + kTagBwdPartial);
          for (std::size_t i = 0; i < xkb.size(); ++i) xkb[i] += rp[i];
        }
        trsm_left_lower_trans(l_block(s, fb, kb, kb), buf_view(xkb, bk));
        comm_.advance_compute(static_cast<count_t>(bk) * bk * nrhs_);
        // Broadcast to every other participant: they need it for their own
        // in-panel partials and to serve the invariant for child fronts.
        for (int other = map_.rank_begin[s]; other < map_.rank_begin[s] + np;
             ++other) {
          if (other == comm_.rank()) continue;
          comm_.send_vec(other,
                         kTagStride * static_cast<int>(s) + kTagBwdX, xkb);
        }
        // Final answer rows: the diagonal owner writes them (disjointly).
        for (index_t r = 0; r < nrhs_; ++r) {
          for (index_t i = 0; i < bk; ++i) {
            x_out_[static_cast<std::size_t>(r) * sym_.n + first +
                   fb.start(kb) + i] =
                xkb[static_cast<std::size_t>(r) * bk + i];
          }
        }
      } else {
        xkb = comm_.recv_vec<real_t>(
            diag_rank, kTagStride * static_cast<int>(s) + kTagBwdX);
      }
      // Everyone records the solved segment for later fronts/children.
      for (index_t r = 0; r < nrhs_; ++r) {
        for (index_t i = 0; i < bk; ++i) {
          x_known_[static_cast<std::size_t>(r) * sym_.n + first +
                   fb.start(kb) + i] =
              xkb[static_cast<std::size_t>(r) * bk + i];
        }
      }
    }
  }

  const SymbolicFactor& sym_;
  const FrontMap& map_;
  const CholeskyFactor& factor_;
  const std::vector<real_t>& b_;
  const index_t nrhs_;
  std::vector<real_t>& x_out_;
  mpsim::Comm& comm_;
  std::vector<std::vector<index_t>> children_;
  std::vector<real_t> x_known_;
  std::map<std::pair<index_t, index_t>, std::vector<real_t>> y_fwd_;
};

}  // namespace

DistSolveResult distributed_solve(const SymbolicFactor& sym,
                                  const FrontMap& map,
                                  const CholeskyFactor& factor,
                                  const std::vector<real_t>& b, index_t nrhs,
                                  const mpsim::MachineModel& model,
                                  const mpsim::FaultPlan& faults) {
  PARFACT_CHECK(static_cast<count_t>(b.size()) ==
                static_cast<count_t>(sym.n) * nrhs);
  if (!faults.crashes.empty() || faults.spare_ranks > 0) {
    // Crash recovery is a factorization-phase protocol (buddy checkpoints
    // are taken at front boundaries); the solve sweeps have no resume
    // points, so a crash plan here would be a silent hang waiting to occur.
    throw StatusError(Status::failure(
        StatusCode::kInvalidInput,
        "distributed_solve does not support crash injection or spare "
        "ranks; crash tolerance covers the factorization phase"));
  }
  DistSolveResult result;
  result.x.assign(b.size(), 0.0);
  result.run =
      mpsim::run_spmd(map.n_ranks, model, faults, [&](mpsim::Comm& comm) {
        SolveProgram program(sym, map, factor, b, nrhs, result.x, comm);
        program.run();
      });
  result.status = Status::success();
  return result;
}

DistSolveResult distributed_solve_checked(const SymbolicFactor& sym,
                                          const FrontMap& map,
                                          const CholeskyFactor& factor,
                                          const std::vector<real_t>& b,
                                          index_t nrhs,
                                          const mpsim::MachineModel& model,
                                          const mpsim::FaultPlan& faults) {
  try {
    return distributed_solve(sym, map, factor, b, nrhs, model, faults);
  } catch (const StatusError& e) {
    DistSolveResult result;
    result.status = e.status();
    return result;
  } catch (const Error& e) {
    DistSolveResult result;
    result.status = Status::failure(StatusCode::kInternal, e.what());
    return result;
  }
}

}  // namespace parfact
