#include "dist/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "support/checksum.h"
#include "support/error.h"

namespace parfact {

namespace {

constexpr std::uint64_t kCheckpointMagic = 0x70666b70'74763031ull;  // "pfkptv01"

/// Fixed-layout blob prefix. The checksum covers the payload bytes only;
/// header fields are validated structurally (magic, sizes).
struct BlobHeader {
  std::uint64_t magic;
  std::int64_t next_supernode;
  std::int64_t perturbations;
  std::uint64_t payload_bytes;
  std::uint64_t payload_checksum;
};

[[noreturn]] void corrupt(const std::string& what) {
  throw StatusError(Status::failure(StatusCode::kDataCorruption,
                                    "checkpoint blob: " + what));
}

}  // namespace

std::vector<std::byte> encode_checkpoint(const CheckpointImage& image,
                                         const std::vector<std::byte>& payload) {
  BlobHeader header;
  header.magic = kCheckpointMagic;
  header.next_supernode = image.next_supernode;
  header.perturbations = image.perturbations;
  header.payload_bytes = payload.size();
  header.payload_checksum = fnv1a(payload.data(), payload.size());
  std::vector<std::byte> blob(sizeof(BlobHeader) + payload.size());
  std::memcpy(blob.data(), &header, sizeof header);
  if (!payload.empty()) {
    std::memcpy(blob.data() + sizeof header, payload.data(), payload.size());
  }
  return blob;
}

CheckpointImage decode_checkpoint(const std::vector<std::byte>& blob) {
  if (blob.empty()) return CheckpointImage{};  // never checkpointed
  if (blob.size() < sizeof(BlobHeader)) corrupt("shorter than its header");
  BlobHeader header;
  std::memcpy(&header, blob.data(), sizeof header);
  if (header.magic != kCheckpointMagic) corrupt("bad magic");
  if (header.payload_bytes != blob.size() - sizeof header) {
    corrupt("payload size disagrees with blob size");
  }
  if (header.payload_checksum !=
      fnv1a(blob.data() + sizeof header, blob.size() - sizeof header)) {
    corrupt("payload checksum mismatch");
  }
  if (header.next_supernode < 0 || header.perturbations < 0) {
    corrupt("negative header field");
  }
  CheckpointImage image;
  image.next_supernode = static_cast<index_t>(header.next_supernode);
  image.perturbations = static_cast<count_t>(header.perturbations);
  return image;
}

BuddyCheckpointer::BuddyCheckpointer(mpsim::Comm& comm,
                                     const ResiliencePolicy& policy)
    : comm_(comm), policy_(policy) {
  // Ring-partner scheme: rank r's checkpoints live on rank (r + 1) mod P,
  // so one crash never takes a rank and its checkpoint down together.
  buddy_ = (comm.rank() + 1) % comm.size();
}

void BuddyCheckpointer::append(const void* data, std::size_t bytes) {
  if (!enabled() || bytes == 0) return;
  const std::size_t old = pending_.size();
  pending_.resize(old + bytes);
  std::memcpy(pending_.data() + old, data, bytes);
}

void BuddyCheckpointer::note_panel(const void* data, std::size_t bytes) {
  append(data, bytes);
}

void BuddyCheckpointer::note_contribution(const void* data,
                                          std::size_t bytes) {
  append(data, bytes);
}

void BuddyCheckpointer::front_complete(index_t next_supernode,
                                       count_t perturbations) {
  if (!enabled()) return;
  if (++fronts_since_save_ < policy_.checkpoint_interval) return;
  fronts_since_save_ = 0;
  CheckpointImage image;
  image.next_supernode = next_supernode;
  image.perturbations = perturbations;
  std::vector<std::byte> blob = encode_checkpoint(image, pending_);
  pending_.clear();
  if (policy_.spill_to_scratch) {
    // Round-trip the blob through node-local scratch before shipping, with
    // the OOC writer's verify-on-read discipline: a torn spill must surface
    // as kDataCorruption, never as a silently wrong restore.
    namespace fs = std::filesystem;
    const fs::path dir = policy_.scratch_dir.empty()
                             ? fs::temp_directory_path()
                             : fs::path(policy_.scratch_dir);
    std::ostringstream name;
    name << "parfact_ckpt_rank" << comm_.rank() << ".bin";
    const fs::path path = dir / name.str();
    {
      std::FILE* f = std::fopen(path.string().c_str(), "wb");
      PARFACT_CHECK_MSG(f != nullptr, "checkpoint scratch open failed");
      const std::size_t wrote =
          blob.empty() ? 0 : std::fwrite(blob.data(), 1, blob.size(), f);
      std::fflush(f);
      std::fclose(f);
      if (wrote != blob.size()) {
        std::error_code ec;
        fs::remove(path, ec);
        corrupt("scratch spill wrote short");
      }
    }
    std::vector<std::byte> readback(blob.size());
    {
      std::FILE* f = std::fopen(path.string().c_str(), "rb");
      PARFACT_CHECK_MSG(f != nullptr, "checkpoint scratch reopen failed");
      const std::size_t got =
          readback.empty() ? 0
                           : std::fread(readback.data(), 1, readback.size(), f);
      std::fclose(f);
      std::error_code ec;
      fs::remove(path, ec);
      if (got != readback.size()) corrupt("scratch spill read short");
    }
    (void)decode_checkpoint(readback);  // checksum + structure verification
    blob = std::move(readback);
  }
  comm_.checkpoint_save(buddy_, std::move(blob));
}

void validate_resilience_policy(const ResiliencePolicy& policy) {
  if (policy.checkpoint_interval < 1) {
    throw StatusError(Status::failure(
        StatusCode::kInvalidInput,
        "ResiliencePolicy: checkpoint_interval must be >= 1"));
  }
}

}  // namespace parfact
