// Compact extend-add wire format: canonical enumeration of one child rank's
// contribution entries to its parent front.
//
// Both endpoints of an extend-add message can derive, from the symbolic
// structure alone, the exact sequence of (parent row, parent col) targets a
// given child rank produces for a given parent rank. The packed wire format
// exploits this: the message carries only the dense values, in canonical
// order (8 bytes per entry instead of a 16-byte {row, col, value} triple),
// and the receiver reconstructs the indices by replaying the sender's
// enumeration. The "index header" of the format is therefore implicit —
// it is the shared symbolic structure itself.
//
// Canonical order (must match LocalFront ownership and the sender loop in
// dist_factor.cc): update-region blocks (ib, jb) of the child front with
// jb ≥ kp, column-major over blocks owned by the sender's grid cell
// (jb ascending, then ib ≥ jb ascending), within a block column-major
// (j ascending, then i from the lower-triangle start).
#pragma once

#include "dist/front_blocks.h"
#include "dist/mapping.h"
#include "support/types.h"
#include "symbolic/symbolic_factor.h"

#include <utility>
#include <vector>

namespace parfact {

/// Everything needed to enumerate child → parent contribution entries.
struct ExtendAddPlan {
  index_t child = kNone;
  index_t parent = kNone;
  FrontBlocking cfb;  ///< child front blocking
  FrontBlocking pfb;  ///< parent front blocking
  int pr = 1, pc = 1;  ///< child process grid
  /// Parent-front-local index of each child below row (length sn_below).
  std::vector<index_t> parent_index;
};

/// Builds the plan for `child` (which must have a parent).
[[nodiscard]] ExtendAddPlan make_extend_add_plan(const SymbolicFactor& sym,
                                                 const FrontMap& map,
                                                 index_t child);

/// Enumerates, in canonical order, every contribution entry produced by the
/// child-grid cell (gr, gc): calls
///   fn(ib, jb, i, j, row, col, owner)
/// with (ib, jb) the child update block, (i, j) the within-block offsets,
/// (row, col) the lower-triangle parent-front coordinates, and `owner` the
/// parent rank owning that entry. Spectator cells (gr < 0) own nothing.
template <typename Fn>
void for_each_contribution(const ExtendAddPlan& plan, const FrontMap& map,
                           int gr, int gc, Fn&& fn) {
  if (gr < 0) return;
  const FrontBlocking& fb = plan.cfb;
  const index_t p = fb.p;
  const int prow = map.grid_rows[plan.parent];
  const int pcol = map.grid_cols[plan.parent];
  for (index_t jb = fb.kp; jb < fb.nB; ++jb) {
    if (static_cast<int>(jb) % plan.pc != gc) continue;
    for (index_t ib = jb; ib < fb.nB; ++ib) {
      if (static_cast<int>(ib) % plan.pr != gr) continue;
      const index_t r0 = fb.start(ib) - p;  // below-row index
      const index_t c0 = fb.start(jb) - p;
      const index_t rows = fb.size(ib);
      const index_t cols = fb.size(jb);
      for (index_t j = 0; j < cols; ++j) {
        const index_t pj = plan.parent_index[c0 + j];
        for (index_t i = (ib == jb) ? j : 0; i < rows; ++i) {
          const index_t pi = plan.parent_index[r0 + i];
          // The parent front stores lower storage in its own ordering; the
          // child's (i, j) pair may map to either triangle there.
          const index_t row = std::max(pi, pj);
          const index_t col = std::min(pi, pj);
          const int owner = map.grid_rank(
              plan.parent,
              static_cast<int>(plan.pfb.block_of(row)) % prow,
              static_cast<int>(plan.pfb.block_of(col)) % pcol);
          fn(ib, jb, i, j, row, col, owner);
        }
      }
    }
  }
}

/// Per-panel variant for the fan-both streaming wire format: like
/// for_each_contribution, with the destination *parent block column*
/// (panel) appended:
///   fn(ib, jb, i, j, row, col, owner, panel)
/// where panel = pfb.block_of(col). Splitting one child-rank → parent-rank
/// message into per-panel messages along this key is order-preserving per
/// scalar: within one (child, source) cell each parent entry is produced at
/// most once (the enumeration emits distinct lower-triangle child entries
/// and parent_index is injective), so filtering the canonical order by
/// (owner, panel) leaves every entry's single addition in place. Both
/// endpoints can therefore derive each per-panel message's content — and in
/// particular which (owner, panel) messages are empty and never sent — from
/// the symbolic structure alone.
template <typename Fn>
void for_each_panel_contribution(const ExtendAddPlan& plan,
                                 const FrontMap& map, int gr, int gc,
                                 Fn&& fn) {
  for_each_contribution(
      plan, map, gr, gc,
      [&](index_t ib, index_t jb, index_t i, index_t j, index_t row,
          index_t col, int owner) {
        fn(ib, jb, i, j, row, col, owner, plan.pfb.block_of(col));
      });
}

}  // namespace parfact
