// Incomplete-Cholesky preconditioned conjugate gradients — the iterative
// baseline a direct-solver evaluation is traditionally weighed against
// (factor once + many cheap solves vs no setup + per-solve iteration).
#pragma once

#include <span>

#include "mf/factor.h"
#include "mf/multifrontal.h"
#include "sparse/sparse_matrix.h"
#include "support/types.h"

namespace parfact {

/// IC(0): incomplete Cholesky restricted to the pattern of the lower
/// triangle of A. Returns L (lower-stored CSC, same pattern as the input).
/// Throws parfact::Error on pivot breakdown (cannot happen for the
/// diagonally dominant / M-matrix problems of the suite) unless `pivot`
/// enables boosting, in which case tiny/non-positive pivots are replaced
/// and counted in `*perturbations` — this is what lets the IC(0)-CG
/// escalation fallback precondition near-singular matrices.
[[nodiscard]] SparseMatrix incomplete_cholesky0(
    const SparseMatrix& lower, PivotPolicy pivot = {},
    count_t* perturbations = nullptr);

struct CgResult {
  int iterations = 0;
  real_t residual = 0.0;   ///< final ‖b - A x‖₂ / ‖b‖₂
  bool converged = false;
};

/// Conjugate gradients on the symmetric lower-stored `a`; `x` holds the
/// initial guess on entry and the solution on exit. If `ic0` is non-null it
/// is used as a split preconditioner (solve L Lᵀ z = r each iteration).
CgResult conjugate_gradient(const SparseMatrix& lower_a,
                            std::span<const real_t> b, std::span<real_t> x,
                            const SparseMatrix* ic0 = nullptr,
                            int max_iterations = 1000, real_t tol = 1e-10);

/// CG preconditioned by a *complete* factor of a nearby matrix — the
/// "reuse last step's factorization" pattern of nonlinear/time-stepping
/// codes: converges in a handful of iterations when A has drifted a little
/// from the factored matrix.
CgResult conjugate_gradient_factor_preconditioned(
    const SparseMatrix& lower_a, const CholeskyFactor& preconditioner,
    std::span<const real_t> b, std::span<real_t> x, int max_iterations = 100,
    real_t tol = 1e-12);

}  // namespace parfact
