#include "baseline/simplicial.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dense/kernels.h"
#include "dense/matrix_view.h"
#include "support/error.h"
#include "support/timer.h"
#include "symbolic/etree.h"

namespace parfact {

SparseMatrix simplicial_cholesky(const SparseMatrix& lower,
                                 SimplicialStats* stats, PivotPolicy pivot) {
  WallTimer timer;
  PARFACT_CHECK(lower.rows == lower.cols);
  pivot = resolve_pivot_policy(pivot, lower);
  count_t perturbations = 0;
  const index_t n = lower.rows;
  const std::vector<index_t> parent = elimination_tree(lower);
  const std::vector<index_t> counts = cholesky_col_counts(lower, parent);

  SparseMatrix l(n, n);
  for (index_t j = 0; j < n; ++j) l.col_ptr[j + 1] = l.col_ptr[j] + counts[j];
  l.row_ind.resize(static_cast<std::size_t>(l.col_ptr.back()));
  l.values.assign(static_cast<std::size_t>(l.col_ptr.back()), 0.0);
  // fill[j]: number of entries already emitted into column j.
  std::vector<index_t> fill(static_cast<std::size_t>(n), 0);

  // CSR view of the strict lower triangle of A for row-pattern walks.
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t k = 0; k < n; ++k) {
    for (index_t p = lower.col_ptr[k]; p < lower.col_ptr[k + 1]; ++p) {
      if (lower.row_ind[p] > k) ++row_ptr[lower.row_ind[p] + 1];
    }
  }
  for (index_t i = 0; i < n; ++i) row_ptr[i + 1] += row_ptr[i];
  std::vector<index_t> row_cols(static_cast<std::size_t>(row_ptr.back()));
  {
    std::vector<index_t> next(row_ptr.begin(), row_ptr.end() - 1);
    for (index_t k = 0; k < n; ++k) {
      for (index_t p = lower.col_ptr[k]; p < lower.col_ptr[k + 1]; ++p) {
        if (lower.row_ind[p] > k) row_cols[next[lower.row_ind[p]]++] = k;
      }
    }
  }

  std::vector<real_t> x(static_cast<std::size_t>(n), 0.0);  // dense scratch
  std::vector<index_t> pattern;  // columns k < j with L(j,k) != 0
  std::vector<char> marked(static_cast<std::size_t>(n), 0);

  for (index_t j = 0; j < n; ++j) {
    // ereach: row pattern of row j via etree walks from A's row-j entries.
    pattern.clear();
    for (index_t p = row_ptr[j]; p < row_ptr[j + 1]; ++p) {
      for (index_t k = row_cols[p]; k != kNone && k < j && !marked[k];
           k = parent[k]) {
        marked[k] = 1;
        pattern.push_back(k);
      }
    }
    // Left-looking updates must apply in increasing column order.
    std::sort(pattern.begin(), pattern.end());

    // Scatter A(j:n, j) into x.
    for (index_t p = lower.col_ptr[j]; p < lower.col_ptr[j + 1]; ++p) {
      x[lower.row_ind[p]] = lower.values[p];
    }

    for (index_t k : pattern) {
      marked[k] = 0;
      // Locate L(j, k) in column k: columns are emitted with sorted rows.
      const auto begin = l.row_ind.begin() + l.col_ptr[k];
      const auto end = l.row_ind.begin() + l.col_ptr[k] + fill[k];
      const auto it = std::lower_bound(begin, end, j);
      PARFACT_DCHECK(it != end && *it == j);
      const index_t off = static_cast<index_t>(it - l.row_ind.begin());
      const real_t ljk = l.values[off];
      for (index_t q = off; q < l.col_ptr[k] + fill[k]; ++q) {
        x[l.row_ind[q]] -= l.values[q] * ljk;
      }
    }

    real_t diag = x[j];
    PARFACT_CHECK_MSG(std::isfinite(diag),
                      "matrix is not positive definite at column " << j);
    if (diag <= 0.0 || (pivot.boost && diag <= pivot.threshold)) {
      PARFACT_CHECK_MSG(pivot.boost,
                        "matrix is not positive definite at column " << j);
      diag = pivot.value;
      ++perturbations;
    }
    const real_t dsqrt = std::sqrt(diag);

    // Column j's symbolic pattern is the union of A(j:n, j) and each
    // updating column k's tail rows (>= j); collect it exactly — explicit
    // zeros from numerical cancellation must stay in the structure.
    std::vector<index_t> rows;
    for (index_t p = lower.col_ptr[j]; p < lower.col_ptr[j + 1]; ++p) {
      rows.push_back(lower.row_ind[p]);
    }
    for (const index_t k : pattern) {
      const auto begin = l.row_ind.begin() + l.col_ptr[k];
      const auto end = l.row_ind.begin() + l.col_ptr[k] + fill[k];
      for (auto it = std::lower_bound(begin, end, j); it != end; ++it) {
        rows.push_back(*it);
      }
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    PARFACT_CHECK(static_cast<index_t>(rows.size()) == counts[j]);
    PARFACT_CHECK(rows.front() == j);

    index_t q = l.col_ptr[j];
    for (index_t i : rows) {
      l.row_ind[q] = i;
      l.values[q] = (i == j) ? dsqrt : x[i] / dsqrt;
      x[i] = 0.0;  // reset scratch
      ++q;
    }
    fill[j] = counts[j];
  }

  if (stats != nullptr) {
    stats->nnz_l = l.nnz();
    stats->seconds = timer.seconds();
    stats->pivot_perturbations = perturbations;
  }
  return l;
}

void simplicial_forward_solve(const SparseMatrix& l, std::span<real_t> x) {
  PARFACT_CHECK(static_cast<index_t>(x.size()) == l.rows);
  for (index_t j = 0; j < l.cols; ++j) {
    const index_t p0 = l.col_ptr[j];
    PARFACT_DCHECK(l.row_ind[p0] == j);
    const real_t xj = x[j] / l.values[p0];
    x[j] = xj;
    for (index_t p = p0 + 1; p < l.col_ptr[j + 1]; ++p) {
      x[l.row_ind[p]] -= l.values[p] * xj;
    }
  }
}

void simplicial_backward_solve(const SparseMatrix& l, std::span<real_t> x) {
  PARFACT_CHECK(static_cast<index_t>(x.size()) == l.rows);
  for (index_t j = l.cols - 1; j >= 0; --j) {
    const index_t p0 = l.col_ptr[j];
    real_t acc = x[j];
    for (index_t p = p0 + 1; p < l.col_ptr[j + 1]; ++p) {
      acc -= l.values[p] * x[l.row_ind[p]];
    }
    x[j] = acc / l.values[p0];
  }
}

void dense_cholesky_solve(const SparseMatrix& lower, std::span<real_t> x) {
  const index_t n = lower.rows;
  PARFACT_CHECK(static_cast<index_t>(x.size()) == n);
  std::vector<real_t> dense(static_cast<std::size_t>(n) * n, 0.0);
  MatrixView a{dense.data(), n, n, n};
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = lower.col_ptr[j]; p < lower.col_ptr[j + 1]; ++p) {
      a.at(lower.row_ind[p], j) = lower.values[p];
    }
  }
  PARFACT_CHECK_MSG(potrf_lower(a) == kNone, "matrix is not SPD");
  MatrixView xv{x.data(), n, 1, n};
  trsm_left_lower(a, xv);
  trsm_left_lower_trans(a, xv);
}

}  // namespace parfact
