#include "baseline/left_looking.h"

#include <algorithm>
#include <vector>

#include "dense/kernels.h"
#include "support/error.h"
#include "support/timer.h"

namespace parfact {

CholeskyFactor left_looking_factor(const SymbolicFactor& sym,
                                   FactorStats* stats, PivotPolicy pivot) {
  WallTimer timer;
  pivot = resolve_pivot_policy(pivot, sym.a);
  PivotBoost boost{pivot.threshold, pivot.value, 0};
  PivotBoost* boost_ptr = pivot.boost ? &boost : nullptr;
  const index_t ns = sym.n_supernodes;
  CholeskyFactor factor(sym);

  // CHOLMOD-style descendant lists: desc_head[s] chains (via desc_next) the
  // already-factorized supernodes whose next unconsumed below-row falls in
  // supernode s's column block. ptr[d] is that row's index within d's
  // below-row list.
  std::vector<index_t> desc_head(static_cast<std::size_t>(ns), kNone);
  std::vector<index_t> desc_next(static_cast<std::size_t>(ns), kNone);
  std::vector<index_t> ptr(static_cast<std::size_t>(ns), 0);

  std::vector<index_t> local_of(static_cast<std::size_t>(sym.n), kNone);
  std::vector<real_t> scratch;  // dense |R| x |C| update buffer

  const SparseMatrix& a = sym.a;

  for (index_t s = 0; s < ns; ++s) {
    const index_t p = sym.sn_cols(s);
    const index_t b = sym.sn_below(s);
    const index_t first = sym.sn_start[s];
    const index_t block_end = sym.sn_start[s + 1];
    const auto rows = sym.below_rows(s);

    MatrixView panel = factor.panel(s);  // zero-initialized

    for (index_t k = 0; k < p; ++k) local_of[first + k] = k;
    for (index_t t = 0; t < b; ++t) local_of[rows[t]] = p + t;

    // Scatter this supernode's original columns.
    for (index_t j = first; j < block_end; ++j) {
      const index_t lj = j - first;
      for (index_t q = a.col_ptr[j]; q < a.col_ptr[j + 1]; ++q) {
        panel.at(local_of[a.row_ind[q]], lj) += a.values[q];
      }
    }

    // Pull updates from every descendant queued at this supernode.
    index_t d = desc_head[s];
    while (d != kNone) {
      const index_t next_d = desc_next[d];
      const auto drows = sym.below_rows(d);
      const index_t dsize = sym.sn_below(d);
      const index_t r0 = ptr[d];
      PARFACT_DCHECK(r0 < dsize && sym.sn_of[drows[r0]] == s);
      // Rows of d that land inside this supernode's column block.
      index_t r1 = r0;
      while (r1 < dsize && drows[r1] < block_end) ++r1;

      // Update = L_d(R, :) * L_d(C, :)ᵀ where C = rows [r0, r1) (columns of
      // s) and R = rows [r0, dsize) (rows of s's panel). L_d's below rows
      // start at row offset sn_cols(d) of its panel.
      const ConstMatrixView dpanel = factor.panel(d);
      const index_t pd = sym.sn_cols(d);
      const ConstMatrixView lr =
          dpanel.block(pd + r0, 0, dsize - r0, pd);   // R rows
      const ConstMatrixView lc =
          dpanel.block(pd + r0, 0, r1 - r0, pd);      // C rows
      const index_t nr = dsize - r0;
      const index_t nc = r1 - r0;
      scratch.assign(static_cast<std::size_t>(nr) * nc, 0.0);
      MatrixView u{scratch.data(), nr, nc, nr};
      gemm_nt_update(u, lr, lc);  // u = -L_d(R,:) L_d(C,:)ᵀ

      // Scatter-add (u is negated already) into the panel.
      for (index_t cj = 0; cj < nc; ++cj) {
        const index_t lj = local_of[drows[r0 + cj]];
        PARFACT_DCHECK(lj >= 0 && lj < p);
        for (index_t ri = cj; ri < nr; ++ri) {
          panel.at(local_of[drows[r0 + ri]], lj) += u.at(ri, cj);
        }
      }

      // Advance d to its next target supernode.
      ptr[d] = r1;
      if (r1 < dsize) {
        const index_t t = sym.sn_of[drows[r1]];
        desc_next[d] = desc_head[t];
        desc_head[t] = d;
      }
      d = next_d;
    }
    desc_head[s] = kNone;

    // Eliminate the panel.
    MatrixView l11 = panel.block(0, 0, p, p);
    const index_t info = potrf_lower(l11, boost_ptr);
    PARFACT_CHECK_MSG(info == kNone,
                      "matrix is not positive definite at column "
                          << first + info << " (postordered)");
    if (b > 0) {
      MatrixView l21 = panel.block(p, 0, b, p);
      trsm_right_lower_trans(l11, l21);
      // Queue this supernode at the owner of its first below row.
      desc_next[s] = desc_head[sym.sn_of[rows[0]]];
      desc_head[sym.sn_of[rows[0]]] = s;
    }

    for (index_t k = 0; k < p; ++k) local_of[first + k] = kNone;
    for (index_t t = 0; t < b; ++t) local_of[rows[t]] = kNone;
  }

  if (stats != nullptr) {
    stats->seconds = timer.seconds();
    stats->flops = sym.total_flops;
    stats->peak_update_bytes = 0;  // the left-looking method has no stack
    stats->pivot_perturbations = boost.count;
  }
  return factor;
}

}  // namespace parfact
