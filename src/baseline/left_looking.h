// Left-looking supernodal Cholesky — the second major algorithm class for
// sparse factorization (SuperLU/CHOLMOD style), implemented against the same
// SymbolicFactor and producing the same CholeskyFactor layout as the
// multifrontal engine.
//
// Where the multifrontal method pushes Schur updates *forward* through
// per-front update blocks (bounded dense working set, extra update-stack
// memory), the left-looking method *pulls* all descendant updates into each
// supernode panel right before eliminating it (no update stack, scattered
// reads into descendants). Comparing the two on equal footing is a classic
// evaluation axis of the paper lineage (experiment F7).
#pragma once

#include "mf/factor.h"
#include "mf/multifrontal.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

/// Left-looking supernodal factorization of sym.a. The result is
/// numerically equivalent to multifrontal_factor (same panels, different
/// summation order). Throws parfact::Error if the matrix is not SPD,
/// unless `pivot` enables boosting (counts reported via
/// stats->pivot_perturbations).
[[nodiscard]] CholeskyFactor left_looking_factor(const SymbolicFactor& sym,
                                                 FactorStats* stats = nullptr,
                                                 PivotPolicy pivot = {});

}  // namespace parfact
