// Simplicial (column-by-column) sparse Cholesky — the classic non-supernodal
// baseline solver class the paper's evaluation compares against, and the
// independent reference the test suite checks the multifrontal factor
// against (same ordering => same L up to roundoff).
#pragma once

#include <span>

#include "mf/multifrontal.h"
#include "sparse/sparse_matrix.h"
#include "support/types.h"

namespace parfact {

struct SimplicialStats {
  count_t nnz_l = 0;
  double seconds = 0.0;
  count_t pivot_perturbations = 0;
};

/// Left-looking column Cholesky of a lower-stored SPD matrix. Returns L
/// (lower-stored CSC with sorted rows, diagonal first in each column).
/// Throws parfact::Error if a non-positive pivot appears, unless `pivot`
/// enables boosting (counts land in stats->pivot_perturbations).
[[nodiscard]] SparseMatrix simplicial_cholesky(const SparseMatrix& lower,
                                               SimplicialStats* stats =
                                                   nullptr,
                                               PivotPolicy pivot = {});

/// x := L⁻¹ x for a lower-stored CSC factor.
void simplicial_forward_solve(const SparseMatrix& l, std::span<real_t> x);

/// x := L⁻ᵀ x.
void simplicial_backward_solve(const SparseMatrix& l, std::span<real_t> x);

/// Dense Cholesky solve of a sparse SPD matrix (densifies; n must be small).
/// Baseline sanity comparator for tests and the T3 experiment's footnote.
void dense_cholesky_solve(const SparseMatrix& lower, std::span<real_t> x);

}  // namespace parfact
