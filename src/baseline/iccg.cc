#include "baseline/iccg.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "baseline/simplicial.h"
#include "dense/matrix_view.h"
#include "solve/solve.h"
#include "sparse/ops.h"
#include "support/error.h"

namespace parfact {

SparseMatrix incomplete_cholesky0(const SparseMatrix& lower,
                                  PivotPolicy pivot,
                                  count_t* perturbations) {
  PARFACT_CHECK(lower.rows == lower.cols);
  pivot = resolve_pivot_policy(pivot, lower);
  count_t boosted = 0;
  SparseMatrix l = lower;  // same pattern, values overwritten in place
  const index_t n = l.cols;
  for (index_t j = 0; j < n; ++j) {
    const index_t p0 = l.col_ptr[j];
    PARFACT_CHECK_MSG(l.row_ind[p0] == j, "missing diagonal in column " << j);
    real_t diag = l.values[p0];
    PARFACT_CHECK_MSG(std::isfinite(diag),
                      "IC(0) pivot breakdown at column " << j);
    if (diag <= 0.0 || (pivot.boost && diag <= pivot.threshold)) {
      PARFACT_CHECK_MSG(pivot.boost,
                        "IC(0) pivot breakdown at column " << j);
      diag = pivot.value;
      ++boosted;
    }
    const real_t d = std::sqrt(diag);
    l.values[p0] = d;
    for (index_t p = p0 + 1; p < l.col_ptr[j + 1]; ++p) l.values[p] /= d;

    // Right-looking update restricted to existing entries: for each pair of
    // below-diagonal entries (r, j) and (i, j) with i >= r, update (i, r)
    // if that position exists in the pattern.
    for (index_t pr = p0 + 1; pr < l.col_ptr[j + 1]; ++pr) {
      const index_t r = l.row_ind[pr];
      const real_t lrj = l.values[pr];
      if (lrj == 0.0) continue;
      const auto col_begin = l.row_ind.begin() + l.col_ptr[r];
      const auto col_end = l.row_ind.begin() + l.col_ptr[r + 1];
      for (index_t pi = pr; pi < l.col_ptr[j + 1]; ++pi) {
        const index_t i = l.row_ind[pi];
        const auto it = std::lower_bound(col_begin, col_end, i);
        if (it != col_end && *it == i) {
          l.values[it - l.row_ind.begin()] -= l.values[pi] * lrj;
        }
      }
    }
  }
  if (perturbations != nullptr) *perturbations = boosted;
  return l;
}

CgResult conjugate_gradient(const SparseMatrix& lower_a,
                            std::span<const real_t> b, std::span<real_t> x,
                            const SparseMatrix* ic0, int max_iterations,
                            real_t tol) {
  const index_t n = lower_a.rows;
  PARFACT_CHECK(static_cast<index_t>(b.size()) == n &&
                static_cast<index_t>(x.size()) == n);
  CgResult result;

  std::vector<real_t> r(static_cast<std::size_t>(n));
  std::vector<real_t> z(static_cast<std::size_t>(n));
  std::vector<real_t> p(static_cast<std::size_t>(n));
  std::vector<real_t> ap(static_cast<std::size_t>(n));

  const real_t bnorm = norm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    result.converged = true;
    return result;
  }

  spmv_symmetric_lower(lower_a, x, r);
  for (index_t i = 0; i < n; ++i) r[i] = b[i] - r[i];

  auto apply_preconditioner = [&](const std::vector<real_t>& in,
                                  std::vector<real_t>& out) {
    out = in;
    if (ic0 != nullptr) {
      simplicial_forward_solve(*ic0, out);
      simplicial_backward_solve(*ic0, out);
    }
  };

  apply_preconditioner(r, z);
  p = z;
  real_t rz = dot(r, z);

  for (result.iterations = 0; result.iterations < max_iterations;
       ++result.iterations) {
    result.residual = norm2(r) / bnorm;
    if (result.residual <= tol) {
      result.converged = true;
      return result;
    }
    spmv_symmetric_lower(lower_a, p, ap);
    const real_t pap = dot(p, ap);
    PARFACT_CHECK_MSG(pap > 0.0, "CG: matrix is not positive definite");
    const real_t alpha = rz / pap;
    for (index_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    apply_preconditioner(r, z);
    const real_t rz_new = dot(r, z);
    const real_t beta = rz_new / rz;
    rz = rz_new;
    for (index_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.residual = norm2(r) / bnorm;
  result.converged = result.residual <= tol;
  return result;
}

CgResult conjugate_gradient_factor_preconditioned(
    const SparseMatrix& lower_a, const CholeskyFactor& preconditioner,
    std::span<const real_t> b, std::span<real_t> x, int max_iterations,
    real_t tol) {
  const index_t n = lower_a.rows;
  PARFACT_CHECK(preconditioner.symbolic().n == n);
  PARFACT_CHECK(static_cast<index_t>(b.size()) == n &&
                static_cast<index_t>(x.size()) == n);
  CgResult result;
  std::vector<real_t> r(static_cast<std::size_t>(n));
  std::vector<real_t> z(static_cast<std::size_t>(n));
  std::vector<real_t> p(static_cast<std::size_t>(n));
  std::vector<real_t> ap(static_cast<std::size_t>(n));
  const real_t bnorm = norm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    result.converged = true;
    return result;
  }
  spmv_symmetric_lower(lower_a, x, r);
  for (index_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  auto precondition = [&](const std::vector<real_t>& in,
                          std::vector<real_t>& out) {
    out = in;
    solve_in_place(preconditioner, MatrixView{out.data(), n, 1, n});
  };
  precondition(r, z);
  p = z;
  real_t rz = dot(r, z);
  for (result.iterations = 0; result.iterations < max_iterations;
       ++result.iterations) {
    result.residual = norm2(r) / bnorm;
    if (result.residual <= tol) {
      result.converged = true;
      return result;
    }
    spmv_symmetric_lower(lower_a, p, ap);
    const real_t pap = dot(p, ap);
    PARFACT_CHECK_MSG(pap > 0.0, "CG: matrix is not positive definite");
    const real_t alpha = rz / pap;
    for (index_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    precondition(r, z);
    const real_t rz_new = dot(r, z);
    const real_t beta = rz_new / rz;
    rz = rz_new;
    for (index_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.residual = norm2(r) / bnorm;
  result.converged = result.residual <= tol;
  return result;
}

}  // namespace parfact
