// Block-level discrete-event replay of the distributed factorization and
// solve schedules for large rank counts.
//
// mpsim executes the real numeric program with one thread per rank, which is
// exact but impractical past a few dozen ranks on one host. This module
// replays the *same static schedule* (identical mapping, block partitioning,
// message pattern and flop counts — but no numerics) against an array of
// per-rank virtual clocks, so a 16384-rank strong-scaling sweep costs
// milliseconds. Experiments T2/F1/F4 are generated here; correctness of the
// schedule itself is established by the mpsim runs at small P (tests assert
// the two time models agree within a modest factor).
#pragma once

#include <vector>

#include "dist/config.h"
#include "dist/mapping.h"
#include "mpsim/machine.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

struct PerfResult {
  double makespan = 0.0;          ///< simulated seconds
  double compute_total = 0.0;     ///< sum of per-rank compute seconds
  double compute_max = 0.0;       ///< busiest rank's compute seconds
  double idle_wait_seconds = 0.0; ///< Σ over ranks of arrival-stall seconds
  double overlap_efficiency = 1.0;///< 1 − idle / Σ rank seconds
  count_t total_messages = 0;
  count_t total_bytes = 0;
  count_t peak_rank_bytes = 0;    ///< max over ranks of peak live bytes
  count_t factor_bytes_max = 0;   ///< max per-rank owned factor bytes

  /// Parallel efficiency vs a perfectly balanced zero-communication run.
  [[nodiscard]] double efficiency(int n_ranks) const {
    const double ideal = compute_total / n_ranks;
    return makespan > 0.0 ? ideal / makespan : 1.0;
  }
};

/// Replays the distributed factorization schedule of `map` under `config`:
/// the blocking replay stalls every panel consumer at broadcast time, the
/// lookahead replay defers panel arrivals to the next iteration's consume
/// point (transfer overlaps the previous panel's lazy updates), mirroring
/// dist_factor's two schedules; the task-DAG replay additionally dissolves
/// the collective extend-add barrier into per-panel arrival floors (block
/// column kb stalls only on the prefix of the contribution stream it needs),
/// mirroring the shared-memory runtime's ASM → POTRF task edges. Since
/// PR 9 dist_factor executes the same fan-both discipline for real
/// (per-panel extend-add streams consumed through Comm::wait_any); this
/// replay remains the large-P stand-in and is cross-checked against the
/// executed schedule by tests/perf_test.cc and bench_f11_fanboth. The
/// extend-add byte volume follows the wire format (16 B/entry triples vs
/// 8 B/entry packed).
[[nodiscard]] PerfResult simulate_factor_time(const SymbolicFactor& sym,
                                              const FrontMap& map,
                                              const mpsim::MachineModel& model,
                                              const DistConfig& config);

/// Convenience overload replaying the default DistConfig (lookahead +
/// packed — what distributed_factor runs by default).
[[nodiscard]] PerfResult simulate_factor_time(const SymbolicFactor& sym,
                                              const FrontMap& map,
                                              const mpsim::MachineModel& model);

/// Replays the forward+backward solve schedule with `nrhs` right-hand sides.
[[nodiscard]] PerfResult simulate_solve_time(const SymbolicFactor& sym,
                                             const FrontMap& map,
                                             const mpsim::MachineModel& model,
                                             index_t nrhs);

}  // namespace parfact
