#include "perf/dag_sim.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "dist/front_blocks.h"
#include "support/error.h"

namespace parfact {
namespace {

/// Per-rank clock/accounting state shared by both replays.
struct Clocks {
  std::vector<double> t;        // virtual clock
  std::vector<double> compute;  // accumulated compute seconds
  std::vector<double> idle;     // seconds stalled on message arrival
  std::vector<count_t> live;    // live bytes
  std::vector<count_t> peak;
  std::vector<count_t> factor_bytes;
  count_t messages = 0;
  count_t bytes = 0;

  explicit Clocks(int p)
      : t(static_cast<std::size_t>(p), 0.0),
        compute(static_cast<std::size_t>(p), 0.0),
        idle(static_cast<std::size_t>(p), 0.0),
        live(static_cast<std::size_t>(p), 0),
        peak(static_cast<std::size_t>(p), 0),
        factor_bytes(static_cast<std::size_t>(p), 0) {}

  void work(int r, double flops, double rate) {
    t[r] += flops / rate;
    compute[r] += flops / rate;
  }
  void mem(int r, count_t b) {
    live[r] += b;
    peak[r] = std::max(peak[r], live[r]);
  }
  /// Pushes rank r's clock to `floor`, accounting the jump as idle wait.
  void stall_until(int r, double floor) {
    if (floor > t[r]) {
      idle[r] += floor - t[r];
      t[r] = floor;
    }
  }
  /// Point-to-point message: sender pays alpha, receiver clock is pushed to
  /// the arrival time (an immediate, blocking-style stall).
  void msg(int src, int dst, double byte_count,
           const mpsim::MachineModel& m) {
    if (src == dst) return;
    const double arrival = t[src] + m.alpha + byte_count * m.beta;
    t[src] += m.alpha;
    stall_until(dst, arrival);
    ++messages;
    bytes += static_cast<count_t>(byte_count);
  }
  /// As msg(), but the receiver is not stalled now: the arrival lands in
  /// `floor` to be applied at the consumer's next synchronization point —
  /// the lookahead replay's way of overlapping transfer with compute.
  void msg_deferred(int src, double byte_count, const mpsim::MachineModel& m,
                    double* floor) {
    const double arrival = t[src] + m.alpha + byte_count * m.beta;
    t[src] += m.alpha;
    *floor = std::max(*floor, arrival);
    ++messages;
    bytes += static_cast<count_t>(byte_count);
  }
};

count_t front_local_bytes(const FrontBlocking& fb, int pr, int pc, int gr,
                          int gc) {
  count_t total = 0;
  for (index_t jb = gc; jb < fb.nB; jb += pc) {
    for (index_t ib = jb; ib < fb.nB; ++ib) {
      if (static_cast<int>(ib) % pr != gr) continue;
      total += static_cast<count_t>(fb.size(ib)) * fb.size(jb);
    }
  }
  return total * static_cast<count_t>(sizeof(real_t));
}

bool grid_row_owns_below(const FrontBlocking& fb, index_t kb, int ri,
                         int pr) {
  for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
    if (static_cast<int>(ib) % pr == ri) return true;
  }
  return false;
}

}  // namespace

PerfResult simulate_factor_time(const SymbolicFactor& sym, const FrontMap& map,
                                const mpsim::MachineModel& model) {
  return simulate_factor_time(sym, map, model, DistConfig{});
}

PerfResult simulate_factor_time(const SymbolicFactor& sym, const FrontMap& map,
                                const mpsim::MachineModel& model,
                                const DistConfig& config) {
  const int p = map.n_ranks;
  Clocks clk(p);
  const index_t ns = sym.n_supernodes;
  const bool lookahead = config.schedule == DistConfig::Schedule::kLookahead;
  const bool taskdag = config.schedule == DistConfig::Schedule::kTaskDag;
  // Wire + staging bytes per extend-add entry: {row, col, value} triple or
  // packed dense value (the index header is implicit; see extend_add.h).
  const double ea_entry_bytes =
      config.extend_add == DistConfig::ExtendAddFormat::kPacked ? 8.0 : 16.0;

  // Per-rank clock stamp at the moment each front finished (its update
  // contributions depart then), plus the update-region byte volume.
  std::vector<std::vector<double>> finish(static_cast<std::size_t>(ns));
  std::vector<count_t> update_entries(static_cast<std::size_t>(ns), 0);
  std::vector<std::vector<index_t>> children(static_cast<std::size_t>(ns));
  for (index_t s = 0; s < ns; ++s) {
    if (sym.sn_parent[s] != kNone) children[sym.sn_parent[s]].push_back(s);
  }

  for (index_t s = 0; s < ns; ++s) {
    const FrontBlocking fb = FrontBlocking::make(
        sym.sn_cols(s), sym.sn_below(s), map.block_size);
    const int pr = map.grid_rows[s];
    const int pc = map.grid_cols[s];
    const int r0 = map.rank_begin[s];
    const int np = map.rank_count[s];

    // Allocation + local memory accounting. Participants past the grid
    // (spectators; see FrontMap::grid_size) own nothing.
    const int used = map.grid_size(s);
    for (int lr = 0; lr < used; ++lr) {
      const int gr = lr % pr;
      const int gc = lr / pr;
      clk.mem(r0 + lr, front_local_bytes(fb, pr, pc, gr, gc));
    }
    // Assembly of the original entries (spread across the grid ranks).
    const count_t a_entries = sym.a.col_ptr[sym.sn_start[s + 1]] -
                              sym.a.col_ptr[sym.sn_start[s]];
    for (int lr = 0; lr < used; ++lr) {
      clk.t[r0 + lr] +=
          static_cast<double>(a_entries) / used * sizeof(real_t) /
          model.mem_rate;
    }

    // Extend-add: every rank of each child sends its share of the child's
    // update entries to every parent rank (matching dist_factor's uniform
    // scheme; shares modeled as uniform). The task-DAG replay does not stall
    // here: each child contributes an arrival *ramp* (base, slope) and the
    // factorization loop below stalls each panel only on the prefix of the
    // contribution stream its columns need — assembly of block column kb is
    // a dependency of POTRF(kb), not a front-wide barrier.
    std::vector<std::pair<double, double>> ea_ramp;  // taskdag: base, slope
    for (index_t c : children[s]) {
      const int cr0 = map.rank_begin[c];
      const int cnp = map.rank_count[c];
      // Every child rank sends one message per parent rank. The all-pairs
      // arrival reduces to a closed form (max over senders), which keeps
      // this O(cnp + np) instead of O(cnp * np) — essential at large P.
      // The replay models the production pairwise-merge (subcube-doubling)
      // extend-add: entries reach their owners through a log-depth exchange
      // in which each rank talks to O(log np) partners, instead of the
      // simple all-to-all reference scheme dist_factor executes. At the
      // small rank counts where both are run (perf_test pins them against
      // each other) the difference is negligible; at large P the all-to-all
      // alpha term would otherwise dominate everything, which no production
      // solver pays.
      int merge_rounds = 1;
      while ((1 << merge_rounds) < np + cnp) ++merge_rounds;
      const bool local = np == 1 && cnp == 1;  // same rank: plain memcpy
      const double share_bytes =
          static_cast<double>(update_entries[c]) * ea_entry_bytes / np;
      double latest_send = 0.0;
      for (int src = 0; src < cnp; ++src) {
        latest_send = std::max(latest_send, finish[c][src]);
        if (!local) clk.t[cr0 + src] += merge_rounds * model.alpha;
        // Child update memory is freed once consumed (owners only).
        if (src < map.grid_size(c)) {
          clk.live[cr0 + src] -= static_cast<count_t>(
              static_cast<double>(update_entries[c]) / map.grid_size(c) *
              ea_entry_bytes);
        }
      }
      if (!local) {
        const double arrival = latest_send + merge_rounds *
                                                 (model.alpha +
                                                  share_bytes * model.beta);
        if (taskdag) {
          ea_ramp.emplace_back(latest_send + merge_rounds * model.alpha,
                               merge_rounds * share_bytes * model.beta);
        }
        for (int dst = 0; dst < np; ++dst) {
          if (!taskdag) clk.stall_until(r0 + dst, arrival);
          clk.t[r0 + dst] += share_bytes * cnp / np / model.mem_rate +
                             share_bytes / model.mem_rate;
        }
        clk.messages += static_cast<count_t>(merge_rounds) * (cnp + np);
        clk.bytes += static_cast<count_t>(static_cast<double>(
            update_entries[c]) * ea_entry_bytes * merge_rounds);
      } else {
        clk.t[r0] += share_bytes / model.mem_rate;
      }
    }

    // Block factorization sweep. Shared pieces: factor_col charges the
    // diagonal factorization + broadcast (an immediate dependency — TRSM
    // consumes it in place) and the TRSMs + panel broadcasts; the panel
    // messages stall receivers immediately (blocking) or land in an
    // arrival-floor vector applied at the next consume point (lookahead).
    auto factor_col = [&](index_t kb, std::vector<double>* floors) {
      const int kbr = static_cast<int>(kb) % pr;
      const int kbc = static_cast<int>(kb) % pc;
      const index_t bk = fb.size(kb);
      const int diag = r0 + kbc * pr + kbr;

      clk.work(diag, static_cast<double>(partial_cholesky_flops(bk, bk)),
               model.flop_rate);
      // Diagonal block down the grid column.
      for (int ri = 0; ri < pr; ++ri) {
        if (ri == kbr || !grid_row_owns_below(fb, kb, ri, pr)) continue;
        clk.msg(diag, r0 + kbc * pr + ri,
                static_cast<double>(bk) * bk * sizeof(real_t), model);
      }
      // TRSMs in the panel column + panel block broadcasts.
      for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
        const int src = r0 + kbc * pr + static_cast<int>(ib) % pr;
        const double bi = fb.size(ib);
        clk.work(src, bi * bk * (bk + 1), model.flop_rate);
        const double blk_bytes = bi * bk * sizeof(real_t);
        // A-side: grid row (ib % pr); B-side: grid column (ib % pc).
        for (int c = 0; c < pc; ++c) {
          const int dst = r0 + c * pr + static_cast<int>(ib) % pr;
          // Only if that rank owns a trailing block needing this (approx:
          // it does whenever the trailing region is non-trivial).
          if (dst == src) continue;
          if (floors) {
            clk.msg_deferred(src, blk_bytes, model, &(*floors)[dst - r0]);
          } else {
            clk.msg(src, dst, blk_bytes, model);
          }
        }
        for (int rrow = 0; rrow < pr; ++rrow) {
          const int dst = r0 + (static_cast<int>(ib) % pc) * pr + rrow;
          if (dst != src && rrow != static_cast<int>(ib) % pr) {
            if (floors) {
              clk.msg_deferred(src, blk_bytes, model, &(*floors)[dst - r0]);
            } else {
              clk.msg(src, dst, blk_bytes, model);
            }
          }
        }
      }
    };
    // Trailing-update work of panel kb restricted to block columns
    // [jb_begin, jb_end): each rank's owned (ib, jb), ib >= jb.
    auto update_cols = [&](index_t kb, index_t jb_begin, index_t jb_end) {
      const index_t bk = fb.size(kb);
      for (index_t jb = jb_begin; jb < jb_end; ++jb) {
        for (index_t ib = jb; ib < fb.nB; ++ib) {
          const int owner = r0 + (static_cast<int>(jb) % pc) * pr +
                            static_cast<int>(ib) % pr;
          clk.work(owner,
                   2.0 * fb.size(ib) * fb.size(jb) * bk, model.flop_rate);
        }
      }
    };

    // Fraction of each child's contribution stream that block columns
    // 0..kb depend on, modeled as a linear prefix of the pipelined merge;
    // frac = 1 reproduces the full arrival the other schedules stall on
    // collectively, so the task-DAG floors never exceed that barrier.
    auto ea_floor = [&](double frac) {
      double f = 0.0;
      for (const auto& [base, slope] : ea_ramp) {
        f = std::max(f, base + frac * slope);
      }
      return f;
    };
    // Assembly of block column kb gates POTRF(kb): stall only the grid
    // column that owns the panel, and only on the prefix it needs.
    auto stall_panel_column = [&](index_t kb) {
      const double floor =
          ea_floor(static_cast<double>(kb + 1) / static_cast<double>(fb.nB));
      const int kbc = static_cast<int>(kb) % pc;
      for (int ri = 0; ri < pr; ++ri) {
        clk.stall_until(r0 + kbc * pr + ri, floor);
      }
    };

    if (taskdag) {
      // Task-DAG replay: same depth-1 panel pipelining as kLookahead inside
      // the front, but extend-add arrivals are consumed per panel via the
      // ramp floors instead of one collective assembly barrier — matching
      // the shared-memory runtime, where ASM(s) → POTRF(kb) edges are
      // per-front tasks that commute with unrelated panels' updates.
      if (fb.kp > 0) {
        std::vector<double> cur_arr(static_cast<std::size_t>(used), 0.0);
        std::vector<double> next_arr(static_cast<std::size_t>(used), 0.0);
        stall_panel_column(0);
        factor_col(0, &cur_arr);
        for (index_t kb = 0; kb < fb.kp; ++kb) {
          for (int lr = 0; lr < used; ++lr) {
            clk.stall_until(r0 + lr, cur_arr[static_cast<std::size_t>(lr)]);
            cur_arr[static_cast<std::size_t>(lr)] = 0.0;
          }
          update_cols(kb, kb + 1, std::min<index_t>(kb + 2, fb.nB));
          if (kb + 1 < fb.kp) {
            stall_panel_column(kb + 1);
            factor_col(kb + 1, &next_arr);
          }
          update_cols(kb, kb + 2, fb.nB);
          std::swap(cur_arr, next_arr);
        }
      }
      // Every extend-add byte must have landed before this front's own
      // update contributions depart (the trailing blocks fold them in), so
      // completion — not assembly — is where the tail of the stream gates.
      const double full = ea_floor(1.0);
      for (int dst = 0; dst < np; ++dst) clk.stall_until(r0 + dst, full);
    } else if (!lookahead) {
      for (index_t kb = 0; kb < fb.kp; ++kb) {
        factor_col(kb, nullptr);
        update_cols(kb, kb + 1, fb.nB);
      }
    } else if (fb.kp > 0) {
      // Depth-1 lookahead replay: panel kb+1 is factored and its blocks
      // put in flight right after the urgent update, so the transfer
      // overlaps panel kb's lazy updates; consumers only stall on what has
      // not yet arrived when they reach the next panel.
      std::vector<double> cur_arr(static_cast<std::size_t>(used), 0.0);
      std::vector<double> next_arr(static_cast<std::size_t>(used), 0.0);
      factor_col(0, &cur_arr);
      for (index_t kb = 0; kb < fb.kp; ++kb) {
        for (int lr = 0; lr < used; ++lr) {
          clk.stall_until(r0 + lr, cur_arr[static_cast<std::size_t>(lr)]);
          cur_arr[static_cast<std::size_t>(lr)] = 0.0;
        }
        update_cols(kb, kb + 1, std::min<index_t>(kb + 2, fb.nB));
        if (kb + 1 < fb.kp) factor_col(kb + 1, &next_arr);
        update_cols(kb, kb + 2, fb.nB);
        std::swap(cur_arr, next_arr);
      }
    }

    // Bookkeeping: panel bytes persist as factor storage; the rest of the
    // front is freed; update entries go on the virtual stack until the
    // parent consumes them.
    update_entries[s] =
        static_cast<count_t>(fb.b) * (fb.b + 1) / 2;
    finish[s].resize(static_cast<std::size_t>(np));
    for (int lr = 0; lr < np; ++lr) {
      if (lr < used) {
        const int gr = lr % pr;
        const int gc = lr / pr;
        const count_t local = front_local_bytes(fb, pr, pc, gr, gc);
        count_t panel = 0;
        for (index_t jb = gc; jb < fb.kp; jb += pc) {
          for (index_t ib = jb; ib < fb.nB; ++ib) {
            if (static_cast<int>(ib) % pr != gr) continue;
            panel += static_cast<count_t>(fb.size(ib)) * fb.size(jb) *
                     static_cast<count_t>(sizeof(real_t));
          }
        }
        clk.factor_bytes[r0 + lr] += panel;
        // Free the front, keep the update entries in wire format until the
        // parent consumes them.
        clk.live[r0 + lr] -= local;
        clk.mem(r0 + lr,
                static_cast<count_t>(static_cast<double>(update_entries[s]) /
                                     used * ea_entry_bytes));
      }
      finish[s][lr] = clk.t[r0 + lr];
    }
  }

  PerfResult result;
  double rank_seconds = 0.0;
  for (int r = 0; r < p; ++r) {
    result.makespan = std::max(result.makespan, clk.t[r]);
    result.compute_total += clk.compute[r];
    result.compute_max = std::max(result.compute_max, clk.compute[r]);
    result.idle_wait_seconds += clk.idle[r];
    rank_seconds += clk.t[r];
    result.peak_rank_bytes =
        std::max(result.peak_rank_bytes, clk.peak[r] + clk.factor_bytes[r]);
    result.factor_bytes_max =
        std::max(result.factor_bytes_max, clk.factor_bytes[r]);
  }
  result.overlap_efficiency =
      rank_seconds > 0.0
          ? std::max(0.0, 1.0 - result.idle_wait_seconds / rank_seconds)
          : 1.0;
  result.total_messages = clk.messages;
  result.total_bytes = clk.bytes;
  return result;
}

PerfResult simulate_solve_time(const SymbolicFactor& sym, const FrontMap& map,
                               const mpsim::MachineModel& model,
                               index_t nrhs) {
  const int p = map.n_ranks;
  Clocks clk(p);
  const index_t ns = sym.n_supernodes;
  std::vector<std::vector<index_t>> children(static_cast<std::size_t>(ns));
  for (index_t s = 0; s < ns; ++s) {
    if (sym.sn_parent[s] != kNone) children[sym.sn_parent[s]].push_back(s);
  }
  const double vec_bytes = static_cast<double>(nrhs) * sizeof(real_t);

  // Forward then backward; both sweeps have the same block structure, so
  // replay one generic sweep function twice (reversed the second time).
  auto sweep = [&](bool forward) {
    std::vector<double> finish_sweep(static_cast<std::size_t>(ns), 0.0);
    for (index_t step = 0; step < ns; ++step) {
      const index_t s = forward ? step : ns - 1 - step;
      const FrontBlocking fb = FrontBlocking::make(
          sym.sn_cols(s), sym.sn_below(s), map.block_size);
      const int pr = map.grid_rows[s];
      const int pc = map.grid_cols[s];
      const int r0 = map.rank_begin[s];
      const int np = map.rank_count[s];

      // Dependency coupling between fronts: forward children feed parents,
      // backward parents feed children — both through the participants'
      // clocks, which the shared-rank model already couples. Contribution
      // routing messages (forward only):
      if (forward) {
        for (index_t c : children[s]) {
          const int cnp = map.rank_count[c];
          const double bytes_per_pair =
              static_cast<double>(sym.sn_below(c)) * vec_bytes * 2.0 / cnp /
              np;
          const count_t remote_pairs = static_cast<count_t>(cnp) * (np - 1);
          double latest_send = 0.0;
          for (int src = 0; src < cnp; ++src) {
            const int sr = map.rank_begin[c] + src;
            latest_send = std::max(latest_send, clk.t[sr]);
            clk.t[sr] += (np - 1) * model.alpha;
          }
          if (remote_pairs > 0) {
            const double arrival =
                latest_send + model.alpha + bytes_per_pair * model.beta;
            for (int dst = 0; dst < np; ++dst) {
              clk.t[r0 + dst] = std::max(clk.t[r0 + dst], arrival);
            }
          }
          clk.messages += remote_pairs;
          clk.bytes += static_cast<count_t>(bytes_per_pair * remote_pairs);
        }
      }

      for (index_t k = 0; k < fb.kp; ++k) {
        const index_t kb = forward ? k : fb.kp - 1 - k;
        const int kbr = static_cast<int>(kb) % pr;
        const int kbc = static_cast<int>(kb) % pc;
        const index_t bk = fb.size(kb);
        const int diag = r0 + kbc * pr + kbr;
        // Partial reductions into the diagonal owner.
        for (int other = 0; other < (forward ? pc : pr); ++other) {
          const int src = forward ? r0 + other * pr + kbr
                                  : r0 + kbc * pr + other;
          if (src != diag) clk.msg(src, diag, bk * vec_bytes, model);
        }
        clk.work(diag, static_cast<double>(bk) * bk * nrhs,
                 model.flop_rate);
        // Solution segment broadcast.
        const int fanout = forward ? pr : np;
        for (int i = 0; i < fanout; ++i) {
          const int dst = forward ? r0 + kbc * pr + i : r0 + i;
          if (dst != diag) clk.msg(diag, dst, bk * vec_bytes, model);
        }
        // L21 block products spread over participants.
        for (index_t ib = kb + 1; ib < fb.nB; ++ib) {
          const int owner = r0 + kbc * pr + static_cast<int>(ib) % pr;
          clk.work(owner, 2.0 * fb.size(ib) * bk * nrhs, model.flop_rate);
        }
      }
      double mx = 0.0;
      for (int lr = 0; lr < np; ++lr) mx = std::max(mx, clk.t[r0 + lr]);
      finish_sweep[s] = mx;
    }
  };
  sweep(true);
  sweep(false);

  PerfResult result;
  for (int r = 0; r < p; ++r) {
    result.makespan = std::max(result.makespan, clk.t[r]);
    result.compute_total += clk.compute[r];
    result.compute_max = std::max(result.compute_max, clk.compute[r]);
  }
  result.total_messages = clk.messages;
  result.total_bytes = clk.bytes;
  return result;
}

}  // namespace parfact
