// Pattern-keyed cache of completed symbolic analyses — the reuse layer the
// serving engine (api/service.h) and Solver::analyze() share.
//
// A CachedAnalysis is everything the analyze phase produces that depends
// only on the sparsity pattern and the ordering configuration: the
// postordered SymbolicFactor (elimination tree, supernode partition, row
// structure — values zeroed), the composed permutation, the nonzero
// scatter map that routes a caller's values into the postordered matrix,
// the precomputed SolveSchedule, and the WorkingSetEstimates both factor
// kinds would compute. On a hit, a Solver adopts the entry by copying the
// structure arrays and scattering its own values through value_map —
// O(nnz) copies instead of re-running nested dissection + symbolic
// analysis, which dominates end-to-end time in the (factor once, re-factor
// same pattern) serving loop.
//
// Entries are immutable once inserted and handed out as shared_ptr<const>,
// so readers never take the cache lock for longer than the map probe; the
// SolveSchedule inside an entry points at the entry's own SymbolicFactor,
// which is why CachedAnalysis is neither copyable nor movable (adopters
// copy the pieces, then rebind the schedule to their own copy). The cache
// itself is a mutex-guarded LRU map sized in entries; eviction only drops
// the cache's reference — solvers holding an adopted entry keep it alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "solve/solve_schedule.h"
#include "support/types.h"
#include "symbolic/pattern_key.h"
#include "symbolic/symbolic_factor.h"
#include "symbolic/working_set.h"

namespace parfact {

/// One completed analysis, keyed by pattern. Immutable after construction.
struct CachedAnalysis {
  /// `sym` must arrive with values already zeroed (the cache stores
  /// pattern-level data only; session values never leak through it).
  CachedAnalysis(SymbolicFactor sym_in, std::vector<index_t> total_perm_in,
                 std::vector<index_t> value_map_in,
                 SolveScheduleOptions schedule_opts, double analyze_seconds_in)
      : sym(std::move(sym_in)),
        total_perm(std::move(total_perm_in)),
        value_map(std::move(value_map_in)),
        schedule(sym, schedule_opts),
        ws_cholesky(estimate_working_set(sym, /*ldlt=*/false)),
        ws_ldlt(estimate_working_set(sym, /*ldlt=*/true)),
        analyze_seconds(analyze_seconds_in) {}
  CachedAnalysis(const CachedAnalysis&) = delete;
  CachedAnalysis& operator=(const CachedAnalysis&) = delete;

  SymbolicFactor sym;               ///< postordered structure, values zeroed
  std::vector<index_t> total_perm;  ///< postordered index -> original index
  /// Nonzero scatter map: sym.a.values[q] = input_lower.values[value_map[q]].
  /// This is also what Solver::refactorize uses to install new values.
  std::vector<index_t> value_map;
  SolveSchedule schedule;           ///< bound to this entry's `sym`
  WorkingSetEstimate ws_cholesky;
  WorkingSetEstimate ws_ldlt;
  double analyze_seconds = 0.0;     ///< what the miss cost (for reporting)
};

/// Thread-safe pattern-keyed LRU cache of analyses. All methods may be
/// called concurrently from any thread.
class SymbolicCache {
 public:
  /// `max_entries` bounds the number of cached analyses (>= 1).
  explicit SymbolicCache(std::size_t max_entries = 64);

  /// Returns the entry for `key` (bumping its recency) or nullptr.
  /// Counts one hit or one miss.
  [[nodiscard]] std::shared_ptr<const CachedAnalysis> lookup(
      const PatternKey& key);

  /// Inserts `entry` under `key`, evicting the least-recently-used entry
  /// when over capacity. If another thread won the race to insert the same
  /// key, the incumbent wins and is returned (so concurrent analyzers of
  /// one pattern converge on a single shared entry).
  std::shared_ptr<const CachedAnalysis> insert(
      const PatternKey& key, std::shared_ptr<const CachedAnalysis> entry);

  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }
  [[nodiscard]] count_t hits() const;
  [[nodiscard]] count_t misses() const;
  [[nodiscard]] count_t evictions() const;

  /// Process-wide default instance (unbounded-ish: 256 entries) for callers
  /// that want cross-solver reuse without wiring their own cache.
  [[nodiscard]] static SymbolicCache& process_default();

 private:
  struct Slot {
    std::shared_ptr<const CachedAnalysis> entry;
    std::uint64_t last_used = 0;
  };

  mutable std::mutex mu_;
  std::size_t max_entries_;
  std::uint64_t tick_ = 0;
  std::unordered_map<PatternKey, Slot, PatternKeyHash> map_;
  count_t hits_ = 0;
  count_t misses_ = 0;
  count_t evictions_ = 0;
};

}  // namespace parfact
