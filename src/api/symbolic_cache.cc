#include "api/symbolic_cache.h"

#include <utility>

#include "support/error.h"

namespace parfact {

SymbolicCache::SymbolicCache(std::size_t max_entries)
    : max_entries_(max_entries) {
  PARFACT_CHECK(max_entries_ >= 1);
}

std::shared_ptr<const CachedAnalysis> SymbolicCache::lookup(
    const PatternKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  it->second.last_used = ++tick_;
  return it->second.entry;
}

std::shared_ptr<const CachedAnalysis> SymbolicCache::insert(
    const PatternKey& key, std::shared_ptr<const CachedAnalysis> entry) {
  PARFACT_CHECK(entry != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map_.try_emplace(key);
  it->second.last_used = ++tick_;
  if (!inserted) return it->second.entry;  // racing analyzer won; share it
  it->second.entry = std::move(entry);
  while (map_.size() > max_entries_) {
    // Linear LRU scan: capacities are small (dozens of patterns), and
    // eviction only happens on insert of a brand-new pattern.
    auto victim = map_.begin();
    for (auto v = map_.begin(); v != map_.end(); ++v) {
      if (v->second.last_used < victim->second.last_used) victim = v;
    }
    map_.erase(victim);
    ++evictions_;
  }
  return it->second.entry;
}

void SymbolicCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

std::size_t SymbolicCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

count_t SymbolicCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

count_t SymbolicCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

count_t SymbolicCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

SymbolicCache& SymbolicCache::process_default() {
  static SymbolicCache cache(256);
  return cache;
}

}  // namespace parfact
