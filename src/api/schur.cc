#include "api/schur.h"

#include <vector>

#include "api/solver.h"
#include "support/error.h"

namespace parfact {

std::vector<real_t> schur_complement(const SparseMatrix& lower, index_t k) {
  PARFACT_CHECK(lower.rows == lower.cols);
  PARFACT_CHECK(k >= 0 && k <= lower.rows);
  const index_t n = lower.rows;
  const index_t m = n - k;

  // Split the lower-stored input into A11 (lower), the rows of A21, and the
  // dense lower A22.
  TripletBuilder b11(m, m);
  std::vector<std::vector<std::pair<index_t, real_t>>> a21(
      static_cast<std::size_t>(k));  // per Schur row: (col < m, value)
  std::vector<real_t> s(static_cast<std::size_t>(k) * k, 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = lower.col_ptr[j]; p < lower.col_ptr[j + 1]; ++p) {
      const index_t i = lower.row_ind[p];
      const real_t v = lower.values[p];
      if (j < m) {
        if (i < m) {
          b11.add(i, j, v);
        } else {
          a21[i - m].emplace_back(j, v);
        }
      } else {
        s[static_cast<std::size_t>(j - m) * k + (i - m)] = v;  // A22 lower
      }
    }
  }
  if (k == 0) return s;
  if (m == 0) return s;  // S == A22

  Solver solver;
  solver.analyze(b11.build());
  solver.factorize();

  // S(:, j) -= A21 * (A11⁻¹ * A21ᵀ e_j), one solve per Schur column.
  std::vector<real_t> rhs(static_cast<std::size_t>(m));
  for (index_t j = 0; j < k; ++j) {
    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (const auto& [col, v] : a21[j]) rhs[col] = v;
    const std::vector<real_t> w = solver.solve(rhs);
    for (index_t i = j; i < k; ++i) {
      real_t dot = 0.0;
      for (const auto& [col, v] : a21[i]) dot += v * w[col];
      s[static_cast<std::size_t>(j) * k + i] -= dot;
    }
  }
  return s;
}

}  // namespace parfact
