#include "api/solver.h"

#include <utility>

#include "graph/graph.h"
#include "mf/multifrontal.h"
#include "solve/condest.h"
#include "solve/solve.h"
#include "sparse/ops.h"
#include "support/error.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace parfact {

Solver::Solver(SolverOptions options) : options_(std::move(options)) {
  PARFACT_CHECK(options_.threads >= 1);
}

Solver::~Solver() = default;
Solver::Solver(Solver&&) noexcept = default;
Solver& Solver::operator=(Solver&&) noexcept = default;

void Solver::analyze(const SparseMatrix& lower) {
  WallTimer timer;
  PARFACT_CHECK(lower.rows == lower.cols);
  original_lower_ = lower;
  factor_.reset();

  // Fill-reducing permutation (new -> old).
  std::vector<index_t> fill_perm;
  switch (options_.ordering) {
    case SolverOptions::Ordering::kNestedDissection:
      if (options_.threads > 1) {
        ThreadPool pool(options_.threads);
        fill_perm = nested_dissection_parallel(graph_from_pattern(lower),
                                               options_.nd, pool);
      } else {
        fill_perm =
            nested_dissection(graph_from_pattern(lower), options_.nd);
      }
      break;
    case SolverOptions::Ordering::kMinimumDegree:
      fill_perm = minimum_degree(graph_from_pattern(lower));
      break;
    case SolverOptions::Ordering::kRcm:
      fill_perm = rcm(graph_from_pattern(lower));
      break;
    case SolverOptions::Ordering::kNatural:
      fill_perm.resize(static_cast<std::size_t>(lower.rows));
      for (index_t i = 0; i < lower.rows; ++i) fill_perm[i] = i;
      break;
  }

  const SparseMatrix permuted =
      lower_triangle(permute_symmetric(symmetrize_full(lower), fill_perm));
  sym_.emplace(parfact::analyze(permuted, options_.amalgamation));

  // Compose: postordered index -> fill index -> original index.
  total_perm_.resize(static_cast<std::size_t>(lower.rows));
  for (index_t k = 0; k < lower.rows; ++k) {
    total_perm_[k] = fill_perm[sym_->post[k]];
  }
  PARFACT_CHECK(is_permutation(total_perm_));

  report_ = SolverReport{};
  report_.n = lower.rows;
  report_.nnz_a = lower.nnz();
  report_.nnz_factor = sym_->nnz_strict;
  report_.factor_flops = sym_->total_flops;
  report_.n_supernodes = sym_->n_supernodes;
  report_.analyze_seconds = timer.seconds();
}

void Solver::factorize() {
  PARFACT_CHECK_MSG(sym_.has_value(), "factorize() before analyze()");
  FactorStats stats;
  if (options_.threads > 1) {
    ThreadPool pool(options_.threads);
    factor_.emplace(multifrontal_factor_parallel(*sym_, pool, &stats,
                                                 options_.factor_kind));
  } else {
    factor_.emplace(
        multifrontal_factor(*sym_, &stats, options_.factor_kind));
  }
  report_.factor_seconds = stats.seconds;
  report_.peak_update_bytes = stats.peak_update_bytes;
}

std::vector<real_t> Solver::solve(std::span<const real_t> b) const {
  PARFACT_CHECK_MSG(factor_.has_value(), "solve() before factorize()");
  const index_t n = sym_->n;
  PARFACT_CHECK(static_cast<index_t>(b.size()) == n);
  std::vector<real_t> pb(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) pb[k] = b[total_perm_[k]];
  solve_in_place(*factor_, MatrixView{pb.data(), n, 1, n});
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) x[total_perm_[k]] = pb[k];
  return x;
}

std::vector<real_t> Solver::solve_multi(std::span<const real_t> b,
                                        index_t nrhs) const {
  PARFACT_CHECK_MSG(factor_.has_value(), "solve() before factorize()");
  const index_t n = sym_->n;
  PARFACT_CHECK(nrhs >= 1);
  PARFACT_CHECK(static_cast<count_t>(b.size()) ==
                static_cast<count_t>(n) * nrhs);
  std::vector<real_t> pb(b.size());
  for (index_t c = 0; c < nrhs; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * n;
    for (index_t kk = 0; kk < n; ++kk) pb[off + kk] = b[off + total_perm_[kk]];
  }
  solve_in_place(*factor_, MatrixView{pb.data(), n, nrhs, n});
  std::vector<real_t> x(b.size());
  for (index_t c = 0; c < nrhs; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * n;
    for (index_t kk = 0; kk < n; ++kk) x[off + total_perm_[kk]] = pb[off + kk];
  }
  return x;
}

std::vector<real_t> Solver::solve_refined(std::span<const real_t> b) const {
  PARFACT_CHECK_MSG(factor_.has_value(), "solve() before factorize()");
  const index_t n = sym_->n;
  // Refine in the postordered space, where the factor lives.
  std::vector<real_t> pb(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) pb[k] = b[total_perm_[k]];
  std::vector<real_t> px = pb;
  solve_in_place(*factor_, MatrixView{px.data(), n, 1, n});
  (void)iterative_refinement(sym_->a, *factor_, pb, px,
                             options_.refinement_steps);
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) x[total_perm_[k]] = px[k];
  return x;
}

real_t Solver::residual(std::span<const real_t> x,
                        std::span<const real_t> b) const {
  return relative_residual(original_lower_, x, b);
}

real_t Solver::condition_estimate() const {
  PARFACT_CHECK_MSG(factor_.has_value(),
                    "condition_estimate() before factorize()");
  return estimate_condition_1(sym_->a, *factor_);
}

const SymbolicFactor& Solver::symbolic() const {
  PARFACT_CHECK(sym_.has_value());
  return *sym_;
}

const CholeskyFactor& Solver::factor() const {
  PARFACT_CHECK(factor_.has_value());
  return *factor_;
}

SymbolicFactor analyze_nested_dissection(const SparseMatrix& lower,
                                         const OrderingOptions& nd,
                                         const AmalgamationOptions& amalg) {
  const std::vector<index_t> perm =
      nested_dissection(graph_from_pattern(lower), nd);
  return analyze(
      lower_triangle(permute_symmetric(symmetrize_full(lower), perm)), amalg);
}

}  // namespace parfact
