#include "api/solver.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "baseline/iccg.h"
#include "dist/dist_factor.h"
#include "dist/mapping.h"
#include "graph/graph.h"
#include "mf/governed.h"
#include "mf/multifrontal.h"
#include "solve/condest.h"
#include "solve/fused.h"
#include "solve/solve.h"
#include "sparse/ops.h"
#include "support/checksum.h"
#include "support/error.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace parfact {
namespace {

[[noreturn]] void throw_invalid(const std::string& message) {
  throw StatusError(Status::failure(StatusCode::kInvalidInput, message));
}

/// Worst componentwise scaled residual max_i |b − Ax|_i / (|A||x| + |b|)_i
/// of one column (original ordering). The normwise residual can hide a
/// single corrupted entry in a large solution; the componentwise form is
/// the standard backward-error measure that cannot — a stable direct solve
/// keeps it near machine epsilon regardless of conditioning, so anything
/// above the verify tolerance means the pipeline, not the matrix.
real_t componentwise_residual(const SparseMatrix& lower,
                              std::span<const real_t> x,
                              std::span<const real_t> b) {
  const index_t n = lower.rows;
  std::vector<real_t> ax(static_cast<std::size_t>(n));
  spmv_symmetric_lower(lower, x, ax);
  std::vector<real_t> scale(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t q = lower.col_ptr[j]; q < lower.col_ptr[j + 1]; ++q) {
      const index_t i = lower.row_ind[q];
      const real_t v = std::abs(lower.values[q]);
      scale[i] += v * std::abs(x[j]);
      if (i != j) scale[j] += v * std::abs(x[i]);
    }
  }
  real_t worst = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const real_t r = std::abs(b[i] - ax[i]);
    const real_t s = scale[i] + std::abs(b[i]);
    const real_t e =
        s > 0.0 ? r / s
                : (r > 0.0 ? std::numeric_limits<real_t>::infinity() : 0.0);
    // Inf/NaN anywhere (an overflowed x makes both r and s infinite, so
    // e = inf/inf = NaN) is corruption by definition and must not be
    // washed out by later finite rows.
    if (!std::isfinite(e)) return std::numeric_limits<real_t>::infinity();
    if (e > worst) worst = e;
  }
  return worst;
}

/// Batched refinement against a spilled factor, mirroring refine_block():
/// `passes` correction sweeps (one SpMV per column per pass, one streamed
/// OOC solve per pass), then the worst per-column relative residual.
real_t ooc_refine_block(const SparseMatrix& lower_a,
                        const OocCholeskyFactor& factor, ConstMatrixView b,
                        MatrixView x, int passes) {
  const index_t n = x.rows;
  const index_t nrhs = x.cols;
  std::vector<real_t> r(static_cast<std::size_t>(n) * nrhs);
  std::vector<real_t> ax(static_cast<std::size_t>(n));
  for (int pass = 0; pass < passes; ++pass) {
    for (index_t c = 0; c < nrhs; ++c) {
      const std::span<const real_t> xc{&x.at(0, c),
                                       static_cast<std::size_t>(n)};
      spmv_symmetric_lower(lower_a, xc, ax);
      real_t* rc = r.data() + static_cast<std::size_t>(c) * n;
      for (index_t i = 0; i < n; ++i) rc[i] = b.at(i, c) - ax[i];
    }
    ooc_solve_in_place(factor, MatrixView{r.data(), n, nrhs, n});
    for (index_t c = 0; c < nrhs; ++c) {
      const real_t* rc = r.data() + static_cast<std::size_t>(c) * n;
      for (index_t i = 0; i < n; ++i) x.at(i, c) += rc[i];
    }
  }
  real_t worst = 0.0;
  for (index_t c = 0; c < nrhs; ++c) {
    worst = std::max(
        worst,
        relative_residual(
            lower_a, {&x.at(0, c), static_cast<std::size_t>(n)},
            {&b.at(0, c), static_cast<std::size_t>(n)}));
  }
  return worst;
}

}  // namespace

Solver::Solver(SolverOptions options) : options_(std::move(options)) {
  PARFACT_CHECK(options_.threads >= 1);
  PARFACT_CHECK(options_.solve_rhs_block >= 1);
}

Solver::~Solver() = default;
Solver::Solver(Solver&&) noexcept = default;
Solver& Solver::operator=(Solver&&) noexcept = default;

void Solver::cancel() { cancel_source_.request_cancel(); }

void Solver::set_memory_budget_bytes(std::size_t bytes) {
  options_.memory_budget_bytes = bytes;
}

void Solver::set_deadline_seconds(double seconds) {
  options_.deadline_seconds = seconds;
}

CancelToken Solver::arm_cancel_scope() {
  if (options_.deadline_seconds > 0.0) {
    cancel_source_.set_deadline_after(options_.deadline_seconds);
  }
  return cancel_source_.token();
}

std::string Solver::spill_path() const {
  if (!options_.spill_path.empty()) return options_.spill_path;
  static std::atomic<int> next{0};
  std::ostringstream os;
  os << "/tmp/parfact_spill_" << next.fetch_add(1) << "_"
     << static_cast<const void*>(this) << ".bin";
  return os.str();
}

void Solver::check_rhs(std::size_t b_size, index_t nrhs,
                       const char* fn) const {
  const index_t n = sym_->n;
  if (nrhs < 1) {
    std::ostringstream os;
    os << fn << ": nrhs must be >= 1, got " << nrhs;
    throw_invalid(os.str());
  }
  if (static_cast<count_t>(b_size) != static_cast<count_t>(n) * nrhs) {
    std::ostringstream os;
    os << fn << ": right-hand-side block has " << b_size
       << " entries, expected n * nrhs = " << n << " * " << nrhs << " = "
       << static_cast<count_t>(n) * nrhs;
    throw_invalid(os.str());
  }
}

ThreadPool* Solver::solve_pool() const {
  if (options_.threads <= 1) return nullptr;
  if (options_.shared_pool != nullptr) return options_.shared_pool;
  if (!solve_pool_) solve_pool_ = std::make_unique<ThreadPool>(options_.threads);
  return solve_pool_.get();
}

void Solver::build_solve_schedule() {
  // An adopted cache entry carries the precomputed schedule; copy it and
  // repoint it at this solver's own SymbolicFactor copy. The schedule is a
  // pure function of the structure and rhs_block, so the copy is exact —
  // but a solver configured with a different block width rebuilds.
  if (cached_ != nullptr &&
      cached_->schedule.rhs_block == options_.solve_rhs_block) {
    solve_schedule_ = std::make_unique<SolveSchedule>(cached_->schedule);
    solve_schedule_->sym = &*sym_;
    return;
  }
  SolveScheduleOptions opts;
  opts.rhs_block = options_.solve_rhs_block;
  solve_schedule_ = std::make_unique<SolveSchedule>(*sym_, opts);
}

std::uint64_t Solver::config_hash() const {
  std::uint64_t h = fnv1a_pod(static_cast<int>(options_.ordering));
  h = fnv1a_pod(options_.nd.nd_leaf_size, h);
  h = fnv1a_pod(options_.nd.leaf_minimum_degree, h);
  h = fnv1a_pod(options_.nd.partition.balance_tol, h);
  h = fnv1a_pod(options_.nd.partition.coarse_target, h);
  h = fnv1a_pod(options_.nd.partition.fm_passes, h);
  h = fnv1a_pod(options_.nd.partition.attempts, h);
  h = fnv1a_pod(options_.nd.seed, h);
  h = fnv1a_pod(options_.amalgamation.enable, h);
  h = fnv1a_pod(options_.amalgamation.relax_small, h);
  h = fnv1a_pod(options_.amalgamation.relax_ratio, h);
  // The parallel ND engine produces a different (equal-quality) ordering
  // than the sequential one, deterministically for a fixed seed regardless
  // of pool size — so the engine choice is structure-affecting, the thread
  // count is not.
  const bool parallel_nd =
      options_.ordering == SolverOptions::Ordering::kNestedDissection &&
      options_.threads > 1;
  h = fnv1a_pod(parallel_nd, h);
  return h;
}

void Solver::build_value_map(const SparseMatrix& lower) {
  const SparseMatrix& a = sym_->a;
  value_map_.resize(a.values.size());
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t q = a.col_ptr[j]; q < a.col_ptr[j + 1]; ++q) {
      const index_t oi = total_perm_[a.row_ind[q]];
      const index_t oj = total_perm_[j];
      // The input stores the lower triangle: column min(oi,oj), row
      // max(oi,oj), row indices sorted within the column.
      const index_t c = std::min(oi, oj);
      const index_t r = std::max(oi, oj);
      const auto begin = lower.row_ind.begin() + lower.col_ptr[c];
      const auto end = lower.row_ind.begin() + lower.col_ptr[c + 1];
      const auto it = std::lower_bound(begin, end, r);
      PARFACT_CHECK_MSG(it != end && *it == r,
                        "analyze(): permuted entry missing from input");
      value_map_[static_cast<std::size_t>(q)] =
          static_cast<index_t>(it - lower.row_ind.begin());
    }
  }
}

void Solver::analyze(const SparseMatrix& lower) {
  WallTimer timer;
  PARFACT_CHECK(lower.rows == lower.cols);
  original_lower_ = lower;
  factor_.reset();
  ooc_factor_.reset();
  solve_schedule_.reset();
  reservation_.reset();
  cached_.reset();

  // The serving counters are cumulative per Solver and survive the
  // per-analyze report reset below.
  const count_t cache_hits = report_.symbolic_cache_hits;
  const count_t cache_misses = report_.symbolic_cache_misses;
  const count_t refactorizes = report_.refactorizes;
  report_ = SolverReport{};
  report_.symbolic_cache_hits = cache_hits;
  report_.symbolic_cache_misses = cache_misses;
  report_.refactorizes = refactorizes;

  SymbolicCache* cache = options_.symbolic_cache;
  PatternKey key;
  if (cache != nullptr) {
    key = pattern_key(lower, config_hash());
    if (std::shared_ptr<const CachedAnalysis> entry = cache->lookup(key)) {
      // Hit: adopt the cached structure (copy — the entry stays immutable
      // and shared) and scatter this matrix's values into place. Pure value
      // permutation ⇒ bitwise identical to a cold analyze of `lower`.
      sym_.emplace(entry->sym);
      total_perm_ = entry->total_perm;
      value_map_ = entry->value_map;
      for (std::size_t q = 0; q < value_map_.size(); ++q) {
        sym_->a.values[q] = lower.values[value_map_[q]];
      }
      cached_ = std::move(entry);
      ++report_.symbolic_cache_hits;
      report_.n = lower.rows;
      report_.nnz_a = lower.nnz();
      report_.nnz_factor = sym_->nnz_strict;
      report_.factor_flops = sym_->total_flops;
      report_.n_supernodes = sym_->n_supernodes;
      report_.analyze_seconds = timer.seconds();
      return;
    }
    ++report_.symbolic_cache_misses;
  }

  // Fill-reducing permutation (new -> old).
  std::vector<index_t> fill_perm;
  switch (options_.ordering) {
    case SolverOptions::Ordering::kNestedDissection:
      if (options_.threads > 1) {
        if (options_.shared_pool != nullptr) {
          fill_perm = nested_dissection_parallel(
              graph_from_pattern(lower), options_.nd, *options_.shared_pool);
        } else {
          ThreadPool pool(options_.threads);
          fill_perm = nested_dissection_parallel(graph_from_pattern(lower),
                                                 options_.nd, pool);
        }
      } else {
        fill_perm =
            nested_dissection(graph_from_pattern(lower), options_.nd);
      }
      break;
    case SolverOptions::Ordering::kMinimumDegree:
      fill_perm = minimum_degree(graph_from_pattern(lower));
      break;
    case SolverOptions::Ordering::kRcm:
      fill_perm = rcm(graph_from_pattern(lower));
      break;
    case SolverOptions::Ordering::kNatural:
      fill_perm.resize(static_cast<std::size_t>(lower.rows));
      for (index_t i = 0; i < lower.rows; ++i) fill_perm[i] = i;
      break;
  }

  const SparseMatrix permuted =
      lower_triangle(permute_symmetric(symmetrize_full(lower), fill_perm));
  sym_.emplace(parfact::analyze(permuted, options_.amalgamation));

  // Compose: postordered index -> fill index -> original index.
  total_perm_.resize(static_cast<std::size_t>(lower.rows));
  for (index_t k = 0; k < lower.rows; ++k) {
    total_perm_[k] = fill_perm[sym_->post[k]];
  }
  PARFACT_CHECK(is_permutation(total_perm_));
  build_value_map(lower);

  const double seconds = timer.seconds();
  if (cache != nullptr) {
    SymbolicFactor zeroed = *sym_;
    std::fill(zeroed.a.values.begin(), zeroed.a.values.end(), 0.0);
    SolveScheduleOptions sopts;
    sopts.rhs_block = options_.solve_rhs_block;
    // insert() returns the incumbent if another thread analyzed the same
    // pattern concurrently; either entry is valid (the analysis is
    // deterministic), and keeping the winner maximizes sharing.
    cached_ = cache->insert(
        key, std::make_shared<CachedAnalysis>(std::move(zeroed), total_perm_,
                                              value_map_, sopts, seconds));
  }

  report_.n = lower.rows;
  report_.nnz_a = lower.nnz();
  report_.nnz_factor = sym_->nnz_strict;
  report_.factor_flops = sym_->total_flops;
  report_.n_supernodes = sym_->n_supernodes;
  report_.analyze_seconds = seconds;
}

Status Solver::factorize() {
  PARFACT_CHECK_MSG(sym_.has_value(), "factorize() before analyze()");
  // Reset factor state up front so a failed run leaves no stale factor and
  // releases the previous run's reservation before re-admission.
  factor_.reset();
  ooc_factor_.reset();
  solve_schedule_.reset();
  reservation_.reset();
  factor_checksums_ = FactorChecksums{};
  report_.abft_checks = 0;
  report_.abft_detections = 0;
  report_.fronts_recomputed = 0;
  report_.corruption_detected = false;
  report_.verify_residual = 0.0;

  if (options_.inject_sdc.has_value() &&
      options_.inject_sdc->site != SdcSite::kStoredFactor &&
      !options_.abft) {
    return Status::failure(
        StatusCode::kInvalidInput,
        "inject_sdc with a factorization site requires options.abft — "
        "without the checksum-carrying engine the flip would be a silent "
        "wrong answer");
  }
  if (options_.abft) {
    Status status = factorize_abft();
    if (status.failed()) return status;
    if (options_.inject_sdc.has_value() &&
        options_.inject_sdc->site == SdcSite::kStoredFactor &&
        factor_.has_value()) {
      inject_factor_bitflip(*sym_, *factor_, *options_.inject_sdc);
    }
    return status;
  }
  budget_ = std::make_unique<ResourceBudget>(options_.memory_budget_bytes);

  GovernedOptions gopts;
  gopts.kind = options_.factor_kind;
  gopts.pivot.boost = options_.static_pivoting;
  gopts.pivot.threshold = options_.pivot_threshold;
  gopts.two_phase =
      options_.factor_engine == SolverOptions::FactorEngine::kTwoPhase;
  gopts.spill_path = spill_path();
  gopts.cancel = arm_cancel_scope();

  std::unique_ptr<ThreadPool> pool;
  if (options_.threads > 1) {
    if (options_.shared_pool != nullptr) {
      gopts.pool = options_.shared_pool;
    } else {
      pool = std::make_unique<ThreadPool>(options_.threads);
      gopts.pool = pool.get();
    }
  }
  GovernedFactorizeResult result =
      multifrontal_factorize_governed(*sym_, *budget_, gopts);
  // Fresh cancellation scope: a cancel()/deadline never poisons later calls.
  cancel_source_ = CancelSource();

  report_.admission = result.admission;
  report_.peak_bytes = budget_->peak_bytes();
  report_.bytes_spilled = result.bytes_spilled;
  report_.factor_seconds = result.stats.seconds;
  report_.peak_update_bytes = result.stats.peak_update_bytes;
  report_.pivot_perturbations = result.stats.pivot_perturbations;

  if (result.status.failed()) {
    // Preserve the historical contract: a pivot breakdown (non-SPD input,
    // or boost could not rescue the pivot) throws as before. Only the
    // governance codes degrade to a returned Status.
    if (result.status.code == StatusCode::kBreakdown) {
      throw StatusError(result.status);
    }
    return result.status;
  }
  if (result.factor.has_value()) {
    factor_.emplace(std::move(*result.factor));
    build_solve_schedule();  // streamed OOC sweeps don't use the schedule
    if (options_.inject_sdc.has_value() &&
        options_.inject_sdc->site == SdcSite::kStoredFactor) {
      inject_factor_bitflip(*sym_, *factor_, *options_.inject_sdc);
    }
  } else {
    ooc_factor_.emplace(std::move(*result.ooc));
  }
  reservation_ = std::move(result.reservation);
  return result.status;
}

Status Solver::refactorize(std::span<const real_t> new_values) {
  PARFACT_CHECK_MSG(sym_.has_value(), "refactorize() before analyze()");
  if (new_values.size() != original_lower_.values.size()) {
    std::ostringstream os;
    os << "refactorize: value array has " << new_values.size()
       << " entries, the analyzed matrix stores "
       << original_lower_.values.size() << " nonzeros";
    return Status::failure(StatusCode::kInvalidInput, os.str());
  }
  ++report_.refactorizes;
  std::copy(new_values.begin(), new_values.end(),
            original_lower_.values.begin());
  // Same pure value permutation the analyze paths use — the postordered
  // matrix now holds exactly what a cold analyze of the new values would.
  for (std::size_t q = 0; q < value_map_.size(); ++q) {
    sym_->a.values[q] = original_lower_.values[value_map_[q]];
  }

  // Fast path: the previous run left an in-core factor and no feature that
  // needs its own engine (ABFT checksums, admission ladder, fault
  // injection) is active — re-run the numeric phase into the existing
  // allocation. Anything else falls through to the full factorize(), which
  // composes with governance/ABFT/OOC unchanged (analyze is never re-run).
  if (options_.abft || options_.memory_budget_bytes > 0 ||
      options_.inject_sdc.has_value() || !factor_.has_value()) {
    return factorize();
  }

  factor_checksums_ = FactorChecksums{};
  report_.abft_checks = 0;
  report_.abft_detections = 0;
  report_.fronts_recomputed = 0;
  report_.corruption_detected = false;
  report_.verify_residual = 0.0;
  FactorStats stats;
  PivotPolicy pivot;
  pivot.boost = options_.static_pivoting;
  pivot.threshold = options_.pivot_threshold;
  const CancelToken cancel = arm_cancel_scope();
  try {
    if (options_.threads > 1) {
      std::unique_ptr<ThreadPool> owned;
      ThreadPool* pool = options_.shared_pool;
      if (pool == nullptr) {
        owned = std::make_unique<ThreadPool>(options_.threads);
        pool = owned.get();
      }
      if (options_.factor_engine == SolverOptions::FactorEngine::kTwoPhase) {
        multifrontal_refactor_two_phase(*sym_, *factor_, *pool, &stats,
                                        options_.factor_kind, kCoopFrontFlops,
                                        pivot, cancel);
      } else {
        multifrontal_refactor_parallel(*sym_, *factor_, *pool, &stats,
                                       options_.factor_kind, kCoopFrontFlops,
                                       pivot, cancel);
      }
    } else {
      multifrontal_refactor(*sym_, *factor_, &stats, options_.factor_kind,
                            pivot, cancel);
    }
  } catch (const StatusError& e) {
    cancel_source_ = CancelSource();
    // The interrupted panels hold partial results; drop them so a later
    // refactorize/factorize starts from the no-factor state.
    factor_.reset();
    solve_schedule_.reset();
    if (e.status().code == StatusCode::kBreakdown) throw;
    return e.status();
  }
  cancel_source_ = CancelSource();
  report_.admission = Admission::kUnlimited;
  report_.peak_bytes = 0;
  report_.bytes_spilled = 0;
  report_.factor_seconds = stats.seconds;
  report_.peak_update_bytes = stats.peak_update_bytes;
  report_.pivot_perturbations = stats.pivot_perturbations;
  if (solve_schedule_ == nullptr) build_solve_schedule();
  return Status::success(stats.pivot_perturbations);
}

Status Solver::spill_factor() {
  PARFACT_CHECK_MSG(sym_.has_value(), "spill_factor() before analyze()");
  if (ooc_factor_.has_value()) return Status::success();
  if (!factor_.has_value()) {
    return Status::failure(StatusCode::kInvalidInput,
                           "spill_factor(): no factor to spill");
  }
  OocCholeskyFactor ooc(*sym_, spill_path());
  for (index_t s = 0; s < sym_->n_supernodes; ++s) {
    ooc.write_panel(s, factor_->panel(s));
  }
  if (factor_->is_ldlt()) {
    const std::span<const real_t> d = factor_->diag();
    std::copy(d.begin(), d.end(), ooc.allocate_diag().begin());
  }
  ooc_factor_.emplace(std::move(ooc));
  factor_.reset();
  solve_schedule_.reset();
  reservation_.reset();
  factor_checksums_ = FactorChecksums{};
  report_.bytes_spilled = ooc_factor_->bytes_on_disk();
  return Status::success();
}

Status Solver::unspill_factor() {
  PARFACT_CHECK_MSG(sym_.has_value(), "unspill_factor() before analyze()");
  if (factor_.has_value()) return Status::success();
  if (!ooc_factor_.has_value()) {
    return Status::failure(StatusCode::kInvalidInput,
                           "unspill_factor(): no spilled factor to load");
  }
  try {
    CholeskyFactor factor(*sym_);
    for (index_t s = 0; s < sym_->n_supernodes; ++s) {
      ooc_factor_->read_panel(s, factor.panel(s));
    }
    if (ooc_factor_->is_ldlt()) {
      const std::span<const real_t> d = ooc_factor_->diag();
      std::copy(d.begin(), d.end(), factor.allocate_diag().begin());
    }
    factor_.emplace(std::move(factor));
  } catch (const StatusError& e) {
    // Checksum-verified read failed: keep the spilled state (still usable
    // for streamed solves — the corruption may be panel-local) and let the
    // caller decide (SolverService falls back to refactorize).
    return e.status();
  }
  ooc_factor_.reset();
  build_solve_schedule();
  return Status::success();
}

std::size_t Solver::factor_bytes() const {
  if (factor_.has_value()) {
    std::size_t bytes =
        static_cast<std::size_t>(factor_->stored_entries()) * sizeof(real_t);
    if (factor_->is_ldlt()) {
      bytes += static_cast<std::size_t>(sym_->n) * sizeof(real_t);
    }
    return bytes;
  }
  if (ooc_factor_.has_value()) {
    return static_cast<std::size_t>(ooc_factor_->bytes_on_disk());
  }
  return 0;
}

Status Solver::factorize_abft() {
  if (options_.memory_budget_bytes > 0) {
    return Status::failure(
        StatusCode::kInvalidInput,
        "options.abft is incompatible with memory_budget_bytes: the "
        "checksum-carrying engine is the serial in-core path and has no "
        "admission ladder");
  }
  FactorStats stats;
  PivotPolicy pivot;
  pivot.boost = options_.static_pivoting;
  pivot.threshold = options_.pivot_threshold;
  AbftOptions aopts;
  aopts.tolerance = options_.abft_tolerance;
  if (options_.inject_sdc.has_value() &&
      options_.inject_sdc->site != SdcSite::kStoredFactor) {
    aopts.inject = &*options_.inject_sdc;
  }
  Status status;
  try {
    factor_.emplace(multifrontal_factor_abft(*sym_, &stats,
                                             options_.factor_kind, pivot,
                                             aopts, &factor_checksums_,
                                             arm_cancel_scope()));
    status = Status::success(stats.pivot_perturbations);
  } catch (const StatusError& e) {
    cancel_source_ = CancelSource();
    // Historical contract: a pivot breakdown still throws; corruption,
    // cancellation and deadlines come back as diagnosed Status values.
    if (e.status().code == StatusCode::kBreakdown) throw;
    factor_checksums_ = FactorChecksums{};
    return e.status();
  }
  cancel_source_ = CancelSource();
  report_.factor_seconds = stats.seconds;
  report_.peak_update_bytes = stats.peak_update_bytes;
  report_.pivot_perturbations = stats.pivot_perturbations;
  report_.abft_checks = stats.abft_checks;
  report_.abft_detections = stats.abft_detections;
  report_.fronts_recomputed = stats.fronts_recomputed;
  report_.corruption_detected = stats.abft_detections > 0;
  report_.admission = Admission::kUnlimited;
  build_solve_schedule();
  return status;
}

Status Solver::factorize_and_solve(std::span<const real_t> b, index_t nrhs,
                                   std::vector<real_t>& x) {
  PARFACT_CHECK_MSG(sym_.has_value(), "factorize_and_solve() before analyze()");
  const index_t n = sym_->n;
  try {
    check_rhs(b.size(), nrhs, "factorize_and_solve");
  } catch (const StatusError& e) {
    return e.status();  // Status-returning entry point: no throw on bad input
  }
  // A governed run (budget/deadline) takes the factorize() ladder — the
  // fused graph has no admission control — and the serial path has no
  // fusion to offer either way.
  if (options_.threads <= 1 || options_.memory_budget_bytes > 0 ||
      options_.deadline_seconds > 0.0) {
    const Status status = factorize();
    if (status.failed()) return status;
    x = solve_multi(b, nrhs);
    return status;
  }

  FactorStats stats;
  PivotPolicy pivot;
  pivot.boost = options_.static_pivoting;
  pivot.threshold = options_.pivot_threshold;
  // Stale at-rest checksums from a previous ABFT factorize() must not judge
  // the new factor.
  factor_checksums_ = FactorChecksums{};
  build_solve_schedule();

  // Permute into the postordered space, run the fused graph (factor tasks +
  // first-block forward-solve tasks), permute the solutions back.
  std::vector<real_t> pb(b.size());
  for (index_t c = 0; c < nrhs; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * n;
    for (index_t kk = 0; kk < n; ++kk) pb[off + kk] = b[off + total_perm_[kk]];
  }
  factor_.emplace(multifrontal_factor_and_solve(
      *sym_, MatrixView{pb.data(), n, nrhs, n}, *solve_schedule_,
      solve_workspace_, *solve_pool(), &stats, options_.factor_kind,
      kCoopFrontFlops, pivot));
  x.resize(b.size());
  for (index_t c = 0; c < nrhs; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * n;
    for (index_t kk = 0; kk < n; ++kk) x[off + total_perm_[kk]] = pb[off + kk];
  }
  report_.factor_seconds = stats.seconds;
  report_.peak_update_bytes = stats.peak_update_bytes;
  report_.pivot_perturbations = stats.pivot_perturbations;
  return Status::success(stats.pivot_perturbations);
}

Status Solver::factorize_distributed(int n_ranks,
                                     const mpsim::MachineModel& model,
                                     const mpsim::FaultPlan& faults) {
  PARFACT_CHECK_MSG(sym_.has_value(),
                    "factorize_distributed() before analyze()");
  PARFACT_CHECK(n_ranks >= 1);
  WallTimer timer;
  PivotPolicy pivot;
  pivot.boost = options_.static_pivoting;
  pivot.threshold = options_.pivot_threshold;
  const FrontMap map =
      build_front_map(*sym_, n_ranks, MappingStrategy::kSubtree2d);
  // A Solver deadline doubles as the simulator's wall-clock watchdog: a
  // livelocked run comes back as kCommTimeout instead of hanging the host.
  mpsim::FaultPlan governed_faults = faults;
  if (options_.deadline_seconds > 0.0 &&
      governed_faults.run_timeout_host_seconds <= 0.0) {
    governed_faults.run_timeout_host_seconds = options_.deadline_seconds;
  }
  DistFactorResult result = distributed_factor_checked(
      *sym_, map, model, options_.factor_kind, pivot, governed_faults,
      options_.resilience);
  report_.rank_failures_recovered = result.run.ranks_recovered;
  report_.recovery_virtual_seconds = result.run.recovery_overhead_seconds;
  report_.comm_idle_wait_seconds = result.run.idle_wait_seconds;
  report_.comm_overlap_efficiency = result.run.overlap_efficiency;
  report_.max_in_flight_messages = result.run.max_in_flight_messages;
  report_.comm_wait_any_calls = 0;
  for (const count_t c : result.run.wait_any_calls) {
    report_.comm_wait_any_calls += c;
  }
  report_.comm_messages_out_of_order =
      result.run.messages_completed_out_of_order;
  // The distributed factor carries no at-rest checksums; drop any armed by
  // a previous ABFT factorize() so verify_and_repair falls back to the full
  // recompute when asked to heal this factor.
  factor_checksums_ = FactorChecksums{};
  if (result.status.failed()) {
    factor_.reset();
    solve_schedule_.reset();
    return result.status;
  }
  factor_.emplace(std::move(result.factor));
  build_solve_schedule();
  report_.factor_seconds = timer.seconds();
  report_.pivot_perturbations = result.status.perturbations;
  return result.status;
}

void Solver::solve_postordered(MatrixView x) const {
  if (factor_.has_value()) {
    PARFACT_CHECK(solve_schedule_ != nullptr);
    solve_in_place(*factor_, x, *solve_schedule_, solve_workspace_,
                   solve_pool());
  } else {
    ooc_solve_in_place(*ooc_factor_, x);
  }
}

std::vector<real_t> Solver::solve(std::span<const real_t> b) const {
  // One sweep implementation: the 1-RHS facade is the blocked path.
  return solve_multi(b, 1);
}

std::vector<real_t> Solver::solve_multi(std::span<const real_t> b,
                                        index_t nrhs) const {
  PARFACT_CHECK_MSG(has_factor(), "solve() before factorize()");
  check_rhs(b.size(), nrhs, "solve_multi");
  std::vector<real_t> x = solve_permuted(b, nrhs);
  if (options_.verify != SolverOptions::Verify::kOff) {
    verify_and_repair(b, nrhs, x);
  }
  return x;
}

std::vector<real_t> Solver::solve_permuted(std::span<const real_t> b,
                                           index_t nrhs) const {
  const index_t n = sym_->n;
  std::vector<real_t> pb(b.size());
  for (index_t c = 0; c < nrhs; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * n;
    for (index_t kk = 0; kk < n; ++kk) pb[off + kk] = b[off + total_perm_[kk]];
  }
  solve_postordered(MatrixView{pb.data(), n, nrhs, n});
  std::vector<real_t> x(b.size());
  for (index_t c = 0; c < nrhs; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * n;
    for (index_t kk = 0; kk < n; ++kk) x[off + total_perm_[kk]] = pb[off + kk];
  }
  return x;
}

void Solver::verify_and_repair(std::span<const real_t> b, index_t nrhs,
                               std::vector<real_t>& x) const {
  const index_t n = sym_->n;
  const index_t check_cols =
      options_.verify == SolverOptions::Verify::kFull ? nrhs : 1;
  const auto measure = [&](const std::vector<real_t>& xs) {
    real_t worst = 0.0;
    for (index_t c = 0; c < check_cols; ++c) {
      const std::size_t off = static_cast<std::size_t>(c) * n;
      worst = std::max(
          worst, componentwise_residual(
                     original_lower_,
                     {xs.data() + off, static_cast<std::size_t>(n)},
                     {b.data() + off, static_cast<std::size_t>(n)}));
    }
    return worst;
  };
  real_t res = measure(x);
  report_.verify_residual = res;
  if (res <= options_.verify_tolerance) return;
  report_.corruption_detected = true;

  // Detect → localize → recompute. With at-rest checksums armed (ABFT
  // factorize) the corrupt supernode is found and only its subtree is
  // re-run; otherwise (or when the checksums bless the factor because the
  // corruption predates them — e.g. a flip during a distributed run) the
  // whole factor is recomputed from the kept matrix. Either way the
  // repaired factor is bitwise identical to a clean run, and a result is
  // only returned once it verifies.
  PivotPolicy pivot;
  pivot.boost = options_.static_pivoting;
  pivot.threshold = options_.pivot_threshold;
  for (int attempt = 0; attempt < 2 && factor_.has_value(); ++attempt) {
    bool localized = false;
    if (!factor_checksums_.empty()) {
      index_t bad =
          verify_factor(*sym_, *factor_, factor_checksums_,
                        options_.abft_tolerance);
      index_t guard = 0;
      count_t healed = 0;
      while (bad != kNone && guard++ <= sym_->n_supernodes) {
        healed += recompute_subtree(*sym_, bad, options_.factor_kind, pivot,
                                    *factor_, &factor_checksums_);
        bad = verify_factor(*sym_, *factor_, factor_checksums_,
                            options_.abft_tolerance);
      }
      if (healed > 0) {
        report_.fronts_recomputed += healed;
        localized = true;
      } else {
        // The checksums consider the factor intact: they were computed
        // over already-corrupt data. Drop them and recompute everything.
        factor_checksums_ = FactorChecksums{};
      }
    }
    if (!localized) {
      factor_.emplace(
          multifrontal_factor(*sym_, nullptr, options_.factor_kind, pivot));
      report_.fronts_recomputed += sym_->n_supernodes;
    }
    x = solve_permuted(b, nrhs);
    res = measure(x);
    report_.verify_residual = res;
    if (res <= options_.verify_tolerance) return;
  }
  std::ostringstream os;
  os << "post-solve verification failed: componentwise residual " << res
     << " exceeds tolerance " << options_.verify_tolerance
     << " and factor repair did not restore a verifying solution";
  throw StatusError(
      Status::failure(StatusCode::kDataCorruption, os.str()));
}

std::vector<real_t> Solver::solve_batch(std::span<const real_t> b,
                                        index_t nrhs) const {
  PARFACT_CHECK_MSG(has_factor(), "solve_batch() before factorize()");
  const index_t n = sym_->n;
  check_rhs(b.size(), nrhs, "solve_batch");
  WallTimer timer;
  std::vector<real_t> pb(b.size());
  for (index_t c = 0; c < nrhs; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * n;
    for (index_t kk = 0; kk < n; ++kk) pb[off + kk] = b[off + total_perm_[kk]];
  }
  MatrixView xv{pb.data(), n, nrhs, n};
  // pb becomes x in place; keep the permuted right-hand sides for the
  // batched refinement pass.
  const std::vector<real_t> prhs =
      options_.batch_refinement_passes > 0 ? pb : std::vector<real_t>{};
  solve_postordered(xv);
  real_t residual = 0.0;
  if (options_.batch_refinement_passes > 0) {
    // Refine the whole batch at once: one SpMV per column per pass plus
    // one blocked correction solve per pass.
    residual =
        factor_.has_value()
            ? refine_block(sym_->a, *factor_,
                           ConstMatrixView{prhs.data(), n, nrhs, n}, xv,
                           *solve_schedule_, solve_workspace_, solve_pool(),
                           options_.batch_refinement_passes)
            : ooc_refine_block(sym_->a, *ooc_factor_,
                               ConstMatrixView{prhs.data(), n, nrhs, n}, xv,
                               options_.batch_refinement_passes);
  }
  std::vector<real_t> x(b.size());
  for (index_t c = 0; c < nrhs; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * n;
    for (index_t kk = 0; kk < n; ++kk) x[off + total_perm_[kk]] = pb[off + kk];
  }
  const double seconds = timer.seconds();
  const index_t wb = options_.solve_rhs_block;
  // OOC sweeps stream the whole factor once per sweep (no RHS blocking,
  // no workspace arena), so bytes/solve reduces to panel traffic.
  const double n_blocks = factor_.has_value()
                              ? static_cast<double>((nrhs + wb - 1) / wb)
                              : 1.0;
  const double sweeps = n_blocks * (1.0 + options_.batch_refinement_passes);
  const double stored =
      factor_.has_value() ? static_cast<double>(factor_->stored_entries())
                          : static_cast<double>(ooc_factor_->bytes_on_disk()) /
                                sizeof(real_t);
  const double panel_bytes = 2.0 * stored * sizeof(real_t);
  const double arena_bytes =
      factor_.has_value()
          ? 2.0 *
                static_cast<double>(solve_schedule_->arena_entries_per_rhs()) *
                static_cast<double>(nrhs) * sizeof(real_t) *
                (1.0 + options_.batch_refinement_passes)
          : 0.0;
  report_.batch_rhs = nrhs;
  report_.batch_seconds = seconds;
  report_.batch_solves_per_second =
      seconds > 0.0 ? static_cast<double>(nrhs) / seconds : 0.0;
  report_.batch_bytes_per_solve =
      (sweeps * panel_bytes + arena_bytes) / static_cast<double>(nrhs);
  report_.batch_residual = residual;
  return x;
}

std::vector<real_t> Solver::solve_refined(std::span<const real_t> b) const {
  PARFACT_CHECK_MSG(has_factor(), "solve() before factorize()");
  const index_t n = sym_->n;
  check_rhs(b.size(), 1, "solve_refined");
  // Refine in the postordered space, where the factor lives.
  std::vector<real_t> pb(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) pb[k] = b[total_perm_[k]];
  std::vector<real_t> px = pb;
  solve_postordered(MatrixView{px.data(), n, 1, n});
  if (factor_.has_value()) {
    (void)iterative_refinement(sym_->a, *factor_, pb, px, *solve_schedule_,
                               solve_workspace_, solve_pool(),
                               options_.refinement_steps);
  } else {
    (void)ooc_refine_block(sym_->a, *ooc_factor_,
                           ConstMatrixView{pb.data(), n, 1, n},
                           MatrixView{px.data(), n, 1, n},
                           options_.refinement_steps);
  }
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) x[total_perm_[k]] = px[k];
  return x;
}

real_t Solver::residual(std::span<const real_t> x,
                        std::span<const real_t> b) const {
  return relative_residual(original_lower_, x, b);
}

const char* solve_path_name(SolvePath path) {
  switch (path) {
    case SolvePath::kNone: return "none";
    case SolvePath::kDirect: return "direct";
    case SolvePath::kRefined: return "refined";
    case SolvePath::kIterativeFallback: return "iterative-fallback";
  }
  return "unknown";
}

RobustSolveResult Solver::solve_robust(std::span<const real_t> b) const {
  PARFACT_CHECK_MSG(has_factor(), "solve_robust() before factorize()");
  const Status factor_status =
      Status::success(report_.pivot_perturbations);
  RobustSolveResult result;

  // Cheapest first: plain direct solve.
  result.x = solve(b);
  result.path = SolvePath::kDirect;
  result.residual = residual(result.x, b);
  if (result.residual <= options_.target_residual) {
    result.status = factor_status;
    return result;
  }

  // Iterative refinement against the original matrix.
  {
    std::vector<real_t> refined = solve_refined(b);
    const real_t res = residual(refined, b);
    if (res < result.residual) {
      result.x = std::move(refined);
      result.residual = res;
      result.path = SolvePath::kRefined;
    }
    if (result.residual <= options_.target_residual) {
      result.status = factor_status;
      return result;
    }
  }

  // Last resort: IC(0)-preconditioned CG on the original matrix,
  // warm-started from the best direct answer. IC(0) runs with pivot
  // boosting so a perturbed/indefinite-leaning matrix still yields a
  // usable preconditioner; if it breaks down anyway, fall back to
  // unpreconditioned CG.
  {
    std::vector<real_t> x_cg = result.x;
    std::optional<SparseMatrix> ic0;
    try {
      PivotPolicy pivot;
      pivot.boost = true;
      pivot.threshold = options_.pivot_threshold;
      count_t ic0_perturbations = 0;
      ic0.emplace(
          incomplete_cholesky0(original_lower_, pivot, &ic0_perturbations));
    } catch (const Error&) {
      ic0.reset();
    }
    try {
      const CgResult cg = conjugate_gradient(
          original_lower_, b, x_cg, ic0 ? &*ic0 : nullptr,
          options_.cg_max_iterations, options_.target_residual);
      result.iterations = cg.iterations;
      const real_t res = residual(x_cg, b);
      if (res < result.residual) {
        result.x = std::move(x_cg);
        result.residual = res;
        result.path = SolvePath::kIterativeFallback;
      }
    } catch (const Error&) {
      // CG hit an indefinite direction: keep the best answer so far.
    }
  }

  if (result.residual <= options_.target_residual) {
    result.status = factor_status;
  } else {
    result.status = Status::failure(
        StatusCode::kNoConvergence,
        "solve_robust: no escalation path reached the target residual");
    result.status.perturbations = factor_status.perturbations;
  }
  return result;
}

real_t Solver::condition_estimate() const {
  PARFACT_CHECK_MSG(factor_.has_value(),
                    "condition_estimate() before factorize()");
  return estimate_condition_1(sym_->a, *factor_);
}

const SymbolicFactor& Solver::symbolic() const {
  PARFACT_CHECK(sym_.has_value());
  return *sym_;
}

const CholeskyFactor& Solver::factor() const {
  PARFACT_CHECK(factor_.has_value());
  return *factor_;
}

const OocCholeskyFactor& Solver::ooc_factor() const {
  PARFACT_CHECK_MSG(ooc_factor_.has_value(),
                    "ooc_factor(): last factorization did not spill");
  return *ooc_factor_;
}

SolveBatch::SolveBatch(const Solver& solver)
    : solver_(&solver), n_(solver.symbolic().n) {}

index_t SolveBatch::add(std::span<const real_t> b) {
  if (static_cast<index_t>(b.size()) != n_) {
    std::ostringstream os;
    os << "SolveBatch::add: right-hand side has " << b.size()
       << " entries, matrix order is " << n_;
    throw_invalid(os.str());
  }
  solved_ = false;
  b_.insert(b_.end(), b.begin(), b.end());
  return nrhs_++;
}

void SolveBatch::solve() {
  if (nrhs_ <= 0) {
    throw_invalid("SolveBatch::solve: batch holds no right-hand sides");
  }
  x_ = solver_->solve_batch(b_, nrhs_);
  solved_ = true;
}

std::span<const real_t> SolveBatch::solution(index_t i) const {
  PARFACT_CHECK_MSG(solved_, "SolveBatch::solution() before solve()");
  PARFACT_CHECK(i >= 0 && i < nrhs_);
  return {x_.data() + static_cast<std::size_t>(i) * n_,
          static_cast<std::size_t>(n_)};
}

void SolveBatch::reset() {
  b_.clear();
  x_.clear();
  nrhs_ = 0;
  solved_ = false;
}

SymbolicFactor analyze_nested_dissection(const SparseMatrix& lower,
                                         const OrderingOptions& nd,
                                         const AmalgamationOptions& amalg) {
  const std::vector<index_t> perm =
      nested_dissection(graph_from_pattern(lower), nd);
  return analyze(
      lower_triangle(permute_symmetric(symmetrize_full(lower), perm)), amalg);
}

}  // namespace parfact
