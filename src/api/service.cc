#include "api/service.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "support/error.h"
#include "support/thread_pool.h"
#include "symbolic/working_set.h"

namespace parfact {
namespace {

Status unknown_session(SessionId id) {
  std::ostringstream os;
  os << "unknown session id " << id;
  return Status::failure(StatusCode::kInvalidInput, os.str());
}

}  // namespace

/// One open matrix lifecycle. The mutex serializes every job on the
/// session — the no-torn-reads guarantee — while the atomic ticks let the
/// LRU and fairness machinery read recency without taking it.
struct SolverService::Session {
  std::mutex mu;
  std::unique_ptr<Solver> solver;
  Reservation reservation;  ///< resident-factor hold against the service budget
  std::atomic<std::uint64_t> last_touch{0};
  std::atomic<std::uint64_t> last_served{0};
  SessionId id = 0;
  bool ldlt = false;
};

SolverService::SolverService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(std::max<std::size_t>(1, options_.symbolic_cache_entries)),
      budget_(options_.factor_cache_bytes) {
  if (options_.solver.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.solver.threads);
  }
}

SolverService::~SolverService() = default;

std::uint64_t SolverService::next_tick() {
  return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::shared_ptr<SolverService::Session> SolverService::find(
    SessionId id) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

void SolverService::gate_enter(std::uint64_t last_served, std::uint64_t seq) {
  if (options_.max_concurrent_jobs <= 0) return;
  std::unique_lock<std::mutex> lock(gate_mu_);
  gate_waiters_.push_back({last_served, seq});
  gate_cv_.wait(lock, [&] {
    if (gate_active_ >= options_.max_concurrent_jobs) return false;
    // Fair admission: the waiter whose session was served least recently
    // goes first; arrival order breaks ties (and orders a session's own
    // jobs FIFO).
    for (const GateWaiter& w : gate_waiters_) {
      if (std::make_pair(w.last_served, w.seq) <
          std::make_pair(last_served, seq)) {
        return false;
      }
    }
    return true;
  });
  gate_waiters_.erase(
      std::find_if(gate_waiters_.begin(), gate_waiters_.end(),
                   [&](const GateWaiter& w) { return w.seq == seq; }));
  ++gate_active_;
}

void SolverService::gate_leave() {
  if (options_.max_concurrent_jobs <= 0) return;
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    --gate_active_;
  }
  gate_cv_.notify_all();
}

Status SolverService::with_session(
    SessionId id, const std::function<Status(Session&)>& fn) {
  const std::shared_ptr<Session> session = find(id);
  if (session == nullptr) return unknown_session(id);
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  gate_enter(session->last_served.load(std::memory_order_relaxed), seq);
  Status status;
  try {
    std::lock_guard<std::mutex> lock(session->mu);
    session->last_touch.store(next_tick(), std::memory_order_relaxed);
    status = fn(*session);
    session->last_served.store(next_tick(), std::memory_order_relaxed);
  } catch (...) {
    gate_leave();
    throw;
  }
  gate_leave();
  jobs_completed_.fetch_add(1, std::memory_order_relaxed);
  return status;
}

Status SolverService::open(const SparseMatrix& lower, SessionId& id) {
  auto session = std::make_shared<Session>();
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    session->id = next_id_++;
  }
  SolverOptions sopt = options_.solver;
  sopt.symbolic_cache = &cache_;
  sopt.shared_pool = pool_.get();
  {
    std::ostringstream os;
    os << (options_.spill_dir.empty() ? std::string("/tmp")
                                      : options_.spill_dir)
       << "/parfact_svc_" << static_cast<const void*>(this) << "_"
       << session->id << ".bin";
    sopt.spill_path = os.str();
  }
  session->ldlt = sopt.factor_kind == FactorKind::kLdlt;
  session->solver = std::make_unique<Solver>(std::move(sopt));
  try {
    session->solver->analyze(lower);
  } catch (const StatusError& e) {
    return e.status();
  } catch (const Error& e) {
    return Status::failure(StatusCode::kInvalidInput, e.what());
  }
  session->last_touch.store(next_tick(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    sessions_.emplace(session->id, session);
  }
  id = session->id;
  return Status::success();
}

Status SolverService::close(SessionId id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return unknown_session(id);
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // Serialize with (and wait out) any in-flight job before tearing down.
  std::lock_guard<std::mutex> lock(session->mu);
  session->reservation.reset();
  session->solver.reset();
  return Status::success();
}

void SolverService::prepare_capacity(Session& session) {
  session.reservation.reset();
  session.solver->set_memory_budget_bytes(
      options_.solver.memory_budget_bytes);
  if (!budget_.limited()) return;
  const std::size_t need =
      estimate_working_set(session.solver->symbolic(), session.ldlt)
          .factor_bytes;
  std::optional<Reservation> r = Reservation::acquire(budget_, need);
  while (!r.has_value()) {
    if (evict_lru(&session) == 0) break;
    r = Reservation::acquire(budget_, need);
  }
  if (r.has_value()) {
    session.reservation = std::move(*r);
    return;
  }
  if (need > budget_.limit_bytes()) {
    // The factor cannot be resident even with every other session evicted:
    // run this factorization under the remaining headroom so the solver's
    // own admission ladder degrades to its checksummed OOC spill or returns
    // a diagnosed kResourceExhausted.
    const std::size_t live = budget_.live_bytes();
    const std::size_t headroom =
        budget_.limit_bytes() > live ? budget_.limit_bytes() - live
                                     : std::size_t{1};
    session.solver->set_memory_budget_bytes(headroom);
    return;
  }
  // Transient contention: the bytes are held by sessions that are mid-job
  // (evict_lru skips anything it cannot try_lock). The factor does fit the
  // cache, so run in-core and let finish_factor() reconcile — it acquires
  // the hold once peers go idle, or spills this factor to disk. Punishing
  // the job with a starvation budget here would reject work that merely
  // raced a busy peer.
}

void SolverService::finish_factor(Session& session, const Status& status) {
  if (!budget_.limited()) return;
  if (status.failed() || !session.solver->has_factor() ||
      session.solver->factor_spilled()) {
    session.reservation.reset();
    return;
  }
  if (session.reservation.held()) return;
  // The factor landed in-core without a hold (e.g. a fast-path refactorize
  // after an earlier failure): account for it now, evicting colder
  // sessions, and spill it if the budget truly cannot carry it.
  const std::size_t need = session.solver->factor_bytes();
  std::optional<Reservation> r = Reservation::acquire(budget_, need);
  while (!r.has_value()) {
    if (evict_lru(&session) == 0) break;
    r = Reservation::acquire(budget_, need);
  }
  if (r.has_value()) {
    session.reservation = std::move(*r);
  } else {
    (void)session.solver->spill_factor();
  }
}

std::size_t SolverService::evict_lru(const Session* requester) {
  std::vector<std::shared_ptr<Session>> candidates;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    candidates.reserve(sessions_.size());
    for (const auto& [sid, s] : sessions_) {
      if (s.get() != requester) candidates.push_back(s);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const std::shared_ptr<Session>& a,
               const std::shared_ptr<Session>& b) {
              return a->last_touch.load(std::memory_order_relaxed) <
                     b->last_touch.load(std::memory_order_relaxed);
            });
  for (const std::shared_ptr<Session>& victim : candidates) {
    // try_lock: a session running a job is hot by definition — skip it
    // (and never deadlock with its job thread).
    std::unique_lock<std::mutex> lock(victim->mu, std::try_to_lock);
    if (!lock.owns_lock()) continue;
    if (victim->solver == nullptr || !victim->reservation.held()) continue;
    const std::size_t bytes = victim->reservation.bytes();
    if (victim->solver->spill_factor().failed()) continue;
    victim->reservation.reset();
    sessions_evicted_.fetch_add(1, std::memory_order_relaxed);
    return bytes;
  }
  return 0;
}

void SolverService::try_reload(Session& session) {
  if (!session.solver->factor_spilled()) return;
  const std::size_t need =
      estimate_working_set(session.solver->symbolic(), session.ldlt)
          .factor_bytes;
  std::optional<Reservation> r = Reservation::acquire(budget_, need);
  while (!r.has_value()) {
    if (evict_lru(&session) == 0) break;
    r = Reservation::acquire(budget_, need);
  }
  if (!r.has_value()) return;  // no room: keep streaming from disk
  Status status = session.solver->unspill_factor();
  if (status.code == StatusCode::kDataCorruption) {
    // The scratch file failed its checksums: the session still holds its
    // matrix values, so rebuild the factor instead of surfacing the fault.
    status = session.solver->factorize();
  }
  if (status.ok() && !session.solver->factor_spilled()) {
    session.reservation = std::move(*r);
  }
}

Status SolverService::factorize(SessionId id) {
  return with_session(id, [this](Session& session) {
    prepare_capacity(session);
    Status status;
    try {
      status = session.solver->factorize();
    } catch (const StatusError& e) {
      status = e.status();  // breakdown surfaces as data, service stays up
    }
    finish_factor(session, status);
    return status;
  });
}

Status SolverService::refactorize(SessionId id,
                                  std::span<const real_t> new_values) {
  return with_session(id, [this, new_values](Session& session) {
    refactorizes_.fetch_add(1, std::memory_order_relaxed);
    // Resident factor ⇒ the in-place fast path, same bytes, keep the hold.
    const bool fast = session.solver->has_factor() &&
                      !session.solver->factor_spilled();
    if (!fast) prepare_capacity(session);
    Status status;
    try {
      status = session.solver->refactorize(new_values);
    } catch (const StatusError& e) {
      status = e.status();
    }
    finish_factor(session, status);
    return status;
  });
}

Status SolverService::solve(SessionId id, std::span<const real_t> b,
                            std::vector<real_t>& x) {
  return with_session(id, [this, b, &x](Session& session) {
    if (!session.solver->has_factor()) {
      return Status::failure(StatusCode::kInvalidInput,
                             "solve before factorize on this session");
    }
    if (budget_.limited()) try_reload(session);
    try {
      x = session.solver->solve(b);
    } catch (const StatusError& e) {
      return e.status();
    }
    return Status::success(session.solver->report().pivot_perturbations);
  });
}

Status SolverService::solve_batch(SessionId id, std::span<const real_t> b,
                                  index_t nrhs, std::vector<real_t>& x) {
  return with_session(id, [this, b, nrhs, &x](Session& session) {
    if (!session.solver->has_factor()) {
      return Status::failure(StatusCode::kInvalidInput,
                             "solve_batch before factorize on this session");
    }
    if (budget_.limited()) try_reload(session);
    try {
      x = session.solver->solve_batch(b, nrhs);
    } catch (const StatusError& e) {
      return e.status();
    }
    return Status::success(session.solver->report().pivot_perturbations);
  });
}

Status SolverService::report(SessionId id, SolverReport& out) const {
  const std::shared_ptr<Session> session = find(id);
  if (session == nullptr) return unknown_session(id);
  std::lock_guard<std::mutex> lock(session->mu);
  out = session->solver->report();
  out.sessions_evicted =
      static_cast<count_t>(sessions_evicted_.load(std::memory_order_relaxed));
  out.factor_cache_bytes = budget_.live_bytes();
  return Status::success();
}

ServiceStats SolverService::stats() const {
  ServiceStats st;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    st.sessions_open = static_cast<count_t>(sessions_.size());
  }
  st.sessions_evicted =
      static_cast<count_t>(sessions_evicted_.load(std::memory_order_relaxed));
  st.symbolic_cache_hits = cache_.hits();
  st.symbolic_cache_misses = cache_.misses();
  st.refactorizes =
      static_cast<count_t>(refactorizes_.load(std::memory_order_relaxed));
  st.jobs_completed =
      static_cast<count_t>(jobs_completed_.load(std::memory_order_relaxed));
  st.factor_cache_bytes = budget_.live_bytes();
  return st;
}

}  // namespace parfact
