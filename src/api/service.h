// Multi-session serving engine: many concurrent solver sessions sharing
// one process — the deployment shape the symbolic-reuse work targets.
//
// A *session* is one matrix lifecycle: open(lower) analyzes (through the
// service's shared pattern-keyed SymbolicCache, so sessions with the same
// sparsity pattern pay for ordering + symbolic analysis once), then any mix
// of factorize / refactorize / solve / solve_batch jobs until close().
// All session jobs are Status-returning; an unknown id is a diagnosed
// kInvalidInput, never undefined behavior.
//
// Concurrency model: jobs on *different* sessions run concurrently (bounded
// by max_concurrent_jobs); jobs on *one* session serialize on the session's
// mutex, so a solve() racing a pending refactorize() on the same session
// never observes a torn factor — it simply runs before or after. Admission
// to the concurrency gate is fair: when jobs queue, the session served
// least recently goes first (FIFO within a session).
//
// Factor cache: factor_cache_bytes caps the total bytes of *resident*
// factors across sessions (transient factorization working memory is the
// per-solver memory_budget_bytes knob, not this one). When a factorization
// needs room, the least-recently-touched idle sessions are evicted — their
// factors spill to the checksummed OOC scratch path, still solvable by
// streaming. Touching a spilled session reloads it in-core when room
// exists (checksum-verified; a corrupted scratch file triggers a
// transparent re-factorization from the session's retained matrix), and
// otherwise streams from disk. A factor too large for the whole cache runs
// under the remaining headroom through the solver's own governed ladder —
// OOC spill or a diagnosed kResourceExhausted.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <span>
#include <string>
#include <vector>

#include "api/solver.h"
#include "support/resource.h"
#include "support/status.h"
#include "support/types.h"

namespace parfact {

using SessionId = std::int64_t;

struct ServiceOptions {
  /// Per-session Solver configuration template. symbolic_cache and
  /// shared_pool are overwritten by the service (it wires its own);
  /// spill_path is replaced by a unique per-session path under spill_dir.
  SolverOptions solver;
  /// Total resident factor bytes across sessions (0 = unlimited, never
  /// evict). LRU sessions spill to disk when a new factor needs the room.
  std::size_t factor_cache_bytes = 0;
  /// Capacity of the shared pattern-keyed symbolic-analysis cache.
  std::size_t symbolic_cache_entries = 64;
  /// Directory for per-session OOC scratch files ("" = /tmp).
  std::string spill_dir;
  /// Maximum jobs in flight across all sessions (0 = unbounded). Excess
  /// jobs wait at the fair gate.
  int max_concurrent_jobs = 0;
};

/// Service-wide counters (point-in-time snapshot).
struct ServiceStats {
  count_t sessions_open = 0;
  count_t sessions_evicted = 0;    ///< LRU factor spills (cumulative)
  count_t symbolic_cache_hits = 0;
  count_t symbolic_cache_misses = 0;
  count_t refactorizes = 0;
  count_t jobs_completed = 0;
  std::size_t factor_cache_bytes = 0;  ///< resident factor bytes right now
};

class SolverService {
 public:
  explicit SolverService(ServiceOptions options = {});
  ~SolverService();
  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Opens a session: analyzes `lower` (shared-cache-assisted) and returns
  /// its id in `id`. Invalid input comes back as a diagnosed Status.
  Status open(const SparseMatrix& lower, SessionId& id);

  /// Closes a session, waiting out its in-flight job; frees its factor,
  /// reservation, and scratch file.
  Status close(SessionId id);

  /// Numeric factorization of the session's current values.
  Status factorize(SessionId id);

  /// Numeric-only refactorization with new values (same pattern). Takes the
  /// in-place fast path whenever the session's factor is resident.
  Status refactorize(SessionId id, std::span<const real_t> new_values);

  /// Single right-hand-side solve (original ordering).
  Status solve(SessionId id, std::span<const real_t> b,
               std::vector<real_t>& x);

  /// Batched solve of nrhs column-major right-hand sides.
  Status solve_batch(SessionId id, std::span<const real_t> b, index_t nrhs,
                     std::vector<real_t>& x);

  /// The session's SolverReport with the service-wide sessions_evicted /
  /// factor_cache_bytes counters stamped in.
  Status report(SessionId id, SolverReport& out) const;

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] SymbolicCache& symbolic_cache() { return cache_; }

 private:
  struct Session;

  [[nodiscard]] std::shared_ptr<Session> find(SessionId id) const;
  /// Locks the session (serializing with its other jobs), runs `fn` inside
  /// the fair concurrency gate, and maintains touch/served ticks.
  Status with_session(SessionId id, const std::function<Status(Session&)>& fn);
  /// Pre-factorization admission: reserve factor bytes, evicting LRU
  /// sessions as needed; on failure, configure the solver to run under the
  /// remaining headroom (its ladder spills or rejects).
  void prepare_capacity(Session& session);
  /// Post-factorization bookkeeping: reconcile the reservation with where
  /// the factor actually landed (in-core, spilled, or absent).
  void finish_factor(Session& session, const Status& status);
  /// Spills the least-recently-touched idle session (not `requester`);
  /// returns the bytes freed (0 = no evictable candidate).
  std::size_t evict_lru(const Session* requester);
  /// Brings a spilled session's factor back in-core if the budget allows,
  /// re-factorizing if the scratch file fails its checksums. Best effort:
  /// on failure the session keeps streaming from disk.
  void try_reload(Session& session);
  [[nodiscard]] std::uint64_t next_tick();
  void gate_enter(std::uint64_t last_served, std::uint64_t seq);
  void gate_leave();

  ServiceOptions options_;
  SymbolicCache cache_;
  std::unique_ptr<ThreadPool> pool_;  ///< shared by all sessions' solvers
  ResourceBudget budget_;             ///< resident-factor byte meter

  mutable std::mutex registry_mu_;
  std::map<SessionId, std::shared_ptr<Session>> sessions_;
  SessionId next_id_ = 1;

  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> sessions_evicted_{0};
  std::atomic<std::uint64_t> refactorizes_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};

  struct GateWaiter {
    std::uint64_t last_served;
    std::uint64_t seq;
  };
  mutable std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  int gate_active_ = 0;
  std::vector<GateWaiter> gate_waiters_;
};

}  // namespace parfact
