// Schur complement computation — the "partial factorization" service the
// WSMP lineage exposes for domain decomposition and coupled multi-physics:
// given the 2x2 block view
//   A = [ A11  A12 ]      (A11: the first n-k rows/cols, A22: the last k)
//       [ A21  A22 ]
// compute the dense Schur complement S = A22 - A21 A11⁻¹ A12 (symmetric;
// only the lower triangle is returned).
#pragma once

#include <vector>

#include "sparse/sparse_matrix.h"
#include "support/types.h"

namespace parfact {

/// Dense lower-triangle Schur complement of the trailing k x k block of the
/// lower-stored SPD matrix `lower`. Column-major k x k buffer (upper
/// triangle left zero). A11 must itself be SPD (it is, for SPD A).
/// Cost: one factorization of A11 plus k sparse-RHS solves.
[[nodiscard]] std::vector<real_t> schur_complement(const SparseMatrix& lower,
                                                   index_t k);

}  // namespace parfact
