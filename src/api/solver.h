// High-level solver facade: the public API a downstream user calls.
//
// Composes the full pipeline of the paper's solver:
//   analyze()   — fill-reducing ordering (nested dissection by default),
//                 postorder, supernodes, assembly tree;
//   factorize() — multifrontal Cholesky (serial or shared-memory parallel);
//   solve()     — triangular solves + optional iterative refinement,
// with all permutations handled internally: callers stay in their original
// row/column numbering throughout.
//
// The distributed/simulated execution paths (dist/, perf/) are deliberately
// separate entry points driven by the experiments; this facade is the
// "desktop" interface.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/symbolic_cache.h"
#include "dist/checkpoint.h"
#include "graph/ordering.h"
#include "mf/abft.h"
#include "mf/factor.h"
#include "mf/governed.h"
#include "mf/multifrontal.h"
#include "mf/ooc.h"
#include "mpsim/machine.h"
#include "solve/solve_schedule.h"
#include "sparse/sparse_matrix.h"
#include "support/resource.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

class ThreadPool;

struct SolverOptions {
  enum class Ordering { kNestedDissection, kMinimumDegree, kRcm, kNatural };
  Ordering ordering = Ordering::kNestedDissection;
  OrderingOptions nd;                  ///< nested-dissection knobs
  AmalgamationOptions amalgamation;    ///< supernode relaxation knobs
  int threads = 1;                     ///< factorization threads (>=1)
  int refinement_steps = 2;            ///< iterative-refinement iterations
  /// Cholesky for SPD input; LDLᵀ (no pivoting) for symmetric
  /// quasi-definite input such as KKT saddle-point systems.
  FactorKind factor_kind = FactorKind::kCholesky;
  /// Parallel factorization engine (threads > 1). The task-DAG runtime is
  /// the default; the static two-phase engine is kept for benchmarking the
  /// schedules against each other. Both are bitwise identical to serial.
  enum class FactorEngine { kTaskDag, kTwoPhase };
  FactorEngine factor_engine = FactorEngine::kTaskDag;
  /// Static pivoting: tiny/non-positive pivots are boosted to
  /// sqrt(eps)·max|A| (sign-preserving for LDLᵀ) instead of aborting the
  /// factorization. The perturbation count is surfaced in the report and
  /// the factorize() Status; accuracy is recovered by refinement or the
  /// solve_robust() escalation. Set false to restore throw-on-breakdown.
  bool static_pivoting = true;
  real_t pivot_threshold = 0.0;   ///< boost threshold; 0 = sqrt(eps)·max|A|
  real_t target_residual = 1e-10; ///< solve_robust() acceptance residual
  int cg_max_iterations = 500;    ///< solve_robust() fallback CG budget
  /// Right-hand-side columns per blocked triangular sweep: every factor
  /// panel is streamed once per block, so this is the solve phase's
  /// flops-per-byte knob (and the reproducibility granule — results are
  /// bitwise-stable for a fixed block width).
  index_t solve_rhs_block = 32;
  /// Iterative-refinement passes applied per solve_batch() call (one
  /// blocked correction sweep each; 0 disables refinement for batches).
  int batch_refinement_passes = 1;
  /// Crash-recovery configuration for factorize_distributed(): buddy
  /// checkpointing cadence and the optional checksummed scratch spill.
  /// Spare ranks themselves are part of the mpsim::FaultPlan.
  ResiliencePolicy resilience;
  /// Memory budget for factorize() (0 = unlimited). Admission is checked
  /// against the symbolic working-set estimate before any numeric
  /// allocation; a factorization that does not fit in-core degrades to the
  /// checksummed OOC spill (panels on disk, bitwise-identical factor), and
  /// one that cannot even spill returns kResourceExhausted. A limited
  /// budget runs the serial engine — its postorder memory profile is
  /// exactly what admission reserved.
  std::size_t memory_budget_bytes = 0;
  /// Wall-clock deadline per factorize()/factorize_and_solve() call
  /// (host seconds; 0 = none). A deadline firing mid-factor returns
  /// kDeadlineExceeded within one task granule, with the solver reusable.
  /// factorize_distributed() maps it onto the mpsim run watchdog
  /// (kCommTimeout) when the fault plan does not set its own.
  double deadline_seconds = 0.0;
  /// OOC scratch file for budget-driven spill; empty = a unique /tmp path.
  std::string spill_path;
  /// ABFT checksum-carrying factorization (DESIGN.md §5f): factorize()
  /// runs the serial engine with a column-sum identity checked after every
  /// kernel stage; detected corruption is localized to one front and
  /// repaired by bounded recompute, bitwise identical to a clean run. Also
  /// arms the at-rest factor checksums that let post-solve verification
  /// localize storage corruption. Incompatible with memory_budget_bytes
  /// (the governed ladder has its own engines) — that combination returns
  /// kInvalidInput.
  bool abft = false;
  real_t abft_tolerance = 1e-8;  ///< ABFT identity tolerance
  /// Post-solve end-to-end verification of solve()/solve_multi() results:
  /// componentwise scaled residual max_i |b−Ax|_i / (|A||x|+|b|)_i against
  /// verify_tolerance. kSampled checks the first right-hand side of each
  /// call; kFull checks every column. On failure the solver verifies the
  /// stored factor against its checksums, recomputes the corrupt subtree
  /// (or the whole factor when no checksums are armed), re-solves, and
  /// only if verification still fails throws kDataCorruption — a silent
  /// wrong answer is never returned.
  enum class Verify { kOff, kSampled, kFull };
  Verify verify = Verify::kOff;
  real_t verify_tolerance = 1e-8;
  /// Fault-campaign hook: one seeded single-bit flip injected into the
  /// numeric pipeline. Factorization sites (kAssembly..kUpdate) require
  /// abft; kStoredFactor corrupts the in-core factor right after
  /// factorize() so the at-rest/verify defenses are exercised.
  std::optional<SdcInjection> inject_sdc;
  /// Pattern-keyed analysis cache shared across Solver instances (and
  /// SolverService sessions). When set, analyze() first looks up the input
  /// pattern + ordering configuration and adopts a cached analysis on a hit
  /// — bitwise identical to a cold analyze — instead of re-running ordering
  /// and symbolic analysis; misses populate the cache. Must outlive the
  /// Solver. nullptr (default) keeps analyze() fully cold.
  SymbolicCache* symbolic_cache = nullptr;
  /// Externally owned worker pool used (when threads > 1) instead of a pool
  /// created per factorize/refactorize call. Lets many solvers — e.g. the
  /// sessions of one SolverService — share workers. Must outlive the
  /// Solver; do not call solver methods from this pool's own worker threads.
  ThreadPool* shared_pool = nullptr;
};

/// Summary of the last analyze/factorize, in the units the paper reports.
struct SolverReport {
  count_t n = 0;
  count_t nnz_a = 0;
  count_t nnz_factor = 0;       ///< strict factor nonzeros
  count_t factor_flops = 0;
  index_t n_supernodes = 0;
  double analyze_seconds = 0.0;
  double factor_seconds = 0.0;
  std::size_t peak_update_bytes = 0;
  count_t pivot_perturbations = 0;  ///< static-pivot boosts in factorize()
  /// Resource governance of the last factorize(): how admission decided,
  /// the budget high-water mark (reserved bytes; equals the working-set
  /// estimate of the admitted rung), and scratch-file bytes written when
  /// the factor spilled out-of-core.
  Admission admission = Admission::kUnlimited;
  std::size_t peak_bytes = 0;
  std::size_t bytes_spilled = 0;
  /// factorize_distributed() only: rank crashes a spare recovered, and the
  /// virtual-time cost of those recoveries (lost work re-executed plus
  /// checkpoint restore transfers).
  count_t rank_failures_recovered = 0;
  double recovery_virtual_seconds = 0.0;
  /// factorize_distributed() only: communication/computation overlap
  /// diagnostics of the simulated run. Idle wait is the summed virtual time
  /// ranks spent blocked on message arrival; overlap efficiency is
  /// 1 − idle / Σ rank seconds (1.0 means no rank ever stalled on a
  /// message); max in-flight is the high-water mark of delivered-but-not-
  /// yet-consumed messages across the machine.
  double comm_idle_wait_seconds = 0.0;
  double comm_overlap_efficiency = 1.0;
  count_t max_in_flight_messages = 0;
  /// factorize_distributed() only: fan-both pool diagnostics. wait_any
  /// calls is the total (summed over ranks) number of Comm::wait_any pool
  /// waits the schedule issued; out-of-order counts messages that arrived
  /// earlier than a message posted before them in the same pool (how much
  /// reordering the arrival-buffering had to absorb). Both are zero for
  /// the kBlocking/kLookahead schedules, which never use a pool.
  count_t comm_wait_any_calls = 0;
  count_t comm_messages_out_of_order = 0;
  /// solve_batch() only: throughput of the last batch. bytes/solve counts
  /// the factor-panel and workspace traffic of the blocked sweeps divided
  /// by the number of right-hand sides — the amortization the batch buys.
  index_t batch_rhs = 0;
  double batch_seconds = 0.0;
  double batch_solves_per_second = 0.0;
  double batch_bytes_per_solve = 0.0;
  real_t batch_residual = 0.0;  ///< worst per-column residual (refined)
  /// SDC defense: ABFT identities evaluated and mismatches detected by the
  /// last factorize(), fronts recomputed by factor-time or at-rest repair,
  /// whether any corruption was detected (factor-time or post-solve), and
  /// the worst componentwise scaled residual of the last verified solve.
  count_t abft_checks = 0;
  count_t abft_detections = 0;
  count_t fronts_recomputed = 0;
  bool corruption_detected = false;
  real_t verify_residual = 0.0;
  /// Serving counters (cumulative over the Solver's lifetime — they survive
  /// the per-analyze report reset). Hits/misses count this solver's own
  /// SymbolicCache lookups; refactorizes counts refactorize() calls.
  /// sessions_evicted / factor_cache_bytes are stamped by SolverService
  /// (zero for a standalone Solver).
  count_t symbolic_cache_hits = 0;
  count_t symbolic_cache_misses = 0;
  count_t refactorizes = 0;
  count_t sessions_evicted = 0;
  std::size_t factor_cache_bytes = 0;
};

/// Which path of the solve_robust() escalation produced the answer.
enum class SolvePath { kNone, kDirect, kRefined, kIterativeFallback };

[[nodiscard]] const char* solve_path_name(SolvePath path);

/// Result of the escalating solve: the cheapest path that met
/// options.target_residual, or the best effort with a diagnosing status.
struct RobustSolveResult {
  std::vector<real_t> x;          ///< best solution found (original ordering)
  Status status;                  ///< kOk/kPerturbed, or kNoConvergence
  SolvePath path = SolvePath::kNone;
  real_t residual = 0.0;          ///< scaled residual of x
  int iterations = 0;             ///< CG iterations (fallback path only)
};

class Solver {
 public:
  explicit Solver(SolverOptions options = {});
  ~Solver();
  Solver(Solver&&) noexcept;
  Solver& operator=(Solver&&) noexcept;

  /// Symbolic phase. `lower` must be the lower triangle of an SPD matrix
  /// with a fully populated diagonal. Keeps a permuted copy internally.
  void analyze(const SparseMatrix& lower);

  /// Numeric phase; requires analyze() first. With options.static_pivoting
  /// (the default) breakdown pivots are boosted and reported through the
  /// returned Status (kOk, or kPerturbed with the perturbation count)
  /// instead of throwing; with static_pivoting=false a non-SPD/-factorizable
  /// matrix throws parfact::Error as before.
  ///
  /// Runs under options.memory_budget_bytes / deadline_seconds when set:
  /// the returned Status is then also how kResourceExhausted, kCancelled
  /// and kDeadlineExceeded are reported (report().admission records which
  /// rung of the degradation ladder ran). After any such failure the same
  /// Solver instance is immediately reusable — a subsequent unconstrained
  /// factorize() produces a factor bitwise identical to an uninterrupted
  /// run.
  Status factorize();

  /// Numeric-only re-factorization: installs `new_values` (same length and
  /// order as the analyze() input's value array — the pattern must be
  /// unchanged) and re-runs the numeric phase. When the previous factorize()
  /// left an in-core factor and no ABFT/budget/injection option is active,
  /// this skips ordering, symbolic analysis, and all allocation, writing the
  /// new factor into the existing panels — the serving fast path. The result
  /// is bitwise identical to analyze()+factorize() on the same values, and
  /// the perturbation count is reported identically. Otherwise (ABFT,
  /// memory budget, OOC, injection, or no prior factor) it degrades to the
  /// full factorize() on the new values, composing with those features
  /// unchanged. A length mismatch returns kInvalidInput; cancellation,
  /// deadlines and breakdown behave exactly as in factorize().
  Status refactorize(std::span<const real_t> new_values);

  /// Moves the in-core factor to the checksummed OOC scratch file (panels
  /// on disk, LDLᵀ diagonal resident), releasing the panel memory and any
  /// budget reservation. Solves keep working, streamed from disk. Used by
  /// SolverService to evict cold sessions; no-op Status if already spilled.
  Status spill_factor();

  /// Loads a spilled factor back in-core (checksum-verified panel reads;
  /// a corrupted scratch file returns kDataCorruption and keeps the spilled
  /// state). No-op Status if already in-core.
  Status unspill_factor();

  /// Bytes held by the current factor: in-core panel + diagonal storage, or
  /// scratch-file bytes when spilled; 0 before factorize().
  [[nodiscard]] std::size_t factor_bytes() const;
  /// True when the factor currently lives in the OOC scratch file.
  [[nodiscard]] bool factor_spilled() const {
    return ooc_factor_.has_value();
  }

  /// Requests cooperative cancellation of the in-flight (or next)
  /// factorize()/factorize_and_solve() call from any thread; the cancelled
  /// call returns Status kCancelled. Completing a governed call re-arms a
  /// fresh cancellation scope, so cancel() never poisons later calls.
  void cancel();

  /// Adjusts the resource-governance knobs between calls (the remaining
  /// options stay fixed at construction).
  void set_memory_budget_bytes(std::size_t bytes);
  void set_deadline_seconds(double seconds);

  /// Distributed-memory numeric phase: runs the subtree-to-subcube
  /// multifrontal factorization on `n_ranks` simulated mpsim ranks and
  /// gathers the factor for the local solve paths. With a `faults` plan
  /// carrying Crash entries and spare ranks, recovery follows
  /// options.resilience (buddy checkpoints, spare adoption, partial
  /// replay); the report then carries `rank_failures_recovered` and
  /// `recovery_virtual_seconds`. Returns the factorization Status
  /// (kOk/kPerturbed, or the diagnosed failure — e.g. kRankFailure when a
  /// crash exhausts the spares) without throwing.
  Status factorize_distributed(int n_ranks,
                               const mpsim::MachineModel& model = {},
                               const mpsim::FaultPlan& faults = {});

  /// Fused numeric phase + first solve: factorizes and solves the n × nrhs
  /// column-major right-hand sides `b` in one task graph — forward solves
  /// on fully factored subtrees overlap the remaining factorization, so
  /// there is no factor→solve barrier. `x` receives the solutions in the
  /// caller's original ordering. Results (factor and solutions) are
  /// bitwise identical to factorize() followed by solve_multi(b, nrhs).
  /// Requires analyze(). With threads <= 1 this degrades gracefully to the
  /// serial factorize-then-solve pipeline.
  Status factorize_and_solve(std::span<const real_t> b, index_t nrhs,
                             std::vector<real_t>& x);

  /// Solves A x = b in the caller's original ordering; requires factorize().
  [[nodiscard]] std::vector<real_t> solve(std::span<const real_t> b) const;

  /// Blocked multiple-right-hand-side solve: `b` is n x nrhs column-major;
  /// returns the n x nrhs solution block (one factorization, one blocked
  /// triangular sweep — the engineering-workload pattern). solve() is this
  /// with nrhs == 1: there is exactly one sweep implementation.
  [[nodiscard]] std::vector<real_t> solve_multi(std::span<const real_t> b,
                                                index_t nrhs) const;

  /// Batched serving entry point: fuses `nrhs` independent right-hand
  /// sides (n x nrhs column-major) into blocked multi-RHS sweeps of
  /// options.solve_rhs_block columns plus options.batch_refinement_passes
  /// blocked refinement passes, and records per-batch throughput
  /// (solves/sec, bytes/solve, worst residual) in report(). The solutions
  /// are bitwise-identical to solve_multi() on the same block partition.
  [[nodiscard]] std::vector<real_t> solve_batch(std::span<const real_t> b,
                                                index_t nrhs) const;

  /// Solve with iterative refinement (options.refinement_steps iterations).
  [[nodiscard]] std::vector<real_t> solve_refined(
      std::span<const real_t> b) const;

  /// Escalating solve for perturbed or ill-conditioned factorizations:
  /// tries the plain direct solve, then iterative refinement, then an
  /// IC(0)-preconditioned CG fallback (warm-started from the best direct
  /// answer), stopping at the cheapest path whose scaled residual
  /// ‖b−Ax‖∞/(‖A‖∞‖x‖∞+‖b‖∞) meets options.target_residual. Always
  /// returns the best x found; status is kNoConvergence if no path met
  /// the target.
  [[nodiscard]] RobustSolveResult solve_robust(std::span<const real_t> b)
      const;

  /// Relative residual of a candidate solution in original ordering.
  [[nodiscard]] real_t residual(std::span<const real_t> x,
                                std::span<const real_t> b) const;

  [[nodiscard]] const SolverReport& report() const { return report_; }
  [[nodiscard]] const SymbolicFactor& symbolic() const;
  [[nodiscard]] const CholeskyFactor& factor() const;
  /// True once a factorization (in-core or spilled) is ready to solve with.
  [[nodiscard]] bool has_factor() const {
    return factor_.has_value() || ooc_factor_.has_value();
  }
  /// The disk-backed factor when the last factorize() spilled (asserts
  /// otherwise); every solve entry point dispatches to it transparently.
  [[nodiscard]] const OocCholeskyFactor& ooc_factor() const;
  /// Combined permutation: original index of postordered index k.
  [[nodiscard]] const std::vector<index_t>& permutation() const {
    return total_perm_;
  }

  /// Estimated 1-norm condition number of A (requires factorize()).
  [[nodiscard]] real_t condition_estimate() const;

 private:
  /// Lazily created solve pool (options.threads > 1); the solve schedule
  /// is built once per factorize() and reused by every solve.
  [[nodiscard]] ThreadPool* solve_pool() const;
  void build_solve_schedule();
  /// Digest of every option that affects the symbolic result (ordering kind
  /// and knobs, amalgamation, parallel-ND engine choice) — the PatternKey
  /// config component.
  [[nodiscard]] std::uint64_t config_hash() const;
  /// Builds value_map_: sym_->a.values[q] = lower.values[value_map_[q]].
  void build_value_map(const SparseMatrix& lower);
  /// Arms the per-call cancellation scope (deadline) and returns its token.
  [[nodiscard]] CancelToken arm_cancel_scope();
  /// x := A⁻¹ x on the postordered block, dispatching in-core vs spilled.
  void solve_postordered(MatrixView x) const;
  [[nodiscard]] std::string spill_path() const;
  void check_rhs(std::size_t b_size, index_t nrhs, const char* fn) const;
  /// ABFT factorize() path (options.abft): checksum-carrying serial engine.
  Status factorize_abft();
  /// Permute → triangular sweeps → permute back (solve_multi's core).
  [[nodiscard]] std::vector<real_t> solve_permuted(std::span<const real_t> b,
                                                   index_t nrhs) const;
  /// Post-solve verification (options.verify): componentwise residual
  /// check, at-rest factor verification, localized or full recompute,
  /// re-solve. Throws kDataCorruption only if repair cannot restore a
  /// verifying answer.
  void verify_and_repair(std::span<const real_t> b, index_t nrhs,
                         std::vector<real_t>& x) const;

  SolverOptions options_;
  mutable SolverReport report_;  ///< solve_batch() updates batch stats
  std::optional<SymbolicFactor> sym_;
  /// mutable: verify_and_repair() heals corrupted panels from const solves.
  mutable std::optional<CholeskyFactor> factor_;
  mutable FactorChecksums factor_checksums_;  ///< at-rest sums (abft runs)
  std::optional<OocCholeskyFactor> ooc_factor_;  ///< spilled alternative
  std::vector<index_t> total_perm_;  ///< postordered -> original
  /// Per-nonzero scatter map from the analyze() input's value array into
  /// sym_->a.values — a pure permutation (no arithmetic), which is what
  /// makes cache-hit analyze and refactorize bitwise-exact.
  std::vector<index_t> value_map_;
  /// The adopted cache entry (hit or freshly inserted miss); retained so
  /// build_solve_schedule() can copy the precomputed schedule.
  std::shared_ptr<const CachedAnalysis> cached_;
  SparseMatrix original_lower_;      ///< kept for residuals/refinement
  std::unique_ptr<SolveSchedule> solve_schedule_;
  mutable SolveWorkspace solve_workspace_;
  mutable std::unique_ptr<ThreadPool> solve_pool_;
  /// Governance state. The budget must outlive the reservation charged
  /// against it (declaration order ⇒ reverse destruction order).
  std::unique_ptr<ResourceBudget> budget_;
  Reservation reservation_;
  CancelSource cancel_source_;
};

/// Accumulating batch helper for serving loops: callers add() single
/// right-hand sides as they arrive, then one solve() call runs the fused
/// blocked sweeps and per-batch refinement via Solver::solve_batch().
class SolveBatch {
 public:
  explicit SolveBatch(const Solver& solver);

  /// Queues one right-hand side (length n); returns its slot index.
  /// Invalidates previous solutions.
  index_t add(std::span<const real_t> b);

  /// Solves every queued right-hand side in one fused batch.
  void solve();

  [[nodiscard]] index_t size() const { return nrhs_; }
  /// Solution of slot i; valid after solve() until the next add()/reset().
  [[nodiscard]] std::span<const real_t> solution(index_t i) const;
  void reset();

 private:
  const Solver* solver_;
  index_t n_ = 0;
  index_t nrhs_ = 0;
  bool solved_ = false;
  std::vector<real_t> b_;
  std::vector<real_t> x_;
};

/// Convenience for experiments: fill-order `lower` with nested dissection
/// and run the symbolic phase, returning the SymbolicFactor whose `post`
/// composes both permutations (i.e. analyze(nd_permuted(A))).
[[nodiscard]] SymbolicFactor analyze_nested_dissection(
    const SparseMatrix& lower, const OrderingOptions& nd = {},
    const AmalgamationOptions& amalg = {});

}  // namespace parfact
