// High-level solver facade: the public API a downstream user calls.
//
// Composes the full pipeline of the paper's solver:
//   analyze()   — fill-reducing ordering (nested dissection by default),
//                 postorder, supernodes, assembly tree;
//   factorize() — multifrontal Cholesky (serial or shared-memory parallel);
//   solve()     — triangular solves + optional iterative refinement,
// with all permutations handled internally: callers stay in their original
// row/column numbering throughout.
//
// The distributed/simulated execution paths (dist/, perf/) are deliberately
// separate entry points driven by the experiments; this facade is the
// "desktop" interface.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "graph/ordering.h"
#include "mf/factor.h"
#include "mf/multifrontal.h"
#include "sparse/sparse_matrix.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

struct SolverOptions {
  enum class Ordering { kNestedDissection, kMinimumDegree, kRcm, kNatural };
  Ordering ordering = Ordering::kNestedDissection;
  OrderingOptions nd;                  ///< nested-dissection knobs
  AmalgamationOptions amalgamation;    ///< supernode relaxation knobs
  int threads = 1;                     ///< factorization threads (>=1)
  int refinement_steps = 2;            ///< iterative-refinement iterations
  /// Cholesky for SPD input; LDLᵀ (no pivoting) for symmetric
  /// quasi-definite input such as KKT saddle-point systems.
  FactorKind factor_kind = FactorKind::kCholesky;
};

/// Summary of the last analyze/factorize, in the units the paper reports.
struct SolverReport {
  count_t n = 0;
  count_t nnz_a = 0;
  count_t nnz_factor = 0;       ///< strict factor nonzeros
  count_t factor_flops = 0;
  index_t n_supernodes = 0;
  double analyze_seconds = 0.0;
  double factor_seconds = 0.0;
  std::size_t peak_update_bytes = 0;
};

class Solver {
 public:
  explicit Solver(SolverOptions options = {});
  ~Solver();
  Solver(Solver&&) noexcept;
  Solver& operator=(Solver&&) noexcept;

  /// Symbolic phase. `lower` must be the lower triangle of an SPD matrix
  /// with a fully populated diagonal. Keeps a permuted copy internally.
  void analyze(const SparseMatrix& lower);

  /// Numeric phase; requires analyze() first. Throws on non-SPD input.
  void factorize();

  /// Solves A x = b in the caller's original ordering; requires factorize().
  [[nodiscard]] std::vector<real_t> solve(std::span<const real_t> b) const;

  /// Blocked multiple-right-hand-side solve: `b` is n x nrhs column-major;
  /// returns the n x nrhs solution block (one factorization, one blocked
  /// triangular sweep — the engineering-workload pattern).
  [[nodiscard]] std::vector<real_t> solve_multi(std::span<const real_t> b,
                                                index_t nrhs) const;

  /// Solve with iterative refinement (options.refinement_steps iterations).
  [[nodiscard]] std::vector<real_t> solve_refined(
      std::span<const real_t> b) const;

  /// Relative residual of a candidate solution in original ordering.
  [[nodiscard]] real_t residual(std::span<const real_t> x,
                                std::span<const real_t> b) const;

  [[nodiscard]] const SolverReport& report() const { return report_; }
  [[nodiscard]] const SymbolicFactor& symbolic() const;
  [[nodiscard]] const CholeskyFactor& factor() const;
  /// Combined permutation: original index of postordered index k.
  [[nodiscard]] const std::vector<index_t>& permutation() const {
    return total_perm_;
  }

  /// Estimated 1-norm condition number of A (requires factorize()).
  [[nodiscard]] real_t condition_estimate() const;

 private:
  SolverOptions options_;
  SolverReport report_;
  std::optional<SymbolicFactor> sym_;
  std::optional<CholeskyFactor> factor_;
  std::vector<index_t> total_perm_;  ///< postordered -> original
  SparseMatrix original_lower_;      ///< kept for residuals/refinement
};

/// Convenience for experiments: fill-order `lower` with nested dissection
/// and run the symbolic phase, returning the SymbolicFactor whose `post`
/// composes both permutations (i.e. analyze(nd_permuted(A))).
[[nodiscard]] SymbolicFactor analyze_nested_dissection(
    const SparseMatrix& lower, const OrderingOptions& nd = {},
    const AmalgamationOptions& amalg = {});

}  // namespace parfact
