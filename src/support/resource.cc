#include "support/resource.h"

#include <string>

namespace parfact {

bool ResourceBudget::try_reserve(std::size_t bytes) {
  // CAS loop on live_: admit only if the new total fits under the ceiling.
  std::size_t cur = live_.load(std::memory_order_relaxed);
  for (;;) {
    const std::size_t next = cur + bytes;
    if (limit_ > 0 && next > limit_) return false;
    if (live_.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      // Raise the high-water mark to at least `next`.
      std::size_t peak = peak_.load(std::memory_order_relaxed);
      while (peak < next && !peak_.compare_exchange_weak(
                                peak, next, std::memory_order_acq_rel,
                                std::memory_order_relaxed)) {
      }
      return true;
    }
  }
}

void ResourceBudget::release(std::size_t bytes) {
  live_.fetch_sub(bytes, std::memory_order_acq_rel);
}

Reservation& Reservation::operator=(Reservation&& other) noexcept {
  if (this != &other) {
    reset();
    budget_ = other.budget_;
    bytes_ = other.bytes_;
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

std::optional<Reservation> Reservation::acquire(ResourceBudget& budget,
                                                std::size_t bytes) {
  if (!budget.try_reserve(bytes)) return std::nullopt;
  return Reservation(&budget, bytes);
}

void Reservation::reset() {
  if (budget_ != nullptr) {
    budget_->release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }
}

bool CancelToken::cancelled() const {
  if (state_ == nullptr) return false;
  detail::CancelShared& s = *state_;
  const std::int64_t poll = s.polls.fetch_add(1, std::memory_order_relaxed) + 1;
  if (s.cancelled.load(std::memory_order_acquire)) return true;
  if (s.trip_after_polls >= 0 && poll >= s.trip_after_polls) {
    int expected = 0;
    s.reason.compare_exchange_strong(
        expected, static_cast<int>(StatusCode::kCancelled),
        std::memory_order_acq_rel);
    s.cancelled.store(true, std::memory_order_release);
    return true;
  }
  if (s.has_deadline && std::chrono::steady_clock::now() >= s.deadline) {
    int expected = 0;
    s.reason.compare_exchange_strong(
        expected, static_cast<int>(StatusCode::kDeadlineExceeded),
        std::memory_order_acq_rel);
    s.cancelled.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

StatusCode CancelToken::reason() const {
  if (state_ == nullptr) return StatusCode::kOk;
  const int r = state_->reason.load(std::memory_order_acquire);
  return r == 0 ? StatusCode::kOk : static_cast<StatusCode>(r);
}

void CancelToken::throw_if_cancelled() const {
  if (!cancelled()) return;
  const StatusCode code = reason() == StatusCode::kOk ? StatusCode::kCancelled
                                                      : reason();
  const char* what = code == StatusCode::kDeadlineExceeded
                         ? "deadline exceeded during execution"
                         : "operation cancelled";
  throw StatusError(Status::failure(code, what));
}

void CancelSource::request_cancel() {
  int expected = 0;
  state_->reason.compare_exchange_strong(
      expected, static_cast<int>(StatusCode::kCancelled),
      std::memory_order_acq_rel);
  state_->cancelled.store(true, std::memory_order_release);
}

void CancelSource::set_deadline_after(double seconds) {
  state_->deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  state_->has_deadline = true;
}

void CancelSource::trip_after_polls(std::int64_t n) {
  state_->trip_after_polls = n;
}

}  // namespace parfact
