// Shared integrity primitives for the corruption-defense layer.
//
// Two families live here. `fnv1a` is the byte-stream hash that guards
// *stored or transmitted* bytes (OOC panels, checkpoint blobs, mpsim wire
// payloads): any flipped bit changes the digest, so mismatch means the
// bytes are not what was written. The ABFT helpers guard *computed*
// numbers, where a hash is useless because the bits legitimately change:
// Huang-Abraham column-sum identities relate kernel outputs to inputs
// through the same linear algebra the kernel performs, so a corrupted
// output breaks the identity by far more than rounding ever can. The
// mismatch predicate and the bit-flip injectors used by the fault
// campaigns are here too, so every module agrees on one tolerance rule
// and one flip encoding.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "support/types.h"

namespace parfact {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// FNV-1a over a byte range. `seed` lets callers chain ranges into one
/// rolling digest (pass the previous digest back in).
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t bytes,
                                  std::uint64_t seed = kFnv1aOffsetBasis);

/// Chains one trivially-copyable value into a rolling FNV-1a digest — the
/// building block for configuration digests (e.g. the symbolic-cache
/// pattern key hashes every ordering/amalgamation knob this way, so two
/// solvers only share an analysis when every structure-affecting option
/// matches).
template <class T>
[[nodiscard]] std::uint64_t fnv1a_pod(const T& value,
                                      std::uint64_t seed = kFnv1aOffsetBasis) {
  static_assert(std::is_trivially_copyable_v<T>,
                "fnv1a_pod hashes raw object bytes");
  return fnv1a(&value, sizeof value, seed);
}

/// ABFT acceptance test: does `actual` match `predicted` to within
/// `tol * (scale + 1)`, where `scale` is the absolute-value counterpart of
/// the predicted sum? Written so NaN/Inf on either side count as a
/// mismatch (an exponent-bit flip often lands there).
[[nodiscard]] inline bool abft_mismatch(real_t actual, real_t predicted,
                                        real_t scale, real_t tol) {
  const real_t diff = std::abs(actual - predicted);
  return !(diff <= tol * (scale + real_t{1}));
}

/// Returns `value` with one bit of its IEEE-754 representation flipped.
/// Bit 62 (the top exponent bit) is the canonical worst case: it turns
/// O(1) values into ~1e308 or Inf/NaN and is always detectable.
[[nodiscard]] real_t flip_bit(real_t value, int bit);

/// Flips one bit inside an arbitrary byte buffer; `word` selects an
/// 8-byte word (wrapped to the buffer size), `bit` a bit within it.
/// No-op on an empty buffer.
void flip_bit_in_bytes(void* data, std::size_t bytes, std::uint64_t word,
                       int bit);

}  // namespace parfact
