#include "support/thread_pool.h"

#include <algorithm>
#include <utility>

namespace parfact {

ThreadPool::ThreadPool(int n_threads) {
  PARFACT_CHECK(n_threads >= 1);
  workers_.reserve(static_cast<std::size_t>(n_threads));
  for (int i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PARFACT_CHECK_MSG(!shutting_down_, "submit() after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, index_t begin, index_t end,
                  const std::function<void(index_t)>& body,
                  index_t min_grain) {
  if (begin >= end) return;
  const index_t n = end - begin;
  // One chunk per worker load-imbalances badly when per-index costs are
  // skewed (e.g. supernode subtrees); ~4 chunks per worker lets fast
  // workers steal the tail, while min_grain caps the scheduling overhead.
  const index_t target = 4 * static_cast<index_t>(pool.size());
  const index_t chunk =
      std::max<index_t>(std::max<index_t>(min_grain, 1),
                        (n + target - 1) / target);
  const index_t chunks = (n + chunk - 1) / chunk;
  for (index_t c = 1; c < chunks; ++c) {
    const index_t lo = begin + c * chunk;
    const index_t hi = std::min<index_t>(lo + chunk, end);
    pool.submit([lo, hi, &body] {
      for (index_t i = lo; i < hi; ++i) body(i);
    });
  }
  // The calling thread works the first chunk instead of blocking idle.
  std::exception_ptr local;
  try {
    const index_t hi = std::min<index_t>(begin + chunk, end);
    for (index_t i = begin; i < hi; ++i) body(i);
  } catch (...) {
    local = std::current_exception();
  }
  pool.wait();  // must not return while tasks still reference `body`
  if (local) std::rethrow_exception(local);
}

void parallel_for(ThreadPool& pool, index_t begin, index_t end,
                  const std::function<void(index_t)>& body,
                  const CancelToken& cancel, index_t min_grain) {
  parallel_for(
      pool, begin, end,
      [&](index_t i) {
        // Poll once per index; the cost is one relaxed atomic increment
        // plus a flag load, negligible next to any front kernel body.
        cancel.throw_if_cancelled();
        body(i);
      },
      min_grain);
}

}  // namespace parfact
