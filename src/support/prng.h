// Deterministic pseudo-random number generation.
//
// Tests, generators and benchmarks must be reproducible across runs and
// platforms, so we ship our own xoshiro256** generator seeded via splitmix64
// rather than relying on implementation-defined std::default_random_engine.
#pragma once

#include <cstdint>

#include "support/types.h"

namespace parfact {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded through splitmix64 so that any
/// 64-bit seed — including 0 — yields a well-mixed state.
class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method: unbiased and fast.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform index in [0, bound).
  index_t next_index(index_t bound) {
    return static_cast<index_t>(next_below(static_cast<std::uint64_t>(bound)));
  }

  /// Uniform real in [0, 1).
  double next_real() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double next_real(double lo, double hi) {
    return lo + (hi - lo) * next_real();
  }

  /// Random sign: +1.0 or -1.0 with equal probability.
  double next_sign() { return (next_u64() & 1u) ? 1.0 : -1.0; }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace parfact
