// Structured error/recovery reporting for the robustness layer.
//
// The low-level numeric and communication code still signals unrecoverable
// problems with exceptions (StatusError, which carries a Status), because
// unwinding through the multifrontal recursion and the mpsim rank threads is
// what exceptions are for. The driver-level entry points
// (multifrontal_factorize, distributed_factor_checked, Solver::factorize)
// catch at the boundary and hand the caller a plain Status value instead, so
// "the matrix needed 3 pivot perturbations" or "rank 2 exhausted its message
// retries" is data, not control flow.
#pragma once

#include <string>

#include "support/error.h"
#include "support/types.h"

namespace parfact {

/// Outcome classification for factorization / solve / communication paths.
enum class StatusCode {
  kOk = 0,          ///< clean success
  kPerturbed,       ///< success, but static pivoting boosted >= 1 pivot
  kBreakdown,       ///< numeric breakdown not recoverable by boosting
  kCommFailure,     ///< message lost after exhausting retries
  kCommTimeout,     ///< recv waited past the host-time safety timeout
  kRankFailure,     ///< a rank crashed and no spare could take over
  kDataCorruption,  ///< OOC panel checksum mismatch after re-read retry
  kNoConvergence,   ///< refinement/CG escalation missed the residual target
  kInvalidInput,    ///< malformed input detected before factorization
  kInternal,        ///< unexpected error escaping a checked entry point
  kCancelled,          ///< caller requested cooperative cancellation
  kDeadlineExceeded,   ///< host-clock deadline fired mid-operation
  kResourceExhausted,  ///< memory budget too small even for OOC spill
};

/// Short stable name for a code ("ok", "perturbed", ...).
const char* status_code_name(StatusCode code);

/// Value-type outcome report. `kOk` and `kPerturbed` both count as ok():
/// a perturbed factorization produced a usable factor, callers that care
/// about exactness inspect `perturbations`.
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;
  count_t perturbations = 0;      ///< pivots boosted by static pivoting
  index_t failed_supernode = kNone;  ///< supernode where a failure surfaced

  [[nodiscard]] bool ok() const {
    return code == StatusCode::kOk || code == StatusCode::kPerturbed;
  }
  [[nodiscard]] bool failed() const { return !ok(); }

  /// "perturbed: 3 pivot(s) boosted" style one-liner for logs and tests.
  [[nodiscard]] std::string to_string() const;

  static Status success(count_t perturbations = 0);
  static Status failure(StatusCode code, std::string message,
                        index_t supernode = kNone);
};

/// Exception carrying a Status through layers that unwind on failure.
class StatusError : public Error {
 public:
  explicit StatusError(Status status);

  [[nodiscard]] const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace parfact
