// Resource governance primitives: memory budgets and cooperative
// cancellation, shared by every execution engine in the stack.
//
// A ResourceBudget is a concurrent byte meter with a hard ceiling: jobs
// *reserve* their estimated peak working set before allocating anything
// (admission control — see mf/governed.h for the degradation ladder that
// consumes a failed reservation), hold the RAII Reservation for as long as
// the memory lives, and the budget tracks the high-water mark across all
// concurrent holders. A CancelSource/CancelToken pair carries cooperative
// cancellation and deadlines: long-running engines poll the token at task
// boundaries (one supernode, one DAG task, one parallel_for chunk) and
// unwind with StatusError(kCancelled / kDeadlineExceeded), leaving pools
// and arenas immediately reusable.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

#include "support/status.h"

namespace parfact {

/// Concurrent byte budget with peak tracking. limit_bytes == 0 means
/// unlimited (reservations always succeed but are still metered, so the
/// high-water mark is meaningful either way). Thread-safe.
class ResourceBudget {
 public:
  ResourceBudget() = default;
  explicit ResourceBudget(std::size_t limit_bytes) : limit_(limit_bytes) {}

  [[nodiscard]] bool limited() const { return limit_ > 0; }
  [[nodiscard]] std::size_t limit_bytes() const { return limit_; }

  /// Atomically reserves `bytes` if the ceiling allows it; updates the
  /// high-water mark on success. Prefer the RAII Reservation below.
  [[nodiscard]] bool try_reserve(std::size_t bytes);
  void release(std::size_t bytes);

  [[nodiscard]] std::size_t live_bytes() const {
    return live_.load(std::memory_order_relaxed);
  }
  /// High-water mark of concurrently reserved bytes over this budget's life.
  [[nodiscard]] std::size_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t limit_ = 0;
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> peak_{0};
};

/// RAII hold on a ResourceBudget reservation; releases on destruction.
/// Move-only, so ownership of the bytes follows the object that holds the
/// memory (e.g. the Solver keeps the factorization's reservation alive for
/// as long as the factor is resident).
class Reservation {
 public:
  Reservation() = default;
  Reservation(Reservation&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  Reservation& operator=(Reservation&& other) noexcept;
  Reservation(const Reservation&) = delete;
  Reservation& operator=(const Reservation&) = delete;
  ~Reservation() { reset(); }

  /// Tries to reserve `bytes` from `budget`; empty optional if the ceiling
  /// would be exceeded (the admission decision).
  [[nodiscard]] static std::optional<Reservation> acquire(
      ResourceBudget& budget, std::size_t bytes);

  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] bool held() const { return budget_ != nullptr; }
  void reset();

 private:
  Reservation(ResourceBudget* budget, std::size_t bytes)
      : budget_(budget), bytes_(bytes) {}

  ResourceBudget* budget_ = nullptr;
  std::size_t bytes_ = 0;
};

namespace detail {

/// Shared state behind a CancelSource and its tokens. The reason is latched
/// by the first trigger observed, so a job that races a deadline against an
/// explicit cancel reports one stable code.
struct CancelShared {
  std::atomic<bool> cancelled{false};
  /// Latched StatusCode of the first trigger (kOk until one fires).
  std::atomic<int> reason{0};
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  /// Deterministic test hook: the n-th cancelled() poll fires kCancelled
  /// (-1 = disabled). Lets tests cancel "at task index k" reproducibly.
  std::int64_t trip_after_polls = -1;
  std::atomic<std::int64_t> polls{0};
};

}  // namespace detail

/// Poll handle passed into execution engines. A default-constructed token
/// never cancels and costs one branch per poll. Copyable; all copies
/// observe the same source.
class CancelToken {
 public:
  CancelToken() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// One cooperative poll: true once the source was cancelled, the deadline
  /// passed, or the test trip-count was reached. First trigger latches the
  /// reason. Each call counts as one poll for the trip hook.
  [[nodiscard]] bool cancelled() const;

  /// kCancelled or kDeadlineExceeded once cancelled() returned true
  /// (without re-polling); kOk otherwise.
  [[nodiscard]] StatusCode reason() const;

  /// Polls, and throws StatusError carrying the reason when triggered —
  /// the one-liner engines call at every task boundary.
  void throw_if_cancelled() const;

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<detail::CancelShared> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CancelShared> state_;
};

/// Owner side of a cancellation scope: one per governed operation. Configure
/// the deadline / test trip *before* handing out tokens that are polled
/// concurrently; request_cancel() is safe from any thread at any time.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<detail::CancelShared>()) {}

  [[nodiscard]] CancelToken token() const { return CancelToken(state_); }

  /// Explicit cancellation (latches kCancelled unless a deadline won).
  void request_cancel();

  /// Arms a host-clock deadline `seconds` from now; polls past it latch
  /// kDeadlineExceeded. seconds <= 0 fires on the next poll.
  void set_deadline_after(double seconds);

  /// Deterministic test hook: the n-th token poll (n >= 1) fires
  /// kCancelled. n < 0 disables.
  void trip_after_polls(std::int64_t n);

  [[nodiscard]] bool cancel_requested() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<detail::CancelShared> state_;
};

}  // namespace parfact
