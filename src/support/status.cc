#include "support/status.h"

#include <sstream>
#include <utility>

namespace parfact {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kPerturbed:
      return "perturbed";
    case StatusCode::kBreakdown:
      return "breakdown";
    case StatusCode::kCommFailure:
      return "comm_failure";
    case StatusCode::kCommTimeout:
      return "comm_timeout";
    case StatusCode::kRankFailure:
      return "rank_failure";
    case StatusCode::kDataCorruption:
      return "data_corruption";
    case StatusCode::kNoConvergence:
      return "no_convergence";
    case StatusCode::kInvalidInput:
      return "invalid_input";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::ostringstream os;
  os << status_code_name(code);
  if (perturbations > 0) os << ": " << perturbations << " pivot(s) boosted";
  if (failed_supernode != kNone) os << " [supernode " << failed_supernode
                                    << "]";
  if (!message.empty()) os << " — " << message;
  return os.str();
}

Status Status::success(count_t perturbations) {
  Status s;
  s.code = perturbations > 0 ? StatusCode::kPerturbed : StatusCode::kOk;
  s.perturbations = perturbations;
  return s;
}

Status Status::failure(StatusCode code, std::string message,
                       index_t supernode) {
  Status s;
  s.code = code;
  s.message = std::move(message);
  s.failed_supernode = supernode;
  return s;
}

StatusError::StatusError(Status status)
    : Error(status.to_string()), status_(std::move(status)) {}

}  // namespace parfact
