// Small statistics helpers used by load-balance and timing reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.h"

namespace parfact {

/// Summary of a sample: min / max / mean and the load-imbalance ratio
/// max/mean that the parallel-mapping experiments report.
struct SampleSummary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double total = 0.0;

  /// max/mean; 1.0 means perfectly balanced. Defined as 1.0 for mean==0.
  [[nodiscard]] double imbalance() const {
    return mean > 0.0 ? max / mean : 1.0;
  }
};

/// Summarizes a non-empty sample.
template <typename T>
SampleSummary summarize(const std::vector<T>& values) {
  PARFACT_CHECK(!values.empty());
  SampleSummary s;
  s.min = static_cast<double>(values.front());
  s.max = s.min;
  for (const T& v : values) {
    const double x = static_cast<double>(v);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    s.total += x;
  }
  s.mean = s.total / static_cast<double>(values.size());
  return s;
}

}  // namespace parfact
