#include "support/checksum.h"

#include <cstring>

namespace parfact {

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

real_t flip_bit(real_t value, int bit) {
  static_assert(sizeof(real_t) == sizeof(std::uint64_t));
  std::uint64_t u = 0;
  std::memcpy(&u, &value, sizeof(u));
  u ^= std::uint64_t{1} << (bit & 63);
  std::memcpy(&value, &u, sizeof(u));
  return value;
}

void flip_bit_in_bytes(void* data, std::size_t bytes, std::uint64_t word,
                       int bit) {
  if (bytes == 0) return;
  bit &= 63;
  const std::size_t words = bytes / 8;
  std::size_t byte;
  if (words > 0) {
    byte = static_cast<std::size_t>(word % words) * 8 +
           static_cast<std::size_t>(bit / 8);
    if (byte >= bytes) byte = bytes - 1;
  } else {
    byte = static_cast<std::size_t>(bit / 8) % bytes;
  }
  static_cast<unsigned char*>(data)[byte] ^=
      static_cast<unsigned char>(1u << (bit % 8));
}

}  // namespace parfact
