// A small fixed-size thread pool with a parallel_for helper.
//
// The shared-memory factorization path and the mpsim runtime both need
// structured concurrency; this pool provides it without any global state.
// All exceptions thrown by tasks are captured and rethrown on wait().
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.h"
#include "support/resource.h"
#include "support/types.h"

namespace parfact {

/// Fixed pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// Creates `n_threads` workers (at least 1).
  explicit ThreadPool(int n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished. Rethrows the first
  /// exception raised by any task (subsequent ones are dropped).
  void wait();

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs body(i) for i in [begin, end) across the pool. The range is split
/// into roughly 4 chunks per worker (never smaller than `min_grain`
/// indices) so that skewed per-index costs still load-balance; the calling
/// thread executes the first chunk itself instead of idling. Blocks until
/// done and rethrows the first exception raised by any chunk.
void parallel_for(ThreadPool& pool, index_t begin, index_t end,
                  const std::function<void(index_t)>& body,
                  index_t min_grain = 1);

/// Cancellation-aware variant: every chunk polls `cancel` before running,
/// so a tripped token abandons the remaining chunks within one chunk
/// granule and StatusError(kCancelled / kDeadlineExceeded) is rethrown
/// here. The pool stays reusable — in-flight chunks drain normally.
void parallel_for(ThreadPool& pool, index_t begin, index_t end,
                  const std::function<void(index_t)>& body,
                  const CancelToken& cancel, index_t min_grain = 1);

}  // namespace parfact
