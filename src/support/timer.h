// Wall-clock timing utilities.
#pragma once

#include <chrono>

namespace parfact {

/// Monotonic wall-clock timer. Construction starts it; `seconds()` reads the
/// elapsed time without stopping; `restart()` resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace parfact
