// Error handling: a single exception type plus check macros.
//
// Library code validates its preconditions with PARFACT_CHECK (always on) and
// uses PARFACT_DCHECK for expensive internal invariants (debug builds only).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace parfact {

/// Exception thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace parfact

/// Always-on check; throws parfact::Error with location on failure.
#define PARFACT_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) ::parfact::detail::fail(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Always-on check with a streamed message payload.
#define PARFACT_CHECK_MSG(cond, msg)                                \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::ostringstream parfact_os_;                               \
      parfact_os_ << msg;                                           \
      ::parfact::detail::fail(#cond, __FILE__, __LINE__,            \
                              parfact_os_.str());                   \
    }                                                               \
  } while (false)

#ifdef NDEBUG
#define PARFACT_DCHECK(cond) \
  do {                       \
  } while (false)
#else
#define PARFACT_DCHECK(cond) PARFACT_CHECK(cond)
#endif
