// Fundamental scalar and index types used throughout parfact.
//
// The solver uses 32-bit indices for matrix dimensions and structure arrays
// (a matrix with more than 2^31-1 rows is out of scope for this library) and
// 64-bit integers for anything that can exceed that range: nonzero counts of
// the factor, flop counts, byte counts, and virtual-time quantities.
#pragma once

#include <cstdint>
#include <limits>

namespace parfact {

/// Row/column index and structure-array offset type for the *input* matrix.
using index_t = std::int32_t;

/// Wide type for nnz(L), flop counts, byte counts and similar accumulators.
using count_t = std::int64_t;

/// Numeric scalar. The paper's solver is a double-precision solver.
using real_t = double;

/// Sentinel used in parent/ancestor arrays ("no parent", "unassigned", ...).
inline constexpr index_t kNone = -1;

/// Largest representable index; used as "+infinity" in degree computations.
inline constexpr index_t kIndexMax = std::numeric_limits<index_t>::max();

}  // namespace parfact
