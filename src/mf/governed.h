// Budget-governed factorization: the admission-control front door of the
// multifrontal engines.
//
// Degradation ladder, decided *before* any numeric allocation from the
// symbolic working-set estimate (symbolic/working_set.h):
//
//   1. in-core  — the full factor plus the update stack fits the budget;
//                 reserve it and run the normal engine.
//   2. spill    — only the OOC resident set (update stack + one streamed
//                 panel) fits; panels go through the checksummed scratch
//                 file. Same serial postorder and kernels as in-core, so
//                 the spilled panels are bitwise identical to the in-core
//                 factor.
//   3. rejected — not even the spill resident set fits; return a diagnosed
//                 kResourceExhausted carrying estimated vs budgeted bytes.
//                 Nothing was allocated, nothing leaks.
//
// An unlimited budget short-circuits to the requested engine (parallel when
// a pool is supplied) but still meters the reservation, so peak accounting
// stays meaningful either way. A limited budget that admits in-core runs
// the *serial* engine: its postorder memory profile is exactly what was
// reserved, whereas a parallel schedule can transiently exceed it.
#pragma once

#include <optional>
#include <string>

#include "mf/multifrontal.h"
#include "mf/ooc.h"
#include "support/resource.h"
#include "symbolic/working_set.h"

namespace parfact {

/// How the budget admitted (or refused) a factorization.
enum class Admission {
  kUnlimited,  ///< no budget limit; requested engine ran as-is
  kInCore,     ///< full working set reserved, normal in-core factor
  kSpill,      ///< panels spilled through the OOC scratch file
  kRejected,   ///< even the spill resident set exceeds the budget
};

/// Short stable name ("unlimited", "in-core", "spill", "rejected").
[[nodiscard]] const char* admission_name(Admission a);

struct GovernedOptions {
  FactorKind kind = FactorKind::kCholesky;
  PivotPolicy pivot = {.boost = true};
  /// Engine for the unconstrained path (ignored once a limited budget
  /// forces the serial schedule). nullptr or size 1 = serial.
  ThreadPool* pool = nullptr;
  /// Use the static two-phase engine instead of the task-DAG runtime on
  /// the unconstrained parallel path.
  bool two_phase = false;
  /// Scratch-file path for the spill rung; empty disables spilling (the
  /// ladder then goes straight from in-core to rejected).
  std::string spill_path;
  CancelToken cancel;
};

/// Outcome of a governed factorization. Exactly one of `factor` / `ooc` is
/// engaged on success (by `admission`); both are empty on failure. The
/// `reservation` keeps the factor's bytes charged against the budget for as
/// long as the caller holds the result (or moves the reservation out).
struct GovernedFactorizeResult {
  std::optional<CholeskyFactor> factor;
  std::optional<OocCholeskyFactor> ooc;
  FactorStats stats;
  Status status;
  Admission admission = Admission::kUnlimited;
  WorkingSetEstimate estimate;
  std::size_t bytes_spilled = 0;  ///< scratch-file bytes written (spill only)
  Reservation reservation;
};

/// Runs the ladder above against `budget`. Never throws: cancellation,
/// breakdown, corruption, and rejection all come back as Status codes.
[[nodiscard]] GovernedFactorizeResult multifrontal_factorize_governed(
    const SymbolicFactor& sym, ResourceBudget& budget,
    const GovernedOptions& opts = {});

}  // namespace parfact
