// Multifrontal Cholesky factorization (serial and shared-memory parallel).
//
// For each supernode (in postorder) a dense *front* is assembled from the
// original matrix entries plus the children's update blocks (extend–add),
// then partially factorized: the supernode's columns are eliminated and the
// trailing Schur complement becomes this front's update block, passed to the
// parent. The elimination-tree structure makes disjoint subtrees completely
// independent, which is what every parallel variant exploits.
#pragma once

#include "mf/factor.h"
#include "support/thread_pool.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

/// Which numeric factorization to compute on each front.
enum class FactorKind {
  kCholesky,  ///< A = L Lᵀ, requires SPD
  kLdlt,      ///< A = L D Lᵀ without pivoting, for symmetric quasi-definite
              ///< (strongly factorizable) matrices — e.g. KKT saddle points
};

/// Serial multifrontal factorization of sym.a (the postordered matrix held
/// by the symbolic phase). Throws parfact::Error if a front hits a
/// non-positive (Cholesky) or zero (LDLᵀ) pivot.
[[nodiscard]] CholeskyFactor multifrontal_factor(
    const SymbolicFactor& sym, FactorStats* stats = nullptr,
    FactorKind kind = FactorKind::kCholesky);

/// Tree-parallel multifrontal factorization: supernode tasks run on `pool`
/// as soon as all their children finish. Bitwise behaviour matches the
/// serial code except for the usual floating-point reassociation caused by
/// children extend-adds arriving in nondeterministic order being *avoided*:
/// extend-add order is fixed by child index, so results are deterministic.
[[nodiscard]] CholeskyFactor multifrontal_factor_parallel(
    const SymbolicFactor& sym, ThreadPool& pool, FactorStats* stats = nullptr,
    FactorKind kind = FactorKind::kCholesky);

}  // namespace parfact
