// Multifrontal Cholesky factorization (serial and shared-memory parallel).
//
// For each supernode (in postorder) a dense *front* is assembled from the
// original matrix entries plus the children's update blocks (extend–add),
// then partially factorized: the supernode's columns are eliminated and the
// trailing Schur complement becomes this front's update block, passed to the
// parent. The elimination-tree structure makes disjoint subtrees completely
// independent, which is what every parallel variant exploits.
#pragma once

#include <optional>

#include "mf/factor.h"
#include "support/resource.h"
#include "support/status.h"
#include "support/thread_pool.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

/// Which numeric factorization to compute on each front.
enum class FactorKind {
  kCholesky,  ///< A = L Lᵀ, requires SPD
  kLdlt,      ///< A = L D Lᵀ without pivoting, for symmetric quasi-definite
              ///< (strongly factorizable) matrices — e.g. KKT saddle points
};

/// Static-pivoting policy threaded through every factorization engine.
/// Disabled (the historical throw-on-breakdown behavior) by default; when
/// `boost` is set, pivots with |pivot| <= threshold are replaced by
/// ±`value` and counted instead of aborting. Zero threshold/value mean
/// "auto": resolve_pivot_policy fills in sqrt(eps) * max|A|, the
/// SuperLU_DIST static-pivoting magnitude, whose accuracy loss iterative
/// refinement recovers (see DESIGN.md "Robustness & failure model").
struct PivotPolicy {
  bool boost = false;
  real_t threshold = 0.0;  ///< 0 = auto (sqrt(eps) * max|A|)
  real_t value = 0.0;      ///< 0 = auto (same as threshold)
};

/// Resolves "auto" fields of `policy` against the matrix that will be
/// factorized. Idempotent; returns `policy` unchanged when boost is off.
[[nodiscard]] PivotPolicy resolve_pivot_policy(PivotPolicy policy,
                                               const SparseMatrix& a);

/// Serial multifrontal factorization of sym.a (the postordered matrix held
/// by the symbolic phase). Without pivot boosting, throws parfact::Error
/// (specifically StatusError with StatusCode::kBreakdown) if a front hits a
/// non-positive (Cholesky) or zero (LDLᵀ) pivot; with boosting, tiny pivots
/// are perturbed and counted in stats->pivot_perturbations.
///
/// Every engine below polls `cancel` at supernode (or DAG-task) granularity
/// and unwinds with StatusError(kCancelled / kDeadlineExceeded) when it
/// trips, leaving the pool reusable and no partial factor behind.
[[nodiscard]] CholeskyFactor multifrontal_factor(
    const SymbolicFactor& sym, FactorStats* stats = nullptr,
    FactorKind kind = FactorKind::kCholesky, PivotPolicy pivot = {},
    CancelToken cancel = {});

/// Re-runs the serial numeric factorization *into an existing allocation*:
/// `factor` must have been built from this `sym` (checked), is zeroed in
/// place, and is overwritten with the factor of the current sym.a values.
/// No ordering, symbolic analysis, or panel allocation happens — this is
/// the numeric-only fast path behind Solver::refactorize. Bitwise identical
/// to a cold multifrontal_factor on the same values. On throw (breakdown /
/// cancellation) the panel contents are unspecified; discard or reset them.
void multifrontal_refactor(const SymbolicFactor& sym, CholeskyFactor& factor,
                           FactorStats* stats = nullptr,
                           FactorKind kind = FactorKind::kCholesky,
                           PivotPolicy pivot = {}, CancelToken cancel = {});

/// A front whose factorization flops reach this threshold is executed
/// cooperatively (all workers split its TRSM/SYRK/GEMM row ranges) instead
/// of as a single supernode task. ~20 Mflop is a few milliseconds on the
/// packed kernel engine — large enough that the row-split barrier cost
/// vanishes, small enough that the top of a 3-D assembly tree is covered.
inline constexpr count_t kCoopFrontFlops = 20'000'000;

/// Shared-memory parallel multifrontal factorization on the task-DAG
/// runtime (src/runtime): every front becomes either one fused elimination
/// task (fronts below `coop_flops`) or an assemble → POTRF → TRSM-slab →
/// update-slab pipeline, and the whole tree runs as a single dependency
/// graph under the work-stealing scheduler with critical-path priorities —
/// no phase barrier between tree-parallel subtrees and the top-of-tree
/// fronts. Extend-add order is fixed by child index and every slab kernel
/// is bitwise identical to its serial counterpart, so the factor matches
/// multifrontal_factor exactly, independent of thread count and schedule.
[[nodiscard]] CholeskyFactor multifrontal_factor_parallel(
    const SymbolicFactor& sym, ThreadPool& pool, FactorStats* stats = nullptr,
    FactorKind kind = FactorKind::kCholesky,
    count_t coop_flops = kCoopFrontFlops, PivotPolicy pivot = {},
    CancelToken cancel = {});

/// Task-DAG counterpart of multifrontal_refactor: re-runs the parallel
/// numeric factorization into an existing allocation (same contract).
void multifrontal_refactor_parallel(const SymbolicFactor& sym,
                                    CholeskyFactor& factor, ThreadPool& pool,
                                    FactorStats* stats = nullptr,
                                    FactorKind kind = FactorKind::kCholesky,
                                    count_t coop_flops = kCoopFrontFlops,
                                    PivotPolicy pivot = {},
                                    CancelToken cancel = {});

/// The pre-runtime static engine, kept as the task-DAG engine's benchmark
/// baseline (bench_f10): maximal subtrees of "light" fronts (< `coop_flops`
/// each) run as independent supernode tasks, then a barrier, then the
/// remaining top-of-tree fronts are processed one at a time with every
/// worker cooperating on the front's row range. Bitwise identical to
/// multifrontal_factor as well.
[[nodiscard]] CholeskyFactor multifrontal_factor_two_phase(
    const SymbolicFactor& sym, ThreadPool& pool, FactorStats* stats = nullptr,
    FactorKind kind = FactorKind::kCholesky,
    count_t coop_flops = kCoopFrontFlops, PivotPolicy pivot = {},
    CancelToken cancel = {});

/// Two-phase counterpart of multifrontal_refactor (same contract).
void multifrontal_refactor_two_phase(const SymbolicFactor& sym,
                                     CholeskyFactor& factor, ThreadPool& pool,
                                     FactorStats* stats = nullptr,
                                     FactorKind kind = FactorKind::kCholesky,
                                     count_t coop_flops = kCoopFrontFlops,
                                     PivotPolicy pivot = {},
                                     CancelToken cancel = {});

/// Outcome of a checked factorization: on success (including a perturbed
/// success) `factor` is engaged and `status` reports the perturbation
/// count; on failure `factor` is empty and `status` diagnoses why.
struct FactorizeResult {
  std::optional<CholeskyFactor> factor;
  FactorStats stats;
  Status status;
};

/// Status-returning driver around multifrontal_factor /
/// multifrontal_factor_parallel (chosen by `pool`). Static pivoting is ON
/// by default here — this is the graceful-degradation entry point; callers
/// wanting the strict throw-on-breakdown contract use the functions above.
[[nodiscard]] FactorizeResult multifrontal_factorize(
    const SymbolicFactor& sym, FactorKind kind = FactorKind::kCholesky,
    PivotPolicy pivot = {.boost = true}, ThreadPool* pool = nullptr,
    CancelToken cancel = {});

}  // namespace parfact
