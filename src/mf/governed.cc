#include "mf/governed.h"

#include <sstream>
#include <utility>

namespace parfact {

const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kUnlimited:
      return "unlimited";
    case Admission::kInCore:
      return "in-core";
    case Admission::kSpill:
      return "spill";
    case Admission::kRejected:
      return "rejected";
  }
  return "unknown";
}

GovernedFactorizeResult multifrontal_factorize_governed(
    const SymbolicFactor& sym, ResourceBudget& budget,
    const GovernedOptions& opts) {
  GovernedFactorizeResult result;
  result.estimate =
      estimate_working_set(sym, opts.kind == FactorKind::kLdlt);
  const WorkingSetEstimate& est = result.estimate;

  // Admission: pick the highest rung whose reservation fits. With no limit
  // the in-core reservation always succeeds (and still meters the peak).
  const bool want_parallel =
      !budget.limited() && opts.pool != nullptr && opts.pool->size() > 1;
  bool spill = false;
  if (auto r = Reservation::acquire(budget, est.peak_incore_bytes)) {
    result.reservation = std::move(*r);
    result.admission =
        budget.limited() ? Admission::kInCore : Admission::kUnlimited;
  } else if (!opts.spill_path.empty()) {
    if (auto r2 = Reservation::acquire(budget, est.peak_ooc_bytes)) {
      result.reservation = std::move(*r2);
      result.admission = Admission::kSpill;
      spill = true;
    }
  }
  if (!result.reservation.held()) {
    result.admission = Admission::kRejected;
    std::ostringstream os;
    os << "memory budget too small: estimated " << est.peak_incore_bytes
       << " bytes in-core, " << est.peak_ooc_bytes
       << " bytes with OOC spill, budget " << budget.limit_bytes()
       << " bytes (" << budget.live_bytes() << " already reserved)";
    result.status = Status::failure(StatusCode::kResourceExhausted, os.str());
    return result;
  }

  try {
    if (spill) {
      result.ooc.emplace(multifrontal_factor_ooc(sym, opts.spill_path,
                                                 &result.stats, opts.pivot,
                                                 opts.kind, opts.cancel));
      result.bytes_spilled =
          static_cast<std::size_t>(result.ooc->bytes_on_disk());
    } else if (want_parallel) {
      auto* engine = opts.two_phase ? multifrontal_factor_two_phase
                                    : multifrontal_factor_parallel;
      result.factor.emplace(engine(sym, *opts.pool, &result.stats, opts.kind,
                                   kCoopFrontFlops, opts.pivot, opts.cancel));
    } else {
      result.factor.emplace(multifrontal_factor(
          sym, &result.stats, opts.kind, opts.pivot, opts.cancel));
    }
    result.status = Status::success(result.stats.pivot_perturbations);
  } catch (const StatusError& e) {
    result.factor.reset();
    result.ooc.reset();
    result.reservation.reset();
    result.status = e.status();
  } catch (const Error& e) {
    result.factor.reset();
    result.ooc.reset();
    result.reservation.reset();
    result.status = Status::failure(StatusCode::kInternal, e.what());
  }
  return result;
}

}  // namespace parfact
