// ABFT (algorithm-based fault tolerance) for the multifrontal
// factorization: checksum-carrying fronts in the Huang–Abraham style.
//
// Threat model (DESIGN.md §5f): a soft error flips bits in *computed or
// stored* fp64 data — a frontal panel after a kernel, a child's update
// block waiting in the multifrontal stack, or the factor at rest between
// factorize and solve. Message-loss, crash and resource faults are handled
// by earlier layers; hashes cannot help here because the numbers
// legitimately change at every kernel, so the defense is algebraic, on
// LOWER (trapezoidal-storage) column sums throughout:
//
//   assembly   lowcols(front) = lowcols(A-scatter) + Σ lowcols(child U)
//   POTRF      e'A11 = (e'L11) L11'          (LDLᵀ: (e'L ∘ d) L')
//   TRSM       colsums(M) L11' = colsums(A21)   with M = A21 L11⁻ᵀ
//   UPDATE     lowcol_j(U') = lowcol_j(U0) − Σ_k suffix_j(L21·ₖ) M(j,k)
//
// Every identity is O(front²) against the kernels' O(front³). The first
// three are checked within the front; the UPDATE identity's prediction is
// carried to the parent and compared against the block's actual sums
// during the parent's extend-add — the block's one and only read, so the
// check adds no memory traffic of its own. A mismatch is *localized to
// one front* (assembly mismatches are further localized to the corrupt
// child via its carried prediction), and repaired by recomputing just
// that front — or, for a corrupted in-memory update block, the
// contiguous postorder subtree that produces it. The serial
// kernels are deterministic, so the repaired factor is bitwise identical
// to a clean run. Corruption that survives `max_front_attempts` (a sticky
// fault) surfaces as StatusError(kDataCorruption) naming the front.
//
// The same column sums, captured per factor column at front completion,
// double as an at-rest integrity check (`verify_factor`) that the Solver
// facade uses to localize and repair storage corruption found by the
// post-solve residual verification.
#pragma once

#include "mf/multifrontal.h"
#include "support/types.h"

namespace parfact {

/// Where a seeded fault strikes in the numeric pipeline.
enum class SdcSite {
  kAssembly = 0,   ///< assembled panel, after extend-add
  kPotrf = 1,      ///< L11 block, after the diagonal factorization
  kTrsm = 2,       ///< L21 block, after the panel solve
  kUpdate = 3,     ///< Schur update block, after SYRK/GEMM
  kStoredFactor = 4,  ///< factor at rest, between factorize and solve
};

/// One seeded single-bit fault. The flipped element is chosen
/// deterministically from `seed` within the site's region of the target
/// supernode's front, so campaigns are reproducible.
struct SdcInjection {
  SdcSite site = SdcSite::kPotrf;
  index_t supernode = kNone;  ///< kNone: derived from seed
  std::uint64_t seed = 1;
  int bit = 62;        ///< IEEE-754 bit to flip (62 = top exponent bit)
  bool sticky = false;  ///< re-strike on every recompute (models a hard
                        ///< fault; must surface as kDataCorruption)
};

struct AbftOptions {
  /// Relative tolerance of the checksum identities. The identities hold to
  /// O(front · eps) ≈ 1e-13 relative on real fronts; 1e-8 leaves orders of
  /// magnitude of margin while catching any flip that moves a value by
  /// more than rounding noise.
  real_t tolerance = 1e-8;
  /// Detection → recompute attempts per front before the fault is declared
  /// sticky and the factorization fails with kDataCorruption.
  int max_front_attempts = 3;
  const SdcInjection* inject = nullptr;  ///< fault campaign hook
};

/// Per-column integrity sums of a completed factor: for each postordered
/// column, the sum (and absolute-value sum, the tolerance scale) of its
/// stored trapezoidal panel column. Produced by the ABFT engine at front
/// completion, or post-hoc by compute_factor_checksums.
struct FactorChecksums {
  std::vector<real_t> col_sum;
  std::vector<real_t> col_abs;
  [[nodiscard]] bool empty() const { return col_sum.empty(); }
};

/// Serial multifrontal factorization with ABFT checks interleaved after
/// every kernel stage. On a clean run the factor is bitwise identical to
/// multifrontal_factor (the checks only read). Detected corruption is
/// repaired by bounded recompute; `stats` reports checks/detections/
/// recomputed fronts on top of the usual fields. When `checksums` is
/// non-null it receives the per-column factor sums for at-rest
/// verification.
[[nodiscard]] CholeskyFactor multifrontal_factor_abft(
    const SymbolicFactor& sym, FactorStats* stats = nullptr,
    FactorKind kind = FactorKind::kCholesky, PivotPolicy pivot = {},
    const AbftOptions& options = {}, FactorChecksums* checksums = nullptr,
    CancelToken cancel = {});

/// Recomputes `checksums` from a (trusted) factor — used to arm at-rest
/// verification for factors produced by non-ABFT engines.
[[nodiscard]] FactorChecksums compute_factor_checksums(
    const SymbolicFactor& sym, const CholeskyFactor& factor);

/// Verifies the stored factor against its column sums; returns the first
/// supernode whose panel mismatches, or kNone if the factor is intact.
[[nodiscard]] index_t verify_factor(const SymbolicFactor& sym,
                                    const CholeskyFactor& factor,
                                    const FactorChecksums& checksums,
                                    real_t tolerance = 1e-8);

/// Repairs the factor by re-running the contiguous postorder subtree
/// rooted at `root` ([first_descendant(root), root]) from the original
/// matrix. Deterministic kernels make the result bitwise identical to the
/// original clean computation. Refreshes `checksums` for the recomputed
/// columns when non-null. Returns the number of fronts recomputed.
count_t recompute_subtree(const SymbolicFactor& sym, index_t root,
                          FactorKind kind, PivotPolicy pivot,
                          CholeskyFactor& factor,
                          FactorChecksums* checksums = nullptr);

/// First descendant of supernode s in the postordered assembly tree: the
/// subtree of s is the contiguous range [first_descendant(s), s].
[[nodiscard]] index_t first_descendant(const SymbolicFactor& sym, index_t s);

/// Applies a kStoredFactor fault: flips one bit of one stored panel value
/// of the injection's target supernode. Returns the supernode struck.
index_t inject_factor_bitflip(const SymbolicFactor& sym,
                              CholeskyFactor& factor,
                              const SdcInjection& injection);

}  // namespace parfact
