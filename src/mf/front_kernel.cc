#include "mf/front_kernel.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "dense/kernels.h"
#include "support/error.h"
#include "support/status.h"

namespace parfact::detail {
namespace {

// Scatters one segment [beg, end) of a child update-block column into
// `dst` (offset by `row_off` local rows) while accumulating the segment's
// value and magnitude sums. Four independent lanes hide the FP add latency
// behind the scatter's indirect loads — a single running sum would
// serialize the loop at add latency — and the fixed blocking keeps the
// summation order deterministic. The cell updates are the same additions
// in the same ascending-row order as the plain extend-add, so the
// assembled front is bitwise identical to the sum-free path.
inline void scatter_sum(MatrixView dst, index_t row_off, index_t dj,
                        ConstMatrixView cu, index_t cj,
                        std::span<const index_t> crows,
                        const std::vector<index_t>& local_of, index_t beg,
                        index_t end, real_t& sum_out, real_t& abs_out) {
  real_t s[4] = {0.0, 0.0, 0.0, 0.0};
  real_t a[4] = {0.0, 0.0, 0.0, 0.0};
  index_t ci = beg;
  for (; ci + 4 <= end; ci += 4) {
    for (int l = 0; l < 4; ++l) {
      const real_t v = cu.at(ci + l, cj);
      dst.at(local_of[crows[ci + l]] - row_off, dj) += v;
      s[l] += v;
      a[l] += std::abs(v);
    }
  }
  for (; ci < end; ++ci) {
    const real_t v = cu.at(ci, cj);
    dst.at(local_of[crows[ci]] - row_off, dj) += v;
    s[0] += v;
    a[0] += std::abs(v);
  }
  sum_out = (s[0] + s[1]) + (s[2] + s[3]);
  abs_out = (a[0] + a[1]) + (a[2] + a[3]);
}

}  // namespace

void assemble_front(const SymbolicFactor& sym, index_t s,
                    const std::vector<std::vector<real_t>>& update_of,
                    const std::vector<std::vector<index_t>>& children,
                    MatrixView panel, std::vector<real_t>& update_out,
                    FrontScratch& scratch, AssemblySums* sums) {
  const index_t p = sym.sn_cols(s);
  const index_t b = sym.sn_below(s);
  const index_t first = sym.sn_start[s];
  const index_t block_end = sym.sn_start[s + 1];
  const auto rows = sym.below_rows(s);

  PARFACT_CHECK(panel.rows == sym.front_order(s) && panel.cols == p);
  update_out.assign(static_cast<std::size_t>(b) * b, 0.0);
  MatrixView update{update_out.data(), b, b, b};

  auto& local_of = scratch.local_of;
  for (index_t k = 0; k < p; ++k) local_of[first + k] = k;
  for (index_t t = 0; t < b; ++t) local_of[rows[t]] = p + t;

  // Reset the scratch map on *every* exit path so pooled scratch objects
  // stay reusable after a failed front.
  struct ScratchGuard {
    std::vector<index_t>& map;
    index_t p, b, first;
    std::span<const index_t> rows;
    ~ScratchGuard() {
      for (index_t k = 0; k < p; ++k) map[first + k] = kNone;
      for (index_t t = 0; t < b; ++t) map[rows[t]] = kNone;
    }
  } guard{local_of, p, b, first, rows};

  // Scatter the original matrix columns of this supernode.
  const SparseMatrix& a = sym.a;
  for (index_t j = first; j < block_end; ++j) {
    const index_t lj = j - first;
    for (index_t q = a.col_ptr[j]; q < a.col_ptr[j + 1]; ++q) {
      const index_t li = local_of[a.row_ind[q]];
      PARFACT_DCHECK(li != kNone);
      panel.at(li, lj) += a.values[q];
    }
  }

  // Extend-add the children's update blocks (fixed child order keeps the
  // computation deterministic under any execution schedule).
  if (sums == nullptr) {
    for (index_t c : children[s]) {
      const auto crows = sym.below_rows(c);
      const index_t cb = sym.sn_below(c);
      const ConstMatrixView cu{update_of[c].data(), cb, cb, cb};
      for (index_t cj = 0; cj < cb; ++cj) {
        const index_t gj = crows[cj];
        const index_t lj = local_of[gj];
        PARFACT_DCHECK(lj != kNone);
        if (lj < p) {
          // Column lands in the panel part.
          for (index_t ci = cj; ci < cb; ++ci) {
            panel.at(local_of[crows[ci]], lj) += cu.at(ci, cj);
          }
        } else {
          // Column lands in the trailing update part.
          const index_t uj = lj - p;
          for (index_t ci = cj; ci < cb; ++ci) {
            update.at(local_of[crows[ci]] - p, uj) += cu.at(ci, cj);
          }
        }
      }
    }
    return;
  }

  // Fused extend-add: identical scatter, plus each child block's split
  // column sums taken from this very read. Rows before t0 (child rows
  // among this supernode's own columns) land in the panel; rows from t0
  // on land in the update seed. Panel-mapped columns (cj < t0) split at
  // t0; seed-mapped columns lie entirely at or beyond t0.
  sums->per_child.resize(children[s].size());
  std::size_t ic = 0;
  for (index_t c : children[s]) {
    const auto crows = sym.below_rows(c);
    const index_t cb = sym.sn_below(c);
    const ConstMatrixView cu{update_of[c].data(), cb, cb, cb};
    const index_t t0 = static_cast<index_t>(
        std::lower_bound(crows.begin(), crows.end(), block_end) -
        crows.begin());
    std::vector<real_t>& out = sums->per_child[ic++];
    out.assign(static_cast<std::size_t>(cb) * 4, 0.0);
    for (index_t cj = 0; cj < cb; ++cj) {
      const index_t lj = local_of[crows[cj]];
      PARFACT_DCHECK(lj != kNone);
      real_t* o = out.data() + static_cast<std::size_t>(cj) * 4;
      if (lj < p) {
        scatter_sum(panel, 0, lj, cu, cj, crows, local_of, cj, t0, o[0], o[1]);
        scatter_sum(panel, 0, lj, cu, cj, crows, local_of, t0, cb, o[2], o[3]);
      } else {
        scatter_sum(update, p, lj - p, cu, cj, crows, local_of, cj, cb, o[2],
                    o[3]);
      }
    }
  }
}

count_t factor_front_diag(const SymbolicFactor& sym, index_t s,
                          MatrixView panel, FactorKind kind,
                          std::span<real_t> d, const PivotPolicy& pivot) {
  const index_t p = sym.sn_cols(s);
  const index_t first = sym.sn_start[s];
  MatrixView l11 = panel.block(0, 0, p, p);
  PivotBoost boost{pivot.threshold, pivot.value, 0};
  PivotBoost* boost_ptr = pivot.boost ? &boost : nullptr;
  index_t info;
  if (kind == FactorKind::kCholesky) {
    info = potrf_lower(l11, boost_ptr);
  } else {
    info = ldlt_lower(l11,
                      d.subspan(static_cast<std::size_t>(first),
                                static_cast<std::size_t>(p)),
                      boost_ptr);
  }
  if (info != kNone) {
    std::ostringstream os;
    os << (kind == FactorKind::kCholesky ? "matrix is not positive definite"
                                         : "bad LDLT pivot")
       << " at column " << first + info << " (postordered), supernode " << s
       << " (front order " << sym.front_order(s) << ", " << p << " columns)";
    throw StatusError(Status::failure(StatusCode::kBreakdown, os.str(), s));
  }
  return boost.count;
}

void ldlt_scale_panel(MatrixView l21, std::span<const real_t> d,
                      index_t first, std::vector<real_t>& m) {
  const index_t b = l21.rows;
  const index_t p = l21.cols;
  m.resize(static_cast<std::size_t>(b) * p);
  for (index_t k = 0; k < p; ++k) {
    const real_t dk = d[static_cast<std::size_t>(first + k)];
    real_t* col = &l21.at(0, k);
    real_t* mk = m.data() + static_cast<std::size_t>(k) * b;
    for (index_t i = 0; i < b; ++i) {
      mk[i] = col[i];
      col[i] /= dk;
    }
  }
}

count_t eliminate_front(const SymbolicFactor& sym, index_t s,
                        const std::vector<std::vector<real_t>>& update_of,
                        const std::vector<std::vector<index_t>>& children,
                        MatrixView panel, std::vector<real_t>& update_out,
                        FrontScratch& scratch, FactorKind kind,
                        std::span<real_t> d, ThreadPool* pool,
                        const PivotPolicy& pivot) {
  assemble_front(sym, s, update_of, children, panel, update_out, scratch);
  const count_t boosted = factor_front_diag(sym, s, panel, kind, d, pivot);

  const index_t p = sym.sn_cols(s);
  const index_t b = sym.sn_below(s);
  if (b > 0) {
    MatrixView update{update_out.data(), b, b, b};
    MatrixView l11 = panel.block(0, 0, p, p);
    MatrixView l21 = panel.block(p, 0, b, p);
    // now holds M = A21 L11^-T = L21 D
    trsm_right_lower_trans(l11, l21, pool);
    if (kind == FactorKind::kCholesky) {
      syrk_lower_update(update, l21, pool);
    } else {
      // Keep M, rescale the stored panel to L21 = M D^-1, and subtract
      // L21 Mᵀ = L21 D L21ᵀ from the Schur complement.
      std::vector<real_t> m;
      ldlt_scale_panel(l21, d, sym.sn_start[s], m);
      gemm_nt_update(update, l21, ConstMatrixView{m.data(), b, p, b}, pool);
    }
  }

  return boosted;
}

std::vector<std::vector<index_t>> build_children(const SymbolicFactor& sym) {
  std::vector<std::vector<index_t>> children(
      static_cast<std::size_t>(sym.n_supernodes));
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    if (sym.sn_parent[s] != kNone) children[sym.sn_parent[s]].push_back(s);
  }
  return children;
}


}  // namespace parfact::detail
