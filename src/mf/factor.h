// Supernodal Cholesky factor storage.
//
// The factor of supernode s is a dense trapezoidal *panel*: an
// (ncols + nbelow) x ncols column-major block whose first ncols rows hold
// the lower-triangular diagonal block L11 and whose remaining rows hold the
// rectangular L21 in the order of the supernode's below-row list. This is
// the layout the factorization writes and the triangular solves read.
#pragma once

#include <span>
#include <vector>

#include "dense/matrix_view.h"
#include "support/types.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

class CholeskyFactor {
 public:
  /// Allocates zeroed panels shaped by `sym`. `sym` must outlive this object.
  explicit CholeskyFactor(const SymbolicFactor& sym);

  [[nodiscard]] const SymbolicFactor& symbolic() const { return *sym_; }

  /// Mutable/const view of supernode s's panel.
  [[nodiscard]] MatrixView panel(index_t s);
  [[nodiscard]] ConstMatrixView panel(index_t s) const;

  /// Zero-fills every panel (and D, if allocated) in place without touching
  /// the allocation. Restores the freshly-constructed state the numeric
  /// engines require, so a factor object can be reused across refactorize
  /// calls with no allocator traffic.
  void reset_values();

  /// Total stored entries (== symbolic().nnz_stored).
  [[nodiscard]] count_t stored_entries() const {
    return static_cast<count_t>(values_.size());
  }

  /// L(i, j) for i >= j in postordered indices (0 if not stored). For tests
  /// and debugging; O(log) per access.
  [[nodiscard]] real_t entry(index_t i, index_t j) const;

  /// LDLᵀ support: when the factorization ran in LDLᵀ mode, panels hold the
  /// unit-diagonal L and `diag()` holds D; empty for plain Cholesky.
  [[nodiscard]] bool is_ldlt() const { return !d_.empty(); }
  [[nodiscard]] std::span<const real_t> diag() const { return d_; }
  /// Allocates the D vector (called by the LDLᵀ factorization).
  std::span<real_t> allocate_diag();
  /// Writable view of D for in-place repair (ABFT subtree recompute);
  /// empty for plain Cholesky. Does not (re)allocate.
  [[nodiscard]] std::span<real_t> mutable_diag() { return d_; }

 private:
  std::vector<real_t> d_;
  const SymbolicFactor* sym_;
  std::vector<real_t> values_;
  std::vector<std::size_t> offset_;  ///< per-supernode start in values_
};

/// Numeric statistics of one factorization run.
struct FactorStats {
  double seconds = 0.0;
  count_t flops = 0;
  /// Peak bytes of live update (contribution) blocks — the multifrontal
  /// stack. Factor storage itself is not included.
  std::size_t peak_update_bytes = 0;
  /// Pivots boosted by static pivoting (0 unless a PivotPolicy with
  /// boosting was supplied and the matrix needed it).
  count_t pivot_perturbations = 0;
  /// ABFT accounting (zero unless the checksum-carrying engine ran):
  /// identities evaluated, mismatches detected, and fronts re-executed by
  /// the detect → localize → recompute path.
  count_t abft_checks = 0;
  count_t abft_detections = 0;
  count_t fronts_recomputed = 0;
};

}  // namespace parfact
