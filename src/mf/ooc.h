// Out-of-core factorization — the WSMP-lineage mode for problems whose
// factor exceeds memory: each supernode panel is streamed to a scratch file
// the moment it is eliminated, so resident memory holds only the active
// front and the multifrontal update stack. The triangular solves stream the
// panels back (forward sweep reads the file front-to-back, backward sweep
// back-to-front).
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "dense/matrix_view.h"
#include "mf/factor.h"
#include "mf/multifrontal.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

/// Disk-backed supernodal Cholesky factor. Panel layout on disk matches
/// CholeskyFactor's in-memory layout (column-major trapezoid per supernode,
/// concatenated in supernode order). The scratch file is deleted on
/// destruction.
///
/// Integrity: every panel write records a 64-bit FNV-1a checksum in memory;
/// every read-back verifies it, retrying the read once (transient I/O) and
/// then throwing StatusError(kDataCorruption). The checksums live in memory
/// rather than on disk because they guard the scratch file's round-trip
/// within one process lifetime — the file does not outlive the object.
class OocCholeskyFactor {
 public:
  /// Creates/truncates the scratch file. `sym` must outlive this object.
  OocCholeskyFactor(const SymbolicFactor& sym, std::string path);
  ~OocCholeskyFactor();

  OocCholeskyFactor(const OocCholeskyFactor&) = delete;
  OocCholeskyFactor& operator=(const OocCholeskyFactor&) = delete;
  OocCholeskyFactor(OocCholeskyFactor&& other) noexcept;
  OocCholeskyFactor& operator=(OocCholeskyFactor&& other) noexcept;

  [[nodiscard]] const SymbolicFactor& symbolic() const { return *sym_; }
  [[nodiscard]] count_t bytes_on_disk() const;
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Writes supernode s's panel (front_order x sn_cols) to its file slot,
  /// recording its checksum. Flushes so the bytes are externally visible.
  void write_panel(index_t s, ConstMatrixView panel);
  /// Reads supernode s's panel into `out` (same shape, ld == rows) and
  /// verifies its checksum; one silent re-read on mismatch, then throws
  /// StatusError with StatusCode::kDataCorruption.
  void read_panel(index_t s, MatrixView out) const;

  /// LDLᵀ support, mirroring CholeskyFactor: panels on disk hold the
  /// unit-diagonal L while D stays resident (n doubles — negligible next to
  /// the spilled panels).
  [[nodiscard]] bool is_ldlt() const { return !d_.empty(); }
  [[nodiscard]] std::span<const real_t> diag() const { return d_; }
  std::span<real_t> allocate_diag();

 private:
  const SymbolicFactor* sym_;
  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<real_t> d_;        ///< LDLᵀ diagonal (resident)
  std::vector<count_t> offset_;  ///< per-supernode byte offset
  std::vector<std::uint64_t> checksum_;  ///< per-supernode FNV-1a of panel
};

/// Out-of-core serial multifrontal factorization (Cholesky or LDLᵀ).
/// `stats->peak_update_bytes` reports the resident peak — update stack plus
/// the one streamed panel buffer — the number that stays small while the
/// factor itself goes to disk. Polls `cancel` once per supernode.
[[nodiscard]] OocCholeskyFactor multifrontal_factor_ooc(
    const SymbolicFactor& sym, const std::string& path,
    FactorStats* stats = nullptr, PivotPolicy pivot = {},
    FactorKind kind = FactorKind::kCholesky, CancelToken cancel = {});

/// x := A⁻¹ x with panels streamed from disk (x is n x nrhs).
void ooc_solve_in_place(const OocCholeskyFactor& factor, MatrixView x);

}  // namespace parfact
