// Out-of-core factorization — the WSMP-lineage mode for problems whose
// factor exceeds memory: each supernode panel is streamed to a scratch file
// the moment it is eliminated, so resident memory holds only the active
// front and the multifrontal update stack. The triangular solves stream the
// panels back (forward sweep reads the file front-to-back, backward sweep
// back-to-front).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dense/matrix_view.h"
#include "mf/factor.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

/// Disk-backed supernodal Cholesky factor. Panel layout on disk matches
/// CholeskyFactor's in-memory layout (column-major trapezoid per supernode,
/// concatenated in supernode order). The scratch file is deleted on
/// destruction.
class OocCholeskyFactor {
 public:
  /// Creates/truncates the scratch file. `sym` must outlive this object.
  OocCholeskyFactor(const SymbolicFactor& sym, std::string path);
  ~OocCholeskyFactor();

  OocCholeskyFactor(const OocCholeskyFactor&) = delete;
  OocCholeskyFactor& operator=(const OocCholeskyFactor&) = delete;
  OocCholeskyFactor(OocCholeskyFactor&& other) noexcept;

  [[nodiscard]] const SymbolicFactor& symbolic() const { return *sym_; }
  [[nodiscard]] count_t bytes_on_disk() const;

  /// Writes supernode s's panel (front_order x sn_cols) to its file slot.
  void write_panel(index_t s, ConstMatrixView panel);
  /// Reads supernode s's panel into `out` (same shape, ld == rows).
  void read_panel(index_t s, MatrixView out) const;

 private:
  const SymbolicFactor* sym_;
  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<count_t> offset_;  ///< per-supernode byte offset
};

/// Out-of-core serial multifrontal Cholesky. `stats->peak_update_bytes`
/// reports the resident update-stack peak — the number that stays small
/// while the factor itself goes to disk.
[[nodiscard]] OocCholeskyFactor multifrontal_factor_ooc(
    const SymbolicFactor& sym, const std::string& path,
    FactorStats* stats = nullptr);

/// x := A⁻¹ x with panels streamed from disk (x is n x nrhs).
void ooc_solve_in_place(const OocCholeskyFactor& factor, MatrixView x);

}  // namespace parfact
