// Task-DAG multifrontal factorization engine.
//
// Emits the whole numeric factorization as one rt::TaskGraph: per supernode
// either a single fused ELIM task (small fronts — the vast majority, where
// task overhead would swamp the kernel) or an ASSEMBLE → POTRF → TRSM-slab*
// → [LDLᵀ PREP] → UPDATE-slab* pipeline (large fronts near the root, where
// the two-phase engine's phase barrier serialized progress). The graph runs
// under the work-stealing scheduler with critical-path priorities derived
// from per-task flop costs, so the root chain is never starved.
//
// Determinism: identical to the serial engine bit for bit. Assembly
// extend-adds children in fixed child order inside one task; TRSM row slabs
// each run the full serial solve on their rows; Cholesky update slabs use
// dense::syrk_lower_update_slab (packed-engine pieces whose per-element
// summation order is row-partition-invariant, and fronts where that does
// not hold are never split); LDLᵀ update slabs call the serial gemm_nt
// kernel on disjoint row blocks. Perturbation counts are per-front sums of
// schedule-independent serial POTRF/LDLᵀ runs.
//
// The builder exposes per-supernode panel-ready tags so the fused
// factor+solve driver (solve/fused.h) can hang forward-solve tasks off
// fully factored subtrees while upper fronts are still factoring.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "mf/factor.h"
#include "mf/front_kernel.h"
#include "mf/multifrontal.h"
#include "mf/update_memory.h"
#include "runtime/task_graph.h"
#include "symbolic/symbolic_factor.h"

namespace parfact::detail {

/// Builder + shared mutable state for one DAG factorization run. Create,
/// call emit(), optionally append more tasks (phase fusion), run the graph,
/// then read the accumulated statistics. Must outlive the graph execution.
class FactorDag {
 public:
  /// `factor` must be freshly constructed from `sym` (zeroed panels; diag
  /// allocated by the caller in LDLᵀ mode). `fuse_flops`: fronts below this
  /// flop count become single fused tasks. `n_workers`: scheduler width,
  /// used only to pick slab counts (never affects numeric results).
  FactorDag(const SymbolicFactor& sym, CholeskyFactor& factor,
            FactorKind kind, std::span<real_t> d, PivotPolicy pivot,
            count_t fuse_flops, int n_workers);

  /// Emits every factorization task into `graph` in topological order
  /// (postorder over supernodes, pipeline order within a front).
  void emit(rt::TaskGraph& graph);

  /// Tags that must all complete before supernode s's panel (and, in LDLᵀ
  /// mode, its diag entries) hold final factor values. Valid after emit().
  [[nodiscard]] std::span<const rt::tag_t> panel_ready(index_t s) const {
    return panel_ready_[static_cast<std::size_t>(s)];
  }

  [[nodiscard]] count_t perturbations() const {
    return perturbations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t peak_update_bytes() const { return mem_.peak(); }

 private:
  void emit_fused(rt::TaskGraph& graph, index_t s);
  void emit_split(rt::TaskGraph& graph, index_t s);
  [[nodiscard]] index_t slab_count(count_t flops, index_t rows) const;
  void finish_assembly(index_t s);
  std::unique_ptr<FrontScratch> acquire_scratch();
  void release_scratch(std::unique_ptr<FrontScratch> scratch);

  const SymbolicFactor& sym_;
  CholeskyFactor& factor_;
  const FactorKind kind_;
  const std::span<real_t> d_;
  const PivotPolicy pivot_;
  const count_t fuse_flops_;
  const int n_workers_;

  std::vector<std::vector<index_t>> children_;
  std::vector<std::vector<real_t>> update_of_;
  /// LDLᵀ split fronts: M = L21 D buffers, freed by the last update slab.
  std::vector<std::vector<real_t>> m_of_;
  std::vector<std::unique_ptr<std::atomic<index_t>>> m_refs_;

  /// Per-supernode completion tags: panel final / update block final.
  std::vector<std::vector<rt::tag_t>> panel_ready_;
  std::vector<std::vector<rt::tag_t>> update_done_;

  std::mutex scratch_mu_;
  std::vector<std::unique_ptr<FrontScratch>> scratch_pool_;
  UpdateMemory mem_;
  std::atomic<count_t> perturbations_{0};
};

}  // namespace parfact::detail
