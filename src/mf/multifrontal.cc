#include "mf/multifrontal.h"

#include <atomic>
#include <span>
#include <mutex>
#include <vector>

#include <cmath>
#include <limits>

#include "dense/kernels.h"
#include "mf/front_kernel.h"
#include "mf/update_memory.h"
#include "sparse/ops.h"
#include "support/error.h"
#include "support/timer.h"

namespace parfact {

PivotPolicy resolve_pivot_policy(PivotPolicy policy, const SparseMatrix& a) {
  if (!policy.boost) return policy;
  const real_t scale =
      std::sqrt(std::numeric_limits<real_t>::epsilon()) * max_abs(a);
  if (policy.threshold == 0.0) policy.threshold = scale;
  if (policy.value == 0.0) policy.value = policy.threshold;
  return policy;
}

CholeskyFactor multifrontal_factor(const SymbolicFactor& sym,
                                   FactorStats* stats, FactorKind kind,
                                   PivotPolicy pivot, CancelToken cancel) {
  CholeskyFactor factor(sym);
  multifrontal_refactor(sym, factor, stats, kind, pivot, cancel);
  return factor;
}

void multifrontal_refactor(const SymbolicFactor& sym, CholeskyFactor& factor,
                           FactorStats* stats, FactorKind kind,
                           PivotPolicy pivot, CancelToken cancel) {
  PARFACT_CHECK(&factor.symbolic() == &sym);
  WallTimer timer;
  pivot = resolve_pivot_policy(pivot, sym.a);
  factor.reset_values();
  std::span<real_t> d;
  if (kind == FactorKind::kLdlt) d = factor.allocate_diag();
  const auto children = detail::build_children(sym);
  std::vector<std::vector<real_t>> update_of(
      static_cast<std::size_t>(sym.n_supernodes));
  detail::FrontScratch scratch(sym.n);
  detail::UpdateMemory mem;
  count_t perturbations = 0;

  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    cancel.throw_if_cancelled();
    perturbations += detail::eliminate_front(
        sym, s, update_of, children, factor.panel(s), update_of[s], scratch,
        kind, d, nullptr, pivot);
    mem.add(update_of[s].size() * sizeof(real_t));
    for (index_t c : children[s]) {
      mem.sub(update_of[c].size() * sizeof(real_t));
      update_of[c] = {};
    }
  }

  if (stats != nullptr) {
    stats->seconds = timer.seconds();
    stats->flops = sym.total_flops;
    stats->peak_update_bytes = mem.peak();
    stats->pivot_perturbations = perturbations;
  }
}

CholeskyFactor multifrontal_factor_two_phase(const SymbolicFactor& sym,
                                             ThreadPool& pool,
                                             FactorStats* stats,
                                             FactorKind kind,
                                             count_t coop_flops,
                                             PivotPolicy pivot,
                                             CancelToken cancel) {
  CholeskyFactor factor(sym);
  multifrontal_refactor_two_phase(sym, factor, pool, stats, kind, coop_flops,
                                  pivot, cancel);
  return factor;
}

void multifrontal_refactor_two_phase(const SymbolicFactor& sym,
                                     CholeskyFactor& factor, ThreadPool& pool,
                                     FactorStats* stats, FactorKind kind,
                                     count_t coop_flops, PivotPolicy pivot,
                                     CancelToken cancel) {
  PARFACT_CHECK(&factor.symbolic() == &sym);
  WallTimer timer;
  pivot = resolve_pivot_policy(pivot, sym.a);
  std::atomic<count_t> perturbations{0};
  factor.reset_values();
  std::span<real_t> d;
  if (kind == FactorKind::kLdlt) d = factor.allocate_diag();
  const auto children = detail::build_children(sym);
  const index_t ns = sym.n_supernodes;
  std::vector<std::vector<real_t>> update_of(static_cast<std::size_t>(ns));
  detail::UpdateMemory mem;

  // Partition the assembly tree, shared-memory analogue of the paper's
  // subtree-to-subcube mapping: a supernode belongs to phase 1 (one task
  // per supernode, pure tree parallelism) iff its whole subtree is made of
  // fronts below the cooperative threshold. Everything else — the top of
  // the tree, where the few remaining fronts hold most of the flops — is
  // phase 2: processed in postorder by the calling thread with all workers
  // cooperating inside each front's dense kernels. With one worker there is
  // nothing to cooperate with, so the whole tree stays in phase 1.
  std::vector<char> tasked(static_cast<std::size_t>(ns), 1);
  if (pool.size() > 1) {
    for (index_t s = 0; s < ns; ++s) {
      bool light = sym.sn_flops[s] < coop_flops;
      if (light) {
        for (index_t c : children[s]) light = light && tasked[c];
      }
      tasked[s] = light ? 1 : 0;
    }
  }

  // Pool of scratch maps, one handed to each running task.
  std::mutex scratch_mu;
  std::vector<std::unique_ptr<detail::FrontScratch>> scratch_pool;
  auto acquire_scratch = [&]() -> std::unique_ptr<detail::FrontScratch> {
    std::lock_guard<std::mutex> lock(scratch_mu);
    if (scratch_pool.empty()) {
      return std::make_unique<detail::FrontScratch>(sym.n);
    }
    auto s = std::move(scratch_pool.back());
    scratch_pool.pop_back();
    return s;
  };
  auto release_scratch = [&](std::unique_ptr<detail::FrontScratch> s) {
    std::lock_guard<std::mutex> lock(scratch_mu);
    scratch_pool.push_back(std::move(s));
  };

  auto finish_supernode = [&](index_t s) {
    mem.add(update_of[s].size() * sizeof(real_t));
    for (index_t c : children[s]) {
      mem.sub(update_of[c].size() * sizeof(real_t));
      update_of[c] = {};
    }
  };

  // Phase 1 — dependency counting: a supernode becomes ready when all
  // children are done; leaves are seeded directly. Propagation stops at the
  // phase boundary.
  std::vector<std::atomic<index_t>> pending(static_cast<std::size_t>(ns));
  for (index_t s = 0; s < ns; ++s) {
    pending[s].store(static_cast<index_t>(children[s].size()));
  }
  std::function<void(index_t)> run_supernode = [&](index_t s) {
    // Per-task poll: a cancelled run stops spawning parents; the exception
    // is captured by the pool and rethrown from wait() below.
    cancel.throw_if_cancelled();
    auto scratch = acquire_scratch();
    const count_t boosted = detail::eliminate_front(
        sym, s, update_of, children, factor.panel(s), update_of[s], *scratch,
        kind, d, nullptr, pivot);
    if (boosted > 0) {
      perturbations.fetch_add(boosted, std::memory_order_relaxed);
    }
    release_scratch(std::move(scratch));
    finish_supernode(s);
    const index_t parent = sym.sn_parent[s];
    if (parent != kNone && tasked[parent] &&
        pending[parent].fetch_sub(1) == 1) {
      pool.submit([&run_supernode, parent] { run_supernode(parent); });
    }
  };
  for (index_t s = 0; s < ns; ++s) {
    if (tasked[s] && children[s].empty()) {
      pool.submit([&run_supernode, s] { run_supernode(s); });
    }
  }
  pool.wait();

  // Phase 2 — cooperative top of the tree: postorder on the calling thread
  // (children of any remaining supernode are already done), every front's
  // TRSM/SYRK/GEMM row-split across the pool.
  detail::FrontScratch scratch(sym.n);
  for (index_t s = 0; s < ns; ++s) {
    if (tasked[s]) continue;
    cancel.throw_if_cancelled();
    perturbations.fetch_add(
        detail::eliminate_front(sym, s, update_of, children, factor.panel(s),
                                update_of[s], scratch, kind, d, &pool, pivot),
        std::memory_order_relaxed);
    finish_supernode(s);
  }

  if (stats != nullptr) {
    stats->seconds = timer.seconds();
    stats->flops = sym.total_flops;
    stats->peak_update_bytes = mem.peak();
    stats->pivot_perturbations =
        perturbations.load(std::memory_order_relaxed);
  }
}

FactorizeResult multifrontal_factorize(const SymbolicFactor& sym,
                                       FactorKind kind, PivotPolicy pivot,
                                       ThreadPool* pool, CancelToken cancel) {
  FactorizeResult result;
  try {
    result.factor.emplace(pool != nullptr && pool->size() > 1
                              ? multifrontal_factor_parallel(
                                    sym, *pool, &result.stats, kind,
                                    kCoopFrontFlops, pivot, cancel)
                              : multifrontal_factor(sym, &result.stats, kind,
                                                    pivot, cancel));
    result.status = Status::success(result.stats.pivot_perturbations);
  } catch (const StatusError& e) {
    result.factor.reset();
    result.status = e.status();
  } catch (const Error& e) {
    result.factor.reset();
    result.status = Status::failure(StatusCode::kInternal, e.what());
  }
  return result;
}

}  // namespace parfact
