#include "mf/multifrontal.h"

#include <atomic>
#include <span>
#include <mutex>
#include <vector>

#include "dense/kernels.h"
#include "mf/front_kernel.h"
#include "support/error.h"
#include "support/timer.h"

namespace parfact {
namespace {

/// Tracks live update-block bytes and their peak across the run.
class UpdateMemory {
 public:
  void add(std::size_t bytes) {
    const std::size_t now = live_.fetch_add(bytes) + bytes;
    std::size_t peak = peak_.load();
    while (now > peak && !peak_.compare_exchange_weak(peak, now)) {
    }
  }
  void sub(std::size_t bytes) { live_.fetch_sub(bytes); }
  [[nodiscard]] std::size_t peak() const { return peak_.load(); }

 private:
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> peak_{0};
};

}  // namespace

CholeskyFactor multifrontal_factor(const SymbolicFactor& sym,
                                   FactorStats* stats, FactorKind kind) {
  WallTimer timer;
  CholeskyFactor factor(sym);
  std::span<real_t> d;
  if (kind == FactorKind::kLdlt) d = factor.allocate_diag();
  const auto children = detail::build_children(sym);
  std::vector<std::vector<real_t>> update_of(
      static_cast<std::size_t>(sym.n_supernodes));
  detail::FrontScratch scratch(sym.n);
  UpdateMemory mem;

  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    detail::eliminate_front(sym, s, update_of, children, factor.panel(s),
                            update_of[s], scratch, kind, d);
    mem.add(update_of[s].size() * sizeof(real_t));
    for (index_t c : children[s]) {
      mem.sub(update_of[c].size() * sizeof(real_t));
      update_of[c] = {};
    }
  }

  if (stats != nullptr) {
    stats->seconds = timer.seconds();
    stats->flops = sym.total_flops;
    stats->peak_update_bytes = mem.peak();
  }
  return factor;
}

CholeskyFactor multifrontal_factor_parallel(const SymbolicFactor& sym,
                                            ThreadPool& pool,
                                            FactorStats* stats,
                                            FactorKind kind) {
  WallTimer timer;
  CholeskyFactor factor(sym);
  std::span<real_t> d;
  if (kind == FactorKind::kLdlt) d = factor.allocate_diag();
  const auto children = detail::build_children(sym);
  const index_t ns = sym.n_supernodes;
  std::vector<std::vector<real_t>> update_of(static_cast<std::size_t>(ns));
  UpdateMemory mem;

  // Pool of scratch maps, one handed to each running task.
  std::mutex scratch_mu;
  std::vector<std::unique_ptr<detail::FrontScratch>> scratch_pool;
  auto acquire_scratch = [&]() -> std::unique_ptr<detail::FrontScratch> {
    std::lock_guard<std::mutex> lock(scratch_mu);
    if (scratch_pool.empty()) {
      return std::make_unique<detail::FrontScratch>(sym.n);
    }
    auto s = std::move(scratch_pool.back());
    scratch_pool.pop_back();
    return s;
  };
  auto release_scratch = [&](std::unique_ptr<detail::FrontScratch> s) {
    std::lock_guard<std::mutex> lock(scratch_mu);
    scratch_pool.push_back(std::move(s));
  };

  // Dependency counting: a supernode becomes ready when all children are
  // done; leaves are seeded directly.
  std::vector<std::atomic<index_t>> pending(static_cast<std::size_t>(ns));
  for (index_t s = 0; s < ns; ++s) {
    pending[s].store(static_cast<index_t>(children[s].size()));
  }

  // The recursive task body: run this supernode, then maybe enqueue parent.
  std::function<void(index_t)> run_supernode = [&](index_t s) {
    auto scratch = acquire_scratch();
    detail::eliminate_front(sym, s, update_of, children, factor.panel(s),
                            update_of[s], *scratch, kind, d);
    release_scratch(std::move(scratch));
    mem.add(update_of[s].size() * sizeof(real_t));
    for (index_t c : children[s]) {
      mem.sub(update_of[c].size() * sizeof(real_t));
      update_of[c] = {};
    }
    const index_t parent = sym.sn_parent[s];
    if (parent != kNone && pending[parent].fetch_sub(1) == 1) {
      pool.submit([&run_supernode, parent] { run_supernode(parent); });
    }
  };

  for (index_t s = 0; s < ns; ++s) {
    if (children[s].empty()) {
      pool.submit([&run_supernode, s] { run_supernode(s); });
    }
  }
  pool.wait();

  if (stats != nullptr) {
    stats->seconds = timer.seconds();
    stats->flops = sym.total_flops;
    stats->peak_update_bytes = mem.peak();
  }
  return factor;
}

}  // namespace parfact
