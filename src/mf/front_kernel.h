// Internal: the single-front assemble/eliminate kernel shared by the
// in-core, out-of-core and shared-memory multifrontal drivers.
#pragma once

#include <span>
#include <vector>

#include "dense/matrix_view.h"
#include "mf/multifrontal.h"
#include "symbolic/symbolic_factor.h"

namespace parfact::detail {

/// Per-worker scratch: the global-row -> front-local-row map. Entries are
/// only valid for the front currently being assembled and are reset after.
struct FrontScratch {
  std::vector<index_t> local_of;
  explicit FrontScratch(index_t n)
      : local_of(static_cast<std::size_t>(n), kNone) {}
};

/// Assembles and partially factorizes the front of supernode s; returns the
/// number of pivots boosted by `pivot` (always 0 with boosting off).
///
/// `panel` (front_order x sn_cols, zeroed) receives the factor panel; the
/// trailing Schur complement is written into `update_out`. Children's update
/// blocks are consumed (extend-add) but not freed here. In LDLᵀ mode `d`
/// receives diag(D) for this supernode's columns and the panel holds the
/// unit-diagonal L. On an unrecoverable pivot (non-finite, or breakdown
/// with boosting off) throws StatusError carrying StatusCode::kBreakdown
/// with the supernode id and front size; the scratch map is restored on
/// every exit path, so pooled scratch objects stay reusable even when a
/// parallel-engine task throws.
///
/// When `pool` is non-null the TRSM and trailing SYRK/GEMM split their row
/// range across the pool's workers (intra-front parallelism for the large
/// fronts near the root, where tree parallelism has run out). The parallel
/// kernels are bitwise identical to the serial ones, so the factor does not
/// depend on the pool. The caller must not invoke this from inside a task
/// running on the same pool (the row-split barrier would deadlock).
count_t eliminate_front(const SymbolicFactor& sym, index_t s,
                        const std::vector<std::vector<real_t>>& update_of,
                        const std::vector<std::vector<index_t>>& children,
                        MatrixView panel, std::vector<real_t>& update_out,
                        FrontScratch& scratch, FactorKind kind,
                        std::span<real_t> d, ThreadPool* pool = nullptr,
                        const PivotPolicy& pivot = {});

/// Child lists of the assembly tree.
[[nodiscard]] std::vector<std::vector<index_t>> build_children(
    const SymbolicFactor& sym);

}  // namespace parfact::detail
