// Internal: the single-front assemble/eliminate kernel shared by the
// in-core, out-of-core and shared-memory multifrontal drivers, split into
// its pipeline stages so the task-DAG engine (dag_factor.h) can schedule
// them as separate graph nodes. eliminate_front recomposes the stages and
// is bitwise identical to the historical monolithic kernel.
#pragma once

#include <span>
#include <vector>

#include "dense/matrix_view.h"
#include "mf/multifrontal.h"
#include "symbolic/symbolic_factor.h"

namespace parfact::detail {

/// Per-worker scratch: the global-row -> front-local-row map. Entries are
/// only valid for the front currently being assembled and are reset after.
struct FrontScratch {
  std::vector<index_t> local_of;
  explicit FrontScratch(index_t n)
      : local_of(static_cast<std::size_t>(n), kNone) {}
};

/// Split column sums of the child update blocks consumed by assembly,
/// produced on request by assemble_front (the ABFT engine's
/// consumption-time verification — the blocks are summed from the very
/// read the extend-add performs, never re-read). For child i (in fixed
/// child order) and column cj of its block, entries [4*cj+0..1] hold the
/// {value, magnitude} sums over the rows that land in the parent's panel
/// and [4*cj+2..3] the sums over the rows that land in the parent's
/// update seed; pre+suf is the block column's full lower sum.
struct AssemblySums {
  std::vector<std::vector<real_t>> per_child;
};

/// Stage 1 — assembly: zeroes `update_out` (resized to b x b), scatters the
/// original matrix columns of supernode s into `panel`, then extend-adds
/// the children's update blocks *in fixed child order* (the deterministic-
/// merge discipline: the summation order per element never depends on the
/// execution schedule). Children's blocks are read, not freed. The scratch
/// map is restored on every exit path.
///
/// With `sums` non-null the extend-add also records each child block's
/// split column sums (see AssemblySums); the scatter performs the same
/// cell updates in the same order, so the assembled front is bitwise
/// identical either way.
void assemble_front(const SymbolicFactor& sym, index_t s,
                    const std::vector<std::vector<real_t>>& update_of,
                    const std::vector<std::vector<index_t>>& children,
                    MatrixView panel, std::vector<real_t>& update_out,
                    FrontScratch& scratch, AssemblySums* sums = nullptr);

/// Stage 2 — diagonal-block factorization: POTRF (Cholesky) or LDLᵀ of the
/// leading p x p block of `panel`; in LDLᵀ mode writes diag(D) for this
/// supernode's columns into `d`. Returns the number of pivots boosted under
/// `pivot` (0 with boosting off). On an unrecoverable pivot throws
/// StatusError carrying StatusCode::kBreakdown with the supernode id and
/// front size.
count_t factor_front_diag(const SymbolicFactor& sym, index_t s,
                          MatrixView panel, FactorKind kind,
                          std::span<real_t> d, const PivotPolicy& pivot);

/// Stage 3b (LDLᵀ only, after the panel TRSM): copies M = L21 D out of the
/// panel into `m` (b x p column-major) and rescales the stored panel to
/// L21 = M D⁻¹. `first` is the supernode's first postordered column (the
/// offset of its pivots in `d`).
void ldlt_scale_panel(MatrixView l21, std::span<const real_t> d,
                      index_t first, std::vector<real_t>& m);

/// Assembles and partially factorizes the front of supernode s; returns the
/// number of pivots boosted by `pivot` (always 0 with boosting off).
///
/// `panel` (front_order x sn_cols, zeroed) receives the factor panel; the
/// trailing Schur complement is written into `update_out`. Children's update
/// blocks are consumed (extend-add) but not freed here. In LDLᵀ mode `d`
/// receives diag(D) for this supernode's columns and the panel holds the
/// unit-diagonal L. Breakdown behaviour is factor_front_diag's.
///
/// When `pool` is non-null the TRSM and trailing SYRK/GEMM split their row
/// range across the pool's workers (intra-front parallelism for the large
/// fronts near the root, where tree parallelism has run out). The parallel
/// kernels are bitwise identical to the serial ones, so the factor does not
/// depend on the pool. The caller must not invoke this from inside a task
/// running on the same pool (the row-split barrier would deadlock).
count_t eliminate_front(const SymbolicFactor& sym, index_t s,
                        const std::vector<std::vector<real_t>>& update_of,
                        const std::vector<std::vector<index_t>>& children,
                        MatrixView panel, std::vector<real_t>& update_out,
                        FrontScratch& scratch, FactorKind kind,
                        std::span<real_t> d, ThreadPool* pool = nullptr,
                        const PivotPolicy& pivot = {});

/// Child lists of the assembly tree.
[[nodiscard]] std::vector<std::vector<index_t>> build_children(
    const SymbolicFactor& sym);

}  // namespace parfact::detail
