#include "mf/abft.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "dense/kernels.h"
#include "mf/front_kernel.h"
#include "mf/update_memory.h"
#include "support/checksum.h"
#include "support/error.h"
#include "support/timer.h"

namespace parfact {
namespace {

// splitmix64: seeds the deterministic choice of the flipped element.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct ColSums {
  std::vector<real_t> sum;
  std::vector<real_t> abs;
  void reset(index_t n) {
    sum.assign(static_cast<std::size_t>(n), 0.0);
    abs.assign(static_cast<std::size_t>(n), 0.0);
  }
  void add(index_t j, real_t v) {
    sum[static_cast<std::size_t>(j)] += v;
    abs[static_cast<std::size_t>(j)] += std::abs(v);
  }
};

// The colsum helpers stream one contiguous column at a time (the views are
// column-major); the checks are O(front^2) against O(front^3) kernels and
// must stay memory-bound, not stride-bound, for the overhead budget to hold.
//
// The per-element loops below are the entire ABFT cost, so they carry
// runtime ISA dispatch (GCC ifunc clones) where available: the build stays
// a portable baseline binary, but a machine with wider vectors runs the
// checks at its native width. The loops are element-wise (or fixed-lane)
// streams, so every clone performs the identical FP operations in the
// identical order — the dispatch never changes a computed sum.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__clang__)
// 256-bit on purpose: 512-bit ops trigger license-based downclocking on
// several x86 parts, and the cycles saved in the checks would be repaid
// with interest by the surrounding kernels running at the lower clock.
#define PARFACT_ABFT_CLONES \
  __attribute__((target_clones("default", "avx2")))
#else
#define PARFACT_ABFT_CLONES
#endif

// Value + magnitude reduction over a contiguous range with eight
// independent partial accumulators: without reassociation (-ffast-math is
// off) a naive loop is a single add-latency chain at ~4 cycles per
// element; independent lanes run at load throughput (and map onto one
// 512-bit register when the ISA has it). The fixed blocking keeps the
// summation order deterministic run to run.
PARFACT_ABFT_CLONES
void sum_abs(const real_t* v, index_t n, real_t& sum_out, real_t& abs_out) {
  real_t s[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  real_t a[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int l = 0; l < 8; ++l) {
      s[l] += v[i + l];
      a[l] += std::abs(v[i + l]);
    }
  }
  for (; i < n; ++i) {
    s[0] += v[i];
    a[0] += std::abs(v[i]);
  }
  sum_out = ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
  abs_out = ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]));
}

// dst_s[i] += col[i]; dst_a[i] += |col[i]| — the symmetric-completion row
// scatter (assembly A11 read and the U' pass).
PARFACT_ABFT_CLONES
void accum_abs(real_t* dst_s, real_t* dst_a, const real_t* col, index_t n) {
  for (index_t i = 0; i < n; ++i) {
    dst_s[i] += col[i];
    dst_a[i] += std::abs(col[i]);
  }
}

// One L11 column's contribution to both triangular identities:
// p2 += w1*col, s2 += w1a*|col|, p3 += w2*col, s3 += w2a*|col|.
PARFACT_ABFT_CLONES
void accum_two_weighted(real_t* p2, real_t* s2, real_t* p3, real_t* s3,
                        const real_t* col, index_t n, real_t w1, real_t w1a,
                        real_t w2, real_t w2a) {
  for (index_t i = 0; i < n; ++i) {
    const real_t v = col[i];
    const real_t av = std::abs(v);
    p2[i] += w1 * v;
    s2[i] += w1a * av;
    p3[i] += w2 * v;
    s3[i] += w2a * av;
  }
}

// Column sums of the lower part (rows >= col) of an n x n view.
void lower_colsums(ConstMatrixView m, ColSums& out) {
  out.reset(m.cols);
  for (index_t j = 0; j < m.cols; ++j) {
    const real_t* col = m.data + static_cast<std::size_t>(j) * m.ld;
    sum_abs(col + j, m.rows - j, out.sum[static_cast<std::size_t>(j)],
            out.abs[static_cast<std::size_t>(j)]);
  }
}

// UPDATE-identity prediction on LOWER column sums. For the trailing update
// U' = U0 − L21 Mᵀ, the lower column sum obeys
//
//   lowcol_j(U') = lowcol_j(U0) − Σ_k S_j(k) M(j,k),   S_j(k) = Σ_{i≥j} L21(i,k)
//
// where S_j is the running suffix sum of L21's columns. Walking rows
// descending turns the j-dependent truncation into one running p-vector,
// so the prediction costs O(b·p) — reading L21 and M once — instead of the
// O(b²) row-scatter a symmetric-sum identity would need over U' itself.
// Columns are processed in fixed blocks of four (independent suffix chains
// hide the add latency; the order stays deterministic), and the final
// suffix values are each column's full sum, returned in `l21cols` for the
// TRSM weights / LDLᵀ rescale check.
void predict_update_lower(ConstMatrixView l21, ConstMatrixView m,
                          real_t* pred, real_t* scale, ColSums& l21cols) {
  const index_t b = l21.rows;
  const index_t p = l21.cols;
  l21cols.reset(p);
  index_t k = 0;
  for (; k + 4 <= p; k += 4) {
    const real_t* c0 = l21.data + static_cast<std::size_t>(k) * l21.ld;
    const real_t* c1 = c0 + l21.ld;
    const real_t* c2 = c1 + l21.ld;
    const real_t* c3 = c2 + l21.ld;
    const real_t* m0 = m.data + static_cast<std::size_t>(k) * m.ld;
    const real_t* m1 = m0 + m.ld;
    const real_t* m2 = m1 + m.ld;
    const real_t* m3 = m2 + m.ld;
    real_t s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    real_t a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (index_t j = b; j-- > 0;) {
      s0 += c0[j];
      a0 += std::abs(c0[j]);
      s1 += c1[j];
      a1 += std::abs(c1[j]);
      s2 += c2[j];
      a2 += std::abs(c2[j]);
      s3 += c3[j];
      a3 += std::abs(c3[j]);
      pred[j] -= (s0 * m0[j] + s1 * m1[j]) + (s2 * m2[j] + s3 * m3[j]);
      scale[j] += (a0 * std::abs(m0[j]) + a1 * std::abs(m1[j])) +
                  (a2 * std::abs(m2[j]) + a3 * std::abs(m3[j]));
    }
    l21cols.sum[static_cast<std::size_t>(k)] = s0;
    l21cols.abs[static_cast<std::size_t>(k)] = a0;
    l21cols.sum[static_cast<std::size_t>(k) + 1] = s1;
    l21cols.abs[static_cast<std::size_t>(k) + 1] = a1;
    l21cols.sum[static_cast<std::size_t>(k) + 2] = s2;
    l21cols.abs[static_cast<std::size_t>(k) + 2] = a2;
    l21cols.sum[static_cast<std::size_t>(k) + 3] = s3;
    l21cols.abs[static_cast<std::size_t>(k) + 3] = a3;
  }
  for (; k < p; ++k) {
    const real_t* c = l21.data + static_cast<std::size_t>(k) * l21.ld;
    const real_t* mc = m.data + static_cast<std::size_t>(k) * m.ld;
    real_t s = 0.0, a = 0.0;
    for (index_t j = b; j-- > 0;) {
      s += c[j];
      a += std::abs(c[j]);
      pred[j] -= s * mc[j];
      scale[j] += a * std::abs(mc[j]);
    }
    l21cols.sum[static_cast<std::size_t>(k)] = s;
    l21cols.abs[static_cast<std::size_t>(k)] = a;
  }
}

// Column sums of a full rectangular view.
void rect_colsums(ConstMatrixView m, ColSums& out) {
  out.reset(m.cols);
  for (index_t j = 0; j < m.cols; ++j) {
    const real_t* col = m.data + static_cast<std::size_t>(j) * m.ld;
    sum_abs(col, m.rows, out.sum[static_cast<std::size_t>(j)],
            out.abs[static_cast<std::size_t>(j)]);
  }
}

// The ABFT factorization engine. One instance per multifrontal_factor_abft
// call; mirrors multifrontal_factor's postorder loop but runs the four
// kernel stages individually with a checksum identity after each, and owns
// the detect -> localize -> recompute machinery.
class AbftEngine {
 public:
  AbftEngine(const SymbolicFactor& sym, FactorKind kind, PivotPolicy pivot,
             const AbftOptions& options, CholeskyFactor& factor,
             std::span<real_t> d, FactorChecksums* checksums)
      : sym_(sym),
        kind_(kind),
        pivot_(pivot),
        options_(options),
        factor_(factor),
        d_(d),
        checksums_(checksums),
        children_(detail::build_children(sym)),
        update_of_(static_cast<std::size_t>(sym.n_supernodes)),
        panel_dirty_(static_cast<std::size_t>(sym.n_supernodes), 0),
        perturb_of_(static_cast<std::size_t>(sym.n_supernodes), 0),
        carried_(static_cast<std::size_t>(sym.n_supernodes)),
        scratch_(sym.n) {
    fd_.resize(static_cast<std::size_t>(sym.n_supernodes));
    for (index_t s = 0; s < sym.n_supernodes; ++s) {
      fd_[s] = children_[s].empty() ? s : fd_[children_[s].front()];
    }
    if (checksums_ != nullptr) {
      checksums_->col_sum.assign(static_cast<std::size_t>(sym.n), 0.0);
      checksums_->col_abs.assign(static_cast<std::size_t>(sym.n), 0.0);
    }
  }

  void run(CancelToken cancel) {
    for (index_t s = 0; s < sym_.n_supernodes; ++s) {
      cancel.throw_if_cancelled();
      run_front(s);
      mem_.add(update_of_[s].size() * sizeof(real_t));
      free_children(s);
    }
  }

  [[nodiscard]] count_t perturbations() const {
    count_t total = 0;
    for (const count_t c : perturb_of_) total += c;
    return total;
  }
  [[nodiscard]] std::size_t peak_update_bytes() const { return mem_.peak(); }
  count_t checks = 0;
  count_t detections = 0;
  count_t fronts_recomputed = 0;

 private:
  void free_children(index_t s) {
    for (const index_t c : children_[s]) {
      mem_.sub(update_of_[c].size() * sizeof(real_t));
      update_of_[c] = {};
      // The parent has verified and consumed the block; any later repair
      // that revisits this subtree regenerates the prediction with it.
      carried_[c] = ColSums{};
    }
  }

  [[nodiscard]] bool column_ok(real_t actual, real_t predicted,
                               real_t scale) const {
    return !abft_mismatch(actual, predicted, scale, options_.tolerance);
  }

  // ---- fault injection -----------------------------------------------

  [[nodiscard]] index_t inject_target() const {
    const SdcInjection& inj = *options_.inject;
    if (inj.supernode != kNone) return inj.supernode;
    return static_cast<index_t>(mix64(inj.seed) %
                                static_cast<std::uint64_t>(sym_.n_supernodes));
  }

  // Flips one element of the site's region if this front is the campaign
  // target. Non-sticky faults strike once; sticky faults re-strike on
  // every (re)computation of the front.
  void maybe_inject(SdcSite site, index_t s, MatrixView panel,
                    MatrixView update) {
    const SdcInjection* inj = options_.inject;
    if (inj == nullptr || inj->site != site || injection_fired_) return;
    if (inject_target() != s) return;
    const index_t p = sym_.sn_cols(s);
    const index_t b = sym_.sn_below(s);
    const index_t f = p + b;
    const std::uint64_t h1 = mix64(inj->seed ^ 0x5bf03635ull);
    const std::uint64_t h2 = mix64(h1);
    real_t* cell = nullptr;
    switch (site) {
      case SdcSite::kAssembly: {
        const index_t j = static_cast<index_t>(h1 % p);
        const index_t i =
            j + static_cast<index_t>(h2 % static_cast<std::uint64_t>(f - j));
        cell = &panel.at(i, j);
        break;
      }
      case SdcSite::kPotrf: {
        const index_t j = static_cast<index_t>(h1 % p);
        const index_t i =
            j + static_cast<index_t>(h2 % static_cast<std::uint64_t>(p - j));
        cell = &panel.at(i, j);
        break;
      }
      case SdcSite::kTrsm: {
        if (b == 0) return;
        const index_t j = static_cast<index_t>(h1 % p);
        const index_t i = p + static_cast<index_t>(h2 % b);
        cell = &panel.at(i, j);
        break;
      }
      case SdcSite::kUpdate: {
        if (b == 0) return;
        const index_t j = static_cast<index_t>(h1 % b);
        const index_t i =
            j + static_cast<index_t>(h2 % static_cast<std::uint64_t>(b - j));
        cell = &update.at(i, j);
        break;
      }
      case SdcSite::kStoredFactor:
        return;  // applied outside the engine, after factorize
    }
    *cell = flip_bit(*cell, inj->bit);
    if (!inj->sticky) injection_fired_ = true;
  }

  // ---- per-stage checks ----------------------------------------------

  // Assembly-stage verification, fused with the extend-add: the child
  // update blocks' split column sums arrive in asm_sums_, taken from the
  // very read assemble_front performed (no block is ever re-read). Each
  // child column's actual total is first compared against the prediction
  // the child carried from its suffix walk — that IS the child's
  // UPDATE-identity check, executed at consumption time — and the verified
  // actual sums then become the baselines for every downstream identity
  // (lower column sums are linear under extend-add: the lower triangle of
  // a child block maps into the lower triangle of the parent front, column
  // to column). Only the small A11 block is read back and compared against
  // its prediction: that keeps corruption out of the diagonal kernel, so a
  // flipped A11 can neither masquerade as a pivot breakdown nor hide
  // behind a static pivot boost (whose fronts skip the POTRF identity).
  //
  // Fills asm_pred_ (predicted lower A11 sums), a11_pre_ (actual SYMMETRIC
  // A11 sums — the POTRF baseline, built from the same read), a21_pre_
  // (A21 column sums) and u0_ (lower update-seed sums). On mismatch the
  // caller re-verifies the children's blocks and recomputes any corrupt
  // child subtree.
  [[nodiscard]] bool check_assembly(index_t s, ConstMatrixView panel) {
    ++checks;
    const index_t p = sym_.sn_cols(s);
    const index_t b = sym_.sn_below(s);
    asm_pred_.reset(p);
    a21_pre_.reset(p);
    u0_.reset(b);
    const SparseMatrix& a = sym_.a;
    const index_t first = sym_.sn_start[s];
    const index_t bound = sym_.sn_start[s + 1];
    for (index_t j = first; j < bound; ++j) {
      for (index_t q = a.col_ptr[j]; q < a.col_ptr[j + 1]; ++q) {
        const index_t gi = a.row_ind[static_cast<std::size_t>(q)];
        const real_t v = a.values[static_cast<std::size_t>(q)];
        if (gi < bound) {
          asm_pred_.add(j - first, v);
        } else {
          a21_pre_.add(j - first, v);
        }
      }
    }
    const auto prows = sym_.below_rows(s);
    std::size_t ic = 0;
    for (const index_t c : children_[s]) {
      ++checks;  // the child block's UPDATE identity, checked at consumption
      const auto crows = sym_.below_rows(c);
      const index_t cb = sym_.sn_below(c);
      const std::vector<real_t>& cs = asm_sums_.per_child[ic++];
      const ColSums& want = carried_[c];
      // Both row lists are ascending, so a single merge walk maps the
      // seed-landing child columns onto this front's update rows.
      index_t pi = 0;
      for (index_t cj = 0; cj < cb; ++cj) {
        const std::size_t uc = static_cast<std::size_t>(cj);
        const real_t* o = cs.data() + uc * 4;
        if (!column_ok(o[0] + o[2], want.sum[uc], want.abs[uc])) return false;
        const index_t g = crows[cj];
        if (g < bound) {
          // Panel-mapped child column: its panel-landing rows are A11
          // rows, its seed-landing rows are A21 rows of this front.
          const index_t lj = g - first;
          asm_pred_.sum[lj] += o[0];
          asm_pred_.abs[lj] += o[1];
          a21_pre_.sum[lj] += o[2];
          a21_pre_.abs[lj] += o[3];
        } else {
          while (prows[pi] < g) ++pi;
          u0_.sum[pi] += o[2];
          u0_.abs[pi] += o[3];
        }
      }
    }
    // Read back the A11 block only: lower sums feed the per-column
    // assembly comparison; the symmetric completion (a second sweep of the
    // L1-hot column) builds the POTRF baseline from the same read.
    a11_pre_.reset(p);
    for (index_t j = 0; j < p; ++j) {
      const real_t* col = panel.data + static_cast<std::size_t>(j) * panel.ld;
      real_t s11 = 0.0;
      real_t m11 = 0.0;
      sum_abs(col + j, p - j, s11, m11);
      real_t* as = a11_pre_.sum.data();
      real_t* aa = a11_pre_.abs.data();
      accum_abs(as + j + 1, aa + j + 1, col + j + 1, p - j - 1);
      as[j] += s11;
      aa[j] += m11;
      const std::size_t uj = static_cast<std::size_t>(j);
      if (!column_ok(s11, asm_pred_.sum[uj], asm_pred_.abs[uj])) return false;
    }
    return true;
  }

  // Combined post-kernel verification, two streaming passes total:
  //
  //   POTRF identity:  e'A11 = (e'L11) L11'        (LDLᵀ: weight by D)
  //   TRSM identity:   colsums(M) L11' = colsums(A21),  M = A21 L11⁻ᵀ
  //   UPDATE identity: lowcols(U') = lowcols(U0) − suffix(L21)·M  (per row)
  //
  // Pass 1 walks L21/M once (descending, predict_update_lower), producing
  // the UPDATE-identity prediction plus the L21 column sums as a
  // byproduct — for Cholesky those ARE the M sums the TRSM identity
  // weights with. Pass 2 walks L11 once, serving both triangular
  // identities. The update block itself is never read here: the
  // UPDATE-identity prediction is carried to the parent, which compares it
  // against the block's actual sums during its own extend-add (the block's
  // one and only read) — see check_assembly. Deferring the POTRF
  // comparison until after TRSM/UPDATE ran costs wasted kernel work on a
  // corrupt front (rare), but the retry reassembles from scratch so the
  // healed result is still bitwise identical.
  //
  // The POTRF identity is skipped when static pivoting boosted a pivot in
  // this front — the boost deliberately breaks A11 = L11 L11'. The TRSM
  // identity holds for whatever L11 the diagonal stage produced. For LDLᵀ
  // the panel was rescaled to L21 = M D⁻¹, and the rescale is verified
  // too: colsums(L21)·d = colsums(M).
  [[nodiscard]] bool check_stages(index_t s, ConstMatrixView l11,
                                  ConstMatrixView l21, ConstMatrixView m,
                                  count_t boosted) {
    const index_t p = l11.cols;
    const index_t b = sym_.sn_below(s);
    const index_t first = sym_.sn_start[s];
    if (boosted == 0) ++checks;  // POTRF
    if (b > 0) ++checks;         // TRSM (UPDATE is counted at consumption)

    // Pass 1: UPDATE prediction + L21/M column sums.
    pred_.assign(u0_.sum.begin(), u0_.sum.end());
    scale_.assign(u0_.abs.begin(), u0_.abs.end());
    if (b > 0) {
      if (kind_ == FactorKind::kCholesky) {
        predict_update_lower(l21, m, pred_.data(), scale_.data(), msums_);
      } else {
        predict_update_lower(l21, m, pred_.data(), scale_.data(), l21sums_);
        rect_colsums(m, msums_);
      }
    } else {
      msums_.reset(p);
    }

    // Pass 2: L11 column sums + both triangular predictions.
    l11sums_.reset(p);
    pred2_.assign(static_cast<std::size_t>(p), 0.0);
    scale2_.assign(static_cast<std::size_t>(p), 0.0);
    pred3_.assign(static_cast<std::size_t>(p), 0.0);
    scale3_.assign(static_cast<std::size_t>(p), 0.0);
    real_t* p2 = pred2_.data();
    real_t* s2 = scale2_.data();
    real_t* p3 = pred3_.data();
    real_t* s3 = scale3_.data();
    for (index_t k = 0; k < p; ++k) {
      const real_t* col = l11.data + static_cast<std::size_t>(k) * l11.ld;
      real_t sum = 0.0;
      real_t mag = 0.0;
      sum_abs(col + k, p - k, sum, mag);
      const std::size_t uk = static_cast<std::size_t>(k);
      l11sums_.sum[uk] = sum;
      l11sums_.abs[uk] = mag;
      real_t w1 = sum;
      real_t w1a = mag;
      if (kind_ == FactorKind::kLdlt) {
        const real_t dk = d_[static_cast<std::size_t>(first + k)];
        w1 *= dk;
        w1a *= std::abs(dk);
      }
      const real_t w2 = msums_.sum[uk];
      const real_t w2a = msums_.abs[uk];
      accum_two_weighted(p2 + k, s2 + k, p3 + k, s3 + k, col + k, p - k, w1,
                         w1a, w2, w2a);
    }
    if (boosted == 0) {
      for (index_t j = 0; j < p; ++j) {
        const std::size_t uj = static_cast<std::size_t>(j);
        if (!column_ok(a11_pre_.sum[uj], p2[j], a11_pre_.abs[uj] + s2[j])) {
          return false;
        }
      }
    }
    if (b == 0) {
      carried_[s].reset(0);
      return true;
    }
    for (index_t j = 0; j < p; ++j) {
      const std::size_t uj = static_cast<std::size_t>(j);
      if (!column_ok(a21_pre_.sum[uj], p3[j], a21_pre_.abs[uj] + s3[j])) {
        return false;
      }
    }
    if (kind_ == FactorKind::kLdlt) {
      for (index_t k = 0; k < p; ++k) {
        const std::size_t uk = static_cast<std::size_t>(k);
        const real_t dk = d_[static_cast<std::size_t>(first + k)];
        if (!column_ok(l21sums_.sum[uk] * dk, msums_.sum[uk],
                       l21sums_.abs[uk] * std::abs(dk) + msums_.abs[uk])) {
          return false;
        }
      }
    }

    // Carry the UPDATE-identity prediction (value + tolerance scale) to
    // the parent; it is the truth the block's actual sums are verified
    // against when the parent's extend-add reads them.
    ColSums& car = carried_[s];
    car.sum.assign(pred_.begin(), pred_.end());
    car.abs.assign(scale_.begin(), scale_.end());
    return true;
  }

  // ---- detect -> localize -> recompute --------------------------------

  [[noreturn]] void fail_sticky(index_t s, const char* stage) const {
    std::ostringstream os;
    os << "abft: persistent corruption at " << stage << " of supernode " << s
       << " after " << options_.max_front_attempts
       << " recompute attempt(s)";
    throw StatusError(
        Status::failure(StatusCode::kDataCorruption, os.str(), s));
  }

  // Re-verifies the in-memory update blocks of s's children against their
  // carried predictions and recomputes the subtree of any corrupt child.
  void repair_children(index_t s) {
    for (const index_t c : children_[s]) {
      const index_t cb = sym_.sn_below(c);
      const ConstMatrixView cu{update_of_[c].data(), cb, cb, cb};
      ColSums actual;
      lower_colsums(cu, actual);
      const ColSums& want = carried_[c];
      bool ok = true;
      for (index_t j = 0; j < cb && ok; ++j) {
        const std::size_t uj = static_cast<std::size_t>(j);
        ok = column_ok(actual.sum[uj], want.sum[uj], want.abs[uj]);
      }
      if (!ok) recompute_range(fd_[c], c);
    }
  }

  // Re-runs the contiguous postorder subtree [lo, hi]; every interior
  // block is regenerated, then freed again once its parent has consumed
  // it, leaving only hi's update block live (as the main loop expects).
  void recompute_range(index_t lo, index_t hi) {
    for (index_t t = lo; t <= hi; ++t) {
      run_front(t);
      ++fronts_recomputed;
      if (t < hi) mem_.add(update_of_[t].size() * sizeof(real_t));
      if (t <= hi) free_children(t);
    }
  }

  void run_front(index_t s) {
    const index_t p = sym_.sn_cols(s);
    const index_t b = sym_.sn_below(s);
    const index_t first = sym_.sn_start[s];
    MatrixView panel = factor_.panel(s);

    for (int attempt = 0;; ++attempt) {
      if (attempt >= options_.max_front_attempts) fail_sticky(s, "retry");
      if (attempt > 0) ++fronts_recomputed;

      // assemble_front scatters with +=, so a recompute needs a clean
      // slate; the very first visit can rely on the factor buffer's zero
      // initialization, like the plain engine does.
      if (panel_dirty_[static_cast<std::size_t>(s)]) panel.fill(0.0);
      panel_dirty_[static_cast<std::size_t>(s)] = 1;
      detail::assemble_front(sym_, s, update_of_, children_, panel,
                             update_of_[s], scratch_, &asm_sums_);
      MatrixView update{update_of_[s].data(), b, b, b};
      maybe_inject(SdcSite::kAssembly, s, panel, update);
      if (!check_assembly(s, panel)) {
        ++detections;
        repair_children(s);
        continue;
      }

      const count_t boosted =
          detail::factor_front_diag(sym_, s, panel, kind_, d_, pivot_);
      MatrixView l11 = panel.block(0, 0, p, p);
      maybe_inject(SdcSite::kPotrf, s, panel, update);

      MatrixView l21{};
      ConstMatrixView m{};
      if (b > 0) {
        l21 = panel.block(p, 0, b, p);
        trsm_right_lower_trans(l11, l21, nullptr);
        m = l21;
        if (kind_ == FactorKind::kLdlt) {
          detail::ldlt_scale_panel(l21, d_, first, mstore_);
          m = ConstMatrixView{mstore_.data(), b, p, b};
        }
        maybe_inject(SdcSite::kTrsm, s, panel, update);

        if (kind_ == FactorKind::kCholesky) {
          syrk_lower_update(update, l21, nullptr);
        } else {
          gemm_nt_update(update, l21, m, nullptr);
        }
        maybe_inject(SdcSite::kUpdate, s, panel, update);
      }
      if (!check_stages(s, l11, l21, m, boosted)) {
        // Stage baselines are predictions built from the children's carried
        // sums, so a mismatch here may equally mean a corrupt child block
        // (e.g. an assembled-A21 or update-seed flip): re-verify the
        // children before retrying, recomputing any corrupt subtree.
        ++detections;
        repair_children(s);
        continue;
      }

      perturb_of_[s] = boosted;
      if (checksums_ != nullptr) {
        // The stored-factor checksums are the L11 sums refreshed after the
        // diagonal kernel plus the L21 sums from the TRSM check — the panel
        // is not re-read.
        const ColSums* l21s =
            b > 0 ? (kind_ == FactorKind::kCholesky ? &msums_ : &l21sums_)
                  : nullptr;
        for (index_t j = 0; j < p; ++j) {
          const std::size_t g = static_cast<std::size_t>(first + j);
          const std::size_t uj = static_cast<std::size_t>(j);
          checksums_->col_sum[g] =
              l11sums_.sum[uj] + (l21s != nullptr ? l21s->sum[uj] : 0.0);
          checksums_->col_abs[g] =
              l11sums_.abs[uj] + (l21s != nullptr ? l21s->abs[uj] : 0.0);
        }
      }
      return;
    }
  }

  const SymbolicFactor& sym_;
  const FactorKind kind_;
  const PivotPolicy pivot_;
  const AbftOptions& options_;
  CholeskyFactor& factor_;
  std::span<real_t> d_;
  FactorChecksums* checksums_;
  const std::vector<std::vector<index_t>> children_;
  std::vector<std::vector<real_t>> update_of_;
  std::vector<char> panel_dirty_;  ///< panel written before (retry must zero)
  std::vector<count_t> perturb_of_;
  std::vector<ColSums> carried_;  ///< predicted update-block sums + scales
  std::vector<index_t> fd_;       ///< first descendant (subtree start)
  detail::FrontScratch scratch_;
  detail::AssemblySums asm_sums_;  ///< child split sums from the extend-add
  detail::UpdateMemory mem_;
  bool injection_fired_ = false;

  // Per-front check scratch, reused across fronts so the O(front^2) checks
  // never allocate. Only valid within one run_front stage sequence.
  ColSums asm_pred_;   ///< predicted lower A11 sums (A + carried)
  ColSums a11_pre_;    ///< actual symmetric A11 sums (POTRF baseline)
  ColSums a21_pre_;    ///< predicted A21 column sums (A + carried)
  ColSums u0_;         ///< predicted lower update-seed sums (carried)
  ColSums l11sums_;    ///< L11 column sums after the diagonal kernel
  ColSums msums_;      ///< M = A21 L11⁻ᵀ column sums after TRSM
  ColSums l21sums_;    ///< L21 column sums (LDLᵀ rescale check)
  std::vector<real_t> pred_;    ///< UPDATE-identity prediction
  std::vector<real_t> scale_;
  std::vector<real_t> pred2_;   ///< POTRF-identity prediction
  std::vector<real_t> scale2_;
  std::vector<real_t> pred3_;   ///< TRSM-identity prediction
  std::vector<real_t> scale3_;
  std::vector<real_t> mstore_;  ///< LDLᵀ unscaled panel M
};

}  // namespace

CholeskyFactor multifrontal_factor_abft(const SymbolicFactor& sym,
                                        FactorStats* stats, FactorKind kind,
                                        PivotPolicy pivot,
                                        const AbftOptions& options,
                                        FactorChecksums* checksums,
                                        CancelToken cancel) {
  WallTimer timer;
  pivot = resolve_pivot_policy(pivot, sym.a);
  CholeskyFactor factor(sym);
  std::span<real_t> d;
  if (kind == FactorKind::kLdlt) d = factor.allocate_diag();
  AbftEngine engine(sym, kind, pivot, options, factor, d, checksums);
  engine.run(cancel);
  if (stats != nullptr) {
    stats->seconds = timer.seconds();
    stats->flops = sym.total_flops;
    stats->peak_update_bytes = engine.peak_update_bytes();
    stats->pivot_perturbations = engine.perturbations();
    stats->abft_checks = engine.checks;
    stats->abft_detections = engine.detections;
    stats->fronts_recomputed = engine.fronts_recomputed;
  }
  return factor;
}

FactorChecksums compute_factor_checksums(const SymbolicFactor& sym,
                                         const CholeskyFactor& factor) {
  FactorChecksums out;
  out.col_sum.assign(static_cast<std::size_t>(sym.n), 0.0);
  out.col_abs.assign(static_cast<std::size_t>(sym.n), 0.0);
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const ConstMatrixView panel = factor.panel(s);
    const index_t first = sym.sn_start[s];
    for (index_t j = 0; j < panel.cols; ++j) {
      real_t sum = 0.0;
      real_t abs = 0.0;
      for (index_t i = j; i < panel.rows; ++i) {
        const real_t v = panel.at(i, j);
        sum += v;
        abs += std::abs(v);
      }
      out.col_sum[static_cast<std::size_t>(first + j)] = sum;
      out.col_abs[static_cast<std::size_t>(first + j)] = abs;
    }
  }
  return out;
}

index_t verify_factor(const SymbolicFactor& sym, const CholeskyFactor& factor,
                      const FactorChecksums& checksums, real_t tolerance) {
  PARFACT_CHECK(!checksums.empty());
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const ConstMatrixView panel = factor.panel(s);
    const index_t first = sym.sn_start[s];
    for (index_t j = 0; j < panel.cols; ++j) {
      real_t sum = 0.0;
      for (index_t i = j; i < panel.rows; ++i) sum += panel.at(i, j);
      const std::size_t g = static_cast<std::size_t>(first + j);
      if (abft_mismatch(sum, checksums.col_sum[g], checksums.col_abs[g],
                        tolerance)) {
        return s;
      }
    }
  }
  return kNone;
}

index_t first_descendant(const SymbolicFactor& sym, index_t s) {
  const auto children = detail::build_children(sym);
  index_t t = s;
  while (!children[t].empty()) t = children[t].front();
  return t;
}

count_t recompute_subtree(const SymbolicFactor& sym, index_t root,
                          FactorKind kind, PivotPolicy pivot,
                          CholeskyFactor& factor,
                          FactorChecksums* checksums) {
  pivot = resolve_pivot_policy(pivot, sym.a);
  const auto children = detail::build_children(sym);
  index_t lo = root;
  while (!children[lo].empty()) lo = children[lo].front();

  std::span<real_t> d = factor.mutable_diag();
  std::vector<std::vector<real_t>> update_of(
      static_cast<std::size_t>(sym.n_supernodes));
  detail::FrontScratch scratch(sym.n);
  for (index_t t = lo; t <= root; ++t) {
    MatrixView panel = factor.panel(t);
    panel.fill(0.0);
    (void)detail::eliminate_front(sym, t, update_of, children, panel,
                                  update_of[t], scratch, kind, d, nullptr,
                                  pivot);
    for (const index_t c : children[t]) update_of[c] = {};
  }

  if (checksums != nullptr && !checksums->empty()) {
    for (index_t t = lo; t <= root; ++t) {
      const ConstMatrixView panel = factor.panel(t);
      const index_t first = sym.sn_start[t];
      for (index_t j = 0; j < panel.cols; ++j) {
        real_t sum = 0.0;
        real_t abs = 0.0;
        for (index_t i = j; i < panel.rows; ++i) {
          const real_t v = panel.at(i, j);
          sum += v;
          abs += std::abs(v);
        }
        checksums->col_sum[static_cast<std::size_t>(first + j)] = sum;
        checksums->col_abs[static_cast<std::size_t>(first + j)] = abs;
      }
    }
  }
  return root - lo + 1;
}

index_t inject_factor_bitflip(const SymbolicFactor& sym,
                              CholeskyFactor& factor,
                              const SdcInjection& injection) {
  index_t s = injection.supernode;
  if (s == kNone) {
    s = static_cast<index_t>(mix64(injection.seed) %
                             static_cast<std::uint64_t>(sym.n_supernodes));
  }
  MatrixView panel = factor.panel(s);
  const std::uint64_t h1 = mix64(injection.seed ^ 0x5bf03635ull);
  const std::uint64_t h2 = mix64(h1);
  const index_t j = static_cast<index_t>(h1 % panel.cols);
  const index_t i =
      j + static_cast<index_t>(h2 % static_cast<std::uint64_t>(panel.rows - j));
  panel.at(i, j) = flip_bit(panel.at(i, j), injection.bit);
  return s;
}

}  // namespace parfact
