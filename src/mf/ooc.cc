#include "mf/ooc.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "dense/kernels.h"
#include "mf/front_kernel.h"
#include "support/checksum.h"
#include "support/error.h"
#include "support/status.h"
#include "support/timer.h"

// Panel writes are guarded by the shared support/checksum FNV-1a — cheap
// relative to the fwrite it protects and order-sensitive, so any flipped,
// duplicated or dropped byte changes the digest.

namespace parfact {

OocCholeskyFactor::OocCholeskyFactor(const SymbolicFactor& sym,
                                     std::string path)
    : sym_(&sym), path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "wb+");
  PARFACT_CHECK_MSG(file_ != nullptr, "cannot create scratch file " << path_);
  // Unbuffered: panels are written/read whole, so stdio buffering buys
  // nothing — and the read-back checksum must verify the bytes actually on
  // disk, not a stale stdio cache that would mask external corruption.
  std::setvbuf(file_, nullptr, _IONBF, 0);
  offset_.resize(static_cast<std::size_t>(sym.n_supernodes) + 1);
  checksum_.assign(static_cast<std::size_t>(sym.n_supernodes), 0);
  offset_[0] = 0;
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const count_t panel_bytes = static_cast<count_t>(sym.front_order(s)) *
                                sym.sn_cols(s) *
                                static_cast<count_t>(sizeof(real_t));
    offset_[s + 1] = offset_[s] + panel_bytes;
  }
}

OocCholeskyFactor::~OocCholeskyFactor() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(path_.c_str());
  }
}

OocCholeskyFactor::OocCholeskyFactor(OocCholeskyFactor&& other) noexcept
    : sym_(other.sym_),
      path_(std::move(other.path_)),
      file_(std::exchange(other.file_, nullptr)),
      d_(std::move(other.d_)),
      offset_(std::move(other.offset_)),
      checksum_(std::move(other.checksum_)) {}

OocCholeskyFactor& OocCholeskyFactor::operator=(
    OocCholeskyFactor&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(path_.c_str());
  }
  sym_ = other.sym_;
  path_ = std::move(other.path_);
  file_ = std::exchange(other.file_, nullptr);
  d_ = std::move(other.d_);
  offset_ = std::move(other.offset_);
  checksum_ = std::move(other.checksum_);
  return *this;
}

std::span<real_t> OocCholeskyFactor::allocate_diag() {
  d_.assign(static_cast<std::size_t>(sym_->n), 0.0);
  return d_;
}

count_t OocCholeskyFactor::bytes_on_disk() const { return offset_.back(); }

void OocCholeskyFactor::write_panel(index_t s, ConstMatrixView panel) {
  PARFACT_CHECK(panel.rows == sym_->front_order(s) &&
                panel.cols == sym_->sn_cols(s) && panel.ld == panel.rows);
  PARFACT_CHECK(std::fseek(file_, static_cast<long>(offset_[s]), SEEK_SET) ==
                0);
  const std::size_t count =
      static_cast<std::size_t>(panel.rows) * panel.cols;
  PARFACT_CHECK_MSG(
      std::fwrite(panel.data, sizeof(real_t), count, file_) == count,
      "short write to " << path_);
  // Flush so the panel is visible to external readers (and corruptible by
  // external writers — which is exactly how the integrity tests exercise
  // the read-back verification below).
  PARFACT_CHECK(std::fflush(file_) == 0);
  checksum_[s] = fnv1a(panel.data, count * sizeof(real_t));
}

void OocCholeskyFactor::read_panel(index_t s, MatrixView out) const {
  PARFACT_CHECK(out.rows == sym_->front_order(s) &&
                out.cols == sym_->sn_cols(s) && out.ld == out.rows);
  const std::size_t count = static_cast<std::size_t>(out.rows) * out.cols;
  // One silent retry covers a transient short/failed read; a checksum that
  // is still wrong after re-reading means the bytes on disk are damaged.
  for (int attempt = 0; attempt < 2; ++attempt) {
    PARFACT_CHECK(
        std::fseek(file_, static_cast<long>(offset_[s]), SEEK_SET) == 0);
    if (std::fread(out.data, sizeof(real_t), count, file_) != count) continue;
    if (fnv1a(out.data, count * sizeof(real_t)) == checksum_[s]) return;
  }
  std::ostringstream os;
  os << "checksum mismatch reading panel of supernode " << s << " from "
     << path_ << " (after one re-read retry)";
  throw StatusError(
      Status::failure(StatusCode::kDataCorruption, os.str(), s));
}

OocCholeskyFactor multifrontal_factor_ooc(const SymbolicFactor& sym,
                                          const std::string& path,
                                          FactorStats* stats,
                                          PivotPolicy pivot, FactorKind kind,
                                          CancelToken cancel) {
  WallTimer timer;
  pivot = resolve_pivot_policy(pivot, sym.a);
  count_t perturbations = 0;
  OocCholeskyFactor factor(sym, path);
  std::span<real_t> d;
  if (kind == FactorKind::kLdlt) d = factor.allocate_diag();
  const auto children = detail::build_children(sym);
  std::vector<std::vector<real_t>> update_of(
      static_cast<std::size_t>(sym.n_supernodes));
  detail::FrontScratch scratch(sym.n);
  std::vector<real_t> panel_buf;

  std::size_t live = 0;
  std::size_t peak = 0;
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    cancel.throw_if_cancelled();
    const index_t f = sym.front_order(s);
    const index_t p = sym.sn_cols(s);
    panel_buf.assign(static_cast<std::size_t>(f) * p, 0.0);
    MatrixView panel{panel_buf.data(), f, p, f};
    perturbations += detail::eliminate_front(sym, s, update_of, children,
                                             panel, update_of[s], scratch,
                                             kind, d, nullptr, pivot);
    factor.write_panel(s, panel);
    live += update_of[s].size() * sizeof(real_t);
    peak = std::max(peak, live + panel_buf.size() * sizeof(real_t));
    for (index_t c : children[s]) {
      live -= update_of[c].size() * sizeof(real_t);
      update_of[c] = {};
    }
  }

  if (stats != nullptr) {
    stats->seconds = timer.seconds();
    stats->flops = sym.total_flops;
    stats->peak_update_bytes = peak;
    stats->pivot_perturbations = perturbations;
  }
  return factor;
}

void ooc_solve_in_place(const OocCholeskyFactor& factor, MatrixView x) {
  const SymbolicFactor& sym = factor.symbolic();
  PARFACT_CHECK(x.rows == sym.n);
  std::vector<real_t> panel_buf;
  std::vector<real_t> gathered;

  // Forward sweep (panels streamed in supernode order).
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const index_t p = sym.sn_cols(s);
    const index_t b = sym.sn_below(s);
    const index_t f = p + b;
    panel_buf.resize(static_cast<std::size_t>(f) * p);
    MatrixView panel{panel_buf.data(), f, p, f};
    factor.read_panel(s, panel);
    MatrixView x1 = x.block(sym.sn_start[s], 0, p, x.cols);
    trsm_left_lower(panel.block(0, 0, p, p), x1);
    if (b == 0) continue;
    gathered.assign(static_cast<std::size_t>(b) * x.cols, 0.0);
    MatrixView t{gathered.data(), b, x.cols, b};
    gemm_nn_update(t, panel.block(p, 0, b, p), x1);
    const auto rows = sym.below_rows(s);
    for (index_t c = 0; c < x.cols; ++c) {
      for (index_t i = 0; i < b; ++i) x.at(rows[i], c) += t.at(i, c);
    }
  }
  // LDLᵀ: divide by the resident diagonal between the sweeps.
  if (factor.is_ldlt()) {
    const std::span<const real_t> d = factor.diag();
    for (index_t c = 0; c < x.cols; ++c) {
      for (index_t i = 0; i < x.rows; ++i) x.at(i, c) /= d[i];
    }
  }
  // Backward sweep (reverse streaming).
  for (index_t s = sym.n_supernodes - 1; s >= 0; --s) {
    const index_t p = sym.sn_cols(s);
    const index_t b = sym.sn_below(s);
    const index_t f = p + b;
    panel_buf.resize(static_cast<std::size_t>(f) * p);
    MatrixView panel{panel_buf.data(), f, p, f};
    factor.read_panel(s, panel);
    MatrixView x1 = x.block(sym.sn_start[s], 0, p, x.cols);
    if (b > 0) {
      const auto rows = sym.below_rows(s);
      gathered.resize(static_cast<std::size_t>(b) * x.cols);
      MatrixView t{gathered.data(), b, x.cols, b};
      for (index_t c = 0; c < x.cols; ++c) {
        for (index_t i = 0; i < b; ++i) t.at(i, c) = x.at(rows[i], c);
      }
      gemm_tn_update(x1, panel.block(p, 0, b, p), t);
    }
    trsm_left_lower_trans(panel.block(0, 0, p, p), x1);
  }
}

}  // namespace parfact
