#include "mf/factor.h"

#include <algorithm>

#include "support/error.h"

namespace parfact {

CholeskyFactor::CholeskyFactor(const SymbolicFactor& sym) : sym_(&sym) {
  offset_.resize(static_cast<std::size_t>(sym.n_supernodes) + 1);
  offset_[0] = 0;
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const std::size_t panel_size =
        static_cast<std::size_t>(sym.front_order(s)) * sym.sn_cols(s);
    offset_[s + 1] = offset_[s] + panel_size;
  }
  values_.assign(offset_.back(), 0.0);
}

MatrixView CholeskyFactor::panel(index_t s) {
  const index_t f = sym_->front_order(s);
  return {values_.data() + offset_[s], f, sym_->sn_cols(s), f};
}

ConstMatrixView CholeskyFactor::panel(index_t s) const {
  const index_t f = sym_->front_order(s);
  return {values_.data() + offset_[s], f, sym_->sn_cols(s), f};
}

void CholeskyFactor::reset_values() {
  std::fill(values_.begin(), values_.end(), 0.0);
  std::fill(d_.begin(), d_.end(), 0.0);
}

std::span<real_t> CholeskyFactor::allocate_diag() {
  d_.assign(static_cast<std::size_t>(sym_->n), 0.0);
  return d_;
}

real_t CholeskyFactor::entry(index_t i, index_t j) const {
  PARFACT_CHECK(i >= j && j >= 0 && i < sym_->n);
  const index_t s = sym_->sn_of[j];
  const index_t local_col = j - sym_->sn_start[s];
  const index_t block_end = sym_->sn_start[s + 1];
  index_t local_row;
  if (i < block_end) {
    local_row = i - sym_->sn_start[s];
  } else {
    const auto rows = sym_->below_rows(s);
    const auto it = std::lower_bound(rows.begin(), rows.end(), i);
    if (it == rows.end() || *it != i) return 0.0;
    local_row = sym_->sn_cols(s) + static_cast<index_t>(it - rows.begin());
  }
  return panel(s).at(local_row, local_col);
}

}  // namespace parfact
