// Internal: thread-safe peak tracker for live update-block bytes, shared by
// the serial and shared-memory multifrontal drivers.
#pragma once

#include <atomic>
#include <cstddef>

namespace parfact::detail {

/// Tracks live update-block bytes and their peak across the run.
class UpdateMemory {
 public:
  void add(std::size_t bytes) {
    const std::size_t now = live_.fetch_add(bytes) + bytes;
    std::size_t peak = peak_.load();
    while (now > peak && !peak_.compare_exchange_weak(peak, now)) {
    }
  }
  void sub(std::size_t bytes) { live_.fetch_sub(bytes); }
  [[nodiscard]] std::size_t peak() const { return peak_.load(); }

 private:
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> peak_{0};
};

}  // namespace parfact::detail
