#include "mf/dag_factor.h"

#include <algorithm>
#include <utility>

#include "dense/kernels.h"
#include "runtime/scheduler.h"
#include "support/error.h"
#include "support/timer.h"

namespace parfact::detail {
namespace {

using rt::TaskKind;
using rt::tag_t;

/// Minimum flops before a front stage is split into more than one task, and
/// minimum C rows per slab. Tuned like the pool kernels' thresholds: a slab
/// should be a few milliseconds of packed-engine work so per-task overhead
/// (heap ops, atomics) stays negligible. Pure scheduling knobs — slab
/// boundaries never change numeric results.
constexpr count_t kTaskMinFlops = 4'000'000;
constexpr index_t kTaskSlabMinRows = 64;

}  // namespace

FactorDag::FactorDag(const SymbolicFactor& sym, CholeskyFactor& factor,
                     FactorKind kind, std::span<real_t> d, PivotPolicy pivot,
                     count_t fuse_flops, int n_workers)
    : sym_(sym),
      factor_(factor),
      kind_(kind),
      d_(d),
      pivot_(pivot),
      fuse_flops_(fuse_flops),
      n_workers_(std::max(1, n_workers)),
      children_(build_children(sym)),
      update_of_(static_cast<std::size_t>(sym.n_supernodes)),
      m_of_(static_cast<std::size_t>(sym.n_supernodes)),
      m_refs_(static_cast<std::size_t>(sym.n_supernodes)),
      panel_ready_(static_cast<std::size_t>(sym.n_supernodes)),
      update_done_(static_cast<std::size_t>(sym.n_supernodes)) {}

index_t FactorDag::slab_count(count_t flops, index_t rows) const {
  if (n_workers_ <= 1 || flops < kTaskMinFlops) return 1;
  const index_t by_rows = rows / kTaskSlabMinRows;
  const index_t by_workers = 4 * static_cast<index_t>(n_workers_);
  const auto by_flops = static_cast<index_t>(flops / kTaskMinFlops) + 1;
  return std::max<index_t>(1, std::min({by_rows, by_workers, by_flops}));
}

std::unique_ptr<FrontScratch> FactorDag::acquire_scratch() {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  if (scratch_pool_.empty())
    return std::make_unique<FrontScratch>(sym_.n);
  auto s = std::move(scratch_pool_.back());
  scratch_pool_.pop_back();
  return s;
}

void FactorDag::release_scratch(std::unique_ptr<FrontScratch> scratch) {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  scratch_pool_.push_back(std::move(scratch));
}

/// Update-stack accounting once supernode s's assembly has consumed its
/// children: the children's blocks die, s's block is now live.
void FactorDag::finish_assembly(index_t s) {
  mem_.add(update_of_[static_cast<std::size_t>(s)].size() * sizeof(real_t));
  for (index_t c : children_[static_cast<std::size_t>(s)]) {
    auto& cu = update_of_[static_cast<std::size_t>(c)];
    mem_.sub(cu.size() * sizeof(real_t));
    cu = {};
  }
}

void FactorDag::emit(rt::TaskGraph& graph) {
  for (index_t s = 0; s < sym_.n_supernodes; ++s) {
    if (sym_.sn_flops[s] < fuse_flops_) {
      emit_fused(graph, s);
    } else {
      emit_split(graph, s);
    }
  }
}

void FactorDag::emit_fused(rt::TaskGraph& graph, index_t s) {
  const tag_t elim = rt::make_tag(TaskKind::kElim, static_cast<uint64_t>(s));
  graph.add_task(
      elim,
      [this, s] {
        auto scratch = acquire_scratch();
        const count_t boosted = eliminate_front(
            sym_, s, update_of_, children_, factor_.panel(s),
            update_of_[static_cast<std::size_t>(s)], *scratch, kind_, d_,
            nullptr, pivot_);
        release_scratch(std::move(scratch));
        if (boosted > 0)
          perturbations_.fetch_add(boosted, std::memory_order_relaxed);
        finish_assembly(s);
      },
      static_cast<double>(std::max<count_t>(sym_.sn_flops[s], 1)));
  std::vector<tag_t> deps;
  for (index_t c : children_[static_cast<std::size_t>(s)]) {
    const auto& done = update_done_[static_cast<std::size_t>(c)];
    deps.insert(deps.end(), done.begin(), done.end());
  }
  graph.declare_deps(elim, deps);
  panel_ready_[static_cast<std::size_t>(s)] = {elim};
  update_done_[static_cast<std::size_t>(s)] = {elim};
}

void FactorDag::emit_split(rt::TaskGraph& graph, index_t s) {
  const auto su = static_cast<std::size_t>(s);
  const auto k = static_cast<uint64_t>(s);
  const index_t p = sym_.sn_cols(s);
  const index_t b = sym_.sn_below(s);
  const index_t first = sym_.sn_start[s];

  // --- ASSEMBLE: scatter + fixed-order extend-add, consume children. ---
  const tag_t asm_tag = rt::make_tag(TaskKind::kAssemble, k);
  count_t asm_cost = sym_.a.col_ptr[sym_.sn_start[s + 1]] -
                     sym_.a.col_ptr[first];
  for (index_t c : children_[su]) {
    const count_t cb = sym_.sn_below(c);
    asm_cost += cb * (cb + 1) / 2;
  }
  graph.add_task(
      asm_tag,
      [this, s] {
        auto scratch = acquire_scratch();
        assemble_front(sym_, s, update_of_, children_, factor_.panel(s),
                       update_of_[static_cast<std::size_t>(s)], *scratch);
        release_scratch(std::move(scratch));
        finish_assembly(s);
      },
      static_cast<double>(std::max<count_t>(asm_cost, 1)));
  {
    std::vector<tag_t> deps;
    for (index_t c : children_[su]) {
      const auto& done = update_done_[static_cast<std::size_t>(c)];
      deps.insert(deps.end(), done.begin(), done.end());
    }
    graph.declare_deps(asm_tag, deps);
  }

  // --- POTRF / LDLᵀ of the diagonal block (serial, one task). ---
  const tag_t potrf_tag = rt::make_tag(TaskKind::kPotrf, k);
  graph.add_task(
      potrf_tag,
      [this, s] {
        const count_t boosted =
            factor_front_diag(sym_, s, factor_.panel(s), kind_, d_, pivot_);
        if (boosted > 0)
          perturbations_.fetch_add(boosted, std::memory_order_relaxed);
      },
      static_cast<double>(
          std::max<count_t>(partial_cholesky_flops(p, p), 1)));
  graph.declare_deps(potrf_tag, {asm_tag});

  if (b == 0) {
    panel_ready_[su] = {potrf_tag};
    update_done_[su] = {potrf_tag};
    return;
  }

  // --- Panel TRSM, split into row slabs. Each slab runs the full serial
  // solve on its rows, so any split is bitwise identical to one call. ---
  const count_t trsm_flops = static_cast<count_t>(b) * p * (p + 1);
  const index_t st = slab_count(trsm_flops, b);
  std::vector<tag_t> trsm_tags(static_cast<std::size_t>(st));
  std::vector<index_t> trsm_hi(static_cast<std::size_t>(st));
  for (index_t t = 0; t < st; ++t) {
    const index_t r0 = t * b / st;
    const index_t r1 = (t + 1) * b / st;
    trsm_hi[static_cast<std::size_t>(t)] = r1;
    const tag_t tag =
        rt::make_tag(TaskKind::kTrsm, k, static_cast<uint64_t>(t));
    trsm_tags[static_cast<std::size_t>(t)] = tag;
    graph.add_task(
        tag,
        [this, s, p, b, r0, r1] {
          if (r0 >= r1) return;
          MatrixView panel = factor_.panel(s);
          ConstMatrixView l11 = panel.block(0, 0, p, p);
          trsm_right_lower_trans(l11, panel.block(p + r0, 0, r1 - r0, p));
        },
        static_cast<double>(
            std::max<count_t>(trsm_flops * (r1 - r0) / std::max(b, 1), 1)));
    graph.declare_deps(tag, {potrf_tag});
  }

  // Panel values are final after the TRSM slabs (Cholesky) or the LDLᵀ
  // rescale below.
  tag_t prep_tag = 0;
  if (kind_ == FactorKind::kLdlt) {
    // --- PREP: copy M = L21 D, rescale panel to L21. One task; it reads
    // and writes the whole panel, so it needs every TRSM slab. ---
    prep_tag = rt::make_tag(TaskKind::kPrep, k);
    m_refs_[su] = std::make_unique<std::atomic<index_t>>(0);
    graph.add_task(
        prep_tag,
        [this, s, p, b, first] {
          MatrixView l21 = factor_.panel(s).block(p, 0, b, p);
          ldlt_scale_panel(l21, d_, first, m_of_[static_cast<std::size_t>(s)]);
        },
        static_cast<double>(2 * static_cast<count_t>(b) * p));
    graph.declare_deps(prep_tag, trsm_tags);
    panel_ready_[su] = {prep_tag};
  } else {
    panel_ready_[su] = trsm_tags;
  }

  // --- Trailing update, split into row slabs. ---
  const count_t upd_flops = (kind_ == FactorKind::kCholesky ? 1 : 2) *
                            static_cast<count_t>(b) * b * p;
  std::vector<tag_t> upd_tags;
  if (kind_ == FactorKind::kCholesky) {
    index_t slabs = slab_count(upd_flops, b);
    if (!syrk_splittable(b, p)) slabs = 1;  // small path: must stay whole
    if (slabs <= 1) {
      const tag_t tag = rt::make_tag(TaskKind::kUpdate, k);
      graph.add_task(
          tag,
          [this, s, p, b] {
            auto& upd = update_of_[static_cast<std::size_t>(s)];
            MatrixView update{upd.data(), b, b, b};
            ConstMatrixView l21 = factor_.panel(s).block(p, 0, b, p);
            syrk_lower_update(update, l21);
          },
          static_cast<double>(std::max<count_t>(upd_flops, 1)));
      graph.declare_deps(tag, trsm_tags);
      upd_tags.push_back(tag);
    } else {
      const std::vector<index_t> bound = syrk_slab_bounds(b, slabs);
      for (index_t t = 0; t < slabs; ++t) {
        const index_t r0 = bound[static_cast<std::size_t>(t)];
        const index_t r1 = bound[static_cast<std::size_t>(t) + 1];
        const tag_t tag =
            rt::make_tag(TaskKind::kUpdate, k, static_cast<uint64_t>(t));
        const count_t slab_flops =
            static_cast<count_t>(r1 - r0) * (r1 + r0) * p;
        graph.add_task(
            tag,
            [this, s, p, b, r0, r1] {
              auto& upd = update_of_[static_cast<std::size_t>(s)];
              MatrixView update{upd.data(), b, b, b};
              ConstMatrixView l21 = factor_.panel(s).block(p, 0, b, p);
              syrk_lower_update_slab(update, l21, r0, r1);
            },
            static_cast<double>(std::max<count_t>(slab_flops, 1)));
        // Slab [r0, r1) reads L21 rows below r1 only: depend on exactly the
        // TRSM slabs covering those rows (pipelines the panel solve into
        // the update instead of a front-wide barrier).
        std::vector<tag_t> deps;
        for (index_t u = 0; u < st; ++u) {
          deps.push_back(trsm_tags[static_cast<std::size_t>(u)]);
          if (trsm_hi[static_cast<std::size_t>(u)] >= r1) break;
        }
        graph.declare_deps(tag, deps);
        upd_tags.push_back(tag);
      }
    }
  } else {
    // LDLᵀ: update slabs read the rescaled L21 rows plus all of M, so they
    // depend on PREP (which already gates on every TRSM slab). The serial
    // gemm_nt kernel's per-element summation order is row-partition-
    // invariant, so disjoint row slabs reproduce the one-call result.
    const index_t slabs = slab_count(upd_flops, b);
    for (index_t t = 0; t < slabs; ++t) {
      const index_t r0 = t * b / slabs;
      const index_t r1 = (t + 1) * b / slabs;
      const tag_t tag =
          rt::make_tag(TaskKind::kUpdate, k, static_cast<uint64_t>(t));
      graph.add_task(
          tag,
          [this, s, p, b, r0, r1, slabs] {
            if (r0 < r1) {
              auto& upd = update_of_[static_cast<std::size_t>(s)];
              auto& m = m_of_[static_cast<std::size_t>(s)];
              MatrixView update{upd.data(), b, b, b};
              ConstMatrixView l21 = factor_.panel(s).block(p, 0, b, p);
              gemm_nt_update(update.block(r0, 0, r1 - r0, b),
                             l21.block(r0, 0, r1 - r0, p),
                             ConstMatrixView{m.data(), b, p, b});
            }
            // Last slab out frees M (its only consumer is this stage).
            if (m_refs_[static_cast<std::size_t>(s)]->fetch_add(1) + 1 ==
                slabs) {
              m_of_[static_cast<std::size_t>(s)] = {};
            }
          },
          static_cast<double>(std::max<count_t>(
              upd_flops * (r1 - r0) / std::max(b, 1), 1)));
      graph.declare_deps(tag, {prep_tag});
      upd_tags.push_back(tag);
    }
  }
  update_done_[su] = std::move(upd_tags);
}

}  // namespace parfact::detail

namespace parfact {

CholeskyFactor multifrontal_factor_parallel(const SymbolicFactor& sym,
                                            ThreadPool& pool,
                                            FactorStats* stats,
                                            FactorKind kind,
                                            count_t coop_flops,
                                            PivotPolicy pivot,
                                            CancelToken cancel) {
  CholeskyFactor factor(sym);
  multifrontal_refactor_parallel(sym, factor, pool, stats, kind, coop_flops,
                                 pivot, std::move(cancel));
  return factor;
}

void multifrontal_refactor_parallel(const SymbolicFactor& sym,
                                    CholeskyFactor& factor, ThreadPool& pool,
                                    FactorStats* stats, FactorKind kind,
                                    count_t coop_flops, PivotPolicy pivot,
                                    CancelToken cancel) {
  PARFACT_CHECK(&factor.symbolic() == &sym);
  WallTimer timer;
  pivot = resolve_pivot_policy(pivot, sym.a);
  // FactorDag requires zeroed panels; reset restores that invariant for a
  // reused allocation (and is a no-op cost on a fresh one).
  factor.reset_values();
  std::span<real_t> d;
  if (kind == FactorKind::kLdlt) d = factor.allocate_diag();

  detail::FactorDag dag(sym, factor, kind, d, pivot, coop_flops,
                        pool.size() + 1);
  rt::TaskGraph graph;
  dag.emit(graph);
  rt::run_graph(graph, pool, std::move(cancel));

  if (stats != nullptr) {
    stats->seconds = timer.seconds();
    stats->flops = sym.total_flops;
    stats->peak_update_bytes = dag.peak_update_bytes();
    stats->pivot_perturbations = dag.perturbations();
  }
}

}  // namespace parfact
