// Dense linear-algebra kernels for frontal matrices.
//
// The multifrontal factorization spends essentially all numeric time here,
// in the four Cholesky building blocks (POTRF / TRSM / SYRK / GEMM) plus the
// solve-phase TRSMs. All kernels are written from scratch (the paper used a
// vendor BLAS; see DESIGN.md substitutions). The level-3 kernels run on the
// packed register-tiled engine in microkernel.h; tiny or vector-shaped
// problems fall back to the unpacked loops where packing would dominate.
//
// Update kernels follow the factorization's sign convention: they *subtract*
// the product (C := C - op(A) op(B)).
//
// The pool-taking overloads split C's row range across the pool's workers
// and produce bitwise-identical results to their serial counterparts (the
// engine's summation order per element does not depend on the row
// partition); they fall back to the serial path for small problems or a
// one-worker pool.
#pragma once

#include <span>
#include <vector>

#include "dense/matrix_view.h"
#include "support/types.h"

namespace parfact {

class ThreadPool;

/// Static-pivoting hook for POTRF / LDLᵀ. When non-null, a pivot whose
/// magnitude is at or below `threshold` is replaced by `value` (Cholesky) or
/// by sign-preserving ±`value` (LDLᵀ) instead of aborting the factorization;
/// each replacement increments `count`. Non-finite pivots are never boosted
/// — they always abort. The SuperLU_DIST-style contract is
/// threshold = value = sqrt(eps) * ||A||, with accuracy recovered by
/// iterative refinement (see DESIGN.md "Robustness & failure model").
struct PivotBoost {
  real_t threshold = 0.0;
  real_t value = 0.0;
  count_t count = 0;
};

/// Cholesky of the lower triangle of `a` in place (a := L with A = L Lᵀ).
/// Returns kNone on success, or the (0-based) column index of the first
/// non-positive pivot (matrix not SPD), leaving `a` partially overwritten.
/// With `boost`, tiny/non-positive (but finite) pivots are replaced and
/// counted instead of aborting.
index_t potrf_lower(MatrixView a, PivotBoost* boost = nullptr);

/// LDLᵀ of the lower triangle of `a` in place, without pivoting: a := L
/// (unit diagonal stored as 1.0) and d := diag(D). Suitable for symmetric
/// quasi-definite / strongly factorizable matrices; returns kNone on
/// success or the column of the first zero pivot. With `boost`, tiny
/// (but finite) pivots are replaced sign-preservingly and counted.
index_t ldlt_lower(MatrixView a, std::span<real_t> d,
                   PivotBoost* boost = nullptr);

/// b := b * l⁻ᵀ where l is lower triangular (unit diagonal NOT assumed).
/// This is the panel update below a factorized diagonal block.
void trsm_right_lower_trans(ConstMatrixView l, MatrixView b);

/// Pool-parallel variant: rows of b are solved independently across the
/// pool's workers (each row's operation sequence is unchanged).
void trsm_right_lower_trans(ConstMatrixView l, MatrixView b, ThreadPool* pool);

/// x := l⁻¹ x (forward substitution, multiple right-hand sides).
void trsm_left_lower(ConstMatrixView l, MatrixView x);

/// x := l⁻ᵀ x (backward substitution, multiple right-hand sides).
void trsm_left_lower_trans(ConstMatrixView l, MatrixView x);

/// c := c - a * aᵀ, updating the lower triangle of c only. c must be square
/// with c.rows == a.rows.
void syrk_lower_update(MatrixView c, ConstMatrixView a);

/// Pool-parallel variant: row slabs of c (flop-balanced via a square-root
/// partition of the triangle) update concurrently.
void syrk_lower_update(MatrixView c, ConstMatrixView a, ThreadPool* pool);

/// True when syrk_lower_update(c, a) with c of order `n` and a with `k`
/// columns runs on the packed engine and may therefore be split into row
/// slabs without changing the result bitwise. When false the update must
/// run as a single serial call (the unpacked fallback's summation order is
/// not row-partition-invariant).
[[nodiscard]] bool syrk_splittable(index_t n, index_t k);

/// Flop-balanced ascending row bounds (size slabs+1, bound[0] = 0,
/// bound[slabs] = n) for splitting a splittable syrk_lower_update into row
/// slabs: the square-root partition used by the pool variant.
[[nodiscard]] std::vector<index_t> syrk_slab_bounds(index_t n, index_t slabs);

/// One row slab [r0, r1) of a splittable syrk_lower_update(c, a): the
/// rectangle C(r0:r1, 0:r0) plus the diagonal triangle C(r0:r1, r0:r1),
/// both on the packed engine. Running every slab of syrk_slab_bounds — in
/// any order or concurrently; the writes are disjoint — produces exactly
/// the serial call's result bit for bit. Shared by the pool variant above
/// and the task-DAG factorization's update tasks.
void syrk_lower_update_slab(MatrixView c, ConstMatrixView a, index_t r0,
                            index_t r1);

/// c := c - a * bᵀ. Dimensions: c is (a.rows x b.rows), a.cols == b.cols.
void gemm_nt_update(MatrixView c, ConstMatrixView a, ConstMatrixView b);

/// Pool-parallel variant: row slabs of c update concurrently.
void gemm_nt_update(MatrixView c, ConstMatrixView a, ConstMatrixView b,
                    ThreadPool* pool);

/// c := c - a * b. Dimensions: c is (a.rows x b.cols), a.cols == b.rows.
void gemm_nn_update(MatrixView c, ConstMatrixView a, ConstMatrixView b);

/// c := c - aᵀ * b. Dimensions: c is (a.cols x b.cols), a.rows == b.rows.
void gemm_tn_update(MatrixView c, ConstMatrixView a, ConstMatrixView b);

/// Measured throughput (flop/s) of a representative gemm_nt_update of order
/// `m`; used to calibrate the virtual machine model (experiment K0). The
/// repetition count is calibrated from a timed probe call so the total
/// measurement lasts ~50 ms on slow and fast machines alike.
double measure_gemm_rate(index_t m);

}  // namespace parfact
