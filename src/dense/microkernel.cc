#include "dense/microkernel.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "dense/pack.h"
#include "support/error.h"

namespace parfact::detail {
namespace {

// The accumulator uses GCC/Clang generic vectors: one v8d spans the kMR
// rows of the tile, so the compiler keeps the whole kMR×kNR tile in SIMD
// registers instead of spilling a scalar array. The generic vector lowers
// to whatever ISA the enclosing function targets, which is what makes the
// multi-versioning below work from a single source.
typedef real_t v8d __attribute__((vector_size(kMR * sizeof(real_t))));
static_assert(kMR * sizeof(real_t) == 64);

// Compile the micro-kernels for the baseline ISA plus AVX2/FMA and AVX-512
// where the toolchain supports function multi-versioning; the dynamic
// linker picks the best clone for the machine at load time. This keeps the
// default (portable) build within ~peak of a -march=native build.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define PARFACT_KERNEL_CLONES \
  __attribute__(( \
      target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
#define PARFACT_KERNEL_CLONES
#endif

/// Rank-1 update loop shared by all three micro-kernels. Must inline into
/// its (multi-versioned) callers so each clone vectorizes it for its ISA.
__attribute__((always_inline)) inline void accumulate(
    index_t kc, const real_t* __restrict ap, const real_t* __restrict bp,
    v8d acc[kNR]) {
  for (index_t k = 0; k < kc; ++k) {
    v8d av;
    __builtin_memcpy(&av, ap + static_cast<std::size_t>(k) * kMR, sizeof av);
    const real_t* b = bp + static_cast<std::size_t>(k) * kNR;
    for (index_t j = 0; j < kNR; ++j) acc[j] += av * b[j];
  }
}

}  // namespace

PARFACT_KERNEL_CLONES
void micro_kernel_full(index_t kc, const real_t* ap, const real_t* bp,
                       real_t* c, index_t ldc) {
  v8d acc[kNR] = {};
  accumulate(kc, ap, bp, acc);
  for (index_t j = 0; j < kNR; ++j) {
    real_t* cj = c + static_cast<std::size_t>(j) * ldc;
    for (index_t i = 0; i < kMR; ++i) cj[i] -= acc[j][i];
  }
}

PARFACT_KERNEL_CLONES
void micro_kernel_edge(index_t kc, const real_t* ap, const real_t* bp,
                       real_t* c, index_t ldc, index_t m, index_t n) {
  v8d acc[kNR] = {};
  accumulate(kc, ap, bp, acc);
  for (index_t j = 0; j < n; ++j) {
    real_t* cj = c + static_cast<std::size_t>(j) * ldc;
    for (index_t i = 0; i < m; ++i) cj[i] -= acc[j][i];
  }
}

PARFACT_KERNEL_CLONES
void micro_kernel_lower(index_t kc, const real_t* ap, const real_t* bp,
                        real_t* c, index_t ldc, index_t m, index_t n,
                        index_t row0, index_t col0) {
  v8d acc[kNR] = {};
  accumulate(kc, ap, bp, acc);
  for (index_t j = 0; j < n; ++j) {
    real_t* cj = c + static_cast<std::size_t>(j) * ldc;
    const index_t i0 = std::max<index_t>(0, col0 + j - row0);
    for (index_t i = i0; i < m; ++i) cj[i] -= acc[j][i];
  }
}

namespace {

/// Per-thread packing buffers, sized once for the fixed cache blocking.
struct PackScratch {
  std::vector<real_t> a;
  std::vector<real_t> b;
  PackScratch()
      : a(static_cast<std::size_t>(kMC) * kKC),
        b(static_cast<std::size_t>(kKC) * kNC) {}
};

PackScratch& pack_scratch() {
  static thread_local PackScratch s;
  return s;
}

/// Packs the [d0, d0+dc) × [k0, k0+kc) slice of a logical D×K operand
/// (stored transposed iff `trans`) into `r`-row panels at `dst`.
void pack_operand(real_t* dst, ConstMatrixView stored, bool trans, index_t d0,
                  index_t dc, index_t k0, index_t kc, index_t r) {
  if (trans) {
    pack_panels_trans(dst, stored.block(k0, d0, kc, dc), r);
  } else {
    pack_panels(dst, stored.block(d0, k0, dc, kc), r);
  }
}

}  // namespace

void gemm_packed(MatrixView c, ConstMatrixView a, bool a_trans,
                 ConstMatrixView b, bool b_trans) {
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t kk = a_trans ? a.rows : a.cols;
  PARFACT_DCHECK((a_trans ? a.cols : a.rows) == m);
  PARFACT_DCHECK((b_trans ? b.cols : b.rows) == n);
  PARFACT_DCHECK((b_trans ? b.rows : b.cols) == kk);
  PackScratch& ps = pack_scratch();
  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nc = std::min(kNC, n - jc);
    for (index_t pc = 0; pc < kk; pc += kKC) {
      const index_t kc = std::min(kKC, kk - pc);
      pack_operand(ps.b.data(), b, b_trans, jc, nc, pc, kc, kNR);
      for (index_t ic = 0; ic < m; ic += kMC) {
        const index_t mc = std::min(kMC, m - ic);
        pack_operand(ps.a.data(), a, a_trans, ic, mc, pc, kc, kMR);
        for (index_t jr = 0; jr < nc; jr += kNR) {
          const index_t nr = std::min(kNR, nc - jr);
          const real_t* bp = ps.b.data() + static_cast<std::size_t>(jr) * kc;
          for (index_t ir = 0; ir < mc; ir += kMR) {
            const index_t mr = std::min(kMR, mc - ir);
            const real_t* ap =
                ps.a.data() + static_cast<std::size_t>(ir) * kc;
            real_t* cc = &c.at(ic + ir, jc + jr);
            if (mr == kMR && nr == kNR) {
              micro_kernel_full(kc, ap, bp, cc, c.ld);
            } else {
              micro_kernel_edge(kc, ap, bp, cc, c.ld, mr, nr);
            }
          }
        }
      }
    }
  }
}

void syrk_packed_lower(MatrixView c, ConstMatrixView a) {
  const index_t n = c.rows;
  const index_t kk = a.cols;
  PARFACT_DCHECK(c.cols == n && a.rows == n);
  PackScratch& ps = pack_scratch();
  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nc = std::min(kNC, n - jc);
    for (index_t pc = 0; pc < kk; pc += kKC) {
      const index_t kc = std::min(kKC, kk - pc);
      pack_panels(ps.b.data(), a.block(jc, pc, nc, kc), kNR);
      for (index_t ic = 0; ic < n; ic += kMC) {
        const index_t mc = std::min(kMC, n - ic);
        if (ic + mc <= jc) continue;  // block strictly above the diagonal
        pack_panels(ps.a.data(), a.block(ic, pc, mc, kc), kMR);
        for (index_t jr = 0; jr < nc; jr += kNR) {
          const index_t nr = std::min(kNR, nc - jr);
          const index_t col0 = jc + jr;
          const real_t* bp = ps.b.data() + static_cast<std::size_t>(jr) * kc;
          for (index_t ir = 0; ir < mc; ir += kMR) {
            const index_t mr = std::min(kMR, mc - ir);
            const index_t row0 = ic + ir;
            if (row0 + mr <= col0) continue;  // tile strictly above
            const real_t* ap =
                ps.a.data() + static_cast<std::size_t>(ir) * kc;
            real_t* cc = &c.at(row0, col0);
            if (row0 >= col0 + nr - 1) {
              // Tile fully inside the lower triangle.
              if (mr == kMR && nr == kNR) {
                micro_kernel_full(kc, ap, bp, cc, c.ld);
              } else {
                micro_kernel_edge(kc, ap, bp, cc, c.ld, mr, nr);
              }
            } else {
              micro_kernel_lower(kc, ap, bp, cc, c.ld, mr, nr, row0, col0);
            }
          }
        }
      }
    }
  }
}

}  // namespace parfact::detail
