#include "dense/kernels.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.h"
#include "support/prng.h"
#include "support/timer.h"

namespace parfact {
namespace {

/// Blocking factor for the level-3 kernels: a KB x NB tile of B and a column
/// stripe of A stay resident in L1/L2 across the inner loops.
constexpr index_t kBlock = 64;

/// Unblocked Cholesky on a small lower triangle.
index_t potrf_lower_unblocked(MatrixView a) {
  PARFACT_CHECK(a.rows == a.cols);
  const index_t n = a.rows;
  for (index_t k = 0; k < n; ++k) {
    real_t d = a.at(k, k);
    if (d <= 0.0 || !std::isfinite(d)) return k;
    d = std::sqrt(d);
    a.at(k, k) = d;
    const real_t inv = 1.0 / d;
    for (index_t i = k + 1; i < n; ++i) a.at(i, k) *= inv;
    for (index_t j = k + 1; j < n; ++j) {
      const real_t ljk = a.at(j, k);
      if (ljk == 0.0) continue;
      for (index_t i = j; i < n; ++i) a.at(i, j) -= a.at(i, k) * ljk;
    }
  }
  return kNone;
}

}  // namespace

index_t ldlt_lower(MatrixView a, std::span<real_t> d) {
  PARFACT_CHECK(a.rows == a.cols);
  PARFACT_CHECK(static_cast<index_t>(d.size()) == a.rows);
  const index_t n = a.rows;
  // Blocked variant is unnecessary here: fronts call this only on panel
  // diagonal blocks (<= a few hundred columns); a cache-friendly kij loop
  // suffices.
  for (index_t k = 0; k < n; ++k) {
    const real_t dk = a.at(k, k);
    if (dk == 0.0 || !std::isfinite(dk)) return k;
    d[k] = dk;
    a.at(k, k) = 1.0;
    const real_t inv = 1.0 / dk;
    for (index_t i = k + 1; i < n; ++i) a.at(i, k) *= inv;
    for (index_t j = k + 1; j < n; ++j) {
      const real_t w = a.at(j, k) * dk;  // original A(j,k) value
      if (w == 0.0) continue;
      for (index_t i = j; i < n; ++i) a.at(i, j) -= a.at(i, k) * w;
    }
  }
  return kNone;
}

index_t potrf_lower(MatrixView a) {
  PARFACT_CHECK(a.rows == a.cols);
  const index_t n = a.rows;
  for (index_t k = 0; k < n; k += kBlock) {
    const index_t nb = std::min(kBlock, n - k);
    MatrixView akk = a.block(k, k, nb, nb);
    const index_t info = potrf_lower_unblocked(akk);
    if (info != kNone) return k + info;
    const index_t rest = n - k - nb;
    if (rest == 0) continue;
    MatrixView panel = a.block(k + nb, k, rest, nb);
    trsm_right_lower_trans(akk, panel);
    syrk_lower_update(a.block(k + nb, k + nb, rest, rest), panel);
  }
  return kNone;
}

void trsm_right_lower_trans(ConstMatrixView l, MatrixView b) {
  PARFACT_CHECK(l.rows == l.cols && b.cols == l.rows);
  // Solve X Lᵀ = B column-block by column-block: for column j of X,
  // x_j = (b_j - sum_{k<j} x_k * L(j,k)) / L(j,j).
  const index_t n = l.rows;
  const index_t m = b.rows;
  for (index_t j = 0; j < n; ++j) {
    real_t* bj = &b.at(0, j);
    for (index_t k = 0; k < j; ++k) {
      const real_t ljk = l.at(j, k);
      if (ljk == 0.0) continue;
      const real_t* bk = &b.at(0, k);
      for (index_t i = 0; i < m; ++i) bj[i] -= bk[i] * ljk;
    }
    const real_t inv = 1.0 / l.at(j, j);
    for (index_t i = 0; i < m; ++i) bj[i] *= inv;
  }
}

void trsm_left_lower(ConstMatrixView l, MatrixView x) {
  PARFACT_CHECK(l.rows == l.cols && x.rows == l.rows);
  const index_t n = l.rows;
  for (index_t c = 0; c < x.cols; ++c) {
    real_t* xc = &x.at(0, c);
    for (index_t k = 0; k < n; ++k) {
      const real_t xk = xc[k] / l.at(k, k);
      xc[k] = xk;
      if (xk == 0.0) continue;
      const real_t* lk = &l.at(0, k);
      for (index_t i = k + 1; i < n; ++i) xc[i] -= lk[i] * xk;
    }
  }
}

void trsm_left_lower_trans(ConstMatrixView l, MatrixView x) {
  PARFACT_CHECK(l.rows == l.cols && x.rows == l.rows);
  const index_t n = l.rows;
  for (index_t c = 0; c < x.cols; ++c) {
    real_t* xc = &x.at(0, c);
    for (index_t k = n - 1; k >= 0; --k) {
      const real_t* lk = &l.at(0, k);
      real_t acc = xc[k];
      for (index_t i = k + 1; i < n; ++i) acc -= lk[i] * xc[i];
      xc[k] = acc / l.at(k, k);
    }
  }
}

void syrk_lower_update(MatrixView c, ConstMatrixView a) {
  PARFACT_CHECK(c.rows == c.cols && c.rows == a.rows);
  const index_t n = c.rows;
  const index_t kk = a.cols;
  // Tile over (j, k); the innermost loop is a saxpy down column j of C,
  // starting at the diagonal.
  for (index_t j0 = 0; j0 < n; j0 += kBlock) {
    const index_t j1 = std::min(n, j0 + kBlock);
    for (index_t k0 = 0; k0 < kk; k0 += kBlock) {
      const index_t k1 = std::min(kk, k0 + kBlock);
      for (index_t j = j0; j < j1; ++j) {
        real_t* cj = &c.at(0, j);
        for (index_t k = k0; k < k1; ++k) {
          const real_t ajk = a.at(j, k);
          if (ajk == 0.0) continue;
          const real_t* ak = &a.at(0, k);
          for (index_t i = j; i < n; ++i) cj[i] -= ak[i] * ajk;
        }
      }
    }
  }
}

void gemm_nt_update(MatrixView c, ConstMatrixView a, ConstMatrixView b) {
  PARFACT_CHECK(c.rows == a.rows && c.cols == b.rows && a.cols == b.cols);
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t kk = a.cols;
  for (index_t j0 = 0; j0 < n; j0 += kBlock) {
    const index_t j1 = std::min(n, j0 + kBlock);
    for (index_t k0 = 0; k0 < kk; k0 += kBlock) {
      const index_t k1 = std::min(kk, k0 + kBlock);
      for (index_t j = j0; j < j1; ++j) {
        real_t* cj = &c.at(0, j);
        for (index_t k = k0; k < k1; ++k) {
          const real_t bjk = b.at(j, k);
          if (bjk == 0.0) continue;
          const real_t* ak = &a.at(0, k);
          for (index_t i = 0; i < m; ++i) cj[i] -= ak[i] * bjk;
        }
      }
    }
  }
}

void gemm_nn_update(MatrixView c, ConstMatrixView a, ConstMatrixView b) {
  PARFACT_CHECK(c.rows == a.rows && c.cols == b.cols && a.cols == b.rows);
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t kk = a.cols;
  for (index_t j = 0; j < n; ++j) {
    real_t* cj = &c.at(0, j);
    for (index_t k0 = 0; k0 < kk; k0 += kBlock) {
      const index_t k1 = std::min(kk, k0 + kBlock);
      for (index_t k = k0; k < k1; ++k) {
        const real_t bkj = b.at(k, j);
        if (bkj == 0.0) continue;
        const real_t* ak = &a.at(0, k);
        for (index_t i = 0; i < m; ++i) cj[i] -= ak[i] * bkj;
      }
    }
  }
}

void gemm_tn_update(MatrixView c, ConstMatrixView a, ConstMatrixView b) {
  PARFACT_CHECK(c.rows == a.cols && c.cols == b.cols && a.rows == b.rows);
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t kk = a.rows;
  for (index_t j = 0; j < n; ++j) {
    const real_t* bj = &b.at(0, j);
    real_t* cj = &c.at(0, j);
    for (index_t i = 0; i < m; ++i) {
      const real_t* ai = &a.at(0, i);
      real_t acc = 0.0;
      for (index_t k = 0; k < kk; ++k) acc += ai[k] * bj[k];
      cj[i] -= acc;
    }
  }
}

double measure_gemm_rate(index_t m) {
  PARFACT_CHECK(m > 0);
  std::vector<real_t> ca(static_cast<std::size_t>(m) * m, 0.0);
  std::vector<real_t> aa(static_cast<std::size_t>(m) * m);
  std::vector<real_t> ba(static_cast<std::size_t>(m) * m);
  Prng rng(12345);
  for (auto& v : aa) v = rng.next_real(-1, 1);
  for (auto& v : ba) v = rng.next_real(-1, 1);
  MatrixView c{ca.data(), m, m, m};
  ConstMatrixView a{aa.data(), m, m, m};
  ConstMatrixView b{ba.data(), m, m, m};
  // Warm up once, then time enough repetitions to exceed ~50 ms.
  gemm_nt_update(c, a, b);
  const double flops_per_call = 2.0 * m * m * m;
  int reps = std::max(1, static_cast<int>(2e8 / flops_per_call));
  WallTimer t;
  for (int r = 0; r < reps; ++r) gemm_nt_update(c, a, b);
  const double sec = t.seconds();
  PARFACT_CHECK(sec > 0.0);
  return flops_per_call * reps / sec;
}

}  // namespace parfact
