#include "dense/kernels.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dense/microkernel.h"
#include "support/error.h"
#include "support/prng.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace parfact {
namespace {

/// Blocking factor for the unpacked fallback loops and the TRSM diagonal
/// solves.
constexpr index_t kBlock = 64;

/// Outer block size of the blocked POTRF (trailing updates run on the
/// packed engine, so a large block amortizes the diagonal factorization).
constexpr index_t kPotrfBlock = 128;

/// At or below this order the Cholesky runs unblocked.
constexpr index_t kPotrfUnblocked = 32;

/// Column-block size of the blocked right-TRSM.
constexpr index_t kTrsmBlock = 64;

/// The packed engine pays O(n·k + m·k) packing traffic; below this n·k
/// work product (vector-shaped or tiny updates) the unpacked loops win.
/// Deliberately independent of m so that splitting C's rows across threads
/// never changes which path an element takes.
constexpr count_t kEngineMinWork = 1024;

/// Minimum flops in one level-3 call before it is split across a pool.
constexpr count_t kParallelMinFlops = 4'000'000;

/// Minimum C rows per parallel slab.
constexpr index_t kSlabMinRows = 64;

bool use_engine(index_t n_logical, index_t k) {
  return static_cast<count_t>(n_logical) * k >= kEngineMinWork;
}

/// Unblocked Cholesky on a small lower triangle.
index_t potrf_lower_unblocked(MatrixView a, PivotBoost* boost) {
  PARFACT_CHECK(a.rows == a.cols);
  const index_t n = a.rows;
  for (index_t k = 0; k < n; ++k) {
    real_t d = a.at(k, k);
    if (!std::isfinite(d)) return k;
    if (d <= 0.0 || (boost != nullptr && d <= boost->threshold)) {
      if (boost == nullptr) return k;
      d = boost->value;
      ++boost->count;
    }
    d = std::sqrt(d);
    a.at(k, k) = d;
    const real_t inv = 1.0 / d;
    for (index_t i = k + 1; i < n; ++i) a.at(i, k) *= inv;
    for (index_t j = k + 1; j < n; ++j) {
      const real_t ljk = a.at(j, k);
      if (ljk == 0.0) continue;
      for (index_t i = j; i < n; ++i) a.at(i, j) -= a.at(i, k) * ljk;
    }
  }
  return kNone;
}

index_t potrf_lower_blocked(MatrixView a, index_t nb, PivotBoost* boost) {
  const index_t n = a.rows;
  if (n <= kPotrfUnblocked) return potrf_lower_unblocked(a, boost);
  for (index_t k = 0; k < n; k += nb) {
    const index_t cb = std::min(nb, n - k);
    MatrixView akk = a.block(k, k, cb, cb);
    const index_t info =
        cb <= kPotrfUnblocked
            ? potrf_lower_unblocked(akk, boost)
            : potrf_lower_blocked(akk, kPotrfUnblocked, boost);
    if (info != kNone) return k + info;
    const index_t rest = n - k - cb;
    if (rest == 0) continue;
    MatrixView panel = a.block(k + cb, k, rest, cb);
    trsm_right_lower_trans(akk, panel);
    syrk_lower_update(a.block(k + cb, k + cb, rest, rest), panel);
  }
  return kNone;
}

/// Unblocked X Lᵀ = B solve (column-by-column saxpy chain).
void trsm_right_lower_trans_unblocked(ConstMatrixView l, MatrixView b) {
  const index_t n = l.rows;
  const index_t m = b.rows;
  for (index_t j = 0; j < n; ++j) {
    real_t* bj = &b.at(0, j);
    for (index_t k = 0; k < j; ++k) {
      const real_t ljk = l.at(j, k);
      if (ljk == 0.0) continue;
      const real_t* bk = &b.at(0, k);
      for (index_t i = 0; i < m; ++i) bj[i] -= bk[i] * ljk;
    }
    const real_t inv = 1.0 / l.at(j, j);
    for (index_t i = 0; i < m; ++i) bj[i] *= inv;
  }
}

/// Unpacked c -= a·bᵀ fallback for shapes where packing would dominate.
void gemm_nt_small(MatrixView c, ConstMatrixView a, ConstMatrixView b) {
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t kk = a.cols;
  for (index_t j0 = 0; j0 < n; j0 += kBlock) {
    const index_t j1 = std::min(n, j0 + kBlock);
    for (index_t k0 = 0; k0 < kk; k0 += kBlock) {
      const index_t k1 = std::min(kk, k0 + kBlock);
      for (index_t j = j0; j < j1; ++j) {
        real_t* cj = &c.at(0, j);
        for (index_t k = k0; k < k1; ++k) {
          const real_t bjk = b.at(j, k);
          if (bjk == 0.0) continue;
          const real_t* ak = &a.at(0, k);
          for (index_t i = 0; i < m; ++i) cj[i] -= ak[i] * bjk;
        }
      }
    }
  }
}

/// Unpacked c -= a·aᵀ (lower) fallback.
void syrk_lower_small(MatrixView c, ConstMatrixView a) {
  const index_t n = c.rows;
  const index_t kk = a.cols;
  for (index_t j0 = 0; j0 < n; j0 += kBlock) {
    const index_t j1 = std::min(n, j0 + kBlock);
    for (index_t k0 = 0; k0 < kk; k0 += kBlock) {
      const index_t k1 = std::min(kk, k0 + kBlock);
      for (index_t j = j0; j < j1; ++j) {
        real_t* cj = &c.at(0, j);
        for (index_t k = k0; k < k1; ++k) {
          const real_t ajk = a.at(j, k);
          if (ajk == 0.0) continue;
          const real_t* ak = &a.at(0, k);
          for (index_t i = j; i < n; ++i) cj[i] -= ak[i] * ajk;
        }
      }
    }
  }
}

/// Number of row slabs for a pool-parallel level-3 call, or 1 for the
/// serial path.
index_t slab_count(count_t flops, index_t rows, const ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1) return 1;
  if (flops < kParallelMinFlops) return 1;
  const index_t by_rows = rows / kSlabMinRows;
  const index_t by_pool = 4 * static_cast<index_t>(pool->size());
  const auto by_flops = static_cast<index_t>(flops / kParallelMinFlops) + 1;
  return std::max<index_t>(1, std::min({by_rows, by_pool, by_flops}));
}

}  // namespace

index_t ldlt_lower(MatrixView a, std::span<real_t> d, PivotBoost* boost) {
  PARFACT_CHECK(a.rows == a.cols);
  PARFACT_CHECK(static_cast<index_t>(d.size()) == a.rows);
  const index_t n = a.rows;
  // Blocked variant is unnecessary here: fronts call this only on panel
  // diagonal blocks (<= a few hundred columns); a cache-friendly kij loop
  // suffices.
  for (index_t k = 0; k < n; ++k) {
    real_t dk = a.at(k, k);
    if (!std::isfinite(dk)) return k;
    if (dk == 0.0 || (boost != nullptr && std::abs(dk) <= boost->threshold)) {
      if (boost == nullptr) return k;
      // Sign-preserving boost keeps the inertia of quasi-definite inputs.
      dk = dk < 0.0 ? -boost->value : boost->value;
      ++boost->count;
    }
    d[k] = dk;
    a.at(k, k) = 1.0;
    const real_t inv = 1.0 / dk;
    for (index_t i = k + 1; i < n; ++i) a.at(i, k) *= inv;
    for (index_t j = k + 1; j < n; ++j) {
      const real_t w = a.at(j, k) * dk;  // original A(j,k) value
      if (w == 0.0) continue;
      for (index_t i = j; i < n; ++i) a.at(i, j) -= a.at(i, k) * w;
    }
  }
  return kNone;
}

index_t potrf_lower(MatrixView a, PivotBoost* boost) {
  PARFACT_CHECK(a.rows == a.cols);
  return potrf_lower_blocked(a, kPotrfBlock, boost);
}

void trsm_right_lower_trans(ConstMatrixView l, MatrixView b) {
  PARFACT_CHECK(l.rows == l.cols && b.cols == l.rows);
  const index_t n = l.rows;
  const index_t m = b.rows;
  if (n <= kTrsmBlock) {
    trsm_right_lower_trans_unblocked(l, b);
    return;
  }
  // Left-looking column blocks: fold all already-solved columns into block
  // j0 with one engine GEMM, then solve the diagonal block unblocked.
  for (index_t j0 = 0; j0 < n; j0 += kTrsmBlock) {
    const index_t jb = std::min(kTrsmBlock, n - j0);
    MatrixView bj = b.block(0, j0, m, jb);
    if (j0 > 0) {
      gemm_nt_update(bj, b.block(0, 0, m, j0), l.block(j0, 0, jb, j0));
    }
    trsm_right_lower_trans_unblocked(l.block(j0, j0, jb, jb), bj);
  }
}

void trsm_right_lower_trans(ConstMatrixView l, MatrixView b,
                            ThreadPool* pool) {
  const count_t flops =
      static_cast<count_t>(b.rows) * l.rows * (l.rows + 1);
  const index_t slabs = slab_count(flops, b.rows, pool);
  if (slabs <= 1) {
    trsm_right_lower_trans(l, b);
    return;
  }
  // Rows of X Lᵀ = B are independent; each slab runs the full serial solve
  // on its rows, so the result is bitwise identical to the serial call.
  const index_t m = b.rows;
  parallel_for(*pool, 0, slabs, [&](index_t t) {
    const index_t r0 = t * m / slabs;
    const index_t r1 = (t + 1) * m / slabs;
    if (r0 < r1) trsm_right_lower_trans(l, b.block(r0, 0, r1 - r0, b.cols));
  });
}

namespace {

void trsm_left_lower_unblocked(ConstMatrixView l, MatrixView x) {
  const index_t n = l.rows;
  for (index_t c = 0; c < x.cols; ++c) {
    real_t* xc = &x.at(0, c);
    for (index_t k = 0; k < n; ++k) {
      const real_t xk = xc[k] / l.at(k, k);
      xc[k] = xk;
      if (xk == 0.0) continue;
      const real_t* lk = &l.at(0, k);
      for (index_t i = k + 1; i < n; ++i) xc[i] -= lk[i] * xk;
    }
  }
}

void trsm_left_lower_trans_unblocked(ConstMatrixView l, MatrixView x) {
  const index_t n = l.rows;
  for (index_t c = 0; c < x.cols; ++c) {
    real_t* xc = &x.at(0, c);
    for (index_t k = n - 1; k >= 0; --k) {
      const real_t* lk = &l.at(0, k);
      real_t acc = xc[k];
      for (index_t i = k + 1; i < n; ++i) acc -= lk[i] * xc[i];
      xc[k] = acc / l.at(k, k);
    }
  }
}

}  // namespace

// Multi-column left-TRSMs are blocked so the off-diagonal bulk runs on the
// packed gemm engine and the triangle is streamed once per diagonal block
// instead of once per column. Single-column (and narrow) solves take the
// unblocked path — there the packing traffic would dominate.
void trsm_left_lower(ConstMatrixView l, MatrixView x) {
  PARFACT_CHECK(l.rows == l.cols && x.rows == l.rows);
  const index_t n = l.rows;
  const index_t w = x.cols;
  if (n <= kTrsmBlock || !use_engine(w, kTrsmBlock)) {
    trsm_left_lower_unblocked(l, x);
    return;
  }
  for (index_t k0 = 0; k0 < n; k0 += kTrsmBlock) {
    const index_t k1 = std::min(n, k0 + kTrsmBlock);
    trsm_left_lower_unblocked(l.block(k0, k0, k1 - k0, k1 - k0),
                              x.block(k0, 0, k1 - k0, w));
    if (k1 < n) {
      gemm_nn_update(x.block(k1, 0, n - k1, w),
                     l.block(k1, k0, n - k1, k1 - k0),
                     static_cast<ConstMatrixView>(x).block(k0, 0, k1 - k0, w));
    }
  }
}

void trsm_left_lower_trans(ConstMatrixView l, MatrixView x) {
  PARFACT_CHECK(l.rows == l.cols && x.rows == l.rows);
  const index_t n = l.rows;
  const index_t w = x.cols;
  if (n <= kTrsmBlock || !use_engine(w, kTrsmBlock)) {
    trsm_left_lower_trans_unblocked(l, x);
    return;
  }
  const index_t nblocks = (n + kTrsmBlock - 1) / kTrsmBlock;
  for (index_t bi = nblocks - 1; bi >= 0; --bi) {
    const index_t k0 = bi * kTrsmBlock;
    const index_t k1 = std::min(n, k0 + kTrsmBlock);
    if (k1 < n) {
      gemm_tn_update(x.block(k0, 0, k1 - k0, w),
                     l.block(k1, k0, n - k1, k1 - k0),
                     static_cast<ConstMatrixView>(x).block(k1, 0, n - k1, w));
    }
    trsm_left_lower_trans_unblocked(l.block(k0, k0, k1 - k0, k1 - k0),
                                    x.block(k0, 0, k1 - k0, w));
  }
}

void syrk_lower_update(MatrixView c, ConstMatrixView a) {
  PARFACT_CHECK(c.rows == c.cols && c.rows == a.rows);
  if (use_engine(c.rows, a.cols)) {
    detail::syrk_packed_lower(c, a);
  } else {
    syrk_lower_small(c, a);
  }
}

bool syrk_splittable(index_t n, index_t k) { return use_engine(n, k); }

std::vector<index_t> syrk_slab_bounds(index_t n, index_t slabs) {
  // Row slab [r0, r1) owns a rectangle C(r0:r1, 0:r0) plus the diagonal
  // triangle C(r0:r1, r0:r1); a square-root partition balances the flops.
  std::vector<index_t> bound(static_cast<std::size_t>(slabs) + 1, 0);
  for (index_t t = 1; t < slabs; ++t) {
    const double frac = std::sqrt(static_cast<double>(t) / slabs);
    bound[t] = std::clamp<index_t>(static_cast<index_t>(n * frac),
                                   bound[t - 1], n);
  }
  bound[slabs] = n;
  return bound;
}

void syrk_lower_update_slab(MatrixView c, ConstMatrixView a, index_t r0,
                            index_t r1) {
  // Both pieces run on the packed engine, exactly like the serial call, so
  // the row split leaves the result bitwise unchanged.
  if (r0 >= r1) return;
  const index_t kk = a.cols;
  const index_t len = r1 - r0;
  if (r0 > 0) {
    detail::gemm_packed(c.block(r0, 0, len, r0), a.block(r0, 0, len, kk),
                        false, a.block(0, 0, r0, kk), false);
  }
  detail::syrk_packed_lower(c.block(r0, r0, len, len),
                            a.block(r0, 0, len, kk));
}

void syrk_lower_update(MatrixView c, ConstMatrixView a, ThreadPool* pool) {
  PARFACT_CHECK(c.rows == c.cols && c.rows == a.rows);
  const index_t n = c.rows;
  const index_t kk = a.cols;
  const count_t flops = static_cast<count_t>(n) * n * kk;
  const index_t slabs = slab_count(flops, n, pool);
  if (slabs <= 1 || !syrk_splittable(n, kk)) {
    syrk_lower_update(c, a);
    return;
  }
  const std::vector<index_t> bound = syrk_slab_bounds(n, slabs);
  parallel_for(*pool, 0, slabs, [&](index_t t) {
    syrk_lower_update_slab(c, a, bound[t], bound[t + 1]);
  });
}

void gemm_nt_update(MatrixView c, ConstMatrixView a, ConstMatrixView b) {
  PARFACT_CHECK(c.rows == a.rows && c.cols == b.rows && a.cols == b.cols);
  if (use_engine(c.cols, a.cols)) {
    detail::gemm_packed(c, a, false, b, false);
  } else {
    gemm_nt_small(c, a, b);
  }
}

void gemm_nt_update(MatrixView c, ConstMatrixView a, ConstMatrixView b,
                    ThreadPool* pool) {
  PARFACT_CHECK(c.rows == a.rows && c.cols == b.rows && a.cols == b.cols);
  const count_t flops =
      2 * static_cast<count_t>(c.rows) * c.cols * a.cols;
  const index_t slabs = slab_count(flops, c.rows, pool);
  if (slabs <= 1) {
    gemm_nt_update(c, a, b);
    return;
  }
  const index_t m = c.rows;
  parallel_for(*pool, 0, slabs, [&](index_t t) {
    const index_t r0 = t * m / slabs;
    const index_t r1 = (t + 1) * m / slabs;
    if (r0 < r1) {
      gemm_nt_update(c.block(r0, 0, r1 - r0, c.cols),
                     a.block(r0, 0, r1 - r0, a.cols), b);
    }
  });
}

void gemm_nn_update(MatrixView c, ConstMatrixView a, ConstMatrixView b) {
  PARFACT_CHECK(c.rows == a.rows && c.cols == b.cols && a.cols == b.rows);
  if (use_engine(c.cols, a.cols)) {
    detail::gemm_packed(c, a, false, b, true);
    return;
  }
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t kk = a.cols;
  for (index_t j = 0; j < n; ++j) {
    real_t* cj = &c.at(0, j);
    for (index_t k0 = 0; k0 < kk; k0 += kBlock) {
      const index_t k1 = std::min(kk, k0 + kBlock);
      for (index_t k = k0; k < k1; ++k) {
        const real_t bkj = b.at(k, j);
        if (bkj == 0.0) continue;
        const real_t* ak = &a.at(0, k);
        for (index_t i = 0; i < m; ++i) cj[i] -= ak[i] * bkj;
      }
    }
  }
}

void gemm_tn_update(MatrixView c, ConstMatrixView a, ConstMatrixView b) {
  PARFACT_CHECK(c.rows == a.cols && c.cols == b.cols && a.rows == b.rows);
  if (use_engine(c.cols, a.rows)) {
    detail::gemm_packed(c, a, true, b, true);
    return;
  }
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t kk = a.rows;
  for (index_t j = 0; j < n; ++j) {
    const real_t* bj = &b.at(0, j);
    real_t* cj = &c.at(0, j);
    for (index_t i = 0; i < m; ++i) {
      const real_t* ai = &a.at(0, i);
      real_t acc = 0.0;
      for (index_t k = 0; k < kk; ++k) acc += ai[k] * bj[k];
      cj[i] -= acc;
    }
  }
}

double measure_gemm_rate(index_t m) {
  PARFACT_CHECK(m > 0);
  std::vector<real_t> ca(static_cast<std::size_t>(m) * m, 0.0);
  std::vector<real_t> aa(static_cast<std::size_t>(m) * m);
  std::vector<real_t> ba(static_cast<std::size_t>(m) * m);
  Prng rng(12345);
  for (auto& v : aa) v = rng.next_real(-1, 1);
  for (auto& v : ba) v = rng.next_real(-1, 1);
  MatrixView c{ca.data(), m, m, m};
  ConstMatrixView a{aa.data(), m, m, m};
  ConstMatrixView b{ba.data(), m, m, m};
  const double flops_per_call = 2.0 * m * m * m;
  // Warm up once (page faults, clone resolution), then time a probe call
  // and derive the repetition count that makes the measurement last
  // ~50 ms, so the calibration is stable on slow and fast machines alike.
  gemm_nt_update(c, a, b);
  WallTimer probe;
  gemm_nt_update(c, a, b);
  const double probe_sec = std::max(probe.seconds(), 1e-9);
  constexpr double kTargetSeconds = 0.05;
  const int reps = static_cast<int>(
      std::clamp(kTargetSeconds / probe_sec, 1.0, 1e6));
  WallTimer t;
  for (int r = 0; r < reps; ++r) gemm_nt_update(c, a, b);
  const double sec = t.seconds();
  PARFACT_CHECK(sec > 0.0);
  return flops_per_call * reps / sec;
}

}  // namespace parfact
