#include "dense/pack.h"

#include <algorithm>

namespace parfact::detail {

void pack_panels(real_t* dst, ConstMatrixView src, index_t r) {
  const index_t d = src.rows;
  const index_t kk = src.cols;
  for (index_t p = 0; p < d; p += r) {
    const index_t pr = std::min(r, d - p);
    for (index_t k = 0; k < kk; ++k) {
      const real_t* col = &src.at(p, k);  // contiguous down the source column
      index_t i = 0;
      for (; i < pr; ++i) dst[i] = col[i];
      for (; i < r; ++i) dst[i] = 0.0;
      dst += r;
    }
  }
}

void pack_panels_trans(real_t* dst, ConstMatrixView src, index_t r) {
  const index_t d = src.cols;  // logical rows = stored columns
  const index_t kk = src.rows;
  for (index_t p = 0; p < d; p += r) {
    const index_t pr = std::min(r, d - p);
    // Walk source columns (contiguous in k) and scatter into the panel at
    // stride r; this keeps the reads unit-stride.
    for (index_t i = 0; i < pr; ++i) {
      const real_t* col = &src.at(0, p + i);
      for (index_t k = 0; k < kk; ++k) dst[static_cast<std::size_t>(k) * r + i] = col[k];
    }
    for (index_t i = pr; i < r; ++i) {
      for (index_t k = 0; k < kk; ++k) dst[static_cast<std::size_t>(k) * r + i] = 0.0;
    }
    dst += static_cast<std::size_t>(r) * kk;
  }
}

}  // namespace parfact::detail
