// Panel packing for the register-tiled dense kernel engine.
//
// The engine (microkernel.h) multiplies packed operands only: before the
// macro-kernel runs, a logical m×k left operand is repacked into contiguous
// row panels of kMR rows and a logical n×k right operand into row panels of
// kNR rows, both k-major inside the panel and zero-padded to the full panel
// height. Packing costs O(d·k) against the O(m·n·k) multiply and buys the
// micro-kernel unit-stride, cache-resident loads regardless of the source
// leading dimension.
#pragma once

#include "dense/matrix_view.h"
#include "support/types.h"

namespace parfact::detail {

/// Packs `src` (logical D×K) into panels of `r` rows: panel p holds rows
/// [p·r, (p+1)·r) for all K columns, laid out k-major (the r entries of one
/// k are contiguous), with rows beyond D zero-padded. `dst` must hold
/// ceil(D/r)·r·K reals.
void pack_panels(real_t* dst, ConstMatrixView src, index_t r);

/// Same, but `src` is stored transposed (K×D) and its transpose is packed.
void pack_panels_trans(real_t* dst, ConstMatrixView src, index_t r);

}  // namespace parfact::detail
