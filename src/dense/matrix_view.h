// Non-owning column-major dense matrix views.
//
// Frontal matrices live in large flat buffers (the multifrontal stack and
// per-rank distributed blocks); every dense kernel operates on views into
// them. Column-major with leading dimension `ld`, matching the BLAS/LAPACK
// convention the paper's solver builds on.
#pragma once

#include "support/error.h"
#include "support/types.h"

namespace parfact {

struct ConstMatrixView {
  const real_t* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  [[nodiscard]] const real_t& at(index_t i, index_t j) const {
    PARFACT_DCHECK(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[static_cast<std::size_t>(j) * ld + i];
  }
  [[nodiscard]] ConstMatrixView block(index_t r0, index_t c0, index_t nr,
                                      index_t nc) const {
    PARFACT_DCHECK(r0 >= 0 && c0 >= 0 && r0 + nr <= rows && c0 + nc <= cols);
    return {data + static_cast<std::size_t>(c0) * ld + r0, nr, nc, ld};
  }
};

struct MatrixView {
  real_t* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  [[nodiscard]] real_t& at(index_t i, index_t j) const {
    PARFACT_DCHECK(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[static_cast<std::size_t>(j) * ld + i];
  }
  [[nodiscard]] MatrixView block(index_t r0, index_t c0, index_t nr,
                                 index_t nc) const {
    PARFACT_DCHECK(r0 >= 0 && c0 >= 0 && r0 + nr <= rows && c0 + nc <= cols);
    return {data + static_cast<std::size_t>(c0) * ld + r0, nr, nc, ld};
  }
  // NOLINTNEXTLINE(google-explicit-constructor): views decay like pointers.
  operator ConstMatrixView() const { return {data, rows, cols, ld}; }

  void fill(real_t v) const {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) at(i, j) = v;
    }
  }
};

}  // namespace parfact
