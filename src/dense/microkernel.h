// BLIS-style register-tiled dense multiply engine.
//
// All level-3 kernels reduce to one micro-kernel: a kMR×kNR accumulator
// tile held in registers, updated by rank-1 FMAs from packed A/B panels
// (pack.h). Around it, the classic three-level cache blocking: kKC-deep
// slices keep a packed B panel (kKC×kNC) in L2/L3 and a packed A block
// (kMC×kKC) in L1/L2 while the macro-kernel sweeps micro-tiles.
//
// Summation order per C element depends only on the kKC partitioning of the
// k dimension — never on how m or n are partitioned — so splitting C's rows
// across threads reproduces the serial result bitwise. The multifrontal
// intra-front parallel path relies on this.
//
// Everything here computes C := C - op(A)·op(B)ᵀ (the factorization's
// update sign).
#pragma once

#include "dense/matrix_view.h"
#include "support/types.h"

namespace parfact::detail {

/// Micro-tile rows: one SIMD-friendly column vector of C (8 doubles = two
/// AVX2 or one AVX-512 register).
inline constexpr index_t kMR = 8;
/// Micro-tile columns: 6 keeps the accumulator at 12 AVX2 registers, the
/// sweet spot below the 16-register ceiling.
inline constexpr index_t kNR = 6;
/// Rows of the packed A block (kMC×kKC ≈ 192 KiB, L2-resident).
inline constexpr index_t kMC = 96;
/// Depth of one packed slice of the k dimension.
inline constexpr index_t kKC = 256;
/// Columns of the packed B panel (kKC×kNC ≈ 1.5 MiB, L3-resident).
inline constexpr index_t kNC = 768;
static_assert(kMC % kMR == 0 && kNC % kNR == 0);

/// c := c - Ap·Bpᵀ for one full kMR×kNR tile. `ap`/`bp` point at packed
/// panels (k-major, kMR- resp. kNR-wide) of depth `kc`.
void micro_kernel_full(index_t kc, const real_t* ap, const real_t* bp,
                       real_t* c, index_t ldc);

/// Edge-tile variant: accumulates the full register tile (packing
/// zero-pads) but writes back only the leading m×n corner.
void micro_kernel_edge(index_t kc, const real_t* ap, const real_t* bp,
                       real_t* c, index_t ldc, index_t m, index_t n);

/// Diagonal-tile variant for SYRK: writes back only entries with global
/// row0+i >= col0+j (the lower triangle).
void micro_kernel_lower(index_t kc, const real_t* ap, const real_t* bp,
                        real_t* c, index_t ldc, index_t m, index_t n,
                        index_t row0, index_t col0);

/// c := c - A·Bᵀ where A is the logical m×k left operand (stored transposed
/// as k×m iff `a_trans`) and B the logical n×k right operand (stored
/// transposed as k×n iff `b_trans`). This one engine serves gemm_nt
/// (false,false), gemm_nn (false,true) and gemm_tn (true,true).
void gemm_packed(MatrixView c, ConstMatrixView a, bool a_trans,
                 ConstMatrixView b, bool b_trans);

/// c := c - a·aᵀ on the lower triangle of c only (triangle-aware tiling:
/// tiles above the diagonal are skipped, tiles crossing it go through the
/// masked micro-kernel, everything else through the full one).
void syrk_packed_lower(MatrixView c, ConstMatrixView a);

}  // namespace parfact::detail
