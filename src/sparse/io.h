// Matrix Market (coordinate format) I/O.
//
// Supports `matrix coordinate real {general|symmetric}` and
// `matrix coordinate pattern {general|symmetric}` (pattern entries get value
// 1.0). Symmetric files are returned lower-triangle-stored.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/sparse_matrix.h"

namespace parfact {

/// Parsed Matrix Market content.
struct MatrixMarketData {
  SparseMatrix matrix;    ///< lower-stored if `symmetric`, else full
  bool symmetric = false;
};

/// Reads a Matrix Market stream. Throws parfact::Error on malformed input —
/// truncated files, non-numeric or partial tokens, out-of-range indices,
/// non-finite values, and dimensions that overflow the 32-bit index type are
/// all rejected with the offending 1-based line number in the message.
[[nodiscard]] MatrixMarketData read_matrix_market(std::istream& in);

/// Reads a Matrix Market file by path.
[[nodiscard]] MatrixMarketData read_matrix_market_file(const std::string& path);

/// Writes in coordinate-real format; writes a `symmetric` header when asked,
/// in which case `a` must be lower-triangle-stored.
void write_matrix_market(std::ostream& out, const SparseMatrix& a,
                         bool symmetric);

void write_matrix_market_file(const std::string& path, const SparseMatrix& a,
                              bool symmetric);

}  // namespace parfact
