// Compressed sparse column (CSC) matrix and triplet (COO) builder.
//
// CSC is the canonical format for sparse Cholesky: column j of the matrix is
// rows row_ind[col_ptr[j] .. col_ptr[j+1]) with matching values. Row indices
// within each column are kept sorted and duplicate-free by the builders in
// this module; all downstream code relies on that invariant.
//
// Symmetric matrices appear in two storage conventions:
//  * "full"  — both triangles stored (used by graph/ordering code),
//  * "lower" — only entries with row >= col (used by factorization input).
// Conversion helpers live in sparse/ops.h.
#pragma once

#include <vector>

#include "support/error.h"
#include "support/types.h"

namespace parfact {

/// CSC sparse matrix. Invariants (checked by `validate()`):
/// col_ptr is non-decreasing with col_ptr[0]==0 and col_ptr[cols]==nnz;
/// row indices are in range, strictly increasing within each column.
struct SparseMatrix {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> col_ptr;  ///< size cols()+1
  std::vector<index_t> row_ind;  ///< size nnz()
  std::vector<real_t> values;    ///< size nnz()

  SparseMatrix() = default;
  SparseMatrix(index_t r, index_t c)
      : rows(r), cols(c), col_ptr(static_cast<std::size_t>(c) + 1, 0) {}

  [[nodiscard]] index_t nnz() const {
    return col_ptr.empty() ? 0 : col_ptr.back();
  }

  /// Throws parfact::Error if any structural invariant is violated.
  void validate() const;

  /// Value at (i, j), or 0 if not stored. O(log nnz(col j)).
  [[nodiscard]] real_t at(index_t i, index_t j) const;
};

/// Triplet accumulator. Duplicate entries are summed when compiled to CSC,
/// which makes finite-element assembly (overlapping element stiffness
/// contributions) a one-liner.
class TripletBuilder {
 public:
  TripletBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    PARFACT_CHECK(rows >= 0 && cols >= 0);
  }

  void add(index_t i, index_t j, real_t v) {
    PARFACT_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    entries_.push_back(Entry{i, j, v});
  }

  /// Adds v at (i,j) and (j,i); adds only once when i == j.
  void add_symmetric(index_t i, index_t j, real_t v) {
    add(i, j, v);
    if (i != j) add(j, i, v);
  }

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  /// Compiles to CSC, summing duplicates and dropping exact zeros that result
  /// from cancellation only if `drop_zeros` is set.
  [[nodiscard]] SparseMatrix build(bool drop_zeros = false) const;

 private:
  struct Entry {
    index_t row;
    index_t col;
    real_t value;
  };
  index_t rows_;
  index_t cols_;
  std::vector<Entry> entries_;
};

}  // namespace parfact
