#include "sparse/io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "support/error.h"

namespace parfact {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

MatrixMarketData read_matrix_market(std::istream& in) {
  std::string line;
  PARFACT_CHECK_MSG(std::getline(in, line), "empty Matrix Market stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  PARFACT_CHECK_MSG(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  PARFACT_CHECK_MSG(lower(object) == "matrix", "unsupported object: " << object);
  PARFACT_CHECK_MSG(lower(format) == "coordinate",
                    "only coordinate format is supported");
  field = lower(field);
  symmetry = lower(symmetry);
  PARFACT_CHECK_MSG(field == "real" || field == "pattern" ||
                        field == "integer",
                    "unsupported field: " << field);
  PARFACT_CHECK_MSG(symmetry == "general" || symmetry == "symmetric",
                    "unsupported symmetry: " << symmetry);
  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long long rows = 0, cols = 0, entries = 0;
  size_line >> rows >> cols >> entries;
  PARFACT_CHECK_MSG(rows > 0 && cols > 0 && entries >= 0,
                    "bad size line: " << line);

  TripletBuilder b(static_cast<index_t>(rows), static_cast<index_t>(cols));
  for (long long k = 0; k < entries; ++k) {
    long long i = 0, j = 0;
    double v = 1.0;
    in >> i >> j;
    if (!pattern) in >> v;
    PARFACT_CHECK_MSG(in, "truncated entry list at entry " << k);
    PARFACT_CHECK_MSG(i >= 1 && i <= rows && j >= 1 && j <= cols,
                      "entry out of range: " << i << " " << j);
    index_t ii = static_cast<index_t>(i - 1);
    index_t jj = static_cast<index_t>(j - 1);
    if (symmetric) {
      // Normalize to lower storage regardless of which triangle the file used.
      if (ii < jj) std::swap(ii, jj);
    }
    b.add(ii, jj, v);
  }
  return MatrixMarketData{b.build(), symmetric};
}

MatrixMarketData read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  PARFACT_CHECK_MSG(in, "cannot open " << path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const SparseMatrix& a,
                         bool symmetric) {
  out << "%%MatrixMarket matrix coordinate real "
      << (symmetric ? "symmetric" : "general") << "\n";
  out << a.rows << " " << a.cols << " " << a.nnz() << "\n";
  out.precision(17);
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t p = a.col_ptr[j]; p < a.col_ptr[j + 1]; ++p) {
      if (symmetric) {
        PARFACT_CHECK_MSG(a.row_ind[p] >= j,
                          "symmetric write requires lower-stored input");
      }
      out << (a.row_ind[p] + 1) << " " << (j + 1) << " " << a.values[p]
          << "\n";
    }
  }
}

void write_matrix_market_file(const std::string& path, const SparseMatrix& a,
                              bool symmetric) {
  std::ofstream out(path);
  PARFACT_CHECK_MSG(out, "cannot open " << path << " for writing");
  write_matrix_market(out, a, symmetric);
  PARFACT_CHECK_MSG(out.good(), "write to " << path << " failed");
}

}  // namespace parfact
