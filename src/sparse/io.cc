#include "sparse/io.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "support/error.h"

namespace parfact {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool is_hspace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

bool blank_line(const std::string& line) {
  return std::all_of(line.begin(), line.end(), is_hspace);
}

// The reader never hands raw tokens to the stream extractors: every data
// line is tokenized with strtoll/strtod through these helpers so malformed
// tokens, partial tokens ("12abc"), and out-of-range literals all surface
// as parfact::Error carrying the 1-based line number — never UB or a
// silently misparsed matrix.

long long parse_int_token(const char*& p, long long lineno,
                          const char* what) {
  while (is_hspace(*p)) ++p;
  PARFACT_CHECK_MSG(*p != '\0',
                    "Matrix Market line " << lineno << ": missing " << what);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(p, &end, 10);
  PARFACT_CHECK_MSG(end != p, "Matrix Market line "
                                  << lineno << ": expected an integer "
                                  << what << ", got \"" << p << "\"");
  PARFACT_CHECK_MSG(errno != ERANGE, "Matrix Market line "
                                         << lineno << ": " << what
                                         << " overflows a 64-bit integer");
  PARFACT_CHECK_MSG(*end == '\0' || is_hspace(*end),
                    "Matrix Market line " << lineno << ": malformed "
                                          << what << " token \"" << p
                                          << "\"");
  p = end;
  return v;
}

double parse_real_token(const char*& p, long long lineno, const char* what) {
  while (is_hspace(*p)) ++p;
  PARFACT_CHECK_MSG(*p != '\0',
                    "Matrix Market line " << lineno << ": missing " << what);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(p, &end);
  PARFACT_CHECK_MSG(end != p, "Matrix Market line "
                                  << lineno << ": expected a numeric "
                                  << what << ", got \"" << p << "\"");
  PARFACT_CHECK_MSG(*end == '\0' || is_hspace(*end),
                    "Matrix Market line " << lineno << ": malformed "
                                          << what << " token \"" << p
                                          << "\"");
  p = end;
  return v;
}

void expect_line_end(const char* p, long long lineno) {
  while (is_hspace(*p)) ++p;
  PARFACT_CHECK_MSG(*p == '\0', "Matrix Market line "
                                    << lineno << ": trailing garbage \"" << p
                                    << "\"");
}

}  // namespace

MatrixMarketData read_matrix_market(std::istream& in) {
  std::string line;
  long long lineno = 0;
  auto next_line = [&](const char* what) {
    PARFACT_CHECK_MSG(std::getline(in, line),
                      "Matrix Market: input truncated before " << what
                          << " (last line read: " << lineno << ")");
    ++lineno;
  };

  next_line("the header");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  PARFACT_CHECK_MSG(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  PARFACT_CHECK_MSG(lower(object) == "matrix", "unsupported object: " << object);
  PARFACT_CHECK_MSG(lower(format) == "coordinate",
                    "only coordinate format is supported");
  field = lower(field);
  symmetry = lower(symmetry);
  PARFACT_CHECK_MSG(field == "real" || field == "pattern" ||
                        field == "integer",
                    "unsupported field: " << field);
  PARFACT_CHECK_MSG(symmetry == "general" || symmetry == "symmetric",
                    "unsupported symmetry: " << symmetry);
  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";

  // Skip comments and blank lines up to the size line.
  do {
    next_line("the size line");
  } while ((!line.empty() && line[0] == '%') || blank_line(line));

  const char* p = line.c_str();
  const long long rows = parse_int_token(p, lineno, "row count");
  const long long cols = parse_int_token(p, lineno, "column count");
  const long long entries = parse_int_token(p, lineno, "entry count");
  expect_line_end(p, lineno);
  PARFACT_CHECK_MSG(rows > 0 && cols > 0,
                    "Matrix Market line " << lineno
                                          << ": non-positive dimensions "
                                          << rows << " x " << cols);
  constexpr long long kMaxDim = std::numeric_limits<index_t>::max();
  PARFACT_CHECK_MSG(rows <= kMaxDim && cols <= kMaxDim,
                    "Matrix Market line "
                        << lineno << ": dimensions " << rows << " x " << cols
                        << " overflow the 32-bit index type");
  PARFACT_CHECK_MSG(entries >= 0, "Matrix Market line "
                                      << lineno << ": negative entry count "
                                      << entries);

  TripletBuilder b(static_cast<index_t>(rows), static_cast<index_t>(cols));
  for (long long k = 0; k < entries; ++k) {
    // One entry per line (blank lines tolerated); a truncated file fails
    // here with the entry index instead of reading garbage.
    do {
      PARFACT_CHECK_MSG(std::getline(in, line),
                        "Matrix Market: truncated entry list — expected "
                            << entries << " entries, got " << k
                            << " (input ended after line " << lineno << ")");
      ++lineno;
    } while (blank_line(line));

    p = line.c_str();
    const long long i = parse_int_token(p, lineno, "row index");
    const long long j = parse_int_token(p, lineno, "column index");
    double v = 1.0;
    if (!pattern) {
      v = parse_real_token(p, lineno, "value");
      PARFACT_CHECK_MSG(std::isfinite(v),
                        "Matrix Market line " << lineno
                                              << ": non-finite value " << v);
    }
    expect_line_end(p, lineno);
    PARFACT_CHECK_MSG(i >= 1 && i <= rows && j >= 1 && j <= cols,
                      "Matrix Market line "
                          << lineno << ": entry (" << i << ", " << j
                          << ") out of range for a " << rows << " x " << cols
                          << " matrix");
    index_t ii = static_cast<index_t>(i - 1);
    index_t jj = static_cast<index_t>(j - 1);
    if (symmetric) {
      // Normalize to lower storage regardless of which triangle the file used.
      if (ii < jj) std::swap(ii, jj);
    }
    b.add(ii, jj, v);
  }
  return MatrixMarketData{b.build(), symmetric};
}

MatrixMarketData read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  PARFACT_CHECK_MSG(in, "cannot open " << path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const SparseMatrix& a,
                         bool symmetric) {
  out << "%%MatrixMarket matrix coordinate real "
      << (symmetric ? "symmetric" : "general") << "\n";
  out << a.rows << " " << a.cols << " " << a.nnz() << "\n";
  out.precision(17);
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t p = a.col_ptr[j]; p < a.col_ptr[j + 1]; ++p) {
      if (symmetric) {
        PARFACT_CHECK_MSG(a.row_ind[p] >= j,
                          "symmetric write requires lower-stored input");
      }
      out << (a.row_ind[p] + 1) << " " << (j + 1) << " " << a.values[p]
          << "\n";
    }
  }
}

void write_matrix_market_file(const std::string& path, const SparseMatrix& a,
                              bool symmetric) {
  std::ofstream out(path);
  PARFACT_CHECK_MSG(out, "cannot open " << path << " for writing");
  write_matrix_market(out, a, symmetric);
  PARFACT_CHECK_MSG(out.good(), "write to " << path << " failed");
}

}  // namespace parfact
