// Generators for the test-matrix suite.
//
// The SC'09 evaluation used large SPD matrices from 3-D finite-element
// applications (structural mechanics, sheet-metal forming). Those industrial
// matrices are proprietary, so per the substitution rule we generate matrices
// of the same structural class: 2-D/3-D grid Laplacians (the classic model
// problems) and genuine trilinear-hexahedral linear-elasticity stiffness
// matrices (3 dof per node, assembled with Gauss quadrature), which have the
// dense-node-coupling profile that drives the paper's fill and flop counts.
//
// All generators return *lower-triangle-stored* SPD matrices.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/sparse_matrix.h"
#include "support/types.h"

namespace parfact {

/// 2-D grid Laplacian on an nx-by-ny grid.
/// stencil 5: classic 5-point (-1 neighbors, +4 diagonal).
/// stencil 9: 9-point (corner neighbors -1, diagonal +8).
[[nodiscard]] SparseMatrix grid_laplacian_2d(index_t nx, index_t ny,
                                             int stencil = 5);

/// 3-D grid Laplacian on an nx-by-ny-by-nz grid.
/// stencil 7: 7-point. stencil 27: full 27-point box stencil.
[[nodiscard]] SparseMatrix grid_laplacian_3d(index_t nx, index_t ny,
                                             index_t nz, int stencil = 7);

/// Linear-elasticity stiffness matrix for a box of nx*ny*nz 8-node hexahedral
/// elements ((nx+1)(ny+1)(nz+1) nodes, 3 dof each). Isotropic material with
/// Young's modulus E and Poisson ratio nu; element stiffness integrated with
/// 2x2x2 Gauss quadrature. The z=0 face is clamped (Dirichlet) by adding a
/// large diagonal penalty, which keeps the matrix SPD without renumbering.
[[nodiscard]] SparseMatrix elasticity_3d(index_t nx, index_t ny, index_t nz,
                                         real_t e_modulus = 1.0,
                                         real_t nu = 0.3);

/// Banded SPD matrix of dimension n and half-bandwidth b: A = tridiag-like
/// with entries decaying away from the diagonal, strictly diagonally dominant.
[[nodiscard]] SparseMatrix banded_spd(index_t n, index_t bandwidth);

/// Random sparse SPD matrix: ~`nnz_per_col` off-diagonal entries per column
/// placed uniformly, symmetric, made SPD by strict diagonal dominance.
[[nodiscard]] SparseMatrix random_spd(index_t n, index_t nnz_per_col,
                                      std::uint64_t seed);

/// Symmetric quasi-definite KKT (saddle-point) matrix
///   [ K   Bᵀ ]
///   [ B  -M  ]
/// with K (n1 x n1) and M (n2 x n2) SPD and B random sparse — the classic
/// indefinite-but-strongly-factorizable system that exercises the LDLᵀ
/// path (no pivoting needed). Lower-triangle stored.
[[nodiscard]] SparseMatrix saddle_point_kkt(index_t n1, index_t n2,
                                            index_t couplings_per_row,
                                            std::uint64_t seed);

/// Appends `count` decoupled rows/columns (diagonal-only, value
/// `diag_value`) to a lower-stored symmetric matrix. Decoupled rows receive
/// no updates during factorization, so their pivots equal `diag_value`
/// exactly in every engine and under every ordering — a tiny positive value
/// makes the matrix near-singular and a non-positive value makes it
/// indefinite, with a perturbation count that is deterministically `count`
/// when static pivoting is enabled. The robustness tests use this to assert
/// identical recovery behavior across the serial, shared-memory-parallel,
/// and distributed engines.
[[nodiscard]] SparseMatrix append_decoupled_rows(const SparseMatrix& lower,
                                                 index_t count,
                                                 real_t diag_value);

/// A named test problem of the T1 suite.
struct TestProblem {
  std::string name;        ///< e.g. "GRID3D-48"
  std::string description; ///< human-readable provenance
  SparseMatrix lower;      ///< lower-triangle-stored SPD matrix
};

/// The T1 matrix suite used by every experiment (see DESIGN.md §4).
/// `scale` <= 1.0 shrinks the grid dimensions proportionally, which the unit
/// and smoke tests use to keep runtimes bounded.
[[nodiscard]] std::vector<TestProblem> test_suite(double scale = 1.0);

}  // namespace parfact
