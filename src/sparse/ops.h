// Structural and numerical operations on CSC matrices.
#pragma once

#include <span>
#include <vector>

#include "sparse/sparse_matrix.h"
#include "support/types.h"

namespace parfact {

/// B = Aᵀ (also converts CSC<->CSR interpretation). O(nnz + rows).
[[nodiscard]] SparseMatrix transpose(const SparseMatrix& a);

/// True iff A is structurally and numerically symmetric (|a_ij - a_ji| <=
/// tol * max(|a_ij|,|a_ji|, 1)).
[[nodiscard]] bool is_symmetric(const SparseMatrix& a, real_t tol = 0.0);

/// Extracts the lower triangle (row >= col) of a full-stored matrix.
[[nodiscard]] SparseMatrix lower_triangle(const SparseMatrix& a);

/// Expands a lower-triangle-stored symmetric matrix to full storage.
/// Off-diagonal entries are mirrored.
[[nodiscard]] SparseMatrix symmetrize_full(const SparseMatrix& lower);

/// Symmetric permutation B = P A Pᵀ where B(perm_inv[i], perm_inv[j]) =
/// A(i, j) and perm maps new index -> old index (perm_inv is its inverse).
/// Input and output are full-stored.
[[nodiscard]] SparseMatrix permute_symmetric(const SparseMatrix& a,
                                             std::span<const index_t> perm);

/// y = A x for full-stored A.
void spmv(const SparseMatrix& a, std::span<const real_t> x,
          std::span<real_t> y);

/// y = A x where A is symmetric and stored lower-only.
void spmv_symmetric_lower(const SparseMatrix& lower,
                          std::span<const real_t> x, std::span<real_t> y);

/// Infinity norm (max absolute row sum) of a full-stored matrix.
[[nodiscard]] real_t norm_inf(const SparseMatrix& a);

/// Frobenius norm.
[[nodiscard]] real_t norm_frobenius(const SparseMatrix& a);

/// Largest absolute stored entry (0 for an empty matrix). Storage-convention
/// agnostic — used to scale the static-pivoting threshold.
[[nodiscard]] real_t max_abs(const SparseMatrix& a);

/// Checks that perm is a permutation of [0, n).
[[nodiscard]] bool is_permutation(std::span<const index_t> perm);

/// Inverse permutation: result[perm[i]] = i.
[[nodiscard]] std::vector<index_t> invert_permutation(
    std::span<const index_t> perm);

/// Dense-vector helpers used throughout the solve and refinement paths.
[[nodiscard]] real_t dot(std::span<const real_t> x, std::span<const real_t> y);
[[nodiscard]] real_t norm2(std::span<const real_t> x);
[[nodiscard]] real_t norm_inf(std::span<const real_t> x);
void axpy(real_t alpha, std::span<const real_t> x, std::span<real_t> y);

}  // namespace parfact
