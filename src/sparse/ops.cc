#include "sparse/ops.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "support/error.h"

namespace parfact {

SparseMatrix transpose(const SparseMatrix& a) {
  SparseMatrix t(a.cols, a.rows);
  t.row_ind.resize(static_cast<std::size_t>(a.nnz()));
  t.values.resize(static_cast<std::size_t>(a.nnz()));
  // Column pointers of T = row counts of A.
  for (index_t p = 0; p < a.nnz(); ++p) ++t.col_ptr[a.row_ind[p] + 1];
  for (index_t i = 0; i < a.rows; ++i) t.col_ptr[i + 1] += t.col_ptr[i];
  std::vector<index_t> next(t.col_ptr.begin(), t.col_ptr.end() - 1);
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t p = a.col_ptr[j]; p < a.col_ptr[j + 1]; ++p) {
      const index_t q = next[a.row_ind[p]]++;
      t.row_ind[q] = j;
      t.values[q] = a.values[p];
    }
  }
  // Scanning A's columns in order emits each transposed column's rows in
  // increasing order, so T already satisfies the sortedness invariant.
  return t;
}

bool is_symmetric(const SparseMatrix& a, real_t tol) {
  if (a.rows != a.cols) return false;
  const SparseMatrix t = transpose(a);
  if (t.col_ptr != a.col_ptr || t.row_ind != a.row_ind) return false;
  for (std::size_t p = 0; p < a.values.size(); ++p) {
    const real_t x = a.values[p];
    const real_t y = t.values[p];
    const real_t scale = std::max({std::abs(x), std::abs(y), real_t{1}});
    if (std::abs(x - y) > tol * scale) return false;
  }
  return true;
}

SparseMatrix lower_triangle(const SparseMatrix& a) {
  PARFACT_CHECK(a.rows == a.cols);
  SparseMatrix l(a.rows, a.cols);
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t p = a.col_ptr[j]; p < a.col_ptr[j + 1]; ++p) {
      if (a.row_ind[p] >= j) {
        l.row_ind.push_back(a.row_ind[p]);
        l.values.push_back(a.values[p]);
      }
    }
    l.col_ptr[j + 1] = static_cast<index_t>(l.row_ind.size());
  }
  return l;
}

SparseMatrix symmetrize_full(const SparseMatrix& lower) {
  PARFACT_CHECK(lower.rows == lower.cols);
  TripletBuilder b(lower.rows, lower.cols);
  for (index_t j = 0; j < lower.cols; ++j) {
    for (index_t p = lower.col_ptr[j]; p < lower.col_ptr[j + 1]; ++p) {
      PARFACT_CHECK_MSG(lower.row_ind[p] >= j,
                        "matrix is not lower-triangular-stored");
      b.add_symmetric(lower.row_ind[p], j, lower.values[p]);
    }
  }
  return b.build();
}

SparseMatrix permute_symmetric(const SparseMatrix& a,
                               std::span<const index_t> perm) {
  PARFACT_CHECK(a.rows == a.cols);
  PARFACT_CHECK(static_cast<index_t>(perm.size()) == a.rows);
  const std::vector<index_t> inv = invert_permutation(perm);
  SparseMatrix b(a.rows, a.cols);
  b.row_ind.resize(static_cast<std::size_t>(a.nnz()));
  b.values.resize(static_cast<std::size_t>(a.nnz()));
  // Column new_j of B is column perm[new_j] of A with rows relabeled; count,
  // scatter, then sort rows within each column.
  for (index_t new_j = 0; new_j < a.cols; ++new_j) {
    const index_t old_j = perm[new_j];
    b.col_ptr[new_j + 1] =
        b.col_ptr[new_j] + (a.col_ptr[old_j + 1] - a.col_ptr[old_j]);
  }
  std::vector<std::pair<index_t, real_t>> col;
  for (index_t new_j = 0; new_j < a.cols; ++new_j) {
    const index_t old_j = perm[new_j];
    col.clear();
    for (index_t p = a.col_ptr[old_j]; p < a.col_ptr[old_j + 1]; ++p) {
      col.emplace_back(inv[a.row_ind[p]], a.values[p]);
    }
    std::sort(col.begin(), col.end());
    index_t q = b.col_ptr[new_j];
    for (const auto& [r, v] : col) {
      b.row_ind[q] = r;
      b.values[q] = v;
      ++q;
    }
  }
  return b;
}

void spmv(const SparseMatrix& a, std::span<const real_t> x,
          std::span<real_t> y) {
  PARFACT_CHECK(static_cast<index_t>(x.size()) == a.cols);
  PARFACT_CHECK(static_cast<index_t>(y.size()) == a.rows);
  std::fill(y.begin(), y.end(), real_t{0});
  for (index_t j = 0; j < a.cols; ++j) {
    const real_t xj = x[j];
    if (xj == 0.0) continue;
    for (index_t p = a.col_ptr[j]; p < a.col_ptr[j + 1]; ++p) {
      y[a.row_ind[p]] += a.values[p] * xj;
    }
  }
}

void spmv_symmetric_lower(const SparseMatrix& lower,
                          std::span<const real_t> x, std::span<real_t> y) {
  PARFACT_CHECK(lower.rows == lower.cols);
  PARFACT_CHECK(static_cast<index_t>(x.size()) == lower.cols);
  PARFACT_CHECK(static_cast<index_t>(y.size()) == lower.rows);
  std::fill(y.begin(), y.end(), real_t{0});
  for (index_t j = 0; j < lower.cols; ++j) {
    for (index_t p = lower.col_ptr[j]; p < lower.col_ptr[j + 1]; ++p) {
      const index_t i = lower.row_ind[p];
      const real_t v = lower.values[p];
      y[i] += v * x[j];
      if (i != j) y[j] += v * x[i];
    }
  }
}

real_t norm_inf(const SparseMatrix& a) {
  std::vector<real_t> row_sum(static_cast<std::size_t>(a.rows), 0.0);
  for (index_t p = 0; p < a.nnz(); ++p) {
    row_sum[a.row_ind[p]] += std::abs(a.values[p]);
  }
  real_t m = 0.0;
  for (real_t s : row_sum) m = std::max(m, s);
  return m;
}

real_t norm_frobenius(const SparseMatrix& a) {
  real_t s = 0.0;
  for (real_t v : a.values) s += v * v;
  return std::sqrt(s);
}

real_t max_abs(const SparseMatrix& a) {
  real_t m = 0.0;
  for (real_t v : a.values) m = std::max(m, std::abs(v));
  return m;
}

bool is_permutation(std::span<const index_t> perm) {
  const auto n = static_cast<index_t>(perm.size());
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (index_t v : perm) {
    if (v < 0 || v >= n || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

std::vector<index_t> invert_permutation(std::span<const index_t> perm) {
  std::vector<index_t> inv(perm.size(), kNone);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    PARFACT_CHECK_MSG(perm[i] >= 0 &&
                          perm[i] < static_cast<index_t>(perm.size()) &&
                          inv[perm[i]] == kNone,
                      "not a permutation");
    inv[perm[i]] = static_cast<index_t>(i);
  }
  return inv;
}

real_t dot(std::span<const real_t> x, std::span<const real_t> y) {
  PARFACT_CHECK(x.size() == y.size());
  real_t s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

real_t norm2(std::span<const real_t> x) { return std::sqrt(dot(x, x)); }

real_t norm_inf(std::span<const real_t> x) {
  real_t m = 0.0;
  for (real_t v : x) m = std::max(m, std::abs(v));
  return m;
}

void axpy(real_t alpha, std::span<const real_t> x, std::span<real_t> y) {
  PARFACT_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace parfact
