#include "sparse/sparse_matrix.h"

#include <algorithm>
#include <cstddef>

namespace parfact {

void SparseMatrix::validate() const {
  PARFACT_CHECK(rows >= 0 && cols >= 0);
  PARFACT_CHECK(col_ptr.size() == static_cast<std::size_t>(cols) + 1);
  PARFACT_CHECK(col_ptr.front() == 0);
  PARFACT_CHECK(row_ind.size() == static_cast<std::size_t>(col_ptr.back()));
  PARFACT_CHECK(values.size() == row_ind.size());
  for (index_t j = 0; j < cols; ++j) {
    PARFACT_CHECK_MSG(col_ptr[j] <= col_ptr[j + 1],
                      "col_ptr not monotone at column " << j);
    for (index_t p = col_ptr[j]; p < col_ptr[j + 1]; ++p) {
      PARFACT_CHECK_MSG(row_ind[p] >= 0 && row_ind[p] < rows,
                        "row index out of range in column " << j);
      if (p > col_ptr[j]) {
        PARFACT_CHECK_MSG(row_ind[p - 1] < row_ind[p],
                          "rows not strictly increasing in column " << j);
      }
    }
  }
}

real_t SparseMatrix::at(index_t i, index_t j) const {
  PARFACT_CHECK(i >= 0 && i < rows && j >= 0 && j < cols);
  const auto begin = row_ind.begin() + col_ptr[j];
  const auto end = row_ind.begin() + col_ptr[j + 1];
  const auto it = std::lower_bound(begin, end, i);
  if (it == end || *it != i) return 0.0;
  return values[static_cast<std::size_t>(it - row_ind.begin())];
}

SparseMatrix TripletBuilder::build(bool drop_zeros) const {
  // Counting sort by column, then sort each column's rows and fold duplicates.
  SparseMatrix a(rows_, cols_);
  std::vector<index_t> count(static_cast<std::size_t>(cols_) + 1, 0);
  for (const Entry& e : entries_) ++count[static_cast<std::size_t>(e.col) + 1];
  for (index_t j = 0; j < cols_; ++j) count[j + 1] += count[j];

  std::vector<index_t> row(entries_.size());
  std::vector<real_t> val(entries_.size());
  {
    std::vector<index_t> next(count.begin(), count.end() - 1);
    for (const Entry& e : entries_) {
      const index_t p = next[e.col]++;
      row[p] = e.row;
      val[p] = e.value;
    }
  }

  a.row_ind.reserve(entries_.size());
  a.values.reserve(entries_.size());
  std::vector<index_t> perm;
  for (index_t j = 0; j < cols_; ++j) {
    const index_t lo = count[j];
    const index_t hi = count[j + 1];
    perm.resize(static_cast<std::size_t>(hi - lo));
    for (index_t k = 0; k < hi - lo; ++k) perm[k] = lo + k;
    std::sort(perm.begin(), perm.end(),
              [&](index_t x, index_t y) { return row[x] < row[y]; });
    index_t k = 0;
    while (k < hi - lo) {
      const index_t r = row[perm[k]];
      real_t sum = 0.0;
      while (k < hi - lo && row[perm[k]] == r) sum += val[perm[k++]];
      if (drop_zeros && sum == 0.0) continue;
      a.row_ind.push_back(r);
      a.values.push_back(sum);
    }
    a.col_ptr[j + 1] = static_cast<index_t>(a.row_ind.size());
  }
  return a;
}

}  // namespace parfact
