#include "sparse/gen.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>

#include "sparse/ops.h"
#include "support/error.h"
#include "support/prng.h"

namespace parfact {
namespace {

index_t idx2(index_t x, index_t y, index_t nx) { return y * nx + x; }

index_t idx3(index_t x, index_t y, index_t z, index_t nx, index_t ny) {
  return (z * ny + y) * nx + x;
}

}  // namespace

SparseMatrix grid_laplacian_2d(index_t nx, index_t ny, int stencil) {
  PARFACT_CHECK(nx >= 1 && ny >= 1);
  PARFACT_CHECK(stencil == 5 || stencil == 9);
  const index_t n = nx * ny;
  TripletBuilder b(n, n);
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t me = idx2(x, y, nx);
      real_t diag = 0.0;
      for (index_t dy = -1; dy <= 1; ++dy) {
        for (index_t dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          if (stencil == 5 && dx != 0 && dy != 0) continue;
          const index_t xx = x + dx;
          const index_t yy = y + dy;
          diag += 1.0;  // Dirichlet boundary: off-grid neighbors still add
                        // to the diagonal, keeping the matrix SPD.
          if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) continue;
          const index_t other = idx2(xx, yy, nx);
          if (other < me) b.add(me, other, -1.0);  // lower triangle only
        }
      }
      b.add(me, me, diag + 0.05);
    }
  }
  return b.build();
}

SparseMatrix grid_laplacian_3d(index_t nx, index_t ny, index_t nz,
                               int stencil) {
  PARFACT_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  PARFACT_CHECK(stencil == 7 || stencil == 27);
  const index_t n = nx * ny * nz;
  TripletBuilder b(n, n);
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t me = idx3(x, y, z, nx, ny);
        real_t diag = 0.0;
        for (index_t dz = -1; dz <= 1; ++dz) {
          for (index_t dy = -1; dy <= 1; ++dy) {
            for (index_t dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const int axes = (dx != 0) + (dy != 0) + (dz != 0);
              if (stencil == 7 && axes != 1) continue;
              const index_t xx = x + dx;
              const index_t yy = y + dy;
              const index_t zz = z + dz;
              diag += 1.0;
              if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 ||
                  zz >= nz) {
                continue;
              }
              const index_t other = idx3(xx, yy, zz, nx, ny);
              if (other < me) b.add(me, other, -1.0);
            }
          }
        }
        b.add(me, me, diag + 0.05);
      }
    }
  }
  return b.build();
}

namespace {

/// 24x24 stiffness of one trilinear hexahedral element on a unit cube,
/// isotropic linear elasticity, 2x2x2 Gauss quadrature. Dof layout:
/// node-major, (ux, uy, uz) per node, nodes in lexicographic corner order.
std::array<std::array<real_t, 24>, 24> hex8_stiffness(real_t e_modulus,
                                                      real_t nu) {
  // Lamé parameters.
  const real_t lambda =
      e_modulus * nu / ((1.0 + nu) * (1.0 - 2.0 * nu));
  const real_t mu = e_modulus / (2.0 * (1.0 + nu));

  // Corner reference coordinates in {-1, +1}^3.
  std::array<std::array<real_t, 3>, 8> corner;
  for (int a = 0; a < 8; ++a) {
    corner[a] = {real_t(a & 1 ? 1 : -1), real_t(a & 2 ? 1 : -1),
                 real_t(a & 4 ? 1 : -1)};
  }

  const real_t g = 1.0 / std::sqrt(3.0);  // Gauss point coordinate
  std::array<std::array<real_t, 24>, 24> k{};

  for (int gp = 0; gp < 8; ++gp) {
    const real_t xi = (gp & 1 ? g : -g);
    const real_t eta = (gp & 2 ? g : -g);
    const real_t zeta = (gp & 4 ? g : -g);

    // Shape-function gradients in reference coordinates. On the unit-cube
    // element the Jacobian is diag(1/2), so physical gradients are 2x the
    // reference ones and the quadrature weight is det(J) = 1/8.
    std::array<std::array<real_t, 3>, 8> dn;
    for (int a = 0; a < 8; ++a) {
      const real_t cx = corner[a][0];
      const real_t cy = corner[a][1];
      const real_t cz = corner[a][2];
      dn[a][0] = 0.125 * cx * (1 + cy * eta) * (1 + cz * zeta) * 2.0;
      dn[a][1] = 0.125 * cy * (1 + cx * xi) * (1 + cz * zeta) * 2.0;
      dn[a][2] = 0.125 * cz * (1 + cx * xi) * (1 + cy * eta) * 2.0;
    }
    const real_t w = 0.125;  // det(J) * unit Gauss weight

    // k += w * Bᵀ D B without forming B: standard index expression for
    // isotropic elasticity,
    // K[3a+i][3b+j] += w * (lambda dN_a/dx_i dN_b/dx_j
    //                       + mu dN_a/dx_j dN_b/dx_i
    //                       + mu delta_ij sum_m dN_a/dx_m dN_b/dx_m).
    for (int a = 0; a < 8; ++a) {
      for (int b = 0; b < 8; ++b) {
        real_t grad_dot = 0.0;
        for (int m = 0; m < 3; ++m) grad_dot += dn[a][m] * dn[b][m];
        for (int i = 0; i < 3; ++i) {
          for (int j = 0; j < 3; ++j) {
            real_t v = lambda * dn[a][i] * dn[b][j] +
                       mu * dn[a][j] * dn[b][i];
            if (i == j) v += mu * grad_dot;
            k[3 * a + i][3 * b + j] += w * v;
          }
        }
      }
    }
  }
  return k;
}

}  // namespace

SparseMatrix elasticity_3d(index_t nx, index_t ny, index_t nz,
                           real_t e_modulus, real_t nu) {
  PARFACT_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  const auto ke = hex8_stiffness(e_modulus, nu);
  const index_t nnx = nx + 1;
  const index_t nny = ny + 1;
  const index_t nnz_nodes = nz + 1;
  const index_t n = 3 * nnx * nny * nnz_nodes;
  TripletBuilder b(n, n);

  for (index_t ez = 0; ez < nz; ++ez) {
    for (index_t ey = 0; ey < ny; ++ey) {
      for (index_t ex = 0; ex < nx; ++ex) {
        // Global node numbers of the 8 element corners, same corner order as
        // hex8_stiffness.
        std::array<index_t, 8> node;
        for (int a = 0; a < 8; ++a) {
          const index_t x = ex + ((a & 1) ? 1 : 0);
          const index_t y = ey + ((a & 2) ? 1 : 0);
          const index_t z = ez + ((a & 4) ? 1 : 0);
          node[a] = idx3(x, y, z, nnx, nny);
        }
        for (int a = 0; a < 8; ++a) {
          for (int i = 0; i < 3; ++i) {
            const index_t gi = 3 * node[a] + i;
            for (int bb = 0; bb < 8; ++bb) {
              for (int j = 0; j < 3; ++j) {
                const index_t gj = 3 * node[bb] + j;
                if (gj > gi) continue;  // assemble lower triangle only
                const real_t v = ke[3 * a + i][3 * bb + j];
                if (v != 0.0) b.add(gi, gj, v);
              }
            }
          }
        }
      }
    }
  }

  // Clamp the z=0 face with a diagonal penalty (keeps SPD, no renumbering).
  const real_t penalty = 1e4 * e_modulus;
  for (index_t y = 0; y < nny; ++y) {
    for (index_t x = 0; x < nnx; ++x) {
      const index_t node = idx3(x, y, 0, nnx, nny);
      for (int i = 0; i < 3; ++i) b.add(3 * node + i, 3 * node + i, penalty);
    }
  }
  return b.build();
}

SparseMatrix banded_spd(index_t n, index_t bandwidth) {
  PARFACT_CHECK(n >= 1 && bandwidth >= 0);
  TripletBuilder b(n, n);
  for (index_t j = 0; j < n; ++j) {
    real_t diag = 0.1;
    for (index_t i = j + 1; i <= std::min<index_t>(j + bandwidth, n - 1);
         ++i) {
      const real_t v = -1.0 / static_cast<real_t>(i - j);
      b.add(i, j, v);
      diag += std::abs(v);
    }
    // Entries above the diagonal mirror those below; count them into the
    // diagonal for strict dominance.
    for (index_t i = std::max<index_t>(0, j - bandwidth); i < j; ++i) {
      diag += 1.0 / static_cast<real_t>(j - i);
    }
    b.add(j, j, diag + 1.0);
  }
  return b.build();
}

SparseMatrix random_spd(index_t n, index_t nnz_per_col, std::uint64_t seed) {
  PARFACT_CHECK(n >= 1 && nnz_per_col >= 0);
  Prng rng(seed);
  // Collect a symmetric off-diagonal pattern, then make it SPD by dominance.
  std::set<std::pair<index_t, index_t>> pattern;  // (i, j) with i > j
  for (index_t j = 0; j < n; ++j) {
    for (index_t k = 0; k < nnz_per_col; ++k) {
      const index_t i = rng.next_index(n);
      if (i == j) continue;
      pattern.emplace(std::max(i, j), std::min(i, j));
    }
  }
  std::vector<real_t> diag(static_cast<std::size_t>(n), 1.0);
  TripletBuilder b(n, n);
  for (const auto& [i, j] : pattern) {
    const real_t v = rng.next_real(-1.0, 1.0);
    b.add(i, j, v);
    diag[i] += std::abs(v);
    diag[j] += std::abs(v);
  }
  for (index_t j = 0; j < n; ++j) b.add(j, j, diag[j]);
  return b.build();
}

SparseMatrix saddle_point_kkt(index_t n1, index_t n2,
                              index_t couplings_per_row, std::uint64_t seed) {
  PARFACT_CHECK(n1 >= 1 && n2 >= 1 && couplings_per_row >= 0);
  Prng rng(seed);
  const SparseMatrix k = random_spd(n1, 3, rng.next_u64());
  const SparseMatrix m = random_spd(n2, 3, rng.next_u64());
  TripletBuilder b(n1 + n2, n1 + n2);
  for (index_t j = 0; j < n1; ++j) {
    for (index_t p = k.col_ptr[j]; p < k.col_ptr[j + 1]; ++p) {
      b.add(k.row_ind[p], j, k.values[p]);
    }
  }
  for (index_t j = 0; j < n2; ++j) {
    for (index_t p = m.col_ptr[j]; p < m.col_ptr[j + 1]; ++p) {
      b.add(n1 + m.row_ind[p], n1 + j, -m.values[p]);
    }
  }
  // B block: rows n1..n1+n2, cols 0..n1 (already in the lower triangle).
  for (index_t i = 0; i < n2; ++i) {
    for (index_t c = 0; c < couplings_per_row; ++c) {
      b.add(n1 + i, rng.next_index(n1), rng.next_real(-1.0, 1.0));
    }
  }
  return b.build();
}

SparseMatrix append_decoupled_rows(const SparseMatrix& lower, index_t count,
                                   real_t diag_value) {
  PARFACT_CHECK(lower.rows == lower.cols);
  PARFACT_CHECK(count >= 0);
  const index_t n = lower.rows;
  TripletBuilder b(n + count, n + count);
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = lower.col_ptr[j]; p < lower.col_ptr[j + 1]; ++p) {
      b.add(lower.row_ind[p], j, lower.values[p]);
    }
  }
  for (index_t k = 0; k < count; ++k) b.add(n + k, n + k, diag_value);
  return b.build();
}

std::vector<TestProblem> test_suite(double scale) {
  PARFACT_CHECK(scale > 0.0 && scale <= 1.0);
  const auto s = [scale](index_t full) {
    return std::max<index_t>(3, static_cast<index_t>(std::lround(
                                    static_cast<double>(full) * scale)));
  };
  std::vector<TestProblem> suite;
  suite.push_back({"GRID2D-511",
                   "511x511 5-point 2-D Laplacian (model problem)",
                   grid_laplacian_2d(s(511), s(511), 5)});
  suite.push_back({"GRID2D9-365",
                   "365x365 9-point 2-D Laplacian",
                   grid_laplacian_2d(s(365), s(365), 9)});
  suite.push_back({"GRID3D-48", "48^3 7-point 3-D Laplacian",
                   grid_laplacian_3d(s(48), s(48), s(48), 7)});
  suite.push_back({"GRID3D27-32", "32^3 27-point 3-D Laplacian",
                   grid_laplacian_3d(s(32), s(32), s(32), 27)});
  suite.push_back({"ELAST-20",
                   "20^3-element hexahedral linear elasticity, 3 dof/node",
                   elasticity_3d(s(20), s(20), s(20))});
  return suite;
}

}  // namespace parfact
