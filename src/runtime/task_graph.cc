#include "runtime/task_graph.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "support/error.h"

namespace parfact::rt {

index_t TaskGraph::add_task(tag_t tag, std::function<void()> fn, double cost) {
  PARFACT_CHECK_MSG(!sealed_, "add_task after seal()");
  PARFACT_CHECK_MSG(index_of_.find(tag) == index_of_.end(),
                    "duplicate task tag " << tag);
  const index_t t = static_cast<index_t>(tasks_.size());
  Node node;
  node.tag = tag;
  node.fn = std::move(fn);
  node.cost = cost;
  tasks_.push_back(std::move(node));
  index_of_.emplace(tag, t);
  return t;
}

index_t TaskGraph::index_of(tag_t tag) const {
  auto it = index_of_.find(tag);
  PARFACT_CHECK_MSG(it != index_of_.end(), "unknown task tag " << tag);
  return it->second;
}

void TaskGraph::declare_deps(tag_t task, std::span<const tag_t> deps) {
  PARFACT_CHECK_MSG(!sealed_, "declare_deps after seal()");
  const index_t t = index_of(task);
  Node& node = tasks_[static_cast<std::size_t>(t)];
  for (tag_t dep_tag : deps) {
    const index_t d = index_of(dep_tag);
    // Emission order must be topological: every dependency precedes its
    // dependent. This is what makes the one-pass priority sweep in seal()
    // (and scheduler startup) correct, and it is natural for postorder
    // emitters, so enforce it rather than re-sorting.
    PARFACT_CHECK_MSG(d < t, "dependency added after dependent (tags "
                                 << dep_tag << " -> " << task << ")");
    Node& dep = tasks_[static_cast<std::size_t>(d)];
    // Coalesce duplicate edges (fan-in from slab loops often repeats tags).
    if (std::find(dep.out.begin(), dep.out.end(), t) != dep.out.end())
      continue;
    dep.out.push_back(t);
    ++node.n_deps;
  }
}

void TaskGraph::declare_deps(tag_t task, std::initializer_list<tag_t> deps) {
  declare_deps(task, std::span<const tag_t>(deps.begin(), deps.size()));
}

void TaskGraph::seal() {
  if (sealed_) return;
  sealed_ = true;
  // Critical-path lengths in one reverse sweep over insertion order (which
  // declare_deps guarantees is topological): every successor's priority is
  // final before its predecessors are visited.
  for (auto it = tasks_.rbegin(); it != tasks_.rend(); ++it) {
    double best = 0.0;
    for (index_t succ : it->out)
      best = std::max(best, tasks_[static_cast<std::size_t>(succ)].priority);
    it->priority = it->cost + best;
  }
}

SimulatedSchedule TaskGraph::simulate_makespan(int n_workers,
                                               double rate) const {
  PARFACT_CHECK(sealed_);
  PARFACT_CHECK(n_workers >= 1);
  PARFACT_CHECK(rate > 0.0);
  SimulatedSchedule out;

  const std::size_t n = tasks_.size();
  if (n == 0) return out;

  // Deterministic list scheduling: whenever a worker frees up, it takes the
  // ready task with the highest critical-path priority (ties broken by
  // insertion index, i.e. FIFO). Identical policy to the real scheduler,
  // minus stealing noise — this is the schedule the runtime converges to.
  std::vector<index_t> pending(n);
  double cp = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    pending[t] = tasks_[t].n_deps;
    out.busy += tasks_[t].cost / rate;
    cp = std::max(cp, tasks_[t].priority / rate);
  }
  out.critical_path = cp;

  // Ready queue: max-priority first, then lowest index (FIFO among ties).
  auto ready_less = [this](index_t a, index_t b) {
    const Node& na = tasks_[static_cast<std::size_t>(a)];
    const Node& nb = tasks_[static_cast<std::size_t>(b)];
    if (na.priority != nb.priority) return na.priority < nb.priority;
    return a > b;
  };
  std::priority_queue<index_t, std::vector<index_t>, decltype(ready_less)>
      ready(ready_less);
  for (std::size_t t = 0; t < n; ++t)
    if (pending[t] == 0) ready.push(static_cast<index_t>(t));

  // Event-driven dispatch: at each point in virtual time, greedily hand the
  // highest-priority ready task to an idle worker; when no worker is idle or
  // nothing is ready, advance time to the next task completion and release
  // its successors. This is exact priority list scheduling — no task ever
  // reserves an idle worker before its dependencies have finished.
  using Event = std::pair<double, index_t>;  // (finish time, task)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;
  int idle = n_workers;
  double now = 0.0;
  std::size_t done = 0;
  while (done < n) {
    while (idle > 0 && !ready.empty()) {
      const index_t t = ready.top();
      ready.pop();
      --idle;
      running.emplace(now + tasks_[static_cast<std::size_t>(t)].cost / rate,
                      t);
    }
    PARFACT_CHECK_MSG(!running.empty(), "cycle or dangling dependency");
    now = running.top().first;
    // Drain every completion at this timestamp before dispatching again so
    // the next dispatch round sees the full ready set.
    while (!running.empty() && running.top().first == now) {
      const index_t t = running.top().second;
      running.pop();
      ++idle;
      ++done;
      for (index_t succ : tasks_[static_cast<std::size_t>(t)].out) {
        auto s = static_cast<std::size_t>(succ);
        if (--pending[s] == 0) ready.push(succ);
      }
    }
    out.makespan = now;
  }
  return out;
}

}  // namespace parfact::rt
