#include "runtime/scheduler.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

#include "support/error.h"

namespace parfact::rt {
namespace {

/// Shared run state for one graph execution. Workers are the pool threads
/// plus the caller (worker 0); each owns a mutex-guarded binary max-heap of
/// ready task indices keyed by critical-path priority.
class Run {
 public:
  Run(TaskGraph& graph, int n_workers, CancelToken cancel)
      : graph_(graph),
        cancel_(std::move(cancel)),
        n_workers_(n_workers),
        workers_(static_cast<std::size_t>(n_workers)),
        remaining_(graph.n_tasks()),
        pending_(new std::atomic<index_t>[static_cast<std::size_t>(
            graph.n_tasks())]) {
    // Seed: initial ready tasks round-robin across workers so leaf subtrees
    // start spread out; stealing rebalances from there.
    int w = 0;
    for (index_t t = 0; t < graph_.n_tasks(); ++t) {
      const index_t deps = graph_.node(t).n_deps;
      pending_[static_cast<std::size_t>(t)].store(deps,
                                                  std::memory_order_relaxed);
      if (deps == 0) {
        workers_[static_cast<std::size_t>(w)].heap.push_back(t);
        w = (w + 1) % n_workers_;
      }
    }
    for (auto& wk : workers_)
      std::make_heap(wk.heap.begin(), wk.heap.end(), HeapLess{&graph_});
  }

  void worker_main(int id) {
    Worker& me = workers_[static_cast<std::size_t>(id)];
    while (!done()) {
      index_t t = kNone;
      {
        std::lock_guard<std::mutex> lk(me.mu);
        t = pop_locked(me);
      }
      if (t == kNone) t = steal(id);
      if (t == kNone) {
        park(id);
        continue;
      }
      execute(id, t);
    }
  }

  void collect(SchedulerStats& stats) const {
    for (const Worker& w : workers_) {
      stats.executed += w.executed;
      stats.steals += w.steals;
      stats.stolen += w.stolen;
    }
  }

  void rethrow_if_error() {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  struct HeapLess {
    TaskGraph* g;
    bool operator()(index_t a, index_t b) const {
      const double pa = g->node(a).priority;
      const double pb = g->node(b).priority;
      if (pa != pb) return pa < pb;
      return a > b;  // FIFO among equal priorities
    }
  };

  struct alignas(64) Worker {
    std::mutex mu;
    std::vector<index_t> heap;
    std::int64_t executed = 0;
    std::int64_t steals = 0;
    std::int64_t stolen = 0;
  };

  [[nodiscard]] bool done() const {
    return stop_.load(std::memory_order_acquire) ||
           remaining_.load(std::memory_order_acquire) == 0;
  }

  index_t pop_locked(Worker& w) {
    if (w.heap.empty()) return kNone;
    std::pop_heap(w.heap.begin(), w.heap.end(), HeapLess{&graph_});
    const index_t t = w.heap.back();
    w.heap.pop_back();
    return t;
  }

  /// Scans victims starting after `id`; takes the top half of the first
  /// non-empty heap found (highest-priority tasks migrate with the thief,
  /// so a stranded critical-path chain resumes immediately).
  index_t steal(int id) {
    Worker& me = workers_[static_cast<std::size_t>(id)];
    for (int hop = 1; hop < n_workers_; ++hop) {
      Worker& victim = workers_[static_cast<std::size_t>((id + hop) %
                                                         n_workers_)];
      std::vector<index_t> loot;
      {
        std::lock_guard<std::mutex> lk(victim.mu);
        const std::size_t n = victim.heap.size();
        if (n == 0) continue;
        const std::size_t take = (n + 1) / 2;
        loot.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          std::pop_heap(victim.heap.begin(), victim.heap.end(),
                        HeapLess{&graph_});
          loot.push_back(victim.heap.back());
          victim.heap.pop_back();
        }
      }
      me.steals += 1;
      me.stolen += static_cast<std::int64_t>(loot.size());
      const index_t t = loot.front();  // highest priority: run it now
      if (loot.size() > 1) {
        std::lock_guard<std::mutex> lk(me.mu);
        for (std::size_t i = 1; i < loot.size(); ++i)
          me.heap.push_back(loot[i]);
        std::make_heap(me.heap.begin(), me.heap.end(), HeapLess{&graph_});
      }
      return t;
    }
    return kNone;
  }

  void execute(int id, index_t t) {
    Worker& me = workers_[static_cast<std::size_t>(id)];
    TaskGraph::Node& node = graph_.node(t);
    try {
      // One cancellation poll per task keeps the response latency bounded
      // by a single task granule; the throw reuses the error-drain path.
      cancel_.throw_if_cancelled();
      if (node.fn) node.fn();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(sleep_mu_);
        if (!error_) error_ = std::current_exception();
        stop_.store(true, std::memory_order_release);
        ++epoch_;
      }
      sleep_cv_.notify_all();
      return;
    }
    node.fn = nullptr;  // release captured buffers as the graph drains
    ++me.executed;

    // Completions release successors onto *this* worker's heap (cache
    // affinity along dependency chains); sleepers get woken if any.
    int released = 0;
    {
      std::lock_guard<std::mutex> lk(me.mu);
      for (index_t succ : node.out) {
        if (pending_[static_cast<std::size_t>(succ)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          me.heap.push_back(succ);
          std::push_heap(me.heap.begin(), me.heap.end(), HeapLess{&graph_});
          ++released;
        }
      }
    }
    const index_t left =
        remaining_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    if (left == 0 || (released > 0 &&
                      sleepers_.load(std::memory_order_acquire) > 0)) {
      {
        std::lock_guard<std::mutex> lk(sleep_mu_);
        ++epoch_;
      }
      sleep_cv_.notify_all();
    }
  }

  /// Blocks until new work may exist. The final heap re-scan under
  /// sleep_mu_ closes the lost-wakeup window: a producer bumps epoch_ under
  /// the same mutex *after* publishing to a heap, so either the scan sees
  /// the task or the epoch change wakes us.
  void park(int id) {
    std::unique_lock<std::mutex> lk(sleep_mu_);
    const std::uint64_t seen = epoch_;
    if (done()) return;
    for (int w = 0; w < n_workers_; ++w) {
      Worker& other = workers_[static_cast<std::size_t>(w)];
      std::lock_guard<std::mutex> hk(other.mu);
      if (!other.heap.empty()) return;  // retry the pop/steal cycle
    }
    (void)id;
    sleepers_.fetch_add(1, std::memory_order_acq_rel);
    sleep_cv_.wait(lk, [&] { return epoch_ != seen || done(); });
    sleepers_.fetch_sub(1, std::memory_order_acq_rel);
  }

  TaskGraph& graph_;
  const CancelToken cancel_;
  const int n_workers_;
  std::vector<Worker> workers_;
  std::atomic<index_t> remaining_;
  std::unique_ptr<std::atomic<index_t>[]> pending_;
  std::atomic<bool> stop_{false};
  std::atomic<int> sleepers_{0};

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::uint64_t epoch_ = 0;  // guarded by sleep_mu_
  std::exception_ptr error_;  // guarded by sleep_mu_
};

}  // namespace

SchedulerStats WorkStealingScheduler::run(TaskGraph& graph,
                                          CancelToken cancel) {
  graph.seal();
  SchedulerStats stats;
  if (graph.n_tasks() == 0) return stats;

  const int n_workers = pool_.size() + 1;  // pool threads + caller
  Run run(graph, n_workers, std::move(cancel));
  for (int w = 1; w < n_workers; ++w)
    pool_.submit([&run, w] { run.worker_main(w); });
  run.worker_main(0);
  pool_.wait();
  run.rethrow_if_error();
  run.collect(stats);
  return stats;
}

SchedulerStats run_graph(TaskGraph& graph, ThreadPool& pool,
                         CancelToken cancel) {
  WorkStealingScheduler sched(pool);
  return sched.run(graph, std::move(cancel));
}

}  // namespace parfact::rt
