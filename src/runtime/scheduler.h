// Work-stealing scheduler executing a sealed TaskGraph on a ThreadPool.
//
// Each worker owns a priority heap of ready tasks; completing a task
// decrements its successors' pending counters (atomics) and pushes newly
// ready tasks onto the *finishing* worker's heap, so dependency chains stay
// on one core (warm caches along the elimination path). An empty worker
// steals the top half of a victim's heap — highest-priority tasks included,
// so a long critical-path chain stranded behind a busy worker migrates
// instead of stalling the makespan. Idle workers park on a condition
// variable and are woken whenever new work appears.
//
// The scheduler never changes *what* is computed, only *when and where*:
// graphs built under the determinism contract (task_graph.h) produce
// bitwise-identical results under any steal interleaving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "runtime/task_graph.h"
#include "support/resource.h"
#include "support/thread_pool.h"
#include "support/types.h"

namespace parfact::rt {

/// Counters for tests and bench output (aggregated over all workers).
struct SchedulerStats {
  std::int64_t executed = 0;  ///< tasks run (== graph.n_tasks() on success)
  std::int64_t steals = 0;    ///< successful steal operations
  std::int64_t stolen = 0;    ///< tasks moved by those steals
};

/// Runs every task of `graph` (sealing it if needed) across `pool`'s
/// workers plus the calling thread. Blocks until the graph is drained.
/// Rethrows the first task exception; remaining tasks are abandoned (their
/// side effects may be partial — callers treat the operation as failed,
/// matching the two-phase engine's behaviour on breakdown).
///
/// Cooperative cancellation: workers poll `cancel` once per task, before
/// running it. A tripped token stops the run within one task granule via
/// the same drain path as a task exception — in-flight tasks finish, the
/// rest are abandoned, and StatusError(kCancelled / kDeadlineExceeded) is
/// rethrown here with the pool immediately reusable.
SchedulerStats run_graph(TaskGraph& graph, ThreadPool& pool,
                         CancelToken cancel = {});

/// Reusable form for callers that want to run several graphs on one pool.
class WorkStealingScheduler {
 public:
  explicit WorkStealingScheduler(ThreadPool& pool) : pool_(pool) {}

  SchedulerStats run(TaskGraph& graph, CancelToken cancel = {});

 private:
  struct Worker;

  ThreadPool& pool_;
};

}  // namespace parfact::rt
