// Dependency-tagged task graph: the shared-memory analogue of the paper's
// asynchronous fan-both execution (and of StarPU's TAG11/TAG12/TAG21/TAG22 +
// tag_declare_deps idiom).
//
// A TaskGraph is built once per operation: every unit of work — a front
// assembly, a POTRF, one TRSM row slab, a forward-solve of one supernode —
// is added under a 64-bit *typed tag* encoding (kind, supernode, i, j), and
// its dependencies are declared by tag. The graph then runs under the
// work-stealing scheduler (scheduler.h), or is replayed against virtual
// worker clocks (simulate_makespan) for deterministic schedule studies on
// any host.
//
// Priorities are critical-path lengths: priority(t) = cost(t) + max over
// successors, computed in one reverse pass when the graph is sealed. The
// scheduler always prefers the highest-priority ready task, so the
// top-of-tree elimination chain — the part of the DAG that bounds the
// makespan — is never starved by leaf work.
//
// Determinism contract: the graph only *orders* work; every task body must
// be independent of execution interleaving (disjoint writes, fixed merge
// order inside a task). All users in this repo keep the factor/solve
// bitwise identical to the serial reference under any schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <unordered_map>
#include <vector>

#include "support/types.h"

namespace parfact::rt {

/// 64-bit typed task tag: kind in the top byte, then three operand fields
/// (supernode / slab indices). Mirrors the StarPU heat example's
/// TAG11(k)/TAG12(k,i)/TAG22(k,i,j) packing, widened for supernode counts.
using tag_t = std::uint64_t;

enum class TaskKind : std::uint8_t {
  kAssemble = 1,  ///< front assembly: scatter A + deterministic extend-add
  kPotrf = 2,     ///< diagonal-block factorization of one front
  kTrsm = 3,      ///< one row slab of the panel TRSM
  kPrep = 4,      ///< LDLᵀ only: keep M, rescale panel to L21 = M D⁻¹
  kUpdate = 5,    ///< one row slab of the trailing SYRK/GEMM update
  kElim = 6,      ///< fused whole-front elimination (small fronts)
  kSolveFwd = 7,  ///< forward-solve of one supernode (phase fusion)
  kUser = 15,     ///< free-form tasks (tests, experiments)
};

/// Packs (kind, k, i, j) into a tag. k gets 32 bits (supernode ids), i and
/// j 12 bits each (slab indices); all fields are range-checked in debug.
[[nodiscard]] constexpr tag_t make_tag(TaskKind kind, std::uint64_t k,
                                       std::uint64_t i = 0,
                                       std::uint64_t j = 0) {
  return (static_cast<tag_t>(kind) << 56) | ((k & 0xffffffffULL) << 24) |
         ((i & 0xfffULL) << 12) | (j & 0xfffULL);
}

[[nodiscard]] constexpr TaskKind tag_kind(tag_t tag) {
  return static_cast<TaskKind>(tag >> 56);
}
[[nodiscard]] constexpr std::uint64_t tag_k(tag_t tag) {
  return (tag >> 24) & 0xffffffffULL;
}
[[nodiscard]] constexpr std::uint64_t tag_i(tag_t tag) {
  return (tag >> 12) & 0xfffULL;
}
[[nodiscard]] constexpr std::uint64_t tag_j(tag_t tag) {
  return tag & 0xfffULL;
}

/// Virtual-time replay of a sealed graph: list scheduling on `n_workers`
/// clocks, highest critical-path priority first (FIFO among ties, so the
/// replay is deterministic). Returns the simulated makespan in seconds at
/// `rate` cost units per second (costs are flops in this repo).
struct SimulatedSchedule {
  double makespan = 0.0;
  double busy = 0.0;        ///< Σ task costs / rate
  double critical_path = 0.0;  ///< longest cost-weighted path / rate
  /// Parallel efficiency vs the perfect busy/n_workers bound.
  [[nodiscard]] double efficiency(int n_workers) const {
    return makespan > 0.0 ? busy / n_workers / makespan : 1.0;
  }
};

/// Dependency-tagged DAG of executable tasks. Build with add_task /
/// declare_deps (tasks must be added before anything that depends on them —
/// emission order is a topological order, which is what makes the one-pass
/// priority computation valid), then seal() once; run via the scheduler.
class TaskGraph {
 public:
  TaskGraph() = default;

  /// Adds a task. `cost` is the priority/replay weight (flops here; any
  /// consistent unit works). Returns the dense task index.
  index_t add_task(tag_t tag, std::function<void()> fn, double cost = 1.0);

  /// Declares that `task` cannot start before every tag in `deps` has
  /// finished. All tags must already be in the graph; duplicate edges are
  /// coalesced. Matches starpu_tag_declare_deps semantics.
  void declare_deps(tag_t task, std::span<const tag_t> deps);
  void declare_deps(tag_t task, std::initializer_list<tag_t> deps);

  [[nodiscard]] bool has_task(tag_t tag) const {
    return index_of_.find(tag) != index_of_.end();
  }
  [[nodiscard]] index_t n_tasks() const {
    return static_cast<index_t>(tasks_.size());
  }

  /// Freezes the structure and computes critical-path priorities (one
  /// reverse sweep — valid because insertion order is topological). Called
  /// automatically by the scheduler / simulator; idempotent.
  void seal();

  /// Virtual replay (no task bodies are run); see SimulatedSchedule.
  [[nodiscard]] SimulatedSchedule simulate_makespan(int n_workers,
                                                    double rate) const;

  // --- Scheduler-facing access (valid after seal()). ---
  struct Node {
    tag_t tag = 0;
    std::function<void()> fn;
    double cost = 1.0;
    double priority = 0.0;      ///< critical-path length including self
    index_t n_deps = 0;         ///< static in-degree
    std::vector<index_t> out;   ///< successor task indices
  };
  [[nodiscard]] const Node& node(index_t t) const {
    return tasks_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] Node& node(index_t t) {
    return tasks_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] bool sealed() const { return sealed_; }

 private:
  [[nodiscard]] index_t index_of(tag_t tag) const;

  std::vector<Node> tasks_;
  std::unordered_map<tag_t, index_t> index_of_;
  bool sealed_ = false;
};

}  // namespace parfact::rt
