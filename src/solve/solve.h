// Supernodal triangular solves, iterative refinement and residual checks.
//
// All solves operate in the *postordered* index space of the SymbolicFactor
// (the api module composes the fill-reducing permutation and the postorder
// for callers working in original coordinates). Right-hand sides are dense
// n x nrhs column-major blocks.
//
// There is exactly one sweep implementation: the schedule-driven engine.
// It processes right-hand sides in fixed-width blocks of
// schedule.rhs_block columns (each factor panel is streamed once per
// block), pulls forward updates through the schedule's precomputed plans
// into a reusable workspace arena, and optionally runs the tree-parallel
// task/level partition on a ThreadPool — with results bitwise-identical
// to the serial sweep (see solve_schedule.h for why). The legacy
// signatures below build a transient schedule and forward to the engine.
#pragma once

#include <span>

#include "dense/matrix_view.h"
#include "mf/factor.h"
#include "solve/solve_schedule.h"
#include "sparse/sparse_matrix.h"
#include "support/types.h"

namespace parfact {

class ThreadPool;

/// x := L⁻¹ x through the precomputed schedule. `pool == nullptr` (or a
/// one-worker pool) runs the serial postorder sweep; otherwise independent
/// subtrees run as tasks and the top of the tree level-by-level, bitwise
/// identical to serial.
void forward_solve(const CholeskyFactor& factor, MatrixView x,
                   const SolveSchedule& schedule, SolveWorkspace& workspace,
                   ThreadPool* pool = nullptr);

/// x := L⁻ᵀ x (backward substitution) through the schedule.
void backward_solve(const CholeskyFactor& factor, MatrixView x,
                    const SolveSchedule& schedule, SolveWorkspace& workspace,
                    ThreadPool* pool = nullptr);

/// x := D⁻¹ x for LDLᵀ factors (no-op for plain Cholesky).
void diagonal_solve(const CholeskyFactor& factor, MatrixView x);

/// x := A⁻¹ x: forward, (diagonal,) backward — per RHS block, so each
/// factor panel is read once per schedule.rhs_block right-hand sides.
void solve_in_place(const CholeskyFactor& factor, MatrixView x,
                    const SolveSchedule& schedule, SolveWorkspace& workspace,
                    ThreadPool* pool = nullptr);

/// Legacy single-shot entry points: build a transient schedule and run the
/// engine serially. Prefer the schedule-taking overloads when solving more
/// than once against the same factor.
void forward_solve(const CholeskyFactor& factor, MatrixView x);
void backward_solve(const CholeskyFactor& factor, MatrixView x);
void solve_in_place(const CholeskyFactor& factor, MatrixView x);

/// Componentwise-scaled relative residual ‖b − A x‖∞ / (‖A‖∞ ‖x‖∞ + ‖b‖∞)
/// for the symmetric lower-stored `a`. Single right-hand side.
[[nodiscard]] real_t relative_residual(const SparseMatrix& lower_a,
                                       std::span<const real_t> x,
                                       std::span<const real_t> b);

struct RefinementResult {
  int iterations = 0;
  real_t residual = 0.0;  ///< final relative residual
};

/// Classical iterative refinement: repeatedly solve A d = r and update x
/// until the relative residual drops below `tol` or `max_iterations` is hit.
/// `x` must already hold the initial solve's result. Each iteration costs
/// one SpMV: the residual r = b − A x is computed once and both its norm
/// and the correction right-hand side derive from it.
RefinementResult iterative_refinement(const SparseMatrix& lower_a,
                                      const CholeskyFactor& factor,
                                      std::span<const real_t> b,
                                      std::span<real_t> x,
                                      int max_iterations = 5,
                                      real_t tol = 1e-14);

/// Schedule-reusing variant for serving paths that refine repeatedly.
RefinementResult iterative_refinement(const SparseMatrix& lower_a,
                                      const CholeskyFactor& factor,
                                      std::span<const real_t> b,
                                      std::span<real_t> x,
                                      const SolveSchedule& schedule,
                                      SolveWorkspace& workspace,
                                      ThreadPool* pool,
                                      int max_iterations = 5,
                                      real_t tol = 1e-14);

/// Batched refinement: `passes` correction sweeps over the n x nrhs blocks
/// `b`/`x` (one SpMV per column per pass, one blocked solve per pass),
/// then returns the worst per-column relative residual. passes == 0 only
/// measures.
real_t refine_block(const SparseMatrix& lower_a, const CholeskyFactor& factor,
                    ConstMatrixView b, MatrixView x,
                    const SolveSchedule& schedule, SolveWorkspace& workspace,
                    ThreadPool* pool, int passes);

}  // namespace parfact
