// Supernodal triangular solves, iterative refinement and residual checks.
//
// All solves operate in the *postordered* index space of the SymbolicFactor
// (the api module composes the fill-reducing permutation and the postorder
// for callers working in original coordinates). Right-hand sides are dense
// n x nrhs column-major blocks.
#pragma once

#include <span>

#include "dense/matrix_view.h"
#include "mf/factor.h"
#include "sparse/sparse_matrix.h"
#include "support/types.h"

namespace parfact {

/// x := L⁻¹ x (forward substitution through the supernode panels).
void forward_solve(const CholeskyFactor& factor, MatrixView x);

/// x := L⁻ᵀ x (backward substitution).
void backward_solve(const CholeskyFactor& factor, MatrixView x);

/// x := A⁻¹ x via forward then backward solve.
void solve_in_place(const CholeskyFactor& factor, MatrixView x);

/// Componentwise-scaled relative residual ‖b − A x‖∞ / (‖A‖∞ ‖x‖∞ + ‖b‖∞)
/// for the symmetric lower-stored `a`. Single right-hand side.
[[nodiscard]] real_t relative_residual(const SparseMatrix& lower_a,
                                       std::span<const real_t> x,
                                       std::span<const real_t> b);

struct RefinementResult {
  int iterations = 0;
  real_t residual = 0.0;  ///< final relative residual
};

/// Classical iterative refinement: repeatedly solve A d = r and update x
/// until the relative residual drops below `tol` or `max_iterations` is hit.
/// `x` must already hold the initial solve's result.
RefinementResult iterative_refinement(const SparseMatrix& lower_a,
                                      const CholeskyFactor& factor,
                                      std::span<const real_t> b,
                                      std::span<real_t> x,
                                      int max_iterations = 5,
                                      real_t tol = 1e-14);

}  // namespace parfact
