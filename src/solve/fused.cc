#include "solve/fused.h"

#include <algorithm>
#include <vector>

#include "mf/dag_factor.h"
#include "runtime/scheduler.h"
#include "solve/solve.h"
#include "solve/solve_internal.h"
#include "support/error.h"
#include "support/timer.h"

namespace parfact {

CholeskyFactor multifrontal_factor_and_solve(
    const SymbolicFactor& sym, MatrixView x, const SolveSchedule& schedule,
    SolveWorkspace& workspace, ThreadPool& pool, FactorStats* stats,
    FactorKind kind, count_t coop_flops, PivotPolicy pivot) {
  WallTimer timer;
  PARFACT_CHECK(x.rows == sym.n);
  PARFACT_CHECK_MSG(schedule.sym == &sym,
                    "SolveSchedule built for a different SymbolicFactor");
  pivot = resolve_pivot_policy(pivot, sym.a);
  CholeskyFactor factor(sym);
  std::span<real_t> d;
  if (kind == FactorKind::kLdlt) d = factor.allocate_diag();

  detail::FactorDag dag(sym, factor, kind, d, pivot, coop_flops,
                        pool.size() + 1);
  rt::TaskGraph graph;
  dag.emit(graph);

  // Fuse the first RHS block's forward sweep into the factor graph. The
  // block partition matches solve_in_place's, so later blocks (and the
  // backward sweeps) reproduce the unfused path exactly.
  const index_t w0 = std::min(schedule.rhs_block, x.cols);
  MatrixView x0 = x.block(0, 0, x.rows, w0);
  workspace.ensure(schedule, w0);
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const index_t p = sym.sn_cols(s);
    const index_t b = sym.sn_below(s);
    const count_t work =
        static_cast<count_t>(w0) *
        (static_cast<count_t>(p) * p + 2 * static_cast<count_t>(p) * b);
    const rt::tag_t tag =
        rt::make_tag(rt::TaskKind::kSolveFwd, static_cast<std::uint64_t>(s));
    graph.add_task(
        tag,
        [&factor, &schedule, &workspace, x0, s] {
          detail::forward_supernode(factor, schedule, workspace, x0, s);
        },
        static_cast<double>(std::max<count_t>(work, 1)));
    // Needs this supernode's final panel plus every pull source's step.
    std::vector<rt::tag_t> deps(dag.panel_ready(s).begin(),
                                dag.panel_ready(s).end());
    index_t last_src = kNone;
    for (index_t q = schedule.in_ptr[s]; q < schedule.in_ptr[s + 1]; ++q) {
      const index_t src = schedule.in[q].src;
      if (src == last_src) continue;  // segments are grouped by source
      last_src = src;
      deps.push_back(rt::make_tag(rt::TaskKind::kSolveFwd,
                                  static_cast<std::uint64_t>(src)));
    }
    graph.declare_deps(tag, deps);
  }

  rt::run_graph(graph, pool);

  // Finish block 0 (diagonal + backward) and run any remaining blocks
  // through the normal engine — same partition, same sweeps.
  diagonal_solve(factor, x0);
  backward_solve(factor, x0, schedule, workspace, &pool);
  if (x.cols > w0) {
    solve_in_place(factor, x.block(0, w0, x.rows, x.cols - w0), schedule,
                   workspace, &pool);
  }

  if (stats != nullptr) {
    stats->seconds = timer.seconds();
    stats->flops = sym.total_flops;
    stats->peak_update_bytes = dag.peak_update_bytes();
    stats->pivot_perturbations = dag.perturbations();
  }
  return factor;
}

}  // namespace parfact
