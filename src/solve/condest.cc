#include "solve/condest.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "solve/solve.h"
#include "sparse/ops.h"
#include "support/error.h"

namespace parfact {
namespace {

real_t norm1(const std::vector<real_t>& v) {
  real_t s = 0.0;
  for (real_t x : v) s += std::abs(x);
  return s;
}

}  // namespace

real_t estimate_inverse_norm1(const CholeskyFactor& factor) {
  const index_t n = factor.symbolic().n;
  PARFACT_CHECK(n > 0);
  // One schedule serves every solve of the power iteration.
  const SolveSchedule schedule(factor.symbolic());
  SolveWorkspace workspace;
  std::vector<real_t> x(static_cast<std::size_t>(n),
                        1.0 / static_cast<real_t>(n));
  std::vector<real_t> z;
  real_t estimate = 0.0;
  index_t last_j = kNone;

  for (int iter = 0; iter < 5; ++iter) {
    // y = A⁻¹ x.
    solve_in_place(factor, MatrixView{x.data(), n, 1, n}, schedule,
                   workspace);
    estimate = std::max(estimate, norm1(x));
    // xi = sign(y); z = A⁻ᵀ xi = A⁻¹ xi (A symmetric).
    z.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      z[i] = x[i] >= 0.0 ? 1.0 : -1.0;
    }
    solve_in_place(factor, MatrixView{z.data(), n, 1, n}, schedule,
                   workspace);
    // Pick the coordinate with the largest |z| as the next probe.
    index_t j = 0;
    for (index_t i = 1; i < n; ++i) {
      if (std::abs(z[i]) > std::abs(z[j])) j = i;
    }
    if (j == last_j) break;  // converged
    last_j = j;
    std::fill(x.begin(), x.end(), 0.0);
    x[j] = 1.0;
  }

  // Hager's safeguard probe: an alternating-sign vector catches cases the
  // power iteration misses.
  std::vector<real_t> probe(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    probe[i] = (i % 2 == 0 ? 1.0 : -1.0) *
               (1.0 + static_cast<real_t>(i) / (n > 1 ? n - 1 : 1));
  }
  solve_in_place(factor, MatrixView{probe.data(), n, 1, n}, schedule,
                 workspace);
  const real_t alt = 2.0 * norm1(probe) / (3.0 * static_cast<real_t>(n));
  return std::max(estimate, alt);
}

real_t estimate_condition_1(const SparseMatrix& lower_a,
                            const CholeskyFactor& factor) {
  // For symmetric A the 1-norm equals the infinity norm.
  const real_t norm_a = norm_inf(symmetrize_full(lower_a));
  return norm_a * estimate_inverse_norm1(factor);
}

}  // namespace parfact
