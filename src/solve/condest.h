// Condition-number estimation via the factorization (Hager's method).
//
// ‖A⁻¹‖₁ is estimated with Hager's 1-norm power iteration (the LAPACK
// xLACON approach), using only triangular solves with the computed factor —
// the standard way a direct solver reports conditioning without forming
// A⁻¹. Symmetry of A makes the transpose solves identical.
#pragma once

#include "mf/factor.h"
#include "sparse/sparse_matrix.h"
#include "support/types.h"

namespace parfact {

/// Estimate of ‖A⁻¹‖₁ (a lower bound, usually within a factor ~3) in the
/// postordered space of `factor` — the norm is permutation-invariant.
[[nodiscard]] real_t estimate_inverse_norm1(const CholeskyFactor& factor);

/// Estimated 1-norm condition number ‖A‖₁ ‖A⁻¹‖₁. `lower_a` is the
/// lower-stored symmetric matrix matching the factor's postordered matrix
/// (or any symmetric permutation of it).
[[nodiscard]] real_t estimate_condition_1(const SparseMatrix& lower_a,
                                          const CholeskyFactor& factor);

}  // namespace parfact
