// Internal: per-supernode solve steps of the schedule-driven engine,
// exposed so the fused factor+solve driver (fused.h) can emit them as
// task-DAG nodes. Semantics and bitwise behaviour are exactly those of the
// sweeps in solve.cc — one step touches only rows its supernode owns plus
// (forward) its own arena slice, reading sources in fixed ascending order.
#pragma once

#include "dense/matrix_view.h"
#include "mf/factor.h"
#include "solve/solve_schedule.h"

namespace parfact::detail {

/// Forward-solves supernode s's panel rows for the current RHS block:
/// pulls pending descendant updates from the arena (ascending source
/// order), runs the panel TRSM, then deposits −L21·x1 into this
/// supernode's arena slice. Requires every source supernode's step done
/// and ws sized for x.cols.
void forward_supernode(const CholeskyFactor& factor,
                       const SolveSchedule& sched, SolveWorkspace& ws,
                       MatrixView x, index_t s);

/// Backward-solves supernode s's panel rows: gathers x at the below rows
/// (ancestors' rows, already solved) and applies −L21ᵀ before the
/// transposed panel TRSM.
void backward_supernode(const CholeskyFactor& factor,
                        const SolveSchedule& sched, SolveWorkspace& ws,
                        MatrixView x, index_t s);

}  // namespace parfact::detail
