#include "solve/solve.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "dense/kernels.h"
#include "solve/solve_internal.h"
#include "sparse/ops.h"
#include "support/error.h"
#include "support/thread_pool.h"

namespace parfact {
namespace detail {

/// Forward-solves supernode s's panel rows for the current RHS block:
/// pulls pending descendant updates from the arena (ascending source
/// order — the exact per-element addition sequence of the serial postorder
/// push), runs the panel TRSM, then deposits this supernode's own update
/// −L21·x1 into its arena slice for its ancestors to pull. All writes are
/// to rows this supernode owns, so the tree partition never races.
void forward_supernode(const CholeskyFactor& factor,
                       const SolveSchedule& sched, SolveWorkspace& ws,
                       MatrixView x, index_t s) {
  const SymbolicFactor& sym = *sched.sym;
  const index_t p = sym.sn_cols(s);
  const index_t b = sym.sn_below(s);
  const index_t first = sym.sn_start[s];
  const index_t w = x.cols;
  MatrixView x1 = x.block(first, 0, p, w);
  for (index_t k = sched.in_ptr[s]; k < sched.in_ptr[s + 1]; ++k) {
    const SolveSchedule::Incoming& inc = sched.in[k];
    const index_t bs = sym.sn_below(inc.src);
    const index_t off = sym.sn_row_ptr[inc.src];
    const real_t* u =
        ws.arena.data() + static_cast<std::size_t>(off) * w;
    for (index_t c = 0; c < w; ++c) {
      const real_t* uc = u + static_cast<std::size_t>(c) * bs;
      for (index_t g = inc.lo; g < inc.hi; ++g) {
        x1.at(sym.sn_rows[g] - first, c) += uc[g - off];
      }
    }
  }
  const ConstMatrixView panel = factor.panel(s);
  trsm_left_lower(panel.block(0, 0, p, p), x1);
  if (b == 0) return;
  real_t* us =
      ws.arena.data() + static_cast<std::size_t>(sym.sn_row_ptr[s]) * w;
  std::fill(us, us + static_cast<std::size_t>(b) * w, 0.0);
  MatrixView t{us, b, w, b};
  gemm_nn_update(t, panel.block(p, 0, b, p), x1);  // t = -L21 x1
}

/// Backward-solves supernode s's panel rows: gathers x at the below rows
/// (already solved — they belong to ancestors) via the precomputed
/// memcpy runs into this supernode's arena slice, applies −L21ᵀ, and runs
/// the transposed panel TRSM.
void backward_supernode(const CholeskyFactor& factor,
                        const SolveSchedule& sched, SolveWorkspace& ws,
                        MatrixView x, index_t s) {
  const SymbolicFactor& sym = *sched.sym;
  const index_t p = sym.sn_cols(s);
  const index_t b = sym.sn_below(s);
  const index_t w = x.cols;
  const ConstMatrixView panel = factor.panel(s);
  MatrixView x1 = x.block(sym.sn_start[s], 0, p, w);
  if (b > 0) {
    real_t* buf =
        ws.arena.data() + static_cast<std::size_t>(sym.sn_row_ptr[s]) * w;
    for (index_t c = 0; c < w; ++c) {
      real_t* tc = buf + static_cast<std::size_t>(c) * b;
      for (index_t k = sched.run_ptr[s]; k < sched.run_ptr[s + 1]; ++k) {
        const SolveSchedule::Run& run = sched.runs[k];
        std::memcpy(tc + run.dst, &x.at(run.row, c),
                    static_cast<std::size_t>(run.len) * sizeof(real_t));
      }
    }
    gemm_tn_update(x1, panel.block(p, 0, b, p),
                   ConstMatrixView{buf, b, w, b});  // x1 -= L21ᵀ t
  }
  trsm_left_lower_trans(panel.block(0, 0, p, p), x1);
}

}  // namespace detail

namespace {

using detail::backward_supernode;
using detail::forward_supernode;

/// One forward sweep over a single RHS block. Parallel path: independent
/// subtrees as tasks, then top-of-tree levels ascending (children before
/// parents). parallel_for is a barrier, so every pull source is complete
/// before its consumer runs.
void forward_sweep(const CholeskyFactor& factor, const SolveSchedule& sched,
                   SolveWorkspace& ws, MatrixView x, ThreadPool* pool) {
  const index_t ns = sched.sym->n_supernodes;
  if (pool == nullptr || pool->size() <= 1) {
    for (index_t s = 0; s < ns; ++s) {
      forward_supernode(factor, sched, ws, x, s);
    }
    return;
  }
  parallel_for(*pool, 0, sched.n_tasks(), [&](index_t t) {
    for (index_t s = sched.task_first[t]; s <= sched.task_root[t]; ++s) {
      forward_supernode(factor, sched, ws, x, s);
    }
  });
  for (index_t l = 0; l < sched.n_levels(); ++l) {
    parallel_for(*pool, sched.level_ptr[l], sched.level_ptr[l + 1],
                 [&](index_t i) {
                   forward_supernode(factor, sched, ws, x, sched.level_sn[i]);
                 });
  }
}

/// One backward sweep over a single RHS block: levels descending (parents
/// before children), then the subtree tasks.
void backward_sweep(const CholeskyFactor& factor, const SolveSchedule& sched,
                    SolveWorkspace& ws, MatrixView x, ThreadPool* pool) {
  const index_t ns = sched.sym->n_supernodes;
  if (pool == nullptr || pool->size() <= 1) {
    for (index_t s = ns - 1; s >= 0; --s) {
      backward_supernode(factor, sched, ws, x, s);
    }
    return;
  }
  for (index_t l = sched.n_levels() - 1; l >= 0; --l) {
    parallel_for(*pool, sched.level_ptr[l], sched.level_ptr[l + 1],
                 [&](index_t i) {
                   backward_supernode(factor, sched, ws, x, sched.level_sn[i]);
                 });
  }
  parallel_for(*pool, 0, sched.n_tasks(), [&](index_t t) {
    for (index_t s = sched.task_root[t]; s >= sched.task_first[t]; --s) {
      backward_supernode(factor, sched, ws, x, s);
    }
  });
}

void check_engine_args(const CholeskyFactor& factor,
                       const SolveSchedule& sched, ConstMatrixView x) {
  const SymbolicFactor& sym = factor.symbolic();
  PARFACT_CHECK(x.rows == sym.n);
  PARFACT_CHECK_MSG(sched.sym == &sym,
                    "SolveSchedule built for a different SymbolicFactor");
}

void diagonal_solve_block(const CholeskyFactor& factor, MatrixView x) {
  const std::span<const real_t> d = factor.diag();
  for (index_t c = 0; c < x.cols; ++c) {
    for (index_t i = 0; i < x.rows; ++i) x.at(i, c) /= d[i];
  }
}

}  // namespace

void forward_solve(const CholeskyFactor& factor, MatrixView x,
                   const SolveSchedule& schedule, SolveWorkspace& workspace,
                   ThreadPool* pool) {
  check_engine_args(factor, schedule, x);
  for (index_t c0 = 0; c0 < x.cols; c0 += schedule.rhs_block) {
    const index_t w = std::min(schedule.rhs_block, x.cols - c0);
    workspace.ensure(schedule, w);
    forward_sweep(factor, schedule, workspace, x.block(0, c0, x.rows, w),
                  pool);
  }
}

void backward_solve(const CholeskyFactor& factor, MatrixView x,
                    const SolveSchedule& schedule, SolveWorkspace& workspace,
                    ThreadPool* pool) {
  check_engine_args(factor, schedule, x);
  for (index_t c0 = 0; c0 < x.cols; c0 += schedule.rhs_block) {
    const index_t w = std::min(schedule.rhs_block, x.cols - c0);
    workspace.ensure(schedule, w);
    backward_sweep(factor, schedule, workspace, x.block(0, c0, x.rows, w),
                   pool);
  }
}

void diagonal_solve(const CholeskyFactor& factor, MatrixView x) {
  if (!factor.is_ldlt()) return;
  diagonal_solve_block(factor, x);
}

void solve_in_place(const CholeskyFactor& factor, MatrixView x,
                    const SolveSchedule& schedule, SolveWorkspace& workspace,
                    ThreadPool* pool) {
  check_engine_args(factor, schedule, x);
  // Full forward/diagonal/backward per RHS block: each factor panel is
  // streamed exactly once per block in each sweep.
  for (index_t c0 = 0; c0 < x.cols; c0 += schedule.rhs_block) {
    const index_t w = std::min(schedule.rhs_block, x.cols - c0);
    workspace.ensure(schedule, w);
    MatrixView xb = x.block(0, c0, x.rows, w);
    forward_sweep(factor, schedule, workspace, xb, pool);
    if (factor.is_ldlt()) diagonal_solve_block(factor, xb);
    backward_sweep(factor, schedule, workspace, xb, pool);
  }
}

void forward_solve(const CholeskyFactor& factor, MatrixView x) {
  SolveScheduleOptions opts;
  opts.rhs_block = std::max<index_t>(x.cols, 1);
  SolveSchedule schedule(factor.symbolic(), opts);
  SolveWorkspace workspace;
  forward_solve(factor, x, schedule, workspace, nullptr);
}

void backward_solve(const CholeskyFactor& factor, MatrixView x) {
  SolveScheduleOptions opts;
  opts.rhs_block = std::max<index_t>(x.cols, 1);
  SolveSchedule schedule(factor.symbolic(), opts);
  SolveWorkspace workspace;
  backward_solve(factor, x, schedule, workspace, nullptr);
}

void solve_in_place(const CholeskyFactor& factor, MatrixView x) {
  SolveScheduleOptions opts;
  opts.rhs_block = std::max<index_t>(x.cols, 1);
  SolveSchedule schedule(factor.symbolic(), opts);
  SolveWorkspace workspace;
  solve_in_place(factor, x, schedule, workspace, nullptr);
}

real_t relative_residual(const SparseMatrix& lower_a,
                         std::span<const real_t> x,
                         std::span<const real_t> b) {
  PARFACT_CHECK(static_cast<index_t>(x.size()) == lower_a.rows);
  PARFACT_CHECK(x.size() == b.size());
  std::vector<real_t> r(x.size());
  spmv_symmetric_lower(lower_a, x, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  const real_t denom = norm_inf(symmetrize_full(lower_a)) *
                           norm_inf(std::span<const real_t>(x)) +
                       norm_inf(b);
  const real_t num = norm_inf(std::span<const real_t>(r));
  return denom > 0.0 ? num / denom : num;
}

RefinementResult iterative_refinement(const SparseMatrix& lower_a,
                                      const CholeskyFactor& factor,
                                      std::span<const real_t> b,
                                      std::span<real_t> x,
                                      const SolveSchedule& schedule,
                                      SolveWorkspace& workspace,
                                      ThreadPool* pool, int max_iterations,
                                      real_t tol) {
  const index_t n = lower_a.rows;
  PARFACT_CHECK(static_cast<index_t>(x.size()) == n);
  PARFACT_CHECK(x.size() == b.size());
  RefinementResult result;
  std::vector<real_t> r(static_cast<std::size_t>(n));
  // ‖A‖ and ‖b‖ are loop invariants; each iteration costs one SpMV whose
  // residual r = b − A x serves both the convergence test and, when the
  // test fails, the correction right-hand side.
  const real_t anorm = norm_inf(symmetrize_full(lower_a));
  const real_t bnorm = norm_inf(b);
  auto residual_now = [&]() -> real_t {
    spmv_symmetric_lower(lower_a, x, r);
    for (index_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    const real_t denom =
        anorm * norm_inf(std::span<const real_t>(x.data(), x.size())) + bnorm;
    const real_t num = norm_inf(std::span<const real_t>(r));
    return denom > 0.0 ? num / denom : num;
  };
  for (result.iterations = 0; result.iterations < max_iterations;
       ++result.iterations) {
    result.residual = residual_now();
    if (result.residual <= tol) return result;
    // r already holds b - A x: solve A d = r, x += d.
    solve_in_place(factor, MatrixView{r.data(), n, 1, n}, schedule, workspace,
                   pool);
    for (index_t i = 0; i < n; ++i) x[i] += r[i];
  }
  result.residual = residual_now();
  return result;
}

RefinementResult iterative_refinement(const SparseMatrix& lower_a,
                                      const CholeskyFactor& factor,
                                      std::span<const real_t> b,
                                      std::span<real_t> x, int max_iterations,
                                      real_t tol) {
  SolveSchedule schedule(factor.symbolic());
  SolveWorkspace workspace;
  return iterative_refinement(lower_a, factor, b, x, schedule, workspace,
                              nullptr, max_iterations, tol);
}

real_t refine_block(const SparseMatrix& lower_a, const CholeskyFactor& factor,
                    ConstMatrixView b, MatrixView x,
                    const SolveSchedule& schedule, SolveWorkspace& workspace,
                    ThreadPool* pool, int passes) {
  const index_t n = lower_a.rows;
  PARFACT_CHECK(b.rows == n && x.rows == n && b.cols == x.cols);
  const index_t nrhs = x.cols;
  const real_t anorm = norm_inf(symmetrize_full(lower_a));
  std::vector<real_t> r(static_cast<std::size_t>(n) * nrhs);
  MatrixView rv{r.data(), n, nrhs, n};
  std::vector<real_t> xc(static_cast<std::size_t>(n));
  std::vector<real_t> rc(static_cast<std::size_t>(n));
  // Columns may be strided views; stage each through a contiguous buffer
  // for the SpMV. One SpMV per column per pass.
  auto residuals_into_rv = [&]() {
    for (index_t c = 0; c < nrhs; ++c) {
      for (index_t i = 0; i < n; ++i) xc[i] = x.at(i, c);
      spmv_symmetric_lower(lower_a, xc, rc);
      for (index_t i = 0; i < n; ++i) rv.at(i, c) = b.at(i, c) - rc[i];
    }
  };
  for (int pass = 0; pass < passes; ++pass) {
    residuals_into_rv();
    solve_in_place(factor, rv, schedule, workspace, pool);
    for (index_t c = 0; c < nrhs; ++c) {
      for (index_t i = 0; i < n; ++i) x.at(i, c) += rv.at(i, c);
    }
  }
  residuals_into_rv();
  real_t worst = 0.0;
  for (index_t c = 0; c < nrhs; ++c) {
    real_t xmax = 0.0, bmax = 0.0, rmax = 0.0;
    for (index_t i = 0; i < n; ++i) {
      xmax = std::max(xmax, std::abs(x.at(i, c)));
      bmax = std::max(bmax, std::abs(b.at(i, c)));
      rmax = std::max(rmax, std::abs(rv.at(i, c)));
    }
    const real_t denom = anorm * xmax + bmax;
    worst = std::max(worst, denom > 0.0 ? rmax / denom : rmax);
  }
  return worst;
}

}  // namespace parfact
