#include "solve/solve.h"

#include <algorithm>
#include <vector>

#include "dense/kernels.h"
#include "sparse/ops.h"
#include "support/error.h"

namespace parfact {

void forward_solve(const CholeskyFactor& factor, MatrixView x) {
  const SymbolicFactor& sym = factor.symbolic();
  PARFACT_CHECK(x.rows == sym.n);
  std::vector<real_t> gathered;
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const index_t p = sym.sn_cols(s);
    const index_t b = sym.sn_below(s);
    const ConstMatrixView panel = factor.panel(s);
    MatrixView x1 = x.block(sym.sn_start[s], 0, p, x.cols);
    trsm_left_lower(panel.block(0, 0, p, p), x1);
    if (b == 0) continue;
    // x[rows] -= L21 * x1, via a gathered temporary (rows are scattered).
    gathered.assign(static_cast<std::size_t>(b) * x.cols, 0.0);
    MatrixView t{gathered.data(), b, x.cols, b};
    gemm_nn_update(t, panel.block(p, 0, b, p), x1);  // t = -L21 x1
    const auto rows = sym.below_rows(s);
    for (index_t c = 0; c < x.cols; ++c) {
      for (index_t i = 0; i < b; ++i) x.at(rows[i], c) += t.at(i, c);
    }
  }
}

void backward_solve(const CholeskyFactor& factor, MatrixView x) {
  const SymbolicFactor& sym = factor.symbolic();
  PARFACT_CHECK(x.rows == sym.n);
  std::vector<real_t> gathered;
  for (index_t s = sym.n_supernodes - 1; s >= 0; --s) {
    const index_t p = sym.sn_cols(s);
    const index_t b = sym.sn_below(s);
    const ConstMatrixView panel = factor.panel(s);
    MatrixView x1 = x.block(sym.sn_start[s], 0, p, x.cols);
    if (b > 0) {
      const auto rows = sym.below_rows(s);
      gathered.resize(static_cast<std::size_t>(b) * x.cols);
      MatrixView t{gathered.data(), b, x.cols, b};
      for (index_t c = 0; c < x.cols; ++c) {
        for (index_t i = 0; i < b; ++i) t.at(i, c) = x.at(rows[i], c);
      }
      gemm_tn_update(x1, panel.block(p, 0, b, p), t);  // x1 -= L21ᵀ t
    }
    trsm_left_lower_trans(panel.block(0, 0, p, p), x1);
  }
}

void solve_in_place(const CholeskyFactor& factor, MatrixView x) {
  forward_solve(factor, x);
  if (factor.is_ldlt()) {
    // Diagonal solve of the L D Lᵀ factorization (L has unit diagonal
    // stored as 1.0, so the forward/backward sweeps need no change).
    const std::span<const real_t> d = factor.diag();
    for (index_t c = 0; c < x.cols; ++c) {
      for (index_t i = 0; i < x.rows; ++i) x.at(i, c) /= d[i];
    }
  }
  backward_solve(factor, x);
}

real_t relative_residual(const SparseMatrix& lower_a,
                         std::span<const real_t> x,
                         std::span<const real_t> b) {
  PARFACT_CHECK(static_cast<index_t>(x.size()) == lower_a.rows);
  PARFACT_CHECK(x.size() == b.size());
  std::vector<real_t> r(x.size());
  spmv_symmetric_lower(lower_a, x, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  const real_t denom = norm_inf(symmetrize_full(lower_a)) *
                           norm_inf(std::span<const real_t>(x)) +
                       norm_inf(b);
  const real_t num = norm_inf(std::span<const real_t>(r));
  return denom > 0.0 ? num / denom : num;
}

RefinementResult iterative_refinement(const SparseMatrix& lower_a,
                                      const CholeskyFactor& factor,
                                      std::span<const real_t> b,
                                      std::span<real_t> x, int max_iterations,
                                      real_t tol) {
  const index_t n = lower_a.rows;
  PARFACT_CHECK(static_cast<index_t>(x.size()) == n);
  RefinementResult result;
  std::vector<real_t> r(static_cast<std::size_t>(n));
  for (result.iterations = 0; result.iterations < max_iterations;
       ++result.iterations) {
    result.residual = relative_residual(lower_a, x, b);
    if (result.residual <= tol) break;
    // r = b - A x, solve A d = r, x += d.
    spmv_symmetric_lower(lower_a, x, r);
    for (index_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    solve_in_place(factor, MatrixView{r.data(), n, 1, n});
    for (index_t i = 0; i < n; ++i) x[i] += r[i];
  }
  result.residual = relative_residual(lower_a, x, b);
  return result;
}

}  // namespace parfact
