// Precomputed execution plan for the supernodal triangular solves.
//
// The solve phase is bandwidth-bound and latency-sensitive: every sweep
// walks the whole assembly tree, and the per-supernode scatter/gather
// index arithmetic plus temporary allocation dominate once the panels fit
// in cache. The SolveSchedule is built once (at factorization time, from
// the symbolic structure alone) and amortizes all of that across every
// subsequent solve:
//
//   * Tree partition — the assembly tree is split exactly like the PR 1
//     shared-memory factorization: maximal "light" subtrees (contiguous
//     postorder index ranges) become independent tasks, and the remaining
//     top-of-tree supernodes are level-scheduled (a supernode's level is
//     strictly greater than all of its non-light children's levels).
//     Forward sweep: tasks in parallel, then levels ascending. Backward
//     sweep: levels descending, then tasks in parallel.
//
//   * Pull-based forward plan — instead of scattering each supernode's
//     update −L21·x1 into x (which would race across sibling subtrees and
//     change the floating-point reduction order), the update is written to
//     a per-supernode slice of a workspace arena and *pulled* by the
//     owning ancestor supernodes just before their own solve, in ascending
//     source-supernode order. Every per-element addition sequence is then
//     exactly the serial postorder push sequence, so threaded sweeps are
//     bitwise-identical to serial ones regardless of the partition.
//
//   * Gather runs — the backward sweep's x-gather at the below rows is
//     precomputed as maximal consecutive-row runs, turning the per-entry
//     indexed loop into a handful of memcpys per supernode.
//
//   * Workspace arena — one allocation sized from sn_row_ptr covers every
//     supernode's update slice for a whole RHS block; no per-supernode
//     temporaries survive in the sweeps.
//
// RHS blocking: the engine processes right-hand sides in fixed-width
// blocks of `rhs_block` columns. The dense kernels' engine dispatch
// depends on the operand width, so results are defined (and bitwise
// reproducible) per block partition; all engine entry points — serial,
// threaded, batched — share this partition, which is what makes the
// batch-vs-loop identity contracts exact.
#pragma once

#include <vector>

#include "support/types.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

struct SolveScheduleOptions {
  /// Right-hand-side columns processed per blocked sweep. Panels are
  /// streamed once per block, so larger blocks raise the solve's
  /// flops-per-byte until the block stops fitting next to the panels.
  index_t rhs_block = 32;
  /// A supernode is "light" when its per-RHS solve work (p² + 2pb flops)
  /// is below this and all of its children are light; maximal light
  /// subtrees become independent tasks.
  count_t task_work = 50'000;
};

/// Immutable solve plan for one SymbolicFactor. The referenced symbolic
/// structure must outlive the schedule.
struct SolveSchedule {
  explicit SolveSchedule(const SymbolicFactor& sym,
                         SolveScheduleOptions opts = {});

  /// One incoming forward-update segment: rows [lo, hi) of sn_rows (global
  /// indices into the sn_rows array) of source supernode `src` land in this
  /// supernode's panel rows.
  struct Incoming {
    index_t src;
    index_t lo;
    index_t hi;
  };

  /// One backward-gather run: `len` consecutive x rows starting at global
  /// row `row` copy to local rows [dst, dst+len) of the gathered block.
  struct Run {
    index_t dst;
    index_t row;
    index_t len;
  };

  const SymbolicFactor* sym;
  index_t rhs_block;

  /// Independent-subtree tasks: task t covers supernodes
  /// [task_first[t], task_root[t]] (a contiguous postorder range).
  std::vector<index_t> task_first;
  std::vector<index_t> task_root;
  /// Level-scheduled top-of-tree supernodes: level l holds
  /// level_sn[level_ptr[l] .. level_ptr[l+1]). All supernodes in one level
  /// are mutually independent (no ancestor relation).
  std::vector<index_t> level_ptr;
  std::vector<index_t> level_sn;

  /// Forward pull plan (CSR over supernodes): segments of ancestors'
  /// pending updates that land in supernode s's panel rows, ascending in
  /// source supernode.
  std::vector<index_t> in_ptr;
  std::vector<Incoming> in;

  /// Backward gather runs (CSR over supernodes).
  std::vector<index_t> run_ptr;
  std::vector<Run> runs;

  [[nodiscard]] index_t n_tasks() const {
    return static_cast<index_t>(task_root.size());
  }
  [[nodiscard]] index_t n_levels() const {
    return static_cast<index_t>(level_ptr.size()) - 1;
  }
  /// Arena entries needed per RHS column: one slot per below-row entry.
  [[nodiscard]] std::size_t arena_entries_per_rhs() const {
    return static_cast<std::size_t>(sym->sn_row_ptr[sym->n_supernodes]);
  }
};

/// Reusable solve scratch: the update arena for one RHS block. ensure()
/// grows (never shrinks) the arena; contents need no clearing between
/// solves — each supernode's slice is fully overwritten before it is read.
struct SolveWorkspace {
  std::vector<real_t> arena;
  index_t width = 0;

  void ensure(const SolveSchedule& schedule, index_t block_width) {
    width = block_width;
    const std::size_t need =
        schedule.arena_entries_per_rhs() * static_cast<std::size_t>(width);
    if (arena.size() < need) arena.resize(need);
  }
};

}  // namespace parfact
