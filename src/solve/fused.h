// Fused factor+solve: one task graph for the numeric factorization AND the
// first forward-solve sweep.
//
// The classic pipeline has a hard barrier between factorization and solve:
// every front finishes before the first triangular-solve flop runs. But a
// supernode's forward solve only needs its own panel and its descendants'
// solves — exactly the subtree that factored first. Hanging the solve
// schedule's per-supernode forward steps off the factor DAG's panel-ready
// tags lets bottom subtrees stream into the solve while the top of the
// tree is still factoring, which is where the factor DAG is starved for
// parallelism anyway. The diagonal/backward sweeps (which need the *whole*
// factor) and any remaining RHS blocks run after the graph drains.
//
// Results are bitwise identical to multifrontal_factor_parallel followed
// by solve_in_place: the forward steps use the pull-based arena plan whose
// per-element addition order is schedule-independent, and the RHS block
// partition is the same.
#pragma once

#include <span>

#include "mf/factor.h"
#include "mf/multifrontal.h"
#include "solve/solve_schedule.h"
#include "support/thread_pool.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

/// Factorizes sym.a and solves A x = x in place (x: n × nrhs postordered
/// right-hand sides, overwritten with the solution), overlapping the first
/// RHS block's forward sweep with the factorization. `schedule` must be
/// built from `sym`. Throws like multifrontal_factor_parallel on breakdown
/// (factor and x are then partial). Returns the factor for subsequent
/// solves against more right-hand sides.
[[nodiscard]] CholeskyFactor multifrontal_factor_and_solve(
    const SymbolicFactor& sym, MatrixView x, const SolveSchedule& schedule,
    SolveWorkspace& workspace, ThreadPool& pool, FactorStats* stats = nullptr,
    FactorKind kind = FactorKind::kCholesky,
    count_t coop_flops = kCoopFrontFlops, PivotPolicy pivot = {});

}  // namespace parfact
