#include "solve/solve_schedule.h"

#include <algorithm>

#include "support/error.h"

namespace parfact {

SolveSchedule::SolveSchedule(const SymbolicFactor& symbolic,
                             SolveScheduleOptions opts)
    : sym(&symbolic), rhs_block(opts.rhs_block) {
  PARFACT_CHECK(rhs_block >= 1);
  const index_t ns = symbolic.n_supernodes;

  // --- Tree partition: maximal light subtrees + leveled top of tree. ---
  // A supernode is light iff its own per-RHS solve work is below the
  // threshold AND every child is light; children precede parents in the
  // postorder, so one ascending pass settles the flags transitively.
  std::vector<char> light(static_cast<std::size_t>(ns), 1);
  std::vector<char> heavy_child(static_cast<std::size_t>(ns), 0);
  std::vector<index_t> first_desc(static_cast<std::size_t>(ns));
  for (index_t s = 0; s < ns; ++s) first_desc[s] = s;
  for (index_t s = 0; s < ns; ++s) {
    const count_t p = symbolic.sn_cols(s);
    const count_t b = symbolic.sn_below(s);
    const count_t work = p * p + 2 * p * b;
    light[s] = (work < opts.task_work) && !heavy_child[s];
    const index_t parent = symbolic.sn_parent[s];
    if (parent != kNone) {
      if (!light[s]) heavy_child[parent] = 1;
      first_desc[parent] = std::min(first_desc[parent], first_desc[s]);
    }
  }

  // Task roots: light supernodes whose parent is absent or not light. The
  // postorder makes each subtree the contiguous range [first_desc[r], r].
  // Top-of-tree levels propagate child -> parent in the same ascending
  // pass: a supernode's level ends up strictly above every non-light
  // child's, so one level's supernodes are mutually ancestor-free.
  std::vector<index_t> level(static_cast<std::size_t>(ns), 0);
  index_t max_level = -1;
  for (index_t s = 0; s < ns; ++s) {
    const index_t parent = symbolic.sn_parent[s];
    if (light[s]) {
      if (parent == kNone || !light[parent]) {
        task_first.push_back(first_desc[s]);
        task_root.push_back(s);
      }
      continue;
    }
    max_level = std::max(max_level, level[s]);
    if (parent != kNone) {
      level[parent] = std::max(level[parent], level[s] + 1);
    }
  }
  level_ptr.assign(static_cast<std::size_t>(max_level + 2), 0);
  for (index_t s = 0; s < ns; ++s) {
    if (!light[s]) ++level_ptr[level[s] + 1];
  }
  for (std::size_t l = 1; l < level_ptr.size(); ++l) {
    level_ptr[l] += level_ptr[l - 1];
  }
  level_sn.resize(static_cast<std::size_t>(level_ptr.back()));
  {
    std::vector<index_t> fill(level_ptr.begin(), level_ptr.end() - 1);
    for (index_t s = 0; s < ns; ++s) {
      if (!light[s]) level_sn[fill[level[s]]++] = s;
    }
  }

  // --- Forward pull plan: segment each supernode's below-row list by the
  // owning ancestor supernode. Ascending source order per owner keeps the
  // per-element addition sequence identical to the serial postorder push.
  in_ptr.assign(static_cast<std::size_t>(ns) + 1, 0);
  for (index_t d = 0; d < ns; ++d) {
    const auto rows = symbolic.below_rows(d);
    for (std::size_t g = 0; g < rows.size();) {
      const index_t owner = symbolic.sn_of[rows[g]];
      std::size_t h = g + 1;
      while (h < rows.size() && symbolic.sn_of[rows[h]] == owner) ++h;
      ++in_ptr[owner + 1];
      g = h;
    }
  }
  for (index_t s = 0; s < ns; ++s) in_ptr[s + 1] += in_ptr[s];
  in.resize(static_cast<std::size_t>(in_ptr[ns]));
  {
    std::vector<index_t> fill(in_ptr.begin(), in_ptr.end() - 1);
    for (index_t d = 0; d < ns; ++d) {
      const auto rows = symbolic.below_rows(d);
      const index_t base = symbolic.sn_row_ptr[d];
      for (std::size_t g = 0; g < rows.size();) {
        const index_t owner = symbolic.sn_of[rows[g]];
        std::size_t h = g + 1;
        while (h < rows.size() && symbolic.sn_of[rows[h]] == owner) ++h;
        in[fill[owner]++] = Incoming{d, base + static_cast<index_t>(g),
                                    base + static_cast<index_t>(h)};
        g = h;
      }
    }
  }
  // Sources arrive ascending per owner because d is the outer loop; the
  // engine relies on that order for bitwise-serial equivalence.

  // --- Backward gather runs: maximal consecutive-row spans. ---
  run_ptr.assign(static_cast<std::size_t>(ns) + 1, 0);
  runs.reserve(static_cast<std::size_t>(symbolic.sn_row_ptr[ns]) / 4 + 8);
  for (index_t s = 0; s < ns; ++s) {
    const auto rows = symbolic.below_rows(s);
    for (std::size_t i = 0; i < rows.size();) {
      std::size_t j = i + 1;
      while (j < rows.size() &&
             rows[j] == rows[j - 1] + 1) {
        ++j;
      }
      runs.push_back(Run{static_cast<index_t>(i), rows[i],
                         static_cast<index_t>(j - i)});
      i = j;
    }
    run_ptr[s + 1] = static_cast<index_t>(runs.size());
  }
}

}  // namespace parfact
