#include "mpsim/machine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "support/checksum.h"
#include "support/error.h"
#include "support/status.h"

namespace parfact::mpsim {

namespace {

int ceil_log2(int n) {
  int l = 0;
  while ((1 << l) < n) ++l;
  return l;
}

/// splitmix64 finalizer — the scrambler behind the fault dice.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic uniform [0, 1) draw for one fault decision. Purely a
/// function of its arguments: host scheduling cannot perturb the dice.
double fault_roll(std::uint64_t seed, int src, int dest, int tag,
                  std::uint64_t seq, int draw) {
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                 << 32 |
                 static_cast<std::uint32_t>(dest)));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  h = mix64(h ^ seq);
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(draw)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Prefix carried by every point-to-point message when faults are active.
/// The payload digest defends against wire bit flips (FaultPlan::BitFlip
/// site 0): a corrupted copy fails verification at the receiver and is
/// discarded exactly like a link loss, so the sender's retry loop heals it.
struct WireHeader {
  std::uint64_t seq;
  std::uint64_t payload_checksum;
};

/// Internal control-flow signal: this rank's virtual clock crossed its
/// Crash{rank, at} entry. Deliberately not derived from parfact::Error so
/// rank programs that catch Error cannot swallow a crash; run_spmd's thread
/// wrapper is the only catcher.
struct RankCrashed {};

/// Validates a FaultPlan before any rank thread starts (satellite task:
/// out-of-range rates used to feed the hash dice undefined probabilities).
void validate_plan(const FaultPlan& p, int n_ranks) {
  const auto fail = [](const std::string& what) {
    throw StatusError(Status::failure(StatusCode::kInvalidInput,
                                      "mpsim: invalid FaultPlan: " + what));
  };
  const auto rate = [&](double v, const char* name) {
    if (!(v >= 0.0 && v <= 1.0)) {  // negated to also reject NaN
      fail(std::string(name) + " must lie in [0, 1]");
    }
  };
  rate(p.drop_rate, "drop_rate");
  rate(p.duplicate_rate, "duplicate_rate");
  rate(p.delay_rate, "delay_rate");
  rate(p.ack_drop_rate, "ack_drop_rate");
  if (!(p.delay_seconds >= 0.0)) fail("delay_seconds must be >= 0");
  if (p.max_retries < 1) fail("max_retries must be >= 1");
  if (!(p.retry_backoff_seconds > 0.0)) {
    fail("retry_backoff_seconds must be > 0");
  }
  if (!(p.recv_timeout_host_seconds > 0.0)) {
    fail("recv_timeout_host_seconds must be > 0");
  }
  if (!(p.run_timeout_host_seconds >= 0.0)) {
    fail("run_timeout_host_seconds must be >= 0");
  }
  if (p.spare_ranks < 0) fail("spare_ranks must be >= 0");
  for (const FaultPlan::Stall& s : p.stalls) {
    if (s.rank < 0 || s.rank >= n_ranks) fail("stall names a nonexistent rank");
    if (!(s.at >= 0.0)) fail("stall time must be >= 0");
    if (!(s.duration >= 0.0)) fail("stall duration must be >= 0");
  }
  for (const FaultPlan::Crash& c : p.crashes) {
    if (c.rank < 0 || c.rank >= n_ranks) fail("crash names a nonexistent rank");
    if (!(c.at >= 0.0)) fail("crash time must be >= 0");
  }
  for (const FaultPlan::BitFlip& f : p.bit_flips) {
    if (f.rank < 0 || f.rank >= n_ranks) {
      fail("bit flip names a nonexistent rank");
    }
    if (f.site != 0 && f.site != 1) fail("bit flip site must be 0 or 1");
    if (f.bit < 0 || f.bit > 63) fail("bit flip bit must lie in [0, 63]");
    if (!(f.at >= 0.0)) fail("bit flip time must be >= 0");
  }
}

}  // namespace

class Machine {
 public:
  enum RankState : std::uint8_t {
    kAlive = 0,             // running (or already replaced by a spare)
    kDeadRecoverable = 1,   // crashed; its designated spare will adopt it
    kDeadUnrecoverable = 2  // crashed; no spare — peers must diagnose
  };

  Machine(int n, const MachineModel& model, const FaultPlan& plan)
      : model_(model),
        plan_(plan),
        faults_(plan.active()),
        retain_(!plan.crashes.empty() || plan.spare_ranks > 0),
        n_(n),
        boxes_(static_cast<std::size_t>(n)),
        replacement_(static_cast<std::size_t>(n), -1),
        spare_target_(static_cast<std::size_t>(std::max(plan.spare_ranks, 0)),
                      -1),
        dead_(static_cast<std::size_t>(n), 0),
        death_clock_(static_cast<std::size_t>(n), 0.0),
        checkpoints_(static_cast<std::size_t>(n)),
        rank_state_(new std::atomic<std::uint8_t>[static_cast<std::size_t>(n)]) {
    for (int r = 0; r < n; ++r) rank_state_[r].store(kAlive);
  }

  const MachineModel model_;
  const FaultPlan plan_;
  const bool faults_;
  /// Retention mode (any crash or spare configured): per-channel message
  /// logs are never popped, receivers advance private cursors instead, so
  /// a replacement rank can replay a dead rank's communication history.
  const bool retain_;
  const int n_;

  struct Message {
    double arrival;
    std::vector<std::byte> data;
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<Message>> queues;
  };
  std::vector<Mailbox> boxes_;

  // Collective rendezvous state (all collectives are full-rendezvous; MPI
  // programs must call them in the same order on every rank anyway).
  std::mutex coll_mu_;
  std::condition_variable coll_cv_;
  std::uint64_t coll_gen_ = 0;
  int coll_arrived_ = 0;
  double coll_sum_ = 0.0;
  double coll_max_ = 0.0;
  double coll_clock_ = 0.0;
  std::vector<std::byte> coll_payload_;
  double coll_result_sum_ = 0.0;
  double coll_result_max_ = 0.0;
  double coll_result_clock_ = 0.0;
  std::vector<std::byte> coll_result_payload_;

  // Failure bookkeeping (death_mu_ serializes crash/adoption/checkpoint
  // events so every FailureView observer sees a consistent epoch).
  struct ProtocolSnapshot {
    std::map<std::pair<int, int>, std::uint64_t> send_seq;
    std::map<std::pair<int, int>, std::uint64_t> recv_seq;
    std::map<std::pair<int, int>, std::size_t> consumed;
    count_t mem_live = 0;
    double clock = 0.0;
  };
  struct CheckpointSlot {
    bool has = false;
    std::vector<std::byte> blob;
    ProtocolSnapshot snap;
  };
  std::mutex death_mu_;
  std::condition_variable death_cv_;
  std::vector<int> replacement_;   ///< base rank -> spare index or -1
  std::vector<int> spare_target_;  ///< spare index -> base rank or -1
  std::vector<char> dead_;
  std::vector<double> death_clock_;
  std::vector<CheckpointSlot> checkpoints_;
  std::uint64_t epoch_ = 0;
  std::vector<int> failed_;
  std::vector<int> recovered_;
  std::vector<int> lost_;  ///< crashed with no spare
  int programs_remaining_ = 0;
  bool run_over_ = false;
  double recovery_overhead_ = 0.0;
  std::unique_ptr<std::atomic<std::uint8_t>[]> rank_state_;
  std::atomic<int> unrecoverable_deaths_{0};

  std::atomic<count_t> total_messages_{0};
  std::atomic<count_t> total_bytes_{0};
  /// Messages delivered to a mailbox but not yet consumed by a receiver,
  /// with the machine-wide high-water mark. Approximate under crash replay:
  /// retained-log entries are consumed once per incarnation that reads
  /// them, so the down-counter clamps at zero instead of going negative.
  std::atomic<count_t> in_flight_{0};
  std::atomic<count_t> max_in_flight_{0};

  void note_delivered() {
    const count_t now = in_flight_.fetch_add(1) + 1;
    count_t prev = max_in_flight_.load();
    while (now > prev && !max_in_flight_.compare_exchange_weak(prev, now)) {
    }
  }
  void note_consumed() {
    count_t prev = in_flight_.load();
    while (prev > 0 && !in_flight_.compare_exchange_weak(prev, prev - 1)) {
    }
  }

  std::atomic<count_t> total_retransmits_{0};
  std::atomic<count_t> total_dropped_{0};
  std::atomic<count_t> total_bit_flips_{0};
  std::atomic<count_t> total_corrupt_discarded_{0};
  std::atomic<count_t> checkpoints_stored_{0};
  std::atomic<count_t> checkpoint_bytes_{0};
  std::atomic<bool> aborted_{false};

  [[nodiscard]] RankState rank_state(int rank) const {
    return static_cast<RankState>(rank_state_[rank].load());
  }

  /// Records a fired crash; returns whether a spare will take over. Wakes
  /// every blocked receiver/collective waiter so wait predicates re-check
  /// the dead rank's state instead of hanging.
  bool note_death(int rank, double clock) {
    bool recoverable = false;
    {
      std::lock_guard<std::mutex> lock(death_mu_);
      dead_[static_cast<std::size_t>(rank)] = 1;
      death_clock_[static_cast<std::size_t>(rank)] = clock;
      ++epoch_;
      failed_.push_back(rank);
      recoverable = replacement_[static_cast<std::size_t>(rank)] >= 0;
      rank_state_[rank].store(recoverable ? kDeadRecoverable
                                          : kDeadUnrecoverable);
      if (!recoverable) {
        lost_.push_back(rank);
        unrecoverable_deaths_.fetch_add(1);
      }
      death_cv_.notify_all();
    }
    for (auto& box : boxes_) {
      std::lock_guard<std::mutex> lock(box.mu);
      box.cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(coll_mu_);
      coll_cv_.notify_all();
    }
    return recoverable;
  }

  /// A base-rank program finished (normally, or was lost beyond recovery).
  /// When the last one does, idle spares are released.
  void note_program_done() {
    std::lock_guard<std::mutex> lock(death_mu_);
    if (--programs_remaining_ == 0) {
      run_over_ = true;
      death_cv_.notify_all();
    }
  }

  [[nodiscard]] std::string lost_ranks_string() {
    std::lock_guard<std::mutex> lock(death_mu_);
    std::ostringstream os;
    for (std::size_t i = 0; i < lost_.size(); ++i) {
      const auto r = static_cast<std::size_t>(lost_[i]);
      os << (i ? ", " : "") << lost_[i] << " (died at t=" << death_clock_[r]
         << "s)";
    }
    return os.str();
  }

  void abort_all() {
    aborted_.store(true);
    wake_all();
  }

  /// Watchdog fired: the whole run overran its host wall-clock budget. Every
  /// rank that is blocked (or next polls check_abort) raises kCommTimeout.
  void trigger_timeout() {
    timed_out_.store(true);
    wake_all();
  }

  void wake_all() {
    for (auto& box : boxes_) {
      std::lock_guard<std::mutex> lock(box.mu);
      box.cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(coll_mu_);
      coll_cv_.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(death_mu_);
      death_cv_.notify_all();
    }
  }

  [[nodiscard]] bool stop_requested() const {
    return aborted_.load() || timed_out_.load();
  }

  void check_abort() const {
    if (timed_out_.load()) {
      std::ostringstream os;
      os << "mpsim: run exceeded its wall-clock budget of "
         << plan_.run_timeout_host_seconds << " host seconds (livelock guard)";
      throw StatusError(Status::failure(StatusCode::kCommTimeout, os.str()));
    }
    if (aborted_.load()) {
      throw Error("mpsim: run aborted because another rank failed");
    }
  }

  std::atomic<bool> timed_out_{false};
};

int Comm::size() const { return machine_->n_; }

const MachineModel& Comm::model() const { return machine_->model_; }

bool Comm::is_spare() const { return rank_ >= machine_->n_; }

void Comm::send(int dest, int tag, const void* data, std::size_t bytes) {
  PARFACT_CHECK(dest >= 0 && dest < machine_->n_);
  machine_->check_abort();
  // A self-send is a local memcpy: no latency, no link traffic.
  const bool local = dest == rank_;
  if (!machine_->faults_) {
    const double arrival =
        local ? clock_
              : clock_ + machine_->model_.alpha +
                    static_cast<double>(bytes) * machine_->model_.beta;
    if (!local) clock_ += machine_->model_.alpha;  // sender-side overhead
    Machine::Message msg;
    msg.arrival = arrival;
    msg.data.resize(bytes);
    if (bytes > 0) std::memcpy(msg.data.data(), data, bytes);
    auto& box = machine_->boxes_[dest];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.queues[{rank_, tag}].push_back(std::move(msg));
    }
    box.cv.notify_all();
    machine_->note_delivered();
    if (!local) {
      machine_->total_messages_.fetch_add(1);
      machine_->total_bytes_.fetch_add(static_cast<count_t>(bytes));
    }
    return;
  }

  // A dead destination with a designated spare still accepts deliveries:
  // they land in its retained log for the replacement to consume. A dead
  // destination beyond recovery is a diagnosed failure, never a black hole.
  if (machine_->rank_state(dest) == Machine::kDeadUnrecoverable) {
    std::ostringstream os;
    os << "mpsim: rank " << rank_ << " at t=" << clock_
       << "s cannot send to rank " << dest << " (tag " << tag
       << "): that rank crashed and no spare took over";
    throw StatusError(Status::failure(StatusCode::kRankFailure, os.str()));
  }

  // Fault-injection path. All fault decisions for this message are resolved
  // here, synchronously: the in-process machine lets the sender know each
  // copy's fate, so "retransmit until a copy gets through" needs no ack
  // round-trip that could deadlock two ranks sending to each other. The
  // receiver's sequence check discards everything but the first accepted
  // copy, so faults change virtual time only, never payload or order.
  const FaultPlan& plan = machine_->plan_;
  const std::uint64_t seq = send_seq_[{dest, tag}]++;
  std::vector<std::byte> wire(sizeof(WireHeader) + bytes);
  const WireHeader header{seq, fnv1a(data, bytes)};
  std::memcpy(wire.data(), &header, sizeof header);
  if (bytes > 0) std::memcpy(wire.data() + sizeof header, data, bytes);
  // Resolve a pending wire bit flip (BitFlip site 0) for this sender: the
  // first non-empty payload sent at or after the entry's virtual time gets
  // exactly one corrupted copy.
  int flip_index = -1;
  if (bytes > 0) {
    for (std::size_t fi = 0; fi < plan.bit_flips.size(); ++fi) {
      const FaultPlan::BitFlip& f = plan.bit_flips[fi];
      if (f.site == 0 && f.rank == rank_ && flip_fired_[fi] == 0 &&
          clock_ >= f.at) {
        flip_index = static_cast<int>(fi);
        break;
      }
    }
  }
  auto deliver_buf = [&](double arrival, const std::vector<std::byte>& buf) {
    Machine::Message msg;
    msg.arrival = arrival;
    msg.data = buf;  // copy — duplicates may deliver the same bytes again
    auto& box = machine_->boxes_[dest];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.queues[{rank_, tag}].push_back(std::move(msg));
    }
    box.cv.notify_all();
    machine_->note_delivered();
    if (!local) {
      machine_->total_messages_.fetch_add(1);
      machine_->total_bytes_.fetch_add(static_cast<count_t>(buf.size()));
    }
  };
  auto deliver = [&](double arrival) { deliver_buf(arrival, wire); };
  if (local) {
    // The loopback "link" never faults: a rank cannot lose a memcpy.
    deliver(clock_);
    return;
  }
  bool delivered = false;
  for (int attempt = 0; attempt <= plan.max_retries; ++attempt) {
    if (attempt > 0) {
      // Bounded exponential backoff, charged to virtual time.
      tick(plan.retry_backoff_seconds *
           static_cast<double>(1ull << std::min(attempt - 1, 20)));
      machine_->total_retransmits_.fetch_add(1);
    }
    double arrival = clock_ + machine_->model_.alpha +
                     static_cast<double>(wire.size()) * machine_->model_.beta;
    tick(machine_->model_.alpha);  // each copy pays the sender-side overhead
    auto roll = [&](int draw) {
      return fault_roll(plan.seed, rank_, dest, tag, seq, attempt * 4 + draw);
    };
    if (roll(0) < plan.drop_rate) {
      machine_->total_dropped_.fetch_add(1);
      continue;  // copy lost on the link — back off and retransmit
    }
    if (roll(1) < plan.delay_rate) arrival += plan.delay_seconds;
    if (flip_index >= 0 &&
        flip_fired_[static_cast<std::size_t>(flip_index)] == 0) {
      const FaultPlan::BitFlip& f =
          plan.bit_flips[static_cast<std::size_t>(flip_index)];
      flip_fired_[static_cast<std::size_t>(flip_index)] = 1;
      machine_->total_bit_flips_.fetch_add(1);
      std::vector<std::byte> corrupted = wire;
      flip_bit_in_bytes(corrupted.data() + sizeof(WireHeader), bytes, f.word,
                        f.bit);
      deliver_buf(arrival, corrupted);
      // With wire checksums on the receiver discards the corrupt copy
      // without advancing its stream — behave like a lost copy and
      // retransmit clean after backoff. Without them, the flip is a silent
      // delivery the end-to-end layers must catch.
      if (plan.wire_checksums) continue;
      delivered = true;
    } else {
      deliver(arrival);
      delivered = true;
    }
    if (roll(2) < plan.duplicate_rate) {
      deliver(arrival + machine_->model_.alpha);  // link-duplicated copy
    }
    if (roll(3) < plan.ack_drop_rate) continue;  // ack lost: spurious resend
    break;
  }
  if (!delivered) {
    std::ostringstream os;
    os << "mpsim: message " << rank_ << " -> " << dest << " (tag " << tag
       << ", seq " << seq << ") at t=" << clock_ << "s lost "
       << plan.max_retries + 1 << " consecutive copies; giving up";
    throw StatusError(Status::failure(StatusCode::kCommFailure, os.str()));
  }
}

bool Comm::fetch_message(int source, int tag, bool blocking, bool bounded,
                         Staged* out) {
  PARFACT_CHECK(source >= 0 && source < machine_->n_);
  auto& box = machine_->boxes_[rank_];
  const auto key = std::make_pair(source, tag);
  const FaultPlan& plan = machine_->plan_;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(plan.recv_timeout_host_seconds));
  if (!machine_->faults_) {
    std::unique_lock<std::mutex> lock(box.mu);
    const auto have = [&] {
      if (machine_->stop_requested()) return true;
      const auto it = box.queues.find(key);
      return it != box.queues.end() && !it->second.empty();
    };
    if (!blocking) {
      if (!have()) return false;
    } else if (bounded) {
      if (!box.cv.wait_until(lock, deadline, have)) {
        lock.unlock();
        std::ostringstream os;
        os << "mpsim: rank " << rank_ << " at t=" << clock_
           << "s timed out after " << plan.recv_timeout_host_seconds
           << "s of host time waiting for (source " << source << ", tag "
           << tag << ")";
        throw StatusError(Status::failure(StatusCode::kCommTimeout,
                                          os.str()));
      }
    } else {
      box.cv.wait(lock, have);
    }
    machine_->check_abort();
    auto& q = box.queues[key];
    Machine::Message msg = std::move(q.front());
    q.pop_front();
    lock.unlock();
    machine_->note_consumed();
    out->arrival = msg.arrival;
    out->payload = std::move(msg.data);
    return true;
  }

  // Fault path: strip the wire header, accept exactly the next expected
  // sequence number, silently discard stale duplicates, and bound the host
  // wait so an injected fault can never turn into a hang. In retention
  // mode the log is never popped — this rank's private cursor advances
  // instead, and the wait also wakes when the source is dead beyond
  // recovery (its stream can never be completed → kRankFailure). A source
  // that is dead but has a designated spare keeps us waiting: the
  // replacement will replay the stream, and the sequence check makes the
  // already-consumed prefix idempotent.
  const bool retain = machine_->retain_;
  std::uint64_t& expected = recv_seq_[key];
  std::size_t& cursor = consumed_[key];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    const auto pending = [&] {
      if (machine_->stop_requested()) return true;
      if (machine_->retain_ &&
          machine_->rank_state(source) == Machine::kDeadUnrecoverable) {
        return true;
      }
      const auto it = box.queues.find(key);
      if (it == box.queues.end()) return false;
      return retain ? cursor < it->second.size() : !it->second.empty();
    };
    if (!blocking) {
      if (!pending()) return false;
    } else if (!box.cv.wait_until(lock, deadline, pending)) {
      lock.unlock();
      std::ostringstream os;
      os << "mpsim: rank " << rank_ << " at t=" << clock_
         << "s timed out after " << plan.recv_timeout_host_seconds
         << "s of host time waiting for (source " << source << ", tag "
         << tag << "), expected seq " << expected;
      throw StatusError(Status::failure(StatusCode::kCommTimeout, os.str()));
    }
    machine_->check_abort();
    auto& q = box.queues[key];
    const bool have = retain ? cursor < q.size() : !q.empty();
    if (!have) {
      // Woken because the source crashed with no spare: whatever it sent
      // before dying has been drained, and nothing more can ever come. A
      // nonblocking probe reports "nothing pending"; the eventual wait
      // (or recv) lands here blocking and raises the diagnosis.
      if (!blocking) return false;
      lock.unlock();
      std::ostringstream os;
      os << "mpsim: rank " << rank_ << " at t=" << clock_
         << "s was waiting for (source " << source << ", tag " << tag
         << ", seq " << expected << "), but rank " << source
         << " crashed and no spare took over";
      throw StatusError(Status::failure(StatusCode::kRankFailure, os.str()));
    }
    Machine::Message msg;
    if (retain) {
      msg = q[cursor];  // copy: the log survives for a possible replay
      ++cursor;
    } else {
      msg = std::move(q.front());
      q.pop_front();
    }
    machine_->note_consumed();
    PARFACT_CHECK(msg.data.size() >= sizeof(WireHeader));
    WireHeader header;
    std::memcpy(&header, msg.data.data(), sizeof header);
    if (header.seq != expected) {
      // Sends resolve all copies of seq k before starting seq k+1 and the
      // per-link queue is FIFO, so a mismatch can only be a stale duplicate.
      PARFACT_CHECK_MSG(header.seq < expected,
                        "mpsim: out-of-order sequence number");
      continue;  // duplicate of an already-accepted copy
    }
    if (plan.wire_checksums &&
        header.payload_checksum != fnv1a(msg.data.data() + sizeof header,
                                         msg.data.size() - sizeof header)) {
      // Payload digest mismatch: an injected (or modeled) wire bit flip.
      // Discard without advancing the stream — the sender resolved the
      // corrupt copy as undelivered and will retransmit a clean one.
      machine_->total_corrupt_discarded_.fetch_add(1);
      continue;
    }
    ++expected;
    lock.unlock();
    out->arrival = msg.arrival;
    out->payload.assign(msg.data.begin() + sizeof header, msg.data.end());
    return true;
  }
}

std::vector<std::byte> Comm::recv(int source, int tag) {
  const auto it = channels_.find({source, tag});
  PARFACT_CHECK_MSG(
      it == channels_.end() ||
          (it->second.posted == it->second.filled &&
           it->second.staged.empty()),
      "mpsim: blocking recv with irecvs outstanding on the same channel");
  Staged st;
  // Blocking recv keeps its historical contract: unbounded with faults
  // inactive, bounded by the plan's host-time net otherwise.
  fetch_message(source, tag, /*blocking=*/true, /*bounded=*/machine_->faults_,
                &st);
  idle_wait_ += std::max(0.0, st.arrival - clock_);
  clock_ = std::max(clock_, st.arrival);
  if (machine_->faults_) {
    apply_stalls();
    maybe_crash();
  }
  return std::move(st.payload);
}

Request Comm::isend(int dest, int tag, const void* data, std::size_t bytes) {
  send(dest, tag, data, bytes);
  Request r;
  r.kind_ = Request::Kind::kSend;
  r.peer_ = dest;
  r.tag_ = tag;
  r.done_ = true;  // buffered semantics: in flight the moment send returns
  r.active_ = true;
  return r;
}

Request Comm::irecv(int source, int tag) {
  PARFACT_CHECK(source >= 0 && source < machine_->n_);
  Channel& ch = channels_[{source, tag}];
  Request r;
  r.kind_ = Request::Kind::kRecv;
  r.peer_ = source;
  r.tag_ = tag;
  r.ticket_ = ch.posted++;
  r.active_ = true;
  ++pending_irecvs_;
  return r;
}

bool Comm::fill_channel(Channel& ch, int source, int tag,
                        std::uint64_t ticket, bool blocking) {
  while (ch.filled <= ticket) {
    Staged st;
    if (!fetch_message(source, tag, blocking, /*bounded=*/true, &st)) {
      return false;
    }
    ch.staged.emplace(ch.filled++, std::move(st));
  }
  return true;
}

void Comm::complete_recv(Request& r, Staged&& st, bool count_idle) {
  if (count_idle) idle_wait_ += std::max(0.0, st.arrival - clock_);
  clock_ = std::max(clock_, st.arrival);
  r.arrival_ = st.arrival;
  r.payload_ = std::move(st.payload);
  r.done_ = true;
  --pending_irecvs_;
  apply_stalls();
  maybe_crash();
}

bool Comm::test(Request& r) {
  PARFACT_CHECK_MSG(r.active_, "mpsim: test on a default-constructed Request");
  if (r.done_) return true;
  Channel& ch = channels_[{r.peer_, r.tag_}];
  auto it = ch.staged.find(r.ticket_);
  if (it == ch.staged.end()) {
    if (!fill_channel(ch, r.peer_, r.tag_, r.ticket_, /*blocking=*/false)) {
      return false;
    }
    it = ch.staged.find(r.ticket_);
    PARFACT_DCHECK(it != ch.staged.end());
  }
  // Virtual-time honesty: a rank cannot observe a message before its
  // arrival time; test never advances the clock to make one observable.
  if (it->second.arrival > clock_) return false;
  Staged st = std::move(it->second);
  ch.staged.erase(it);
  complete_recv(r, std::move(st), /*count_idle=*/false);
  return true;
}

std::vector<std::byte> Comm::wait(Request& r) {
  PARFACT_CHECK_MSG(r.active_, "mpsim: wait on a default-constructed Request");
  machine_->check_abort();
  if (r.kind_ == Request::Kind::kSend) return {};
  if (!r.done_) {
    Channel& ch = channels_[{r.peer_, r.tag_}];
    auto it = ch.staged.find(r.ticket_);
    if (it == ch.staged.end()) {
      const bool ok =
          fill_channel(ch, r.peer_, r.tag_, r.ticket_, /*blocking=*/true);
      PARFACT_CHECK(ok);
      it = ch.staged.find(r.ticket_);
      PARFACT_CHECK(it != ch.staged.end());
    }
    Staged st = std::move(it->second);
    ch.staged.erase(it);
    complete_recv(r, std::move(st), /*count_idle=*/true);
  }
  return std::move(r.payload_);
}

std::vector<std::vector<std::byte>> Comm::wait_all(std::vector<Request>& rs) {
  std::vector<std::vector<std::byte>> out;
  out.reserve(rs.size());
  for (Request& r : rs) out.push_back(wait(r));
  return out;
}

std::size_t Comm::wait_any(std::vector<Request>& rs) {
  machine_->check_abort();
  ++wait_any_calls_;
  // Fast path: claim an already-arrived message in posting order, without
  // advancing the clock. Whether a virtually-arrived message is physically
  // visible yet depends on host scheduling, but test() is clock-neutral, so
  // the rank's virtual trajectory is the same either way — a miss here only
  // defers the completion to a later, deterministic wait.
  std::size_t first_pending = rs.size();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    Request& r = rs[i];
    if (!r.active_ || r.done_) continue;
    if (first_pending == rs.size()) first_pending = i;
    if (test(r)) {
      note_pool_drained(rs);
      return i;
    }
  }
  PARFACT_CHECK_MSG(first_pending < rs.size(),
                    "mpsim: wait_any with no incomplete request in the pool");
  // Blocking path: wait the earliest-posted incomplete request. Pools are
  // posted in need order, so this is the next message the caller cannot
  // proceed without — and the choice is host-independent, which keeps the
  // clock/idle accounting deterministic (the completion only ever does
  // clock = max(clock, arrival)).
  Request& r = rs[first_pending];
  Channel& ch = channels_[{r.peer_, r.tag_}];
  auto it = ch.staged.find(r.ticket_);
  if (it == ch.staged.end()) {
    const bool ok =
        fill_channel(ch, r.peer_, r.tag_, r.ticket_, /*blocking=*/true);
    PARFACT_CHECK(ok);
    it = ch.staged.find(r.ticket_);
    PARFACT_CHECK(it != ch.staged.end());
  }
  Staged st = std::move(it->second);
  ch.staged.erase(it);
  complete_recv(r, std::move(st), /*count_idle=*/true);
  note_pool_drained(rs);
  return first_pending;
}

void Comm::note_pool_drained(const std::vector<Request>& rs) {
  for (const Request& r : rs) {
    if (r.active_ && !r.done_) return;
  }
  // The pool just drained: count arrival-order inversions against posting
  // order. Virtual arrivals are deterministic, so this out-of-order measure
  // is a pure function of the schedule even though which wait_any call
  // completed which request is host-racy.
  double running_max = -std::numeric_limits<double>::infinity();
  count_t inversions = 0;
  for (const Request& r : rs) {
    if (!r.active_ || r.kind_ != Request::Kind::kRecv) continue;
    if (r.arrival_ < running_max) ++inversions;
    running_max = std::max(running_max, r.arrival_);
  }
  ooo_completions_ += inversions;
}

void Comm::barrier() {
  (void)allreduce_sum(0.0);
}

namespace {

/// Message/byte cost of one collective over n ranks, charged once by the
/// last arriver (satellite task: collectives used to be invisible in
/// RunStats, understating communication volume in every bench).
void count_collective_traffic(Machine& m, count_t messages, count_t bytes) {
  m.total_messages_.fetch_add(messages);
  m.total_bytes_.fetch_add(bytes);
}

/// Raises kRankFailure naming the crashed rank(s): a collective can never
/// complete once a participant is dead beyond recovery.
[[noreturn]] void throw_collective_rank_failure(Machine& m, int rank,
                                                double clock) {
  std::ostringstream os;
  os << "mpsim: rank " << rank << " at t=" << clock
     << "s entered a collective, but rank(s) " << m.lost_ranks_string()
     << " crashed and no spare took over";
  throw StatusError(Status::failure(StatusCode::kRankFailure, os.str()));
}

}  // namespace

double Comm::allreduce_sum(double v) {
  Machine& m = *machine_;
  std::unique_lock<std::mutex> lock(m.coll_mu_);
  m.check_abort();
  if (m.unrecoverable_deaths_.load() > 0) {
    lock.unlock();
    throw_collective_rank_failure(m, rank_, clock_);
  }
  const std::uint64_t my_gen = m.coll_gen_;
  if (m.coll_arrived_ == 0) {
    m.coll_sum_ = 0.0;
    m.coll_max_ = 0.0;
    m.coll_clock_ = 0.0;
  }
  m.coll_sum_ += v;
  m.coll_max_ = std::max(m.coll_max_, v);
  m.coll_clock_ = std::max(m.coll_clock_, clock_);
  if (++m.coll_arrived_ == m.n_) {
    m.coll_result_sum_ = m.coll_sum_;
    m.coll_result_max_ = m.coll_max_;
    m.coll_result_clock_ = m.coll_clock_;
    m.coll_arrived_ = 0;
    ++m.coll_gen_;
    count_collective_traffic(m, 2 * (m.n_ - 1),
                             static_cast<count_t>(16 * (m.n_ - 1)));
    m.coll_cv_.notify_all();
  } else {
    m.coll_cv_.wait(lock, [&] {
      return m.stop_requested() || m.coll_gen_ != my_gen ||
             m.unrecoverable_deaths_.load() > 0;
    });
    m.check_abort();
    if (m.coll_gen_ == my_gen) {
      // Not a completed rendezvous: a participant died beyond recovery.
      lock.unlock();
      throw_collective_rank_failure(m, rank_, clock_);
    }
  }
  // Binomial-tree reduce + broadcast of one double.
  const double cost = 2.0 * ceil_log2(m.n_) *
                      (m.model_.alpha + 8.0 * m.model_.beta);
  clock_ = m.coll_result_clock_ + cost;
  maybe_crash();
  return m.coll_result_sum_;
}

double Comm::allreduce_max(double v) {
  // Same rendezvous; both aggregates are always combined, so piggyback.
  Machine& m = *machine_;
  std::unique_lock<std::mutex> lock(m.coll_mu_);
  m.check_abort();
  if (m.unrecoverable_deaths_.load() > 0) {
    lock.unlock();
    throw_collective_rank_failure(m, rank_, clock_);
  }
  const std::uint64_t my_gen = m.coll_gen_;
  if (m.coll_arrived_ == 0) {
    m.coll_sum_ = 0.0;
    m.coll_max_ = -std::numeric_limits<double>::infinity();
    m.coll_clock_ = 0.0;
  }
  m.coll_sum_ += v;
  m.coll_max_ = std::max(m.coll_max_, v);
  m.coll_clock_ = std::max(m.coll_clock_, clock_);
  if (++m.coll_arrived_ == m.n_) {
    m.coll_result_sum_ = m.coll_sum_;
    m.coll_result_max_ = m.coll_max_;
    m.coll_result_clock_ = m.coll_clock_;
    m.coll_arrived_ = 0;
    ++m.coll_gen_;
    count_collective_traffic(m, 2 * (m.n_ - 1),
                             static_cast<count_t>(16 * (m.n_ - 1)));
    m.coll_cv_.notify_all();
  } else {
    m.coll_cv_.wait(lock, [&] {
      return m.stop_requested() || m.coll_gen_ != my_gen ||
             m.unrecoverable_deaths_.load() > 0;
    });
    m.check_abort();
    if (m.coll_gen_ == my_gen) {
      lock.unlock();
      throw_collective_rank_failure(m, rank_, clock_);
    }
  }
  const double cost = 2.0 * ceil_log2(m.n_) *
                      (m.model_.alpha + 8.0 * m.model_.beta);
  clock_ = m.coll_result_clock_ + cost;
  maybe_crash();
  return m.coll_result_max_;
}

void Comm::bcast(int root, std::vector<std::byte>* data) {
  PARFACT_CHECK(root >= 0 && root < machine_->n_);
  Machine& m = *machine_;
  std::unique_lock<std::mutex> lock(m.coll_mu_);
  m.check_abort();
  if (m.unrecoverable_deaths_.load() > 0) {
    lock.unlock();
    throw_collective_rank_failure(m, rank_, clock_);
  }
  const std::uint64_t my_gen = m.coll_gen_;
  if (m.coll_arrived_ == 0) m.coll_clock_ = 0.0;
  if (rank_ == root) m.coll_payload_ = *data;
  m.coll_clock_ = std::max(m.coll_clock_, clock_);
  if (++m.coll_arrived_ == m.n_) {
    m.coll_result_payload_ = std::move(m.coll_payload_);
    m.coll_payload_.clear();
    m.coll_result_clock_ = m.coll_clock_;
    m.coll_arrived_ = 0;
    ++m.coll_gen_;
    count_collective_traffic(
        m, m.n_ - 1,
        static_cast<count_t>(m.coll_result_payload_.size()) * (m.n_ - 1));
    m.coll_cv_.notify_all();
  } else {
    m.coll_cv_.wait(lock, [&] {
      return m.stop_requested() || m.coll_gen_ != my_gen ||
             m.unrecoverable_deaths_.load() > 0;
    });
    m.check_abort();
    if (m.coll_gen_ == my_gen) {
      lock.unlock();
      throw_collective_rank_failure(m, rank_, clock_);
    }
  }
  if (rank_ != root) *data = m.coll_result_payload_;
  const double bytes = static_cast<double>(data->size());
  const double cost = ceil_log2(m.n_) *
                      (m.model_.alpha + bytes * m.model_.beta);
  clock_ = m.coll_result_clock_ + cost;
  maybe_crash();
}

void Comm::checkpoint_save(int buddy, std::vector<std::byte> blob) {
  PARFACT_CHECK(buddy >= 0 && buddy < machine_->n_);
  // The protocol snapshot records sequence counters and log cursors, not
  // posted-receive tickets: a checkpoint with receives still outstanding
  // could not be resumed faithfully. Diagnosed rather than asserted so a
  // caller composing resilience with nonblocking lookahead gets a clean
  // kInvalidInput it can act on instead of an abort.
  if (pending_irecvs_ != 0) {
    std::ostringstream os;
    os << "mpsim: rank " << rank_ << " called checkpoint_save with "
       << pending_irecvs_
       << " irecv(s) outstanding; complete or drain every posted receive "
          "before checkpointing";
    throw StatusError(Status::failure(StatusCode::kInvalidInput, os.str()));
  }
  machine_->check_abort();
  // BitFlip site 1: corrupt the blob before it becomes durable. The flip
  // is detected only if this checkpoint is ever restored — the blob codec
  // checksums its payload and diagnoses kDataCorruption at decode time.
  const FaultPlan& plan = machine_->plan_;
  for (std::size_t fi = 0; fi < plan.bit_flips.size(); ++fi) {
    const FaultPlan::BitFlip& f = plan.bit_flips[fi];
    if (f.site == 1 && f.rank == rank_ && !flip_fired_.empty() &&
        flip_fired_[fi] == 0 && clock_ >= f.at && !blob.empty()) {
      flip_fired_[fi] = 1;
      machine_->total_bit_flips_.fetch_add(1);
      flip_bit_in_bytes(blob.data(), blob.size(), f.word, f.bit);
    }
  }
  const count_t bytes = static_cast<count_t>(blob.size());
  if (buddy != rank_) {
    // Synchronous ship to the buddy's memory: the checkpoint must be
    // durable before this rank proceeds, so the full transfer is charged.
    tick(machine_->model_.alpha +
         static_cast<double>(bytes) * machine_->model_.beta);
    machine_->total_messages_.fetch_add(1);
    machine_->total_bytes_.fetch_add(bytes);
  }
  Machine::CheckpointSlot slot;
  slot.has = true;
  slot.snap.send_seq = send_seq_;
  slot.snap.recv_seq = recv_seq_;
  slot.snap.consumed = consumed_;
  slot.snap.mem_live = mem_live_;
  slot.snap.clock = clock_;
  slot.blob = std::move(blob);
  {
    std::lock_guard<std::mutex> lock(machine_->death_mu_);
    machine_->checkpoints_[static_cast<std::size_t>(rank_)] = std::move(slot);
  }
  machine_->checkpoints_stored_.fetch_add(1);
  machine_->checkpoint_bytes_.fetch_add(bytes);
}

Takeover Comm::await_failure() {
  Machine& m = *machine_;
  PARFACT_CHECK_MSG(rank_ >= m.n_,
                    "mpsim: await_failure is for spare ranks only");
  const int spare_index = rank_ - m.n_;
  const int target =
      spare_index < static_cast<int>(m.spare_target_.size())
          ? m.spare_target_[static_cast<std::size_t>(spare_index)]
          : -1;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(m.plan_.recv_timeout_host_seconds));
  std::unique_lock<std::mutex> lock(m.death_mu_);
  const bool ready = m.death_cv_.wait_until(lock, deadline, [&] {
    return m.stop_requested() || m.run_over_ ||
           (target >= 0 && m.dead_[static_cast<std::size_t>(target)] != 0);
  });
  if (!ready) {
    lock.unlock();
    std::ostringstream os;
    os << "mpsim: spare rank " << rank_ << " timed out after "
       << m.plan_.recv_timeout_host_seconds
       << "s of host time waiting for a failure or run completion";
    throw StatusError(Status::failure(StatusCode::kCommTimeout, os.str()));
  }
  m.check_abort();
  if (target < 0 || m.dead_[static_cast<std::size_t>(target)] == 0) {
    return Takeover{};  // run completed without this spare's crash firing
  }

  // Adopt the dead rank: this Comm *becomes* it. Protocol state (sequence
  // counters, log cursors, live memory) is restored from the checkpoint
  // snapshot, so replayed sends carry the original sequence numbers (peers
  // discard the already-consumed prefix) and replayed receives resume at
  // the right place in the retained logs. With no checkpoint the state is
  // pristine and the replacement replays the rank's life from the start.
  Takeover t;
  t.rank = target;
  t.failed_at = m.death_clock_[static_cast<std::size_t>(target)];
  const Machine::CheckpointSlot& slot =
      m.checkpoints_[static_cast<std::size_t>(target)];
  double checkpoint_clock = 0.0;
  if (slot.has) {
    t.checkpoint = slot.blob;
    send_seq_ = slot.snap.send_seq;
    recv_seq_ = slot.snap.recv_seq;
    consumed_ = slot.snap.consumed;
    mem_live_ = slot.snap.mem_live;
    mem_peak_ = std::max(mem_peak_, mem_live_);
    checkpoint_clock = slot.snap.clock;
  }
  // Fetching the blob back from the buddy is the restore's wire cost.
  const double restore_cost =
      m.model_.alpha +
      static_cast<double>(t.checkpoint.size()) * m.model_.beta;
  clock_ = t.failed_at + restore_cost;
  crash_at_ = std::numeric_limits<double>::infinity();
  rank_ = target;
  m.recovered_.push_back(target);
  m.recovery_overhead_ += (t.failed_at - checkpoint_clock) + restore_cost;
  m.rank_state_[target].store(Machine::kAlive);
  lock.unlock();
  if (!t.checkpoint.empty()) {
    machine_->total_messages_.fetch_add(1);
    machine_->total_bytes_.fetch_add(
        static_cast<count_t>(t.checkpoint.size()));
  }
  return t;
}

FailureView Comm::failure_view() const {
  Machine& m = *machine_;
  std::lock_guard<std::mutex> lock(m.death_mu_);
  FailureView view;
  view.epoch = m.epoch_;
  view.failed = m.failed_;
  view.recovered = m.recovered_;
  return view;
}

void Comm::advance_compute(count_t flops) {
  PARFACT_DCHECK(flops >= 0);
  const double s = static_cast<double>(flops) / machine_->model_.flop_rate;
  tick(s);
  compute_time_ += s;
}

void Comm::advance_bytes(count_t bytes) {
  PARFACT_DCHECK(bytes >= 0);
  tick(static_cast<double>(bytes) / machine_->model_.mem_rate);
}

void Comm::advance_seconds(double s) {
  PARFACT_DCHECK(s >= 0.0);
  tick(s);
}

void Comm::apply_stalls() {
  if (stall_fired_.empty()) return;
  const auto& stalls = machine_->plan_.stalls;
  for (std::size_t i = 0; i < stalls.size(); ++i) {
    if (stall_fired_[i] != 0 || stalls[i].rank != rank_) continue;
    if (clock_ >= stalls[i].at) {
      stall_fired_[i] = 1;
      clock_ += stalls[i].duration;
    }
  }
}

void Comm::maybe_crash() {
  if (clock_ >= crash_at_) {
    // Death lands exactly at the planned instant regardless of how far the
    // crossing advance overshot — keeps the failure schedule deterministic.
    clock_ = crash_at_;
    throw RankCrashed{};
  }
}

void Comm::tick(double seconds) {
  clock_ += seconds;
  apply_stalls();
  maybe_crash();
}

void Comm::memory_add(count_t bytes) {
  mem_live_ += bytes;
  mem_peak_ = std::max(mem_peak_, mem_live_);
}

void Comm::memory_sub(count_t bytes) {
  mem_live_ -= bytes;
  PARFACT_DCHECK(mem_live_ >= 0);
}

RunStats run_spmd(int n_ranks, const MachineModel& model,
                  const std::function<void(Comm&)>& rank_fn) {
  return run_spmd(n_ranks, model, FaultPlan{}, rank_fn);
}

RunStats run_spmd(int n_ranks, const MachineModel& model,
                  const FaultPlan& faults,
                  const std::function<void(Comm&)>& rank_fn) {
  PARFACT_CHECK(n_ranks >= 1);
  validate_plan(faults, n_ranks);
  Machine machine(n_ranks, model, faults);
  const int n_total = n_ranks + faults.spare_ranks;

  // Deterministic spare assignment: the k-th crash to fire (sorted by
  // (at, rank); a rank dies at most once, at its earliest entry) is adopted
  // by the k-th spare. The whole recovery schedule is thereby a pure
  // function of the plan — no races decide who rescues whom.
  {
    std::vector<FaultPlan::Crash> order = faults.crashes;
    std::sort(order.begin(), order.end(),
              [](const FaultPlan::Crash& a, const FaultPlan::Crash& b) {
                return a.at < b.at || (a.at == b.at && a.rank < b.rank);
              });
    std::vector<char> seen(static_cast<std::size_t>(n_ranks), 0);
    int next_spare = 0;
    for (const FaultPlan::Crash& c : order) {
      if (seen[static_cast<std::size_t>(c.rank)] != 0) continue;
      seen[static_cast<std::size_t>(c.rank)] = 1;
      if (next_spare < faults.spare_ranks) {
        machine.replacement_[static_cast<std::size_t>(c.rank)] = next_spare;
        machine.spare_target_[static_cast<std::size_t>(next_spare)] = c.rank;
        ++next_spare;
      }
    }
  }

  std::vector<Comm> comms;
  comms.reserve(static_cast<std::size_t>(n_total));
  for (int r = 0; r < n_total; ++r) {
    comms.push_back(Comm(&machine, r));
    comms.back().stall_fired_.assign(faults.stalls.size(), 0);
    comms.back().flip_fired_.assign(faults.bit_flips.size(), 0);
    double at = std::numeric_limits<double>::infinity();
    if (r < n_ranks) {
      for (const FaultPlan::Crash& c : faults.crashes) {
        if (c.rank == r) at = std::min(at, c.at);
      }
    }
    comms.back().crash_at_ = at;
  }
  machine.programs_remaining_ = n_ranks;

  // Wall-clock watchdog: if the whole run overstays its host-seconds budget
  // (a livelocked protocol, a lost wakeup), trip the machine so every blocked
  // rank raises kCommTimeout instead of hanging the process. The watchdog is
  // a plain wait_for on a flagged cv — it costs nothing unless it fires.
  std::mutex watchdog_mu;
  std::condition_variable watchdog_cv;
  bool run_finished = false;
  std::thread watchdog;
  if (faults.run_timeout_host_seconds > 0.0) {
    watchdog = std::thread([&] {
      std::unique_lock<std::mutex> lock(watchdog_mu);
      const bool finished = watchdog_cv.wait_for(
          lock, std::chrono::duration<double>(faults.run_timeout_host_seconds),
          [&] { return run_finished; });
      if (!finished) machine.trigger_timeout();
    });
  }

  std::mutex err_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_total));
  for (int r = 0; r < n_total; ++r) {
    threads.emplace_back([&, r] {
      Comm& comm = comms[r];
      try {
        comm.maybe_crash();  // a Crash{rank, at: 0} fires before any work
        rank_fn(comm);
        // A base rank finishing, or a spare that adopted one (its rank()
        // rebound below n_ranks), retires one of the n_ranks programs.
        if (comm.rank_ < n_ranks) machine.note_program_done();
      } catch (const RankCrashed&) {
        const bool recoverable = machine.note_death(comm.rank_, comm.clock_);
        if (!recoverable) machine.note_program_done();  // program is lost
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        machine.abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu);
      run_finished = true;
    }
    watchdog_cv.notify_all();
    watchdog.join();
  }
  if (machine.timed_out_.load() && !first_error) {
    std::ostringstream os;
    os << "mpsim: run exceeded its wall-clock budget of "
       << faults.run_timeout_host_seconds << " host seconds (livelock guard)";
    throw StatusError(Status::failure(StatusCode::kCommTimeout, os.str()));
  }
  if (first_error) std::rethrow_exception(first_error);
  if (!machine.lost_.empty()) {
    // Every surviving program finished without touching the dead rank(s);
    // the run still must not pretend the factorization is whole.
    std::ostringstream os;
    os << "mpsim: rank(s) " << machine.lost_ranks_string()
       << " crashed and no spare took over";
    throw StatusError(Status::failure(StatusCode::kRankFailure, os.str()));
  }

  RunStats stats;
  stats.rank_time.assign(static_cast<std::size_t>(n_ranks), 0.0);
  stats.rank_compute.assign(static_cast<std::size_t>(n_ranks), 0.0);
  stats.rank_peak_bytes.assign(static_cast<std::size_t>(n_ranks), 0);
  stats.wait_any_calls.assign(static_cast<std::size_t>(n_ranks), 0);
  for (const Comm& c : comms) {
    // A crashed incarnation and its replacement merge into one rank slot:
    // the rank's finish time is the replacement's, compute adds up (the
    // replayed interval really was executed twice in virtual time), and
    // peak memory takes the worse of the two. Idle spares report nothing.
    if (c.rank_ >= n_ranks) continue;
    const auto slot = static_cast<std::size_t>(c.rank_);
    stats.rank_time[slot] = std::max(stats.rank_time[slot], c.clock_);
    stats.rank_compute[slot] += c.compute_time_;
    stats.idle_wait_seconds += c.idle_wait_;
    stats.rank_peak_bytes[slot] =
        std::max(stats.rank_peak_bytes[slot], c.mem_peak_);
    stats.wait_any_calls[slot] += c.wait_any_calls_;
    stats.messages_completed_out_of_order += c.ooo_completions_;
  }
  for (double t : stats.rank_time) stats.makespan = std::max(stats.makespan, t);
  double rank_seconds = 0.0;
  for (double t : stats.rank_time) rank_seconds += t;
  stats.overlap_efficiency =
      rank_seconds > 0.0
          ? std::max(0.0, 1.0 - stats.idle_wait_seconds / rank_seconds)
          : 1.0;
  stats.max_in_flight_messages = machine.max_in_flight_.load();
  stats.total_messages = machine.total_messages_.load();
  stats.total_bytes = machine.total_bytes_.load();
  stats.total_retransmits = machine.total_retransmits_.load();
  stats.total_dropped = machine.total_dropped_.load();
  stats.total_bit_flips = machine.total_bit_flips_.load();
  stats.total_corrupt_discarded = machine.total_corrupt_discarded_.load();
  stats.rank_crashes = static_cast<count_t>(machine.failed_.size());
  stats.ranks_recovered = static_cast<count_t>(machine.recovered_.size());
  stats.checkpoints_stored = machine.checkpoints_stored_.load();
  stats.checkpoint_bytes = machine.checkpoint_bytes_.load();
  stats.recovery_overhead_seconds = machine.recovery_overhead_;
  return stats;
}

}  // namespace parfact::mpsim
