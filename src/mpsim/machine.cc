#include "mpsim/machine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "support/error.h"
#include "support/status.h"

namespace parfact::mpsim {

namespace {

int ceil_log2(int n) {
  int l = 0;
  while ((1 << l) < n) ++l;
  return l;
}

/// splitmix64 finalizer — the scrambler behind the fault dice.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic uniform [0, 1) draw for one fault decision. Purely a
/// function of its arguments: host scheduling cannot perturb the dice.
double fault_roll(std::uint64_t seed, int src, int dest, int tag,
                  std::uint64_t seq, int draw) {
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                 << 32 |
                 static_cast<std::uint32_t>(dest)));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  h = mix64(h ^ seq);
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(draw)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Prefix carried by every point-to-point message when faults are active.
struct WireHeader {
  std::uint64_t seq;
};

}  // namespace

class Machine {
 public:
  Machine(int n, const MachineModel& model, const FaultPlan& plan)
      : model_(model),
        plan_(plan),
        faults_(plan.active()),
        n_(n),
        boxes_(static_cast<std::size_t>(n)) {}

  const MachineModel model_;
  const FaultPlan plan_;
  const bool faults_;
  const int n_;

  struct Message {
    double arrival;
    std::vector<std::byte> data;
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<Message>> queues;
  };
  std::vector<Mailbox> boxes_;

  // Collective rendezvous state (all collectives are full-rendezvous; MPI
  // programs must call them in the same order on every rank anyway).
  std::mutex coll_mu_;
  std::condition_variable coll_cv_;
  std::uint64_t coll_gen_ = 0;
  int coll_arrived_ = 0;
  double coll_sum_ = 0.0;
  double coll_max_ = 0.0;
  double coll_clock_ = 0.0;
  std::vector<std::byte> coll_payload_;
  double coll_result_sum_ = 0.0;
  double coll_result_max_ = 0.0;
  double coll_result_clock_ = 0.0;
  std::vector<std::byte> coll_result_payload_;

  std::atomic<count_t> total_messages_{0};
  std::atomic<count_t> total_bytes_{0};
  std::atomic<count_t> total_retransmits_{0};
  std::atomic<count_t> total_dropped_{0};
  std::atomic<bool> aborted_{false};

  void abort_all() {
    aborted_.store(true);
    for (auto& box : boxes_) {
      std::lock_guard<std::mutex> lock(box.mu);
      box.cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(coll_mu_);
      coll_cv_.notify_all();
    }
  }

  void check_abort() const {
    if (aborted_.load()) {
      throw Error("mpsim: run aborted because another rank failed");
    }
  }
};

int Comm::size() const { return machine_->n_; }

const MachineModel& Comm::model() const { return machine_->model_; }

void Comm::send(int dest, int tag, const void* data, std::size_t bytes) {
  PARFACT_CHECK(dest >= 0 && dest < machine_->n_);
  machine_->check_abort();
  // A self-send is a local memcpy: no latency, no link traffic.
  const bool local = dest == rank_;
  if (!machine_->faults_) {
    const double arrival =
        local ? clock_
              : clock_ + machine_->model_.alpha +
                    static_cast<double>(bytes) * machine_->model_.beta;
    if (!local) clock_ += machine_->model_.alpha;  // sender-side overhead
    Machine::Message msg;
    msg.arrival = arrival;
    msg.data.resize(bytes);
    if (bytes > 0) std::memcpy(msg.data.data(), data, bytes);
    auto& box = machine_->boxes_[dest];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.queues[{rank_, tag}].push_back(std::move(msg));
    }
    box.cv.notify_all();
    if (!local) {
      machine_->total_messages_.fetch_add(1);
      machine_->total_bytes_.fetch_add(static_cast<count_t>(bytes));
    }
    return;
  }

  // Fault-injection path. All fault decisions for this message are resolved
  // here, synchronously: the in-process machine lets the sender know each
  // copy's fate, so "retransmit until a copy gets through" needs no ack
  // round-trip that could deadlock two ranks sending to each other. The
  // receiver's sequence check discards everything but the first accepted
  // copy, so faults change virtual time only, never payload or order.
  const FaultPlan& plan = machine_->plan_;
  const std::uint64_t seq = send_seq_[{dest, tag}]++;
  std::vector<std::byte> wire(sizeof(WireHeader) + bytes);
  const WireHeader header{seq};
  std::memcpy(wire.data(), &header, sizeof header);
  if (bytes > 0) std::memcpy(wire.data() + sizeof header, data, bytes);
  auto deliver = [&](double arrival) {
    Machine::Message msg;
    msg.arrival = arrival;
    msg.data = wire;  // copy — duplicates may deliver the same bytes again
    auto& box = machine_->boxes_[dest];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.queues[{rank_, tag}].push_back(std::move(msg));
    }
    box.cv.notify_all();
    if (!local) {
      machine_->total_messages_.fetch_add(1);
      machine_->total_bytes_.fetch_add(static_cast<count_t>(wire.size()));
    }
  };
  if (local) {
    // The loopback "link" never faults: a rank cannot lose a memcpy.
    deliver(clock_);
    return;
  }
  bool delivered = false;
  for (int attempt = 0; attempt <= plan.max_retries; ++attempt) {
    if (attempt > 0) {
      // Bounded exponential backoff, charged to virtual time.
      tick(plan.retry_backoff_seconds *
           static_cast<double>(1ull << std::min(attempt - 1, 20)));
      machine_->total_retransmits_.fetch_add(1);
    }
    double arrival = clock_ + machine_->model_.alpha +
                     static_cast<double>(wire.size()) * machine_->model_.beta;
    tick(machine_->model_.alpha);  // each copy pays the sender-side overhead
    auto roll = [&](int draw) {
      return fault_roll(plan.seed, rank_, dest, tag, seq, attempt * 4 + draw);
    };
    if (roll(0) < plan.drop_rate) {
      machine_->total_dropped_.fetch_add(1);
      continue;  // copy lost on the link — back off and retransmit
    }
    if (roll(1) < plan.delay_rate) arrival += plan.delay_seconds;
    deliver(arrival);
    delivered = true;
    if (roll(2) < plan.duplicate_rate) {
      deliver(arrival + machine_->model_.alpha);  // link-duplicated copy
    }
    if (roll(3) < plan.ack_drop_rate) continue;  // ack lost: spurious resend
    break;
  }
  if (!delivered) {
    std::ostringstream os;
    os << "mpsim: message " << rank_ << " -> " << dest << " (tag " << tag
       << ", seq " << seq << ") lost " << plan.max_retries + 1
       << " consecutive copies; giving up";
    throw StatusError(Status::failure(StatusCode::kCommFailure, os.str()));
  }
}

std::vector<std::byte> Comm::recv(int source, int tag) {
  PARFACT_CHECK(source >= 0 && source < machine_->n_);
  auto& box = machine_->boxes_[rank_];
  const auto key = std::make_pair(source, tag);
  if (!machine_->faults_) {
    std::unique_lock<std::mutex> lock(box.mu);
    box.cv.wait(lock, [&] {
      if (machine_->aborted_.load()) return true;
      const auto it = box.queues.find(key);
      return it != box.queues.end() && !it->second.empty();
    });
    machine_->check_abort();
    auto& q = box.queues[key];
    Machine::Message msg = std::move(q.front());
    q.pop_front();
    lock.unlock();
    clock_ = std::max(clock_, msg.arrival);
    return std::move(msg.data);
  }

  // Fault path: strip the wire header, accept exactly the next expected
  // sequence number, silently discard stale duplicates, and bound the host
  // wait so an injected fault can never turn into a hang.
  const FaultPlan& plan = machine_->plan_;
  std::uint64_t& expected = recv_seq_[key];
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(plan.recv_timeout_host_seconds));
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    const bool ready = box.cv.wait_until(lock, deadline, [&] {
      if (machine_->aborted_.load()) return true;
      const auto it = box.queues.find(key);
      return it != box.queues.end() && !it->second.empty();
    });
    if (!ready) {
      lock.unlock();
      std::ostringstream os;
      os << "mpsim: rank " << rank_ << " timed out after "
         << plan.recv_timeout_host_seconds
         << "s of host time waiting for (source " << source << ", tag "
         << tag << "), expected seq " << expected;
      throw StatusError(Status::failure(StatusCode::kCommTimeout, os.str()));
    }
    machine_->check_abort();
    auto& q = box.queues[key];
    Machine::Message msg = std::move(q.front());
    q.pop_front();
    PARFACT_CHECK(msg.data.size() >= sizeof(WireHeader));
    WireHeader header;
    std::memcpy(&header, msg.data.data(), sizeof header);
    if (header.seq != expected) {
      // Sends resolve all copies of seq k before starting seq k+1 and the
      // per-link queue is FIFO, so a mismatch can only be a stale duplicate.
      PARFACT_CHECK_MSG(header.seq < expected,
                        "mpsim: out-of-order sequence number");
      continue;  // duplicate of an already-accepted copy
    }
    ++expected;
    lock.unlock();
    clock_ = std::max(clock_, msg.arrival);
    apply_stalls();
    std::vector<std::byte> payload(msg.data.size() - sizeof header);
    if (!payload.empty()) {
      std::memcpy(payload.data(), msg.data.data() + sizeof header,
                  payload.size());
    }
    return payload;
  }
}

namespace {

/// Shared rendezvous: combines (clock, sum, max, optional payload from
/// `payload_rank`) across all ranks; returns after everyone arrived.
struct CollResult {
  double clock;
  double sum;
  double max;
};

}  // namespace

void Comm::barrier() {
  (void)allreduce_sum(0.0);
}

double Comm::allreduce_sum(double v) {
  Machine& m = *machine_;
  std::unique_lock<std::mutex> lock(m.coll_mu_);
  m.check_abort();
  const std::uint64_t my_gen = m.coll_gen_;
  if (m.coll_arrived_ == 0) {
    m.coll_sum_ = 0.0;
    m.coll_max_ = 0.0;
    m.coll_clock_ = 0.0;
  }
  m.coll_sum_ += v;
  m.coll_max_ = std::max(m.coll_max_, v);
  m.coll_clock_ = std::max(m.coll_clock_, clock_);
  if (++m.coll_arrived_ == m.n_) {
    m.coll_result_sum_ = m.coll_sum_;
    m.coll_result_max_ = m.coll_max_;
    m.coll_result_clock_ = m.coll_clock_;
    m.coll_arrived_ = 0;
    ++m.coll_gen_;
    m.coll_cv_.notify_all();
  } else {
    m.coll_cv_.wait(lock, [&] {
      return m.aborted_.load() || m.coll_gen_ != my_gen;
    });
    m.check_abort();
  }
  // Binomial-tree reduce + broadcast of one double.
  const double cost = 2.0 * ceil_log2(m.n_) *
                      (m.model_.alpha + 8.0 * m.model_.beta);
  clock_ = m.coll_result_clock_ + cost;
  return m.coll_result_sum_;
}

double Comm::allreduce_max(double v) {
  // Same rendezvous; both aggregates are always combined, so piggyback.
  Machine& m = *machine_;
  std::unique_lock<std::mutex> lock(m.coll_mu_);
  m.check_abort();
  const std::uint64_t my_gen = m.coll_gen_;
  if (m.coll_arrived_ == 0) {
    m.coll_sum_ = 0.0;
    m.coll_max_ = -std::numeric_limits<double>::infinity();
    m.coll_clock_ = 0.0;
  }
  m.coll_sum_ += v;
  m.coll_max_ = std::max(m.coll_max_, v);
  m.coll_clock_ = std::max(m.coll_clock_, clock_);
  if (++m.coll_arrived_ == m.n_) {
    m.coll_result_sum_ = m.coll_sum_;
    m.coll_result_max_ = m.coll_max_;
    m.coll_result_clock_ = m.coll_clock_;
    m.coll_arrived_ = 0;
    ++m.coll_gen_;
    m.coll_cv_.notify_all();
  } else {
    m.coll_cv_.wait(lock, [&] {
      return m.aborted_.load() || m.coll_gen_ != my_gen;
    });
    m.check_abort();
  }
  const double cost = 2.0 * ceil_log2(m.n_) *
                      (m.model_.alpha + 8.0 * m.model_.beta);
  clock_ = m.coll_result_clock_ + cost;
  return m.coll_result_max_;
}

void Comm::bcast(int root, std::vector<std::byte>* data) {
  PARFACT_CHECK(root >= 0 && root < machine_->n_);
  Machine& m = *machine_;
  std::unique_lock<std::mutex> lock(m.coll_mu_);
  m.check_abort();
  const std::uint64_t my_gen = m.coll_gen_;
  if (m.coll_arrived_ == 0) m.coll_clock_ = 0.0;
  if (rank_ == root) m.coll_payload_ = *data;
  m.coll_clock_ = std::max(m.coll_clock_, clock_);
  if (++m.coll_arrived_ == m.n_) {
    m.coll_result_payload_ = std::move(m.coll_payload_);
    m.coll_payload_.clear();
    m.coll_result_clock_ = m.coll_clock_;
    m.coll_arrived_ = 0;
    ++m.coll_gen_;
    m.coll_cv_.notify_all();
  } else {
    m.coll_cv_.wait(lock, [&] {
      return m.aborted_.load() || m.coll_gen_ != my_gen;
    });
    m.check_abort();
  }
  if (rank_ != root) *data = m.coll_result_payload_;
  const double bytes = static_cast<double>(data->size());
  const double cost = ceil_log2(m.n_) *
                      (m.model_.alpha + bytes * m.model_.beta);
  clock_ = m.coll_result_clock_ + cost;
}

void Comm::advance_compute(count_t flops) {
  PARFACT_DCHECK(flops >= 0);
  const double s = static_cast<double>(flops) / machine_->model_.flop_rate;
  tick(s);
  compute_time_ += s;
}

void Comm::advance_bytes(count_t bytes) {
  PARFACT_DCHECK(bytes >= 0);
  tick(static_cast<double>(bytes) / machine_->model_.mem_rate);
}

void Comm::advance_seconds(double s) {
  PARFACT_DCHECK(s >= 0.0);
  tick(s);
}

void Comm::apply_stalls() {
  if (stall_fired_.empty()) return;
  const auto& stalls = machine_->plan_.stalls;
  for (std::size_t i = 0; i < stalls.size(); ++i) {
    if (stall_fired_[i] != 0 || stalls[i].rank != rank_) continue;
    if (clock_ >= stalls[i].at) {
      stall_fired_[i] = 1;
      clock_ += stalls[i].duration;
    }
  }
}

void Comm::memory_add(count_t bytes) {
  mem_live_ += bytes;
  mem_peak_ = std::max(mem_peak_, mem_live_);
}

void Comm::memory_sub(count_t bytes) {
  mem_live_ -= bytes;
  PARFACT_DCHECK(mem_live_ >= 0);
}

RunStats run_spmd(int n_ranks, const MachineModel& model,
                  const std::function<void(Comm&)>& rank_fn) {
  return run_spmd(n_ranks, model, FaultPlan{}, rank_fn);
}

RunStats run_spmd(int n_ranks, const MachineModel& model,
                  const FaultPlan& faults,
                  const std::function<void(Comm&)>& rank_fn) {
  PARFACT_CHECK(n_ranks >= 1);
  PARFACT_CHECK(faults.max_retries >= 0);
  Machine machine(n_ranks, model, faults);
  std::vector<Comm> comms;
  comms.reserve(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    comms.push_back(Comm(&machine, r));
    comms.back().stall_fired_.assign(faults.stalls.size(), 0);
  }

  std::mutex err_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        rank_fn(comms[r]);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        machine.abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  RunStats stats;
  stats.rank_time.reserve(comms.size());
  stats.rank_compute.reserve(comms.size());
  stats.rank_peak_bytes.reserve(comms.size());
  for (const Comm& c : comms) {
    stats.rank_time.push_back(c.clock_);
    stats.rank_compute.push_back(c.compute_time_);
    stats.rank_peak_bytes.push_back(c.mem_peak_);
    stats.makespan = std::max(stats.makespan, c.clock_);
  }
  stats.total_messages = machine.total_messages_.load();
  stats.total_bytes = machine.total_bytes_.load();
  stats.total_retransmits = machine.total_retransmits_.load();
  stats.total_dropped = machine.total_dropped_.load();
  return stats;
}

}  // namespace parfact::mpsim
