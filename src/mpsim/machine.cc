#include "mpsim/machine.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "support/error.h"

namespace parfact::mpsim {

namespace {

int ceil_log2(int n) {
  int l = 0;
  while ((1 << l) < n) ++l;
  return l;
}

}  // namespace

class Machine {
 public:
  Machine(int n, const MachineModel& model)
      : model_(model), n_(n), boxes_(static_cast<std::size_t>(n)) {}

  const MachineModel model_;
  const int n_;

  struct Message {
    double arrival;
    std::vector<std::byte> data;
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<Message>> queues;
  };
  std::vector<Mailbox> boxes_;

  // Collective rendezvous state (all collectives are full-rendezvous; MPI
  // programs must call them in the same order on every rank anyway).
  std::mutex coll_mu_;
  std::condition_variable coll_cv_;
  std::uint64_t coll_gen_ = 0;
  int coll_arrived_ = 0;
  double coll_sum_ = 0.0;
  double coll_max_ = 0.0;
  double coll_clock_ = 0.0;
  std::vector<std::byte> coll_payload_;
  double coll_result_sum_ = 0.0;
  double coll_result_max_ = 0.0;
  double coll_result_clock_ = 0.0;
  std::vector<std::byte> coll_result_payload_;

  std::atomic<count_t> total_messages_{0};
  std::atomic<count_t> total_bytes_{0};
  std::atomic<bool> aborted_{false};

  void abort_all() {
    aborted_.store(true);
    for (auto& box : boxes_) {
      std::lock_guard<std::mutex> lock(box.mu);
      box.cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(coll_mu_);
      coll_cv_.notify_all();
    }
  }

  void check_abort() const {
    if (aborted_.load()) {
      throw Error("mpsim: run aborted because another rank failed");
    }
  }
};

int Comm::size() const { return machine_->n_; }

const MachineModel& Comm::model() const { return machine_->model_; }

void Comm::send(int dest, int tag, const void* data, std::size_t bytes) {
  PARFACT_CHECK(dest >= 0 && dest < machine_->n_);
  machine_->check_abort();
  // A self-send is a local memcpy: no latency, no link traffic.
  const bool local = dest == rank_;
  const double arrival =
      local ? clock_
            : clock_ + machine_->model_.alpha +
                  static_cast<double>(bytes) * machine_->model_.beta;
  if (!local) clock_ += machine_->model_.alpha;  // sender-side overhead
  Machine::Message msg;
  msg.arrival = arrival;
  msg.data.resize(bytes);
  if (bytes > 0) std::memcpy(msg.data.data(), data, bytes);
  auto& box = machine_->boxes_[dest];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queues[{rank_, tag}].push_back(std::move(msg));
  }
  box.cv.notify_all();
  if (!local) {
    machine_->total_messages_.fetch_add(1);
    machine_->total_bytes_.fetch_add(static_cast<count_t>(bytes));
  }
}

std::vector<std::byte> Comm::recv(int source, int tag) {
  PARFACT_CHECK(source >= 0 && source < machine_->n_);
  auto& box = machine_->boxes_[rank_];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto key = std::make_pair(source, tag);
  box.cv.wait(lock, [&] {
    if (machine_->aborted_.load()) return true;
    const auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  machine_->check_abort();
  auto& q = box.queues[key];
  Machine::Message msg = std::move(q.front());
  q.pop_front();
  lock.unlock();
  clock_ = std::max(clock_, msg.arrival);
  return std::move(msg.data);
}

namespace {

/// Shared rendezvous: combines (clock, sum, max, optional payload from
/// `payload_rank`) across all ranks; returns after everyone arrived.
struct CollResult {
  double clock;
  double sum;
  double max;
};

}  // namespace

void Comm::barrier() {
  (void)allreduce_sum(0.0);
}

double Comm::allreduce_sum(double v) {
  Machine& m = *machine_;
  std::unique_lock<std::mutex> lock(m.coll_mu_);
  m.check_abort();
  const std::uint64_t my_gen = m.coll_gen_;
  if (m.coll_arrived_ == 0) {
    m.coll_sum_ = 0.0;
    m.coll_max_ = 0.0;
    m.coll_clock_ = 0.0;
  }
  m.coll_sum_ += v;
  m.coll_max_ = std::max(m.coll_max_, v);
  m.coll_clock_ = std::max(m.coll_clock_, clock_);
  if (++m.coll_arrived_ == m.n_) {
    m.coll_result_sum_ = m.coll_sum_;
    m.coll_result_max_ = m.coll_max_;
    m.coll_result_clock_ = m.coll_clock_;
    m.coll_arrived_ = 0;
    ++m.coll_gen_;
    m.coll_cv_.notify_all();
  } else {
    m.coll_cv_.wait(lock, [&] {
      return m.aborted_.load() || m.coll_gen_ != my_gen;
    });
    m.check_abort();
  }
  // Binomial-tree reduce + broadcast of one double.
  const double cost = 2.0 * ceil_log2(m.n_) *
                      (m.model_.alpha + 8.0 * m.model_.beta);
  clock_ = m.coll_result_clock_ + cost;
  return m.coll_result_sum_;
}

double Comm::allreduce_max(double v) {
  // Same rendezvous; both aggregates are always combined, so piggyback.
  Machine& m = *machine_;
  std::unique_lock<std::mutex> lock(m.coll_mu_);
  m.check_abort();
  const std::uint64_t my_gen = m.coll_gen_;
  if (m.coll_arrived_ == 0) {
    m.coll_sum_ = 0.0;
    m.coll_max_ = -std::numeric_limits<double>::infinity();
    m.coll_clock_ = 0.0;
  }
  m.coll_sum_ += v;
  m.coll_max_ = std::max(m.coll_max_, v);
  m.coll_clock_ = std::max(m.coll_clock_, clock_);
  if (++m.coll_arrived_ == m.n_) {
    m.coll_result_sum_ = m.coll_sum_;
    m.coll_result_max_ = m.coll_max_;
    m.coll_result_clock_ = m.coll_clock_;
    m.coll_arrived_ = 0;
    ++m.coll_gen_;
    m.coll_cv_.notify_all();
  } else {
    m.coll_cv_.wait(lock, [&] {
      return m.aborted_.load() || m.coll_gen_ != my_gen;
    });
    m.check_abort();
  }
  const double cost = 2.0 * ceil_log2(m.n_) *
                      (m.model_.alpha + 8.0 * m.model_.beta);
  clock_ = m.coll_result_clock_ + cost;
  return m.coll_result_max_;
}

void Comm::bcast(int root, std::vector<std::byte>* data) {
  PARFACT_CHECK(root >= 0 && root < machine_->n_);
  Machine& m = *machine_;
  std::unique_lock<std::mutex> lock(m.coll_mu_);
  m.check_abort();
  const std::uint64_t my_gen = m.coll_gen_;
  if (m.coll_arrived_ == 0) m.coll_clock_ = 0.0;
  if (rank_ == root) m.coll_payload_ = *data;
  m.coll_clock_ = std::max(m.coll_clock_, clock_);
  if (++m.coll_arrived_ == m.n_) {
    m.coll_result_payload_ = std::move(m.coll_payload_);
    m.coll_payload_.clear();
    m.coll_result_clock_ = m.coll_clock_;
    m.coll_arrived_ = 0;
    ++m.coll_gen_;
    m.coll_cv_.notify_all();
  } else {
    m.coll_cv_.wait(lock, [&] {
      return m.aborted_.load() || m.coll_gen_ != my_gen;
    });
    m.check_abort();
  }
  if (rank_ != root) *data = m.coll_result_payload_;
  const double bytes = static_cast<double>(data->size());
  const double cost = ceil_log2(m.n_) *
                      (m.model_.alpha + bytes * m.model_.beta);
  clock_ = m.coll_result_clock_ + cost;
}

void Comm::advance_compute(count_t flops) {
  PARFACT_DCHECK(flops >= 0);
  const double s = static_cast<double>(flops) / machine_->model_.flop_rate;
  clock_ += s;
  compute_time_ += s;
}

void Comm::advance_bytes(count_t bytes) {
  PARFACT_DCHECK(bytes >= 0);
  clock_ += static_cast<double>(bytes) / machine_->model_.mem_rate;
}

void Comm::advance_seconds(double s) {
  PARFACT_DCHECK(s >= 0.0);
  clock_ += s;
}

void Comm::memory_add(count_t bytes) {
  mem_live_ += bytes;
  mem_peak_ = std::max(mem_peak_, mem_live_);
}

void Comm::memory_sub(count_t bytes) {
  mem_live_ -= bytes;
  PARFACT_DCHECK(mem_live_ >= 0);
}

RunStats run_spmd(int n_ranks, const MachineModel& model,
                  const std::function<void(Comm&)>& rank_fn) {
  PARFACT_CHECK(n_ranks >= 1);
  Machine machine(n_ranks, model);
  std::vector<Comm> comms;
  comms.reserve(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) comms.push_back(Comm(&machine, r));

  std::mutex err_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        rank_fn(comms[r]);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        machine.abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  RunStats stats;
  stats.rank_time.reserve(comms.size());
  stats.rank_compute.reserve(comms.size());
  stats.rank_peak_bytes.reserve(comms.size());
  for (const Comm& c : comms) {
    stats.rank_time.push_back(c.clock_);
    stats.rank_compute.push_back(c.compute_time_);
    stats.rank_peak_bytes.push_back(c.mem_peak_);
    stats.makespan = std::max(stats.makespan, c.clock_);
  }
  stats.total_messages = machine.total_messages_.load();
  stats.total_bytes = machine.total_bytes_.load();
  return stats;
}

}  // namespace parfact::mpsim
