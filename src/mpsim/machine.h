// mpsim: an in-process message-passing machine with virtual time.
//
// This is the substitute for the paper's MPI cluster (see DESIGN.md §2).
// Rank programs are ordinary C++ functions running on one thread per rank and
// communicating through the MPI-like `Comm` handle: tagged point-to-point
// send/recv plus the collectives the solver needs. Semantics follow the
// message-passing model of the LLNL MPI tutorial: explicit cooperative
// transfers, blocking receives matched by (source, tag) in FIFO order.
//
// Virtual time: every rank carries a logical clock. Local computation
// advances it through Comm::advance_compute (flops / machine flop rate) and
// advance_bytes (bytes / memory rate); a message costs the sender `alpha`
// and arrives at `send_clock + alpha + bytes * beta`; a receive completes at
// max(receiver clock, arrival). Collectives use binomial-tree costs. The
// resulting makespan (max final clock) is the quantity every scaling
// experiment reports — it is deterministic and independent of how the host
// OS schedules the rank threads, which is what makes thousand-rank scaling
// studies meaningful on a one-core machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <sstream>
#include <vector>

#include "support/status.h"
#include "support/types.h"

namespace parfact::mpsim {

/// Cluster model parameters (alpha-beta-gamma). Defaults approximate a
/// commodity cluster node; experiments calibrate flop_rate from the measured
/// GEMM rate (dense::measure_gemm_rate) so shapes stay hardware-honest.
struct MachineModel {
  double flop_rate = 2.0e9;       ///< flop/s per rank
  double alpha = 5.0e-6;          ///< per-message latency, seconds
  double beta = 1.0e-9;           ///< seconds per byte on a link
  double mem_rate = 8.0e9;        ///< bytes/s for local assembly traffic
};

/// Aggregate statistics of one SPMD run.
struct RunStats {
  double makespan = 0.0;               ///< max final virtual clock
  std::vector<double> rank_time;       ///< final clock per rank
  std::vector<double> rank_compute;    ///< virtual seconds in compute per rank
  /// Σ over ranks of virtual time spent blocked on point-to-point arrivals
  /// (recv and Request::wait advancing the clock to a later arrival). The
  /// overlap experiments report this: a lookahead schedule shrinks it.
  double idle_wait_seconds = 0.0;
  /// High-water mark of messages delivered but not yet consumed, machine
  /// wide. Approximate under crash replay (retained logs re-deliver).
  count_t max_in_flight_messages = 0;
  /// 1 − idle_wait / Σ rank_time: fraction of rank-seconds not spent
  /// blocked on message arrival (1.0 when there is no communication).
  double overlap_efficiency = 1.0;
  count_t total_messages = 0;
  count_t total_bytes = 0;
  /// wait_any pool diagnostics (the fan-both extend-add streams): recv
  /// completions whose virtual arrival precedes that of an earlier-posted
  /// request in the same pool. Computed from the deterministic arrival
  /// times when a pool drains, so the count is a pure function of the
  /// schedule — not of which host thread won a race.
  count_t messages_completed_out_of_order = 0;
  /// Comm::wait_any invocations per rank (each call completes exactly one
  /// request, so this is also the pooled-completion count per rank).
  std::vector<count_t> wait_any_calls;
  std::vector<count_t> rank_peak_bytes;  ///< peak app-reported memory
  count_t total_retransmits = 0;  ///< fault-injected extra transmissions
  count_t total_dropped = 0;      ///< fault-injected message losses
  count_t total_bit_flips = 0;    ///< injected bit flips that struck
  count_t total_corrupt_discarded = 0;  ///< wire copies failing checksum
  count_t rank_crashes = 0;       ///< injected rank crashes that fired
  count_t ranks_recovered = 0;    ///< crashed ranks taken over by a spare
  count_t checkpoints_stored = 0; ///< buddy checkpoints accepted
  count_t checkpoint_bytes = 0;   ///< total checkpoint payload shipped
  /// Σ over recoveries of (death − last checkpoint clock + restore cost):
  /// the virtual time of re-executed lost work plus state transfer.
  double recovery_overhead_seconds = 0.0;
};

/// Deterministic fault-injection plan for one SPMD run. All randomness is a
/// pure hash of (seed, src, dest, tag, seq, attempt), so two runs with the
/// same plan inject byte-identical faults regardless of host scheduling —
/// which is what lets tests assert "faulty run == fault-free run, bitwise".
///
/// When the plan is active every point-to-point message carries a per-link
/// (source, tag) sequence number. The sender resolves faults at send time
/// (the in-process machine lets it know each transmission's fate): a
/// dropped copy is retransmitted after an exponential virtual-time backoff,
/// a lost ack causes a spurious retransmission, and the receiver discards
/// any copy whose sequence number it has already accepted. Payload content
/// and per-link delivery order are therefore exactly those of the
/// fault-free run — faults cost only virtual time — or, if `max_retries`
/// consecutive copies of one message are dropped, the send throws
/// StatusError(kCommFailure). Collectives are full-rendezvous in-memory
/// exchanges and are not subject to message faults.
///
/// Crash model: a `Crash{rank, at}` entry kills rank `rank` the moment its
/// virtual clock reaches `at` (mid-front, mid-panel, wherever that lands).
/// With `spare_ranks > 0`, run_spmd launches that many extra standby ranks;
/// the k-th spare is statically bound to the k-th crash entry (sorted by
/// (at, rank)), which makes the whole failure/recovery schedule a pure
/// function of the plan. A crashed rank with a designated spare is
/// *recoverable*: sends to it keep landing in its (retained) message log
/// for the replacement to replay, and receives from it block until the
/// replacement re-produces the stream. A crash with no spare left is
/// *unrecoverable*: sends to and receives from the dead rank raise
/// StatusError(kRankFailure), and crash-aware collectives fail the same way
/// instead of deadlocking.
struct FaultPlan {
  std::uint64_t seed = 1;          ///< dice seed; same seed → same faults
  double drop_rate = 0.0;          ///< P(message copy is lost on the link)
  double duplicate_rate = 0.0;     ///< P(link delivers an extra copy)
  double delay_rate = 0.0;         ///< P(copy arrives `delay_seconds` late)
  double delay_seconds = 1.0e-3;   ///< extra virtual latency when delayed
  double ack_drop_rate = 0.0;      ///< P(delivered but sender retransmits)
  int max_retries = 8;             ///< attempts per message before failing
  double retry_backoff_seconds = 1.0e-4;  ///< first backoff, doubles after
  double recv_timeout_host_seconds = 30.0;  ///< hang safety net (host time)
  /// Rank `rank` freezes for `duration` virtual seconds the first time its
  /// clock reaches `at` (models a transient OS/GC stall, not a crash).
  struct Stall {
    int rank = 0;
    double at = 0.0;
    double duration = 0.0;
  };
  std::vector<Stall> stalls;
  /// Rank `rank` dies the first time its clock reaches `at`. Only base
  /// ranks may crash; a replacement that has adopted a dead rank's identity
  /// does not inherit its crash entries (no cascading re-crash).
  struct Crash {
    int rank = 0;
    double at = 0.0;
  };
  std::vector<Crash> crashes;
  /// Single-bit silent-data-corruption fault. Site 0 flips one bit of one
  /// wire payload: the first fault-path message `rank` sends at or after
  /// virtual time `at` (word selects the flipped 8-byte word, wrapped to
  /// the payload size). With `wire_checksums` on, the receiver detects the
  /// mismatch, discards the copy like a link loss and the sender's retry
  /// loop retransmits a clean copy — the run stays bitwise identical; with
  /// checksums off the flip is delivered silently (the end-to-end ABFT /
  /// verify layers must catch it downstream). Site 1 flips one bit of the
  /// next checkpoint blob `rank` stores; a spare restoring from it gets a
  /// diagnosed kDataCorruption.
  struct BitFlip {
    int rank = 0;
    double at = 0.0;
    int site = 0;            ///< 0 = wire payload, 1 = checkpoint blob
    std::uint64_t word = 0;  ///< 8-byte word index within the payload
    int bit = 62;            ///< bit within the word (62: exponent MSB)
  };
  std::vector<BitFlip> bit_flips;
  /// Payload FNV-1a digests on the fault-path wire format (site-0 defense).
  /// On by default; campaigns switch it off to measure what an undefended
  /// wire lets through.
  bool wire_checksums = true;
  /// Standby ranks available to adopt crashed ranks (see Comm::await_failure).
  /// Rank programs must handle Comm::is_spare() when this is nonzero.
  int spare_ranks = 0;
  /// Wall-clock (host) budget for the whole run_spmd call; 0 disables. When
  /// the watchdog fires, every blocked or soon-to-block rank raises
  /// StatusError(kCommTimeout) instead of the run hanging the host. Unlike
  /// the knobs above this is a safety net, not an injected fault, so it
  /// deliberately does NOT make the plan active() — a run with only a
  /// timeout budget keeps the zero-overhead fault-free wire format.
  double run_timeout_host_seconds = 0.0;

  [[nodiscard]] bool active() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || delay_rate > 0.0 ||
           ack_drop_rate > 0.0 || !stalls.empty() || !crashes.empty() ||
           !bit_flips.empty() || spare_ranks > 0;
  }
};

class Machine;
class Comm;

/// Handle to a nonblocking operation (isend/irecv). Complete it with
/// Comm::test / Comm::wait / Comm::wait_all on the Comm that issued it.
/// Requests are movable, not copyable, and must not outlive their Comm.
class Request {
 public:
  Request() = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  Request(Request&&) = default;
  Request& operator=(Request&&) = default;

  /// True once the operation completed (send requests start complete —
  /// sends are buffered; a completed recv request holds its payload until
  /// wait() is called to take it).
  [[nodiscard]] bool done() const { return done_; }

  /// Virtual arrival time of a completed recv request (0 until it
  /// completes; send requests are born done with arrival 0).
  [[nodiscard]] double arrival() const { return arrival_; }

 private:
  friend class Comm;
  enum class Kind : std::uint8_t { kSend, kRecv };
  Kind kind_ = Kind::kSend;
  int peer_ = -1;
  int tag_ = 0;
  std::uint64_t ticket_ = 0;  ///< FIFO position among irecvs on the channel
  bool done_ = false;
  bool active_ = false;       ///< issued by a Comm (default-constructed: no)
  double arrival_ = 0.0;
  std::vector<std::byte> payload_;
};

/// Runs `rank_fn` as an SPMD program on `n_ranks` virtual ranks (one host
/// thread each) and returns the run statistics. Rank program exceptions are
/// rethrown (first one wins) after all threads have been joined.
RunStats run_spmd(int n_ranks, const MachineModel& model,
                  const std::function<void(Comm&)>& rank_fn);

/// As above with fault injection. An inactive plan behaves exactly like the
/// overload without one (no wire headers, no timeouts). The plan is
/// validated on entry: out-of-range rates, non-positive retry/backoff
/// bounds, or crash/stall entries naming nonexistent ranks raise
/// StatusError(kInvalidInput) before any rank thread starts. With
/// `faults.spare_ranks > 0`, `rank_fn` is additionally invoked on the spare
/// ranks, which must call `await_failure()` (see below).
RunStats run_spmd(int n_ranks, const MachineModel& model,
                  const FaultPlan& faults,
                  const std::function<void(Comm&)>& rank_fn);

/// What a spare rank learns when it is activated (or released).
struct Takeover {
  int rank = -1;        ///< adopted rank id, or -1: run ended, spare unused
  double failed_at = 0.0;  ///< virtual death time of the adopted rank
  /// Last buddy-checkpoint blob the dead rank saved (empty if it never
  /// checkpointed: the replacement then replays from the very beginning).
  std::vector<std::byte> checkpoint;
};

/// Consistent snapshot of the machine's failure bookkeeping.
struct FailureView {
  std::uint64_t epoch = 0;      ///< number of crashes fired so far
  std::vector<int> failed;      ///< ranks that crashed
  std::vector<int> recovered;   ///< crashed ranks adopted by a spare
};

/// Per-rank communicator handle passed to the rank program.
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;
  [[nodiscard]] const MachineModel& model() const;
  /// True while this rank is an unassigned standby (rank() >= size()).
  [[nodiscard]] bool is_spare() const;

  /// Blocking tagged send (buffered: returns after the sender-side cost).
  void send(int dest, int tag, const void* data, std::size_t bytes);

  /// Blocking receive matching (source, tag), FIFO among identical pairs.
  /// Must not be called while irecvs are outstanding on the same channel
  /// (the FIFO position would be ambiguous).
  [[nodiscard]] std::vector<std::byte> recv(int source, int tag);

  /// Nonblocking send. mpsim sends are buffered — the sender-side cost is
  /// paid immediately and the message is in flight when this returns — so
  /// the request completes instantly; it exists so call sites can express
  /// intent symmetrically with irecv.
  Request isend(int dest, int tag, const void* data, std::size_t bytes);

  /// Posts a receive for the next unclaimed message on (source, tag).
  /// Multiple outstanding irecvs on one channel match arrivals in posting
  /// order (FIFO), regardless of the order they are waited on.
  [[nodiscard]] Request irecv(int source, int tag);

  /// Nonblocking completion probe. A recv request completes here only if a
  /// matching message exists AND its virtual arrival time is ≤ this rank's
  /// clock — the rank cannot observe a message "before it arrives". Never
  /// advances the clock. Returns r.done().
  bool test(Request& r);

  /// Blocks until the request completes and returns its payload (empty for
  /// send requests). Advances the clock to max(clock, arrival) and accounts
  /// the jump as idle wait. Unlike blocking recv, wait is always bounded by
  /// FaultPlan::recv_timeout_host_seconds of host time — a lost nonblocking
  /// message diagnoses kCommTimeout instead of hanging the harness (the
  /// default plan's 30 s net applies even with faults inactive).
  [[nodiscard]] std::vector<std::byte> wait(Request& r);

  /// wait() over a batch, in order; returns the payloads.
  [[nodiscard]] std::vector<std::vector<std::byte>> wait_all(
      std::vector<Request>& rs);

  /// Completes exactly one not-yet-done request in `rs` and returns its
  /// index; already-done requests (including send requests, which are born
  /// done) are skipped, and at least one request must be incomplete.
  /// Progress rule, chosen so the rank clock stays a pure function of the
  /// schedule regardless of host thread timing: a message that has already
  /// arrived (virtual arrival ≤ this rank's clock) is claimed first, in
  /// posting order, without advancing the clock (like test); otherwise the
  /// earliest-posted incomplete request is waited on (the clock advances to
  /// its arrival, accounted as idle wait). Post pools in need order so the
  /// blocking case always targets the request the caller cannot proceed
  /// without. The payload stays in the returned request — take it with
  /// wait / wait_vec, which return immediately on a completed request.
  /// When the call drains the pool's last request, arrival times are
  /// compared against posting order and the inversions are added to
  /// RunStats::messages_completed_out_of_order.
  [[nodiscard]] std::size_t wait_any(std::vector<Request>& rs);

  /// Typed wait: payload reinterpreted as a vector of T (like recv_vec).
  template <typename T>
  [[nodiscard]] std::vector<T> wait_vec(Request& r) {
    static_assert(std::is_trivially_copyable_v<T>);
    return bytes_to_vec<T>(wait(r), r.peer_, r.tag_);
  }

  /// Typed helpers for vectors of trivially copyable T.
  template <typename T>
  void send_vec(int dest, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, tag, v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  [[nodiscard]] std::vector<T> recv_vec(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    return bytes_to_vec<T>(recv(source, tag), source, tag);
  }

  /// Collectives over all base ranks (every base rank must call; standby
  /// spares never participate). With an active crash plan a collective
  /// raises StatusError(kRankFailure) instead of deadlocking when a
  /// participant is dead beyond recovery.
  void barrier();
  [[nodiscard]] double allreduce_sum(double v);
  [[nodiscard]] double allreduce_max(double v);
  /// Root's buffer is distributed to everyone; non-roots pass their out
  /// buffer which is resized.
  void bcast(int root, std::vector<std::byte>* data);

  /// Buddy checkpoint: ships `blob` to (notionally) rank `buddy`'s memory
  /// and snapshots this rank's communication-protocol state (sequence
  /// counters, log cursors, clock, live memory) alongside it, so a
  /// replacement can resume exactly at this boundary. Charged to the
  /// virtual clock like a message of the same size. Overwrites the
  /// previous checkpoint of this rank.
  void checkpoint_save(int buddy, std::vector<std::byte> blob);

  /// Spare ranks only: blocks until this spare's designated crash fires
  /// (returning the adopted rank id with its death time and last
  /// checkpoint) or the run completes without it (rank == -1). On
  /// adoption this Comm *becomes* the dead rank: rank() changes, the
  /// protocol state is restored from the checkpoint snapshot, the clock is
  /// set to the death time plus the state-transfer cost, and the program
  /// should re-run the dead rank's work from the checkpoint.
  [[nodiscard]] Takeover await_failure();

  /// Failure-notification snapshot: epoch (crashes fired so far) and the
  /// failed/recovered rank sets. Serialized against crash bookkeeping, so
  /// every rank observing epoch e sees identical sets.
  [[nodiscard]] FailureView failure_view() const;

  /// Virtual-time hooks.
  void advance_compute(count_t flops);
  void advance_bytes(count_t bytes);
  void advance_seconds(double s);
  [[nodiscard]] double now() const { return clock_; }

  /// Application memory accounting (peak is reported in RunStats).
  void memory_add(count_t bytes);
  void memory_sub(count_t bytes);

 private:
  friend class Machine;
  friend RunStats run_spmd(int, const MachineModel&, const FaultPlan&,
                           const std::function<void(Comm&)>&);
  Comm(Machine* machine, int rank) : machine_(machine), rank_(rank) {}

  /// Applies any pending stall window this rank's clock has reached.
  void apply_stalls();
  /// Fires this rank's crash entry if the clock has crossed it.
  void maybe_crash();
  /// Advances the clock and triggers stall/crash windows it crosses.
  void tick(double seconds);

  template <typename T>
  [[nodiscard]] std::vector<T> bytes_to_vec(std::vector<std::byte> raw,
                                            int source, int tag) const {
    if (raw.size() % sizeof(T) != 0) {
      std::ostringstream os;
      os << "mpsim: rank " << rank_ << " received " << raw.size()
         << " bytes from (source " << source << ", tag " << tag
         << "), not a multiple of the element size " << sizeof(T);
      throw StatusError(Status::failure(StatusCode::kDataCorruption,
                                        os.str()));
    }
    std::vector<T> v(raw.size() / sizeof(T));
    if (!raw.empty()) std::memcpy(v.data(), raw.data(), raw.size());
    return v;
  }

  /// One message staged for a posted irecv, keyed by ticket.
  struct Staged {
    double arrival = 0.0;
    std::vector<std::byte> payload;
  };
  /// Per-(source, tag) irecv bookkeeping: tickets issued, messages pulled
  /// from the mailbox so far, and pulled-but-not-yet-waited messages.
  struct Channel {
    std::uint64_t posted = 0;
    std::uint64_t filled = 0;
    std::map<std::uint64_t, Staged> staged;
  };

  /// Pulls the next unconsumed message on (source, tag) out of the mailbox,
  /// running the fault-protocol logic (dedup, retention cursor, dead-rank
  /// diagnosis). Returns false when `blocking` is false and nothing is
  /// pending; throws kCommTimeout when `bounded` and the host-time net
  /// expires. Does not touch the virtual clock.
  bool fetch_message(int source, int tag, bool blocking, bool bounded,
                     Staged* out);
  /// Pulls messages into `ch.staged` until `ticket` is staged (blocking) or
  /// the mailbox runs dry (nonblocking). Returns whether it is staged.
  bool fill_channel(Channel& ch, int source, int tag, std::uint64_t ticket,
                    bool blocking);
  /// Completes a recv request whose message is staged: clock/idle/payload.
  void complete_recv(Request& r, Staged&& st, bool count_idle);
  /// Once every request in `rs` is done, adds the pool's arrival-vs-posting
  /// inversions to this rank's out-of-order completion counter (no-op while
  /// any request is still pending).
  void note_pool_drained(const std::vector<Request>& rs);

  Machine* machine_;
  int rank_;
  double clock_ = 0.0;
  double compute_time_ = 0.0;
  double idle_wait_ = 0.0;  ///< virtual seconds blocked on p2p arrivals
  std::map<std::pair<int, int>, Channel> channels_;
  count_t pending_irecvs_ = 0;
  count_t wait_any_calls_ = 0;
  count_t ooo_completions_ = 0;  ///< drained-pool arrival-order inversions
  count_t mem_live_ = 0;
  count_t mem_peak_ = 0;
  /// Virtual time at which this incarnation dies. run_spmd sets it (to the
  /// rank's earliest Crash entry, or +infinity) before the thread starts;
  /// adoption by a spare resets it to +infinity.
  double crash_at_ = 0.0;
  /// Fault-protocol state (unused when the plan is inactive): next sequence
  /// number per (dest, tag) link, next expected per (source, tag) link,
  /// per-channel consumed-entry cursor into the retained message log, and
  /// which of the plan's stall windows already fired for this rank.
  std::map<std::pair<int, int>, std::uint64_t> send_seq_;
  std::map<std::pair<int, int>, std::uint64_t> recv_seq_;
  std::map<std::pair<int, int>, std::size_t> consumed_;
  std::vector<char> stall_fired_;
  std::vector<char> flip_fired_;  ///< which plan BitFlip entries struck here
};

}  // namespace parfact::mpsim
