// mpsim: an in-process message-passing machine with virtual time.
//
// This is the substitute for the paper's MPI cluster (see DESIGN.md §2).
// Rank programs are ordinary C++ functions running on one thread per rank and
// communicating through the MPI-like `Comm` handle: tagged point-to-point
// send/recv plus the collectives the solver needs. Semantics follow the
// message-passing model of the LLNL MPI tutorial: explicit cooperative
// transfers, blocking receives matched by (source, tag) in FIFO order.
//
// Virtual time: every rank carries a logical clock. Local computation
// advances it through Comm::advance_compute (flops / machine flop rate) and
// advance_bytes (bytes / memory rate); a message costs the sender `alpha`
// and arrives at `send_clock + alpha + bytes * beta`; a receive completes at
// max(receiver clock, arrival). Collectives use binomial-tree costs. The
// resulting makespan (max final clock) is the quantity every scaling
// experiment reports — it is deterministic and independent of how the host
// OS schedules the rank threads, which is what makes thousand-rank scaling
// studies meaningful on a one-core machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <vector>

#include "support/types.h"

namespace parfact::mpsim {

/// Cluster model parameters (alpha-beta-gamma). Defaults approximate a
/// commodity cluster node; experiments calibrate flop_rate from the measured
/// GEMM rate (dense::measure_gemm_rate) so shapes stay hardware-honest.
struct MachineModel {
  double flop_rate = 2.0e9;       ///< flop/s per rank
  double alpha = 5.0e-6;          ///< per-message latency, seconds
  double beta = 1.0e-9;           ///< seconds per byte on a link
  double mem_rate = 8.0e9;        ///< bytes/s for local assembly traffic
};

/// Aggregate statistics of one SPMD run.
struct RunStats {
  double makespan = 0.0;               ///< max final virtual clock
  std::vector<double> rank_time;       ///< final clock per rank
  std::vector<double> rank_compute;    ///< virtual seconds in compute per rank
  count_t total_messages = 0;
  count_t total_bytes = 0;
  std::vector<count_t> rank_peak_bytes;  ///< peak app-reported memory
};

class Machine;
class Comm;

/// Runs `rank_fn` as an SPMD program on `n_ranks` virtual ranks (one host
/// thread each) and returns the run statistics. Rank program exceptions are
/// rethrown (first one wins) after all threads have been joined.
RunStats run_spmd(int n_ranks, const MachineModel& model,
                  const std::function<void(Comm&)>& rank_fn);

/// Per-rank communicator handle passed to the rank program.
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;
  [[nodiscard]] const MachineModel& model() const;

  /// Blocking tagged send (buffered: returns after the sender-side cost).
  void send(int dest, int tag, const void* data, std::size_t bytes);

  /// Blocking receive matching (source, tag), FIFO among identical pairs.
  [[nodiscard]] std::vector<std::byte> recv(int source, int tag);

  /// Typed helpers for vectors of trivially copyable T.
  template <typename T>
  void send_vec(int dest, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, tag, v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  [[nodiscard]] std::vector<T> recv_vec(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> raw = recv(source, tag);
    std::vector<T> v(raw.size() / sizeof(T));
    std::memcpy(v.data(), raw.data(), raw.size());
    return v;
  }

  /// Collectives over all ranks (every rank must call).
  void barrier();
  [[nodiscard]] double allreduce_sum(double v);
  [[nodiscard]] double allreduce_max(double v);
  /// Root's buffer is distributed to everyone; non-roots pass their out
  /// buffer which is resized.
  void bcast(int root, std::vector<std::byte>* data);

  /// Virtual-time hooks.
  void advance_compute(count_t flops);
  void advance_bytes(count_t bytes);
  void advance_seconds(double s);
  [[nodiscard]] double now() const { return clock_; }

  /// Application memory accounting (peak is reported in RunStats).
  void memory_add(count_t bytes);
  void memory_sub(count_t bytes);

 private:
  friend class Machine;
  friend RunStats run_spmd(int, const MachineModel&,
                           const std::function<void(Comm&)>&);
  Comm(Machine* machine, int rank) : machine_(machine), rank_(rank) {}

  Machine* machine_;
  int rank_;
  double clock_ = 0.0;
  double compute_time_ = 0.0;
  count_t mem_live_ = 0;
  count_t mem_peak_ = 0;
};

}  // namespace parfact::mpsim
