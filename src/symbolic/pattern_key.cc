#include "symbolic/pattern_key.h"

#include "support/checksum.h"

namespace parfact {

std::size_t PatternKeyHash::operator()(const PatternKey& k) const {
  std::uint64_t h = fnv1a_pod(k.structure_hash);
  h = fnv1a_pod(k.config_hash, h);
  h = fnv1a_pod(k.n, h);
  h = fnv1a_pod(k.nnz, h);
  return static_cast<std::size_t>(h);
}

PatternKey pattern_key(const SparseMatrix& lower,
                       std::uint64_t config_hash) {
  PatternKey key;
  key.config_hash = config_hash;
  key.n = lower.rows;
  key.nnz = lower.nnz();
  std::uint64_t h = kFnv1aOffsetBasis;
  if (!lower.col_ptr.empty()) {
    h = fnv1a(lower.col_ptr.data(),
              lower.col_ptr.size() * sizeof(index_t), h);
  }
  if (!lower.row_ind.empty()) {
    h = fnv1a(lower.row_ind.data(),
              lower.row_ind.size() * sizeof(index_t), h);
  }
  key.structure_hash = h;
  return key;
}

}  // namespace parfact
