#include "symbolic/etree.h"

#include <algorithm>

#include "sparse/ops.h"
#include "support/error.h"

namespace parfact {

std::vector<index_t> elimination_tree(const SparseMatrix& lower) {
  PARFACT_CHECK(lower.rows == lower.cols);
  const index_t n = lower.cols;
  std::vector<index_t> parent(static_cast<std::size_t>(n), kNone);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n), kNone);
  // Liu's algorithm requires visiting rows in increasing order with all of
  // each row's entries together; the lower-stored CSC input enumerates by
  // column, so build a CSR view of the strict lower triangle first.
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = lower.col_ptr[j]; p < lower.col_ptr[j + 1]; ++p) {
      if (lower.row_ind[p] > j) ++row_ptr[lower.row_ind[p] + 1];
    }
  }
  for (index_t i = 0; i < n; ++i) row_ptr[i + 1] += row_ptr[i];
  std::vector<index_t> row_cols(static_cast<std::size_t>(row_ptr.back()));
  {
    std::vector<index_t> next_slot(row_ptr.begin(), row_ptr.end() - 1);
    for (index_t j = 0; j < n; ++j) {
      for (index_t p = lower.col_ptr[j]; p < lower.col_ptr[j + 1]; ++p) {
        if (lower.row_ind[p] > j) row_cols[next_slot[lower.row_ind[p]]++] = j;
      }
    }
  }
  for (index_t i = 0; i < n; ++i) {
    for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      // Walk from column k up the partially built tree toward i,
      // compressing paths as we go.
      index_t k = row_cols[p];
      while (k != kNone && k < i) {
        const index_t next = ancestor[k];
        ancestor[k] = i;  // path compression
        if (next == kNone) {
          parent[k] = i;
          break;
        }
        k = next;
      }
    }
  }
  return parent;
}

std::vector<index_t> tree_postorder(const std::vector<index_t>& parent) {
  const auto n = static_cast<index_t>(parent.size());
  // Build child lists (ordered by child index for determinism).
  std::vector<index_t> head(static_cast<std::size_t>(n), kNone);
  std::vector<index_t> next(static_cast<std::size_t>(n), kNone);
  for (index_t j = n - 1; j >= 0; --j) {
    const index_t p = parent[j];
    if (p != kNone) {
      PARFACT_CHECK(p >= 0 && p < n && p != j);
      next[j] = head[p];
      head[p] = j;
    }
  }
  std::vector<index_t> post;
  post.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> stack;
  for (index_t root = 0; root < n; ++root) {
    if (parent[root] != kNone) continue;
    // Iterative DFS emitting nodes in postorder.
    stack.push_back(root);
    while (!stack.empty()) {
      const index_t v = stack.back();
      const index_t child = head[v];
      if (child == kNone) {
        post.push_back(v);
        stack.pop_back();
      } else {
        head[v] = next[child];  // consume the child edge
        stack.push_back(child);
      }
    }
  }
  PARFACT_CHECK_MSG(post.size() == static_cast<std::size_t>(n),
                    "parent array contains a cycle");
  return post;
}

bool is_postordered(const std::vector<index_t>& parent) {
  const auto n = static_cast<index_t>(parent.size());
  const std::vector<index_t> size = subtree_sizes(parent);
  for (index_t j = 0; j < n; ++j) {
    if (parent[j] == kNone) continue;
    if (parent[j] <= j) return false;
  }
  // In a postorder, node j's subtree occupies [j - size + 1, j].
  for (index_t j = 0; j < n; ++j) {
    const index_t lo = j - size[j] + 1;
    if (lo < 0) return false;
    // Every node in [lo, j) must have its parent inside (lo, j].
    // It suffices to check direct containment of children ranges, which the
    // parent check plus size consistency gives: verify parent of j-size+k
    // stays within the range for k < size.
    for (index_t v = lo; v < j; ++v) {
      if (parent[v] == kNone || parent[v] > j) return false;
    }
  }
  return true;
}

std::vector<index_t> relabel_tree(const std::vector<index_t>& parent,
                                  const std::vector<index_t>& perm) {
  PARFACT_CHECK(perm.size() == parent.size());
  const std::vector<index_t> inv = invert_permutation(perm);
  std::vector<index_t> out(parent.size(), kNone);
  for (std::size_t new_j = 0; new_j < parent.size(); ++new_j) {
    const index_t old_j = perm[new_j];
    const index_t old_p = parent[old_j];
    out[new_j] = old_p == kNone ? kNone : inv[old_p];
  }
  return out;
}

std::vector<index_t> cholesky_col_counts(const SparseMatrix& lower,
                                         const std::vector<index_t>& parent) {
  const index_t n = lower.cols;
  PARFACT_CHECK(parent.size() == static_cast<std::size_t>(n));
  std::vector<index_t> count(static_cast<std::size_t>(n), 1);  // diagonal
  std::vector<index_t> mark(static_cast<std::size_t>(n), kNone);
  // Row subtree traversal: L(i, j) != 0 iff j is on a path from some k with
  // A(i, k) != 0 (k < i) up the etree toward i. Walk each such path until a
  // node already marked for row i.
  // Need row access: lower-stored CSC column k lists entries (i, k), i >= k,
  // i.e. walking columns enumerates rows out of order — that is fine, the
  // algorithm only needs, for each row i, the set of columns k with
  // A(i,k) != 0. Gather them via the transpose-free trick: process entries
  // column by column but mark per row. To keep O(n) memory we iterate rows
  // via an explicit CSR copy of the strict lower triangle.
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t k = 0; k < n; ++k) {
    for (index_t p = lower.col_ptr[k]; p < lower.col_ptr[k + 1]; ++p) {
      if (lower.row_ind[p] > k) ++row_ptr[lower.row_ind[p] + 1];
    }
  }
  for (index_t i = 0; i < n; ++i) row_ptr[i + 1] += row_ptr[i];
  std::vector<index_t> row_cols(static_cast<std::size_t>(row_ptr.back()));
  {
    std::vector<index_t> nxt(row_ptr.begin(), row_ptr.end() - 1);
    for (index_t k = 0; k < n; ++k) {
      for (index_t p = lower.col_ptr[k]; p < lower.col_ptr[k + 1]; ++p) {
        if (lower.row_ind[p] > k) row_cols[nxt[lower.row_ind[p]]++] = k;
      }
    }
  }
  std::fill(mark.begin(), mark.end(), kNone);
  for (index_t i = 0; i < n; ++i) {
    mark[i] = i;
    for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      index_t j = row_cols[p];
      while (j != kNone && j < i && mark[j] != i) {
        ++count[j];
        mark[j] = i;
        j = parent[j];
      }
    }
  }
  return count;
}

std::vector<index_t> subtree_sizes(const std::vector<index_t>& parent) {
  const auto n = static_cast<index_t>(parent.size());
  std::vector<index_t> size(static_cast<std::size_t>(n), 1);
  // Requires only that parent[j] != j; accumulate children into parents in
  // an order that visits every node before its ancestors. For a postordered
  // tree a single forward sweep works; for general forests, sweep by
  // repeatedly following parents is wrong, so do it properly with a DFS.
  const std::vector<index_t> post = tree_postorder(parent);
  for (index_t k = 0; k < n; ++k) {
    const index_t v = post[k];
    if (parent[v] != kNone) size[parent[v]] += size[v];
  }
  return size;
}

}  // namespace parfact
