// Elimination tree, postorder and column counts for sparse Cholesky.
//
// All functions take a *lower-triangle-stored* symmetric matrix pattern.
// The elimination tree (Liu) has parent[j] = min { i > j : L(i,j) != 0 };
// it is the skeleton of every later phase: postordering makes supernodes
// contiguous, column counts size the factor, and the supernodal version of
// the tree (the assembly tree) is the parallel task graph.
#pragma once

#include <vector>

#include "sparse/sparse_matrix.h"
#include "support/types.h"

namespace parfact {

/// Elimination tree of the Cholesky factor of `lower`. parent[j] = kNone for
/// roots. O(nnz * alpha) via path compression.
[[nodiscard]] std::vector<index_t> elimination_tree(const SparseMatrix& lower);

/// Postorder of a forest given by `parent` (children visited before parents,
/// each subtree contiguous). Returns perm with perm[new] = old.
[[nodiscard]] std::vector<index_t> tree_postorder(
    const std::vector<index_t>& parent);

/// True iff `parent` is already postordered: parent[j] > j for all non-roots
/// and each subtree occupies a contiguous index range.
[[nodiscard]] bool is_postordered(const std::vector<index_t>& parent);

/// Relabels a forest under a permutation of its vertices: the returned
/// forest satisfies new_parent[inv[j]] = inv[parent[j]].
[[nodiscard]] std::vector<index_t> relabel_tree(
    const std::vector<index_t>& parent, const std::vector<index_t>& perm);

/// Column counts of the Cholesky factor: counts[j] = nnz(L(:,j)) including
/// the diagonal. Works for any consistent etree (postorder not required).
/// O(nnz(L)) time via row-subtree traversal, O(n + nnz) extra space.
[[nodiscard]] std::vector<index_t> cholesky_col_counts(
    const SparseMatrix& lower, const std::vector<index_t>& parent);

/// Number of nodes in each subtree (node itself included).
[[nodiscard]] std::vector<index_t> subtree_sizes(
    const std::vector<index_t>& parent);

}  // namespace parfact
