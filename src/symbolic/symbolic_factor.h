// Supernodal symbolic analysis: the complete "analyze" phase of the solver.
//
// Pipeline (input: fill-ordered, lower-stored SPD pattern):
//   1. elimination tree + postorder; the matrix is permuted by the postorder
//      so that every subtree — and hence every supernode — is contiguous.
//   2. column counts of L.
//   3. fundamental supernodes, then relaxed amalgamation (merging small
//      children into parents, trading explicit zeros for bigger dense
//      fronts — the classic multifrontal performance knob, ablated in F6).
//   4. assembly tree over supernodes + exact below-diagonal row structure of
//      every supernode, per-front flop counts and factor sizes.
//
// The resulting SymbolicFactor is consumed by the serial, shared-memory and
// distributed numeric factorizations and by the solve phase.
#pragma once

#include <span>
#include <vector>

#include "sparse/sparse_matrix.h"
#include "support/types.h"

namespace parfact {

struct AmalgamationOptions {
  bool enable = true;
  /// A merge producing at most this many columns is always accepted.
  index_t relax_small = 16;
  /// Otherwise merge only if explicit zeros stay below this fraction of the
  /// merged supernode's stored entries.
  double relax_ratio = 0.12;
};

/// Result of the analyze phase. All arrays refer to the *postordered* matrix
/// stored in `a`; `post` maps postordered indices back to the analyze()
/// input's indices.
struct SymbolicFactor {
  index_t n = 0;
  SparseMatrix a;                  ///< postordered lower-stored input
  std::vector<index_t> post;       ///< post[new] = old (w.r.t. analyze input)
  std::vector<index_t> parent;     ///< postordered column etree
  std::vector<index_t> col_count;  ///< nnz(L(:,j)) incl. diagonal

  index_t n_supernodes = 0;
  std::vector<index_t> sn_start;   ///< size n_supernodes+1; cols of sn s are
                                   ///< [sn_start[s], sn_start[s+1])
  std::vector<index_t> sn_of;      ///< column -> supernode
  std::vector<index_t> sn_parent;  ///< assembly tree, kNone at roots
  std::vector<index_t> sn_row_ptr; ///< size n_supernodes+1
  std::vector<index_t> sn_rows;    ///< ascending below-block rows per sn

  count_t nnz_strict = 0;   ///< sum of column counts (true factor nonzeros)
  count_t nnz_stored = 0;   ///< stored entries incl. amalgamation zeros
  count_t total_flops = 0;  ///< factorization flops over all fronts
  std::vector<count_t> sn_flops;  ///< per-front factorization flops

  [[nodiscard]] index_t sn_cols(index_t s) const {
    return sn_start[s + 1] - sn_start[s];
  }
  [[nodiscard]] index_t sn_below(index_t s) const {
    return sn_row_ptr[s + 1] - sn_row_ptr[s];
  }
  /// Dense front order of supernode s: panel columns + below rows.
  [[nodiscard]] index_t front_order(index_t s) const {
    return sn_cols(s) + sn_below(s);
  }
  [[nodiscard]] std::span<const index_t> below_rows(index_t s) const {
    return {sn_rows.data() + sn_row_ptr[s],
            static_cast<std::size_t>(sn_below(s))};
  }

  /// Validates all internal invariants (used by tests).
  void validate() const;
};

/// Flops to eliminate the first `panel` columns of a dense symmetric front of
/// order `front` (sqrt + column scaling + rank-1 trailing updates, counting
/// multiply and add separately).
[[nodiscard]] count_t partial_cholesky_flops(index_t panel, index_t front);

/// Runs the analyze phase. `lower` must be square, lower-triangle stored,
/// with every diagonal entry present.
[[nodiscard]] SymbolicFactor analyze(const SparseMatrix& lower,
                                     const AmalgamationOptions& opts = {});

}  // namespace parfact
