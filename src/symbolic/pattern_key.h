// Canonical sparsity-pattern identity for symbolic-analysis reuse.
//
// The serving loop the HYLU line of work is built around — factor once,
// then re-factor the *same pattern* with new values as the simulation or
// optimization iterates — makes the ordering + symbolic phase fully
// redundant after the first hit. To reuse an analysis safely across
// matrices (and across sessions of the SolverService) we need a key that
// identifies exactly what the analyze phase consumed: the CSR/CSC
// *structure* of the lower triangle (values excluded) plus every
// configuration knob that can change the resulting ordering, supernode
// partition, or postorder.
//
// The key is an FNV-1a digest over the col_ptr and row_ind arrays
// (support/checksum — the same primitive that guards OOC panels and wire
// payloads), guarded against collisions by carrying n and nnz verbatim:
// two patterns that collide in the 64-bit hash still miss unless they also
// agree on both exact sizes. Keys are compared only within one process
// (the cache is in-memory), so index-type width and endianness need no
// canonicalization.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sparse/sparse_matrix.h"
#include "support/types.h"

namespace parfact {

struct PatternKey {
  std::uint64_t structure_hash = 0;  ///< FNV-1a over col_ptr then row_ind
  std::uint64_t config_hash = 0;     ///< digest of structure-affecting options
  index_t n = 0;                     ///< collision guard: exact order
  count_t nnz = 0;                   ///< collision guard: exact lower nnz
  bool operator==(const PatternKey&) const = default;
};

/// Hash functor for unordered containers keyed by PatternKey.
struct PatternKeyHash {
  [[nodiscard]] std::size_t operator()(const PatternKey& k) const;
};

/// Computes the pattern key of a lower-stored symmetric matrix.
/// `config_hash` is the caller's digest of every option that affects the
/// symbolic result (ordering kind and knobs, amalgamation, parallel-ND
/// flag); chain it with fnv1a_pod from support/checksum.
[[nodiscard]] PatternKey pattern_key(const SparseMatrix& lower,
                                     std::uint64_t config_hash = 0);

}  // namespace parfact
