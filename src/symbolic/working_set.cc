#include "symbolic/working_set.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace parfact {

WorkingSetEstimate estimate_working_set(const SymbolicFactor& sym,
                                        bool ldlt) {
  WorkingSetEstimate est;
  const std::size_t real_sz = sizeof(real_t);

  // Physical panel allocation, not trapezoid nonzeros: CholeskyFactor
  // stores each supernode as a full front_order x sn_cols rectangle (the
  // strict upper triangle of the diagonal block is padding), and it is the
  // allocation the budget must admit.
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    est.factor_bytes += static_cast<std::size_t>(sym.front_order(s)) *
                        sym.sn_cols(s) * real_sz;
  }
  if (ldlt) est.factor_bytes += static_cast<std::size_t>(sym.n) * real_sz;

  // Replay the serial postorder's update-stack accounting. Both drivers
  // allocate supernode s's b×b contribution block while the children's
  // blocks are still live (extend-add reads them), then free the children —
  // so the peak candidate at s is live-before + own block.
  std::vector<std::vector<index_t>> children(
      static_cast<std::size_t>(sym.n_supernodes));
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    if (sym.sn_parent[s] != kNone) children[sym.sn_parent[s]].push_back(s);
  }
  auto update_bytes = [&](index_t s) {
    const std::size_t b = static_cast<std::size_t>(sym.sn_below(s));
    return b * b * real_sz;
  };
  auto panel_bytes = [&](index_t s) {
    return static_cast<std::size_t>(sym.front_order(s)) * sym.sn_cols(s) *
           real_sz;
  };

  std::size_t live = 0;
  std::size_t max_m = 0;
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    live += update_bytes(s);
    est.peak_update_bytes = std::max(est.peak_update_bytes, live);
    est.peak_ooc_update_bytes =
        std::max(est.peak_ooc_update_bytes, live + panel_bytes(s));
    for (index_t c : children[s]) live -= update_bytes(c);

    if (panel_bytes(s) > est.largest_front_bytes) {
      est.largest_front_bytes = panel_bytes(s);
      est.largest_front = s;
    }
    if (ldlt) {
      max_m = std::max(max_m, static_cast<std::size_t>(sym.sn_below(s)) *
                                  sym.sn_cols(s) * real_sz);
    }
  }

  est.scratch_bytes =
      static_cast<std::size_t>(sym.n) * sizeof(index_t) + max_m;

  est.peak_incore_bytes =
      est.factor_bytes + est.peak_update_bytes + est.scratch_bytes;
  // OOC keeps D in memory for LDLᵀ (only panels spill), plus the per-panel
  // offset/checksum tables of the scratch file.
  std::size_t ooc_side = static_cast<std::size_t>(sym.n_supernodes) *
                         (sizeof(count_t) + sizeof(std::uint64_t));
  if (ldlt) ooc_side += static_cast<std::size_t>(sym.n) * real_sz;
  est.peak_ooc_bytes =
      est.peak_ooc_update_bytes + est.scratch_bytes + ooc_side;

  return est;
}

}  // namespace parfact
