// Peak working-set prediction from the symbolic factorization alone.
//
// The admission-control layer (mf/governed.h) must decide *before* any
// numeric allocation whether a factorization fits a memory budget in-core,
// fits only with the OOC panel spill, or cannot run at all. Both numeric
// drivers walk the assembly tree in the same postorder the symbolic phase
// fixed, so their memory profile is fully determined here: this walk mirrors
// the drivers' own accounting step for step, and `peak_update_bytes` is
// byte-exact against the `FactorStats::peak_update_bytes` a real run
// reports (governance_test asserts this).
#pragma once

#include <cstddef>

#include "support/types.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {

/// Predicted memory profile of one factorization of `sym`.
struct WorkingSetEstimate {
  /// In-core factor storage: all panels (nnz_stored entries) plus the D
  /// vector when factoring LDLᵀ. Allocated upfront by CholeskyFactor.
  std::size_t factor_bytes = 0;
  /// Peak of the multifrontal update stack in the serial postorder — live
  /// children's contribution blocks plus the front being eliminated.
  /// Byte-exact vs FactorStats::peak_update_bytes of the in-core driver.
  std::size_t peak_update_bytes = 0;
  /// Peak of (update stack + streamed panel buffer) in the OOC driver.
  /// Byte-exact vs FactorStats::peak_update_bytes of the OOC driver.
  std::size_t peak_ooc_update_bytes = 0;
  /// Side allocations both drivers make: the FrontScratch index map and,
  /// for LDLᵀ, the largest per-front M = L21·D staging buffer.
  std::size_t scratch_bytes = 0;

  /// Total admission requirement for an in-core run.
  std::size_t peak_incore_bytes = 0;
  /// Total admission requirement for an OOC-spill run (panels on disk,
  /// only the update stack and one streamed panel resident).
  std::size_t peak_ooc_bytes = 0;

  /// Largest dense front (the in-core floor no schedule can undercut).
  index_t largest_front = kNone;
  std::size_t largest_front_bytes = 0;
};

/// Computes the estimate for a Cholesky (`ldlt == false`) or LDLᵀ run.
[[nodiscard]] WorkingSetEstimate estimate_working_set(
    const SymbolicFactor& sym, bool ldlt);

}  // namespace parfact
