#include "symbolic/symbolic_factor.h"

#include <algorithm>
#include <numeric>

#include "sparse/ops.h"
#include "support/error.h"
#include "symbolic/etree.h"

namespace parfact {

count_t partial_cholesky_flops(index_t panel, index_t front) {
  PARFACT_CHECK(panel >= 0 && panel <= front);
  count_t flops = 0;
  for (index_t k = 0; k < panel; ++k) {
    const count_t below = front - k - 1;  // entries under pivot k
    flops += 1 + below + below * (below + 1);
  }
  return flops;
}

void SymbolicFactor::validate() const {
  PARFACT_CHECK(n == a.rows && n == a.cols);
  PARFACT_CHECK(static_cast<index_t>(post.size()) == n);
  PARFACT_CHECK(is_permutation(post));
  PARFACT_CHECK(is_postordered(parent));
  PARFACT_CHECK(static_cast<index_t>(sn_start.size()) == n_supernodes + 1);
  PARFACT_CHECK(sn_start.front() == 0 && sn_start.back() == n);
  for (index_t s = 0; s < n_supernodes; ++s) {
    PARFACT_CHECK(sn_start[s] < sn_start[s + 1]);
    for (index_t j = sn_start[s]; j < sn_start[s + 1]; ++j) {
      PARFACT_CHECK(sn_of[j] == s);
      // Columns within a supernode chain through the etree.
      if (j + 1 < sn_start[s + 1]) PARFACT_CHECK(parent[j] == j + 1);
    }
    // Below rows: sorted, strictly beyond the block.
    const auto rows = below_rows(s);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      PARFACT_CHECK(rows[k] >= sn_start[s + 1] && rows[k] < n);
      if (k > 0) PARFACT_CHECK(rows[k - 1] < rows[k]);
    }
    // Assembly tree consistency: parent supernode owns parent column of the
    // last column of s.
    const index_t last = sn_start[s + 1] - 1;
    if (parent[last] == kNone) {
      PARFACT_CHECK(sn_parent[s] == kNone);
    } else {
      PARFACT_CHECK(sn_parent[s] == sn_of[parent[last]]);
      PARFACT_CHECK(sn_parent[s] > s);
      // The first below row is exactly the parent column of the last col.
      PARFACT_CHECK(!rows.empty() && rows.front() == parent[last]);
    }
  }
}

namespace {

/// Fundamental supernodes: column j+1 joins column j's supernode iff
/// parent[j] == j+1, col_count[j] == col_count[j+1] + 1, and j+1 has exactly
/// one etree child among {j} (guaranteed by the count identity only when
/// j+1's other children contribute nothing; checking counts + parent is the
/// standard sufficient test when paired with child counting).
std::vector<index_t> fundamental_supernode_starts(
    const std::vector<index_t>& parent, const std::vector<index_t>& col_count,
    index_t n) {
  std::vector<index_t> n_children(static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    if (parent[j] != kNone) ++n_children[parent[j]];
  }
  std::vector<index_t> starts{0};
  for (index_t j = 1; j < n; ++j) {
    const bool chained = parent[j - 1] == j && n_children[j] == 1 &&
                         col_count[j - 1] == col_count[j] + 1;
    if (!chained) starts.push_back(j);
  }
  starts.push_back(n);
  return starts;
}

struct MergedSupernode {
  index_t first = 0;
  index_t last = 0;        // inclusive last column
  index_t below = 0;       // |rows strictly beyond `last`| of the top part
  bool merged_away = false;
};

}  // namespace

SymbolicFactor analyze(const SparseMatrix& lower,
                       const AmalgamationOptions& opts) {
  PARFACT_CHECK(lower.rows == lower.cols);
  SymbolicFactor sf;
  sf.n = lower.rows;
  const index_t n = sf.n;
  for (index_t j = 0; j < n; ++j) {
    PARFACT_CHECK_MSG(lower.col_ptr[j] < lower.col_ptr[j + 1] &&
                          lower.row_ind[lower.col_ptr[j]] == j,
                      "missing diagonal entry in column " << j);
  }

  // 1. Etree + postorder; permute the matrix so supernodes are contiguous.
  {
    const std::vector<index_t> parent0 = elimination_tree(lower);
    sf.post = tree_postorder(parent0);
    sf.a = lower_triangle(
        permute_symmetric(symmetrize_full(lower), sf.post));
    sf.parent = relabel_tree(parent0, sf.post);
    PARFACT_CHECK(is_postordered(sf.parent));
  }

  // 2. Column counts.
  sf.col_count = cholesky_col_counts(sf.a, sf.parent);
  sf.nnz_strict =
      std::accumulate(sf.col_count.begin(), sf.col_count.end(), count_t{0});

  // 3. Fundamental supernodes + relaxed amalgamation.
  const std::vector<index_t> fstarts =
      fundamental_supernode_starts(sf.parent, sf.col_count, n);
  const auto nf = static_cast<index_t>(fstarts.size()) - 1;
  std::vector<MergedSupernode> sn(static_cast<std::size_t>(nf));
  std::vector<index_t> fsn_of(static_cast<std::size_t>(n));
  for (index_t s = 0; s < nf; ++s) {
    sn[s].first = fstarts[s];
    sn[s].last = fstarts[s + 1] - 1;
    sn[s].below = sf.col_count[sn[s].first] - (sn[s].last - sn[s].first + 1);
    for (index_t j = fstarts[s]; j < fstarts[s + 1]; ++j) fsn_of[j] = s;
  }

  if (opts.enable) {
    // Left-to-right scan; for each supernode keep absorbing the supernode
    // that ends right before its (current) first column, provided that
    // neighbor's etree parent is inside this supernode and the zero-fill
    // criterion accepts. Absorbing extends `first` leftward, so iterate.
    for (index_t s = 0; s < nf; ++s) {
      if (sn[s].merged_away) continue;
      for (;;) {
        const index_t first = sn[s].first;
        if (first == 0) break;
        const index_t c = fsn_of[first - 1];
        if (sn[c].merged_away) break;  // cannot happen; safety
        const index_t c_last = sn[c].last;
        PARFACT_CHECK(c_last == first - 1);
        // Child's parent column must be the first column of s's block for
        // the merged block to stay a valid chain.
        if (sf.parent[c_last] != first) break;
        const index_t nc = c_last - sn[c].first + 1;
        const index_t np = sn[s].last - first + 1;
        // Explicit zeros introduced by treating the child's columns as
        // having the merged pattern.
        count_t zeros = 0;
        for (index_t k = 0; k < nc; ++k) {
          const index_t merged_len = (nc - k) + np + sn[s].below;
          zeros += merged_len - sf.col_count[sn[c].first + k];
        }
        const index_t m = nc + np;
        const count_t stored =
            static_cast<count_t>(m) * (m + 1) / 2 +
            static_cast<count_t>(m) * sn[s].below;
        // "Small" must bound the *merged* width, not just the child:
        // child-only tests cascade through chains of narrow supernodes and
        // can collapse whole separator chains into one quadratic-storage
        // block.
        const bool small_merge = m <= opts.relax_small;
        const bool low_fill =
            static_cast<double>(zeros) <= opts.relax_ratio *
                                              static_cast<double>(stored);
        if (!(small_merge || low_fill)) break;
        // Merge c into s.
        sn[c].merged_away = true;
        sn[s].first = sn[c].first;
        for (index_t j = sn[c].first; j <= sn[c].last; ++j) fsn_of[j] = s;
      }
    }
  }

  // 4. Final partition arrays.
  sf.sn_start.clear();
  sf.sn_of.assign(static_cast<std::size_t>(n), kNone);
  for (index_t s = 0; s < nf; ++s) {
    if (sn[s].merged_away) continue;
    sf.sn_start.push_back(sn[s].first);
  }
  std::sort(sf.sn_start.begin(), sf.sn_start.end());
  sf.sn_start.push_back(n);
  sf.n_supernodes = static_cast<index_t>(sf.sn_start.size()) - 1;
  for (index_t s = 0; s < sf.n_supernodes; ++s) {
    for (index_t j = sf.sn_start[s]; j < sf.sn_start[s + 1]; ++j) {
      sf.sn_of[j] = s;
    }
  }

  // Assembly tree.
  sf.sn_parent.assign(static_cast<std::size_t>(sf.n_supernodes), kNone);
  for (index_t s = 0; s < sf.n_supernodes; ++s) {
    const index_t last = sf.sn_start[s + 1] - 1;
    if (sf.parent[last] != kNone) sf.sn_parent[s] = sf.sn_of[sf.parent[last]];
  }

  // Exact below-row structure: union of this supernode's A columns and the
  // children's below rows, restricted to rows beyond the block. Children
  // precede parents in supernode numbering (postorder), so one sweep works.
  std::vector<std::vector<index_t>> children(
      static_cast<std::size_t>(sf.n_supernodes));
  for (index_t s = 0; s < sf.n_supernodes; ++s) {
    if (sf.sn_parent[s] != kNone) children[sf.sn_parent[s]].push_back(s);
  }
  sf.sn_row_ptr.assign(static_cast<std::size_t>(sf.n_supernodes) + 1, 0);
  std::vector<index_t> marker(static_cast<std::size_t>(n), kNone);
  std::vector<std::vector<index_t>> rows_of(
      static_cast<std::size_t>(sf.n_supernodes));
  for (index_t s = 0; s < sf.n_supernodes; ++s) {
    const index_t block_end = sf.sn_start[s + 1];
    auto& rows = rows_of[s];
    for (index_t j = sf.sn_start[s]; j < block_end; ++j) {
      for (index_t p = sf.a.col_ptr[j]; p < sf.a.col_ptr[j + 1]; ++p) {
        const index_t i = sf.a.row_ind[p];
        if (i >= block_end && marker[i] != s) {
          marker[i] = s;
          rows.push_back(i);
        }
      }
    }
    for (index_t c : children[s]) {
      for (index_t i : rows_of[c]) {
        if (i >= block_end && marker[i] != s) {
          marker[i] = s;
          rows.push_back(i);
        }
      }
    }
    std::sort(rows.begin(), rows.end());
    sf.sn_row_ptr[s + 1] = sf.sn_row_ptr[s] + static_cast<index_t>(rows.size());
  }
  sf.sn_rows.resize(static_cast<std::size_t>(sf.sn_row_ptr.back()));
  for (index_t s = 0; s < sf.n_supernodes; ++s) {
    std::copy(rows_of[s].begin(), rows_of[s].end(),
              sf.sn_rows.begin() + sf.sn_row_ptr[s]);
  }

  // 5. Stats.
  sf.nnz_stored = 0;
  sf.total_flops = 0;
  sf.sn_flops.resize(static_cast<std::size_t>(sf.n_supernodes));
  for (index_t s = 0; s < sf.n_supernodes; ++s) {
    const count_t m = sf.sn_cols(s);
    const count_t b = sf.sn_below(s);
    sf.nnz_stored += m * (m + 1) / 2 + m * b;
    sf.sn_flops[s] = partial_cholesky_flops(sf.sn_cols(s), sf.front_order(s));
    sf.total_flops += sf.sn_flops[s];
  }
  return sf;
}

}  // namespace parfact
