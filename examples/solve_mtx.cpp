// Command-line solver for Matrix Market files — the "bring your own matrix"
// entry point. Reads a symmetric matrix in coordinate format, orders,
// factorizes (Cholesky, falling back to LDLᵀ if the matrix turns out
// indefinite), solves against b = A·1 so the exact solution is known, and
// prints the full solver report.
//
// Usage:  ./build/examples/solve_mtx [file.mtx]
// With no argument a demo matrix is written to /tmp and solved, so the
// example is self-contained.
#include <cstdio>
#include <string>
#include <vector>

#include "api/solver.h"
#include "sparse/gen.h"
#include "sparse/io.h"
#include "sparse/ops.h"

using namespace parfact;

int main(int argc, char** argv) {
  std::string path;
  if (argc == 2) {
    path = argv[1];
  } else {
    path = "/tmp/parfact_demo.mtx";
    write_matrix_market_file(path, grid_laplacian_3d(15, 15, 15, 7),
                             /*symmetric=*/true);
    std::printf("no file given; wrote and solving demo %s\n", path.c_str());
  }

  const MatrixMarketData data = read_matrix_market_file(path);
  if (!data.symmetric) {
    std::fprintf(stderr, "error: %s is not a symmetric matrix\n",
                 path.c_str());
    return 1;
  }
  const SparseMatrix& a = data.matrix;
  std::printf("matrix: n=%d, nnz(lower)=%d\n", a.rows, a.nnz());

  // Manufactured solution x* = 1, b = A x*.
  const std::vector<real_t> ones(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<real_t> b(ones.size());
  spmv_symmetric_lower(a, ones, b);

  SolverOptions opts;
  Solver solver(opts);
  solver.analyze(a);
  try {
    solver.factorize();
  } catch (const Error&) {
    std::printf("not positive definite — retrying with LDL^T\n");
    opts.factor_kind = FactorKind::kLdlt;
    solver = Solver(opts);
    solver.analyze(a);
    solver.factorize();
  }

  const std::vector<real_t> x = solver.solve_refined(b);
  real_t max_err = 0.0;
  for (real_t v : x) max_err = std::max(max_err, std::abs(v - 1.0));

  const SolverReport& rep = solver.report();
  std::printf("ordering+symbolic : %.3f s\n", rep.analyze_seconds);
  std::printf("factorization     : %.3f s (%.2f Gflop/s)\n",
              rep.factor_seconds,
              static_cast<double>(rep.factor_flops) / rep.factor_seconds /
                  1e9);
  std::printf("nnz(L)            : %lld (fill ratio %.1fx)\n",
              static_cast<long long>(rep.nnz_factor),
              static_cast<double>(rep.nnz_factor) /
                  static_cast<double>(rep.nnz_a));
  std::printf("supernodes        : %d\n", rep.n_supernodes);
  std::printf("condition estimate: %.2e\n", solver.condition_estimate());
  std::printf("residual          : %.2e\n", solver.residual(x, b));
  std::printf("max |x - 1|       : %.2e\n", max_err);
  return 0;
}
