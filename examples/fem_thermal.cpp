// Steady-state heat conduction on a 3-D block with an embedded hot source —
// the kind of finite-element workload the paper's solver was built for.
//
// Discretization: 7-point finite differences on an nx*ny*nz grid (a unit
// conductivity Laplacian with Dirichlet walls), with a localized volumetric
// heat source. We assemble the system ourselves from stencil contributions
// to show the TripletBuilder API, solve with two different orderings, and
// compare their analysis quality.
//
// Build & run:  ./build/examples/fem_thermal [nx ny nz]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/solver.h"
#include "sparse/sparse_matrix.h"

using namespace parfact;

namespace {

index_t node(index_t x, index_t y, index_t z, index_t nx, index_t ny) {
  return (z * ny + y) * nx + x;
}

}  // namespace

int main(int argc, char** argv) {
  index_t nx = 30, ny = 30, nz = 30;
  if (argc == 4) {
    nx = std::atoi(argv[1]);
    ny = std::atoi(argv[2]);
    nz = std::atoi(argv[3]);
  }
  const index_t n = nx * ny * nz;
  std::printf("thermal block: %dx%dx%d grid, %d unknowns\n", nx, ny, nz, n);

  // Assemble -div(grad T) with Dirichlet boundaries (lower triangle only).
  TripletBuilder builder(n, n);
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t me = node(x, y, z, nx, ny);
        builder.add(me, me, 6.0);
        if (x > 0) builder.add(me, node(x - 1, y, z, nx, ny), -1.0);
        if (y > 0) builder.add(me, node(x, y - 1, z, nx, ny), -1.0);
        if (z > 0) builder.add(me, node(x, y, z - 1, nx, ny), -1.0);
      }
    }
  }
  const SparseMatrix a = builder.build();

  // Heat source: a small hot cube in the lower octant.
  std::vector<real_t> q(static_cast<std::size_t>(n), 0.0);
  for (index_t z = nz / 8; z < nz / 4; ++z) {
    for (index_t y = ny / 8; y < ny / 4; ++y) {
      for (index_t x = nx / 8; x < nx / 4; ++x) {
        q[node(x, y, z, nx, ny)] = 1.0;
      }
    }
  }

  for (const auto ordering :
       {SolverOptions::Ordering::kNestedDissection,
        SolverOptions::Ordering::kMinimumDegree}) {
    if (ordering == SolverOptions::Ordering::kMinimumDegree && n > 40000) {
      std::printf("mindeg    : skipped (n too large for exact-degree MD)\n");
      continue;
    }
    SolverOptions opts;
    opts.ordering = ordering;
    Solver solver(opts);
    solver.analyze(a);
    solver.factorize();
    const std::vector<real_t> temp = solver.solve_refined(q);
    const real_t peak = *std::max_element(temp.begin(), temp.end());
    std::printf(
        "%-10s: nnz(L)=%9lld  %.2f GFLOP  analyze %.2fs  factor %.2fs  "
        "peak T=%.4f  resid %.1e\n",
        ordering == SolverOptions::Ordering::kNestedDissection ? "nested-dis"
                                                               : "mindeg",
        static_cast<long long>(solver.report().nnz_factor),
        static_cast<double>(solver.report().factor_flops) / 1e9,
        solver.report().analyze_seconds, solver.report().factor_seconds,
        peak, solver.residual(temp, q));
  }
  return 0;
}
