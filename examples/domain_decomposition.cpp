// Non-overlapping domain decomposition via the Schur-complement service —
// the classic coupled-solve workflow the paper-lineage solvers expose their
// partial-factorization API for.
//
// A 2-D Poisson problem on an (2w+s) x h grid is split into two subdomains
// separated by an s-wide interface strip. Each subdomain is factorized
// independently (in a real deployment: on different machines); the dense
// interface Schur complement couples them:
//
//   S = A_II - sum_k A_Ik A_kk^{-1} A_kI,     S x_I = b_I - sum_k A_Ik y_k.
//
// The example verifies the decomposed solution against a direct solve of
// the monolithic system.
//
// Build & run:  ./build/examples/domain_decomposition [w h]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/schur.h"
#include "api/solver.h"
#include "dense/kernels.h"
#include "sparse/sparse_matrix.h"

using namespace parfact;

int main(int argc, char** argv) {
  index_t w = 40, h = 40;
  if (argc == 3) {
    w = std::atoi(argv[1]);
    h = std::atoi(argv[2]);
  }
  const index_t s = 1;                // interface strip width
  const index_t nx = 2 * w + s;
  const index_t n = nx * h;

  // Number unknowns so that domain 1 comes first, then domain 2, then the
  // interface — the layout schur_complement() expects (interface last).
  const auto id = [&](index_t x, index_t y) -> index_t {
    if (x < w) return y * w + x;                          // domain 1
    if (x >= w + s) return w * h + y * w + (x - w - s);   // domain 2
    return 2 * w * h + y * s + (x - w);                   // interface
  };

  TripletBuilder builder(n, n);
  for (index_t y = 0; y < h; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t me = id(x, y);
      builder.add(me, me, 4.05);
      const auto couple = [&](index_t ox, index_t oy) {
        const index_t other = id(ox, oy);
        if (other < me) builder.add(me, other, -1.0);
      };
      if (x > 0) couple(x - 1, y);
      if (x + 1 < nx) couple(x + 1, y);
      if (y > 0) couple(x, y - 1);
      if (y + 1 < h) couple(x, y + 1);
    }
  }
  const SparseMatrix a = builder.build();
  const index_t k = s * h;  // interface size
  std::printf("grid %dx%d -> %d unknowns, interface of %d\n", nx, h, n, k);

  // Right-hand side: unit load everywhere.
  const std::vector<real_t> b(static_cast<std::size_t>(n), 1.0);

  // --- Monolithic direct solve (the reference). -----------------------------
  Solver mono;
  mono.analyze(a);
  mono.factorize();
  const auto x_ref = mono.solve(b);

  // --- Decomposed solve. -----------------------------------------------------
  // 1. Interface Schur complement (internally factorizes the two decoupled
  //    subdomains, which appear as independent blocks of A11).
  std::vector<real_t> schur = schur_complement(a, k);

  // 2. Condensed RHS: g = b_I - A_I,1..2 A11^{-1} b_1..2.
  const index_t m = n - k;
  TripletBuilder b11(m, m);
  std::vector<std::vector<std::pair<index_t, real_t>>> a_ik(
      static_cast<std::size_t>(k));
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = a.col_ptr[j]; p < a.col_ptr[j + 1]; ++p) {
      const index_t i = a.row_ind[p];
      if (j < m && i < m) b11.add(i, j, a.values[p]);
      if (j < m && i >= m) a_ik[i - m].emplace_back(j, a.values[p]);
    }
  }
  Solver sub;  // both subdomains in one decoupled solve
  sub.analyze(b11.build());
  sub.factorize();
  const std::vector<real_t> b1(b.begin(), b.begin() + m);
  const auto y = sub.solve(b1);
  std::vector<real_t> g(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    real_t acc = b[m + i];
    for (const auto& [col, v] : a_ik[i]) acc -= v * y[col];
    g[i] = acc;
  }

  // 3. Dense interface solve S x_I = g.
  MatrixView sv{schur.data(), k, k, k};
  if (potrf_lower(sv) != kNone) {
    std::fprintf(stderr, "interface Schur complement not SPD?\n");
    return 1;
  }
  MatrixView gv{g.data(), k, 1, k};
  trsm_left_lower(sv, gv);
  trsm_left_lower_trans(sv, gv);

  // 4. Back-substitution in the subdomains: x_1..2 = A11^{-1}(b - A_kI x_I).
  std::vector<real_t> rhs1 = b1;
  for (index_t i = 0; i < k; ++i) {
    for (const auto& [col, v] : a_ik[i]) rhs1[col] -= v * g[i];
  }
  const auto x_sub = sub.solve(rhs1);

  // --- Compare. ---------------------------------------------------------------
  real_t max_err = 0.0;
  for (index_t i = 0; i < m; ++i) {
    max_err = std::max(max_err, std::abs(x_sub[i] - x_ref[i]));
  }
  for (index_t i = 0; i < k; ++i) {
    max_err = std::max(max_err, std::abs(g[i] - x_ref[m + i]));
  }
  std::printf("max |x_dd - x_direct| = %.2e\n", max_err);
  std::printf("subdomain factor: %.1f MFLOP; monolithic factor: %.1f MFLOP\n",
              static_cast<double>(sub.report().factor_flops) / 1e6,
              static_cast<double>(mono.report().factor_flops) / 1e6);
  return max_err < 1e-8 ? 0 : 1;
}
