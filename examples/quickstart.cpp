// Quickstart: assemble a small SPD system, factorize, solve, check.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "api/solver.h"
#include "sparse/gen.h"
#include "sparse/sparse_matrix.h"

int main() {
  using namespace parfact;

  // 1. Assemble a matrix. TripletBuilder sums duplicate entries, so
  //    element-style assembly "just works"; here we take a ready-made
  //    2-D Poisson problem on a 50x50 grid (lower triangle stored).
  const SparseMatrix a = grid_laplacian_2d(50, 50, 5);
  std::printf("matrix: n=%d, nnz=%d\n", a.rows, a.nnz());

  // 2. Analyze (nested-dissection ordering + symbolic factorization) and
  //    factorize (multifrontal Cholesky).
  Solver solver;
  solver.analyze(a);
  solver.factorize();
  const SolverReport& rep = solver.report();
  std::printf("factor: nnz(L)=%lld, %.3f GFLOP, %d supernodes\n",
              static_cast<long long>(rep.nnz_factor),
              static_cast<double>(rep.factor_flops) / 1e9,
              rep.n_supernodes);

  // 3. Solve A x = b and verify.
  std::vector<real_t> b(static_cast<std::size_t>(a.rows), 1.0);
  const std::vector<real_t> x = solver.solve(b);
  std::printf("relative residual: %.2e\n", solver.residual(x, b));
  std::printf("x[0] = %.6f, x[center] = %.6f\n", x[0],
              x[static_cast<std::size_t>(a.rows) / 2]);
  return 0;
}
