// Scaling study: run the distributed solver on the simulated cluster and
// print a strong-scaling table — the workflow behind the paper's headline
// experiments, exposed as an example of the dist/mpsim/perf API.
//
// Small rank counts execute the real message-passing program (mpsim, one
// thread per rank); larger ones use the block-level schedule replay.
//
// Build & run:  ./build/examples/scaling_study [grid]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/solver.h"
#include "dist/dist_factor.h"
#include "mf/multifrontal.h"
#include "perf/dag_sim.h"
#include "sparse/gen.h"
#include "dense/kernels.h"

using namespace parfact;

int main(int argc, char** argv) {
  index_t g = 16;
  if (argc == 2) g = std::atoi(argv[1]);
  std::printf("problem: %d^3 7-point Laplacian\n", g);

  const SparseMatrix a = grid_laplacian_3d(g, g, g, 7);
  const SymbolicFactor sym = analyze_nested_dissection(a);
  std::printf("n=%d  nnz(L)=%lld  %.2f GFLOP\n", sym.n,
              static_cast<long long>(sym.nnz_strict),
              static_cast<double>(sym.total_flops) / 1e9);

  mpsim::MachineModel model;
  model.flop_rate = measure_gemm_rate(128);
  std::printf("machine: %.2f Gflop/s per rank, alpha=%.0f us, %.1f GB/s\n\n",
              model.flop_rate / 1e9, model.alpha * 1e6,
              1e-9 / model.beta);

  std::printf("%6s %-10s %12s %10s %12s\n", "P", "engine", "time [s]",
              "speedup", "messages");
  double t1 = 0.0;
  for (const int p : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    const FrontMap map = build_front_map(sym, p, MappingStrategy::kSubtree2d);
    double t;
    count_t msgs;
    const char* engine;
    if (p <= 16) {
      // Real SPMD execution: every message actually sent and received.
      const DistFactorResult r = distributed_factor(sym, map, model);
      t = r.run.makespan;
      msgs = r.run.total_messages;
      engine = "mpsim";
    } else {
      const PerfResult r = simulate_factor_time(sym, map, model);
      t = r.makespan;
      msgs = r.total_messages;
      engine = "replay";
    }
    if (p == 1) t1 = t;
    std::printf("%6d %-10s %12.4f %9.1fx %12lld\n", p, engine, t, t1 / t,
                static_cast<long long>(msgs));
  }
  return 0;
}
