// Linear-elastic analysis of a clamped cantilever block — the structural-
// mechanics workload class (3 dof per node, hexahedral elements) that the
// paper's industrial matrices come from.
//
// The block is clamped at z=0 (built into the generator as a stiff Dirichlet
// penalty) and loaded with three separate load cases solved against the one
// factorization — the multiple-RHS pattern typical of engineering runs:
//   1. gravity (uniform -z body force),
//   2. lateral wind (uniform +x body force),
//   3. tip point load.
//
// Build & run:  ./build/examples/structural_elasticity [ne]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/solver.h"
#include "sparse/gen.h"

using namespace parfact;

int main(int argc, char** argv) {
  index_t ne = 12;  // elements per edge
  if (argc == 2) ne = std::atoi(argv[1]);
  const index_t nn = ne + 1;          // nodes per edge
  const index_t n = 3 * nn * nn * nn; // dofs
  std::printf("cantilever block: %d^3 elements, %d dofs\n", ne, n);

  const SparseMatrix k = elasticity_3d(ne, ne, ne, /*e_modulus=*/1.0,
                                       /*nu=*/0.3);

  SolverOptions opts;
  opts.threads = 2;  // shared-memory tree parallelism
  Solver solver(opts);
  solver.analyze(k);
  solver.factorize();
  std::printf("factor: nnz(L)=%lld, %.2f GFLOP, %.2fs\n",
              static_cast<long long>(solver.report().nnz_factor),
              static_cast<double>(solver.report().factor_flops) / 1e9,
              solver.report().factor_seconds);

  const auto dof = [nn](index_t x, index_t y, index_t z, int c) {
    return 3 * ((z * nn + y) * nn + x) + c;
  };

  // Load cases.
  std::vector<std::vector<real_t>> loads(3,
                                         std::vector<real_t>(n, 0.0));
  for (index_t i = 0; i < n / 3; ++i) {
    loads[0][3 * i + 2] = -1e-3;  // gravity
    loads[1][3 * i + 0] = 5e-4;   // wind
  }
  loads[2][dof(nn - 1, nn / 2, nn - 1, 2)] = -0.1;  // tip point load

  const char* names[] = {"gravity", "wind", "tip load"};
  for (int c = 0; c < 3; ++c) {
    const std::vector<real_t> u = solver.solve_refined(loads[c]);
    // Tip deflection magnitude at the top corner.
    const index_t tip = dof(nn - 1, nn - 1, nn - 1, 0);
    const real_t ux = u[tip];
    const real_t uy = u[tip + 1];
    const real_t uz = u[tip + 2];
    std::printf("%-8s: tip displacement = (%+.4e, %+.4e, %+.4e), |u|=%.4e, "
                "resid=%.1e\n",
                names[c], ux, uy, uz,
                std::sqrt(ux * ux + uy * uy + uz * uz),
                solver.residual(u, loads[c]));
  }
  return 0;
}
