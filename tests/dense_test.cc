// Tests for the dense kernels: POTRF / TRSM / SYRK / GEMM against naive
// reference implementations, across a sweep of shapes.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dense/kernels.h"
#include "dense/matrix_view.h"
#include "support/prng.h"
#include "support/thread_pool.h"

namespace parfact {
namespace {

/// Owning column-major matrix for tests.
struct Dense {
  index_t rows, cols;
  std::vector<real_t> v;
  Dense(index_t r, index_t c) : rows(r), cols(c),
      v(static_cast<std::size_t>(r) * c, 0.0) {}
  MatrixView view() { return {v.data(), rows, cols, rows}; }
  ConstMatrixView cview() const { return {v.data(), rows, cols, rows}; }
  real_t& at(index_t i, index_t j) {
    return v[static_cast<std::size_t>(j) * rows + i];
  }
  real_t at(index_t i, index_t j) const {
    return v[static_cast<std::size_t>(j) * rows + i];
  }
};

Dense random_matrix(index_t r, index_t c, std::uint64_t seed) {
  Dense d(r, c);
  Prng rng(seed);
  for (auto& x : d.v) x = rng.next_real(-1, 1);
  return d;
}

/// SPD matrix: R Rᵀ + n I for random R.
Dense random_spd_dense(index_t n, std::uint64_t seed) {
  const Dense r = random_matrix(n, n, seed);
  Dense a(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      real_t s = (i == j) ? static_cast<real_t>(n) : 0.0;
      for (index_t k = 0; k < n; ++k) s += r.at(i, k) * r.at(j, k);
      a.at(i, j) = s;
    }
  }
  return a;
}

class PotrfTest : public ::testing::TestWithParam<index_t> {};

TEST_P(PotrfTest, ReconstructsMatrix) {
  const index_t n = GetParam();
  Dense a = random_spd_dense(n, 100 + static_cast<std::uint64_t>(n));
  const Dense a0 = a;
  ASSERT_EQ(potrf_lower(a.view()), kNone);
  // Check L Lᵀ == A0 on the lower triangle.
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      real_t s = 0.0;
      for (index_t k = 0; k <= j; ++k) s += a.at(i, k) * a.at(j, k);
      EXPECT_NEAR(s, a0.at(i, j), 1e-9 * n) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PotrfTest,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 64, 65, 100,
                                           150, 260));

TEST(Potrf, DetectsNonSpd) {
  Dense a(3, 3);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = -2.0;  // negative pivot at column 1
  a.at(2, 2) = 1.0;
  EXPECT_EQ(potrf_lower(a.view()), 1);
}

TEST(Potrf, DetectsNonSpdInLaterBlock) {
  // Make an SPD matrix, then poison a diagonal entry beyond the first block.
  const index_t n = 90;
  Dense a = random_spd_dense(n, 7);
  a.at(80, 80) = -1e6;
  const index_t info = potrf_lower(a.view());
  EXPECT_NE(info, kNone);
  EXPECT_GE(info, 64);  // failure is inside the second block
}

TEST(Trsm, RightLowerTransSolves) {
  const index_t n = 20, m = 13;
  Dense l = random_matrix(n, n, 5);
  for (index_t j = 0; j < n; ++j) {
    l.at(j, j) = 2.0 + std::abs(l.at(j, j));
    for (index_t i = 0; i < j; ++i) l.at(i, j) = 0.0;
  }
  const Dense b0 = random_matrix(m, n, 6);
  Dense b = b0;
  trsm_right_lower_trans(l.cview(), b.view());
  // Check B_new * Lᵀ == B0: (X Lᵀ)(i,j) = sum_{k<=j} X(i,k) L(j,k).
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      real_t s = 0.0;
      for (index_t k = 0; k <= j; ++k) s += b.at(i, k) * l.at(j, k);
      EXPECT_NEAR(s, b0.at(i, j), 1e-10);
    }
  }
}

TEST(Trsm, LeftLowerForwardAndBackwardAreInverses) {
  const index_t n = 25, rhs = 4;
  Dense l = random_matrix(n, n, 8);
  for (index_t j = 0; j < n; ++j) {
    l.at(j, j) = 1.5 + std::abs(l.at(j, j));
    for (index_t i = 0; i < j; ++i) l.at(i, j) = 0.0;
  }
  const Dense x0 = random_matrix(n, rhs, 9);
  Dense x = x0;
  trsm_left_lower(l.cview(), x.view());
  // L * x == x0.
  for (index_t c = 0; c < rhs; ++c) {
    for (index_t i = 0; i < n; ++i) {
      real_t s = 0.0;
      for (index_t k = 0; k <= i; ++k) s += l.at(i, k) * x.at(k, c);
      EXPECT_NEAR(s, x0.at(i, c), 1e-10);
    }
  }
  // Backward of forward with Lᵀ then L recovers identity behaviour:
  Dense y = x0;
  trsm_left_lower(l.cview(), y.view());
  trsm_left_lower_trans(l.cview(), y.view());
  // y == (L Lᵀ)⁻¹ x0; check L Lᵀ y == x0.
  for (index_t c = 0; c < rhs; ++c) {
    std::vector<real_t> t(static_cast<std::size_t>(n), 0.0);
    for (index_t i = 0; i < n; ++i) {
      for (index_t k = i; k < n; ++k) t[i] += l.at(k, i) * y.at(k, c);
    }
    for (index_t i = 0; i < n; ++i) {
      real_t s = 0.0;
      for (index_t k = 0; k <= i; ++k) s += l.at(i, k) * t[k];
      EXPECT_NEAR(s, x0.at(i, c), 1e-9);
    }
  }
}

struct GemmShape {
  index_t m, n, k;
};

class GemmTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmTest, NtMatchesReference) {
  const auto [m, n, k] = GetParam();
  Dense c = random_matrix(m, n, 11);
  const Dense c0 = c;
  const Dense a = random_matrix(m, k, 12);
  const Dense b = random_matrix(n, k, 13);
  gemm_nt_update(c.view(), a.cview(), b.cview());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      real_t s = c0.at(i, j);
      for (index_t kk = 0; kk < k; ++kk) s -= a.at(i, kk) * b.at(j, kk);
      EXPECT_NEAR(c.at(i, j), s, 1e-11 * (k + 1));
    }
  }
}

TEST_P(GemmTest, NnMatchesReference) {
  const auto [m, n, k] = GetParam();
  Dense c = random_matrix(m, n, 21);
  const Dense c0 = c;
  const Dense a = random_matrix(m, k, 22);
  const Dense b = random_matrix(k, n, 23);
  gemm_nn_update(c.view(), a.cview(), b.cview());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      real_t s = c0.at(i, j);
      for (index_t kk = 0; kk < k; ++kk) s -= a.at(i, kk) * b.at(kk, j);
      EXPECT_NEAR(c.at(i, j), s, 1e-11 * (k + 1));
    }
  }
}

TEST_P(GemmTest, TnMatchesReference) {
  const auto [m, n, k] = GetParam();
  Dense c = random_matrix(m, n, 31);
  const Dense c0 = c;
  const Dense a = random_matrix(k, m, 32);
  const Dense b = random_matrix(k, n, 33);
  gemm_tn_update(c.view(), a.cview(), b.cview());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      real_t s = c0.at(i, j);
      for (index_t kk = 0; kk < k; ++kk) s -= a.at(kk, i) * b.at(kk, j);
      EXPECT_NEAR(c.at(i, j), s, 1e-11 * (k + 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{5, 3, 2},
                      GemmShape{17, 9, 33}, GemmShape{64, 64, 64},
                      GemmShape{65, 70, 130}, GemmShape{1, 40, 8},
                      GemmShape{40, 1, 8}));

// Shapes chosen to hit the packed engine's blocking edges: primes not
// divisible by MR/NR/MC/KC, exact multiples, a KC boundary straddle, and
// degenerate tall/flat panels. The small shapes above stay on the fallback
// loops; everything here goes through pack + micro-kernel dispatch.
INSTANTIATE_TEST_SUITE_P(
    EngineShapes, GemmTest,
    ::testing::Values(GemmShape{257, 263, 300}, GemmShape{96, 96, 256},
                      GemmShape{97, 101, 257}, GemmShape{8, 6, 512},
                      GemmShape{200, 5, 300}, GemmShape{7, 200, 300},
                      GemmShape{1, 1, 2048}));

TEST(Syrk, MatchesReferenceLowerOnly) {
  const index_t n = 50, k = 30;
  Dense c = random_matrix(n, n, 41);
  const Dense c0 = c;
  const Dense a = random_matrix(n, k, 42);
  syrk_lower_update(c.view(), a.cview());
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (j > i) {
        // Strict upper triangle untouched.
        EXPECT_EQ(c.at(i, j), c0.at(i, j));
        continue;
      }
      real_t s = c0.at(i, j);
      for (index_t kk = 0; kk < k; ++kk) s -= a.at(i, kk) * a.at(j, kk);
      EXPECT_NEAR(c.at(i, j), s, 1e-11 * (k + 1));
    }
  }
}

TEST(Syrk, EngineSizedMatchesReference) {
  // Large enough that the packed engine (gemm strip + triangular diagonal
  // tiles) handles it, with n, k off every blocking boundary.
  const index_t n = 201, k = 129;
  Dense c = random_matrix(n, n, 43);
  const Dense c0 = c;
  const Dense a = random_matrix(n, k, 44);
  syrk_lower_update(c.view(), a.cview());
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (j > i) {
        EXPECT_EQ(c.at(i, j), c0.at(i, j));
        continue;
      }
      real_t s = c0.at(i, j);
      for (index_t kk = 0; kk < k; ++kk) s -= a.at(i, kk) * a.at(j, kk);
      EXPECT_NEAR(c.at(i, j), s, 1e-11 * (k + 1));
    }
  }
}

TEST(Trsm, EngineSizedRightLowerTransSolves) {
  // Engages the blocked TRSM path (n > block size) with a GEMM-updated
  // left part per column block.
  const index_t n = 150, m = 300;
  Dense l = random_matrix(n, n, 45);
  for (index_t j = 0; j < n; ++j) {
    l.at(j, j) = 2.0 + std::abs(l.at(j, j));
    for (index_t i = 0; i < j; ++i) l.at(i, j) = 0.0;
  }
  const Dense b0 = random_matrix(m, n, 46);
  Dense b = b0;
  trsm_right_lower_trans(l.cview(), b.view());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      real_t s = 0.0;
      for (index_t k = 0; k <= j; ++k) s += b.at(i, k) * l.at(j, k);
      EXPECT_NEAR(s, b0.at(i, j), 1e-9);
    }
  }
}

// --- Pool variants: must be bitwise identical to the serial kernels ---------
//
// The engine's per-element summation order depends only on how k is cut
// into KC blocks, never on how rows are split, so handing a pool to a
// kernel must not change a single bit of the result.

class PoolKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(PoolKernelTest, GemmNtBitwiseEqualsSerial) {
  ThreadPool pool(GetParam());
  const index_t m = 300, n = 200, k = 160;
  Dense cs = random_matrix(m, n, 61);
  Dense cp = cs;
  const Dense a = random_matrix(m, k, 62);
  const Dense b = random_matrix(n, k, 63);
  gemm_nt_update(cs.view(), a.cview(), b.cview());
  gemm_nt_update(cp.view(), a.cview(), b.cview(), &pool);
  for (std::size_t i = 0; i < cs.v.size(); ++i) {
    ASSERT_EQ(cs.v[i], cp.v[i]) << "flat index " << i;
  }
}

TEST_P(PoolKernelTest, SyrkBitwiseEqualsSerial) {
  ThreadPool pool(GetParam());
  const index_t n = 280, k = 170;
  Dense cs = random_matrix(n, n, 64);
  Dense cp = cs;
  const Dense a = random_matrix(n, k, 65);
  syrk_lower_update(cs.view(), a.cview());
  syrk_lower_update(cp.view(), a.cview(), &pool);
  for (std::size_t i = 0; i < cs.v.size(); ++i) {
    ASSERT_EQ(cs.v[i], cp.v[i]) << "flat index " << i;
  }
}

TEST_P(PoolKernelTest, TrsmBitwiseEqualsSerial) {
  ThreadPool pool(GetParam());
  const index_t n = 140, m = 400;
  Dense l = random_matrix(n, n, 66);
  for (index_t j = 0; j < n; ++j) {
    l.at(j, j) = 2.0 + std::abs(l.at(j, j));
    for (index_t i = 0; i < j; ++i) l.at(i, j) = 0.0;
  }
  Dense bs = random_matrix(m, n, 67);
  Dense bp = bs;
  trsm_right_lower_trans(l.cview(), bs.view());
  trsm_right_lower_trans(l.cview(), bp.view(), &pool);
  for (std::size_t i = 0; i < bs.v.size(); ++i) {
    ASSERT_EQ(bs.v[i], bp.v[i]) << "flat index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, PoolKernelTest, ::testing::Values(1, 2, 5));

TEST(Views, BlockIndexing) {
  Dense d = random_matrix(6, 5, 51);
  const MatrixView v = d.view();
  const MatrixView b = v.block(2, 1, 3, 2);
  EXPECT_EQ(b.rows, 3);
  EXPECT_EQ(b.cols, 2);
  EXPECT_EQ(&b.at(0, 0), &v.at(2, 1));
  EXPECT_EQ(&b.at(2, 1), &v.at(4, 2));
  b.fill(7.0);
  EXPECT_EQ(d.at(3, 1), 7.0);
  EXPECT_NE(d.at(1, 1), 7.0);
}

TEST(Calibration, GemmRateIsPositive) {
  const double rate = measure_gemm_rate(48);
  EXPECT_GT(rate, 1e6);  // any machine does > 1 Mflop/s
}

}  // namespace
}  // namespace parfact
