// Tests for the alternative engines and baselines: left-looking supernodal
// factorization, IC(0), and (preconditioned) conjugate gradients.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "api/solver.h"
#include "baseline/iccg.h"
#include "baseline/left_looking.h"
#include "baseline/simplicial.h"
#include "mf/multifrontal.h"
#include "solve/solve.h"
#include "sparse/gen.h"
#include "sparse/ops.h"
#include "support/prng.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {
namespace {

std::vector<real_t> random_vector(index_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<real_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.next_real(-1, 1);
  return v;
}

// --- Left-looking supernodal -------------------------------------------------

class LeftLookingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeftLookingTest, MatchesMultifrontalOnRandomSpd) {
  const SparseMatrix a = random_spd(120, 4, GetParam());
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor mf = multifrontal_factor(sym);
  const CholeskyFactor ll = left_looking_factor(sym);
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const ConstMatrixView pm = mf.panel(s);
    const ConstMatrixView pl = ll.panel(s);
    for (index_t j = 0; j < pm.cols; ++j) {
      for (index_t i = j; i < pm.rows; ++i) {
        ASSERT_NEAR(pm.at(i, j), pl.at(i, j), 1e-10)
            << "sn " << s << " (" << i << "," << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeftLookingTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(LeftLooking, SolvesSuiteMatrices) {
  for (const auto& prob : test_suite(0.1)) {
    const SymbolicFactor sym = analyze_nested_dissection(prob.lower);
    FactorStats stats;
    const CholeskyFactor f = left_looking_factor(sym, &stats);
    EXPECT_EQ(stats.peak_update_bytes, 0u);  // no update stack by design
    const auto b = random_vector(sym.n, 3);
    std::vector<real_t> x = b;
    solve_in_place(f, MatrixView{x.data(), sym.n, 1, sym.n});
    EXPECT_LT(relative_residual(sym.a, x, b), 1e-12) << prob.name;
  }
}

TEST(LeftLooking, ThrowsOnIndefinite) {
  TripletBuilder b(3, 3);
  for (index_t j = 0; j < 3; ++j) b.add(j, j, 1.0);
  b.add(2, 1, 4.0);
  const SymbolicFactor sym = analyze(b.build());
  EXPECT_THROW(left_looking_factor(sym), Error);
}

TEST(LeftLooking, HandlesAmalgamatedAndPlainSupernodes) {
  const SparseMatrix a = grid_laplacian_3d(6, 6, 6, 7);
  AmalgamationOptions off;
  off.enable = false;
  for (const auto& sym : {analyze(a), analyze(a, off)}) {
    const CholeskyFactor mf = multifrontal_factor(sym);
    const CholeskyFactor ll = left_looking_factor(sym);
    for (index_t j = 0; j < sym.n; ++j) {
      ASSERT_NEAR(mf.entry(j, j), ll.entry(j, j), 1e-11);
    }
  }
}

// --- IC(0) -------------------------------------------------------------------

TEST(Ic0, PatternPreservedAndExactOnNoFillMatrix) {
  // A tridiagonal matrix factors with zero fill, so IC(0) == full Cholesky.
  const SparseMatrix a = banded_spd(25, 1);
  const SparseMatrix l_ic = incomplete_cholesky0(a);
  const SparseMatrix l_full = simplicial_cholesky(a);
  ASSERT_EQ(l_ic.col_ptr, l_full.col_ptr);
  ASSERT_EQ(l_ic.row_ind, l_full.row_ind);
  for (std::size_t k = 0; k < l_ic.values.size(); ++k) {
    EXPECT_NEAR(l_ic.values[k], l_full.values[k], 1e-13);
  }
}

TEST(Ic0, KeepsInputPattern) {
  const SparseMatrix a = grid_laplacian_2d(10, 10, 5);
  const SparseMatrix l = incomplete_cholesky0(a);
  EXPECT_EQ(l.col_ptr, a.col_ptr);
  EXPECT_EQ(l.row_ind, a.row_ind);
}

TEST(Ic0, IsAReasonableApproximation) {
  // ‖A - L Lᵀ‖_F must be small relative to ‖A‖_F on a Laplacian (the error
  // lives only in the dropped fill positions).
  const SparseMatrix a = grid_laplacian_2d(14, 14, 5);
  const SparseMatrix l = incomplete_cholesky0(a);
  // Compute L Lᵀ restricted error via matvec probes.
  Prng rng(4);
  real_t err = 0.0;
  for (int probe = 0; probe < 5; ++probe) {
    std::vector<real_t> v(static_cast<std::size_t>(a.rows));
    for (auto& x : v) x = rng.next_real(-1, 1);
    // y1 = A v; y2 = L (Lᵀ v).
    std::vector<real_t> y1(v.size());
    spmv_symmetric_lower(a, v, y1);
    std::vector<real_t> y2 = v;
    // Lᵀ v then L *: use transpose trick with the CSC lower factor.
    std::vector<real_t> t(v.size(), 0.0);
    for (index_t j = 0; j < l.cols; ++j) {
      real_t s = 0.0;
      for (index_t p = l.col_ptr[j]; p < l.col_ptr[j + 1]; ++p) {
        s += l.values[p] * v[l.row_ind[p]];
      }
      t[j] = s;
    }
    std::fill(y2.begin(), y2.end(), 0.0);
    for (index_t j = 0; j < l.cols; ++j) {
      for (index_t p = l.col_ptr[j]; p < l.col_ptr[j + 1]; ++p) {
        y2[l.row_ind[p]] += l.values[p] * t[j];
      }
    }
    for (std::size_t i = 0; i < v.size(); ++i) {
      err = std::max(err, std::abs(y1[i] - y2[i]));
    }
  }
  EXPECT_LT(err, 1.0);  // A has entries O(4); dropped fill is a fraction
  EXPECT_GT(err, 1e-8);  // but IC(0) is genuinely incomplete here
}

// --- CG ----------------------------------------------------------------------

TEST(Cg, ConvergesOnLaplacian) {
  const SparseMatrix a = grid_laplacian_2d(20, 20, 5);
  const auto b = random_vector(a.rows, 5);
  std::vector<real_t> x(b.size(), 0.0);
  const CgResult r = conjugate_gradient(a, b, x, nullptr, 2000, 1e-10);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(relative_residual(a, x, b), 1e-9);
}

TEST(Cg, PreconditioningCutsIterations) {
  const SparseMatrix a = grid_laplacian_2d(30, 30, 5);
  const auto b = random_vector(a.rows, 6);
  std::vector<real_t> x0(b.size(), 0.0);
  std::vector<real_t> x1(b.size(), 0.0);
  const CgResult plain = conjugate_gradient(a, b, x0, nullptr, 5000, 1e-10);
  const SparseMatrix ic = incomplete_cholesky0(a);
  const CgResult pre = conjugate_gradient(a, b, x1, &ic, 5000, 1e-10);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations / 2);
}

TEST(Cg, MatchesDirectSolve) {
  const SparseMatrix a = grid_laplacian_3d(6, 6, 6, 7);
  const auto b = random_vector(a.rows, 7);
  std::vector<real_t> x_cg(b.size(), 0.0);
  const SparseMatrix ic = incomplete_cholesky0(a);
  (void)conjugate_gradient(a, b, x_cg, &ic, 2000, 1e-12);
  Solver solver;
  solver.analyze(a);
  solver.factorize();
  const auto x_direct = solver.solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(x_cg[i], x_direct[i], 1e-7);
  }
}

TEST(Cg, FactorPreconditionedCgOnPerturbedMatrix) {
  // Factor A, then solve with a slightly perturbed A' using the stale
  // factor as preconditioner: convergence in very few iterations.
  const SparseMatrix a = grid_laplacian_3d(7, 7, 7, 7);
  const SymbolicFactor sym = analyze_nested_dissection(a);
  const CholeskyFactor f = multifrontal_factor(sym);
  // Perturb the postordered matrix's diagonal by ~3%.
  SparseMatrix perturbed = sym.a;
  Prng prng(17);
  for (index_t j = 0; j < perturbed.cols; ++j) {
    perturbed.values[perturbed.col_ptr[j]] *=
        1.0 + 0.03 * prng.next_real(-1, 1);
  }
  const auto b = random_vector(perturbed.rows, 19);
  std::vector<real_t> x(b.size(), 0.0);
  const CgResult r = conjugate_gradient_factor_preconditioned(
      perturbed, f, b, x, 50, 1e-12);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 15);
  EXPECT_LT(relative_residual(perturbed, x, b), 1e-11);
}

TEST(Cg, FactorPreconditionedIsExactOnUnperturbedMatrix) {
  // With the exact factor as preconditioner, CG converges in one step.
  const SparseMatrix a = random_spd(80, 3, 23);
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor f = multifrontal_factor(sym);
  const auto b = random_vector(sym.n, 29);
  std::vector<real_t> x(b.size(), 0.0);
  const CgResult r =
      conjugate_gradient_factor_preconditioned(sym.a, f, b, x, 10, 1e-12);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
}

TEST(Cg, ZeroRhsGivesZeroSolution) {
  const SparseMatrix a = banded_spd(12, 2);
  std::vector<real_t> b(12, 0.0);
  std::vector<real_t> x(12, 3.0);
  const CgResult r = conjugate_gradient(a, b, x);
  EXPECT_TRUE(r.converged);
  for (real_t v : x) EXPECT_EQ(v, 0.0);
}

TEST(Cg, RespectsIterationCap) {
  const SparseMatrix a = grid_laplacian_2d(40, 40, 5);
  const auto b = random_vector(a.rows, 8);
  std::vector<real_t> x(b.size(), 0.0);
  const CgResult r = conjugate_gradient(a, b, x, nullptr, 3, 1e-14);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
}

}  // namespace
}  // namespace parfact
