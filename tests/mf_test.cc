// Tests for the multifrontal factorization, the solve phase, and agreement
// with the simplicial baseline.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/simplicial.h"
#include "mf/multifrontal.h"
#include "solve/solve.h"
#include "sparse/gen.h"
#include "sparse/ops.h"
#include "support/prng.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {
namespace {

std::vector<real_t> random_vector(index_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<real_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.next_real(-1, 1);
  return v;
}

/// Residual of solving A x = b with the multifrontal pipeline, where A is
/// the postordered matrix inside the symbolic factor.
real_t factor_and_solve_residual(const SymbolicFactor& sym,
                                 const CholeskyFactor& factor,
                                 std::uint64_t seed) {
  const index_t n = sym.n;
  const std::vector<real_t> b = random_vector(n, seed);
  std::vector<real_t> x = b;
  solve_in_place(factor, MatrixView{x.data(), n, 1, n});
  return relative_residual(sym.a, x, b);
}

TEST(Multifrontal, SolvesSuiteMatrices) {
  for (const auto& prob : test_suite(0.12)) {
    const SymbolicFactor sym = analyze(prob.lower);
    FactorStats stats;
    const CholeskyFactor f = multifrontal_factor(sym, &stats);
    EXPECT_LT(factor_and_solve_residual(sym, f, 1), 1e-12) << prob.name;
    EXPECT_EQ(stats.flops, sym.total_flops);
    EXPECT_GT(stats.peak_update_bytes, 0u) << prob.name;
  }
}

TEST(Multifrontal, MatchesSimplicialFactor) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const SparseMatrix a = random_spd(80, 4, seed);
    const SymbolicFactor sym = analyze(a);
    const CholeskyFactor mf = multifrontal_factor(sym);
    // Same (postordered) matrix through the simplicial path.
    const SparseMatrix ls = simplicial_cholesky(sym.a);
    for (index_t j = 0; j < sym.n; ++j) {
      for (index_t p = ls.col_ptr[j]; p < ls.col_ptr[j + 1]; ++p) {
        EXPECT_NEAR(mf.entry(ls.row_ind[p], j), ls.values[p], 1e-10)
            << "seed " << seed << " at (" << ls.row_ind[p] << "," << j << ")";
      }
    }
  }
}

TEST(Multifrontal, DiagonalMatrix) {
  TripletBuilder b(4, 4);
  for (index_t j = 0; j < 4; ++j) b.add(j, j, static_cast<real_t>(j + 1));
  const SymbolicFactor sym = analyze(b.build());
  const CholeskyFactor f = multifrontal_factor(sym);
  for (index_t j = 0; j < 4; ++j) {
    // Postorder of a forest of singleton roots is the identity.
    EXPECT_NEAR(f.entry(j, j), std::sqrt(static_cast<real_t>(sym.post[j] + 1)),
                1e-15);
  }
}

TEST(Multifrontal, OneByOne) {
  TripletBuilder b(1, 1);
  b.add(0, 0, 9.0);
  const SymbolicFactor sym = analyze(b.build());
  const CholeskyFactor f = multifrontal_factor(sym);
  EXPECT_DOUBLE_EQ(f.entry(0, 0), 3.0);
}

TEST(Multifrontal, ThrowsOnIndefiniteMatrix) {
  TripletBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  b.add(2, 2, 1.0);
  b.add(1, 0, 5.0);  // 2x2 leading block has negative determinant
  const SymbolicFactor sym = analyze(b.build());
  EXPECT_THROW(multifrontal_factor(sym), Error);
}

TEST(Multifrontal, AmalgamationDoesNotChangeSolution) {
  const SparseMatrix a = grid_laplacian_2d(15, 15, 5);
  AmalgamationOptions off;
  off.enable = false;
  const SymbolicFactor sym_off = analyze(a, off);
  const SymbolicFactor sym_on = analyze(a);
  const CholeskyFactor f_off = multifrontal_factor(sym_off);
  const CholeskyFactor f_on = multifrontal_factor(sym_on);
  // Solve with identical b through both and compare in original order.
  const index_t n = a.rows;
  const std::vector<real_t> b = random_vector(n, 5);
  auto solve_original = [&](const SymbolicFactor& sym,
                            const CholeskyFactor& f) {
    std::vector<real_t> pb(static_cast<std::size_t>(n));
    const auto inv = invert_permutation(sym.post);
    for (index_t i = 0; i < n; ++i) pb[inv[i]] = b[i];
    solve_in_place(f, MatrixView{pb.data(), n, 1, n});
    std::vector<real_t> x(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) x[i] = pb[inv[i]];
    return x;
  };
  const auto x1 = solve_original(sym_off, f_off);
  const auto x2 = solve_original(sym_on, f_on);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

class ParallelFactorTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelFactorTest, MatchesSerialBitwise) {
  const int threads = GetParam();
  const SparseMatrix a = grid_laplacian_3d(7, 7, 7, 7);
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor serial = multifrontal_factor(sym);
  ThreadPool pool(threads);
  FactorStats stats;
  const CholeskyFactor par = multifrontal_factor_parallel(sym, pool, &stats);
  // Deterministic extend-add order means bitwise identical results.
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const ConstMatrixView ps = serial.panel(s);
    const ConstMatrixView pp = par.panel(s);
    for (index_t j = 0; j < ps.cols; ++j) {
      for (index_t i = j; i < ps.rows; ++i) {
        ASSERT_EQ(ps.at(i, j), pp.at(i, j)) << "sn " << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelFactorTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelFactor, CooperativePathMatchesSerialBitwise) {
  // coop_flops = 0 pushes every supernode into the cooperative phase, so
  // this exercises the pool-split TRSM/SYRK row partitioning on every
  // front. The intra-front split must not change the summation order, so
  // the result has to be bitwise identical to the serial factorization.
  const SparseMatrix a = grid_laplacian_3d(7, 7, 7, 7);
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor serial = multifrontal_factor(sym);
  ThreadPool pool(4);
  const CholeskyFactor par = multifrontal_factor_parallel(
      sym, pool, nullptr, FactorKind::kCholesky, /*coop_flops=*/0);
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const ConstMatrixView ps = serial.panel(s);
    const ConstMatrixView pp = par.panel(s);
    for (index_t j = 0; j < ps.cols; ++j) {
      for (index_t i = j; i < ps.rows; ++i) {
        ASSERT_EQ(ps.at(i, j), pp.at(i, j)) << "sn " << s;
      }
    }
  }
}

TEST(ParallelFactor, MixedPhasesMatchSerialBitwise) {
  // A mid-range threshold makes phase 1 (task-per-supernode subtrees) and
  // phase 2 (cooperative top of the tree) both non-trivial.
  const SparseMatrix a = grid_laplacian_3d(8, 8, 8, 7);
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor serial = multifrontal_factor(sym);
  ThreadPool pool(3);
  const CholeskyFactor par = multifrontal_factor_parallel(
      sym, pool, nullptr, FactorKind::kCholesky, /*coop_flops=*/100'000);
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const ConstMatrixView ps = serial.panel(s);
    const ConstMatrixView pp = par.panel(s);
    for (index_t j = 0; j < ps.cols; ++j) {
      for (index_t i = j; i < ps.rows; ++i) {
        ASSERT_EQ(ps.at(i, j), pp.at(i, j)) << "sn " << s;
      }
    }
  }
}

TEST(ParallelFactor, PropagatesNotSpd) {
  TripletBuilder b(5, 5);
  for (index_t j = 0; j < 5; ++j) b.add(j, j, 1.0);
  b.add(4, 3, 5.0);
  const SymbolicFactor sym = analyze(b.build());
  ThreadPool pool(2);
  EXPECT_THROW(multifrontal_factor_parallel(sym, pool), Error);
}

// --- Solve phase ------------------------------------------------------------

TEST(Solve, MultipleRhs) {
  const SparseMatrix a = grid_laplacian_2d(12, 11, 5);
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor f = multifrontal_factor(sym);
  const index_t n = sym.n;
  const index_t nrhs = 5;
  std::vector<real_t> xs(static_cast<std::size_t>(n) * nrhs);
  Prng rng(3);
  for (auto& v : xs) v = rng.next_real(-1, 1);
  const std::vector<real_t> bs = xs;
  solve_in_place(f, MatrixView{xs.data(), n, nrhs, n});
  for (index_t c = 0; c < nrhs; ++c) {
    const std::span<const real_t> x(xs.data() + static_cast<std::size_t>(c) * n,
                                    static_cast<std::size_t>(n));
    const std::span<const real_t> b(bs.data() + static_cast<std::size_t>(c) * n,
                                    static_cast<std::size_t>(n));
    EXPECT_LT(relative_residual(sym.a, x, b), 1e-13) << "rhs " << c;
  }
}

TEST(Solve, IterativeRefinementImproves) {
  const SparseMatrix a = grid_laplacian_3d(6, 6, 6, 27);
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor f = multifrontal_factor(sym);
  const index_t n = sym.n;
  const auto b = random_vector(n, 8);
  std::vector<real_t> x = b;
  solve_in_place(f, MatrixView{x.data(), n, 1, n});
  // Perturb the solution to force refinement work.
  for (index_t i = 0; i < n; i += 7) x[i] += 1e-6;
  const real_t before = relative_residual(sym.a, x, b);
  const RefinementResult r =
      iterative_refinement(sym.a, f, b, x, /*max_iterations=*/4, 1e-15);
  EXPECT_LT(r.residual, before);
  EXPECT_LT(r.residual, 1e-13);
  EXPECT_GE(r.iterations, 1);
}

TEST(Solve, ResidualOfExactSolutionIsZero) {
  const SparseMatrix a = banded_spd(30, 2);
  std::vector<real_t> x(30, 0.0);
  std::vector<real_t> b(30, 0.0);
  EXPECT_DOUBLE_EQ(relative_residual(a, x, b), 0.0);
}

// --- Simplicial baseline -----------------------------------------------------

TEST(Simplicial, SolvesAndMatchesResidual) {
  for (std::uint64_t seed : {4u, 5u}) {
    const SparseMatrix a = random_spd(100, 4, seed);
    SimplicialStats stats;
    const SparseMatrix l = simplicial_cholesky(a, &stats);
    l.validate();
    EXPECT_GT(stats.nnz_l, a.nnz());
    const auto b = random_vector(100, seed);
    std::vector<real_t> x = b;
    simplicial_forward_solve(l, x);
    simplicial_backward_solve(l, x);
    EXPECT_LT(relative_residual(a, x, b), 1e-12);
  }
}

TEST(Simplicial, NnzMatchesSymbolicPrediction) {
  const SparseMatrix a = grid_laplacian_2d(13, 13, 5);
  const SymbolicFactor sym = analyze(a);
  SimplicialStats stats;
  (void)simplicial_cholesky(sym.a, &stats);
  EXPECT_EQ(stats.nnz_l, sym.nnz_strict);
}

TEST(Simplicial, ThrowsOnIndefinite) {
  TripletBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  b.add(1, 0, 3.0);
  EXPECT_THROW(simplicial_cholesky(b.build()), Error);
}

TEST(DenseBaseline, MatchesSparseSolvers) {
  const SparseMatrix a = random_spd(40, 3, 9);
  const auto b = random_vector(40, 10);
  std::vector<real_t> xd = b;
  dense_cholesky_solve(a, xd);
  EXPECT_LT(relative_residual(a, xd, b), 1e-12);
}

}  // namespace
}  // namespace parfact
