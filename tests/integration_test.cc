// Cross-module integration tests: full pipelines that chain I/O, ordering,
// symbolic analysis, numeric factorization (serial / threaded / distributed)
// and solves, checked against each other and against manufactured solutions.
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "api/solver.h"
#include "baseline/simplicial.h"
#include "dist/dist_factor.h"
#include "dist/dist_solve.h"
#include "mf/multifrontal.h"
#include "perf/dag_sim.h"
#include "solve/solve.h"
#include "sparse/gen.h"
#include "sparse/io.h"
#include "sparse/ops.h"
#include "support/prng.h"

namespace parfact {
namespace {

TEST(Integration, MatrixMarketRoundTripThroughSolver) {
  // Write a matrix to Matrix Market text, read it back, solve, and compare
  // against solving the original.
  const SparseMatrix a = elasticity_3d(3, 2, 2);
  std::stringstream ss;
  write_matrix_market(ss, a, /*symmetric=*/true);
  const MatrixMarketData data = read_matrix_market(ss);
  ASSERT_TRUE(data.symmetric);

  const std::vector<real_t> ones(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<real_t> b(ones.size());
  spmv_symmetric_lower(a, ones, b);

  Solver s1, s2;
  s1.analyze(a);
  s1.factorize();
  s2.analyze(data.matrix);
  s2.factorize();
  const auto x1 = s1.solve(b);
  const auto x2 = s2.solve(b);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_NEAR(x1[i], x2[i], 1e-12);
    EXPECT_NEAR(x1[i], 1.0, 1e-8);
  }
}

TEST(Integration, FourEnginesAgree) {
  // Serial multifrontal, threaded multifrontal, distributed multifrontal
  // and the simplicial baseline must all produce the same solution.
  const SparseMatrix a = grid_laplacian_3d(7, 8, 6, 7);
  const SymbolicFactor sym = analyze_nested_dissection(a);
  Prng rng(5);
  std::vector<real_t> b(static_cast<std::size_t>(sym.n));
  for (auto& v : b) v = rng.next_real(-1, 1);

  // 1. Serial.
  const CholeskyFactor serial = multifrontal_factor(sym);
  std::vector<real_t> x_serial = b;
  solve_in_place(serial, MatrixView{x_serial.data(), sym.n, 1, sym.n});

  // 2. Threaded.
  ThreadPool pool(3);
  const CholeskyFactor threaded = multifrontal_factor_parallel(sym, pool);
  std::vector<real_t> x_threaded = b;
  solve_in_place(threaded, MatrixView{x_threaded.data(), sym.n, 1, sym.n});

  // 3. Distributed (real message passing, 6 ranks) + distributed solve.
  const FrontMap map = build_front_map(sym, 6, MappingStrategy::kSubtree2d, 8);
  const DistFactorResult dist = distributed_factor(sym, map);
  const DistSolveResult ds = distributed_solve(sym, map, dist.factor, b, 1);

  // 4. Simplicial.
  const SparseMatrix l = simplicial_cholesky(sym.a);
  std::vector<real_t> x_simpl = b;
  simplicial_forward_solve(l, x_simpl);
  simplicial_backward_solve(l, x_simpl);

  for (index_t i = 0; i < sym.n; ++i) {
    EXPECT_NEAR(x_serial[i], x_threaded[i], 1e-13);
    EXPECT_NEAR(x_serial[i], ds.x[i], 1e-10);
    EXPECT_NEAR(x_serial[i], x_simpl[i], 1e-10);
  }
}

TEST(Integration, ManufacturedSolutionAcrossSuite) {
  for (const auto& prob : test_suite(0.08)) {
    const index_t n = prob.lower.rows;
    std::vector<real_t> x_star(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      x_star[i] = std::sin(0.01 * static_cast<real_t>(i) + 1.0);
    }
    std::vector<real_t> b(x_star.size());
    spmv_symmetric_lower(prob.lower, x_star, b);
    Solver solver;
    solver.analyze(prob.lower);
    solver.factorize();
    const auto x = solver.solve_refined(b);
    real_t err = 0.0;
    for (index_t i = 0; i < n; ++i) {
      err = std::max(err, std::abs(x[i] - x_star[i]));
    }
    // Error is bounded by cond * eps; these problems are mildly
    // conditioned at this scale.
    EXPECT_LT(err, 1e-8) << prob.name;
  }
}

TEST(Integration, DistributedPipelineAtScaleFromPerfModel) {
  // End-to-end consistency: the factor computed under the map that the perf
  // model scores must still be numerically valid.
  const SparseMatrix a = grid_laplacian_2d(24, 24, 5);
  const SymbolicFactor sym = analyze_nested_dissection(a);
  const FrontMap map = build_front_map(sym, 12, MappingStrategy::kSubtree1d);
  const PerfResult score = simulate_factor_time(sym, map, {});
  EXPECT_GT(score.makespan, 0.0);
  const DistFactorResult dist = distributed_factor(sym, map);
  Prng rng(6);
  std::vector<real_t> b(static_cast<std::size_t>(sym.n));
  for (auto& v : b) v = rng.next_real(-1, 1);
  std::vector<real_t> x = b;
  solve_in_place(dist.factor, MatrixView{x.data(), sym.n, 1, sym.n});
  EXPECT_LT(relative_residual(sym.a, x, b), 1e-12);
}

TEST(Integration, RepeatedFactorizationsAreIdentical) {
  // Determinism across repeated runs (same seed, same thread schedule
  // independence).
  const SparseMatrix a = random_spd(120, 4, 77);
  const SymbolicFactor sym = analyze_nested_dissection(a);
  const FrontMap map = build_front_map(sym, 5, MappingStrategy::kSubtree2d, 8);
  const DistFactorResult r1 = distributed_factor(sym, map);
  const DistFactorResult r2 = distributed_factor(sym, map);
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const ConstMatrixView p1 = r1.factor.panel(s);
    const ConstMatrixView p2 = r2.factor.panel(s);
    for (index_t j = 0; j < p1.cols; ++j) {
      for (index_t i = j; i < p1.rows; ++i) {
        ASSERT_EQ(p1.at(i, j), p2.at(i, j));
      }
    }
  }
  EXPECT_EQ(r1.run.makespan, r2.run.makespan);
  EXPECT_EQ(r1.run.total_messages, r2.run.total_messages);
}

}  // namespace
}  // namespace parfact
