// Tests for the distributed factorization: mapping invariants, block
// partitioning, and numerical agreement with the serial multifrontal factor
// across rank counts, strategies and block sizes.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dist/dist_factor.h"
#include "dist/front_blocks.h"
#include "dist/mapping.h"
#include "mf/multifrontal.h"
#include "api/solver.h"
#include "solve/solve.h"
#include "sparse/gen.h"
#include "sparse/ops.h"
#include "support/prng.h"
#include "support/stats.h"

namespace parfact {
namespace {

TEST(FrontBlocking, PartitionsPanelAndBelow) {
  const FrontBlocking fb = FrontBlocking::make(10, 7, 4);
  EXPECT_EQ(fb.kp, 3);
  EXPECT_EQ(fb.nB, 5);
  // Panel blocks: [0,4) [4,8) [8,10); below: [10,14) [14,17).
  EXPECT_EQ(fb.start(0), 0);
  EXPECT_EQ(fb.size(0), 4);
  EXPECT_EQ(fb.start(2), 8);
  EXPECT_EQ(fb.size(2), 2);
  EXPECT_EQ(fb.start(3), 10);
  EXPECT_EQ(fb.size(3), 4);
  EXPECT_EQ(fb.size(4), 3);
  // block_of is the inverse of the partition.
  for (index_t r = 0; r < 17; ++r) {
    const index_t blk = fb.block_of(r);
    EXPECT_GE(r, fb.start(blk));
    EXPECT_LT(r, fb.start(blk) + fb.size(blk));
  }
}

TEST(FrontBlocking, EmptyBelow) {
  const FrontBlocking fb = FrontBlocking::make(5, 0, 8);
  EXPECT_EQ(fb.kp, 1);
  EXPECT_EQ(fb.nB, 1);
  EXPECT_EQ(fb.size(0), 5);
}

TEST(Mapping, RangesNestAndCoverWork) {
  const SparseMatrix a = grid_laplacian_2d(30, 30, 5);
  const SymbolicFactor sym = analyze(a);
  for (const auto strategy :
       {MappingStrategy::kSubtree2d, MappingStrategy::kSubtree1d,
        MappingStrategy::kFlat}) {
    for (int p : {1, 2, 3, 4, 8, 16, 64}) {
      const FrontMap map = build_front_map(sym, p, strategy);
      map.validate(sym);  // nesting + grid invariants
      // Roots must use all ranks in subtree strategies only when work
      // justifies it; at minimum every supernode range is non-empty (checked
      // by validate) and flat maps use everything.
      if (strategy == MappingStrategy::kFlat) {
        for (index_t s = 0; s < sym.n_supernodes; ++s) {
          EXPECT_EQ(map.rank_count[s], p);
        }
      }
    }
  }
}

TEST(Mapping, SubtreeMappingSpreadsLoad) {
  const SparseMatrix a = grid_laplacian_2d(40, 40, 5);
  const SymbolicFactor sym = analyze_nested_dissection(a);
  // Small grain so this small problem genuinely spreads over all 8 ranks.
  const FrontMap map =
      build_front_map(sym, 8, MappingStrategy::kSubtree2d, 48, 1e3);
  const auto load = mapped_work_per_rank(sym, map);
  const SampleSummary s = summarize(load);
  EXPECT_GT(s.min, 0.0);
  EXPECT_LT(s.imbalance(), 2.5);  // proportional mapping keeps max/mean sane
}

TEST(Mapping, OneDGridsAreColumns) {
  const SparseMatrix a = grid_laplacian_2d(12, 12, 5);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map = build_front_map(sym, 6, MappingStrategy::kSubtree1d);
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    EXPECT_EQ(map.grid_cols[s], 1);
    EXPECT_EQ(map.grid_rows[s], map.rank_count[s]);
  }
}

TEST(Mapping, TwoDGridsAreSquarish) {
  const SparseMatrix a = grid_laplacian_2d(12, 12, 5);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map = build_front_map(sym, 16, MappingStrategy::kSubtree2d);
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    if (map.rank_count[s] == 16) {
      EXPECT_EQ(map.grid_rows[s], 4);
      EXPECT_EQ(map.grid_cols[s], 4);
    }
  }
}

// --- Distributed numeric factorization --------------------------------------

void expect_factors_match(const SymbolicFactor& sym, const CholeskyFactor& a,
                          const CholeskyFactor& b, real_t tol) {
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const ConstMatrixView pa = a.panel(s);
    const ConstMatrixView pb = b.panel(s);
    for (index_t j = 0; j < pa.cols; ++j) {
      for (index_t i = j; i < pa.rows; ++i) {
        ASSERT_NEAR(pa.at(i, j), pb.at(i, j), tol)
            << "supernode " << s << " (" << i << "," << j << ")";
      }
    }
  }
}

struct DistCase {
  int ranks;
  MappingStrategy strategy;
  index_t block;
};

class DistFactorTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistFactorTest, MatchesSerialFactorOnGrid) {
  const auto [ranks, strategy, block] = GetParam();
  const SparseMatrix a = grid_laplacian_2d(17, 15, 5);
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor serial = multifrontal_factor(sym);
  const FrontMap map = build_front_map(sym, ranks, strategy, block);
  const DistFactorResult dist = distributed_factor(sym, map);
  expect_factors_match(sym, serial, dist.factor, 1e-10);
  EXPECT_GT(dist.run.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DistFactorTest,
    ::testing::Values(DistCase{1, MappingStrategy::kSubtree2d, 48},
                      DistCase{2, MappingStrategy::kSubtree2d, 8},
                      DistCase{4, MappingStrategy::kSubtree2d, 8},
                      DistCase{8, MappingStrategy::kSubtree2d, 4},
                      DistCase{13, MappingStrategy::kSubtree2d, 8},
                      DistCase{16, MappingStrategy::kSubtree2d, 16},
                      DistCase{4, MappingStrategy::kSubtree1d, 8},
                      DistCase{8, MappingStrategy::kSubtree1d, 4},
                      DistCase{4, MappingStrategy::kFlat, 8},
                      DistCase{9, MappingStrategy::kFlat, 8}));

TEST(DistFactor, Elasticity3dResidual) {
  const SparseMatrix a = elasticity_3d(4, 3, 3);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map = build_front_map(sym, 8, MappingStrategy::kSubtree2d, 8);
  const DistFactorResult dist = distributed_factor(sym, map);
  // Solve with the gathered factor and check the residual.
  const index_t n = sym.n;
  Prng rng(3);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.next_real(-1, 1);
  std::vector<real_t> x = b;
  solve_in_place(dist.factor, MatrixView{x.data(), n, 1, n});
  EXPECT_LT(relative_residual(sym.a, x, b), 1e-11);
}

TEST(DistFactor, RandomSpdAcrossRankCounts) {
  const SparseMatrix a = random_spd(150, 4, 31);
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor serial = multifrontal_factor(sym);
  for (int p : {2, 5, 8}) {
    const FrontMap map =
        build_front_map(sym, p, MappingStrategy::kSubtree2d, 8);
    const DistFactorResult dist = distributed_factor(sym, map);
    expect_factors_match(sym, serial, dist.factor, 1e-9);
  }
}

TEST(DistFactor, VirtualTimeShrinksWithRanks) {
  // Strong scaling on a mid-size 3-D problem: simulated time at p=16 must
  // be well below p=1.
  const SparseMatrix a = grid_laplacian_3d(12, 12, 12, 7);
  const SymbolicFactor sym = analyze_nested_dissection(a);
  const FrontMap m1 = build_front_map(sym, 1, MappingStrategy::kSubtree2d);
  const FrontMap m16 = build_front_map(sym, 16, MappingStrategy::kSubtree2d);
  const double t1 = distributed_factor(sym, m1).run.makespan;
  const double t16 = distributed_factor(sym, m16).run.makespan;
  EXPECT_LT(t16, t1 / 3.0);
}

TEST(DistFactor, MessageCountsGrowWithRanks) {
  const SparseMatrix a = grid_laplacian_2d(20, 20, 5);
  const SymbolicFactor sym = analyze_nested_dissection(a);
  // Small grain: this little problem must still be spread for the test.
  const FrontMap m2 =
      build_front_map(sym, 2, MappingStrategy::kSubtree2d, 8, 1e3);
  const FrontMap m8 =
      build_front_map(sym, 8, MappingStrategy::kSubtree2d, 8, 1e3);
  const auto r2 = distributed_factor(sym, m2);
  const auto r8 = distributed_factor(sym, m8);
  EXPECT_GT(r8.run.total_messages, r2.run.total_messages);
  EXPECT_GT(r2.run.total_messages, 0);
}

TEST(DistFactor, PeakMemoryPerRankDropsWithRanks) {
  const SparseMatrix a = grid_laplacian_3d(10, 10, 10, 7);
  const SymbolicFactor sym = analyze(a);
  const auto peak_max = [&](int p) {
    const FrontMap m = build_front_map(sym, p, MappingStrategy::kSubtree2d);
    const auto r = distributed_factor(sym, m);
    count_t mx = 0;
    for (count_t v : r.run.rank_peak_bytes) mx = std::max(mx, v);
    return mx;
  };
  EXPECT_LT(peak_max(8), peak_max(1));
}

TEST(DistFactor, NotSpdFailsCleanly) {
  TripletBuilder b(6, 6);
  for (index_t j = 0; j < 6; ++j) b.add(j, j, 1.0);
  b.add(5, 4, 4.0);
  const SymbolicFactor sym = analyze(b.build());
  const FrontMap map = build_front_map(sym, 4, MappingStrategy::kSubtree2d);
  EXPECT_THROW(distributed_factor(sym, map), Error);
}

}  // namespace
}  // namespace parfact
