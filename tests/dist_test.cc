// Tests for the distributed factorization: mapping invariants, block
// partitioning, and numerical agreement with the serial multifrontal factor
// across rank counts, strategies and block sizes.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dist/dist_factor.h"
#include "dist/front_blocks.h"
#include "dist/mapping.h"
#include "mf/multifrontal.h"
#include "api/solver.h"
#include "solve/solve.h"
#include "sparse/gen.h"
#include "sparse/ops.h"
#include "support/prng.h"
#include "support/stats.h"

namespace parfact {
namespace {

TEST(FrontBlocking, PartitionsPanelAndBelow) {
  const FrontBlocking fb = FrontBlocking::make(10, 7, 4);
  EXPECT_EQ(fb.kp, 3);
  EXPECT_EQ(fb.nB, 5);
  // Panel blocks: [0,4) [4,8) [8,10); below: [10,14) [14,17).
  EXPECT_EQ(fb.start(0), 0);
  EXPECT_EQ(fb.size(0), 4);
  EXPECT_EQ(fb.start(2), 8);
  EXPECT_EQ(fb.size(2), 2);
  EXPECT_EQ(fb.start(3), 10);
  EXPECT_EQ(fb.size(3), 4);
  EXPECT_EQ(fb.size(4), 3);
  // block_of is the inverse of the partition.
  for (index_t r = 0; r < 17; ++r) {
    const index_t blk = fb.block_of(r);
    EXPECT_GE(r, fb.start(blk));
    EXPECT_LT(r, fb.start(blk) + fb.size(blk));
  }
}

TEST(FrontBlocking, EmptyBelow) {
  const FrontBlocking fb = FrontBlocking::make(5, 0, 8);
  EXPECT_EQ(fb.kp, 1);
  EXPECT_EQ(fb.nB, 1);
  EXPECT_EQ(fb.size(0), 5);
}

TEST(Mapping, RangesNestAndCoverWork) {
  const SparseMatrix a = grid_laplacian_2d(30, 30, 5);
  const SymbolicFactor sym = analyze(a);
  for (const auto strategy :
       {MappingStrategy::kSubtree2d, MappingStrategy::kSubtree1d,
        MappingStrategy::kFlat}) {
    for (int p : {1, 2, 3, 4, 8, 16, 64}) {
      const FrontMap map = build_front_map(sym, p, strategy);
      map.validate(sym);  // nesting + grid invariants
      // Roots must use all ranks in subtree strategies only when work
      // justifies it; at minimum every supernode range is non-empty (checked
      // by validate) and flat maps use everything.
      if (strategy == MappingStrategy::kFlat) {
        for (index_t s = 0; s < sym.n_supernodes; ++s) {
          EXPECT_EQ(map.rank_count[s], p);
        }
      }
    }
  }
}

TEST(Mapping, SubtreeMappingSpreadsLoad) {
  const SparseMatrix a = grid_laplacian_2d(40, 40, 5);
  const SymbolicFactor sym = analyze_nested_dissection(a);
  // Small grain so this small problem genuinely spreads over all 8 ranks.
  const FrontMap map =
      build_front_map(sym, 8, MappingStrategy::kSubtree2d, 48, 1e3);
  const auto load = mapped_work_per_rank(sym, map);
  const SampleSummary s = summarize(load);
  EXPECT_GT(s.min, 0.0);
  EXPECT_LT(s.imbalance(), 2.5);  // proportional mapping keeps max/mean sane
}

TEST(Mapping, OneDGridsAreColumns) {
  const SparseMatrix a = grid_laplacian_2d(12, 12, 5);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map = build_front_map(sym, 6, MappingStrategy::kSubtree1d);
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    EXPECT_EQ(map.grid_cols[s], 1);
    EXPECT_EQ(map.grid_rows[s], map.rank_count[s]);
  }
}

TEST(Mapping, TwoDGridsAreSquarish) {
  const SparseMatrix a = grid_laplacian_2d(12, 12, 5);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map = build_front_map(sym, 16, MappingStrategy::kSubtree2d);
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    if (map.rank_count[s] == 16) {
      EXPECT_EQ(map.grid_rows[s], 4);
      EXPECT_EQ(map.grid_cols[s], 4);
    }
  }
}

// --- Distributed numeric factorization --------------------------------------

void expect_factors_match(const SymbolicFactor& sym, const CholeskyFactor& a,
                          const CholeskyFactor& b, real_t tol) {
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const ConstMatrixView pa = a.panel(s);
    const ConstMatrixView pb = b.panel(s);
    for (index_t j = 0; j < pa.cols; ++j) {
      for (index_t i = j; i < pa.rows; ++i) {
        ASSERT_NEAR(pa.at(i, j), pb.at(i, j), tol)
            << "supernode " << s << " (" << i << "," << j << ")";
      }
    }
  }
}

struct DistCase {
  int ranks;
  MappingStrategy strategy;
  index_t block;
};

class DistFactorTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistFactorTest, MatchesSerialFactorOnGrid) {
  const auto [ranks, strategy, block] = GetParam();
  const SparseMatrix a = grid_laplacian_2d(17, 15, 5);
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor serial = multifrontal_factor(sym);
  const FrontMap map = build_front_map(sym, ranks, strategy, block);
  const DistFactorResult dist = distributed_factor(sym, map);
  expect_factors_match(sym, serial, dist.factor, 1e-10);
  EXPECT_GT(dist.run.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DistFactorTest,
    ::testing::Values(DistCase{1, MappingStrategy::kSubtree2d, 48},
                      DistCase{2, MappingStrategy::kSubtree2d, 8},
                      DistCase{4, MappingStrategy::kSubtree2d, 8},
                      DistCase{8, MappingStrategy::kSubtree2d, 4},
                      DistCase{13, MappingStrategy::kSubtree2d, 8},
                      DistCase{16, MappingStrategy::kSubtree2d, 16},
                      DistCase{4, MappingStrategy::kSubtree1d, 8},
                      DistCase{8, MappingStrategy::kSubtree1d, 4},
                      DistCase{4, MappingStrategy::kFlat, 8},
                      DistCase{9, MappingStrategy::kFlat, 8}));

TEST(DistFactor, Elasticity3dResidual) {
  const SparseMatrix a = elasticity_3d(4, 3, 3);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map = build_front_map(sym, 8, MappingStrategy::kSubtree2d, 8);
  const DistFactorResult dist = distributed_factor(sym, map);
  // Solve with the gathered factor and check the residual.
  const index_t n = sym.n;
  Prng rng(3);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.next_real(-1, 1);
  std::vector<real_t> x = b;
  solve_in_place(dist.factor, MatrixView{x.data(), n, 1, n});
  EXPECT_LT(relative_residual(sym.a, x, b), 1e-11);
}

TEST(DistFactor, RandomSpdAcrossRankCounts) {
  const SparseMatrix a = random_spd(150, 4, 31);
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor serial = multifrontal_factor(sym);
  for (int p : {2, 5, 8}) {
    const FrontMap map =
        build_front_map(sym, p, MappingStrategy::kSubtree2d, 8);
    const DistFactorResult dist = distributed_factor(sym, map);
    expect_factors_match(sym, serial, dist.factor, 1e-9);
  }
}

TEST(DistFactor, VirtualTimeShrinksWithRanks) {
  // Strong scaling on a mid-size 3-D problem: simulated time at p=16 must
  // be well below p=1.
  const SparseMatrix a = grid_laplacian_3d(12, 12, 12, 7);
  const SymbolicFactor sym = analyze_nested_dissection(a);
  const FrontMap m1 = build_front_map(sym, 1, MappingStrategy::kSubtree2d);
  const FrontMap m16 = build_front_map(sym, 16, MappingStrategy::kSubtree2d);
  const double t1 = distributed_factor(sym, m1).run.makespan;
  const double t16 = distributed_factor(sym, m16).run.makespan;
  EXPECT_LT(t16, t1 / 3.0);
}

TEST(DistFactor, MessageCountsGrowWithRanks) {
  const SparseMatrix a = grid_laplacian_2d(20, 20, 5);
  const SymbolicFactor sym = analyze_nested_dissection(a);
  // Small grain: this little problem must still be spread for the test.
  const FrontMap m2 =
      build_front_map(sym, 2, MappingStrategy::kSubtree2d, 8, 1e3);
  const FrontMap m8 =
      build_front_map(sym, 8, MappingStrategy::kSubtree2d, 8, 1e3);
  const auto r2 = distributed_factor(sym, m2);
  const auto r8 = distributed_factor(sym, m8);
  EXPECT_GT(r8.run.total_messages, r2.run.total_messages);
  EXPECT_GT(r2.run.total_messages, 0);
}

TEST(DistFactor, PeakMemoryPerRankDropsWithRanks) {
  const SparseMatrix a = grid_laplacian_3d(10, 10, 10, 7);
  const SymbolicFactor sym = analyze(a);
  const auto peak_max = [&](int p) {
    const FrontMap m = build_front_map(sym, p, MappingStrategy::kSubtree2d);
    const auto r = distributed_factor(sym, m);
    count_t mx = 0;
    for (count_t v : r.run.rank_peak_bytes) mx = std::max(mx, v);
    return mx;
  };
  EXPECT_LT(peak_max(8), peak_max(1));
}

TEST(DistFactor, NotSpdFailsCleanly) {
  TripletBuilder b(6, 6);
  for (index_t j = 0; j < 6; ++j) b.add(j, j, 1.0);
  b.add(5, 4, 4.0);
  const SymbolicFactor sym = analyze(b.build());
  const FrontMap map = build_front_map(sym, 4, MappingStrategy::kSubtree2d);
  EXPECT_THROW(distributed_factor(sym, map), Error);
}

// --- Schedule / wire-format ablation: bitwise identity ----------------------
//
// The depth-1 panel lookahead and the packed extend-add format are pure
// communication optimizations: every (schedule, format) combination must
// produce the bitwise identical factor — and perturbation count — as the
// blocking/triples engine, clean, under message faults, and through a
// crash recovery.

void expect_factors_bitwise_equal(const SymbolicFactor& sym,
                                  const CholeskyFactor& a,
                                  const CholeskyFactor& b) {
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const ConstMatrixView pa = a.panel(s);
    const ConstMatrixView pb = b.panel(s);
    for (index_t j = 0; j < pa.cols; ++j) {
      for (index_t i = j; i < pa.rows; ++i) {
        ASSERT_EQ(pa.at(i, j), pb.at(i, j))
            << "supernode " << s << " (" << i << "," << j << ")";
      }
    }
  }
}

constexpr DistConfig kBlockingTriples{DistConfig::Schedule::kBlocking,
                                      DistConfig::ExtendAddFormat::kTriples};
constexpr DistConfig kBlockingPacked{DistConfig::Schedule::kBlocking,
                                     DistConfig::ExtendAddFormat::kPacked};
constexpr DistConfig kLookaheadTriples{DistConfig::Schedule::kLookahead,
                                       DistConfig::ExtendAddFormat::kTriples};
constexpr DistConfig kLookaheadPacked{DistConfig::Schedule::kLookahead,
                                      DistConfig::ExtendAddFormat::kPacked};
constexpr DistConfig kTaskDagTriples{DistConfig::Schedule::kTaskDag,
                                     DistConfig::ExtendAddFormat::kTriples};
constexpr DistConfig kTaskDagPacked{DistConfig::Schedule::kTaskDag,
                                    DistConfig::ExtendAddFormat::kPacked};
constexpr DistConfig kAllConfigs[] = {kBlockingTriples, kBlockingPacked,
                                      kLookaheadTriples, kLookaheadPacked,
                                      kTaskDagTriples,   kTaskDagPacked};

class ScheduleIdentityP : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleIdentityP, AllConfigsBitwiseIdenticalAndPackedHalvesBytes) {
  const int p = GetParam();
  const SparseMatrix a = grid_laplacian_2d(13, 12, 5);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map =
      build_front_map(sym, p, MappingStrategy::kSubtree2d, 8, 1e3);
  const DistFactorResult base = distributed_factor(
      sym, map, {}, FactorKind::kCholesky, {}, {}, {}, kBlockingTriples);
  ASSERT_TRUE(base.status.ok());
  for (const DistConfig& config : kAllConfigs) {
    const DistFactorResult r = distributed_factor(
        sym, map, {}, FactorKind::kCholesky, {}, {}, {}, config);
    ASSERT_TRUE(r.status.ok());
    expect_factors_bitwise_equal(sym, base.factor, r.factor);
    // Same entries cross the wire in every format.
    EXPECT_EQ(r.extend_add_entries, base.extend_add_entries);
    if (config.extend_add == DistConfig::ExtendAddFormat::kPacked) {
      EXPECT_LE(2 * r.extend_add_bytes, base.extend_add_bytes);
    } else {
      EXPECT_EQ(r.extend_add_bytes, base.extend_add_bytes);
    }
  }
}

TEST_P(ScheduleIdentityP, LookaheadHealsFaultsBitwiseIdentical) {
  const int p = GetParam();
  const SparseMatrix a = grid_laplacian_2d(13, 12, 5);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map =
      build_front_map(sym, p, MappingStrategy::kSubtree2d, 8, 1e3);
  const DistFactorResult clean = distributed_factor(
      sym, map, {}, FactorKind::kCholesky, {}, {}, {}, kBlockingTriples);
  ASSERT_TRUE(clean.status.ok());
  mpsim::FaultPlan faults;
  faults.seed = 4242 + static_cast<std::uint64_t>(p);
  faults.drop_rate = 0.05;
  faults.delay_rate = 0.05;
  faults.duplicate_rate = 0.02;
  for (const DistConfig& config :
       {kBlockingTriples, kLookaheadPacked, kTaskDagTriples, kTaskDagPacked}) {
    const DistFactorResult faulty = distributed_factor(
        sym, map, {}, FactorKind::kCholesky, {}, faults, {}, config);
    ASSERT_TRUE(faulty.status.ok()) << faulty.status.to_string();
    expect_factors_bitwise_equal(sym, clean.factor, faulty.factor);
  }
}

// The fan-both streams ride the same fault-path wire format as everything
// else: a flipped bit in a stream payload must be caught by the wire
// checksum and healed by the retry loop, leaving the factor bitwise
// identical — in both wire formats.
TEST_P(ScheduleIdentityP, TaskDagHealsWireBitFlipsBitwiseIdentical) {
  const int p = GetParam();
  const SparseMatrix a = grid_laplacian_2d(13, 12, 5);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map =
      build_front_map(sym, p, MappingStrategy::kSubtree2d, 8, 1e3);
  const DistFactorResult clean = distributed_factor(
      sym, map, {}, FactorKind::kCholesky, {}, {}, {}, kBlockingTriples);
  ASSERT_TRUE(clean.status.ok());
  mpsim::FaultPlan faults;
  faults.seed = 77;
  // One wire flip per rank, early, so child → parent stream traffic is hit.
  for (int r = 0; r < p; ++r) {
    faults.bit_flips.push_back({r, 0.0, /*site=*/0, /*word=*/1, /*bit=*/62});
  }
  for (const DistConfig& config : {kTaskDagTriples, kTaskDagPacked}) {
    const DistFactorResult healed = distributed_factor(
        sym, map, {}, FactorKind::kCholesky, {}, faults, {}, config);
    ASSERT_TRUE(healed.status.ok()) << healed.status.to_string();
    expect_factors_bitwise_equal(sym, clean.factor, healed.factor);
  }
}

// Adversarial arrival order: freeze one child-side rank mid-run so the
// streams it feeds lag behind its siblings'. The parent's wait_any pool
// must buffer the early arrivals and still merge every panel in the fixed
// (child, source-rank) order — bitwise identity — while the run stats
// record that reordering actually happened, and the virtual makespan stays
// a pure function of the schedule (re-running the identical configuration
// reproduces it exactly).
TEST(ScheduleIdentity, TaskDagOutOfOrderArrivalsDeterministic) {
  const int p = 8;
  // 3-D fronts are wide enough that parent pools interleave several
  // (child, source) stream channels across panels — the 2-D grids the
  // other identity tests use drain almost in posting order.
  const SparseMatrix a = grid_laplacian_3d(8, 8, 8, 7);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map =
      build_front_map(sym, p, MappingStrategy::kSubtree2d, 8, 1e3);
  const DistFactorResult clean = distributed_factor(
      sym, map, {}, FactorKind::kCholesky, {}, {}, {}, kBlockingTriples);
  ASSERT_TRUE(clean.status.ok());
  const DistFactorResult probe = distributed_factor(
      sym, map, {}, FactorKind::kCholesky, {}, {}, {}, kTaskDagPacked);
  ASSERT_TRUE(probe.status.ok());
  count_t pool_waits = 0;
  for (const count_t c : probe.run.wait_any_calls) pool_waits += c;
  EXPECT_GT(pool_waits, 0);

  // Stall rank 1 (a leaf-subtree owner feeding the upper fronts) early and
  // long: everything it sends afterwards arrives far behind its siblings.
  mpsim::FaultPlan faults;
  faults.stalls.push_back({/*rank=*/1, /*at=*/0.0, /*duration=*/0.05});
  const DistFactorResult stalled = distributed_factor(
      sym, map, {}, FactorKind::kCholesky, {}, faults, {}, kTaskDagPacked);
  ASSERT_TRUE(stalled.status.ok()) << stalled.status.to_string();
  expect_factors_bitwise_equal(sym, clean.factor, stalled.factor);
  EXPECT_GT(stalled.run.messages_completed_out_of_order, 0);

  const DistFactorResult again = distributed_factor(
      sym, map, {}, FactorKind::kCholesky, {}, faults, {}, kTaskDagPacked);
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.run.makespan, stalled.run.makespan);
  EXPECT_EQ(again.run.messages_completed_out_of_order,
            stalled.run.messages_completed_out_of_order);
  expect_factors_bitwise_equal(sym, stalled.factor, again.factor);
}

// Crash + spare recovery composes with the fan-both schedule: the pool is
// always fully drained before a front's checkpoint boundary, so the spare
// resumes from the same protocol state as under the other schedules.
TEST(ScheduleIdentity, TaskDagRecoversFromCrashBitwiseIdentical) {
  const int p = 4;
  const SparseMatrix a = grid_laplacian_2d(9, 8, 5);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map =
      build_front_map(sym, p, MappingStrategy::kSubtree2d, 8, 1e3);
  ResiliencePolicy resilience;
  resilience.buddy_checkpoint = true;
  resilience.checkpoint_interval = 4;

  const DistFactorResult clean = distributed_factor(
      sym, map, {}, FactorKind::kCholesky, {}, {}, {}, kBlockingTriples);
  ASSERT_TRUE(clean.status.ok());

  const int victim = p / 2;
  const DistFactorResult probe =
      distributed_factor(sym, map, {}, FactorKind::kCholesky, {}, {},
                         resilience, kTaskDagPacked);
  ASSERT_TRUE(probe.status.ok());
  const double at =
      0.5 * probe.run.rank_time[static_cast<std::size_t>(victim)];
  ASSERT_GT(at, 0.0);
  mpsim::FaultPlan faults;
  faults.crashes.push_back({victim, at});
  faults.spare_ranks = 1;

  const DistFactorResult crashed =
      distributed_factor(sym, map, {}, FactorKind::kCholesky, {}, faults,
                         resilience, kTaskDagPacked);
  ASSERT_TRUE(crashed.status.ok()) << crashed.status.to_string();
  EXPECT_EQ(crashed.run.ranks_recovered, 1);
  expect_factors_bitwise_equal(sym, clean.factor, crashed.factor);
}

TEST(ScheduleIdentity, LdltPerturbationCountsIdenticalAcrossConfigs) {
  const index_t kDecoupled = 3;
  const SparseMatrix a =
      append_decoupled_rows(grid_laplacian_2d(9, 8, 5), kDecoupled, 1e-30);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map =
      build_front_map(sym, 4, MappingStrategy::kSubtree2d, 8, 1e3);
  PivotPolicy boosted;
  boosted.boost = true;
  const DistFactorResult base = distributed_factor(
      sym, map, {}, FactorKind::kLdlt, boosted, {}, {}, kBlockingTriples);
  ASSERT_TRUE(base.status.ok());
  EXPECT_EQ(base.status.perturbations, kDecoupled);
  for (const DistConfig& config : kAllConfigs) {
    const DistFactorResult r = distributed_factor(
        sym, map, {}, FactorKind::kLdlt, boosted, {}, {}, config);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.status.perturbations, kDecoupled);
    expect_factors_bitwise_equal(sym, base.factor, r.factor);
  }
}

TEST(ScheduleIdentity, LookaheadRecoversFromCrashBitwiseIdentical) {
  const int p = 4;
  const SparseMatrix a = grid_laplacian_2d(9, 8, 5);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map =
      build_front_map(sym, p, MappingStrategy::kSubtree2d, 8, 1e3);
  ResiliencePolicy resilience;
  resilience.buddy_checkpoint = true;
  resilience.checkpoint_interval = 4;

  const DistFactorResult clean = distributed_factor(
      sym, map, {}, FactorKind::kCholesky, {}, {}, {}, kBlockingTriples);
  ASSERT_TRUE(clean.status.ok());

  // Probe the resilient lookahead run for the victim's busy time, then
  // crash it mid-execution with one spare standing by.
  const int victim = p / 2;
  const DistFactorResult probe =
      distributed_factor(sym, map, {}, FactorKind::kCholesky, {}, {},
                         resilience, kLookaheadPacked);
  ASSERT_TRUE(probe.status.ok());
  const double at =
      0.5 * probe.run.rank_time[static_cast<std::size_t>(victim)];
  ASSERT_GT(at, 0.0);
  mpsim::FaultPlan faults;
  faults.crashes.push_back({victim, at});
  faults.spare_ranks = 1;

  const DistFactorResult crashed =
      distributed_factor(sym, map, {}, FactorKind::kCholesky, {}, faults,
                         resilience, kLookaheadPacked);
  ASSERT_TRUE(crashed.status.ok()) << crashed.status.to_string();
  EXPECT_EQ(crashed.run.ranks_recovered, 1);
  expect_factors_bitwise_equal(sym, clean.factor, crashed.factor);
}

INSTANTIATE_TEST_SUITE_P(Grids, ScheduleIdentityP,
                         ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace parfact
