// Tests for the silent-data-corruption defense (DESIGN.md §5f): the shared
// checksum primitives, the ABFT checksum-carrying factorization with its
// detect → localize → recompute repair, at-rest factor verification, the
// mpsim single-bit wire/checkpoint fault injection, and the Solver facade's
// post-solve verify-and-repair. The acceptance bar everywhere mirrors the
// repo's standing contract: an injected flip is either healed (result
// bitwise identical to the clean run) or surfaces as a diagnosed Status —
// never a silent wrong answer.
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/solver.h"
#include "dist/dist_factor.h"
#include "dist/mapping.h"
#include "mf/abft.h"
#include "mf/multifrontal.h"
#include "mpsim/machine.h"
#include "sparse/gen.h"
#include "sparse/ops.h"
#include "support/checksum.h"
#include "support/error.h"
#include "support/prng.h"
#include "support/status.h"

namespace parfact {
namespace {

std::vector<real_t> random_vector(index_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<real_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.next_real(-1, 1);
  return v;
}

SparseMatrix test_matrix() { return grid_laplacian_2d(12, 11, 5); }

void expect_factors_bitwise_equal(const SymbolicFactor& sym,
                                  const CholeskyFactor& a,
                                  const CholeskyFactor& b) {
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const ConstMatrixView pa = a.panel(s);
    const ConstMatrixView pb = b.panel(s);
    for (index_t j = 0; j < pa.cols; ++j) {
      for (index_t i = j; i < pa.rows; ++i) {
        ASSERT_EQ(pa.at(i, j), pb.at(i, j))
            << "supernode " << s << " (" << i << "," << j << ")";
      }
    }
  }
}

// A supernode with a nonempty below-diagonal block: kTrsm/kUpdate faults
// have somewhere to strike there.
index_t supernode_with_below(const SymbolicFactor& sym) {
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    if (sym.sn_below(s) > 0) return s;
  }
  return kNone;
}

FrontMap spread_map(const SymbolicFactor& sym, int p) {
  return build_front_map(sym, p, MappingStrategy::kSubtree2d, 8, 1e3);
}

// --- support/checksum primitives -------------------------------------------

TEST(Checksum, Fnv1aKnownValuesAndChaining) {
  // Empty input returns the seed unchanged.
  EXPECT_EQ(fnv1a(nullptr, 0), kFnv1aOffsetBasis);
  // Reference digest of "a" (FNV-1a 64-bit test vector).
  EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cull);
  const char data[] = "parfact";
  const std::uint64_t whole = fnv1a(data, 7);
  // Chaining ranges through the seed matches hashing the whole buffer.
  EXPECT_EQ(fnv1a(data + 3, 4, fnv1a(data, 3)), whole);
  // Any flipped bit changes the digest.
  char copy[7];
  std::memcpy(copy, data, 7);
  copy[5] = static_cast<char>(copy[5] ^ 0x10);
  EXPECT_NE(fnv1a(copy, 7), whole);
}

TEST(Checksum, AbftMismatchPredicate) {
  EXPECT_FALSE(abft_mismatch(1.0, 1.0, 1.0, 1e-8));
  EXPECT_FALSE(abft_mismatch(1.0 + 1e-12, 1.0, 1.0, 1e-8));
  EXPECT_TRUE(abft_mismatch(1.0 + 1e-3, 1.0, 1.0, 1e-8));
  // NaN / Inf on either side must read as mismatch.
  const real_t nan = std::numeric_limits<real_t>::quiet_NaN();
  const real_t inf = std::numeric_limits<real_t>::infinity();
  EXPECT_TRUE(abft_mismatch(nan, 1.0, 1.0, 1e-8));
  EXPECT_TRUE(abft_mismatch(1.0, nan, 1.0, 1e-8));
  EXPECT_TRUE(abft_mismatch(inf, 1.0, 1.0, 1e-8));
}

TEST(Checksum, FlipBitRoundTrip) {
  const real_t v = 3.25;
  for (const int bit : {0, 31, 52, 62, 63}) {
    const real_t flipped = flip_bit(v, bit);
    EXPECT_NE(flipped, v) << "bit " << bit;
    EXPECT_EQ(flip_bit(flipped, bit), v) << "bit " << bit;
  }
  // Bit 62 of 0.0 sets the top exponent bit: exactly 2.0.
  EXPECT_EQ(flip_bit(0.0, 62), 2.0);
}

TEST(Checksum, FlipBitInBytesMatchesScalarFlip) {
  std::vector<real_t> buf = {1.0, -2.5, 3.75, 0.5};
  const std::vector<real_t> orig = buf;
  // word wraps modulo the buffer size: word 6 strikes element 2.
  flip_bit_in_bytes(buf.data(), buf.size() * sizeof(real_t), 6, 62);
  EXPECT_EQ(buf[2], flip_bit(orig[2], 62));
  for (const int i : {0, 1, 3}) EXPECT_EQ(buf[i], orig[i]);
  flip_bit_in_bytes(nullptr, 0, 0, 0);  // empty buffer: no-op
}

// --- ABFT factorization: clean runs ----------------------------------------

TEST(Abft, CleanRunBitwiseIdenticalCholesky) {
  const SparseMatrix a = test_matrix();
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor reference = multifrontal_factor(sym);
  FactorStats stats;
  FactorChecksums sums;
  const CholeskyFactor guarded = multifrontal_factor_abft(
      sym, &stats, FactorKind::kCholesky, {}, {}, &sums);
  expect_factors_bitwise_equal(sym, reference, guarded);
  EXPECT_GT(stats.abft_checks, 0);
  EXPECT_EQ(stats.abft_detections, 0);
  EXPECT_EQ(stats.fronts_recomputed, 0);
  ASSERT_FALSE(sums.empty());
  EXPECT_EQ(verify_factor(sym, guarded, sums), kNone);
}

TEST(Abft, CleanRunBitwiseIdenticalLdlt) {
  const SparseMatrix a = test_matrix();
  const SymbolicFactor sym = analyze(a);
  FactorStats ref_stats;
  const CholeskyFactor reference =
      multifrontal_factor(sym, &ref_stats, FactorKind::kLdlt);
  FactorStats stats;
  const CholeskyFactor guarded =
      multifrontal_factor_abft(sym, &stats, FactorKind::kLdlt);
  expect_factors_bitwise_equal(sym, reference, guarded);
  ASSERT_EQ(reference.diag().size(), guarded.diag().size());
  for (std::size_t k = 0; k < reference.diag().size(); ++k) {
    EXPECT_EQ(reference.diag()[k], guarded.diag()[k]);
  }
  EXPECT_EQ(stats.abft_detections, 0);
}

TEST(Abft, BoostedPivotsStillCleanAndBitwiseIdentical) {
  // Static pivoting deliberately breaks the POTRF identity on boosted
  // fronts (the check is skipped there); the run must stay detection-free
  // and bitwise identical, with the same perturbation count.
  const SparseMatrix a =
      append_decoupled_rows(grid_laplacian_2d(9, 8, 5), 3, 1e-30);
  const SymbolicFactor sym = analyze(a);
  PivotPolicy pivot;
  pivot.boost = true;
  FactorStats ref_stats;
  const CholeskyFactor reference =
      multifrontal_factor(sym, &ref_stats, FactorKind::kCholesky, pivot);
  EXPECT_GT(ref_stats.pivot_perturbations, 0);
  FactorStats stats;
  const CholeskyFactor guarded = multifrontal_factor_abft(
      sym, &stats, FactorKind::kCholesky, pivot);
  expect_factors_bitwise_equal(sym, reference, guarded);
  EXPECT_EQ(stats.pivot_perturbations, ref_stats.pivot_perturbations);
  EXPECT_EQ(stats.abft_detections, 0);
}

// --- ABFT factorization: injected faults -----------------------------------

class AbftSiteP : public ::testing::TestWithParam<SdcSite> {};

TEST_P(AbftSiteP, SingleFlipDetectedAndHealedBitwiseIdentical) {
  const SparseMatrix a = test_matrix();
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor reference = multifrontal_factor(sym);
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    SdcInjection inject;
    inject.site = GetParam();
    inject.seed = seed;
    inject.bit = 62;
    inject.supernode = supernode_with_below(sym);
    ASSERT_NE(inject.supernode, kNone);
    AbftOptions options;
    options.inject = &inject;
    FactorStats stats;
    const CholeskyFactor healed = multifrontal_factor_abft(
        sym, &stats, FactorKind::kCholesky, {}, options);
    EXPECT_GE(stats.abft_detections, 1) << "seed " << seed;
    EXPECT_GE(stats.fronts_recomputed, 1) << "seed " << seed;
    expect_factors_bitwise_equal(sym, reference, healed);
  }
}

INSTANTIATE_TEST_SUITE_P(Sites, AbftSiteP,
                         ::testing::Values(SdcSite::kAssembly, SdcSite::kPotrf,
                                           SdcSite::kTrsm, SdcSite::kUpdate));

TEST(Abft, LdltFlipDetectedAndHealed) {
  const SparseMatrix a = test_matrix();
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor reference =
      multifrontal_factor(sym, nullptr, FactorKind::kLdlt);
  SdcInjection inject;
  inject.site = SdcSite::kTrsm;
  inject.supernode = supernode_with_below(sym);
  AbftOptions options;
  options.inject = &inject;
  FactorStats stats;
  const CholeskyFactor healed = multifrontal_factor_abft(
      sym, &stats, FactorKind::kLdlt, {}, options);
  EXPECT_GE(stats.abft_detections, 1);
  expect_factors_bitwise_equal(sym, reference, healed);
}

TEST(Abft, StickyFaultSurfacesAsDataCorruption) {
  const SparseMatrix a = test_matrix();
  const SymbolicFactor sym = analyze(a);
  SdcInjection inject;
  inject.site = SdcSite::kPotrf;
  inject.supernode = supernode_with_below(sym);
  inject.sticky = true;  // re-strikes on every recompute: a hard fault
  AbftOptions options;
  options.inject = &inject;
  try {
    (void)multifrontal_factor_abft(sym, nullptr, FactorKind::kCholesky, {},
                                   options);
    FAIL() << "expected kDataCorruption";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code, StatusCode::kDataCorruption);
    EXPECT_EQ(e.status().failed_supernode, inject.supernode);
  }
}

// --- At-rest verification and localized repair ------------------------------

TEST(Abft, VerifyFactorLocalizesAndRecomputeSubtreeHeals) {
  const SparseMatrix a = test_matrix();
  const SymbolicFactor sym = analyze(a);
  const CholeskyFactor reference = multifrontal_factor(sym);
  CholeskyFactor victim = multifrontal_factor(sym);
  FactorChecksums sums = compute_factor_checksums(sym, victim);
  EXPECT_EQ(verify_factor(sym, victim, sums), kNone);

  SdcInjection inject;
  inject.site = SdcSite::kStoredFactor;
  inject.supernode = sym.n_supernodes / 2;
  const index_t struck = inject_factor_bitflip(sym, victim, inject);
  EXPECT_EQ(struck, inject.supernode);
  const index_t bad = verify_factor(sym, victim, sums);
  ASSERT_EQ(bad, struck);

  const count_t healed =
      recompute_subtree(sym, bad, FactorKind::kCholesky, {}, victim, &sums);
  EXPECT_GE(healed, 1);
  EXPECT_EQ(healed, bad - first_descendant(sym, bad) + 1);
  EXPECT_EQ(verify_factor(sym, victim, sums), kNone);
  expect_factors_bitwise_equal(sym, reference, victim);
}

TEST(Abft, FirstDescendantSpansContiguousSubtrees) {
  const SparseMatrix a = test_matrix();
  const SymbolicFactor sym = analyze(a);
  // Root subtree is the whole postorder; leaves are their own subtree.
  EXPECT_EQ(first_descendant(sym, sym.n_supernodes - 1), 0);
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const index_t fd = first_descendant(sym, s);
    EXPECT_GE(fd, 0);
    EXPECT_LE(fd, s);
  }
}

// --- Solver facade: ABFT option, injection, verify-and-repair ---------------

TEST(SolverSdc, AbftFactorizeMatchesPlainAndSolves) {
  const SparseMatrix a = test_matrix();
  const std::vector<real_t> b = random_vector(a.rows, 3);

  Solver plain;
  plain.analyze(a);
  ASSERT_TRUE(plain.factorize().ok());

  SolverOptions options;
  options.abft = true;
  Solver guarded(options);
  guarded.analyze(a);
  ASSERT_TRUE(guarded.factorize().ok());
  EXPECT_GT(guarded.report().abft_checks, 0);
  EXPECT_EQ(guarded.report().abft_detections, 0);
  EXPECT_FALSE(guarded.report().corruption_detected);
  expect_factors_bitwise_equal(guarded.symbolic(), plain.factor(),
                               guarded.factor());

  const std::vector<real_t> x = guarded.solve(b);
  EXPECT_LT(guarded.residual(x, b), 1e-10);
}

TEST(SolverSdc, AbftRejectsMemoryBudgetCombination) {
  SolverOptions options;
  options.abft = true;
  options.memory_budget_bytes = 1 << 20;
  Solver solver(options);
  solver.analyze(test_matrix());
  const Status status = solver.factorize();
  EXPECT_EQ(status.code, StatusCode::kInvalidInput);
}

TEST(SolverSdc, FactorizationSiteInjectionRequiresAbft) {
  SolverOptions options;
  options.inject_sdc = SdcInjection{};  // kPotrf, abft not enabled
  Solver solver(options);
  solver.analyze(test_matrix());
  const Status status = solver.factorize();
  EXPECT_EQ(status.code, StatusCode::kInvalidInput);
}

TEST(SolverSdc, FactorTimeFlipHealedThroughFacade) {
  const SparseMatrix a = test_matrix();
  Solver plain;
  plain.analyze(a);
  ASSERT_TRUE(plain.factorize().ok());

  SolverOptions options;
  options.abft = true;
  options.inject_sdc = SdcInjection{};
  options.inject_sdc->site = SdcSite::kPotrf;
  options.inject_sdc->supernode = 0;
  Solver struck(options);
  struck.analyze(a);
  ASSERT_TRUE(struck.factorize().ok());
  EXPECT_TRUE(struck.report().corruption_detected);
  EXPECT_GE(struck.report().abft_detections, 1);
  EXPECT_GE(struck.report().fronts_recomputed, 1);
  expect_factors_bitwise_equal(struck.symbolic(), plain.factor(),
                               struck.factor());
}

TEST(SolverSdc, StoredFactorFlipHealedByLocalizedRecompute) {
  // abft arms the at-rest checksums, so the post-solve verifier localizes
  // the struck supernode and recomputes only its subtree.
  const SparseMatrix a = test_matrix();
  const std::vector<real_t> b = random_vector(a.rows, 5);

  Solver reference;
  reference.analyze(a);
  ASSERT_TRUE(reference.factorize().ok());
  const std::vector<real_t> want = reference.solve(b);

  SolverOptions options;
  options.abft = true;
  options.verify = SolverOptions::Verify::kSampled;
  options.inject_sdc = SdcInjection{};
  options.inject_sdc->site = SdcSite::kStoredFactor;
  options.inject_sdc->supernode = 1;
  Solver solver(options);
  solver.analyze(a);
  ASSERT_TRUE(solver.factorize().ok());
  const std::vector<real_t> x = solver.solve(b);
  EXPECT_TRUE(solver.report().corruption_detected);
  EXPECT_GE(solver.report().fronts_recomputed, 1);
  EXPECT_LT(solver.report().fronts_recomputed, solver.report().n_supernodes)
      << "repair should be localized, not a full refactorize";
  EXPECT_LE(solver.report().verify_residual, options.verify_tolerance);
  ASSERT_EQ(x.size(), want.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], want[i]);
}

TEST(SolverSdc, StoredFactorFlipHealedByFullRecomputeWithoutChecksums) {
  // Without abft there are no at-rest checksums: the verifier falls back
  // to recomputing the whole factor, which still restores the bitwise
  // reference answer.
  const SparseMatrix a = test_matrix();
  const std::vector<real_t> b = random_vector(a.rows, 6);

  Solver reference;
  reference.analyze(a);
  ASSERT_TRUE(reference.factorize().ok());
  const std::vector<real_t> want = reference.solve(b);

  SolverOptions options;
  options.verify = SolverOptions::Verify::kSampled;
  options.inject_sdc = SdcInjection{};
  options.inject_sdc->site = SdcSite::kStoredFactor;
  options.inject_sdc->supernode = 1;
  Solver solver(options);
  solver.analyze(a);
  ASSERT_TRUE(solver.factorize().ok());
  const std::vector<real_t> x = solver.solve(b);
  EXPECT_TRUE(solver.report().corruption_detected);
  EXPECT_EQ(solver.report().fronts_recomputed, solver.report().n_supernodes);
  ASSERT_EQ(x.size(), want.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], want[i]);
}

TEST(SolverSdc, CleanVerifiedSolveReportsResidualOnly) {
  SolverOptions options;
  options.verify = SolverOptions::Verify::kFull;
  Solver solver(options);
  const SparseMatrix a = test_matrix();
  solver.analyze(a);
  ASSERT_TRUE(solver.factorize().ok());
  const std::vector<real_t> b = random_vector(a.rows, 9);
  (void)solver.solve_multi(b, 1);
  EXPECT_FALSE(solver.report().corruption_detected);
  EXPECT_GT(solver.report().verify_residual, 0.0);
  EXPECT_LE(solver.report().verify_residual, options.verify_tolerance);
}

// --- mpsim wire-level bit flips --------------------------------------------

TEST(MpsimSdc, WireFlipWithChecksumsHealsTransparently) {
  const std::vector<double> payload = random_vector(64, 11);
  mpsim::FaultPlan plan;
  plan.bit_flips.push_back({/*rank=*/0, /*at=*/0.0, /*site=*/0,
                            /*word=*/5, /*bit=*/62});
  std::vector<double> received;
  const mpsim::RunStats stats =
      mpsim::run_spmd(2, {}, plan, [&](mpsim::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_vec(1, 7, payload);
        } else {
          received = comm.recv_vec<double>(0, 7);
        }
      });
  ASSERT_EQ(received.size(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(received[i], payload[i]) << "element " << i;
  }
  EXPECT_EQ(stats.total_bit_flips, 1);
  EXPECT_GE(stats.total_corrupt_discarded, 1);
  EXPECT_GE(stats.total_retransmits, 1);
}

TEST(MpsimSdc, WireFlipWithoutChecksumsDeliversSilently) {
  // The undefended wire: the corrupted copy is delivered and the flip is
  // exactly the selected word/bit — what the downstream ABFT/verify layers
  // must catch.
  const std::vector<double> payload = random_vector(64, 12);
  mpsim::FaultPlan plan;
  plan.wire_checksums = false;
  plan.bit_flips.push_back({/*rank=*/0, /*at=*/0.0, /*site=*/0,
                            /*word=*/5, /*bit=*/62});
  std::vector<double> received;
  const mpsim::RunStats stats =
      mpsim::run_spmd(2, {}, plan, [&](mpsim::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_vec(1, 7, payload);
        } else {
          received = comm.recv_vec<double>(0, 7);
        }
      });
  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(received[5], flip_bit(payload[5], 62));
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (i != 5) {
      EXPECT_EQ(received[i], payload[i]) << "element " << i;
    }
  }
  EXPECT_EQ(stats.total_bit_flips, 1);
  EXPECT_EQ(stats.total_corrupt_discarded, 0);
}

TEST(MpsimSdc, BitFlipPlanValidation) {
  const auto run = [](const mpsim::FaultPlan& plan) {
    (void)mpsim::run_spmd(2, {}, plan, [](mpsim::Comm&) {});
  };
  const auto expect_invalid = [&](mpsim::FaultPlan::BitFlip flip) {
    mpsim::FaultPlan plan;
    plan.bit_flips.push_back(flip);
    try {
      run(plan);
      FAIL() << "expected kInvalidInput";
    } catch (const StatusError& e) {
      EXPECT_EQ(e.status().code, StatusCode::kInvalidInput);
    }
  };
  expect_invalid({/*rank=*/2, 0.0, 0, 0, 62});    // rank out of range
  expect_invalid({/*rank=*/-1, 0.0, 0, 0, 62});   // negative rank
  expect_invalid({0, 0.0, /*site=*/2, 0, 62});    // unknown site
  expect_invalid({0, 0.0, 0, 0, /*bit=*/64});     // bit out of range
  expect_invalid({0, 0.0, 0, 0, /*bit=*/-1});
  expect_invalid({0, /*at=*/-1.0, 0, 0, 62});     // negative fire time
  // A well-formed entry passes validation.
  mpsim::FaultPlan ok;
  ok.bit_flips.push_back({0, 0.0, 1, 3, 62});
  run(ok);
}

TEST(MpsimSdc, CheckpointSaveWithOutstandingIrecvDiagnosed) {
  // Composing buddy checkpoints with nonblocking lookahead receives is a
  // protocol error; it must come back as kInvalidInput, not an abort.
  try {
    (void)mpsim::run_spmd(2, {}, [](mpsim::Comm& comm) {
      if (comm.rank() == 0) {
        mpsim::Request r = comm.irecv(1, 3);
        comm.checkpoint_save(1, std::vector<std::byte>(8));
        (void)comm.wait(r);
      } else {
        const std::vector<double> one(1, 1.0);
        comm.send_vec(0, 3, one);
      }
    });
    FAIL() << "expected kInvalidInput";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code, StatusCode::kInvalidInput);
  }
}

// --- Distributed factorization under bit flips ------------------------------

TEST(DistSdc, WireFlipHealedFactorBitwiseIdentical) {
  const SparseMatrix a = grid_laplacian_2d(9, 8, 5);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map = spread_map(sym, 4);
  const DistFactorResult clean = distributed_factor(sym, map);
  ASSERT_TRUE(clean.status.ok());

  for (const int victim : {0, 1, 2}) {
    mpsim::FaultPlan plan;
    plan.bit_flips.push_back({victim, 0.0, /*site=*/0, /*word=*/3,
                              /*bit=*/62});
    const DistFactorResult flipped = distributed_factor(
        sym, map, {}, FactorKind::kCholesky, {}, plan);
    ASSERT_TRUE(flipped.status.ok()) << flipped.status.to_string();
    expect_factors_bitwise_equal(sym, clean.factor, flipped.factor);
    if (flipped.run.total_bit_flips > 0) {
      EXPECT_GE(flipped.run.total_corrupt_discarded, 1) << "rank " << victim;
    }
  }
}

TEST(DistSdc, CorruptCheckpointBlobDiagnosedOnRestore) {
  const SparseMatrix a = grid_laplacian_2d(9, 8, 5);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map = spread_map(sym, 4);
  ResiliencePolicy resilience;
  resilience.buddy_checkpoint = true;
  resilience.checkpoint_interval = 2;

  // Probe the clean resilient run for the victim's busy time, then corrupt
  // every checkpoint the victim stores (one fired entry each) and crash it
  // mid-run: the spare restores from a corrupt blob and the codec must
  // diagnose kDataCorruption — never resume from garbage state.
  const int victim = 1;
  const DistFactorResult probe = distributed_factor(
      sym, map, {}, FactorKind::kCholesky, {}, {}, resilience);
  ASSERT_TRUE(probe.status.ok());
  ASSERT_GT(probe.run.checkpoints_stored, 0);
  mpsim::FaultPlan plan;
  plan.crashes.push_back(
      {victim, 0.6 * probe.run.rank_time[static_cast<std::size_t>(victim)]});
  plan.spare_ranks = 1;
  for (int i = 0; i < 64; ++i) {
    plan.bit_flips.push_back({victim, 0.0, /*site=*/1,
                              /*word=*/static_cast<std::uint64_t>(i),
                              /*bit=*/7});
  }
  const DistFactorResult result = distributed_factor_checked(
      sym, map, {}, FactorKind::kCholesky, {}, plan, resilience);
  ASSERT_TRUE(result.status.failed());
  EXPECT_EQ(result.status.code, StatusCode::kDataCorruption)
      << result.status.to_string();
  // The aborted run surfaces no RunStats (the exception preempts them), so
  // the diagnosed Status is the whole observable outcome — as intended.
}

TEST(DistSdc, ResilienceComposesWithLookaheadSchedule) {
  // Satellite of the checkpoint/irecv fix: the lookahead schedule drains
  // its preposted receives before every front boundary, so buddy
  // checkpointing composes with it cleanly (no kInvalidInput) and a crash
  // recovery under lookahead is still bitwise identical.
  const SparseMatrix a = grid_laplacian_2d(9, 8, 5);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map = spread_map(sym, 4);
  DistConfig config;
  config.schedule = DistConfig::Schedule::kLookahead;
  ResiliencePolicy resilience;
  resilience.buddy_checkpoint = true;
  resilience.checkpoint_interval = 2;

  const DistFactorResult clean = distributed_factor(sym, map);
  ASSERT_TRUE(clean.status.ok());
  const DistFactorResult probe = distributed_factor(
      sym, map, {}, FactorKind::kCholesky, {}, {}, resilience, config);
  ASSERT_TRUE(probe.status.ok());
  ASSERT_GT(probe.run.checkpoints_stored, 0);

  mpsim::FaultPlan plan;
  plan.crashes.push_back({1, 0.5 * probe.run.rank_time[1]});
  plan.spare_ranks = 1;
  const DistFactorResult crashed = distributed_factor_checked(
      sym, map, {}, FactorKind::kCholesky, {}, plan, resilience, config);
  ASSERT_TRUE(crashed.status.ok()) << crashed.status.to_string();
  EXPECT_EQ(crashed.run.ranks_recovered, 1);
  expect_factors_bitwise_equal(sym, clean.factor, crashed.factor);
}

// --- Chaos soak -------------------------------------------------------------

TEST(ChaosSoak, MixedFaultsBitwiseIdenticalOrCleanStatus) {
  // Drop/duplicate/delay/ack-loss/crash/bit-flip combined over a seed
  // sweep, wire checksums on. Every run must end in either a factor
  // bitwise identical to the clean run or a diagnosed Status — completing
  // the sweep at all also proves no hang.
  const SparseMatrix a = grid_laplacian_2d(9, 8, 5);
  const SymbolicFactor sym = analyze(a);
  const FrontMap map = spread_map(sym, 4);
  ResiliencePolicy resilience;
  resilience.buddy_checkpoint = true;
  resilience.checkpoint_interval = 4;
  const DistFactorResult clean = distributed_factor(sym, map);
  ASSERT_TRUE(clean.status.ok());
  const DistFactorResult probe = distributed_factor(
      sym, map, {}, FactorKind::kCholesky, {}, {}, resilience);
  ASSERT_TRUE(probe.status.ok());

  int healed = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    mpsim::FaultPlan plan;
    plan.seed = seed;
    plan.drop_rate = 0.05;
    plan.duplicate_rate = 0.05;
    plan.delay_rate = 0.10;
    plan.ack_drop_rate = 0.02;
    const int flip_rank = static_cast<int>(seed % 4);
    plan.bit_flips.push_back({flip_rank, 0.0, /*site=*/0, /*word=*/seed,
                              /*bit=*/static_cast<int>(seed * 6 % 64)});
    if (seed % 2 == 0) {
      const int crash_rank = static_cast<int>((seed / 2) % 4);
      plan.crashes.push_back(
          {crash_rank,
           0.5 * probe.run.rank_time[static_cast<std::size_t>(crash_rank)]});
      plan.spare_ranks = 1;
    }
    const DistFactorResult run = distributed_factor_checked(
        sym, map, {}, FactorKind::kCholesky, {}, plan, resilience);
    if (run.status.ok()) {
      expect_factors_bitwise_equal(sym, clean.factor, run.factor);
      ++healed;
    } else {
      EXPECT_NE(run.status.code, StatusCode::kOk);
      EXPECT_FALSE(run.status.message.empty());
    }
  }
  // The defenses are expected to heal the large majority of these seeds.
  EXPECT_GE(healed, 5);
}

}  // namespace
}  // namespace parfact
