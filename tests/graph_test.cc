// Tests for the graph module: structure, traversal, partitioning, orderings.
#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/ordering.h"
#include "graph/partition.h"
#include "graph/traversal.h"
#include "symbolic/etree.h"
#include "sparse/gen.h"
#include "sparse/ops.h"
#include "support/prng.h"

namespace parfact {
namespace {

Graph path_graph(index_t n) {
  TripletBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) b.add(i, i, 1.0);
  for (index_t i = 1; i < n; ++i) b.add(i, i - 1, -1.0);
  return graph_from_pattern(b.build());
}

TEST(Graph, FromLowerPattern) {
  const Graph g = graph_from_pattern(grid_laplacian_2d(4, 3, 5));
  g.validate();
  EXPECT_EQ(g.n, 12);
  // 2-D grid edges: (nx-1)*ny + nx*(ny-1).
  EXPECT_EQ(g.edge_count(), 3 * 3 + 4 * 2);
}

TEST(Graph, FromFullPatternMatchesLower) {
  const SparseMatrix low = grid_laplacian_2d(5, 5, 9);
  const Graph g1 = graph_from_pattern(low);
  const Graph g2 = graph_from_pattern(symmetrize_full(low));
  EXPECT_EQ(g1.adj_ptr, g2.adj_ptr);
  EXPECT_EQ(g1.adj, g2.adj);
}

TEST(Graph, IgnoresDiagonalAndDuplicates) {
  TripletBuilder b(3, 3);
  b.add(0, 0, 5.0);
  b.add(1, 0, 1.0);
  b.add(0, 1, 1.0);  // duplicate edge in other triangle
  const Graph g = graph_from_pattern(b.build());
  g.validate();
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(Graph, InducedSubgraph) {
  const Graph g = graph_from_pattern(grid_laplacian_2d(4, 4, 5));
  std::vector<index_t> local_of(static_cast<std::size_t>(g.n), kNone);
  // First 2x4 rows of the grid: vertices 0..7.
  std::vector<index_t> verts{0, 1, 2, 3, 4, 5, 6, 7};
  const Graph s = induced_subgraph(g, verts, local_of);
  s.validate();
  EXPECT_EQ(s.n, 8);
  EXPECT_EQ(s.edge_count(), 3 + 3 + 4);  // two rows + vertical links
  // Scratch restored.
  EXPECT_TRUE(std::all_of(local_of.begin(), local_of.end(),
                          [](index_t v) { return v == kNone; }));
}

TEST(Traversal, ConnectedComponents) {
  TripletBuilder b(6, 6);
  for (index_t i = 0; i < 6; ++i) b.add(i, i, 1.0);
  b.add(1, 0, 1.0);
  b.add(3, 2, 1.0);
  b.add(4, 3, 1.0);
  const Graph g = graph_from_pattern(b.build());
  index_t nc = 0;
  const auto comp = connected_components(g, &nc);
  EXPECT_EQ(nc, 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[2], comp[5]);
}

TEST(Traversal, BfsLevelsOnPath) {
  const Graph g = path_graph(5);
  const auto level = bfs_levels(g, 0);
  for (index_t i = 0; i < 5; ++i) EXPECT_EQ(level[i], i);
}

TEST(Traversal, PseudoPeripheralOnPathIsEndpoint) {
  const Graph g = path_graph(9);
  const index_t v = pseudo_peripheral_vertex(g, 4);
  EXPECT_TRUE(v == 0 || v == 8);
}

TEST(Partition, GreedyGrowBalances) {
  const Graph g = graph_from_pattern(grid_laplacian_2d(16, 16, 5));
  Prng rng(1);
  const Bisection b = greedy_grow_bisection(g, rng);
  EXPECT_EQ(b.side_weight[0] + b.side_weight[1], g.n);
  EXPECT_LE(b.balance(), 1.2);
  EXPECT_GT(b.cut, 0);
}

TEST(Partition, FmRefineNeverWorsensCut) {
  const Graph g = graph_from_pattern(grid_laplacian_2d(20, 20, 5));
  Prng rng(2);
  Bisection b = greedy_grow_bisection(g, rng);
  const count_t before = b.cut;
  PartitionOptions opts;
  fm_refine(g, opts, &b);
  EXPECT_LE(b.cut, before);
  Bisection check = b;
  recompute_bisection_stats(g, &check);
  EXPECT_EQ(check.cut, b.cut);
  EXPECT_EQ(check.side_weight[0], b.side_weight[0]);
}

TEST(Partition, CoarsenPreservesTotalWeight) {
  const Graph g = graph_from_pattern(grid_laplacian_2d(12, 12, 5));
  Prng rng(3);
  std::vector<index_t> cmap;
  const Graph c = coarsen(g, rng, &cmap);
  c.validate();
  EXPECT_LT(c.n, g.n);
  EXPECT_GE(c.n, g.n / 2);
  EXPECT_EQ(c.total_vertex_weight(), g.total_vertex_weight());
  for (index_t v = 0; v < g.n; ++v) {
    ASSERT_GE(cmap[v], 0);
    ASSERT_LT(cmap[v], c.n);
  }
}

TEST(Partition, MultilevelBisectionOnGridIsDecent) {
  // A k x k grid has a bisection of width ~k; the multilevel partitioner
  // should find a cut within a small factor of that.
  const index_t k = 32;
  const Graph g = graph_from_pattern(grid_laplacian_2d(k, k, 5));
  Prng rng(4);
  PartitionOptions opts;
  const Bisection b = multilevel_bisection(g, opts, rng);
  EXPECT_LE(b.balance(), 1.0 + opts.balance_tol + 1e-9);
  EXPECT_LE(b.cut, 3 * k);
  EXPECT_GE(b.cut, k - 1);
}

TEST(Partition, VertexSeparatorSeparates) {
  const Graph g = graph_from_pattern(grid_laplacian_2d(16, 16, 5));
  Prng rng(5);
  PartitionOptions opts;
  Bisection b = multilevel_bisection(g, opts, rng);
  const auto sep = vertex_separator(g, &b);
  EXPECT_FALSE(sep.empty());
  // No remaining 0-1 edge.
  for (index_t v = 0; v < g.n; ++v) {
    if (b.side[v] == 2) continue;
    for (index_t u : g.neighbors(v)) {
      if (b.side[u] == 2) continue;
      EXPECT_EQ(b.side[u], b.side[v]);
    }
  }
  // Separator of a 16x16 grid should be around 16, certainly below 50.
  EXPECT_LE(static_cast<index_t>(sep.size()), 50);
}

// --- Orderings --------------------------------------------------------------

void expect_valid_ordering(const std::vector<index_t>& perm, index_t n) {
  ASSERT_EQ(static_cast<index_t>(perm.size()), n);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(Ordering, NestedDissectionIsPermutation) {
  const SparseMatrix a = grid_laplacian_2d(20, 17, 5);
  const Graph g = graph_from_pattern(a);
  const auto perm = nested_dissection(g);
  expect_valid_ordering(perm, g.n);
}

TEST(Ordering, NestedDissectionHandlesDisconnected) {
  TripletBuilder b(10, 10);
  for (index_t i = 0; i < 10; ++i) b.add(i, i, 1.0);
  for (index_t i = 1; i < 5; ++i) b.add(i, i - 1, -1.0);
  for (index_t i = 6; i < 10; ++i) b.add(i, i - 1, -1.0);
  OrderingOptions opts;
  opts.nd_leaf_size = 2;
  const auto perm = nested_dissection(graph_from_pattern(b.build()), opts);
  expect_valid_ordering(perm, 10);
}

TEST(Ordering, NestedDissectionTinyGraph) {
  const auto perm = nested_dissection(path_graph(3));
  expect_valid_ordering(perm, 3);
  EXPECT_TRUE(nested_dissection(path_graph(1)).size() == 1);
}

TEST(Ordering, MinimumDegreeIsPermutation) {
  const auto perm = minimum_degree(graph_from_pattern(
      grid_laplacian_2d(15, 15, 5)));
  expect_valid_ordering(perm, 225);
}

TEST(Ordering, MinimumDegreeOnPathEliminatesEndpointsFirst) {
  // On a path, degree-1 endpoints must be eliminated before any interior
  // vertex of degree 2 becomes available only through elimination.
  const auto perm = minimum_degree(path_graph(8));
  expect_valid_ordering(perm, 8);
  EXPECT_TRUE(perm[0] == 0 || perm[0] == 7);
}

TEST(Ordering, MinimumDegreeStarCenterLast) {
  // Star graph: leaves have degree 1, center degree n-1. MD eliminates all
  // leaves first.
  const index_t n = 12;
  TripletBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) b.add(i, i, 1.0);
  for (index_t i = 1; i < n; ++i) b.add(i, 0, -1.0);
  const auto perm = minimum_degree(graph_from_pattern(b.build()));
  // The center must survive until the final tie with the last leaf.
  EXPECT_TRUE(perm.back() == 0 || perm[perm.size() - 2] == 0);
}

TEST(Ordering, RcmIsPermutationAndReducesBandwidth) {
  Prng rng(9);
  // Random sparse symmetric graph.
  const SparseMatrix a = random_spd(120, 3, 17);
  const Graph g = graph_from_pattern(a);
  const auto perm = rcm(g);
  expect_valid_ordering(perm, g.n);
  const auto inv = invert_permutation(perm);
  count_t band_before = 0, band_after = 0;
  for (index_t v = 0; v < g.n; ++v) {
    for (index_t u : g.neighbors(v)) {
      band_before = std::max<count_t>(band_before, std::abs(u - v));
      band_after =
          std::max<count_t>(band_after, std::abs(inv[u] - inv[v]));
    }
  }
  EXPECT_LT(band_after, band_before);
}

TEST(Ordering, RcmOnPathIsMonotone) {
  const auto perm = rcm(path_graph(6));
  expect_valid_ordering(perm, 6);
  // A path relabeled by RCM must remain a path with bandwidth 1.
  const auto inv = invert_permutation(perm);
  for (index_t i = 1; i < 6; ++i) {
    EXPECT_EQ(std::abs(inv[i] - inv[i - 1]), 1);
  }
}

TEST(Ordering, ParallelNdIsValidAndDeterministicAcrossPoolSizes) {
  const Graph g = graph_from_pattern(grid_laplacian_2d(25, 23, 5));
  OrderingOptions opts;
  opts.seed = 7;
  ThreadPool p1(1), p4(4);
  const auto perm1 = nested_dissection_parallel(g, opts, p1);
  const auto perm4 = nested_dissection_parallel(g, opts, p4);
  expect_valid_ordering(perm1, g.n);
  EXPECT_EQ(perm1, perm4);  // pool size must not change the ordering
}

TEST(Ordering, ParallelNdQualityComparableToSequential) {
  const SparseMatrix a = grid_laplacian_3d(9, 9, 9, 7);
  const Graph g = graph_from_pattern(a);
  OrderingOptions opts;
  ThreadPool pool(3);
  const auto pseq = nested_dissection(g, opts);
  const auto ppar = nested_dissection_parallel(g, opts, pool);
  expect_valid_ordering(ppar, g.n);
  // Compare fill via symbolic analysis of both orderings.
  const auto fill = [&](const std::vector<index_t>& perm) {
    const SparseMatrix pa =
        lower_triangle(permute_symmetric(symmetrize_full(a), perm));
    const auto parent = elimination_tree(pa);
    const auto counts = cholesky_col_counts(pa, parent);
    count_t total = 0;
    for (index_t c : counts) total += c;
    return total;
  };
  const count_t f_seq = fill(pseq);
  const count_t f_par = fill(ppar);
  EXPECT_LT(static_cast<double>(f_par), 1.35 * static_cast<double>(f_seq));
  EXPECT_GT(static_cast<double>(f_par), 0.65 * static_cast<double>(f_seq));
}

TEST(Ordering, ParallelNdTinyAndEmptyGraphs) {
  ThreadPool pool(2);
  OrderingOptions opts;
  EXPECT_TRUE(nested_dissection_parallel(Graph{}, opts, pool).empty());
  const auto perm = nested_dissection_parallel(path_graph(5), opts, pool);
  expect_valid_ordering(perm, 5);
}

class OrderingSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderingSeedTest, NdValidAcrossSeeds) {
  const Graph g = graph_from_pattern(grid_laplacian_3d(7, 7, 7, 7));
  OrderingOptions opts;
  opts.seed = GetParam();
  const auto perm = nested_dissection(g, opts);
  expect_valid_ordering(perm, g.n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingSeedTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 12345u));

}  // namespace
}  // namespace parfact
