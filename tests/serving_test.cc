// Tests for the symbolic-reuse serving engine: pattern keys, the shared
// analysis cache, the refactorize fast path, factor spill/reload, and the
// multi-session SolverService. The standing contract threads through all
// of it: a cache-hit analyze and an in-place refactorize are bitwise
// identical to their cold counterparts, across every engine, and a session
// job never observes a torn factor — it gets one of the consistent answers
// or a diagnosed Status.
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/service.h"
#include "api/solver.h"
#include "api/symbolic_cache.h"
#include "mf/multifrontal.h"
#include "sparse/gen.h"
#include "support/resource.h"
#include "support/status.h"
#include "symbolic/pattern_key.h"
#include "symbolic/working_set.h"

namespace parfact {
namespace {

void expect_panels_bitwise_equal(const SymbolicFactor& sym,
                                 const CholeskyFactor& a,
                                 const CholeskyFactor& b) {
  ASSERT_EQ(a.is_ldlt(), b.is_ldlt());
  if (a.is_ldlt()) {
    const auto da = a.diag();
    const auto db = b.diag();
    ASSERT_EQ(da.size(), db.size());
    ASSERT_EQ(std::memcmp(da.data(), db.data(), da.size() * sizeof(real_t)),
              0);
  }
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const ConstMatrixView pa = a.panel(s);
    const ConstMatrixView pb = b.panel(s);
    ASSERT_EQ(std::memcmp(pa.data, pb.data,
                          static_cast<std::size_t>(pa.rows) * pa.cols *
                              sizeof(real_t)),
              0)
        << "supernode " << s;
  }
}

SparseMatrix scaled_values(const SparseMatrix& a, real_t scale) {
  SparseMatrix out = a;
  for (real_t& v : out.values) v *= scale;
  return out;
}

// ---------------------------------------------------------------------------
// PatternKey

TEST(PatternKeyTest, IdentifiesStructureNotValues) {
  const SparseMatrix a = grid_laplacian_2d(20, 20);
  const SparseMatrix b = scaled_values(a, 3.5);
  EXPECT_EQ(pattern_key(a), pattern_key(b));
  EXPECT_EQ(PatternKeyHash{}(pattern_key(a)),
            PatternKeyHash{}(pattern_key(b)));
}

TEST(PatternKeyTest, DiscriminatesStructureAndConfig) {
  const SparseMatrix a = grid_laplacian_2d(20, 20);
  const SparseMatrix b = grid_laplacian_2d(21, 20);
  const SparseMatrix c = grid_laplacian_3d(5, 5, 5);
  EXPECT_FALSE(pattern_key(a) == pattern_key(b));
  EXPECT_FALSE(pattern_key(a) == pattern_key(c));
  // Same structure, different configuration digest.
  EXPECT_FALSE(pattern_key(a, 1) == pattern_key(a, 2));
  // Collision guards carried verbatim.
  const PatternKey ka = pattern_key(a);
  EXPECT_EQ(ka.n, a.rows);
  EXPECT_EQ(ka.nnz, a.nnz());
}

// ---------------------------------------------------------------------------
// SymbolicCache

std::shared_ptr<const CachedAnalysis> make_entry(const SparseMatrix& lower) {
  Solver probe;  // cold analyze to manufacture a valid entry
  probe.analyze(lower);
  SymbolicFactor sym = probe.symbolic();
  std::fill(sym.a.values.begin(), sym.a.values.end(), 0.0);
  std::vector<index_t> vmap(sym.a.values.size());
  // Identity-ish map is fine for cache-mechanics tests.
  for (std::size_t q = 0; q < vmap.size(); ++q) {
    vmap[q] = static_cast<index_t>(q);
  }
  return std::make_shared<CachedAnalysis>(std::move(sym), probe.permutation(),
                                          std::move(vmap),
                                          SolveScheduleOptions{}, 0.0);
}

TEST(SymbolicCacheTest, HitMissCountsAndLruEviction) {
  const SparseMatrix g1 = grid_laplacian_2d(8, 8);
  const SparseMatrix g2 = grid_laplacian_2d(9, 9);
  const SparseMatrix g3 = grid_laplacian_2d(10, 10);
  SymbolicCache cache(2);
  EXPECT_EQ(cache.lookup(pattern_key(g1)), nullptr);
  EXPECT_EQ(cache.misses(), 1);
  cache.insert(pattern_key(g1), make_entry(g1));
  cache.insert(pattern_key(g2), make_entry(g2));
  EXPECT_NE(cache.lookup(pattern_key(g1)), nullptr);  // g1 now most recent
  EXPECT_EQ(cache.hits(), 1);
  cache.insert(pattern_key(g3), make_entry(g3));  // evicts LRU = g2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.lookup(pattern_key(g2)), nullptr);
  EXPECT_NE(cache.lookup(pattern_key(g1)), nullptr);
  EXPECT_NE(cache.lookup(pattern_key(g3)), nullptr);
}

TEST(SymbolicCacheTest, InsertRaceIncumbentWins) {
  const SparseMatrix g = grid_laplacian_2d(8, 8);
  SymbolicCache cache(4);
  const auto first = cache.insert(pattern_key(g), make_entry(g));
  const auto second = cache.insert(pattern_key(g), make_entry(g));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------------
// Cache-assisted analyze: bitwise identity with the cold path

class CachedAnalyzeTest : public ::testing::TestWithParam<int> {};

TEST_P(CachedAnalyzeTest, HitIsBitwiseIdenticalToCold) {
  const int threads = GetParam();
  const SparseMatrix a = grid_laplacian_2d(40, 40);
  SymbolicCache cache(8);
  SolverOptions copt;
  copt.threads = threads;
  copt.symbolic_cache = &cache;

  Solver miss(copt);
  miss.analyze(a);
  ASSERT_TRUE(miss.factorize().ok());
  EXPECT_EQ(miss.report().symbolic_cache_misses, 1);
  EXPECT_EQ(miss.report().symbolic_cache_hits, 0);

  Solver hit(copt);
  hit.analyze(a);
  ASSERT_TRUE(hit.factorize().ok());
  EXPECT_EQ(hit.report().symbolic_cache_hits, 1);

  // The adopted analysis equals the cold one exactly: structure, values,
  // permutation, and the factor computed from it.
  EXPECT_EQ(miss.symbolic().a.col_ptr, hit.symbolic().a.col_ptr);
  EXPECT_EQ(miss.symbolic().a.row_ind, hit.symbolic().a.row_ind);
  EXPECT_EQ(miss.symbolic().a.values, hit.symbolic().a.values);
  EXPECT_EQ(miss.permutation(), hit.permutation());
  expect_panels_bitwise_equal(miss.symbolic(), miss.factor(), hit.factor());

  // And against a solver with no cache at all.
  SolverOptions cold_opt;
  cold_opt.threads = threads;
  Solver cold(cold_opt);
  cold.analyze(a);
  ASSERT_TRUE(cold.factorize().ok());
  EXPECT_EQ(cold.symbolic().a.values, hit.symbolic().a.values);
  expect_panels_bitwise_equal(cold.symbolic(), cold.factor(), hit.factor());
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, CachedAnalyzeTest,
                         ::testing::Values(1, 4));

// ---------------------------------------------------------------------------
// Refactorize: bitwise identity across engines

struct EngineCase {
  const char* name;
  int threads;
  SolverOptions::FactorEngine engine;
};

class RefactorizeEngineTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(RefactorizeEngineTest, BitwiseIdenticalToColdFactorize) {
  const EngineCase ec = GetParam();
  const SparseMatrix a = grid_laplacian_2d(36, 36);
  const SparseMatrix a2 = scaled_values(a, 1.75);

  SolverOptions opt;
  opt.threads = ec.threads;
  opt.factor_engine = ec.engine;

  Solver solver(opt);
  solver.analyze(a);
  ASSERT_TRUE(solver.factorize().ok());
  const Status st = solver.refactorize(a2.values);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(solver.report().refactorizes, 1);

  Solver cold(opt);
  cold.analyze(a2);
  ASSERT_TRUE(cold.factorize().ok());
  expect_panels_bitwise_equal(cold.symbolic(), cold.factor(),
                              solver.factor());
  const std::vector<real_t> b(static_cast<std::size_t>(a.rows), 1.0);
  EXPECT_EQ(cold.solve(b), solver.solve(b));
}

INSTANTIATE_TEST_SUITE_P(
    Engines, RefactorizeEngineTest,
    ::testing::Values(
        EngineCase{"serial", 1, SolverOptions::FactorEngine::kTaskDag},
        EngineCase{"taskdag", 4, SolverOptions::FactorEngine::kTaskDag},
        EngineCase{"twophase", 4, SolverOptions::FactorEngine::kTwoPhase}),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return info.param.name;
    });

TEST(RefactorizeTest, OocSpillPathIdentity) {
  // A budget that admits only the spill rung: refactorize degrades to the
  // governed path and the re-spilled factor matches a cold spilled run.
  const SparseMatrix a = grid_laplacian_2d(28, 28);
  const SparseMatrix a2 = scaled_values(a, 2.25);

  SolverOptions opt;
  opt.spill_path = "serving_test_ooc_a.bin";
  Solver solver(opt);
  solver.analyze(a);
  const WorkingSetEstimate est =
      estimate_working_set(solver.symbolic(), /*ldlt=*/false);
  solver.set_memory_budget_bytes(est.peak_incore_bytes - 1);
  ASSERT_TRUE(solver.factorize().ok());
  ASSERT_EQ(solver.report().admission, Admission::kSpill);
  ASSERT_TRUE(solver.refactorize(a2.values).ok());
  ASSERT_EQ(solver.report().admission, Admission::kSpill);
  ASSERT_TRUE(solver.factor_spilled());

  SolverOptions copt;
  copt.spill_path = "serving_test_ooc_b.bin";
  Solver cold(copt);
  cold.analyze(a2);
  cold.set_memory_budget_bytes(est.peak_incore_bytes - 1);
  ASSERT_TRUE(cold.factorize().ok());
  ASSERT_TRUE(cold.factor_spilled());

  const SymbolicFactor& sym = cold.symbolic();
  for (index_t s = 0; s < sym.n_supernodes; ++s) {
    const index_t rows = sym.front_order(s);
    const index_t cols = sym.sn_cols(s);
    std::vector<real_t> pa(static_cast<std::size_t>(rows) * cols);
    std::vector<real_t> pb(pa.size());
    solver.ooc_factor().read_panel(s, MatrixView{pa.data(), rows, cols, rows});
    cold.ooc_factor().read_panel(s, MatrixView{pb.data(), rows, cols, rows});
    ASSERT_EQ(std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(real_t)),
              0)
        << "supernode " << s;
  }
}

TEST(RefactorizeTest, KktPerturbationCountIdentity) {
  // Decoupled near-singular rows produce a deterministic perturbation
  // count; refactorize must report exactly what a cold run reports.
  const index_t kDecoupled = 5;
  const SparseMatrix base = saddle_point_kkt(80, 40, 3, 17);
  const SparseMatrix a = append_decoupled_rows(base, kDecoupled, 1e-30);
  const SparseMatrix a2 = scaled_values(a, 1.5);

  SolverOptions opt;
  opt.factor_kind = FactorKind::kLdlt;
  opt.threads = 2;
  Solver solver(opt);
  solver.analyze(a);
  const Status first = solver.factorize();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.perturbations, kDecoupled);

  const Status re = solver.refactorize(a2.values);
  ASSERT_TRUE(re.ok());

  Solver cold(opt);
  cold.analyze(a2);
  const Status cs = cold.factorize();
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(re.perturbations, cs.perturbations);
  EXPECT_EQ(solver.report().pivot_perturbations,
            cold.report().pivot_perturbations);
  expect_panels_bitwise_equal(cold.symbolic(), cold.factor(),
                              solver.factor());
}

TEST(RefactorizeTest, ValueLengthMismatchDiagnosed) {
  const SparseMatrix a = grid_laplacian_2d(12, 12);
  Solver solver;
  solver.analyze(a);
  ASSERT_TRUE(solver.factorize().ok());
  std::vector<real_t> short_values(a.values.size() - 1, 1.0);
  const Status st = solver.refactorize(short_values);
  EXPECT_EQ(st.code, StatusCode::kInvalidInput);
  // The previous factor is untouched and still solves.
  const std::vector<real_t> b(static_cast<std::size_t>(a.rows), 1.0);
  const std::vector<real_t> x = solver.solve(b);
  EXPECT_LT(solver.residual(x, b), 1e-12);
}

TEST(RefactorizeTest, AfterCancelReproducesUnbudgetedFactor) {
  const SparseMatrix a = grid_laplacian_2d(30, 30);
  const SparseMatrix a2 = scaled_values(a, 1.25);
  Solver solver;
  solver.analyze(a);
  ASSERT_TRUE(solver.factorize().ok());

  solver.cancel();
  const Status cancelled = solver.refactorize(a2.values);
  EXPECT_EQ(cancelled.code, StatusCode::kCancelled);
  EXPECT_FALSE(solver.has_factor());

  // The solver is immediately reusable and the retry is bitwise identical
  // to an uninterrupted cold run on the same values.
  const Status retry = solver.refactorize(a2.values);
  ASSERT_TRUE(retry.ok()) << retry.to_string();
  Solver cold;
  cold.analyze(a2);
  ASSERT_TRUE(cold.factorize().ok());
  expect_panels_bitwise_equal(cold.symbolic(), cold.factor(),
                              solver.factor());
}

// ---------------------------------------------------------------------------
// Explicit spill / unspill

TEST(SpillFactorTest, RoundtripPreservesSolvesBitwise) {
  const SparseMatrix a = grid_laplacian_2d(24, 24);
  SolverOptions opt;
  opt.spill_path = "serving_test_spill.bin";
  Solver solver(opt);
  EXPECT_ANY_THROW((void)solver.spill_factor());  // before analyze: assert

  solver.analyze(a);
  EXPECT_EQ(solver.spill_factor().code, StatusCode::kInvalidInput);
  EXPECT_EQ(solver.unspill_factor().code, StatusCode::kInvalidInput);
  ASSERT_TRUE(solver.factorize().ok());
  const std::size_t incore_bytes = solver.factor_bytes();
  EXPECT_GT(incore_bytes, 0u);

  const std::vector<real_t> b(static_cast<std::size_t>(a.rows), 1.0);
  const std::vector<real_t> x_incore = solver.solve(b);

  ASSERT_TRUE(solver.spill_factor().ok());
  EXPECT_TRUE(solver.factor_spilled());
  ASSERT_TRUE(solver.spill_factor().ok());  // idempotent
  EXPECT_EQ(solver.solve(b), x_incore);     // streamed solve, same answer

  ASSERT_TRUE(solver.unspill_factor().ok());
  EXPECT_FALSE(solver.factor_spilled());
  EXPECT_EQ(solver.factor_bytes(), incore_bytes);
  EXPECT_EQ(solver.solve(b), x_incore);
}

// ---------------------------------------------------------------------------
// SolverService

TEST(SolverServiceTest, SessionLifecycleAndDiagnosedErrors) {
  const SparseMatrix a = grid_laplacian_2d(16, 16);
  SolverService svc;
  std::vector<real_t> x;
  const std::vector<real_t> b(static_cast<std::size_t>(a.rows), 1.0);

  EXPECT_EQ(svc.solve(42, b, x).code, StatusCode::kInvalidInput);
  EXPECT_EQ(svc.factorize(42).code, StatusCode::kInvalidInput);
  EXPECT_EQ(svc.close(42).code, StatusCode::kInvalidInput);

  SessionId id = 0;
  ASSERT_TRUE(svc.open(a, id).ok());
  EXPECT_EQ(svc.solve(id, b, x).code, StatusCode::kInvalidInput);  // no factor
  ASSERT_TRUE(svc.factorize(id).ok());
  ASSERT_TRUE(svc.solve(id, b, x).ok());

  Solver reference;
  reference.analyze(a);
  ASSERT_TRUE(reference.factorize().ok());
  EXPECT_EQ(x, reference.solve(b));

  SolverReport report;
  ASSERT_TRUE(svc.report(id, report).ok());
  EXPECT_EQ(report.n, a.rows);
  ASSERT_TRUE(svc.close(id).ok());
  EXPECT_EQ(svc.close(id).code, StatusCode::kInvalidInput);
  EXPECT_EQ(svc.stats().sessions_open, 0);
}

TEST(SolverServiceTest, SymbolicReuseAcrossSessions) {
  const SparseMatrix a = grid_laplacian_2d(24, 24);
  const count_t kSessions = 6;
  SolverService svc;
  for (count_t i = 0; i < kSessions; ++i) {
    SessionId id = 0;
    ASSERT_TRUE(svc.open(a, id).ok());
    ASSERT_TRUE(svc.factorize(id).ok());
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.symbolic_cache_misses, 1);
  EXPECT_EQ(stats.symbolic_cache_hits, kSessions - 1);
  EXPECT_EQ(stats.sessions_open, kSessions);
}

TEST(SolverServiceTest, LruEvictionSpillsAndReloadsTransparently) {
  const SparseMatrix a = grid_laplacian_2d(30, 30);
  Solver probe;
  probe.analyze(a);
  ASSERT_TRUE(probe.factorize().ok());
  const std::vector<real_t> b(static_cast<std::size_t>(a.rows), 1.0);
  const std::vector<real_t> x_ref = probe.solve(b);

  ServiceOptions opt;
  // Room for two resident factors: the third factorize must evict.
  opt.factor_cache_bytes = probe.factor_bytes() * 2 + 1024;
  SolverService svc(opt);
  SessionId ids[3];
  for (SessionId& id : ids) {
    ASSERT_TRUE(svc.open(a, id).ok());
    ASSERT_TRUE(svc.factorize(id).ok());
  }
  const ServiceStats stats = svc.stats();
  EXPECT_GE(stats.sessions_evicted, 1);
  EXPECT_LE(stats.factor_cache_bytes, opt.factor_cache_bytes);

  // Touching the evicted (coldest) session still returns the exact answer —
  // reloaded in-core (evicting someone else) or streamed from disk.
  std::vector<real_t> x;
  ASSERT_TRUE(svc.solve(ids[0], b, x).ok());
  EXPECT_EQ(x, x_ref);
  SolverReport report;
  ASSERT_TRUE(svc.report(ids[0], report).ok());
  EXPECT_GE(report.sessions_evicted, 1);
}

TEST(SolverServiceTest, RefactorizeThroughService) {
  const SparseMatrix a = grid_laplacian_2d(20, 20);
  const SparseMatrix a2 = scaled_values(a, 4.0);
  SolverService svc;
  SessionId id = 0;
  ASSERT_TRUE(svc.open(a, id).ok());
  ASSERT_TRUE(svc.factorize(id).ok());
  ASSERT_TRUE(svc.refactorize(id, a2.values).ok());

  Solver cold;
  cold.analyze(a2);
  ASSERT_TRUE(cold.factorize().ok());
  const std::vector<real_t> b(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<real_t> x;
  ASSERT_TRUE(svc.solve(id, b, x).ok());
  EXPECT_EQ(x, cold.solve(b));
  EXPECT_EQ(svc.stats().refactorizes, 1);

  std::vector<real_t> short_values(a.values.size() - 1, 1.0);
  EXPECT_EQ(svc.refactorize(id, short_values).code,
            StatusCode::kInvalidInput);
}

// The hardening contract: solves racing a pending refactorize on one
// session serialize — every returned solution is exactly one of the two
// consistent answers, never a mix of old and new factor panels.
TEST(SolverServiceTest, ConcurrentSolveDuringRefactorizeNeverTears) {
  const SparseMatrix a = grid_laplacian_2d(24, 24);
  const SparseMatrix a2 = scaled_values(a, 2.0);
  const std::vector<real_t> b(static_cast<std::size_t>(a.rows), 1.0);

  Solver ref1;
  ref1.analyze(a);
  ASSERT_TRUE(ref1.factorize().ok());
  const std::vector<real_t> x1 = ref1.solve(b);
  Solver ref2;
  ref2.analyze(a2);
  ASSERT_TRUE(ref2.factorize().ok());
  const std::vector<real_t> x2 = ref2.solve(b);
  ASSERT_NE(x1, x2);

  ServiceOptions opt;
  opt.max_concurrent_jobs = 4;
  SolverService svc(opt);
  SessionId id = 0;
  ASSERT_TRUE(svc.open(a, id).ok());
  ASSERT_TRUE(svc.factorize(id).ok());

  std::atomic<int> inconsistent{0};
  std::atomic<int> failures{0};
  const int kSolvers = 3;
  const int kRounds = 25;
  std::vector<std::thread> threads;
  threads.reserve(kSolvers + 1);
  for (int t = 0; t < kSolvers; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        std::vector<real_t> x;
        if (!svc.solve(id, b, x).ok()) {
          ++failures;
        } else if (x != x1 && x != x2) {
          ++inconsistent;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kRounds; ++i) {
      if (!svc.refactorize(id, (i % 2 != 0) ? a.values : a2.values).ok()) {
        ++failures;
      }
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(inconsistent.load(), 0);
  EXPECT_EQ(svc.stats().jobs_completed,
            static_cast<count_t>(kSolvers * kRounds + kRounds + 1));
}

TEST(SolverServiceTest, BatchSolveMatchesSolverBatch) {
  const SparseMatrix a = grid_laplacian_2d(18, 18);
  const index_t nrhs = 5;
  std::vector<real_t> b(static_cast<std::size_t>(a.rows) * nrhs);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<real_t>(i % 13) - 6.0;
  }
  SolverService svc;
  SessionId id = 0;
  ASSERT_TRUE(svc.open(a, id).ok());
  ASSERT_TRUE(svc.factorize(id).ok());
  std::vector<real_t> x;
  ASSERT_TRUE(svc.solve_batch(id, b, nrhs, x).ok());

  Solver reference;
  reference.analyze(a);
  ASSERT_TRUE(reference.factorize().ok());
  EXPECT_EQ(x, reference.solve_batch(b, nrhs));
}

// Serving counters survive analyze()'s report reset and accumulate.
TEST(SolverReportTest, ServingCountersAccumulate) {
  const SparseMatrix a = grid_laplacian_2d(14, 14);
  const SparseMatrix a2 = scaled_values(a, 1.5);
  SymbolicCache cache(4);
  SolverOptions opt;
  opt.symbolic_cache = &cache;
  Solver solver(opt);
  solver.analyze(a);
  ASSERT_TRUE(solver.factorize().ok());
  ASSERT_TRUE(solver.refactorize(a2.values).ok());
  solver.analyze(a);  // hit (same pattern), counters must accumulate
  EXPECT_EQ(solver.report().symbolic_cache_misses, 1);
  EXPECT_EQ(solver.report().symbolic_cache_hits, 1);
  EXPECT_EQ(solver.report().refactorizes, 1);
}

}  // namespace
}  // namespace parfact
