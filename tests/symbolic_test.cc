// Tests for the symbolic module: etree, postorder, column counts, supernodes.
#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "sparse/gen.h"
#include "sparse/ops.h"
#include "support/prng.h"
#include "symbolic/etree.h"
#include "symbolic/symbolic_factor.h"

namespace parfact {
namespace {

// Dense boolean right-looking Cholesky: the reference for factor patterns.
std::vector<std::vector<bool>> reference_factor_pattern(
    const SparseMatrix& lower) {
  const index_t n = lower.rows;
  std::vector<std::vector<bool>> b(
      static_cast<std::size_t>(n),
      std::vector<bool>(static_cast<std::size_t>(n), false));
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = lower.col_ptr[j]; p < lower.col_ptr[j + 1]; ++p) {
      b[lower.row_ind[p]][j] = true;
    }
  }
  for (index_t k = 0; k < n; ++k) {
    for (index_t i = k + 1; i < n; ++i) {
      if (!b[i][k]) continue;
      for (index_t j = k + 1; j <= i; ++j) {
        if (b[j][k]) b[i][j] = true;
      }
    }
  }
  return b;
}

std::vector<index_t> reference_col_counts(const SparseMatrix& lower) {
  const auto b = reference_factor_pattern(lower);
  const index_t n = lower.rows;
  std::vector<index_t> counts(static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) counts[j] += b[i][j];
  }
  return counts;
}

std::vector<index_t> reference_etree(const SparseMatrix& lower) {
  const auto b = reference_factor_pattern(lower);
  const index_t n = lower.rows;
  std::vector<index_t> parent(static_cast<std::size_t>(n), kNone);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) {
      if (b[i][j]) {
        parent[j] = i;
        break;
      }
    }
  }
  return parent;
}

TEST(Etree, TridiagonalIsAPath) {
  const SparseMatrix a = banded_spd(6, 1);
  const auto parent = elimination_tree(a);
  for (index_t j = 0; j < 5; ++j) EXPECT_EQ(parent[j], j + 1);
  EXPECT_EQ(parent[5], kNone);
}

TEST(Etree, ArrowheadIsAStarToLastColumn) {
  // Arrowhead with dense last row: every column's parent is n-1 directly.
  const index_t n = 7;
  TripletBuilder b(n, n);
  for (index_t j = 0; j < n; ++j) b.add(j, j, 4.0);
  for (index_t j = 0; j + 1 < n; ++j) b.add(n - 1, j, -1.0);
  const auto parent = elimination_tree(b.build());
  for (index_t j = 0; j + 1 < n; ++j) EXPECT_EQ(parent[j], n - 1);
  EXPECT_EQ(parent[n - 1], kNone);
}

TEST(Etree, MatchesReferenceOnRandomMatrices) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const SparseMatrix a = random_spd(40, 3, seed);
    EXPECT_EQ(elimination_tree(a), reference_etree(a)) << "seed " << seed;
  }
}

TEST(Etree, PostorderOfPathIsIdentity) {
  std::vector<index_t> parent{1, 2, 3, kNone};
  const auto post = tree_postorder(parent);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(post[i], i);
  EXPECT_TRUE(is_postordered(parent));
}

TEST(Etree, PostorderMakesTreePostordered) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const SparseMatrix a = random_spd(60, 2, seed);
    const auto parent = elimination_tree(a);
    const auto post = tree_postorder(parent);
    EXPECT_TRUE(is_permutation(post));
    const auto relabeled = relabel_tree(parent, post);
    EXPECT_TRUE(is_postordered(relabeled)) << "seed " << seed;
  }
}

TEST(Etree, IsPostorderedRejectsBadTrees) {
  EXPECT_FALSE(is_postordered({2, kNone, 1}));         // parent below child
  EXPECT_FALSE(is_postordered({3, kNone, 3, kNone}));  // gap in 3's subtree
  EXPECT_TRUE(is_postordered({kNone, 3, 3, kNone}));   // root-first is fine
}

TEST(Etree, SubtreeSizes) {
  // Tree: 0->2, 1->2, 2->4, 3->4.
  const std::vector<index_t> parent{2, 2, 4, 4, kNone};
  const auto size = subtree_sizes(parent);
  EXPECT_EQ(size[0], 1);
  EXPECT_EQ(size[2], 3);
  EXPECT_EQ(size[4], 5);
}

TEST(Etree, ColCountsMatchReference) {
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    const SparseMatrix a = random_spd(50, 3, seed);
    const auto parent = elimination_tree(a);
    EXPECT_EQ(cholesky_col_counts(a, parent), reference_col_counts(a))
        << "seed " << seed;
  }
}

TEST(Etree, ColCountsOnGrid) {
  const SparseMatrix a = grid_laplacian_2d(6, 6, 5);
  const auto parent = elimination_tree(a);
  EXPECT_EQ(cholesky_col_counts(a, parent), reference_col_counts(a));
}

TEST(Flops, DenseCholeskyCount) {
  // For a full factorization (panel == front == m), the count must match a
  // direct simulation of the kij algorithm.
  for (index_t m : {1, 2, 3, 5, 10, 37}) {
    count_t expect = 0;
    for (index_t k = 0; k < m; ++k) {
      const count_t below = m - k - 1;
      expect += 1 + below + below * (below + 1);
    }
    EXPECT_EQ(partial_cholesky_flops(m, m), expect);
  }
  // Leading-order: ~ m^3 / 3 multiply-adds counted as 2 flops -> 2m^3/6.
  const double f = static_cast<double>(partial_cholesky_flops(300, 300));
  EXPECT_NEAR(f / (300.0 * 300.0 * 300.0), 1.0 / 3.0, 0.02);
}

TEST(Flops, PartialIsMonotoneInPanel) {
  for (index_t p = 1; p <= 20; ++p) {
    EXPECT_GT(partial_cholesky_flops(p, 20),
              partial_cholesky_flops(p - 1, 20));
  }
}

// --- analyze() ---------------------------------------------------------------

TEST(Analyze, ValidatesOnSuiteMatrices) {
  for (const auto& prob : test_suite(0.12)) {
    const SymbolicFactor sf = analyze(prob.lower);
    EXPECT_NO_THROW(sf.validate()) << prob.name;
    EXPECT_GT(sf.n_supernodes, 0) << prob.name;
    EXPECT_GE(sf.nnz_stored, sf.nnz_strict) << prob.name;
    EXPECT_GE(sf.nnz_strict, sf.a.nnz()) << prob.name;
    EXPECT_GT(sf.total_flops, 0) << prob.name;
  }
}

TEST(Analyze, StrictNnzMatchesReferenceAfterPostorder) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const SparseMatrix a = random_spd(45, 3, seed);
    const SymbolicFactor sf = analyze(a);
    // Recompute the reference on the postordered matrix.
    const auto ref = reference_col_counts(sf.a);
    const count_t ref_nnz =
        std::accumulate(ref.begin(), ref.end(), count_t{0});
    EXPECT_EQ(sf.nnz_strict, ref_nnz) << "seed " << seed;
    EXPECT_EQ(sf.col_count, ref) << "seed " << seed;
  }
}

TEST(Analyze, FundamentalSupernodesHaveExactStructure) {
  AmalgamationOptions opts;
  opts.enable = false;
  for (std::uint64_t seed : {31u, 32u}) {
    const SparseMatrix a = random_spd(60, 3, seed);
    const SymbolicFactor sf = analyze(a, opts);
    sf.validate();
    for (index_t s = 0; s < sf.n_supernodes; ++s) {
      // Without amalgamation, below-rows count equals
      // colcount(first) - ncols exactly.
      EXPECT_EQ(sf.sn_below(s),
                sf.col_count[sf.sn_start[s]] - sf.sn_cols(s))
          << "seed " << seed << " sn " << s;
    }
    // Stored == strict when no zeros are introduced.
    EXPECT_EQ(sf.nnz_stored, sf.nnz_strict);
  }
}

TEST(Analyze, RowStructureMatchesReferencePattern) {
  const SparseMatrix a = random_spd(40, 3, 77);
  AmalgamationOptions opts;
  opts.enable = false;
  const SymbolicFactor sf = analyze(a, opts);
  const auto ref = reference_factor_pattern(sf.a);
  for (index_t s = 0; s < sf.n_supernodes; ++s) {
    const index_t first = sf.sn_start[s];
    const index_t block_end = sf.sn_start[s + 1];
    // Below rows must equal the reference pattern of the first column
    // restricted beyond the block.
    std::vector<index_t> expect;
    for (index_t i = block_end; i < sf.n; ++i) {
      if (ref[i][first]) expect.push_back(i);
    }
    const auto rows = sf.below_rows(s);
    ASSERT_EQ(static_cast<std::size_t>(rows.size()), expect.size());
    for (std::size_t k = 0; k < expect.size(); ++k) {
      EXPECT_EQ(rows[k], expect[k]);
    }
  }
}

TEST(Analyze, AmalgamationReducesSupernodeCount) {
  const SparseMatrix a = grid_laplacian_2d(20, 20, 5);
  AmalgamationOptions off;
  off.enable = false;
  const SymbolicFactor plain = analyze(a, off);
  const SymbolicFactor relaxed = analyze(a);
  EXPECT_LT(relaxed.n_supernodes, plain.n_supernodes);
  EXPECT_GE(relaxed.nnz_stored, plain.nnz_stored);
  EXPECT_EQ(relaxed.nnz_strict, plain.nnz_strict);
  relaxed.validate();
}

TEST(Analyze, AmalgamationRatioKnob) {
  const SparseMatrix a = grid_laplacian_3d(8, 8, 8, 7);
  AmalgamationOptions loose;
  loose.relax_small = 32;
  loose.relax_ratio = 0.4;
  AmalgamationOptions tight;
  tight.relax_small = 2;
  tight.relax_ratio = 0.01;
  const SymbolicFactor l = analyze(a, loose);
  const SymbolicFactor t = analyze(a, tight);
  EXPECT_LE(l.n_supernodes, t.n_supernodes);
  EXPECT_GE(l.nnz_stored, t.nnz_stored);
  l.validate();
  t.validate();
}

TEST(Analyze, RejectsMissingDiagonal) {
  TripletBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(2, 2, 1.0);
  b.add(1, 0, -0.5);  // column 1 has no diagonal
  EXPECT_THROW(analyze(b.build()), Error);
}

TEST(Analyze, DiagonalMatrixIsAllSingletonRoots) {
  TripletBuilder b(5, 5);
  for (index_t j = 0; j < 5; ++j) b.add(j, j, 2.0);
  const SymbolicFactor sf = analyze(b.build());
  sf.validate();
  EXPECT_EQ(sf.nnz_strict, 5);
  EXPECT_EQ(sf.total_flops, 5);  // one sqrt per column
  for (index_t s = 0; s < sf.n_supernodes; ++s) {
    EXPECT_EQ(sf.sn_parent[s], kNone);
  }
}

TEST(Analyze, FlopsSumOverFronts) {
  const SparseMatrix a = grid_laplacian_2d(10, 10, 5);
  const SymbolicFactor sf = analyze(a);
  const count_t sum = std::accumulate(sf.sn_flops.begin(), sf.sn_flops.end(),
                                      count_t{0});
  EXPECT_EQ(sum, sf.total_flops);
}

}  // namespace
}  // namespace parfact
